// Dashboard read-path benchmark: the repeated, near-identical aggregation
// queries a refreshing dashboard issues (terms over syscall, date-histogram
// over time_enter_ns) against a live store that keeps ingesting typed
// events while the queries run. The baseline side disables the query cache
// and the continuous rollups through the ablation options
// (WithQueryCache(0), WithRollupInterval(0)), so both sides execute the
// same requests against the same data through the same binary. The
// headline metrics are per-query p50/p99 latency; see BENCH_store.json
// for the committed comparison.
package dio_test

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/store"
)

const (
	readBenchPreload = 120_000
	readBenchBatch   = 512
	readBenchWorkers = 8
)

// readBenchEvents builds one batch of typed events spread across many
// 100ms rollup buckets, offset so successive batches keep advancing the
// timeline the way a live tracer does.
func readBenchEvents(base int64, n int) []event.Event {
	syscalls := []string{"read", "write", "pread64", "pwrite64", "openat", "close", "lseek"}
	classes := []string{"read", "write", "read", "write", "metadata", "metadata", "metadata"}
	evs := make([]event.Event, n)
	for i := range evs {
		k := i % len(syscalls)
		enter := base + int64(i)*40_000 // 512 events span ~20ms of trace time
		evs[i] = event.Event{
			Session:     "dash",
			Syscall:     syscalls[k],
			Class:       classes[k],
			RetVal:      4096,
			FD:          7,
			Count:       4096,
			PID:         42,
			TID:         43 + i%4,
			ProcName:    "db_bench",
			ThreadName:  "worker",
			TimeEnterNS: enter,
			TimeExitNS:  enter + 900,
		}
	}
	return evs
}

// dashboardRequests is the repeated query mix: the Fig. 4 timeline
// (date-histogram over time_enter_ns) and the per-syscall histogram (terms
// over syscall), both filtered to the session the dashboard renders.
func dashboardRequests() []store.SearchRequest {
	return []store.SearchRequest{
		{
			Query: store.Term(store.FieldSession, "dash"),
			Size:  1,
			Aggs: map[string]store.Agg{
				"by_syscall": {Terms: &store.TermsAgg{Field: store.FieldSyscall}},
			},
		},
		{
			Query: store.Term(store.FieldSession, "dash"),
			Size:  1,
			Aggs: map[string]store.Agg{
				"timeline": {DateHistogram: &store.DateHistogramAgg{Field: store.FieldTimeEnter, IntervalNS: 1_000_000_000}},
			},
		},
	}
}

// BenchmarkDashboardReadPath is the headline number for the read-path PR:
// p50/p99 latency of concurrent repeated dashboard aggregations over a
// 120k-event index while typed ingest keeps landing, accelerated (rollups +
// epoch-keyed query cache, the defaults) versus the uncached full-scan
// baseline.
func BenchmarkDashboardReadPath(b *testing.B) {
	run := func(b *testing.B, opts ...store.Option) {
		st, err := store.Open(opts...)
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		ctx := context.Background()
		var clock int64 = 1_000_000_000
		for n := 0; n < readBenchPreload; n += readBenchBatch {
			if err := st.BulkEvents(ctx, "bench", readBenchEvents(clock, readBenchBatch)); err != nil {
				b.Fatal(err)
			}
			clock += readBenchBatch * 40_000
		}

		// Live ingest: one background writer appending typed batches for the
		// duration of the timed section, paced so queries and ingest genuinely
		// interleave instead of the writer monopolizing the core.
		stop := make(chan struct{})
		var ingest sync.WaitGroup
		ingest.Add(1)
		go func() {
			defer ingest.Done()
			for {
				select {
				case <-stop:
					return
				case <-time.After(2 * time.Millisecond):
				}
				if err := st.BulkEvents(ctx, "bench", readBenchEvents(clock, readBenchBatch)); err != nil {
					return
				}
				clock += readBenchBatch * 40_000
			}
		}()

		reqs := dashboardRequests()
		var mu sync.Mutex
		lat := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		var qs sync.WaitGroup
		for w := 0; w < readBenchWorkers; w++ {
			qs.Add(1)
			go func(w int) {
				defer qs.Done()
				local := make([]time.Duration, 0, b.N/readBenchWorkers+1)
				for i := w; i < b.N; i += readBenchWorkers {
					req := reqs[i%len(reqs)]
					t0 := time.Now()
					if _, err := st.Search(ctx, "bench", req); err != nil {
						b.Error(err)
						return
					}
					local = append(local, time.Since(t0))
				}
				mu.Lock()
				lat = append(lat, local...)
				mu.Unlock()
			}(w)
		}
		qs.Wait()
		b.StopTimer()
		close(stop)
		ingest.Wait()

		if len(lat) > 0 {
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			b.ReportMetric(float64(lat[len(lat)/2]), "p50-ns")
			b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
		}
	}

	b.Run("Accelerated", func(b *testing.B) { run(b) })
	b.Run("Uncached", func(b *testing.B) {
		run(b, store.WithQueryCache(0), store.WithRollupInterval(0))
	})
}
