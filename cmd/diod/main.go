// Command diod runs DIO's analysis backend as a standalone HTTP server —
// the role Elasticsearch plays in the paper's deployment (§II-F): tracers
// on other machines ship events to it with the bulk API, and visualizers
// query it.
//
// Usage:
//
//	diod -addr :9200
//	diod -addr :9200 -data /var/lib/diod
//	diod -addr :9200 -chaos
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/dsrhaslab/dio-go/internal/store"
)

func main() {
	addr := flag.String("addr", ":9200", "listen address")
	chaos := flag.Bool("chaos", false, "enable the fault injector (arm it over POST /_chaos)")
	data := flag.String("data", "", "data directory for WAL + snapshots (empty: in-memory only)")
	fsyncMode := flag.String("fsync", "interval", "WAL fsync policy: interval, always, or off")
	snapshot := flag.Duration("snapshot", time.Minute, "interval between columnar segment snapshots (0 disables)")
	queryCache := flag.Int("query-cache", 256, "query cache capacity per index in entries (0 disables)")
	rollup := flag.Duration("rollup", 100*time.Millisecond, "continuous rollup base histogram interval (0 disables)")
	flag.Parse()
	if err := run(*addr, *chaos, *data, *fsyncMode, *snapshot, *queryCache, *rollup); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, chaos bool, data, fsyncMode string, snapshot time.Duration, queryCache int, rollup time.Duration) error {
	policy, err := store.ParseFsyncPolicy(fsyncMode)
	if err != nil {
		return err
	}
	st, err := store.Open(
		store.WithDataDir(data),
		store.WithFsyncPolicy(policy),
		store.WithSnapshotInterval(snapshot),
		store.WithQueryCache(queryCache),
		store.WithRollupInterval(rollup),
	)
	if err != nil {
		return fmt.Errorf("open store: %w", err)
	}
	var handler http.Handler = store.NewServer(st)
	if chaos {
		// Starts disarmed; POST a store.ChaosConfig to /_chaos to inject
		// failures into the ship path.
		handler = store.NewChaosHandler(handler, time.Now().UnixNano())
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("diod: analysis backend listening on %s\n", addr)
	fmt.Println("endpoints (also under /v1): POST /{index}/_bulk | /{index}/_search | /{index}/_count | /{index}/_correlate | GET /_cat/indices | GET /_health | GET /metrics")
	if data != "" {
		fmt.Printf("durability: data dir %s, fsync %s, snapshot every %s\n", data, policy, snapshot)
	}
	if chaos {
		fmt.Println("chaos: fault injector enabled (disarmed); control via GET/POST /_chaos")
	}

	// A durable store must flush its WAL and take a final snapshot on the
	// way out, so SIGINT/SIGTERM drain through store.Close instead of
	// dying mid-write.
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		st.Close()
		return err
	case s := <-sig:
		fmt.Printf("diod: %v, shutting down\n", s)
		srv.Close()
		return st.Close()
	}
}
