// Command diod runs DIO's analysis backend as a standalone HTTP server —
// the role Elasticsearch plays in the paper's deployment (§II-F): tracers
// on other machines ship events to it with the bulk API, and visualizers
// query it.
//
// Usage:
//
//	diod -addr :9200
//	diod -addr :9200 -data /var/lib/diod
//	diod -addr :9200 -chaos
//
// Replicated pair (DESIGN.md §14):
//
//	diod -addr :9200 -data /var/lib/diod -replicate http://standby:9201
//	diod -addr :9201 -data /var/lib/diod-standby -follow http://primary:9200 -auto-promote 10s
//
// A follower rejects direct writes and applies the primary's WAL frames
// pushed to /_repl/apply; POST /_repl/promote (or -auto-promote on primary
// loss) flips it to a writable primary.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/dsrhaslab/dio-go/internal/repl"
	"github.com/dsrhaslab/dio-go/internal/store"
)

type config struct {
	addr        string
	chaos       bool
	data        string
	fsyncMode   string
	snapshot    time.Duration
	retention   time.Duration
	queryCache  int
	rollup      time.Duration
	follow      string
	autoPromote time.Duration
	replicate   string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":9200", "listen address")
	flag.BoolVar(&cfg.chaos, "chaos", false, "enable the fault injector (arm it over POST /_chaos)")
	flag.StringVar(&cfg.data, "data", "", "data directory for WAL + snapshots (empty: in-memory only)")
	flag.StringVar(&cfg.fsyncMode, "fsync", "interval", "WAL fsync policy: interval, always, or off")
	flag.DurationVar(&cfg.snapshot, "snapshot", time.Minute, "interval between columnar segment snapshots (0 disables)")
	flag.DurationVar(&cfg.retention, "retention", 0, "drop segments whose events are all older than this (0 keeps everything); requires -data")
	flag.IntVar(&cfg.queryCache, "query-cache", 256, "query cache capacity per index in entries (0 disables)")
	flag.DurationVar(&cfg.rollup, "rollup", 100*time.Millisecond, "continuous rollup base histogram interval (0 disables)")
	flag.StringVar(&cfg.follow, "follow", "", "run as a follower of this primary URL: reject writes, apply /_repl pushes")
	flag.DurationVar(&cfg.autoPromote, "auto-promote", 0, "with -follow: promote to primary once the primary has been unreachable this long (0 disables)")
	flag.StringVar(&cfg.replicate, "replicate", "", "comma-separated follower URLs to ship this node's WAL to")
	flag.Parse()
	if err := run(cfg); err != nil {
		log.Fatal(err)
	}
}

func run(cfg config) error {
	policy, err := store.ParseFsyncPolicy(cfg.fsyncMode)
	if err != nil {
		return err
	}
	if cfg.follow != "" && cfg.replicate != "" {
		return fmt.Errorf("-follow and -replicate are mutually exclusive (chained replication is not supported)")
	}
	st, err := store.Open(
		store.WithDataDir(cfg.data),
		store.WithFsyncPolicy(policy),
		store.WithSnapshotInterval(cfg.snapshot),
		store.WithRetention(cfg.retention),
		store.WithQueryCache(cfg.queryCache),
		store.WithRollupInterval(cfg.rollup),
	)
	if err != nil {
		return fmt.Errorf("open store: %w", err)
	}
	if cfg.follow != "" {
		st.SetFollower()
	}

	var shippers []*repl.Replicator
	if cfg.replicate != "" {
		for _, target := range strings.Split(cfg.replicate, ",") {
			target = strings.TrimSpace(target)
			if target == "" {
				continue
			}
			r := repl.New(st, repl.ClientTransport{C: store.NewClient(target)}, repl.Config{})
			r.Start()
			shippers = append(shippers, r)
		}
	}

	var handler http.Handler = store.NewServer(st)
	if cfg.chaos {
		// Starts disarmed; POST a store.ChaosConfig to /_chaos to inject
		// failures into the ship path.
		handler = store.NewChaosHandler(handler, time.Now().UnixNano())
	}
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("diod: analysis backend listening on %s\n", cfg.addr)
	fmt.Println("endpoints (also under /v1): POST /{index}/_bulk | /{index}/_search | /{index}/_count | /{index}/_correlate | GET /_cat/indices | GET /_health | GET /metrics")
	if cfg.data != "" {
		fmt.Printf("durability: data dir %s, fsync %s, snapshot every %s\n", cfg.data, policy, cfg.snapshot)
		if cfg.retention > 0 {
			fmt.Printf("retention: segments older than %s are compacted away\n", cfg.retention)
		}
	}
	if cfg.chaos {
		fmt.Println("chaos: fault injector enabled (disarmed); control via GET/POST /_chaos")
	}
	if cfg.follow != "" {
		fmt.Printf("role: follower of %s (writes rejected; promote via POST /_repl/promote", cfg.follow)
		if cfg.autoPromote > 0 {
			fmt.Printf(", or automatically after %s of primary loss", cfg.autoPromote)
		}
		fmt.Println(")")
	}
	for i, r := range shippers {
		fmt.Printf("role: primary, shipping WAL to follower %d: %s\n", i+1, r.Target())
	}

	watchDone := make(chan struct{})
	watchStop := make(chan struct{})
	if cfg.follow != "" && cfg.autoPromote > 0 {
		go func() {
			defer close(watchDone)
			watchPrimary(st, cfg.follow, cfg.autoPromote, watchStop)
		}()
	} else {
		close(watchDone)
	}

	// On the way out everything drains in dependency order: the HTTP server
	// finishes in-flight requests (a follower's half-applied replication
	// frame included), shippers push their final WAL suffix to the
	// followers, and store.Close fsyncs the WAL and takes a closing snapshot
	// — the clean handoff point a restarted node resumes from without
	// re-requesting the full stream.
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
		close(watchStop)
		<-watchDone
		for _, r := range shippers {
			if err := r.Stop(); err != nil {
				fmt.Printf("diod: replication drain: %v\n", err)
			}
		}
		return st.Close()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		shutdown()
		return err
	case s := <-sig:
		fmt.Printf("diod: %v, draining and shutting down\n", s)
		return shutdown()
	}
}

// watchPrimary probes the primary's /_health and promotes the local store
// once the primary has been unreachable for the full grace window. A single
// successful probe resets the window, so transient blips never trigger a
// split-brain promotion; an already-promoted store (operator raced us via
// POST /_repl/promote) stops the watch.
func watchPrimary(st *store.Store, primary string, grace time.Duration, stop <-chan struct{}) {
	c := store.NewClient(primary)
	interval := grace / 4
	if interval < 250*time.Millisecond {
		interval = 250 * time.Millisecond
	}
	if interval > 5*time.Second {
		interval = 5 * time.Second
	}
	lastOK := time.Now()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		if st.Role() == store.RolePrimary {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), interval)
		_, err := c.HealthStatus(ctx)
		cancel()
		if err == nil {
			lastOK = time.Now()
			continue
		}
		if time.Since(lastOK) >= grace {
			fmt.Printf("diod: primary %s unreachable for %s, promoting to primary\n", primary, grace)
			st.Promote()
			return
		}
	}
}
