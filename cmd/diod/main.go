// Command diod runs DIO's analysis backend as a standalone HTTP server —
// the role Elasticsearch plays in the paper's deployment (§II-F): tracers
// on other machines ship events to it with the bulk API, and visualizers
// query it.
//
// Usage:
//
//	diod -addr :9200
//	diod -addr :9200 -chaos
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"github.com/dsrhaslab/dio-go/internal/store"
)

func main() {
	addr := flag.String("addr", ":9200", "listen address")
	chaos := flag.Bool("chaos", false, "enable the fault injector (arm it over POST /_chaos)")
	flag.Parse()
	if err := run(*addr, *chaos); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, chaos bool) error {
	st := store.New()
	var handler http.Handler = store.NewServer(st)
	if chaos {
		// Starts disarmed; POST a store.ChaosConfig to /_chaos to inject
		// failures into the ship path.
		handler = store.NewChaosHandler(handler, time.Now().UnixNano())
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("diod: analysis backend listening on %s\n", addr)
	fmt.Println("endpoints: POST /{index}/_bulk | /{index}/_search | /{index}/_count | /{index}/_correlate | GET /_cat/indices | GET /_health | GET /metrics")
	if chaos {
		fmt.Println("chaos: fault injector enabled (disarmed); control via GET/POST /_chaos")
	}
	return srv.ListenAndServe()
}
