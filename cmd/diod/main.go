// Command diod runs DIO's analysis backend as a standalone HTTP server —
// the role Elasticsearch plays in the paper's deployment (§II-F): tracers
// on other machines ship events to it with the bulk API, and visualizers
// query it.
//
// Usage:
//
//	diod -addr :9200
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"github.com/dsrhaslab/dio-go/internal/store"
)

func main() {
	addr := flag.String("addr", ":9200", "listen address")
	flag.Parse()
	if err := run(*addr); err != nil {
		log.Fatal(err)
	}
}

func run(addr string) error {
	st := store.New()
	srv := &http.Server{
		Addr:              addr,
		Handler:           store.NewServer(st),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("diod: analysis backend listening on %s\n", addr)
	fmt.Println("endpoints: POST /{index}/_bulk | /{index}/_search | /{index}/_count | /{index}/_correlate | GET /_cat/indices")
	return srv.ListenAndServe()
}
