// Command diod runs DIO's analysis backend as a standalone HTTP server —
// the role Elasticsearch plays in the paper's deployment (§II-F): tracers
// on other machines ship events to it with the bulk API, and visualizers
// query it.
//
// Usage:
//
//	diod -addr :9200
//	diod -addr :9200 -data /var/lib/diod
//	diod -addr :9200 -chaos
//
// Replicated pair (DESIGN.md §14):
//
//	diod -addr :9200 -data /var/lib/diod -replicate http://standby:9201
//	diod -addr :9201 -data /var/lib/diod-standby -follow http://primary:9200 -auto-promote 10s
//
// A follower rejects direct writes and applies the primary's WAL frames
// pushed to /_repl/apply; POST /_repl/promote (or -auto-promote on primary
// loss) flips it to a writable primary.
//
// Cluster coordinator (DESIGN.md §16): -cluster turns diod into a stateless
// routing tier over a static topology. Commas separate partitions; a `|`
// within a partition lists that partition's primary first and its
// replicated followers after, fronted by a failover client:
//
//	diod -addr :9200 -cluster 'http://n0:9200|http://n0b:9201,http://n1:9200,http://n2:9200,http://n3:9200'
//
// The coordinator serves the same /v1 API as a node — writes are striped
// row-by-row across the partitions, searches scatter to every partition and
// merge once — so tracers and visualizers point at it unchanged.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/dsrhaslab/dio-go/internal/cluster"
	"github.com/dsrhaslab/dio-go/internal/diagnose"
	"github.com/dsrhaslab/dio-go/internal/repl"
	"github.com/dsrhaslab/dio-go/internal/store"
)

type config struct {
	addr        string
	chaos       bool
	data        string
	fsyncMode   string
	snapshot    time.Duration
	retention   time.Duration
	queryCache  int
	rollup      time.Duration
	follow      string
	autoPromote time.Duration
	replicate   string
	cluster     string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":9200", "listen address")
	flag.BoolVar(&cfg.chaos, "chaos", false, "enable the fault injector (arm it over POST /_chaos)")
	flag.StringVar(&cfg.data, "data", "", "data directory for WAL + snapshots (empty: in-memory only)")
	flag.StringVar(&cfg.fsyncMode, "fsync", "interval", "WAL fsync policy: interval, always, or off")
	flag.DurationVar(&cfg.snapshot, "snapshot", time.Minute, "interval between columnar segment snapshots (0 disables)")
	flag.DurationVar(&cfg.retention, "retention", 0, "drop segments whose events are all older than this (0 keeps everything); requires -data")
	flag.IntVar(&cfg.queryCache, "query-cache", 256, "query cache capacity per index in entries (0 disables)")
	flag.DurationVar(&cfg.rollup, "rollup", 100*time.Millisecond, "continuous rollup base histogram interval (0 disables)")
	flag.StringVar(&cfg.follow, "follow", "", "run as a follower of this primary URL: reject writes, apply /_repl pushes")
	flag.DurationVar(&cfg.autoPromote, "auto-promote", 0, "with -follow: promote to primary once the primary has been unreachable this long (0 disables)")
	flag.StringVar(&cfg.replicate, "replicate", "", "comma-separated follower URLs to ship this node's WAL to")
	flag.StringVar(&cfg.cluster, "cluster", "", "run as a cluster coordinator over this topology: comma-separated partitions, '|'-separated primary|follower URLs within a partition")
	flag.Parse()
	if err := run(cfg); err != nil {
		log.Fatal(err)
	}
}

func run(cfg config) error {
	if cfg.cluster != "" {
		if cfg.data != "" || cfg.follow != "" || cfg.replicate != "" {
			return fmt.Errorf("-cluster is a stateless routing tier: it takes no -data, -follow, or -replicate")
		}
		return runCluster(cfg)
	}
	policy, err := store.ParseFsyncPolicy(cfg.fsyncMode)
	if err != nil {
		return err
	}
	if cfg.follow != "" && cfg.replicate != "" {
		return fmt.Errorf("-follow and -replicate are mutually exclusive (chained replication is not supported)")
	}
	st, err := store.Open(
		store.WithDataDir(cfg.data),
		store.WithFsyncPolicy(policy),
		store.WithSnapshotInterval(cfg.snapshot),
		store.WithRetention(cfg.retention),
		store.WithQueryCache(cfg.queryCache),
		store.WithRollupInterval(cfg.rollup),
	)
	if err != nil {
		return fmt.Errorf("open store: %w", err)
	}
	if cfg.follow != "" {
		st.SetFollower()
	}

	var shippers []*repl.Replicator
	if cfg.replicate != "" {
		for _, target := range strings.Split(cfg.replicate, ",") {
			target = strings.TrimSpace(target)
			if target == "" {
				continue
			}
			r := repl.New(st, repl.ClientTransport{C: store.NewClient(target)}, repl.Config{})
			r.Start()
			shippers = append(shippers, r)
		}
	}

	server := store.NewServer(st)
	diagnose.Install(server)
	var handler http.Handler = server
	if cfg.chaos {
		// Starts disarmed; POST a store.ChaosConfig to /_chaos to inject
		// failures into the ship path.
		handler = store.NewChaosHandler(handler, time.Now().UnixNano())
	}
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("diod: analysis backend listening on %s\n", cfg.addr)
	fmt.Println("endpoints (also under /v1): POST /{index}/_bulk | /{index}/_search | /{index}/_count | /{index}/_correlate | /{index}/_diagnose | /{index}/_dfg | /{index}/_diff | GET /_cat/indices | GET /_health | GET /metrics")
	if cfg.data != "" {
		fmt.Printf("durability: data dir %s, fsync %s, snapshot every %s\n", cfg.data, policy, cfg.snapshot)
		if cfg.retention > 0 {
			fmt.Printf("retention: segments older than %s are compacted away\n", cfg.retention)
		}
	}
	if cfg.chaos {
		fmt.Println("chaos: fault injector enabled (disarmed); control via GET/POST /_chaos")
	}
	if cfg.follow != "" {
		fmt.Printf("role: follower of %s (writes rejected; promote via POST /_repl/promote", cfg.follow)
		if cfg.autoPromote > 0 {
			fmt.Printf(", or automatically after %s of primary loss", cfg.autoPromote)
		}
		fmt.Println(")")
	}
	for i, r := range shippers {
		fmt.Printf("role: primary, shipping WAL to follower %d: %s\n", i+1, r.Target())
	}

	watchDone := make(chan struct{})
	watchStop := make(chan struct{})
	if cfg.follow != "" && cfg.autoPromote > 0 {
		go func() {
			defer close(watchDone)
			watchPrimary(st, cfg.follow, cfg.autoPromote, watchStop)
		}()
	} else {
		close(watchDone)
	}

	// On the way out everything drains in dependency order: the HTTP server
	// finishes in-flight requests (a follower's half-applied replication
	// frame included), shippers push their final WAL suffix to the
	// followers, and store.Close fsyncs the WAL and takes a closing snapshot
	// — the clean handoff point a restarted node resumes from without
	// re-requesting the full stream.
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
		close(watchStop)
		<-watchDone
		for _, r := range shippers {
			if err := r.Stop(); err != nil {
				fmt.Printf("diod: replication drain: %v\n", err)
			}
		}
		return st.Close()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		shutdown()
		return err
	case s := <-sig:
		fmt.Printf("diod: %v, draining and shutting down\n", s)
		return shutdown()
	}
}

// parseTopology expands a -cluster spec into one Node per partition. The
// spec is static and positional: partition p of the comma-separated list
// owns every cluster-global row g with g % P == p, so the same spec (in the
// same order) must be handed to every coordinator pointed at the topology.
func parseTopology(spec string) ([]cluster.Node, []string, error) {
	var nodes []cluster.Node
	var targets []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var members []*store.Client
		for _, u := range strings.Split(part, "|") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			members = append(members, store.NewClient(u, store.WithAPIPrefix("/v1")))
		}
		if len(members) == 0 {
			return nil, nil, fmt.Errorf("cluster topology: empty partition in %q", spec)
		}
		fc, err := store.NewFailoverClient(members...)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster topology: partition %d: %w", len(nodes), err)
		}
		target := members[0].Base()
		nodes = append(nodes, cluster.NewHTTPNode(target, fc))
		targets = append(targets, part)
	}
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("cluster topology %q names no partitions", spec)
	}
	return nodes, targets, nil
}

// runCluster serves the coordinator role: no local store, just routing state
// (row counters, per-partition breakers) rebuilt from the nodes on boot.
func runCluster(cfg config) error {
	nodes, targets, err := parseTopology(cfg.cluster)
	if err != nil {
		return err
	}
	co, err := cluster.New(cluster.Config{}, nodes...)
	if err != nil {
		return err
	}
	var handler http.Handler = cluster.NewServer(co)
	if cfg.chaos {
		handler = store.NewChaosHandler(handler, time.Now().UnixNano())
	}
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("diod: cluster coordinator listening on %s, %d partitions\n", cfg.addr, co.Partitions())
	for p, t := range targets {
		fmt.Printf("partition %d: %s\n", p, t)
	}
	fmt.Println("endpoints (also under /v1): POST /{index}/_bulk | /{index}/_search | /{index}/_count | GET /{index}/_stats | GET /_cat/indices | GET /_health | GET /metrics (correlate/diagnose/dfg/diff answer typed 501)")

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("diod: %v, draining and shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
		return nil
	}
}

// watchPrimary probes the primary's /_health and promotes the local store
// once the primary has been unreachable for the full grace window. A single
// successful probe resets the window, so transient blips never trigger a
// split-brain promotion; an already-promoted store (operator raced us via
// POST /_repl/promote) stops the watch.
func watchPrimary(st *store.Store, primary string, grace time.Duration, stop <-chan struct{}) {
	c := store.NewClient(primary)
	interval := grace / 4
	if interval < 250*time.Millisecond {
		interval = 250 * time.Millisecond
	}
	if interval > 5*time.Second {
		interval = 5 * time.Second
	}
	lastOK := time.Now()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		if st.Role() == store.RolePrimary {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), interval)
		_, err := c.HealthStatus(ctx)
		cancel()
		if err == nil {
			lastOK = time.Now()
			continue
		}
		if time.Since(lastOK) >= grace {
			fmt.Printf("diod: primary %s unreachable for %s, promoting to primary\n", primary, grace)
			st.Promote()
			return
		}
	}
}
