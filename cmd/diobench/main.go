// Command diobench regenerates the tables and figures of the DIO paper's
// evaluation (DSN'23). Each experiment prints the reproduced artifact next
// to the paper's reference numbers; see EXPERIMENTS.md for the index.
//
// Usage:
//
//	diobench -exp all
//	diobench -exp table2 -cycles 2000
//	diobench -exp fig3 -duration 3s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/dsrhaslab/dio-go/internal/apps/fluentbit"
	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/diagnose"
	"github.com/dsrhaslab/dio-go/internal/experiments"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/replay"
	"github.com/dsrhaslab/dio-go/internal/viz"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1|table2|table3|fig2a|fig2b|fig3|fig4|drops|paths|scale|chaos|failover|diagnose|replay|all")
		cycles   = flag.Int("cycles", 1000, "table2: workload cycles (~20 syscalls each)")
		duration = flag.Duration("duration", 2*time.Second, "fig3/fig4: benchmark duration")
		writes   = flag.Int("writes", 20000, "drops: event-storm writes")
	)
	flag.Parse()
	if err := run(*exp, *cycles, *duration, *writes); err != nil {
		fmt.Fprintln(os.Stderr, "diobench:", err)
		os.Exit(1)
	}
}

func run(exp string, cycles int, duration time.Duration, writes int) error {
	runners := map[string]func() error{
		"table1":   func() error { return table1() },
		"table2":   func() error { return table2(cycles) },
		"table3":   func() error { return table3() },
		"fig2a":    func() error { return fig2(fluentbit.VersionBuggy) },
		"fig2b":    func() error { return fig2(fluentbit.VersionFixed) },
		"fig3":     func() error { return rocksdb(duration, true) },
		"fig4":     func() error { return rocksdb(duration, false) },
		"drops":    func() error { return drops(writes) },
		"paths":    func() error { return paths() },
		"scale":    func() error { return scale() },
		"chaos":    func() error { return chaosDemo(writes) },
		"failover": func() error { return failoverDemo(writes) },
		"diagnose": func() error { return diagnoseDemo() },
		"replay":   func() error { return replayDemo() },
	}
	if exp == "all" {
		order := []string{"table1", "fig2a", "fig2b", "fig3", "table2", "drops", "paths", "scale", "chaos", "failover", "table3", "diagnose", "replay"}
		for _, name := range order {
			fmt.Printf("\n================ %s ================\n", name)
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	r, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return r()
}

func table1() error {
	return experiments.RunTable1().Render(os.Stdout)
}

func table2(cycles int) error {
	res, err := experiments.RunTable2(cycles)
	if err != nil {
		return err
	}
	if err := res.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nShape check: vanilla < sysdig < DIO < strace, ratios near 1.04/1.37/1.71.")
	return nil
}

func table3() error {
	return experiments.RunTable3().Render(os.Stdout)
}

func fig2(version fluentbit.Version) error {
	res, err := experiments.RunFig2(version)
	if err != nil {
		return err
	}
	if err := res.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nclient wrote %d+%d bytes; forwarder received %d; lost %d\n",
		len(res.Scenario.FirstWrite), len(res.Scenario.SecondWrite),
		len(res.Scenario.Received), res.Scenario.LostBytes)
	if version == fluentbit.VersionBuggy {
		fmt.Println("=> Fig. 2a: the forwarder resumed at the stale offset and lost the new file's data.")
	} else {
		fmt.Println("=> Fig. 2b: the fixed version restarted at offset 0 and read everything.")
	}
	return nil
}

func rocksdb(duration time.Duration, latencyView bool) error {
	res, err := experiments.RunRocksDB(experiments.RocksDBConfig{Duration: duration, Trace: true})
	if err != nil {
		return err
	}
	if latencyView {
		fmt.Println("Fig. 3: 99th percentile latency for RocksDB client operations")
		series := viz.LatencySeries(res.Latency)
		if err := series.Table().Render(os.Stdout); err != nil {
			return err
		}
	} else {
		fmt.Println("Fig. 4: syscalls issued by RocksDB over time, aggregated by thread name")
		if err := res.Timeline.Render(os.Stdout); err != nil {
			return err
		}
	}
	busy, quiet, busyN, quietN := res.ContentionCorrelation(5, 2)
	fmt.Printf("\nbench: %d ops (%.0f ops/s), %d flushes, %d compactions (%d L0)\n",
		res.Bench.Ops, res.Bench.Throughput(),
		res.Bench.DBStats.Flushes, res.Bench.DBStats.Compactions, res.Bench.DBStats.L0Compactions)
	fmt.Printf("tracer: captured=%d dropped=%d (%.2f%%)\n",
		res.Tracer.Captured, res.Tracer.Dropped, res.Tracer.DropFraction()*100)
	if busyN > 0 && quietN > 0 {
		fmt.Printf("contention: mean p99 %.2fms in windows with >=5 compaction threads (%d windows)\n",
			busy/1e6, busyN)
		fmt.Printf("            mean p99 %.2fms in windows with <=2 compaction threads (%d windows)\n",
			quiet/1e6, quietN)
	}
	return nil
}

func drops(writes int) error {
	res, err := experiments.RunDrops(experiments.DropsConfig{Writes: writes})
	if err != nil {
		return err
	}
	if err := res.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nPaper reference: 3.5% of 549M syscalls discarded at 256 MiB per CPU core.")
	return nil
}

// chaosDemo ships an event storm through a backend that fails ~30% of bulk
// requests plus one scripted full outage, with the resilience ladder enabled,
// and prints the exact-accounting table.
func chaosDemo(writes int) error {
	res, err := experiments.RunChaos(experiments.ChaosConfig{Writes: writes})
	if err != nil {
		return err
	}
	if err := res.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nInvariant: shipped + ring dropped + spill dropped + parse errors == captured.")
	return nil
}

// failoverDemo traces an event storm into a replicated primary/follower
// pair, kills the primary mid-storm, promotes the follower, and prints the
// zero-loss accounting table.
func failoverDemo(writes int) error {
	res, err := experiments.RunFailover(experiments.FailoverConfig{Writes: writes})
	if err != nil {
		return err
	}
	if err := res.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nInvariant: promoted node count == shipped, and the drained follower matched the primary's head at the kill.")
	return nil
}

// diagnoseDemo runs the automated detectors (§V future work, implemented)
// over freshly traced buggy and fixed Fluent Bit sessions.
func diagnoseDemo() error {
	for _, version := range []fluentbit.Version{fluentbit.VersionBuggy, fluentbit.VersionFixed} {
		res, err := experiments.RunFig2(version)
		if err != nil {
			return err
		}
		rep, err := diagnose.NewEngine(diagnose.DefaultRegistry()).
			Run(context.Background(), res.Backend, res.Index, res.Session)
		if err != nil {
			return err
		}
		fmt.Print(rep)
		fmt.Printf("health: %d/100\n\n", rep.HealthScore)
	}
	fmt.Println("=> the stale-offset-read rule fires only on the buggy version.")
	return nil
}

// replayDemo re-executes a traced session on a fresh kernel and verifies
// the replayed return values match the trace.
func replayDemo() error {
	res, err := experiments.RunFig2(fluentbit.VersionBuggy)
	if err != nil {
		return err
	}
	k2 := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	rep, err := replay.Session(res.Backend, res.Index, res.Session, k2)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d events (%d skipped), %d return-value mismatches\n",
		rep.Replayed, rep.Skipped, len(rep.Mismatches))
	for _, m := range rep.Mismatches {
		fmt.Println("  mismatch:", m)
	}
	data, err := k2.ReadFileContents("/var/log/app.log")
	if err != nil {
		return err
	}
	fmt.Printf("replayed filesystem reproduces the data-loss state: app.log holds %d unread bytes\n", len(data))
	return nil
}

// scale measures the sharded backend and multi-worker drain against the
// serial baselines at session scale.
func scale() error {
	res, err := experiments.RunScale(experiments.ScaleConfig{})
	if err != nil {
		return err
	}
	if err := res.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nShape check: sharded search/aggregation >=2x over the serial scan at 100k+ docs.")
	return nil
}

func paths() error {
	res, err := experiments.RunPathResolution(experiments.PathsConfig{})
	if err != nil {
		return err
	}
	if err := res.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nPaper reference: DIO unresolved <=5%, Sysdig 45%.")
	return nil
}
