// Command dioviz queries a DIO analysis backend (a diod server) and renders
// the predefined dashboards — the visualizer component of the paper
// (§II-D): tabular access patterns, per-syscall histograms, and per-thread
// syscall timelines.
//
// Usage:
//
//	dioviz -backend http://localhost:9200 -index dio-events -session s1 -view table
//	dioviz -backend http://localhost:9200 -index dio-events -session s1 -view timeline -interval 100ms
//	dioviz -backend http://localhost:9200 -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/dsrhaslab/dio-go/internal/analysis"
	"github.com/dsrhaslab/dio-go/internal/diagnose"
	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/viz"
)

func main() {
	var (
		backend  = flag.String("backend", "http://127.0.0.1:9200", "backend URL")
		index    = flag.String("index", "dio-events", "index to query")
		session  = flag.String("session", "", "session name")
		view     = flag.String("view", "table", "view: table|histogram|timeline|heatmap|html|diagnose|compare")
		interval = flag.Duration("interval", 100*time.Millisecond, "timeline bucket width")
		csv      = flag.Bool("csv", false, "emit CSV instead of text")
		list     = flag.Bool("list", false, "list indices and exit")
		session2 = flag.String("session2", "", "second session for -view compare")
	)
	flag.Parse()
	if err := run(*backend, *index, *session, *session2, *view, *interval, *csv, *list); err != nil {
		fmt.Fprintln(os.Stderr, "dioviz:", err)
		os.Exit(1)
	}
}

func run(backendURL, index, session, session2, view string, interval time.Duration, csv, list bool) error {
	client := store.NewClient(backendURL)
	if list {
		names, err := client.Indices()
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	}
	if session == "" {
		return fmt.Errorf("-session is required (use -list to discover indices)")
	}
	switch view {
	case "table":
		t, err := viz.AccessPatternTable(client, index, session)
		if err != nil {
			return err
		}
		if csv {
			return t.RenderCSV(os.Stdout)
		}
		return t.Render(os.Stdout)
	case "histogram":
		h, err := viz.SyscallHistogram(client, index, session)
		if err != nil {
			return err
		}
		return h.Render(os.Stdout)
	case "timeline":
		ts, err := viz.SyscallTimeline(client, index, session, interval.Nanoseconds())
		if err != nil {
			return err
		}
		if csv {
			return ts.RenderCSV(os.Stdout)
		}
		return ts.Render(os.Stdout)
	case "heatmap":
		ts, err := viz.SyscallTimeline(client, index, session, interval.Nanoseconds())
		if err != nil {
			return err
		}
		return viz.HeatmapFromTimeSeries(ts).Render(os.Stdout)
	case "html":
		return viz.HTMLDashboard(os.Stdout, client, index, session, interval.Nanoseconds())
	case "diagnose":
		rep, err := diagnose.Run(client, index, session, diagnose.Config{})
		if err != nil {
			return err
		}
		fmt.Print(rep)
		return nil
	case "compare":
		if session2 == "" {
			return fmt.Errorf("-view compare requires -session2")
		}
		deltas, err := analysis.CompareSessions(client, index, session, session2)
		if err != nil {
			return err
		}
		return analysis.RenderComparison(deltas, session, session2).Render(os.Stdout)
	default:
		return fmt.Errorf("unknown view %q", view)
	}
}
