// Command dioviz queries a DIO analysis backend (a diod server) and renders
// the predefined dashboards — the visualizer component of the paper
// (§II-D): tabular access patterns, per-syscall histograms, and per-thread
// syscall timelines.
//
// Usage:
//
//	dioviz -backend http://localhost:9200 -index dio-events -session s1 -view table
//	dioviz -backend http://localhost:9200 -index dio-events -session s1 -view timeline -interval 100ms
//	dioviz -backend http://localhost:9200 -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/dsrhaslab/dio-go/internal/diagnose"
	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/viz"
)

// vizDiagnosePageSize bounds each cursor page the diagnose/dfg/diff views
// stream over HTTP, keeping individual backend responses small.
const vizDiagnosePageSize = 500

func main() {
	var (
		backend  = flag.String("backend", "http://127.0.0.1:9200", "backend URL")
		index    = flag.String("index", "dio-events", "index to query")
		session  = flag.String("session", "", "session name")
		view     = flag.String("view", "table", "view: table|histogram|timeline|heatmap|html|diagnose|dfg|diff|compare")
		interval = flag.Duration("interval", 100*time.Millisecond, "timeline bucket width")
		csv      = flag.Bool("csv", false, "emit CSV instead of text")
		list     = flag.Bool("list", false, "list indices and exit")
		session2 = flag.String("session2", "", "second session for -view compare")
	)
	flag.Parse()
	if err := run(*backend, *index, *session, *session2, *view, *interval, *csv, *list); err != nil {
		fmt.Fprintln(os.Stderr, "dioviz:", err)
		os.Exit(1)
	}
}

func run(backendURL, index, session, session2, view string, interval time.Duration, csv, list bool) error {
	client := store.NewClient(backendURL)
	if list {
		names, err := client.Indices()
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	}
	if session == "" {
		return fmt.Errorf("-session is required (use -list to discover indices)")
	}
	switch view {
	case "table":
		t, err := viz.AccessPatternTable(client, index, session)
		if err != nil {
			return err
		}
		if csv {
			return t.RenderCSV(os.Stdout)
		}
		return t.Render(os.Stdout)
	case "histogram":
		h, err := viz.SyscallHistogram(client, index, session)
		if err != nil {
			return err
		}
		return h.Render(os.Stdout)
	case "timeline":
		ts, err := viz.SyscallTimeline(client, index, session, interval.Nanoseconds())
		if err != nil {
			return err
		}
		if csv {
			return ts.RenderCSV(os.Stdout)
		}
		return ts.Render(os.Stdout)
	case "heatmap":
		ts, err := viz.SyscallTimeline(client, index, session, interval.Nanoseconds())
		if err != nil {
			return err
		}
		return viz.HeatmapFromTimeSeries(ts).Render(os.Stdout)
	case "html":
		return viz.HTMLDashboard(os.Stdout, client, index, session, interval.Nanoseconds())
	case "diagnose":
		// The engine runs client-side over the remote backend (the
		// store.Client is a store.Backend), so any diod version serves this
		// view; the page-size default keeps each remote cursor fetch bounded.
		rep, err := diagnose.NewEngine(diagnose.DefaultRegistry(),
			diagnose.WithParams(diagnose.Params{PageSize: vizDiagnosePageSize})).
			Run(context.Background(), client, index, session)
		if err != nil {
			return err
		}
		if csv {
			return diagnose.ReportTable(rep).RenderCSV(os.Stdout)
		}
		return diagnose.ReportTable(rep).Render(os.Stdout)
	case "dfg":
		g, err := diagnose.BuildDFG(context.Background(), client, index, session, vizDiagnosePageSize)
		if err != nil {
			return err
		}
		if csv {
			return diagnose.DFGTable(g, 0).RenderCSV(os.Stdout)
		}
		return diagnose.DFGTable(g, 30).Render(os.Stdout)
	case "diff":
		if session2 == "" {
			return fmt.Errorf("-view diff requires -session2")
		}
		res, err := diagnose.NewEngine(diagnose.DefaultRegistry()).
			DiffSessions(context.Background(), client, index, session, session2,
				diagnose.Params{PageSize: vizDiagnosePageSize})
		if err != nil {
			return err
		}
		if csv {
			return diagnose.DiffTable(res).RenderCSV(os.Stdout)
		}
		return diagnose.DiffTable(res).Render(os.Stdout)
	case "compare":
		if session2 == "" {
			return fmt.Errorf("-view compare requires -session2")
		}
		deltas, err := diagnose.CompareSessions(context.Background(), client, index, session, session2)
		if err != nil {
			return err
		}
		return diagnose.ComparisonTable(deltas, session, session2).Render(os.Stdout)
	default:
		return fmt.Errorf("unknown view %q", view)
	}
}
