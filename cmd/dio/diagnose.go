package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/diagnose"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// cmdDiagnose runs the diagnosis engine over one session. Two modes:
// against a remote backend (-backend with -session, engine runs
// server-side), or self-contained — trace a bundled workload into an
// in-process store and diagnose it immediately.
func cmdDiagnose(args []string) error {
	fs := flag.NewFlagSet("dio diagnose", flag.ExitOnError)
	var (
		workload = fs.String("workload", "fluentbit-buggy", "workload to trace then diagnose (ignored with -backend)")
		backend  = fs.String("backend", "", "diod URL; diagnose an already-stored session server-side")
		index    = fs.String("index", "dio-events", "backend index")
		session  = fs.String("session", "", "session name (required with -backend, else auto-generated)")
		showDFG  = fs.Bool("dfg", false, "also print the session's syscall Directly-Follows-Graph")
	)
	fs.Parse(args)

	ctx := context.Background()
	if *backend != "" {
		if *session == "" {
			return fmt.Errorf("diagnose: -backend requires -session")
		}
		dc := diagnose.NewClient(store.NewClient(*backend))
		rep, err := dc.Diagnose(ctx, *index, *session)
		if err != nil {
			return err
		}
		if err := diagnose.ReportTable(rep).Render(os.Stdout); err != nil {
			return err
		}
		if *showDFG {
			g, err := dc.DFG(ctx, *index, *session)
			if err != nil {
				return err
			}
			return diagnose.DFGTable(g, 20).Render(os.Stdout)
		}
		return nil
	}

	st := store.New()
	name := *session
	if name == "" {
		name = *workload
	}
	if err := traceSessionInto(st, *index, name, *workload); err != nil {
		return err
	}
	e := diagnose.NewEngine(diagnose.DefaultRegistry())
	rep, dfg, err := e.Analyze(ctx, st, *index, name, diagnose.Params{})
	if err != nil {
		return err
	}
	if err := diagnose.ReportTable(rep).Render(os.Stdout); err != nil {
		return err
	}
	if *showDFG {
		return diagnose.DFGTable(dfg, 20).Render(os.Stdout)
	}
	return nil
}

// cmdDiff diagnoses two sessions and classifies every delta. Remote mode
// (-backend) diffs sessions already stored on a diod node; local mode
// traces the two named workloads into one in-process store first. The
// shorthands "buggy" and "fixed" name the Fluent Bit scenario pair.
func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("dio diff", flag.ExitOnError)
	var (
		backend = fs.String("backend", "", "diod URL; diff already-stored sessions server-side")
		index   = fs.String("index", "dio-events", "backend index")
	)
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 2 {
		return fmt.Errorf("diff: need exactly two sessions, e.g. dio diff buggy fixed")
	}
	a, b := rest[0], rest[1]

	ctx := context.Background()
	var res diagnose.DiffResult
	if *backend != "" {
		var err error
		res, err = diagnose.NewClient(store.NewClient(*backend)).Diff(ctx, *index, a, b)
		if err != nil {
			return err
		}
	} else {
		st := store.New()
		for _, session := range []string{a, b} {
			if err := traceSessionInto(st, *index, session, diffWorkload(session)); err != nil {
				return fmt.Errorf("session %s: %w", session, err)
			}
		}
		var err error
		res, err = diagnose.NewEngine(diagnose.DefaultRegistry()).
			DiffSessions(ctx, st, *index, a, b, diagnose.Params{})
		if err != nil {
			return err
		}
	}
	if err := diagnose.DiffTable(res).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("verdict: %s (health %d -> %d)\n", res.Class, res.HealthA, res.HealthB)
	return nil
}

// diffWorkload maps a diff session argument to a workload name, accepting
// the Fluent Bit shorthands.
func diffWorkload(session string) string {
	switch session {
	case "buggy":
		return "fluentbit-buggy"
	case "fixed":
		return "fluentbit-fixed"
	default:
		return session
	}
}

// traceSessionInto traces one bundled workload into the given store under
// the given session name, with correlation applied on stop.
func traceSessionInto(st *store.Store, index, session, workload string) error {
	k := kernel.New(kernel.Config{
		Clock: clock.NewVirtualTicking(kernel.BaseTimestampNS, 200*time.Microsecond),
	})
	if workload == "rocksdb" {
		// The KVS workload needs real concurrency; use a real-time clock.
		k = kernel.New(kernel.Config{Clock: clock.NewReal(0)})
	}
	tracer, err := core.NewTracer(core.Config{
		SessionName:   session,
		Index:         index,
		Backend:       st,
		AutoCorrelate: true,
	})
	if err != nil {
		return err
	}
	if err := tracer.Start(k); err != nil {
		return err
	}
	if err := runWorkload(k, workload); err != nil {
		tracer.Stop()
		return fmt.Errorf("workload: %w", err)
	}
	if _, err := tracer.Stop(); err != nil {
		return fmt.Errorf("stop tracer: %w", err)
	}
	return nil
}
