package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/kernel"
)

func writeConfig(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadFileConfigValid(t *testing.T) {
	path := writeConfig(t, `{
		"session": "s1",
		"index": "idx",
		"syscalls": ["openat", "read", "write"],
		"paths": ["/var/log"],
		"ring_bytes": 65536,
		"num_cpu": 2,
		"batch_size": 128,
		"flush_interval_millis": 5,
		"auto_correlate": true,
		"workload": "synthetic"
	}`)
	fc, err := LoadFileConfig(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if fc.Session != "s1" || fc.Index != "idx" || len(fc.Syscalls) != 3 {
		t.Fatalf("config = %+v", fc)
	}
	cfg, inproc, err := fc.TracerConfig()
	if err != nil {
		t.Fatalf("tracer config: %v", err)
	}
	if inproc == nil {
		t.Fatal("expected in-process store when backend_url empty")
	}
	if len(cfg.Filter.Syscalls) != 3 || cfg.Filter.Syscalls[0] != kernel.SysOpenat {
		t.Fatalf("filter = %+v", cfg.Filter)
	}
	if cfg.RingBytes != 65536 || cfg.NumCPU != 2 || cfg.BatchSize != 128 {
		t.Fatalf("sizes = %+v", cfg)
	}
	if cfg.FlushInterval.Milliseconds() != 5 {
		t.Fatalf("flush interval = %v", cfg.FlushInterval)
	}
	if len(cfg.Filter.PathPrefixes) != 1 || cfg.Filter.PathPrefixes[0] != "/var/log" {
		t.Fatalf("paths = %v", cfg.Filter.PathPrefixes)
	}
}

func TestLoadFileConfigRejectsUnknownSyscall(t *testing.T) {
	path := writeConfig(t, `{"syscalls": ["clone"]}`)
	if _, err := LoadFileConfig(path); err == nil {
		t.Fatal("config with unsupported syscall accepted")
	}
}

func TestLoadFileConfigRejectsBadJSON(t *testing.T) {
	path := writeConfig(t, `{not json`)
	if _, err := LoadFileConfig(path); err == nil {
		t.Fatal("malformed config accepted")
	}
}

func TestLoadFileConfigMissingFile(t *testing.T) {
	if _, err := LoadFileConfig("/nonexistent/trace.json"); err == nil {
		t.Fatal("missing config accepted")
	}
}

func TestTracerConfigRemoteBackend(t *testing.T) {
	fc := FileConfig{BackendURL: "http://127.0.0.1:9200"}
	cfg, inproc, err := fc.TracerConfig()
	if err != nil {
		t.Fatalf("tracer config: %v", err)
	}
	if inproc != nil {
		t.Fatal("in-process store created despite backend URL")
	}
	if cfg.Backend == nil {
		t.Fatal("no backend client configured")
	}
}

func TestLoadFileConfigResilience(t *testing.T) {
	path := writeConfig(t, `{
		"workload": "synthetic",
		"resilience": {
			"max_attempts": 6,
			"base_backoff_millis": 2,
			"max_backoff_millis": 50,
			"attempt_timeout_millis": 1000,
			"breaker_threshold": 3,
			"breaker_cooldown_millis": 250,
			"spill_events": 1024
		}
	}`)
	fc, err := LoadFileConfig(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	cfg, _, err := fc.TracerConfig()
	if err != nil {
		t.Fatalf("tracer config: %v", err)
	}
	rc := cfg.Resilience
	if rc == nil {
		t.Fatal("resilience config not mapped")
	}
	if rc.MaxAttempts != 6 || rc.BaseBackoff.Milliseconds() != 2 ||
		rc.MaxBackoff.Milliseconds() != 50 || rc.AttemptTimeout.Milliseconds() != 1000 ||
		rc.BreakerThreshold != 3 || rc.BreakerCooldown.Milliseconds() != 250 ||
		rc.SpillEvents != 1024 {
		t.Fatalf("resilience = %+v", rc)
	}
}

func TestRunWithChaosDemo(t *testing.T) {
	fc := FileConfig{
		Session:    "t-chaos",
		Workload:   "synthetic",
		Resilience: &ResilienceFileConfig{BreakerCooldownMillis: 5},
	}
	if err := run(fc, false, 0.3, time.Millisecond); err != nil {
		t.Fatalf("run with chaos: %v", err)
	}
}

func TestRunWorkloadsEndToEnd(t *testing.T) {
	for _, wl := range []string{"fluentbit-buggy", "fluentbit-fixed", "synthetic"} {
		fc := FileConfig{Session: "t-" + wl, Workload: wl, AutoCorrelate: true}
		if err := run(fc, false, 0, 0); err != nil {
			t.Fatalf("run %s: %v", wl, err)
		}
	}
	if err := run(FileConfig{Workload: "nope"}, false, 0, 0); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
