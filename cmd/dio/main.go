// Command dio is the CLI of the syscall-observability toolchain: it traces
// bundled workloads on the simulated kernel (§II-B and §II-F), runs the
// automated diagnosis engine over stored sessions, and diffs two sessions'
// diagnoses. Workloads: the Fluent Bit data-loss scenario (buggy and
// fixed), a synthetic data-intensive stream, and the RocksDB-style
// key-value store under YCSB-A.
//
// Usage:
//
//	dio trace -workload fluentbit-buggy
//	dio trace -workload synthetic -syscalls openat,write,close -backend http://localhost:9200
//	dio trace -workload synthetic -resilience -chaos-rate 0.3
//	dio trace -config trace.json
//	dio diagnose -workload fluentbit-buggy -dfg
//	dio diagnose -backend http://localhost:9200 -index dio-events -session run-1
//	dio diff buggy fixed
//	dio diff -backend http://localhost:9200 -index dio-events run-1 run-2
//
// A bare invocation (flags without a subcommand) keeps the historical
// behavior and is an alias for "dio trace".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/dsrhaslab/dio-go/internal/apps/dbbench"
	"github.com/dsrhaslab/dio-go/internal/apps/fluentbit"
	"github.com/dsrhaslab/dio-go/internal/apps/lsmkv"
	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/comparators"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/resilience"
	"github.com/dsrhaslab/dio-go/internal/viz"
)

func main() {
	args := os.Args[1:]
	// Subcommand dispatch; a leading flag (or nothing) selects trace so the
	// pre-subcommand invocation style keeps working.
	cmd := "trace"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	var err error
	switch cmd {
	case "trace":
		err = cmdTrace(args)
	case "diagnose":
		err = cmdDiagnose(args)
	case "diff":
		err = cmdDiff(args)
	case "help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "dio: unknown command %q\n\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dio:", err)
		os.Exit(1)
	}
}

func usage(w *os.File) {
	fmt.Fprint(w, `usage: dio <command> [flags]

commands:
  trace     trace a bundled workload and ship events to the backend (default)
  diagnose  run the diagnosis engine over a session (traced here or remote)
  diff      diagnose two sessions and classify every delta
  help      print this help

Run "dio <command> -h" for the command's flags.
`)
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("dio trace", flag.ExitOnError)
	var (
		configPath = fs.String("config", "", "JSON configuration file (overrides other flags)")
		workload   = fs.String("workload", "fluentbit-buggy", "workload: fluentbit-buggy|fluentbit-fixed|synthetic|rocksdb")
		session    = fs.String("session", "", "session name (auto-generated when empty)")
		index      = fs.String("index", "dio-events", "backend index")
		backend    = fs.String("backend", "", "backend URL (empty = in-process store)")
		syscalls   = fs.String("syscalls", "", "comma-separated syscall subset (empty = all 42)")
		paths      = fs.String("paths", "", "comma-separated path prefixes to trace")
		correlate  = fs.Bool("correlate", true, "run file-path correlation on stop")
		table      = fs.Bool("table", true, "print the access-pattern table (in-process backend only)")

		telemetryEvery = fs.Duration("telemetry", 0, "print a pipeline self-telemetry report at this interval, plus a final dashboard (0 = off)")

		resilient        = fs.Bool("resilience", false, "wrap the backend in the fault-tolerant ship path (retry, breaker, spill)")
		maxRetries       = fs.Int("max-retries", 0, "delivery attempts per batch before spilling (0 = default 4; implies -resilience)")
		spillEvents      = fs.Int("spill-events", 0, "spill-queue capacity in events (0 = default 65536; implies -resilience)")
		breakerThreshold = fs.Int("breaker-threshold", 0, "consecutive failures before the circuit breaker opens (0 = default 5; implies -resilience)")
		breakerCooldown  = fs.Duration("breaker-cooldown", 0, "how long the breaker stays open before a probe (0 = default 500ms; implies -resilience)")
		chaosRate        = fs.Float64("chaos-rate", 0, "inject transient bulk failures at this rate on the in-process backend (demo; implies -resilience)")
	)
	fs.Parse(args)

	fc := FileConfig{
		Session:       *session,
		Index:         *index,
		BackendURL:    *backend,
		AutoCorrelate: *correlate,
		Workload:      *workload,
	}
	if *syscalls != "" {
		fc.Syscalls = strings.Split(*syscalls, ",")
	}
	if *paths != "" {
		fc.Paths = strings.Split(*paths, ",")
	}
	if *resilient || *maxRetries > 0 || *spillEvents > 0 || *breakerThreshold > 0 ||
		*breakerCooldown > 0 || *chaosRate > 0 {
		fc.Resilience = &ResilienceFileConfig{
			MaxAttempts:           *maxRetries,
			SpillEvents:           *spillEvents,
			BreakerThreshold:      *breakerThreshold,
			BreakerCooldownMillis: int(breakerCooldown.Milliseconds()),
		}
	}
	if *configPath != "" {
		loaded, err := LoadFileConfig(*configPath)
		if err != nil {
			return err
		}
		fc = loaded
	}
	return run(fc, *table, *chaosRate, *telemetryEvery)
}

func run(fc FileConfig, printTable bool, chaosRate float64, telemetryEvery time.Duration) error {
	cfg, inproc, err := fc.TracerConfig()
	if err != nil {
		return err
	}
	var faulty *resilience.FaultyBackend
	if chaosRate > 0 {
		// Demo mode: inject transient bulk failures in front of the backend so
		// the resilience ladder is observable without a flaky network.
		faulty = resilience.NewFaultyBackend(cfg.Backend, time.Now().UnixNano())
		faulty.SetErrorRate(chaosRate)
		cfg.Backend = faulty
	}
	k := kernel.New(kernel.Config{
		Clock: clock.NewVirtualTicking(kernel.BaseTimestampNS, 200*time.Microsecond),
	})
	if fc.Workload == "rocksdb" {
		// The KVS workload needs real concurrency; use a real-time clock.
		k = kernel.New(kernel.Config{Clock: clock.NewReal(0)})
	}

	tracer, err := core.NewTracer(cfg)
	if err != nil {
		return err
	}
	if err := tracer.Start(k); err != nil {
		return err
	}
	fmt.Printf("dio: session %q tracing workload %q\n", tracer.Session(), fc.Workload)

	// -telemetry: periodic self-report while the workload runs ("DIO
	// observing DIO"). Each tick prints the conservation ledger one-liner;
	// the full dashboard renders after Stop.
	stopTelemetry := make(chan struct{})
	telemetryDone := make(chan struct{})
	if telemetryEvery > 0 {
		go func() {
			defer close(telemetryDone)
			tick := time.NewTicker(telemetryEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopTelemetry:
					return
				case <-tick.C:
					l := tracer.Ledger()
					fmt.Printf("telemetry: captured=%d shipped=%d ring-dropped=%d spill-dropped=%d parse-errors=%d pending=%d outstanding=%d\n",
						l.Captured, l.Shipped, l.RingDropped, l.SpillDropped,
						l.ParseErrors, l.Pending, l.Outstanding())
				}
			}
		}()
	} else {
		close(telemetryDone)
	}

	if err := runWorkload(k, fc.Workload); err != nil {
		close(stopTelemetry)
		tracer.Stop()
		return fmt.Errorf("workload: %w", err)
	}
	close(stopTelemetry)
	<-telemetryDone

	if faulty != nil {
		// The injected fault is transient: the backend recovers before
		// shutdown so the final flush can replay the spill queue.
		faulty.SetErrorRate(0)
	}
	stats, err := tracer.Stop()
	if err != nil {
		return fmt.Errorf("stop tracer: %w", err)
	}
	fmt.Printf("captured=%d filtered=%d dropped=%d shipped=%d\n",
		stats.Captured, stats.Filtered, stats.Dropped, stats.Shipped)
	if stats.ParseErrors > 0 {
		fmt.Printf("parse errors=%d\n", stats.ParseErrors)
	}
	if stats.Resilience != nil {
		fmt.Printf("resilience: retries=%d requeued=%d replayed=%d spill-dropped=%d breaker-opens=%d breaker=%s\n",
			stats.Retries, stats.Requeued, stats.Replayed, stats.SpillDropped,
			stats.BreakerOpens, stats.Resilience.BreakerState)
	}
	if faulty != nil {
		fmt.Printf("chaos: injected %d bulk failures\n", faulty.Injected())
	}
	if cfg.AutoCorrelate {
		fmt.Printf("correlation: %d tags resolved, %d events updated, %d unresolved\n",
			stats.Correlation.TagsResolved, stats.Correlation.EventsUpdated,
			stats.Correlation.EventsUnresolved)
	}

	if telemetryEvery > 0 {
		dash := viz.SelfDashboard(tracer.Telemetry())
		if err := dash.Render(os.Stdout); err != nil {
			return err
		}
		if ts := viz.SelfFlushSeries(tracer.Telemetry()); ts != nil {
			if err := ts.Render(os.Stdout); err != nil {
				return err
			}
		}
	}

	if printTable && inproc != nil {
		tbl, verr := viz.AccessPatternTable(inproc, tracer.Index(), tracer.Session())
		if verr != nil {
			return verr
		}
		if len(tbl.Rows) > 40 {
			tbl.Rows = tbl.Rows[:40]
			tbl.Title += " (first 40 rows)"
		}
		return tbl.Render(os.Stdout)
	}
	return nil
}

func runWorkload(k *kernel.Kernel, name string) error {
	switch name {
	case "fluentbit-buggy":
		res, err := fluentbit.RunScenario(k, "/var/log", fluentbit.VersionBuggy)
		if err != nil {
			return err
		}
		fmt.Printf("fluent-bit %s: lost %d bytes\n", res.Version, res.LostBytes)
		return nil
	case "fluentbit-fixed":
		res, err := fluentbit.RunScenario(k, "/var/log", fluentbit.VersionFixed)
		if err != nil {
			return err
		}
		fmt.Printf("fluent-bit %s: lost %d bytes\n", res.Version, res.LostBytes)
		return nil
	case "synthetic":
		task := k.NewProcess("synthetic").NewTask("synthetic")
		return comparators.RunWorkload(k, task, comparators.WorkloadConfig{}, 50)
	case "rocksdb":
		db, err := lsmkv.Open(k, lsmkv.Config{Dir: "/db"})
		if err != nil {
			return err
		}
		defer db.Close()
		cfg := dbbench.Config{Duration: time.Second, PreloadKeys: 2000, KeyCount: 2000}
		if err := dbbench.Preload(db, cfg); err != nil {
			return err
		}
		res, err := dbbench.Run(k, db, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("db_bench: %d ops, p99 %.2fms\n", res.Ops, res.Summary.P99/1e6)
		return nil
	default:
		return fmt.Errorf("unknown workload %q", name)
	}
}
