package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/ebpf"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/resilience"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// FileConfig is the tracer's JSON configuration file (§II-F: tracer options
// and analysis-pipeline parameters live in one config file).
type FileConfig struct {
	// Session labels this tracing execution.
	Session string `json:"session,omitempty"`
	// Index is the backend index receiving events.
	Index string `json:"index,omitempty"`
	// BackendURL points at a diod server; empty selects an in-process store.
	BackendURL string `json:"backend_url,omitempty"`
	// Syscalls restricts the traced syscall set (names from Table I).
	Syscalls []string `json:"syscalls,omitempty"`
	// Paths restricts tracing to these file/directory prefixes.
	Paths []string `json:"paths,omitempty"`
	// RingBytes is the per-CPU ring capacity.
	RingBytes int `json:"ring_bytes,omitempty"`
	// NumCPU is the number of per-CPU rings.
	NumCPU int `json:"num_cpu,omitempty"`
	// BatchSize groups events per bulk request.
	BatchSize int `json:"batch_size,omitempty"`
	// FlushIntervalMillis bounds batching delay.
	FlushIntervalMillis int `json:"flush_interval_millis,omitempty"`
	// AutoCorrelate runs file-path correlation when tracing stops.
	AutoCorrelate bool `json:"auto_correlate"`
	// Workload selects the bundled application to trace.
	Workload string `json:"workload,omitempty"`
	// Resilience enables the fault-tolerant ship path (retry, circuit
	// breaker, spill queue); nil ships directly to the backend.
	Resilience *ResilienceFileConfig `json:"resilience,omitempty"`
}

// ResilienceFileConfig is the JSON form of resilience.Config; zero fields
// take the library defaults.
type ResilienceFileConfig struct {
	// MaxAttempts bounds delivery attempts per batch (retries = attempts-1).
	MaxAttempts int `json:"max_attempts,omitempty"`
	// BaseBackoffMillis seeds the exponential backoff (full jitter).
	BaseBackoffMillis int `json:"base_backoff_millis,omitempty"`
	// MaxBackoffMillis caps a single backoff sleep.
	MaxBackoffMillis int `json:"max_backoff_millis,omitempty"`
	// AttemptTimeoutMillis bounds one delivery attempt (HTTP backends).
	AttemptTimeoutMillis int `json:"attempt_timeout_millis,omitempty"`
	// BreakerThreshold is consecutive failures before the breaker opens.
	BreakerThreshold int `json:"breaker_threshold,omitempty"`
	// BreakerCooldownMillis is how long the breaker stays open before probing.
	BreakerCooldownMillis int `json:"breaker_cooldown_millis,omitempty"`
	// SpillEvents bounds the spill queue (events parked during an outage).
	SpillEvents int `json:"spill_events,omitempty"`
}

// toConfig maps the JSON fields onto resilience.Config.
func (rc *ResilienceFileConfig) toConfig() *resilience.Config {
	if rc == nil {
		return nil
	}
	return &resilience.Config{
		MaxAttempts:      rc.MaxAttempts,
		BaseBackoff:      time.Duration(rc.BaseBackoffMillis) * time.Millisecond,
		MaxBackoff:       time.Duration(rc.MaxBackoffMillis) * time.Millisecond,
		AttemptTimeout:   time.Duration(rc.AttemptTimeoutMillis) * time.Millisecond,
		BreakerThreshold: rc.BreakerThreshold,
		BreakerCooldown:  time.Duration(rc.BreakerCooldownMillis) * time.Millisecond,
		SpillEvents:      rc.SpillEvents,
	}
}

// LoadFileConfig reads and validates a JSON config file.
func LoadFileConfig(path string) (FileConfig, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return FileConfig{}, fmt.Errorf("read config: %w", err)
	}
	var fc FileConfig
	if err := json.Unmarshal(raw, &fc); err != nil {
		return FileConfig{}, fmt.Errorf("parse config %s: %w", path, err)
	}
	if _, err := fc.syscallFilter(); err != nil {
		return FileConfig{}, err
	}
	return fc, nil
}

// syscallFilter resolves the syscall names into kernel identifiers.
func (fc FileConfig) syscallFilter() ([]kernel.Syscall, error) {
	out := make([]kernel.Syscall, 0, len(fc.Syscalls))
	for _, name := range fc.Syscalls {
		s, ok := kernel.SyscallByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unsupported syscall %q (see Table I)", name)
		}
		out = append(out, s)
	}
	return out, nil
}

// TracerConfig converts the file configuration into a core.Config, wiring
// either an in-process store or a remote HTTP backend.
func (fc FileConfig) TracerConfig() (core.Config, *store.Store, error) {
	syscalls, err := fc.syscallFilter()
	if err != nil {
		return core.Config{}, nil, err
	}
	cfg := core.Config{
		SessionName: fc.Session,
		Index:       fc.Index,
		Filter: ebpf.Filter{
			Syscalls:     syscalls,
			PathPrefixes: fc.Paths,
		},
		NumCPU:        fc.NumCPU,
		RingBytes:     fc.RingBytes,
		BatchSize:     fc.BatchSize,
		AutoCorrelate: fc.AutoCorrelate,
	}
	if fc.FlushIntervalMillis > 0 {
		cfg.FlushInterval = time.Duration(fc.FlushIntervalMillis) * time.Millisecond
	}
	cfg.Resilience = fc.Resilience.toConfig()
	var inproc *store.Store
	if fc.BackendURL != "" {
		cfg.Backend = store.NewClient(fc.BackendURL)
	} else {
		inproc = store.New()
		cfg.Backend = inproc
	}
	return cfg, inproc, nil
}
