// Kernel-side filtering (paper §II-B): narrow the tracing scope by syscall
// type, process, and file path — before events ever reach user space.
//
// The example runs the same two-process workload under three tracer
// configurations:
//
//  1. unfiltered (all 42 syscalls, every process),
//  2. filtered by syscall type and PID,
//  3. filtered by path prefix (fd-based syscalls follow their descriptor's
//     path via the kernel-side fd-interest map),
//
// and prints how many events each configuration captured versus rejected
// in kernel space.
//
// Run with:
//
//	go run ./examples/filtering
package main

import (
	"fmt"
	"log"
	"time"

	dio "github.com/dsrhaslab/dio-go"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// workload issues a fixed mix of syscalls from two tasks across two
// directory trees.
func workload(db, logger *dio.Task) error {
	for i := 0; i < 10; i++ {
		path := fmt.Sprintf("/data/db/%03d.sst", i)
		fd, err := db.Openat(dio.AtFDCWD, path, dio.OWronly|dio.OCreat, 0o644)
		if err != nil {
			return err
		}
		db.Write(fd, make([]byte, 1024))
		db.Fsync(fd)
		db.Close(fd)
		db.Stat(path)

		lfd, err := logger.Openat(dio.AtFDCWD, "/data/logs/app.log", dio.OWronly|dio.OCreat|dio.OAppend, 0o644)
		if err != nil {
			return err
		}
		logger.Write(lfd, []byte("log line\n"))
		logger.Close(lfd)
	}
	return nil
}

// trace sets up a fresh kernel and processes, lets mkFilter build a filter
// from the database task's PID, runs the workload traced, and reports the
// capture counters.
func trace(name string, mkFilter func(dbPID int) dio.Filter) error {
	k := dio.NewVirtualKernel()
	for _, dir := range []string{"/data/db", "/data/logs"} {
		if err := k.MkdirAll(dir); err != nil {
			return err
		}
	}
	db := k.NewProcess("mydb").NewTask("mydb")
	logger := k.NewProcess("logger").NewTask("logger")

	tracer, err := dio.NewTracer(dio.TracerConfig{
		SessionName:   name,
		Backend:       dio.NewStore(),
		Filter:        mkFilter(db.PID()),
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		return err
	}
	if err := tracer.Start(k); err != nil {
		return err
	}
	if err := workload(db, logger); err != nil {
		return err
	}
	stats, err := tracer.Stop()
	if err != nil {
		return err
	}
	fmt.Printf("%-28s captured=%4d filtered-in-kernel=%4d shipped=%4d\n",
		name+":", stats.Captured, stats.Filtered, stats.Shipped)
	return nil
}

func run() error {
	// 1. Everything.
	if err := trace("unfiltered", func(int) dio.Filter {
		return dio.Filter{}
	}); err != nil {
		return err
	}

	// 2. Only write+fsync syscalls of the database process.
	if err := trace("writes+fsync, db PID only", func(dbPID int) dio.Filter {
		var set []dio.Syscall
		for _, n := range []string{"write", "fsync"} {
			s, _ := dio.SyscallByName(n)
			set = append(set, s)
		}
		return dio.Filter{Syscalls: set, PIDs: []int{dbPID}}
	}); err != nil {
		return err
	}

	// 3. Only accesses under /data/logs — write and close are fd-based
	// syscalls: the kernel-side fd-interest map extends the path filter to
	// them.
	return trace("paths under /data/logs", func(int) dio.Filter {
		return dio.Filter{PathPrefixes: []string{"/data/logs"}}
	})
}
