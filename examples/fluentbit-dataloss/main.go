// Fluent Bit data loss (paper §III-B, Fig. 2): diagnose an erroneous file
// access pattern that loses log data, then validate the fix.
//
// The example runs the issue #1875 scenario twice — once against the buggy
// v1.4.0-style tail plugin and once against the fixed v2.0.5-style one —
// while DIO traces both the log-writing client and the forwarder. The
// printed tables are the Fig. 2a and Fig. 2b views: in the buggy run the
// forwarder resumes reading at the stale offset 26 of a freshly created
// 16-byte file (read returns 0: data lost); in the fixed run it reads from
// offset 0 and recovers everything.
//
// Run with:
//
//	go run ./examples/fluentbit-dataloss
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	dio "github.com/dsrhaslab/dio-go"
	"github.com/dsrhaslab/dio-go/workloads"
)

func main() {
	// One shared backend stores both tracing executions, enabling the
	// post-mortem comparison at the end (paper §II-F).
	backend := dio.NewStore()
	sessA, err := run(backend, workloads.FluentBitBuggy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	sessB, err := run(backend, workloads.FluentBitFixed)
	if err != nil {
		log.Fatal(err)
	}

	deltas, err := dio.CompareSessions(context.Background(), backend, "dio-events", sessA, sessB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := dio.RenderComparison(deltas, sessA, sessB).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("(note the lseek present only in the buggy session)")

	// The diff engine reaches the same verdict automatically: the fixed
	// session resolves the critical finding, so the delta is an improvement.
	diff, err := dio.DiffSessions(context.Background(), backend, "dio-events", sessA, sessB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", diff)
}

func run(backend *dio.Store, version workloads.FluentBitVersion) (string, error) {
	k := dio.NewVirtualKernel()

	// Trace only the syscalls the diagnosis needs (kernel-side filtering,
	// §II-B) — the forwarder's stat() polling is excluded to match the
	// paper's figures.
	var syscalls []dio.Syscall
	for _, name := range []string{"openat", "write", "read", "lseek", "close", "unlink"} {
		s, ok := dio.SyscallByName(name)
		if !ok {
			return "", fmt.Errorf("unknown syscall %q", name)
		}
		syscalls = append(syscalls, s)
	}
	tracer, err := dio.NewTracer(dio.TracerConfig{
		SessionName:   "fluentbit-" + version.String(),
		Index:         "dio-events",
		Backend:       backend,
		Filter:        dio.Filter{Syscalls: syscalls},
		AutoCorrelate: true,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		return "", err
	}
	if err := tracer.Start(k); err != nil {
		return "", err
	}

	result, err := workloads.RunFluentBitScenario(k, "/var/log", version)
	if err != nil {
		return "", err
	}
	stats, err := tracer.Stop()
	if err != nil {
		return "", err
	}

	table, err := dio.AccessPatternTable(backend, tracer.Index(), tracer.Session())
	if err != nil {
		return "", err
	}
	if version == workloads.FluentBitBuggy {
		table.Title = "Fig. 2a — Fluent Bit " + version.String() + " erroneous access pattern"
	} else {
		table.Title = "Fig. 2b — Fluent Bit " + version.String() + " correct access pattern"
	}
	if err := table.Render(os.Stdout); err != nil {
		return "", err
	}

	fmt.Printf("\ntraced %d events; client wrote %d+%d bytes; forwarder received %d\n",
		stats.Shipped,
		len(result.FirstWrite), len(result.SecondWrite), len(result.Received))
	if result.DataLost() {
		fmt.Printf("=> DATA LOSS: %d bytes never reached the forwarder "+
			"(stale offset database entry after inode reuse)\n", result.LostBytes)
	} else {
		fmt.Println("=> no data lost: the fix invalidates stale offsets")
	}
	return tracer.Session(), nil
}
