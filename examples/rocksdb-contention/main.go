// RocksDB tail-latency contention (paper §III-C, Figures 3 and 4): find the
// root cause of client latency spikes without instrumenting the store.
//
// The example opens an LSM key-value store (1 flush thread, 7 compaction
// threads) on a shared simulated disk, runs 8 closed-loop YCSB-A client
// threads against it, and traces the database process with DIO capturing
// only open/read/write/close. It then prints:
//
//   - the Fig. 3 view: p99 client latency per 100ms window, and
//   - the Fig. 4 view: syscalls per window aggregated by thread name,
//
// and correlates the two: windows where many rocksdb:lowX threads issue
// I/O are the windows where client p99 spikes — the SILK phenomenon.
//
// Run with:
//
//	go run ./examples/rocksdb-contention
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	dio "github.com/dsrhaslab/dio-go"
	"github.com/dsrhaslab/dio-go/workloads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A modest shared disk: foreground requests are small, compaction
	// streams are large — the contention mechanism of the paper.
	k := dio.NewKernel(dio.KernelConfig{
		Disk: dio.DiskConfig{
			BytesPerSecond: 50 << 20,
			PerOpLatency:   20 * time.Microsecond,
		},
	})

	db, err := workloads.OpenLSM(k, workloads.LSMConfig{
		Dir:               "/db",
		MemtableBytes:     96 << 10,
		L0CompactTrigger:  4,
		LevelBaseBytes:    256 << 10,
		TargetFileBytes:   128 << 10,
		CompactionThreads: 7,
	})
	if err != nil {
		return err
	}
	defer db.Close()

	benchCfg := workloads.DBBenchConfig{
		Clients:     8,
		Duration:    2 * time.Second,
		KeyCount:    5000,
		ValueBytes:  512,
		PreloadKeys: 5000,
	}
	if err := workloads.DBBenchPreload(db, benchCfg); err != nil {
		return err
	}

	backend := dio.NewStore()
	var syscalls []dio.Syscall
	for _, name := range []string{"open", "openat", "read", "pread64", "write", "pwrite64", "close"} {
		s, _ := dio.SyscallByName(name)
		syscalls = append(syscalls, s)
	}
	tracer, err := dio.NewTracer(dio.TracerConfig{
		SessionName: "rocksdb-contention",
		Backend:     backend,
		Filter: dio.Filter{
			Syscalls: syscalls,
			PIDs:     []int{db.Process().PID()},
		},
		NumCPU:        4,
		FlushInterval: 5 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	if err := tracer.Start(k); err != nil {
		return err
	}

	fmt.Println("running db_bench (8 clients, YCSB-A) under DIO tracing...")
	res, err := workloads.RunDBBench(k, db, benchCfg)
	if err != nil {
		return err
	}
	stats, err := tracer.Stop()
	if err != nil {
		return err
	}

	fmt.Printf("\n%d ops in %v (%.0f ops/s); overall p99 %.2fms\n",
		res.Ops, res.Elapsed.Round(time.Millisecond), res.Throughput(), res.Summary.P99/1e6)
	fmt.Printf("background work: %d flushes, %d compactions (%d at L0)\n",
		res.DBStats.Flushes, res.DBStats.Compactions, res.DBStats.L0Compactions)
	fmt.Printf("tracer: %d events captured, %d dropped (%.2f%%)\n\n",
		stats.Captured, stats.Dropped, stats.DropFraction()*100)

	// Fig. 3: p99 latency per window.
	fmt.Println("Fig. 3 — 99th percentile client latency per 100ms window:")
	for _, p := range res.Recorder.Series() {
		bar := strings.Repeat("#", int(p.P99/1e6))
		fmt.Printf("  t=%5dms p99=%7.2fms %s\n", (p.StartNS-res.StartNS)/1e6, p.P99/1e6, bar)
	}

	// Fig. 4: syscalls over time by thread name.
	timeline, err := dio.SyscallTimeline(backend, tracer.Index(), tracer.Session(),
		int64(100*time.Millisecond))
	if err != nil {
		return err
	}
	fmt.Println("\nFig. 4 — syscalls per window by thread (sparklines):")
	return timeline.Render(os.Stdout)
}
