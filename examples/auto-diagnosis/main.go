// Automated diagnosis and trace replay (the paper's §V future work,
// implemented): trace a buggy application once, let rule-based detectors
// find the bug, then replay the trace on a fresh kernel to reproduce the
// faulty state deterministically.
//
// The example traces the Fluent Bit v1.4.0 data-loss scenario, runs
// dio.Diagnose — which flags the stale-offset read at offset 26 as
// critical — and then re-executes the trace with dio.ReplaySession,
// verifying every replayed return value against the original trace.
//
// Run with:
//
//	go run ./examples/auto-diagnosis
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	dio "github.com/dsrhaslab/dio-go"
	"github.com/dsrhaslab/dio-go/workloads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Trace the buggy workload.
	k := dio.NewVirtualKernel()
	backend := dio.NewStore()
	tracer, err := dio.NewTracer(dio.TracerConfig{
		SessionName:   "flb-buggy",
		Backend:       backend,
		AutoCorrelate: true,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		return err
	}
	if err := tracer.Start(k); err != nil {
		return err
	}
	scenario, err := workloads.RunFluentBitScenario(k, "/var/log", workloads.FluentBitBuggy)
	if err != nil {
		return err
	}
	if _, err := tracer.Stop(); err != nil {
		return err
	}
	fmt.Printf("workload done: forwarder lost %d bytes\n\n", scenario.LostBytes)

	// 2. Automated diagnosis: no manual table reading required. The engine
	// runs every registered detector and scores the session's health.
	report, err := dio.Diagnose(context.Background(), backend, tracer.Index(), tracer.Session())
	if err != nil {
		return err
	}
	fmt.Print(report)
	if !report.Critical() {
		return fmt.Errorf("expected a critical finding")
	}
	fmt.Printf("health score: %d/100\n", report.HealthScore)

	// 3. Replay the trace on a brand-new kernel: the bug's filesystem
	// state reproduces without rerunning the applications.
	fresh := dio.NewVirtualKernel()
	replayed, err := dio.ReplaySession(backend, tracer.Index(), tracer.Session(), fresh)
	if err != nil {
		return err
	}
	fmt.Printf("\nreplay: %d events re-executed, %d skipped, %d mismatches\n",
		replayed.Replayed, replayed.Skipped, len(replayed.Mismatches))
	data, err := fresh.ReadFileContents("/var/log/app.log")
	if err != nil {
		return err
	}
	fmt.Printf("replayed kernel's app.log holds %d bytes the forwarder never read\n", len(data))
	return nil
}
