// Quickstart: trace a tiny application end-to-end with DIO.
//
// The example boots a simulated kernel, starts a tracing session backed by
// an in-process analysis store, runs a few syscalls, and prints the
// enriched trace — including the file tag and offset enrichment and the
// correlated file paths.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	dio "github.com/dsrhaslab/dio-go"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A simulated kernel with a deterministic clock.
	k := dio.NewVirtualKernel()
	if err := k.MkdirAll("/tmp"); err != nil {
		return err
	}

	// 2. The analysis backend (in-process here; see examples elsewhere for
	// the remote HTTP deployment) and a tracing session.
	backend := dio.NewStore()
	tracer, err := dio.NewTracer(dio.TracerConfig{
		SessionName:   "quickstart",
		Backend:       backend,
		AutoCorrelate: true,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		return err
	}
	if err := tracer.Start(k); err != nil {
		return err
	}

	// 3. The "application": a process issuing storage syscalls.
	task := k.NewProcess("app").NewTask("app")
	fd, err := task.Openat(dio.AtFDCWD, "/tmp/greeting.txt", dio.OWronly|dio.OCreat, 0o644)
	if err != nil {
		return err
	}
	if _, err := task.Write(fd, []byte("hello, observability!")); err != nil {
		return err
	}
	if err := task.Close(fd); err != nil {
		return err
	}
	// Read it back through a second descriptor.
	fd, err = task.Openat(dio.AtFDCWD, "/tmp/greeting.txt", dio.ORdonly, 0)
	if err != nil {
		return err
	}
	buf := make([]byte, 64)
	n, err := task.Read(fd, buf)
	if err != nil {
		return err
	}
	task.Close(fd)
	fmt.Printf("application read back: %q\n\n", buf[:n])

	// 4. Stop tracing; events are already indexed (near-real-time pipeline).
	stats, err := tracer.Stop()
	if err != nil {
		return err
	}
	fmt.Printf("traced %d events (%d dropped); correlation resolved %d tags\n\n",
		stats.Shipped, stats.Dropped, stats.Correlation.TagsResolved)

	// 5. Visualize: the Fig. 2-style tabular view of the session.
	table, err := dio.AccessPatternTable(backend, tracer.Index(), tracer.Session())
	if err != nil {
		return err
	}
	if err := table.Render(os.Stdout); err != nil {
		return err
	}

	// 6. And a per-syscall histogram.
	hist, err := dio.SyscallHistogram(backend, tracer.Index(), tracer.Session())
	if err != nil {
		return err
	}
	fmt.Println()
	return hist.Render(os.Stdout)
}
