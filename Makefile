GO ?= go

.PHONY: tier1 build test race vet bench scale chaos lint examples

## tier1: the PR gate — vet, build (examples included), the dead-symbol
## lint, tests, the race detector over the concurrency-heavy packages (store
## sharding, tracer drain workers), and the chaos suite (fault injection on
## the ship path).
tier1: vet build examples lint test race chaos

build:
	$(GO) build ./...

## examples: compile the runnable examples (not covered by ./... test runs).
examples:
	$(GO) build ./examples/...

## lint: dead-symbol analysis — unexported package-level declarations that
## nothing in their package references (the class of bug behind the dead
## openSyscalls dictionary in correlate.go).
lint:
	$(GO) run ./internal/tools/deadsym .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## bench: the paper-evaluation and ablation benchmarks.
bench:
	$(GO) test -run xxx -bench . -benchmem .

## scale: the backend/tracer scalability experiment (legacy vs sharded).
scale:
	$(GO) run ./cmd/diobench -exp scale

## chaos: the fault-injection suite — shipper, breaker, spill, and the
## tracer-level exact-accounting tests, raced and repeated.
chaos:
	$(GO) test -race -count=2 -run 'Chaos|Shipper|Breaker|Faulty|Spill' ./internal/resilience/ ./internal/store/ ./internal/core/
