GO ?= go

.PHONY: tier1 build test race vet bench scale

## tier1: the PR gate — vet, build, tests, and the race detector over the
## concurrency-heavy packages (store sharding, tracer drain workers).
tier1: vet build test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## bench: the paper-evaluation and ablation benchmarks.
bench:
	$(GO) test -run xxx -bench . -benchmem .

## scale: the backend/tracer scalability experiment (legacy vs sharded).
scale:
	$(GO) run ./cmd/diobench -exp scale
