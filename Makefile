GO ?= go

.PHONY: tier1 build test race vet bench bench-smoke scale chaos lint examples

## tier1: the PR gate — vet, build (examples included), the dead-symbol
## lint, tests, the race detector over the concurrency-heavy packages (store
## sharding, tracer drain workers), the chaos suite (fault injection on the
## ship path), and a smoke run of the ingest benchmarks.
tier1: vet build examples lint test race chaos bench-smoke

build:
	$(GO) build ./...

## examples: compile the runnable examples (not covered by ./... test runs).
examples:
	$(GO) build ./examples/...

## lint: dead-symbol analysis — unexported package-level declarations that
## nothing in their package references (the class of bug behind the dead
## openSyscalls dictionary in correlate.go), plus an audit of the store
## package for exported symbols nothing outside the package uses.
lint:
	$(GO) run ./internal/tools/deadsym -exported internal/store .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## bench: the paper-evaluation and ablation benchmarks.
bench:
	$(GO) test -run xxx -bench . -benchmem .

## bench-smoke: a fast (100-iteration) run of the ingest benchmarks so the
## typed-vs-document data plane numbers cannot silently rot.
bench-smoke:
	$(GO) test -run xxx -bench Ingest -benchtime=100x -benchmem .

## scale: the backend/tracer scalability experiment (legacy vs sharded).
scale:
	$(GO) run ./cmd/diobench -exp scale

## chaos: the fault-injection suite — shipper, breaker, spill, and the
## tracer-level exact-accounting tests, raced and repeated.
chaos:
	$(GO) test -race -count=2 -run 'Chaos|Shipper|Breaker|Faulty|Spill' ./internal/resilience/ ./internal/store/ ./internal/core/
