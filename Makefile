GO ?= go

.PHONY: tier1 build test race vet bench bench-smoke bench-read scale chaos chaos-repl chaos-cluster crash lint examples diagnose

## tier1: the PR gate — vet, build (examples included), the dead-symbol
## lint, tests, the race detector over the concurrency-heavy packages (store
## sharding, tracer drain workers), the chaos suite (fault injection on the
## ship path), the replication chaos suite (partitions, duplicated and
## reordered frames, failover), the crash-recovery matrix (durability kill
## points), the diagnosis-engine smoke run, and smoke runs of the ingest and
## dashboard-read benchmarks.
tier1: vet build examples lint test race chaos chaos-repl chaos-cluster crash diagnose bench-smoke bench-read

build:
	$(GO) build ./...

## examples: compile the runnable examples (not covered by ./... test runs).
examples:
	$(GO) build ./examples/...

## lint: dead-symbol analysis — unexported package-level declarations that
## nothing in their package references (the class of bug behind the dead
## openSyscalls dictionary in correlate.go), plus an audit of the store and
## durable packages for exported symbols nothing outside them uses.
lint:
	$(GO) run ./internal/tools/deadsym -exported internal/store,internal/durable,internal/repl,internal/cluster,internal/diagnose .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## bench: the paper-evaluation and ablation benchmarks.
bench:
	$(GO) test -run xxx -bench . -benchmem .

## bench-smoke: a fast (100-iteration) run of the ingest benchmarks so the
## typed-vs-document data plane numbers cannot silently rot.
bench-smoke:
	$(GO) test -run xxx -bench Ingest -benchtime=100x -benchmem .

## bench-read: a fast smoke run of the dashboard read-path benchmark
## (rollups + query cache vs the uncached scan ablation) and the tiered
## segment-pruning benchmark (time-range planner vs the full-scan ablation)
## so the p50/p99 and pruning-speedup numbers cannot silently rot.
bench-read:
	$(GO) test -run xxx -bench 'DashboardReadPath|SegmentPrunedSearch' -benchtime=50x .

## diagnose: end-to-end smoke of the diagnosis engine through the real CLI —
## the buggy Fluent Bit session must produce a critical report, and the
## buggy-vs-fixed diff must land on an improvement verdict.
diagnose:
	$(GO) run ./cmd/dio diagnose -workload fluentbit-buggy | grep critical >/dev/null
	$(GO) run ./cmd/dio diff buggy fixed | grep improvement >/dev/null

## scale: the backend/tracer scalability experiment (legacy vs sharded).
scale:
	$(GO) run ./cmd/diobench -exp scale

## chaos: the fault-injection suite — shipper, breaker, spill, and the
## tracer-level exact-accounting tests, raced and repeated.
chaos:
	$(GO) test -race -count=2 -run 'Chaos|Shipper|Breaker|Faulty|Spill' ./internal/resilience/ ./internal/store/ ./internal/core/

## chaos-repl: the replication fault harness — partitioned, delayed,
## duplicated, and reordered frames, follower crash mid-replay, primary
## kill mid-ingest with follower promotion, graceful-stop resume, and the
## HTTP chaos injector on the /_repl endpoints — raced and repeated.
chaos-repl:
	$(GO) test -race -count=2 -run 'TestRepl|TestFollower|TestFailover|TestPartition|TestDelayed|TestPrimaryKill|TestGraceful|TestRetryAfter|TestSync|TestChaosRepl|TestHealth|FuzzWALReplay' ./internal/repl/ ./internal/store/ ./internal/durable/

## chaos-cluster: the partitioned-coordinator fault harness — the 1-node vs
## 4-node differential fingerprint (byte-identical search/count/agg/cursor
## responses), node loss mid-scatter with breaker trip and half-open
## recovery, striped-bulk partial failure and counter reseed, cursor resume
## across coordinator restarts and across a partition's primary failover,
## and the HTTP transparency suite (raw response-body comparison against a
## bare node) — raced and repeated.
chaos-cluster:
	$(GO) test -race -count=2 ./internal/cluster/

## crash: the durability crash matrix — torn WAL tails, mid-snapshot kills,
## superseded-log resurrection, frame-journal round-trips, and the tiered
## segment matrix (torn segment writes, compaction killed before the
## manifest commit, manifests referencing missing segments, multi-segment
## follower bootstrap) — each recovery compared field-for-field against a
## never-crashed control, under -race.
crash:
	$(GO) test -race -run 'TestCrash|TestDurable|TestFrameJournal|TestRecovery|TestWAL|TestSegment|TestManifest' ./internal/store/ ./internal/durable/
