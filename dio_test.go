package dio_test

import (
	"strings"
	"testing"
	"time"

	dio "github.com/dsrhaslab/dio-go"
)

// TestPublicAPIEndToEnd exercises the library exactly as the package
// documentation advertises: simulated kernel, traced workload, backend
// queries, correlation, and visualization — all through the public facade.
func TestPublicAPIEndToEnd(t *testing.T) {
	k := dio.NewVirtualKernel()
	if err := k.MkdirAll("/tmp"); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	backend := dio.NewStore()
	tracer, err := dio.NewTracer(dio.TracerConfig{
		SessionName:   "api-demo",
		Backend:       backend,
		AutoCorrelate: true,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("new tracer: %v", err)
	}
	if err := tracer.Start(k); err != nil {
		t.Fatalf("start: %v", err)
	}

	task := k.NewProcess("app").NewTask("app")
	fd, err := task.Openat(dio.AtFDCWD, "/tmp/file", dio.OWronly|dio.OCreat, 0o644)
	if err != nil {
		t.Fatalf("openat: %v", err)
	}
	task.Write(fd, []byte("hello"))
	task.Close(fd)

	stats, err := tracer.Stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	if stats.Shipped != 3 {
		t.Fatalf("shipped = %d", stats.Shipped)
	}

	table, err := dio.AccessPatternTable(backend, tracer.Index(), tracer.Session())
	if err != nil {
		t.Fatalf("table: %v", err)
	}
	out := table.String()
	for _, want := range []string{"openat", "write", "close", "app"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}

	hist, err := dio.SyscallHistogram(backend, tracer.Index(), tracer.Session())
	if err != nil || len(hist.Labels) != 3 {
		t.Fatalf("histogram = (%v, %v)", hist, err)
	}
	ts, err := dio.SyscallTimeline(backend, tracer.Index(), tracer.Session(), int64(time.Millisecond))
	if err != nil || len(ts.Series) == 0 {
		t.Fatalf("timeline = (%v, %v)", ts, err)
	}
}

func TestAllSyscallsExposed(t *testing.T) {
	if got := len(dio.AllSyscalls()); got != dio.NumSyscalls || dio.NumSyscalls != 42 {
		t.Fatalf("AllSyscalls = %d", got)
	}
	if s, ok := dio.SyscallByName("openat"); !ok || s.String() != "openat" {
		t.Fatalf("SyscallByName = (%v, %v)", s, ok)
	}
}

func TestRemoteBackendFacade(t *testing.T) {
	st := dio.NewStore()
	// The server facade compiles into an http.Handler; spot-check wiring
	// through the client against a live listener elsewhere (store tests);
	// here just ensure construction works.
	if srv := dio.NewServer(st); srv == nil {
		t.Fatal("nil server")
	}
	if c := dio.NewClient("http://127.0.0.1:1"); c == nil {
		t.Fatal("nil client")
	}
}
