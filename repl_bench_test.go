// Replication-overhead benchmark: prices what a live follower costs the
// primary's ingest path. The primary runs the deployed configuration
// (durable, interval fsync) behind a real HTTP server. Three variants:
//
//   - Primary: no replication at all (baseline).
//   - Shipped: the primary-side cost — replication armed (each journaled
//     payload handed to the tail buffer) and a Replicator concurrently
//     draining the buffer and pushing frames; the transport acks and
//     discards, standing in for a follower on other hardware. This is the
//     number the <=10% acceptance bar applies to.
//   - InProcessFollower: the whole pair in one process — frames go over
//     real HTTP into a real follower that fully applies them. On a
//     single-core host this double-counts the follower's CPU against the
//     primary's, so it is reported as the worst-case bound, not the bar.
//
// See BENCH_store.json.
package dio_test

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/repl"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// discardTransport acks every push without applying it: a stand-in for a
// follower whose CPU lives on another machine. It still enforces sequence
// continuity, so the replicator does all its real primary-side work.
type discardTransport struct {
	mu    sync.Mutex
	acked map[string]int64
}

func (d *discardTransport) Target() string { return "discard://follower" }

func (d *discardTransport) Status(context.Context) (store.ReplState, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := store.ReplState{Role: "follower", Indices: map[string]int64{}}
	for k, v := range d.acked {
		st.Indices[k] = v
	}
	return st, nil
}

func (d *discardTransport) Apply(_ context.Context, index string, from int64, frames []store.ReplFrame) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.acked == nil {
		d.acked = map[string]int64{}
	}
	if got := d.acked[index]; got != from {
		return got, &store.ReplSeqError{Want: got, Got: from}
	}
	d.acked[index] = from + int64(len(frames))
	return d.acked[index], nil
}

func (d *discardTransport) Bootstrap(_ context.Context, index string, snap store.ReplSnapshot) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.acked == nil {
		d.acked = map[string]int64{}
	}
	d.acked[index] = snap.Seq
	return nil
}

func BenchmarkReplicationOverhead(b *testing.B) {
	raws := ingestRecords()
	run := func(b *testing.B, mkTransport func(b *testing.B) repl.Transport) {
		// The tail buffer must cover one poll interval of ingest (the sizing
		// rule on WithReplicationBuffer): this bench sustains ~75 MB/s, so
		// the 4 MB default would evict frames between 50ms drains and push
		// the shipper onto the WAL file-scan fallback — correct, but paying
		// a re-read+CRC for bytes that were just in memory.
		st, err := store.Open(
			store.WithDataDir(b.TempDir()),
			store.WithFsyncPolicy(store.FsyncInterval),
			store.WithReplicationBuffer(64<<20),
			store.WithSnapshotInterval(0))
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		var r *repl.Replicator
		if mkTransport != nil {
			// The default 50ms interval: sub-millisecond polling would put
			// clock.Real.Sleep on its yield-spin path and burn the core.
			r = repl.New(st, mkTransport(b), repl.Config{})
			r.Start()
			defer r.Stop()
		}
		srv := httptest.NewServer(store.NewServer(st))
		defer srv.Close()
		c := store.NewClient(srv.URL)
		batch := make([]event.Event, 0, ingestBatchSize)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch = ingestParse(raws, batch[:0])
			if err := c.BulkEvents(context.Background(), "bench", batch); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(ingestBatchSize), "events/op")
		if r != nil {
			// The stream must actually have been flowing, or the "overhead"
			// measured nothing.
			if err := r.Stop(); err != nil {
				b.Fatalf("final drain: %v", err)
			}
			if s := r.Stats(); s.ShippedRecords == 0 || s.Lag != 0 {
				b.Fatalf("replication did not keep up: %+v", s)
			}
		}
	}
	b.Run("Primary", func(b *testing.B) { run(b, nil) })
	b.Run("Shipped", func(b *testing.B) {
		run(b, func(*testing.B) repl.Transport { return &discardTransport{} })
	})
	b.Run("InProcessFollower", func(b *testing.B) {
		run(b, func(b *testing.B) repl.Transport {
			follower := store.New()
			follower.SetFollower()
			fsrv := httptest.NewServer(store.NewServer(follower))
			b.Cleanup(fsrv.Close)
			return repl.ClientTransport{C: store.NewClient(fsrv.URL)}
		})
	})
}
