module github.com/dsrhaslab/dio-go

go 1.22
