package dio_test

import (
	"context"
	"fmt"
	"time"

	dio "github.com/dsrhaslab/dio-go"
)

// Example traces a tiny application end-to-end: simulated kernel, tracing
// session, backend query, and visualization.
func Example() {
	k := dio.NewVirtualKernel()
	if err := k.MkdirAll("/tmp"); err != nil {
		fmt.Println("mkdir:", err)
		return
	}
	backend := dio.NewStore()
	tracer, err := dio.NewTracer(dio.TracerConfig{
		SessionName:   "example",
		Backend:       backend,
		AutoCorrelate: true,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		fmt.Println("new tracer:", err)
		return
	}
	if err := tracer.Start(k); err != nil {
		fmt.Println("start:", err)
		return
	}

	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(dio.AtFDCWD, "/tmp/file", dio.OWronly|dio.OCreat, 0o644)
	task.Write(fd, []byte("hello"))
	task.Close(fd)

	stats, _ := tracer.Stop()
	fmt.Printf("events traced: %d, dropped: %d\n", stats.Shipped, stats.Dropped)

	// Visualize the session as a per-syscall histogram.
	hist, _ := dio.SyscallHistogram(backend, tracer.Index(), tracer.Session())
	fmt.Printf("distinct syscalls: %d\n", len(hist.Labels))
	// Output:
	// events traced: 3, dropped: 0
	// distinct syscalls: 3
}

// ExampleFilter shows kernel-side filtering: only write syscalls of the
// chosen process reach the tracer.
func ExampleFilter() {
	k := dio.NewVirtualKernel()
	k.MkdirAll("/tmp")
	backend := dio.NewStore()

	writeSys, _ := dio.SyscallByName("write")
	proc := k.NewProcess("db")
	task := proc.NewTask("db")

	tracer, _ := dio.NewTracer(dio.TracerConfig{
		SessionName:   "filtered",
		Backend:       backend,
		Filter:        dio.Filter{Syscalls: []dio.Syscall{writeSys}, PIDs: []int{proc.PID()}},
		FlushInterval: time.Millisecond,
	})
	tracer.Start(k)

	fd, _ := task.Openat(dio.AtFDCWD, "/tmp/data", dio.OWronly|dio.OCreat, 0o644)
	task.Write(fd, []byte("a"))
	task.Write(fd, []byte("b"))
	task.Close(fd)

	stats, _ := tracer.Stop()
	fmt.Printf("captured %d write events\n", stats.Shipped)
	// Output:
	// captured 2 write events
}

// ExampleFileOffsetPattern classifies a file's access pattern from the
// tracer's offset enrichment.
func ExampleFileOffsetPattern() {
	k := dio.NewVirtualKernel()
	k.MkdirAll("/tmp")
	backend := dio.NewStore()
	tracer, _ := dio.NewTracer(dio.TracerConfig{
		SessionName:   "pattern",
		Backend:       backend,
		AutoCorrelate: true,
		FlushInterval: time.Millisecond,
	})
	tracer.Start(k)

	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(dio.AtFDCWD, "/tmp/stream", dio.OWronly|dio.OCreat, 0o644)
	chunk := make([]byte, 8192)
	for i := 0; i < 4; i++ {
		task.Write(fd, chunk)
	}
	task.Close(fd)
	tracer.Stop()

	p, _ := dio.FileOffsetPattern(context.Background(), backend, tracer.Index(), tracer.Session(), "/tmp/stream")
	fmt.Printf("%s: %d writes, classification %q\n", p.FilePath, p.Writes, p.Classification())
	// Output:
	// /tmp/stream: 4 writes, classification "sequential"
}

// ExampleDiagnose runs the automated detectors over a traced session.
func ExampleDiagnose() {
	k := dio.NewVirtualKernel()
	k.MkdirAll("/var/log")
	backend := dio.NewStore()
	tracer, _ := dio.NewTracer(dio.TracerConfig{
		SessionName:   "diag",
		Backend:       backend,
		AutoCorrelate: true,
		FlushInterval: time.Millisecond,
	})
	tracer.Start(k)

	// A reader resumes past EOF on a fresh file — the §III-B bug signature.
	writer := k.NewProcess("app").NewTask("app")
	fd, _ := writer.Openat(dio.AtFDCWD, "/var/log/x.log", dio.OWronly|dio.OCreat, 0o644)
	writer.Write(fd, []byte("0123456789"))
	writer.Close(fd)
	reader := k.NewProcess("tailer").NewTask("tailer")
	rfd, _ := reader.Openat(dio.AtFDCWD, "/var/log/x.log", dio.ORdonly, 0)
	reader.Lseek(rfd, 100, 0) // stale offset past EOF
	reader.Read(rfd, make([]byte, 64))
	reader.Close(rfd)
	tracer.Stop()

	report, _ := dio.Diagnose(context.Background(), backend, tracer.Index(), tracer.Session())
	fmt.Printf("critical finding: %v (%d findings)\n", report.Critical(), len(report.Findings))
	// Output:
	// critical finding: true (1 findings)
}
