// Package workloads exposes the paper's evaluation subjects through the
// public API: the Fluent Bit-style tail forwarder of §III-B (buggy v1.4.0
// and fixed v2.0.5 behaviours) and the RocksDB-style LSM key-value store
// with its db_bench YCSB-A client harness of §III-C. Examples and
// downstream users drive these workloads on a simulated kernel while a
// dio.Tracer observes them.
package workloads

import (
	"github.com/dsrhaslab/dio-go/internal/apps/dbbench"
	"github.com/dsrhaslab/dio-go/internal/apps/fluentbit"
	"github.com/dsrhaslab/dio-go/internal/apps/lsmkv"
	"github.com/dsrhaslab/dio-go/internal/kernel"
)

// Fluent Bit workload (§III-B).
type (
	// FluentBitVersion selects the buggy or fixed tail-plugin behaviour.
	FluentBitVersion = fluentbit.Version
	// FluentBitForwarder is the tail input plugin.
	FluentBitForwarder = fluentbit.Forwarder
	// FluentBitScenarioResult reports the data-loss outcome.
	FluentBitScenarioResult = fluentbit.ScenarioResult
	// LogWriter is the client program generating log-file churn.
	LogWriter = fluentbit.LogWriter
)

// Fluent Bit versions.
const (
	// FluentBitBuggy mirrors v1.4.0 (loses data on inode reuse).
	FluentBitBuggy = fluentbit.VersionBuggy
	// FluentBitFixed mirrors v2.0.5.
	FluentBitFixed = fluentbit.VersionFixed
)

// NewFluentBitForwarder creates a tail forwarder on task following path.
func NewFluentBitForwarder(task *kernel.Task, path string, v FluentBitVersion) *FluentBitForwarder {
	return fluentbit.NewForwarder(task, path, v)
}

// NewLogWriter creates the log-writing client on task for path.
func NewLogWriter(task *kernel.Task, path string) *LogWriter {
	return fluentbit.NewLogWriter(task, path)
}

// RunFluentBitScenario executes the issue #1875 reproduction (Fig. 2).
func RunFluentBitScenario(k *kernel.Kernel, dir string, v FluentBitVersion) (FluentBitScenarioResult, error) {
	return fluentbit.RunScenario(k, dir, v)
}

// RocksDB-style LSM store (§III-C).
type (
	// LSMConfig parametrizes the key-value store.
	LSMConfig = lsmkv.Config
	// LSMDB is the LSM key-value store.
	LSMDB = lsmkv.DB
	// LSMStats are cumulative store counters.
	LSMStats = lsmkv.Stats
	// DBBenchConfig parametrizes the client benchmark.
	DBBenchConfig = dbbench.Config
	// DBBenchResult summarizes a benchmark run.
	DBBenchResult = dbbench.Result
)

// OpenLSM opens an LSM store on k, starting its flush and compaction
// threads.
func OpenLSM(k *kernel.Kernel, cfg LSMConfig) (*LSMDB, error) {
	return lsmkv.Open(k, cfg)
}

// DBBenchPreload fills the store before the timed phase.
func DBBenchPreload(db *LSMDB, cfg DBBenchConfig) error {
	return dbbench.Preload(db, cfg)
}

// RunDBBench executes the YCSB-A closed-loop benchmark.
func RunDBBench(k *kernel.Kernel, db *LSMDB, cfg DBBenchConfig) (DBBenchResult, error) {
	return dbbench.Run(k, db, cfg)
}
