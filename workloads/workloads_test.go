package workloads_test

import (
	"testing"
	"time"

	dio "github.com/dsrhaslab/dio-go"
	"github.com/dsrhaslab/dio-go/workloads"
)

func TestFluentBitScenarioThroughPublicAPI(t *testing.T) {
	k := dio.NewVirtualKernel()
	res, err := workloads.RunFluentBitScenario(k, "/var/log", workloads.FluentBitBuggy)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	if !res.DataLost() {
		t.Fatal("buggy scenario did not lose data")
	}
	k2 := dio.NewVirtualKernel()
	res2, err := workloads.RunFluentBitScenario(k2, "/var/log", workloads.FluentBitFixed)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	if res2.DataLost() {
		t.Fatal("fixed scenario lost data")
	}
}

func TestForwarderAndWriterThroughPublicAPI(t *testing.T) {
	k := dio.NewVirtualKernel()
	if err := k.MkdirAll("/logs"); err != nil {
		t.Fatal(err)
	}
	appTask := k.NewProcess("app").NewTask("app")
	flbTask := k.NewProcess("flb").NewTask("flb")

	w := workloads.NewLogWriter(appTask, "/logs/a.log")
	if err := w.WriteFile([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	f := workloads.NewFluentBitForwarder(flbTask, "/logs/a.log", workloads.FluentBitFixed)
	if err := f.Poll(); err != nil {
		t.Fatalf("poll: %v", err)
	}
	if string(f.Received()) != "hello" {
		t.Fatalf("received %q", f.Received())
	}
	if err := f.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := w.Remove(); err != nil {
		t.Fatalf("remove: %v", err)
	}
}

func TestLSMAndDBBenchThroughPublicAPI(t *testing.T) {
	k := dio.NewKernel(dio.KernelConfig{
		Disk: dio.DiskConfig{BytesPerSecond: 1 << 40, PerOpLatency: time.Microsecond},
	})
	db, err := workloads.OpenLSM(k, workloads.LSMConfig{Dir: "/db", CompactionThreads: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()

	cfg := workloads.DBBenchConfig{
		Clients:      2,
		OpsPerClient: 200,
		KeyCount:     500,
		PreloadKeys:  500,
		ValueBytes:   64,
	}
	if err := workloads.DBBenchPreload(db, cfg); err != nil {
		t.Fatalf("preload: %v", err)
	}
	res, err := workloads.RunDBBench(k, db, cfg)
	if err != nil {
		t.Fatalf("bench: %v", err)
	}
	if res.Ops != 400 || res.Misses != 0 {
		t.Fatalf("bench result = %+v", res)
	}
	if db.Stats().Puts == 0 {
		t.Fatal("no puts recorded")
	}
}
