// Ingest data-plane benchmark: the typed event pipeline (ring record →
// event.Event batch → binary frame → Index.AddEvents) against the document
// pipeline it replaced (ring record → map[string]any → NDJSON →
// Index.AddBulk). Both sides run the full path through a real HTTP
// server, so the numbers capture encode, transport, decode, and indexing.
// See BENCH_store.json for the committed comparison.
package dio_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"github.com/dsrhaslab/dio-go/internal/ebpf"
	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/store"
)

const ingestBatchSize = 512

// ingestRecords pre-marshals one batch of realistic ring records: the
// parse stage runs inside the timed loop (it is part of both pipelines),
// but record construction does not.
func ingestRecords() [][]byte {
	raws := make([][]byte, ingestBatchSize)
	syscalls := []uint16{0, 1, 17, 18, 257, 3, 8} // read, write, pread64, pwrite64, openat, close, lseek
	for i := range raws {
		r := ebpf.Record{
			NR:       syscalls[i%len(syscalls)],
			PID:      42,
			TID:      int32(43 + i%4),
			EnterNS:  int64(i) * 1500,
			ExitNS:   int64(i)*1500 + 900,
			Ret:      4096,
			FD:       7,
			Count:    4096,
			Comm:     "db_bench",
			TaskComm: "worker",
		}
		if i%len(syscalls) == 4 {
			r.Path = "/data/db/LOG"
		}
		r.SetHaveFile()
		r.Dev = 7340032
		r.Ino = uint64(12 + i%16)
		r.BirthNS = 2156997363734000
		if i%2 == 0 {
			r.SetHaveOffset()
			r.Offset = int64(i) * 4096
		}
		raws[i] = r.Marshal()
	}
	return raws
}

// ingestParse mirrors the tracer's drain loop: one reused Record, one
// appended event per raw buffer.
func ingestParse(raws [][]byte, dst []event.Event) []event.Event {
	var rec ebpf.Record
	for _, raw := range raws {
		if err := ebpf.UnmarshalInto(raw, &rec); err != nil {
			panic(err)
		}
		nr := kernel.Syscall(rec.NR)
		e := event.Event{
			Session:     "bench",
			Syscall:     nr.String(),
			Class:       nr.Class().String(),
			RetVal:      rec.Ret,
			FD:          int(rec.FD),
			ArgPath:     rec.Path,
			Count:       int(rec.Count),
			PID:         int(rec.PID),
			TID:         int(rec.TID),
			ProcName:    rec.Comm,
			ThreadName:  rec.TaskComm,
			TimeEnterNS: rec.EnterNS,
			TimeExitNS:  rec.ExitNS,
			KernelPath:  rec.Path,
		}
		if rec.HaveFile() {
			e.FileTag = event.FileTag{Dev: rec.Dev, Ino: rec.Ino, BirthNS: rec.BirthNS}
		}
		if rec.HaveOffset() {
			e.HasOffset = true
			e.Offset = rec.Offset
		}
		dst = append(dst, e)
	}
	return dst
}

// BenchmarkIngestTypedVsDocument is the headline number for the typed data
// plane: events/sec and allocs/event for parse → ship → index through a
// real HTTP server, typed versus the retired document pipeline.
func BenchmarkIngestTypedVsDocument(b *testing.B) {
	raws := ingestRecords()

	b.Run("Typed", func(b *testing.B) {
		st := store.New()
		srv := httptest.NewServer(store.NewServer(st))
		defer srv.Close()
		c := store.NewClient(srv.URL)
		batch := make([]event.Event, 0, ingestBatchSize)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch = ingestParse(raws, batch[:0])
			if err := c.BulkEvents(context.Background(), "bench", batch); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(ingestBatchSize), "events/op")
		if c.BinaryDisabled() {
			b.Fatal("typed path fell back to NDJSON")
		}
	})

	b.Run("Document", func(b *testing.B) {
		st := store.New()
		srv := httptest.NewServer(store.NewServer(st))
		defer srv.Close()
		c := store.NewClient(srv.URL)
		batch := make([]event.Event, 0, ingestBatchSize)
		docs := make([]store.Document, 0, ingestBatchSize)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch = ingestParse(raws, batch[:0])
			docs = docs[:0]
			for j := range batch {
				docs = append(docs, store.EventToDoc(&batch[j]))
			}
			if err := c.Bulk(context.Background(), "bench", docs); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(ingestBatchSize), "events/op")
	})
}

// BenchmarkIngestWALOverhead prices the durability layer on the deployed
// ingest path: the same 512-event batches shipped as binary frames through a
// real HTTP server (the received frame is journaled verbatim, so the WAL
// pays no re-encode) into an in-memory store versus durable stores under
// each fsync policy. The acceptance bar for the default interval policy is
// <=15% events/sec below in-memory; see BENCH_store.json.
func BenchmarkIngestWALOverhead(b *testing.B) {
	raws := ingestRecords()
	run := func(b *testing.B, opts ...store.Option) {
		st, err := store.Open(opts...)
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		srv := httptest.NewServer(store.NewServer(st))
		defer srv.Close()
		c := store.NewClient(srv.URL)
		batch := make([]event.Event, 0, ingestBatchSize)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch = ingestParse(raws, batch[:0])
			if err := c.BulkEvents(context.Background(), "bench", batch); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(ingestBatchSize), "events/op")
		if c.BinaryDisabled() {
			b.Fatal("typed path fell back to NDJSON")
		}
	}
	b.Run("Memory", func(b *testing.B) { run(b) })
	b.Run("WALInterval", func(b *testing.B) {
		run(b, store.WithDataDir(b.TempDir()), store.WithFsyncPolicy(store.FsyncInterval), store.WithSnapshotInterval(0))
	})
	b.Run("WALAlways", func(b *testing.B) {
		run(b, store.WithDataDir(b.TempDir()), store.WithFsyncPolicy(store.FsyncAlways), store.WithSnapshotInterval(0))
	})
	b.Run("WALOff", func(b *testing.B) {
		run(b, store.WithDataDir(b.TempDir()), store.WithFsyncPolicy(store.FsyncOff), store.WithSnapshotInterval(0))
	})
}
