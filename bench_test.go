// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §5 and EXPERIMENTS.md), plus ablation benches
// for the design choices called out in DESIGN.md §6 and microbenchmarks of
// the hot paths. Run with:
//
//	go test -bench=. -benchmem
package dio_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/apps/fluentbit"
	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/comparators"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/ebpf"
	"github.com/dsrhaslab/dio-go/internal/experiments"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/resilience"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// BenchmarkTable1SyscallCoverage traces one round trip of every supported
// syscall (Table I): 42 syscalls intercepted, enriched, and indexed.
func BenchmarkTable1SyscallCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
		if err := k.MkdirAll("/t"); err != nil {
			b.Fatal(err)
		}
		backend := store.New()
		tracer, err := core.NewTracer(core.Config{
			SessionName: "table1", Backend: backend, FlushInterval: time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := tracer.Start(k); err != nil {
			b.Fatal(err)
		}
		task := k.NewProcess("cov").NewTask("cov")
		issueAllSyscalls(b, k, task)
		stats, err := tracer.Stop()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			seen, _ := backend.Search(context.Background(), "dio-events", store.SearchRequest{
				Query: store.MatchAll(),
				Size:  1,
				Aggs:  map[string]store.Agg{"s": {Terms: &store.TermsAgg{Field: store.FieldSyscall}}},
			})
			if got := len(seen.Aggs["s"].Buckets); got != kernel.NumSyscalls {
				b.Fatalf("distinct traced syscalls = %d, want %d", got, kernel.NumSyscalls)
			}
			b.ReportMetric(float64(stats.Shipped), "events/op")
		}
	}
}

// issueAllSyscalls exercises each of the 42 supported syscalls once.
func issueAllSyscalls(b *testing.B, k *kernel.Kernel, task *kernel.Task) {
	b.Helper()
	must := func(ret int64, err error) {
		if err != nil {
			b.Fatalf("syscall failed: %v", err)
		}
	}
	fd, err := task.Open("/t/f1", kernel.ORdwr|kernel.OCreat, 0o644)
	must(0, err)
	_, err = task.Write(fd, []byte("0123456789abcdef"))
	must(0, err)
	_, err = task.Pwrite64(fd, []byte("xx"), 2)
	must(0, err)
	_, err = task.Writev(fd, [][]byte{[]byte("a"), []byte("b")})
	must(0, err)
	_, err = task.Lseek(fd, 0, kernel.SeekSet)
	must(0, err)
	buf := make([]byte, 4)
	_, err = task.Read(fd, buf)
	must(0, err)
	_, err = task.Pread64(fd, buf, 1)
	must(0, err)
	_, err = task.Readv(fd, [][]byte{buf[:2], buf[2:]})
	must(0, err)
	must(0, task.Fsync(fd))
	must(0, task.Fdatasync(fd))
	must(0, task.Readahead(fd, 0, 8))
	must(0, task.Ftruncate(fd, 8))
	_, err = task.Fstat(fd)
	must(0, err)
	_, err = task.Fstatfs(fd)
	must(0, err)
	must(0, task.Fsetxattr(fd, "user.a", []byte("1")))
	_, err = task.Fgetxattr(fd, "user.a")
	must(0, err)
	_, err = task.Flistxattr(fd)
	must(0, err)
	must(0, task.Fremovexattr(fd, "user.a"))
	must(0, task.Close(fd))

	fd2, err := task.Openat(kernel.AtFDCWD, "/t/f2", kernel.OWronly|kernel.OCreat, 0o644)
	must(0, err)
	must(0, task.Close(fd2))
	fd3, err := task.Creat("/t/f3", 0o644)
	must(0, err)
	must(0, task.Close(fd3))

	must(0, task.Truncate("/t/f1", 4))
	_, err = task.Stat("/t/f1")
	must(0, err)
	k.Symlink("/t/f1", "/t/l1")
	_, err = task.Lstat("/t/l1")
	must(0, err)

	must(0, task.Setxattr("/t/f1", "user.b", []byte("2")))
	_, err = task.Getxattr("/t/f1", "user.b")
	must(0, err)
	_, err = task.Listxattr("/t/f1")
	must(0, err)
	must(0, task.Removexattr("/t/f1", "user.b"))
	must(0, task.Lsetxattr("/t/l1", "user.c", []byte("3")))
	_, err = task.Lgetxattr("/t/l1", "user.c")
	must(0, err)
	_, err = task.Llistxattr("/t/l1")
	must(0, err)
	must(0, task.Lremovexattr("/t/l1", "user.c"))

	must(0, task.Rename("/t/f2", "/t/f2r"))
	must(0, task.Renameat(kernel.AtFDCWD, "/t/f2r", kernel.AtFDCWD, "/t/f2s"))
	must(0, task.Renameat2(kernel.AtFDCWD, "/t/f2s", kernel.AtFDCWD, "/t/f2t", 0))
	must(0, task.Unlink("/t/f2t"))
	must(0, task.Unlinkat(kernel.AtFDCWD, "/t/f3", false))

	must(0, task.Mkdir("/t/d1", 0o755))
	must(0, task.Mkdirat(kernel.AtFDCWD, "/t/d2", 0o755))
	must(0, task.Rmdir("/t/d1"))
	must(0, task.Mknod("/t/n1", kernel.ModeFIFO, 0))
	must(0, task.Mknodat(kernel.AtFDCWD, "/t/n2", kernel.ModeCharDev, 0))
}

// BenchmarkFig2aFluentBitBuggy regenerates the Fig. 2a table and reports
// the lost bytes.
func BenchmarkFig2aFluentBitBuggy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2(fluentbit.VersionBuggy)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Scenario.DataLost() {
			b.Fatal("no data loss in buggy scenario")
		}
		if i == 0 {
			b.ReportMetric(float64(res.Scenario.LostBytes), "lost-bytes")
			b.ReportMetric(float64(len(res.Table.Rows)), "table-rows")
		}
	}
}

// BenchmarkFig2bFluentBitFixed regenerates the Fig. 2b table.
func BenchmarkFig2bFluentBitFixed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2(fluentbit.VersionFixed)
		if err != nil {
			b.Fatal(err)
		}
		if res.Scenario.DataLost() {
			b.Fatal("data loss in fixed scenario")
		}
		if i == 0 {
			b.ReportMetric(float64(res.Scenario.LostBytes), "lost-bytes")
		}
	}
}

// BenchmarkFig3TailLatency runs the traced RocksDB workload and reports the
// p99 contrast between compaction-heavy and quiet windows (Fig. 3).
func BenchmarkFig3TailLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRocksDB(experiments.RocksDBConfig{
			Duration: 1200 * time.Millisecond,
			Trace:    true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			busy, quiet, busyN, quietN := res.ContentionCorrelation(5, 2)
			b.ReportMetric(res.Bench.Summary.P99/1e6, "p99-ms")
			if busyN > 0 && quietN > 0 {
				b.ReportMetric(busy/1e6, "busy-p99-ms")
				b.ReportMetric(quiet/1e6, "quiet-p99-ms")
			}
			b.ReportMetric(res.Bench.Throughput(), "ops/s")
		}
	}
}

// BenchmarkFig4SyscallTimeline runs the same workload and reports the
// thread-timeline dimensions (Fig. 4).
func BenchmarkFig4SyscallTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRocksDB(experiments.RocksDBConfig{
			Duration: 1200 * time.Millisecond,
			Trace:    true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Timeline == nil {
			b.Fatal("no timeline")
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.Timeline.Series)), "thread-series")
			b.ReportMetric(float64(len(res.Timeline.BucketStartNS)), "windows")
			b.ReportMetric(float64(res.Tracer.Captured), "events")
		}
	}
}

// BenchmarkTable2Overhead reproduces the tracer-overhead table and reports
// the measured slowdowns (paper: 1.04 / 1.37 / 1.71).
func BenchmarkTable2Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable2(500)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				b.ReportMetric(row.Overhead, row.Mode.String()+"-x")
			}
		}
	}
}

// BenchmarkDropsRingBuffer sweeps ring capacity against event loss (§III-D).
func BenchmarkDropsRingBuffer(b *testing.B) {
	for _, ringBytes := range []int{32 << 10, 256 << 10, 4 << 20} {
		b.Run(fmt.Sprintf("ring=%dKiB", ringBytes>>10), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunDrops(experiments.DropsConfig{
					RingBytesSweep: []int{ringBytes},
					Writes:         10_000,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.Points[0].DropFraction*100, "drop-%")
				}
			}
		})
	}
}

// BenchmarkPathResolution compares DIO and Sysdig path coverage (§III-D).
func BenchmarkPathResolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPathResolution(experiments.PathsConfig{Ops: 3_000})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.DIOUnresolved*100, "dio-unresolved-%")
			b.ReportMetric(res.SysdigUnresolved*100, "sysdig-unresolved-%")
		}
	}
}

// --- Ablation benches (DESIGN.md §6) ---

// benchTracedWorkload runs the synthetic workload under a tracer config and
// returns events shipped.
func benchTracedWorkload(b *testing.B, cfg core.Config, cycles int) core.Stats {
	b.Helper()
	k := kernel.New(kernel.Config{
		Clock: clock.NewReal(0),
		Disk:  kernel.DiskConfig{BytesPerSecond: 1 << 40, PerOpLatency: 0},
	})
	tracer, err := core.NewTracer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := tracer.Start(k); err != nil {
		b.Fatal(err)
	}
	task := k.NewProcess("w").NewTask("w")
	if err := comparators.RunWorkload(k, task, comparators.WorkloadConfig{}, cycles); err != nil {
		b.Fatal(err)
	}
	stats, err := tracer.Stop()
	if err != nil {
		b.Fatal(err)
	}
	return stats
}

// BenchmarkAblationFilterPushdown compares tracing everything against
// kernel-side filtering down to a narrow syscall set: the filtered
// configuration moves strictly less data to user space.
func BenchmarkAblationFilterPushdown(b *testing.B) {
	cases := []struct {
		name   string
		filter ebpf.Filter
	}{
		{"all-syscalls", ebpf.Filter{}},
		{"writes-only", ebpf.Filter{Syscalls: []kernel.Syscall{kernel.SysWrite}}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var shipped uint64
			for i := 0; i < b.N; i++ {
				stats := benchTracedWorkload(b, core.Config{
					Backend:       store.New(),
					Filter:        c.filter,
					FlushInterval: time.Millisecond,
				}, 100)
				shipped = stats.Shipped
			}
			b.ReportMetric(float64(shipped), "events-shipped")
		})
	}
}

// BenchmarkAblationBatchSize sweeps the bulk-indexing batch size (§II-B:
// events are grouped into buckets to cut per-request overhead).
func BenchmarkAblationBatchSize(b *testing.B) {
	for _, batch := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchTracedWorkload(b, core.Config{
					Backend:       store.New(),
					BatchSize:     batch,
					FlushInterval: time.Millisecond,
				}, 100)
			}
		})
	}
}

// BenchmarkAblationEnrichment compares DIO-style full records against
// Sysdig-style minimal records at the ring-buffer level: enrichment costs
// bytes, which costs capacity.
func BenchmarkAblationEnrichment(b *testing.B) {
	full := ebpf.Record{
		NR: 1, PID: 1, TID: 1, Comm: "proc", TaskComm: "thread",
		Path: "/very/long/path/to/some/file.sst", Dev: 7340032, Ino: 42, BirthNS: 1,
	}
	full.SetHaveFile()
	full.SetHaveOffset()
	minimal := ebpf.Record{NR: 1, PID: 1, TID: 1, Comm: "proc"}
	b.Run("full-record", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf := full.Marshal()
			if _, err := ebpf.Unmarshal(buf); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(full.Size()), "bytes/event")
	})
	b.Run("minimal-record", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf := minimal.Marshal()
			if _, err := ebpf.Unmarshal(buf); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(minimal.Size()), "bytes/event")
	})
}

// --- Microbenchmarks of the hot paths ---

// BenchmarkRingBufferWrite measures the kernel-side publication cost.
func BenchmarkRingBufferWrite(b *testing.B) {
	rb := ebpf.NewRingBuffer(1 << 30)
	rec := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.Write(rec)
		if i%1024 == 1023 {
			rb.ReadBatch(2048)
		}
	}
}

// BenchmarkSyscallUntraced measures the kernel syscall fast path with no
// tracer attached (hook dispatch must be skipped entirely).
func BenchmarkSyscallUntraced(b *testing.B) {
	k := kernel.New(kernel.Config{
		Clock: clock.NewVirtual(0),
		Disk:  kernel.DiskConfig{BytesPerSecond: 1 << 40, PerOpLatency: 0},
	})
	task := k.NewProcess("w").NewTask("w")
	fd, err := task.Open("/f", kernel.ORdwr|kernel.OCreat, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	task.Write(fd, make([]byte, 4096))
	buf := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := task.Pread64(fd, buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSyscallTraced measures the same syscall with the DIO program
// attached (interception + enrichment + ring publication).
func BenchmarkSyscallTraced(b *testing.B) {
	k := kernel.New(kernel.Config{
		Clock: clock.NewVirtual(0),
		Disk:  kernel.DiskConfig{BytesPerSecond: 1 << 40, PerOpLatency: 0},
	})
	prog := ebpf.NewProgram(ebpf.ProgramConfig{RingBytes: 1 << 30})
	prog.Attach(k)
	defer prog.Detach()
	task := k.NewProcess("w").NewTask("w")
	fd, err := task.Open("/f", kernel.ORdwr|kernel.OCreat, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	task.Write(fd, make([]byte, 4096))
	buf := make([]byte, 512)
	rings := prog.Rings().Rings()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := task.Pread64(fd, buf, 0); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			for _, r := range rings {
				r.ReadBatch(4096)
			}
		}
	}
}

// BenchmarkStoreBulkIndex measures backend ingestion throughput.
func BenchmarkStoreBulkIndex(b *testing.B) {
	docs := make([]store.Document, 512)
	for i := range docs {
		docs[i] = store.Document{
			store.FieldSession:   "s",
			store.FieldSyscall:   "write",
			store.FieldProcName:  "app",
			store.FieldTimeEnter: int64(i),
			store.FieldRetVal:    int64(4096),
		}
	}
	b.ResetTimer()
	st := store.New()
	for i := 0; i < b.N; i++ {
		if err := st.Bulk(context.Background(), "bench", docs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(docs)), "docs/op")
}

// BenchmarkShipperOverhead measures what the resilience ladder costs on the
// happy path: the same bulk ingestion direct to the store versus through the
// retrying shipper (breaker check, spill probe, attempt bookkeeping) with no
// faults injected. The wrapper must stay within a few percent of direct.
func BenchmarkShipperOverhead(b *testing.B) {
	mkDocs := func() []store.Document {
		docs := make([]store.Document, 512)
		for i := range docs {
			docs[i] = store.Document{
				store.FieldSession:   "s",
				store.FieldSyscall:   "write",
				store.FieldProcName:  "app",
				store.FieldTimeEnter: int64(i),
				store.FieldRetVal:    int64(4096),
			}
		}
		return docs
	}
	b.Run("direct", func(b *testing.B) {
		st := store.New()
		docs := mkDocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Bulk(context.Background(), "bench", docs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shipper", func(b *testing.B) {
		sh := resilience.NewShipper(store.New(), resilience.Config{})
		docs := mkDocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sh.Bulk(context.Background(), "bench", docs); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if s := sh.Stats(); s.Retries != 0 || s.SpillDropped != 0 {
			b.Fatalf("faults on the happy path: %+v", s)
		}
	})
}

// BenchmarkStoreQuery measures a filtered, aggregated search over 50k docs.
func BenchmarkStoreQuery(b *testing.B) {
	st := store.New()
	ix := st.IndexOrCreate("bench")
	for i := 0; i < 50_000; i++ {
		ix.Add(store.Document{
			store.FieldSession:    "s",
			store.FieldSyscall:    []string{"read", "write", "close"}[i%3],
			store.FieldThreadName: fmt.Sprintf("t%d", i%8),
			store.FieldTimeEnter:  int64(i) * 1000,
			store.FieldDuration:   int64(i % 997),
		})
	}
	req := store.SearchRequest{
		Query: store.Term(store.FieldSyscall, "write"),
		Size:  1,
		Aggs: map[string]store.Agg{
			"timeline": {
				DateHistogram: &store.DateHistogramAgg{Field: store.FieldTimeEnter, IntervalNS: 1_000_000},
				Aggs:          map[string]store.Agg{"t": {Terms: &store.TermsAgg{Field: store.FieldThreadName}}},
			},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Search(context.Background(), "bench", req); err != nil {
			b.Fatal(err)
		}
	}
}

// buildBenchIndex fills a sharded index with n session-shaped documents.
func buildBenchIndex(n int) *store.Index {
	ix := store.NewIndex("bench")
	syscalls := []string{"read", "write", "openat", "close", "fsync", "lseek"}
	batch := make([]store.Document, 0, 4096)
	for i := 0; i < n; i++ {
		batch = append(batch, store.Document{
			store.FieldSession:    "s",
			store.FieldSyscall:    syscalls[i%len(syscalls)],
			store.FieldProcName:   "app",
			store.FieldThreadName: fmt.Sprintf("t%d", i%16),
			store.FieldTimeEnter:  int64(i) * 1000,
			store.FieldDuration:   int64(i % 997),
		})
		if len(batch) == cap(batch) {
			ix.AddBulk(batch)
			batch = batch[:0]
		}
	}
	ix.AddBulk(batch)
	return ix
}

// benchLegacyVsSharded runs the same operation under the legacy serial scan
// and the sharded parallel execution, as sub-benchmarks.
func benchLegacyVsSharded(b *testing.B, ix *store.Index, op func()) {
	b.Run("legacy-scan", func(b *testing.B) {
		ix.SetLegacyScan(true)
		defer ix.SetLegacyScan(false)
		op() // warm
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
	b.Run("sharded", func(b *testing.B) {
		ix.SetLegacyScan(false)
		op() // warm columnar caches
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
}

// BenchmarkStoreSearchParallel contrasts the sharded fan-out search (posting
// lists, columnar range scan, per-shard top-k) with the legacy serial
// full-materialize scan over a session-scale index.
func BenchmarkStoreSearchParallel(b *testing.B) {
	ix := buildBenchIndex(120_000)
	req := store.SearchRequest{
		Query: store.Query{Bool: &store.BoolQuery{Must: []store.Query{
			store.Term(store.FieldSyscall, "write"),
			store.RangeGTE(store.FieldDuration, 500),
		}}},
		Sort: []store.SortField{{Field: store.FieldTimeEnter, Desc: true}},
		Size: 50,
	}
	benchLegacyVsSharded(b, ix, func() {
		resp := ix.Search(req)
		if resp.Total == 0 {
			b.Fatal("no matches")
		}
	})
}

// BenchmarkAggFanout contrasts the merged per-shard aggregation partials
// with the legacy serial aggregation over the full matched set.
func BenchmarkAggFanout(b *testing.B) {
	ix := buildBenchIndex(120_000)
	req := store.SearchRequest{
		Query: store.MatchAll(),
		Size:  1,
		Aggs: map[string]store.Agg{
			"timeline": {DateHistogram: &store.DateHistogramAgg{
				Field: store.FieldTimeEnter, IntervalNS: 10_000_000,
			}},
			"by_sys": {Terms: &store.TermsAgg{Field: store.FieldSyscall}},
			"lat":    {Percentiles: &store.PercentilesAgg{Field: store.FieldDuration}},
			"stats":  {Stats: &store.StatsAgg{Field: store.FieldDuration}},
		},
	}
	benchLegacyVsSharded(b, ix, func() {
		resp := ix.Search(req)
		if len(resp.Aggs) != 4 {
			b.Fatal("missing aggs")
		}
	})
}

// BenchmarkTracerDrainWorkers contrasts the original single consumer loop
// (DrainWorkers=1) with one drain worker per CPU ring (the default). The
// rings are filled while the workers idle on a long flush interval; the
// timed section is Stop's final drain — parse, batch, and ship of the whole
// backlog, which is where the workers run in parallel.
func BenchmarkTracerDrainWorkers(b *testing.B) {
	run := func(b *testing.B, workers int) {
		var shipped uint64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			k := kernel.New(kernel.Config{
				Clock: clock.NewReal(0),
				Disk:  kernel.DiskConfig{BytesPerSecond: 1 << 40, PerOpLatency: 0},
			})
			tracer, err := core.NewTracer(core.Config{
				Backend:       store.New(),
				NumCPU:        4,
				RingBytes:     64 << 20,
				BatchSize:     1024,
				FlushInterval: time.Hour, // idle the workers; Stop drains
				DrainWorkers:  workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := tracer.Start(k); err != nil {
				b.Fatal(err)
			}
			// One producer task per simulated CPU so every ring gets a share.
			for t := 0; t < 4; t++ {
				task := k.NewProcess("w").NewTask(fmt.Sprintf("w%d", t))
				if err := comparators.RunWorkload(k, task, comparators.WorkloadConfig{}, 100); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			stats, err := tracer.Stop()
			if err != nil {
				b.Fatal(err)
			}
			if stats.Dropped > 0 {
				b.Fatalf("unexpected drops: %d", stats.Dropped)
			}
			shipped = stats.Shipped
		}
		b.ReportMetric(float64(shipped), "events-shipped")
	}
	b.Run("single-consumer", func(b *testing.B) { run(b, 1) })
	b.Run("per-ring", func(b *testing.B) { run(b, 0) })
}

// BenchmarkTelemetryOverhead measures what the self-accounting layer
// (DESIGN.md §9) costs on the drain+ship hot path: the same pre-filled-ring
// drain as BenchmarkTracerDrainWorkers, with telemetry disabled (ablation,
// Config.DisableTelemetry) versus enabled. The acceptance bar is < 5% added
// cost — recorded in BENCH_store.json next to the shipper-overhead number.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, disabled bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			k := kernel.New(kernel.Config{
				Clock: clock.NewReal(0),
				Disk:  kernel.DiskConfig{BytesPerSecond: 1 << 40, PerOpLatency: 0},
			})
			tracer, err := core.NewTracer(core.Config{
				Backend:          store.New(),
				NumCPU:           4,
				RingBytes:        64 << 20,
				BatchSize:        1024,
				FlushInterval:    time.Hour, // idle the workers; Stop drains
				DisableTelemetry: disabled,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := tracer.Start(k); err != nil {
				b.Fatal(err)
			}
			for t := 0; t < 4; t++ {
				task := k.NewProcess("w").NewTask(fmt.Sprintf("w%d", t))
				if err := comparators.RunWorkload(k, task, comparators.WorkloadConfig{}, 100); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			stats, err := tracer.Stop()
			if err != nil {
				b.Fatal(err)
			}
			if stats.Dropped > 0 {
				b.Fatalf("unexpected drops: %d", stats.Dropped)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, true) })
	b.Run("enabled", func(b *testing.B) { run(b, false) })
}

// BenchmarkCorrelation measures the file-path correlation algorithm.
func BenchmarkCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := store.New()
		ix := st.IndexOrCreate("bench")
		for f := 0; f < 100; f++ {
			tag := fmt.Sprintf("1 %d 5", f)
			ix.Add(store.Document{
				store.FieldSession: "s", store.FieldSyscall: "openat",
				store.FieldFileTag: tag, store.FieldKernelPath: fmt.Sprintf("/f/%d", f),
			})
			for e := 0; e < 100; e++ {
				ix.Add(store.Document{
					store.FieldSession: "s", store.FieldSyscall: "write",
					store.FieldFileTag: tag,
				})
			}
		}
		b.StartTimer()
		res := store.CorrelateFilePaths(ix, "s")
		if res.EventsUpdated == 0 {
			b.Fatal("correlation updated nothing")
		}
	}
}

// BenchmarkAblationPairing compares kernel-space entry/exit aggregation
// (DIO's design, one record per syscall) against unpaired emission (two
// records per syscall, pairing deferred to user space).
func BenchmarkAblationPairing(b *testing.B) {
	run := func(b *testing.B, unpaired bool) {
		for i := 0; i < b.N; i++ {
			k := kernel.New(kernel.Config{
				Clock: clock.NewVirtual(0),
				Disk:  kernel.DiskConfig{BytesPerSecond: 1 << 40, PerOpLatency: 0},
			})
			prog := ebpf.NewProgram(ebpf.ProgramConfig{
				RingBytes:    1 << 30,
				EmitUnpaired: unpaired,
			})
			prog.Attach(k)
			task := k.NewProcess("w").NewTask("w")
			if err := comparators.RunWorkload(k, task, comparators.WorkloadConfig{}, 50); err != nil {
				b.Fatal(err)
			}
			prog.Detach()
			if i == 0 {
				b.ReportMetric(float64(prog.Rings().Writes()), "ring-records")
			}
		}
	}
	b.Run("kernel-paired", func(b *testing.B) { run(b, false) })
	b.Run("unpaired", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationBlockingRing contrasts DIO's non-blocking ring (drops
// under pressure, no application slowdown) with a blocking back-pressure
// ring (no loss, producer stalls) — the §I design trade-off quantified.
func BenchmarkAblationBlockingRing(b *testing.B) {
	run := func(b *testing.B, blocking bool) {
		for i := 0; i < b.N; i++ {
			ring := ebpf.NewRingBuffer(64 << 10)
			ring.SetBlocking(blocking)
			rec := make([]byte, 128)
			done := make(chan struct{})
			// Consumer drains slowly.
			go func() {
				defer close(done)
				for {
					batch := ring.ReadBatch(64)
					if batch == nil {
						select {
						case <-ring.Notify():
							continue
						case <-time.After(50 * time.Millisecond):
							return
						}
					}
				}
			}()
			for j := 0; j < 50_000; j++ {
				ring.Write(rec)
			}
			ring.Close()
			<-done
			if i == 0 {
				b.ReportMetric(float64(ring.Drops()), "drops")
				b.ReportMetric(float64(ring.Blocks()), "producer-stalls")
			}
		}
	}
	b.Run("non-blocking", func(b *testing.B) { run(b, false) })
	b.Run("blocking", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationPageCache contrasts cold reads (every page from the
// device) with warm reads served by the kernel's opt-in page cache.
func BenchmarkAblationPageCache(b *testing.B) {
	mk := func(cacheBytes int64) (*kernel.Kernel, *kernel.Task, int) {
		k := kernel.New(kernel.Config{
			Clock: clock.NewVirtual(0),
			Disk: kernel.DiskConfig{
				BytesPerSecond: 400 << 20,
				PerOpLatency:   20 * time.Microsecond,
				PageCacheBytes: cacheBytes,
			},
		})
		task := k.NewProcess("w").NewTask("w")
		fd, err := task.Open("/f", kernel.ORdwr|kernel.OCreat, 0o644)
		if err != nil {
			b.Fatal(err)
		}
		task.Write(fd, make([]byte, 1<<20))
		return k, task, fd
	}
	b.Run("no-cache", func(b *testing.B) {
		k, task, fd := mk(0)
		buf := make([]byte, 4096)
		start := k.Clock().NowNS()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			task.Pread64(fd, buf, int64(i%256)*4096)
		}
		b.ReportMetric(float64(k.Clock().NowNS()-start)/float64(b.N), "sim-ns/read")
	})
	b.Run("warm-cache", func(b *testing.B) {
		k, task, fd := mk(8 << 20)
		buf := make([]byte, 4096)
		start := k.Clock().NowNS()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			task.Pread64(fd, buf, int64(i%256)*4096)
		}
		b.ReportMetric(float64(k.Clock().NowNS()-start)/float64(b.N), "sim-ns/read")
	})
}
