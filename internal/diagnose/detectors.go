package diagnose

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// staleOffsetDetector finds the §III-B data-loss signature: on a fresh
// file generation (a file tag never read before), the first read starts at
// a non-zero offset and returns 0 bytes — the reader resumed beyond EOF,
// so freshly written data can never be delivered. The Fluent Bit v1.4.0
// bug produces exactly this pattern after inode reuse.
type staleOffsetDetector struct{}

func (staleOffsetDetector) Name() string { return "stale-offset-read" }

func (staleOffsetDetector) Detect(ctx context.Context, t Target) ([]Finding, error) {
	firstReadSeen := make(map[event.FileTag]bool)
	var findings []Finding
	req := store.SearchRequest{
		Query: store.Must(
			store.Term(store.FieldSession, t.Session),
			store.Terms(store.FieldSyscall, "read", "pread64", "readv"),
			store.Exists(store.FieldFileTag),
		),
		Sort: []store.SortField{{Field: store.FieldTimeEnter}},
	}
	err := store.EachEventPage(ctx, t.Backend, t.Index, req, t.Params.PageSize, func(page store.EventsResult) error {
		for i := range page.Hits {
			e := &page.Hits[i]
			if firstReadSeen[e.FileTag] {
				continue
			}
			firstReadSeen[e.FileTag] = true
			if e.HasOffset && e.Offset > 0 && e.RetVal == 0 {
				path := e.FilePath
				if path == "" {
					path = "(unresolved path, tag " + e.FileTag.String() + ")"
				}
				findings = append(findings, Finding{
					Rule:     "stale-offset-read",
					Severity: SeverityCritical,
					Summary: fmt.Sprintf(
						"first read of %s starts at offset %d and returns 0 bytes: the reader resumed past EOF (possible data loss after file recreation)",
						path, e.Offset),
					FilePath: path,
					Evidence: []string{fmt.Sprintf(
						"%s by %s at t=%d: ret=0 offset=%d tag=%s",
						e.Syscall, e.ProcName, e.TimeEnterNS, e.Offset, e.FileTag)},
				})
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return findings, nil
}

// costlyPatternDetector flags files dominated by small or random I/O.
type costlyPatternDetector struct{}

func (costlyPatternDetector) Name() string { return "costly-patterns" }

func (costlyPatternDetector) Detect(ctx context.Context, t Target) ([]Finding, error) {
	files, err := hotFiles(ctx, t.Backend, t.Index, t.Session, 0, t.Params.PageSize)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, fl := range files {
		p, err := fileOffsetPattern(ctx, t.Backend, t.Index, t.Session, fl.FilePath, t.Params.PageSize)
		if err != nil {
			return nil, err
		}
		dataOps := p.Reads + p.Writes
		if dataOps < t.Params.MinDataOps {
			continue
		}
		if frac := float64(p.SmallIOs) / float64(dataOps); frac >= t.Params.SmallIOFraction {
			findings = append(findings, Finding{
				Rule:     "small-io",
				Severity: SeverityWarning,
				Summary: fmt.Sprintf("%.0f%% of %d data syscalls on %s move fewer than %d bytes",
					frac*100, dataOps, fl.FilePath, SmallIOThreshold),
				FilePath: fl.FilePath,
			})
		}
		if p.SequentialFraction() <= 1-t.Params.RandomFraction {
			findings = append(findings, Finding{
				Rule:     "random-io",
				Severity: SeverityWarning,
				Summary: fmt.Sprintf("accesses to %s are %.0f%% non-sequential (%d of %d data syscalls)",
					fl.FilePath, (1-p.SequentialFraction())*100,
					p.RandomReads+p.RandomWrites, dataOps),
				FilePath: fl.FilePath,
			})
		}
	}
	return findings, nil
}

// failingSyscallDetector summarizes error-returning syscalls per type, an
// immediate smell for erroneous I/O usage.
type failingSyscallDetector struct{}

func (failingSyscallDetector) Name() string { return "failing-syscalls" }

func (failingSyscallDetector) Detect(ctx context.Context, t Target) ([]Finding, error) {
	lt := 0.0
	resp, err := t.Backend.Search(ctx, t.Index, store.SearchRequest{
		Query: store.Must(
			store.Term(store.FieldSession, t.Session),
			store.Query{Range: &store.RangeQuery{Field: store.FieldRetVal, LT: &lt}},
		),
		Size: 1,
		Aggs: map[string]store.Agg{
			"by_syscall": {Terms: &store.TermsAgg{Field: store.FieldSyscall}},
		},
	})
	if err != nil {
		return nil, err
	}
	buckets := resp.Aggs["by_syscall"].Buckets
	if len(buckets) == 0 {
		return nil, nil
	}
	parts := make([]string, 0, len(buckets))
	for _, bkt := range buckets {
		parts = append(parts, fmt.Sprintf("%s×%d", bkt.Key, bkt.Count))
	}
	sort.Strings(parts)
	return []Finding{{
		Rule:     "failing-syscalls",
		Severity: SeverityInfo,
		Summary:  fmt.Sprintf("%d syscalls returned errors (%s)", resp.Total, strings.Join(parts, ", ")),
	}}, nil
}

// ContentionWindow is one detected interval of background-I/O interference.
type ContentionWindow struct {
	StartNS           int64
	BackgroundThreads int
	ClientSyscalls    int
}

// contentionDetector finds the §III-C signature in a traced session: time
// windows where many background threads issue I/O while the client
// thread's syscall rate drops below DropFraction of its median.
type contentionDetector struct{}

func (contentionDetector) Name() string { return "background-io-contention" }

func (contentionDetector) Detect(ctx context.Context, t Target) ([]Finding, error) {
	p := t.Params.Contention
	resp, err := t.Backend.Search(ctx, t.Index, store.SearchRequest{
		Query: store.Term(store.FieldSession, t.Session),
		Size:  1,
		Aggs: map[string]store.Agg{
			"timeline": {
				DateHistogram: &store.DateHistogramAgg{Field: store.FieldTimeEnter, IntervalNS: p.WindowNS},
				Aggs: map[string]store.Agg{
					"by_thread": {Terms: &store.TermsAgg{Field: store.FieldThreadName}},
				},
			},
		},
	})
	if err != nil {
		return nil, err
	}
	type window struct {
		startNS    int64
		client     int
		background int
	}
	var windows []window
	var clientCounts []float64
	for _, bkt := range resp.Aggs["timeline"].Buckets {
		w := window{startNS: int64(bkt.KeyNum)}
		for _, sub := range bkt.Sub["by_thread"].Buckets {
			switch {
			case sub.Key == p.ClientThread:
				w.client = sub.Count
			case strings.HasPrefix(sub.Key, p.BackgroundPrefix):
				w.background++
			}
		}
		windows = append(windows, w)
		clientCounts = append(clientCounts, float64(w.client))
	}
	if len(windows) < 4 {
		return nil, nil // not enough signal
	}
	sorted := append([]float64(nil), clientCounts...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]

	var hits []ContentionWindow
	for _, w := range windows {
		if w.background >= p.MinBackground && float64(w.client) < median*p.DropFraction {
			hits = append(hits, ContentionWindow{
				StartNS:           w.startNS,
				BackgroundThreads: w.background,
				ClientSyscalls:    w.client,
			})
		}
	}
	if len(hits) == 0 {
		return nil, nil
	}
	evidence := make([]string, 0, len(hits))
	for _, h := range hits {
		evidence = append(evidence, fmt.Sprintf(
			"window t=%d: %d %s* threads active, %s syscalls down to %d (median %.0f)",
			h.StartNS, h.BackgroundThreads, p.BackgroundPrefix, p.ClientThread, h.ClientSyscalls, median))
	}
	return []Finding{{
		Rule:     "background-io-contention",
		Severity: SeverityWarning,
		Summary: fmt.Sprintf(
			"%d window(s) where >=%d background threads issue I/O while %s throughput drops below %.0f%% of median",
			len(hits), p.MinBackground, p.ClientThread, p.DropFraction*100),
		Evidence: evidence,
	}}, nil
}

// dfgPatternDetector scores the session's Directly-Follows-Graph against
// known syscall-sequence anti-patterns: read→lseek→read ping-pong (a
// reader repositioning between consecutive reads instead of using
// positional I/O) and open/close churn (files reopened for trivial work).
type dfgPatternDetector struct{}

func (dfgPatternDetector) Name() string { return "dfg-antipatterns" }

func (dfgPatternDetector) Detect(ctx context.Context, t Target) ([]Finding, error) {
	p := t.Params.DFG
	if t.DFG == nil {
		return nil, nil
	}
	var findings []Finding
	for _, proc := range t.DFG.Procs {
		edges := make(map[string]int64, len(proc.Edges))
		for _, e := range proc.Edges {
			edges[e.From+"→"+e.To] += e.Count
		}
		var opens, closes, dataOps int64
		for _, n := range proc.Nodes {
			switch n.Syscall {
			case "open", "openat", "creat":
				opens += n.Count
			case "close":
				closes += n.Count
			case "read", "pread64", "readv", "write", "pwrite64", "writev":
				dataOps += n.Count
			}
		}

		readSeek := edges["read→lseek"]
		seekRead := edges["lseek→read"]
		if readSeek >= p.PingPongMinCount && seekRead >= p.PingPongMinCount {
			findings = append(findings, Finding{
				Rule:     "read-lseek-ping-pong",
				Severity: SeverityWarning,
				Summary: fmt.Sprintf(
					"process %s (pid %d) alternates read and lseek (%d read→lseek, %d lseek→read follows): positional reads (pread64) would halve the syscall count",
					proc.Proc, proc.PID, readSeek, seekRead),
				Evidence: []string{fmt.Sprintf(
					"DFG edges read→lseek=%d lseek→read=%d", readSeek, seekRead)},
			})
		}
		if opens >= p.ChurnMinOpens && float64(dataOps) < p.ChurnMaxOpsPerOpen*float64(opens) {
			findings = append(findings, Finding{
				Rule:     "open-close-churn",
				Severity: SeverityWarning,
				Summary: fmt.Sprintf(
					"process %s (pid %d) opens files %d times for only %d data syscalls (%.1f per open): descriptors are churned instead of reused",
					proc.Proc, proc.PID, opens, dataOps, float64(dataOps)/float64(opens)),
				Evidence: []string{fmt.Sprintf(
					"DFG nodes opens=%d closes=%d data-ops=%d", opens, closes, dataOps)},
			})
		}
	}
	return findings, nil
}
