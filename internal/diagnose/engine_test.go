package diagnose

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/apps/fluentbit"
	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

type fakeDetector struct {
	name     string
	findings []Finding
}

func (d fakeDetector) Name() string { return d.name }
func (d fakeDetector) Detect(context.Context, Target) ([]Finding, error) {
	return d.findings, nil
}

func TestRegistryRejectsDuplicatesAndEmptyNames(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(fakeDetector{name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(fakeDetector{name: "a"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := r.Register(fakeDetector{name: ""}); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestEngineRunsDetectorsInRegistrationOrderAndAttributes(t *testing.T) {
	k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	backend := store.New()
	tracer, _ := core.NewTracer(core.Config{
		SessionName: "order", Index: "events", Backend: backend,
		FlushInterval: time.Millisecond,
	})
	tracer.Start(k)
	k.NewProcess("app").NewTask("app").Stat("/missing")
	tracer.Stop()

	r := NewRegistry()
	r.Register(fakeDetector{name: "first", findings: []Finding{
		{Rule: "r1", Severity: SeverityWarning, Summary: "w"},
	}})
	r.Register(fakeDetector{name: "second", findings: []Finding{
		{Rule: "r2", Severity: SeverityCritical, Summary: "c"},
	}})
	rep, err := NewEngine(r).Run(context.Background(), backend, "events", "order")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Detectors) != 2 || rep.Detectors[0] != "first" || rep.Detectors[1] != "second" {
		t.Fatalf("detector order = %v", rep.Detectors)
	}
	if len(rep.Findings) != 2 || rep.Findings[0].Detector != "first" || rep.Findings[1].Detector != "second" {
		t.Fatalf("attribution = %+v", rep.Findings)
	}
	// 100 - 15 (warning) - 40 (critical) = 45.
	if rep.HealthScore != 45 {
		t.Fatalf("health = %d, want 45", rep.HealthScore)
	}
}

func TestEngineTelemetry(t *testing.T) {
	k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	backend := store.New()
	tracer, _ := core.NewTracer(core.Config{
		SessionName: "tm", Index: "events", Backend: backend,
		FlushInterval: time.Millisecond,
	})
	tracer.Start(k)
	k.NewProcess("app").NewTask("app").Stat("/missing")
	tracer.Stop()

	reg := telemetry.NewRegistry()
	e := NewEngine(DefaultRegistry(), WithTelemetry(reg))
	if _, err := e.Run(context.Background(), backend, "events", "tm"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("dio_diagnose_runs_total", "").Value(); got != 1 {
		t.Fatalf("runs counter = %d", got)
	}
	if got := reg.Counter("dio_dfg_builds_total", "").Value(); got != 1 {
		t.Fatalf("dfg builds counter = %d", got)
	}
}

// tracedFluentBitPair traces both Fluent Bit versions into one backend as
// differently named sessions, the setup dio diff exercises.
func tracedFluentBitPair(t *testing.T) *store.Store {
	t.Helper()
	backend := store.New()
	for _, v := range []struct {
		session string
		version fluentbit.Version
	}{{"buggy", fluentbit.VersionBuggy}, {"fixed", fluentbit.VersionFixed}} {
		k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
		tracer, err := core.NewTracer(core.Config{
			SessionName: v.session, Index: "events", Backend: backend,
			AutoCorrelate: true, FlushInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := tracer.Start(k); err != nil {
			t.Fatal(err)
		}
		if _, err := fluentbit.RunScenario(k, "/var/log", v.version); err != nil {
			t.Fatal(err)
		}
		if _, err := tracer.Stop(); err != nil {
			t.Fatal(err)
		}
	}
	return backend
}

func TestDiffSessionsClassifiesBugFixAsImprovement(t *testing.T) {
	backend := tracedFluentBitPair(t)
	res, err := NewEngine(DefaultRegistry()).DiffSessions(
		context.Background(), backend, "events", "buggy", "fixed", Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != ClassImprovement {
		t.Fatalf("class = %s (%s)", res.Class, res)
	}
	if res.HealthDelta <= 0 {
		t.Fatalf("health delta = %d, want positive", res.HealthDelta)
	}
	var resolvedStale bool
	for _, d := range res.Deltas {
		if d.Kind == "finding" && d.Rule == "stale-offset-read" {
			if d.Class != ClassImprovement {
				t.Fatalf("stale-offset delta = %+v", d)
			}
			resolvedStale = true
		}
	}
	if !resolvedStale {
		t.Fatalf("stale-offset resolution not reported: %s", res)
	}
	// And in the opposite direction the same fix reads as a regression.
	rev, err := NewEngine(DefaultRegistry()).DiffSessions(
		context.Background(), backend, "events", "fixed", "buggy", Params{})
	if err != nil {
		t.Fatal(err)
	}
	if rev.Class != ClassRegression {
		t.Fatalf("reverse class = %s", rev.Class)
	}
}

func TestDiffClassifiesSeverityShifts(t *testing.T) {
	a := Report{Session: "a", Findings: []Finding{
		{Rule: "x", FilePath: "/f", Severity: SeverityWarning},
		{Rule: "gone", Severity: SeverityCritical},
	}}
	b := Report{Session: "b", Findings: []Finding{
		{Rule: "x", FilePath: "/f", Severity: SeverityCritical},
		{Rule: "new", Severity: SeverityInfo},
	}}
	a.HealthScore = HealthScore(a.Findings)
	b.HealthScore = HealthScore(b.Findings)
	res := Diff(a, b, nil, nil)
	byRule := make(map[string]Delta)
	for _, d := range res.Deltas {
		if d.Kind == "finding" {
			byRule[d.Rule] = d
		}
	}
	if byRule["x"].Class != ClassRegression {
		t.Fatalf("severity escalation = %+v", byRule["x"])
	}
	if byRule["gone"].Class != ClassImprovement {
		t.Fatalf("resolved finding = %+v", byRule["gone"])
	}
	if byRule["new"].Class != ClassRegression {
		t.Fatalf("new finding = %+v", byRule["new"])
	}
	if !strings.Contains(res.String(), "health") {
		t.Fatalf("diff rendering: %q", res.String())
	}
}

func TestRenderTables(t *testing.T) {
	backend := tracedFluentBitPair(t)
	e := NewEngine(DefaultRegistry())
	rep, dfg, err := e.Analyze(context.Background(), backend, "events", "buggy", Params{})
	if err != nil {
		t.Fatal(err)
	}
	if out := ReportTable(rep).String(); !strings.Contains(out, "stale-offset-read") {
		t.Fatalf("report table:\n%s", out)
	}
	if out := DFGTable(dfg, 5).String(); !strings.Contains(out, "->") {
		t.Fatalf("dfg table:\n%s", out)
	}
	res, err := e.DiffSessions(context.Background(), backend, "events", "buggy", "fixed", Params{})
	if err != nil {
		t.Fatal(err)
	}
	if out := DiffTable(res).String(); !strings.Contains(out, "improvement") {
		t.Fatalf("diff table:\n%s", out)
	}
}
