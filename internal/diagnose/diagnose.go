// Package diagnose implements the paper's future-work direction (§V) as a
// reusable engine: a pluggable registry of detectors that scan a traced
// session for the inefficient or erroneous I/O behaviours the paper
// diagnoses manually — stale-offset reads after inode reuse (the Fluent
// Bit data-loss signature of §III-B), background I/O contention (the
// RocksDB tail-latency signature of §III-C), costly access patterns
// (small or random I/O, §I), and syscall-sequence anti-patterns surfaced
// by a Directly-Follows-Graph over the session's syscall stream
// (Sankaran et al., arXiv:2408.07378).
//
// Every detector runs ordinary queries against the analysis backend
// through the streaming cursor, so the rules work identically over an
// in-process store, a remote server, or a retention-tiered index, and
// never materialize a whole session in memory. Engine.Run aggregates the
// findings into a severity-weighted 0-100 health score; Diff compares two
// sessions' reports and DFGs and classifies each delta as regression,
// improvement, or neutral.
package diagnose

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"github.com/dsrhaslab/dio-go/internal/store"
)

// Severity grades a finding.
type Severity int

// Severities.
const (
	SeverityInfo Severity = iota + 1
	SeverityWarning
	SeverityCritical
)

// String returns the severity label.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityCritical:
		return "critical"
	default:
		return "unknown"
	}
}

// MarshalJSON encodes the severity as its label, so reports read the same
// over the wire as in logs.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts both the label form and the legacy numeric form.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var label string
	if err := json.Unmarshal(b, &label); err == nil {
		switch label {
		case "info":
			*s = SeverityInfo
		case "warning":
			*s = SeverityWarning
		case "critical":
			*s = SeverityCritical
		default:
			return fmt.Errorf("unknown severity %q", label)
		}
		return nil
	}
	var n int
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("severity must be a label or number: %s", b)
	}
	*s = Severity(n)
	return nil
}

// Weight is the health-score cost of one finding at this severity: a
// critical finding alone drops a session into the "unhealthy" half of the
// 0-100 scale, warnings accumulate, info findings barely register.
func (s Severity) Weight() int {
	switch s {
	case SeverityCritical:
		return 40
	case SeverityWarning:
		return 15
	case SeverityInfo:
		return 5
	default:
		return 0
	}
}

// Finding is one detected I/O anomaly.
type Finding struct {
	// Rule identifies the anti-pattern (e.g. "stale-offset-read").
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	// Detector names the registered detector that produced the finding.
	Detector string `json:"detector,omitempty"`
	// Summary is a one-line human-readable description.
	Summary string `json:"summary"`
	// FilePath names the affected file, when file-specific.
	FilePath string `json:"file_path,omitempty"`
	// Evidence lists the key events or windows backing the finding.
	Evidence []string `json:"evidence,omitempty"`
}

// Report is the outcome of running the engine's detectors over a session.
type Report struct {
	Session string `json:"session"`
	Index   string `json:"index,omitempty"`
	// Events is the number of stored events the DFG pass examined.
	Events int64 `json:"events"`
	// HealthScore grades the session 0 (unhealthy) to 100 (clean): 100
	// minus the severity weights of every finding, floored at zero.
	HealthScore int `json:"health_score"`
	// Detectors lists the registered detectors that ran, in order.
	Detectors []string  `json:"detectors,omitempty"`
	Findings  []Finding `json:"findings"`
}

// HealthScore computes the severity-weighted 0-100 score for a finding set.
func HealthScore(findings []Finding) int {
	score := 100
	for _, f := range findings {
		score -= f.Severity.Weight()
	}
	if score < 0 {
		score = 0
	}
	return score
}

// Critical reports whether any finding is critical.
func (r Report) Critical() bool {
	for _, f := range r.Findings {
		if f.Severity == SeverityCritical {
			return true
		}
	}
	return false
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Diagnosis of session %q: health %d/100, %d finding(s)\n",
		r.Session, r.HealthScore, len(r.Findings))
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  [%s] %s: %s\n", f.Severity, f.Rule, f.Summary)
		for _, e := range f.Evidence {
			fmt.Fprintf(&b, "      - %s\n", e)
		}
	}
	return b.String()
}

// Config is the legacy name for the engine parameters.
//
// Deprecated: use Params with Engine.Run.
type Config = Params

// Run executes the default detector registry over one session.
//
// Deprecated: use NewEngine(DefaultRegistry()).Run, which is context-first
// and scores the report.
func Run(b store.Backend, index, session string, cfg Config) (Report, error) {
	return NewEngine(DefaultRegistry()).RunParams(context.Background(), b, index, session, cfg)
}
