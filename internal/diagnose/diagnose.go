// Package diagnose implements the paper's future-work direction (§V): a
// collection of automated correlation algorithms that scan a traced
// session for the inefficient or erroneous I/O behaviours the paper
// diagnoses manually — stale-offset reads after inode reuse (the Fluent
// Bit data-loss signature of §III-B), background I/O contention (the
// RocksDB tail-latency signature of §III-C), and costly access patterns
// (small or random I/O, §I).
//
// Each detector runs ordinary queries against the analysis backend, so the
// rules work identically over an in-process store or a remote server.
package diagnose

import (
	"context"

	"fmt"
	"sort"
	"strings"

	"github.com/dsrhaslab/dio-go/internal/analysis"
	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// Severity grades a finding.
type Severity int

// Severities.
const (
	SeverityInfo Severity = iota + 1
	SeverityWarning
	SeverityCritical
)

// String returns the severity label.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityCritical:
		return "critical"
	default:
		return "unknown"
	}
}

// Finding is one detected I/O anomaly.
type Finding struct {
	Rule     string
	Severity Severity
	// Summary is a one-line human-readable description.
	Summary string
	// FilePath names the affected file, when file-specific.
	FilePath string
	// Evidence lists the key events or windows backing the finding.
	Evidence []string
}

// Report is the outcome of running all detectors over a session.
type Report struct {
	Session  string
	Findings []Finding
}

// Critical reports whether any finding is critical.
func (r Report) Critical() bool {
	for _, f := range r.Findings {
		if f.Severity == SeverityCritical {
			return true
		}
	}
	return false
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Diagnosis of session %q: %d finding(s)\n", r.Session, len(r.Findings))
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  [%s] %s: %s\n", f.Severity, f.Rule, f.Summary)
		for _, e := range f.Evidence {
			fmt.Fprintf(&b, "      - %s\n", e)
		}
	}
	return b.String()
}

// Config tunes the detectors.
type Config struct {
	// SmallIOFraction flags a file when more than this share of its data
	// syscalls move fewer than analysis.SmallIOThreshold bytes.
	SmallIOFraction float64
	// RandomFraction flags a file when its sequential fraction falls below
	// 1 - RandomFraction.
	RandomFraction float64
	// MinDataOps is the minimum number of data syscalls before a file's
	// pattern is judged at all.
	MinDataOps int
}

func (c Config) withDefaults() Config {
	if c.SmallIOFraction <= 0 {
		c.SmallIOFraction = 0.5
	}
	if c.RandomFraction <= 0 {
		c.RandomFraction = 0.5
	}
	if c.MinDataOps <= 0 {
		c.MinDataOps = 8
	}
	return c
}

// Run executes every detector over one session.
func Run(b store.Backend, index, session string, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{Session: session}

	stale, err := DetectStaleOffsetReads(b, index, session)
	if err != nil {
		return rep, fmt.Errorf("stale-offset detector: %w", err)
	}
	rep.Findings = append(rep.Findings, stale...)

	patterns, err := DetectCostlyPatterns(b, index, session, cfg)
	if err != nil {
		return rep, fmt.Errorf("pattern detector: %w", err)
	}
	rep.Findings = append(rep.Findings, patterns...)

	failures, err := DetectFailingSyscalls(b, index, session)
	if err != nil {
		return rep, fmt.Errorf("failure detector: %w", err)
	}
	rep.Findings = append(rep.Findings, failures...)
	return rep, nil
}

// DetectStaleOffsetReads finds the §III-B data-loss signature: on a fresh
// file generation (a file tag never read before), the first read starts at
// a non-zero offset and returns 0 bytes — the reader resumed beyond EOF,
// so freshly written data can never be delivered. The Fluent Bit v1.4.0
// bug produces exactly this pattern after inode reuse.
func DetectStaleOffsetReads(b store.Backend, index, session string) ([]Finding, error) {
	resp, err := store.SearchEvents(context.Background(), b, index, store.SearchRequest{
		Query: store.Must(
			store.Term(store.FieldSession, session),
			store.Terms(store.FieldSyscall, "read", "pread64", "readv"),
			store.Exists(store.FieldFileTag),
		),
		Sort: []store.SortField{{Field: store.FieldTimeEnter}},
	})
	if err != nil {
		return nil, err
	}
	firstReadSeen := make(map[event.FileTag]bool)
	var findings []Finding
	for i := range resp.Hits {
		e := &resp.Hits[i]
		if firstReadSeen[e.FileTag] {
			continue
		}
		firstReadSeen[e.FileTag] = true
		if e.HasOffset && e.Offset > 0 && e.RetVal == 0 {
			path := e.FilePath
			if path == "" {
				path = "(unresolved path, tag " + e.FileTag.String() + ")"
			}
			findings = append(findings, Finding{
				Rule:     "stale-offset-read",
				Severity: SeverityCritical,
				Summary: fmt.Sprintf(
					"first read of %s starts at offset %d and returns 0 bytes: the reader resumed past EOF (possible data loss after file recreation)",
					path, e.Offset),
				FilePath: path,
				Evidence: []string{fmt.Sprintf(
					"%s by %s at t=%d: ret=0 offset=%d tag=%s",
					e.Syscall, e.ProcName, e.TimeEnterNS, e.Offset, e.FileTag)},
			})
		}
	}
	return findings, nil
}

// DetectCostlyPatterns flags files dominated by small or random I/O.
func DetectCostlyPatterns(b store.Backend, index, session string, cfg Config) ([]Finding, error) {
	cfg = cfg.withDefaults()
	files, err := analysis.HotFiles(b, index, session, 0)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, fl := range files {
		p, err := analysis.FileOffsetPattern(b, index, session, fl.FilePath)
		if err != nil {
			return nil, err
		}
		dataOps := p.Reads + p.Writes
		if dataOps < cfg.MinDataOps {
			continue
		}
		if frac := float64(p.SmallIOs) / float64(dataOps); frac >= cfg.SmallIOFraction {
			findings = append(findings, Finding{
				Rule:     "small-io",
				Severity: SeverityWarning,
				Summary: fmt.Sprintf("%.0f%% of %d data syscalls on %s move fewer than %d bytes",
					frac*100, dataOps, fl.FilePath, analysis.SmallIOThreshold),
				FilePath: fl.FilePath,
			})
		}
		if p.SequentialFraction() <= 1-cfg.RandomFraction {
			findings = append(findings, Finding{
				Rule:     "random-io",
				Severity: SeverityWarning,
				Summary: fmt.Sprintf("accesses to %s are %.0f%% non-sequential (%d of %d data syscalls)",
					fl.FilePath, (1-p.SequentialFraction())*100,
					p.RandomReads+p.RandomWrites, dataOps),
				FilePath: fl.FilePath,
			})
		}
	}
	return findings, nil
}

// DetectFailingSyscalls summarizes error-returning syscalls per type, an
// immediate smell for erroneous I/O usage.
func DetectFailingSyscalls(b store.Backend, index, session string) ([]Finding, error) {
	lt := 0.0
	resp, err := b.Search(context.Background(), index, store.SearchRequest{
		Query: store.Must(
			store.Term(store.FieldSession, session),
			store.Query{Range: &store.RangeQuery{Field: store.FieldRetVal, LT: &lt}},
		),
		Size: 1,
		Aggs: map[string]store.Agg{
			"by_syscall": {Terms: &store.TermsAgg{Field: store.FieldSyscall}},
		},
	})
	if err != nil {
		return nil, err
	}
	buckets := resp.Aggs["by_syscall"].Buckets
	if len(buckets) == 0 {
		return nil, nil
	}
	parts := make([]string, 0, len(buckets))
	for _, bkt := range buckets {
		parts = append(parts, fmt.Sprintf("%s×%d", bkt.Key, bkt.Count))
	}
	sort.Strings(parts)
	return []Finding{{
		Rule:     "failing-syscalls",
		Severity: SeverityInfo,
		Summary:  fmt.Sprintf("%d syscalls returned errors (%s)", resp.Total, strings.Join(parts, ", ")),
	}}, nil
}

// ContentionWindow is one detected interval of background-I/O interference.
type ContentionWindow struct {
	StartNS           int64
	BackgroundThreads int
	ClientSyscalls    int
}

// DetectContention finds the §III-C signature in a traced session: time
// windows where many background threads issue I/O while the client
// thread's syscall rate drops below dropFraction of its median. Thread
// roles are identified by name: clientThread exactly, background threads
// by prefix.
func DetectContention(b store.Backend, index, session, clientThread, backgroundPrefix string,
	windowNS int64, minBackground int, dropFraction float64) ([]Finding, error) {
	if dropFraction <= 0 {
		dropFraction = 0.5
	}
	resp, err := b.Search(context.Background(), index, store.SearchRequest{
		Query: store.Term(store.FieldSession, session),
		Size:  1,
		Aggs: map[string]store.Agg{
			"timeline": {
				DateHistogram: &store.DateHistogramAgg{Field: store.FieldTimeEnter, IntervalNS: windowNS},
				Aggs: map[string]store.Agg{
					"by_thread": {Terms: &store.TermsAgg{Field: store.FieldThreadName}},
				},
			},
		},
	})
	if err != nil {
		return nil, err
	}
	type window struct {
		startNS    int64
		client     int
		background int
	}
	var windows []window
	var clientCounts []float64
	for _, bkt := range resp.Aggs["timeline"].Buckets {
		w := window{startNS: int64(bkt.KeyNum)}
		for _, sub := range bkt.Sub["by_thread"].Buckets {
			switch {
			case sub.Key == clientThread:
				w.client = sub.Count
			case strings.HasPrefix(sub.Key, backgroundPrefix):
				w.background++
			}
		}
		windows = append(windows, w)
		clientCounts = append(clientCounts, float64(w.client))
	}
	if len(windows) < 4 {
		return nil, nil // not enough signal
	}
	sorted := append([]float64(nil), clientCounts...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]

	var hits []ContentionWindow
	for _, w := range windows {
		if w.background >= minBackground && float64(w.client) < median*dropFraction {
			hits = append(hits, ContentionWindow{
				StartNS:           w.startNS,
				BackgroundThreads: w.background,
				ClientSyscalls:    w.client,
			})
		}
	}
	if len(hits) == 0 {
		return nil, nil
	}
	evidence := make([]string, 0, len(hits))
	for _, h := range hits {
		evidence = append(evidence, fmt.Sprintf(
			"window t=%d: %d %s* threads active, %s syscalls down to %d (median %.0f)",
			h.StartNS, h.BackgroundThreads, backgroundPrefix, clientThread, h.ClientSyscalls, median))
	}
	return []Finding{{
		Rule:     "background-io-contention",
		Severity: SeverityWarning,
		Summary: fmt.Sprintf(
			"%d window(s) where >=%d background threads issue I/O while %s throughput drops below %.0f%% of median",
			len(hits), minBackground, clientThread, dropFraction*100),
		Evidence: evidence,
	}}, nil
}
