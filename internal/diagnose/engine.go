package diagnose

import (
	"context"
	"fmt"
	"time"

	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// Params tunes the engine and its detectors. The zero value selects the
// defaults below; JSON tags make it the optional request body of the
// /_diagnose, /_dfg, and /_diff endpoints.
type Params struct {
	// SmallIOFraction flags a file when more than this share of its data
	// syscalls move fewer than SmallIOThreshold bytes (default 0.5).
	SmallIOFraction float64 `json:"small_io_fraction,omitempty"`
	// RandomFraction flags a file when its sequential fraction falls below
	// 1 - RandomFraction (default 0.5).
	RandomFraction float64 `json:"random_fraction,omitempty"`
	// MinDataOps is the minimum number of data syscalls before a file's
	// pattern is judged at all (default 8).
	MinDataOps int `json:"min_data_ops,omitempty"`
	// PageSize bounds the streaming-cursor pages every detector and the
	// DFG builder read events through (default 1000).
	PageSize int `json:"page_size,omitempty"`

	Contention ContentionParams `json:"contention,omitempty"`
	DFG        DFGParams        `json:"dfg,omitempty"`
}

// ContentionParams tunes the background-I/O contention detector (§III-C).
// Thread roles are identified by name: ClientThread exactly, background
// threads by prefix. The defaults match the bundled RocksDB-style workload
// (db_bench client, rocksdb:low* compaction threads).
type ContentionParams struct {
	ClientThread     string `json:"client_thread,omitempty"`
	BackgroundPrefix string `json:"background_prefix,omitempty"`
	// WindowNS is the timeline bucket width (default 100ms).
	WindowNS int64 `json:"window_ns,omitempty"`
	// MinBackground is how many background threads must be active in a
	// window before it can count as contended (default 3).
	MinBackground int `json:"min_background,omitempty"`
	// DropFraction flags windows where the client's syscall rate falls
	// below this fraction of its median (default 0.5).
	DropFraction float64 `json:"drop_fraction,omitempty"`
}

// DFGParams tunes the DFG anti-pattern detector.
type DFGParams struct {
	// PingPongMinCount is the minimum read→lseek and lseek→read edge count
	// before the ping-pong rule fires (default 8).
	PingPongMinCount int64 `json:"ping_pong_min_count,omitempty"`
	// ChurnMinOpens is the minimum open count before open/close churn is
	// judged (default 8).
	ChurnMinOpens int64 `json:"churn_min_opens,omitempty"`
	// ChurnMaxOpsPerOpen flags a process when it performs fewer data
	// syscalls per open than this (default 2).
	ChurnMaxOpsPerOpen float64 `json:"churn_max_ops_per_open,omitempty"`
}

func (p Params) withDefaults() Params {
	if p.SmallIOFraction <= 0 {
		p.SmallIOFraction = 0.5
	}
	if p.RandomFraction <= 0 {
		p.RandomFraction = 0.5
	}
	if p.MinDataOps <= 0 {
		p.MinDataOps = 8
	}
	if p.PageSize <= 0 {
		p.PageSize = 1000
	}
	if p.Contention.ClientThread == "" {
		p.Contention.ClientThread = "db_bench"
	}
	if p.Contention.BackgroundPrefix == "" {
		p.Contention.BackgroundPrefix = "rocksdb:low"
	}
	if p.Contention.WindowNS <= 0 {
		p.Contention.WindowNS = int64(100 * time.Millisecond)
	}
	if p.Contention.MinBackground <= 0 {
		p.Contention.MinBackground = 3
	}
	if p.Contention.DropFraction <= 0 {
		p.Contention.DropFraction = 0.5
	}
	if p.DFG.PingPongMinCount <= 0 {
		p.DFG.PingPongMinCount = 8
	}
	if p.DFG.ChurnMinOpens <= 0 {
		p.DFG.ChurnMinOpens = 8
	}
	if p.DFG.ChurnMaxOpsPerOpen <= 0 {
		p.DFG.ChurnMaxOpsPerOpen = 2
	}
	return p
}

// Target is what a detector examines: one session of one index, reached
// through a Backend, with the engine's parameters and the session's DFG
// (built once per run and shared across detectors) already resolved.
type Target struct {
	Backend store.Backend
	Index   string
	Session string
	Params  Params
	// DFG is the session's Directly-Follows-Graph, built by the engine
	// before any detector runs.
	DFG *DFG
}

// Detector is one registered diagnosis rule. Detect returns zero or more
// findings; an error aborts the engine run.
type Detector interface {
	Name() string
	Detect(ctx context.Context, t Target) ([]Finding, error)
}

// Registry holds detectors in registration order.
type Registry struct {
	detectors []Detector
	byName    map[string]bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]bool)}
}

// Register adds a detector; duplicate names are rejected so two rules can
// never shadow each other in a report.
func (r *Registry) Register(d Detector) error {
	name := d.Name()
	if name == "" {
		return fmt.Errorf("diagnose: detector with empty name")
	}
	if r.byName[name] {
		return fmt.Errorf("diagnose: detector %q already registered", name)
	}
	r.byName[name] = true
	r.detectors = append(r.detectors, d)
	return nil
}

// Detectors returns the registered detectors in registration order.
func (r *Registry) Detectors() []Detector {
	return append([]Detector(nil), r.detectors...)
}

// DefaultRegistry returns a registry with the built-in detectors: the
// paper's Fluent Bit stale-offset and RocksDB contention signatures, the
// costly-pattern and failing-syscall rules, and the DFG anti-pattern rule.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	for _, d := range []Detector{
		staleOffsetDetector{},
		dfgPatternDetector{},
		costlyPatternDetector{},
		failingSyscallDetector{},
		contentionDetector{},
	} {
		if err := r.Register(d); err != nil {
			panic(err) // built-ins are statically unique
		}
	}
	return r
}

// Engine runs a detector registry over sessions and scores the results.
type Engine struct {
	reg    *Registry
	params Params
	tm     engineTelemetry
}

type engineTelemetry struct {
	runs, findings, dfgBuilds, diffs *telemetry.Counter
	runNS, dfgNS                     *telemetry.Histogram
}

// EngineOption customizes an Engine at construction time.
type EngineOption func(*Engine)

// WithTelemetry counts engine activity (runs, findings, DFG builds, diffs,
// latencies) in reg, so a diod node's /metrics covers its diagnosis load.
func WithTelemetry(reg *telemetry.Registry) EngineOption {
	return func(e *Engine) {
		e.tm = engineTelemetry{
			runs:      reg.Counter("dio_diagnose_runs_total", "Completed diagnosis engine runs."),
			findings:  reg.Counter("dio_diagnose_findings_total", "Findings produced by diagnosis runs."),
			dfgBuilds: reg.Counter("dio_dfg_builds_total", "Syscall DFG builds."),
			diffs:     reg.Counter("dio_diff_runs_total", "Session diff runs."),
			runNS:     reg.Histogram("dio_diagnose_run_ns", "Diagnosis run latency (ns).", telemetry.DefaultLatencyBuckets),
			dfgNS:     reg.Histogram("dio_dfg_build_ns", "DFG build latency (ns).", telemetry.DefaultLatencyBuckets),
		}
	}
}

// WithParams sets the engine's default parameters (per-run parameters via
// RunParams still take precedence).
func WithParams(p Params) EngineOption {
	return func(e *Engine) { e.params = p }
}

// NewEngine creates an engine over the given registry.
func NewEngine(reg *Registry, opts ...EngineOption) *Engine {
	e := &Engine{reg: reg}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Run executes every registered detector over one session and scores the
// findings into a Report.
func (e *Engine) Run(ctx context.Context, b store.Backend, index, session string) (Report, error) {
	return e.RunParams(ctx, b, index, session, e.params)
}

// RunParams is Run with per-call parameter overrides.
func (e *Engine) RunParams(ctx context.Context, b store.Backend, index, session string, p Params) (Report, error) {
	rep, _, err := e.Analyze(ctx, b, index, session, p)
	return rep, err
}

// Analyze is RunParams returning the session DFG alongside the report, so
// callers that need both (diff, the /_diagnose+/_dfg handlers) build the
// graph once.
func (e *Engine) Analyze(ctx context.Context, b store.Backend, index, session string, p Params) (Report, *DFG, error) {
	p = p.withDefaults()
	start := time.Now()
	dfgStart := start
	dfg, err := BuildDFG(ctx, b, index, session, p.PageSize)
	if err != nil {
		return Report{Session: session, Index: index}, nil, fmt.Errorf("dfg build: %w", err)
	}
	e.tm.dfgBuilds.Inc()
	e.tm.dfgNS.Observe(float64(time.Since(dfgStart)))

	t := Target{Backend: b, Index: index, Session: session, Params: p, DFG: dfg}
	rep := Report{Session: session, Index: index, Events: dfg.Events}
	for _, d := range e.reg.detectors {
		rep.Detectors = append(rep.Detectors, d.Name())
		findings, err := d.Detect(ctx, t)
		if err != nil {
			return rep, dfg, fmt.Errorf("detector %s: %w", d.Name(), err)
		}
		for i := range findings {
			findings[i].Detector = d.Name()
		}
		rep.Findings = append(rep.Findings, findings...)
	}
	rep.HealthScore = HealthScore(rep.Findings)
	e.tm.runs.Inc()
	e.tm.findings.Add(uint64(len(rep.Findings)))
	e.tm.runNS.Observe(float64(time.Since(start)))
	return rep, dfg, nil
}

// DiffSessions runs the engine over two sessions of one index and diffs
// the resulting reports and DFGs.
func (e *Engine) DiffSessions(ctx context.Context, b store.Backend, index, sessionA, sessionB string, p Params) (DiffResult, error) {
	repA, dfgA, err := e.Analyze(ctx, b, index, sessionA, p)
	if err != nil {
		return DiffResult{}, fmt.Errorf("session %s: %w", sessionA, err)
	}
	repB, dfgB, err := e.Analyze(ctx, b, index, sessionB, p)
	if err != nil {
		return DiffResult{}, fmt.Errorf("session %s: %w", sessionB, err)
	}
	e.tm.diffs.Inc()
	return Diff(repA, repB, dfgA, dfgB), nil
}
