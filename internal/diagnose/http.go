package diagnose

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"

	"github.com/dsrhaslab/dio-go/internal/store"
)

// Install mounts the diagnosis engine on a store server:
//
//	POST /{index}/_diagnose?session=NAME   run the engine, return the Report
//	POST /{index}/_dfg?session=NAME        build and return the session DFG
//	POST /{index}/_diff?a=NAME&b=NAME      diff two sessions' reports + DFGs
//
// Each accepts an optional Params JSON body. The routes ride the server's
// dual mounting, so they serve under /v1/ and the legacy alias alike, and
// the engine's telemetry lands in the store registry GET /metrics exposes.
// The engine lives here rather than in the store package so the store
// stays diagnosis-agnostic; the server only grows a generic op hook.
func Install(srv *store.Server) *Engine {
	e := NewEngine(DefaultRegistry(), WithTelemetry(srv.Store().Telemetry()))
	st := srv.Store()
	srv.HandleOp("_diagnose", func(w http.ResponseWriter, r *http.Request, index string) {
		session, p, ok := decodeSessionParams(w, r, "session")
		if !ok {
			return
		}
		rep, err := e.RunParams(r.Context(), st, index, session, p)
		if err != nil {
			writeEngineError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	srv.HandleOp("_dfg", func(w http.ResponseWriter, r *http.Request, index string) {
		session, p, ok := decodeSessionParams(w, r, "session")
		if !ok {
			return
		}
		dfg, err := BuildDFG(r.Context(), st, index, session, p.withDefaults().PageSize)
		if err != nil {
			writeEngineError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, dfg)
	})
	srv.HandleOp("_diff", func(w http.ResponseWriter, r *http.Request, index string) {
		a, p, ok := decodeSessionParams(w, r, "a")
		if !ok {
			return
		}
		b := r.URL.Query().Get("b")
		if b == "" {
			httpError(w, http.StatusBadRequest, "missing b session parameter")
			return
		}
		res, err := e.DiffSessions(r.Context(), st, index, a, b, p)
		if err != nil {
			writeEngineError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	return e
}

// decodeSessionParams reads the named query parameter and the optional
// Params body, writing the error response itself when either is invalid.
func decodeSessionParams(w http.ResponseWriter, r *http.Request, key string) (string, Params, bool) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return "", Params{}, false
	}
	session := r.URL.Query().Get(key)
	if session == "" {
		httpError(w, http.StatusBadRequest, "missing %s session parameter", key)
		return "", Params{}, false
	}
	var p Params
	if r.Body != nil && r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
			httpError(w, http.StatusBadRequest, "bad params body: %v", err)
			return "", Params{}, false
		}
	}
	return session, p, true
}

// writeEngineError maps engine failures onto the store API's conventions:
// the only engine-side failure mode over a local store is a bad target
// (missing index), which _search answers with 404.
func writeEngineError(w http.ResponseWriter, err error) {
	httpError(w, http.StatusNotFound, "%v", err)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// Client runs the diagnosis endpoints against a remote backend, mirroring
// the engine's local surface over a store.Client's wire plumbing.
type Client struct {
	c *store.Client
}

// NewClient wraps a store client.
func NewClient(c *store.Client) Client { return Client{c: c} }

// Diagnose runs the server-side engine over one session.
func (d Client) Diagnose(ctx context.Context, index, session string) (Report, error) {
	var rep Report
	err := d.c.DoJSON(ctx, http.MethodPost,
		"/"+url.PathEscape(index)+"/_diagnose?session="+url.QueryEscape(session), nil, &rep)
	return rep, err
}

// DFG fetches the server-built Directly-Follows-Graph of one session.
func (d Client) DFG(ctx context.Context, index, session string) (*DFG, error) {
	var g DFG
	err := d.c.DoJSON(ctx, http.MethodPost,
		"/"+url.PathEscape(index)+"/_dfg?session="+url.QueryEscape(session), nil, &g)
	if err != nil {
		return nil, err
	}
	return &g, nil
}

// Diff diffs two sessions server-side.
func (d Client) Diff(ctx context.Context, index, sessionA, sessionB string) (DiffResult, error) {
	var res DiffResult
	err := d.c.DoJSON(ctx, http.MethodPost,
		"/"+url.PathEscape(index)+"/_diff?a="+url.QueryEscape(sessionA)+"&b="+url.QueryEscape(sessionB),
		nil, &res)
	return res, err
}
