package diagnose

import (
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/apps/fluentbit"
	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/ebpf"
	"github.com/dsrhaslab/dio-go/internal/experiments"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// traceFluentBit traces one Fluent Bit scenario and returns the backend.
func traceFluentBit(t *testing.T, version fluentbit.Version, session string) *store.Store {
	t.Helper()
	k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	backend := store.New()
	tracer, err := core.NewTracer(core.Config{
		SessionName:   session,
		Index:         "events",
		Backend:       backend,
		AutoCorrelate: true,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Start(k); err != nil {
		t.Fatal(err)
	}
	if _, err := fluentbit.RunScenario(k, "/var/log", version); err != nil {
		t.Fatal(err)
	}
	if _, err := tracer.Stop(); err != nil {
		t.Fatal(err)
	}
	return backend
}

func TestDetectStaleOffsetReadOnBuggyFluentBit(t *testing.T) {
	b := traceFluentBit(t, fluentbit.VersionBuggy, "buggy")
	findings, err := DetectStaleOffsetReads(b, "events", "buggy")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %+v, want exactly 1", findings)
	}
	f := findings[0]
	if f.Severity != SeverityCritical || f.Rule != "stale-offset-read" {
		t.Fatalf("finding = %+v", f)
	}
	if !strings.Contains(f.Summary, "offset 26") {
		t.Fatalf("summary = %q", f.Summary)
	}
	if f.FilePath != "/var/log/app.log" {
		t.Fatalf("file = %q", f.FilePath)
	}
}

func TestNoStaleOffsetOnFixedFluentBit(t *testing.T) {
	b := traceFluentBit(t, fluentbit.VersionFixed, "fixed")
	findings, err := DetectStaleOffsetReads(b, "events", "fixed")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("false positive on fixed version: %+v", findings)
	}
}

func TestRunFullDiagnosisSeparatesVersions(t *testing.T) {
	bBuggy := traceFluentBit(t, fluentbit.VersionBuggy, "buggy")
	repBuggy, err := Run(bBuggy, "events", "buggy", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !repBuggy.Critical() {
		t.Fatalf("buggy session not critical: %s", repBuggy)
	}

	bFixed := traceFluentBit(t, fluentbit.VersionFixed, "fixed")
	repFixed, err := Run(bFixed, "events", "fixed", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if repFixed.Critical() {
		t.Fatalf("fixed session flagged critical: %s", repFixed)
	}
	out := repBuggy.String()
	if !strings.Contains(out, "stale-offset-read") {
		t.Fatalf("report rendering: %q", out)
	}
}

func TestDetectCostlyPatterns(t *testing.T) {
	k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	k.MkdirAll("/d")
	backend := store.New()
	tracer, _ := core.NewTracer(core.Config{
		SessionName: "patterns", Index: "events", Backend: backend,
		AutoCorrelate: true, FlushInterval: time.Millisecond,
	})
	tracer.Start(k)

	task := k.NewProcess("app").NewTask("app")
	// Random, small I/O on one file.
	fd, _ := task.Openat(kernel.AtFDCWD, "/d/bad", kernel.ORdwr|kernel.OCreat, 0o644)
	task.Write(fd, make([]byte, 64<<10))
	buf := make([]byte, 100)
	for i := 20; i > 0; i-- {
		task.Pread64(fd, buf, int64(i*3000))
	}
	task.Close(fd)
	// Large sequential I/O on another.
	fd2, _ := task.Openat(kernel.AtFDCWD, "/d/good", kernel.OWronly|kernel.OCreat, 0o644)
	big := make([]byte, 16<<10)
	for i := 0; i < 10; i++ {
		task.Write(fd2, big)
	}
	task.Close(fd2)
	tracer.Stop()

	findings, err := DetectCostlyPatterns(backend, "events", "patterns", Config{})
	if err != nil {
		t.Fatal(err)
	}
	rules := map[string][]string{}
	for _, f := range findings {
		rules[f.Rule] = append(rules[f.Rule], f.FilePath)
	}
	if got := rules["small-io"]; len(got) != 1 || got[0] != "/d/bad" {
		t.Fatalf("small-io findings = %v", got)
	}
	if got := rules["random-io"]; len(got) != 1 || got[0] != "/d/bad" {
		t.Fatalf("random-io findings = %v", got)
	}
}

func TestDetectFailingSyscalls(t *testing.T) {
	k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	backend := store.New()
	tracer, _ := core.NewTracer(core.Config{
		SessionName: "errs", Index: "events", Backend: backend,
		FlushInterval: time.Millisecond,
	})
	tracer.Start(k)
	task := k.NewProcess("app").NewTask("app")
	task.Stat("/missing1")
	task.Stat("/missing2")
	task.Unlink("/missing3")
	tracer.Stop()

	findings, err := DetectFailingSyscalls(backend, "events", "errs")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %+v", findings)
	}
	if !strings.Contains(findings[0].Summary, "3 syscalls returned errors") {
		t.Fatalf("summary = %q", findings[0].Summary)
	}
}

func TestDetectContentionOnRocksDBRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second contention run")
	}
	res, err := experiments.RunRocksDB(experiments.RocksDBConfig{
		Duration: 1500 * time.Millisecond,
		Trace:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := DetectContention(res.Backend, res.Index, res.Session,
		"db_bench", "rocksdb:low", int64(100*time.Millisecond), 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Skip("no contention windows matched in this run (timing-dependent)")
	}
	f := findings[0]
	if f.Rule != "background-io-contention" || len(f.Evidence) == 0 {
		t.Fatalf("finding = %+v", f)
	}
}

func TestDetectContentionNoSignal(t *testing.T) {
	// A single-threaded quiet trace yields no contention findings.
	k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	k.MkdirAll("/d")
	backend := store.New()
	tracer, _ := core.NewTracer(core.Config{
		SessionName: "quiet", Index: "events", Backend: backend,
		Filter:        ebpf.Filter{},
		FlushInterval: time.Millisecond,
	})
	tracer.Start(k)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(kernel.AtFDCWD, "/d/x", kernel.OWronly|kernel.OCreat, 0o644)
	for i := 0; i < 50; i++ {
		task.Write(fd, []byte("x"))
	}
	task.Close(fd)
	tracer.Stop()

	findings, err := DetectContention(backend, "events", "quiet",
		"app", "rocksdb:low", 1000, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("false positive: %+v", findings)
	}
}
