package diagnose

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/apps/fluentbit"
	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/ebpf"
	"github.com/dsrhaslab/dio-go/internal/experiments"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// traceFluentBit traces one Fluent Bit scenario and returns the backend.
func traceFluentBit(t *testing.T, version fluentbit.Version, session string) *store.Store {
	t.Helper()
	k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	backend := store.New()
	tracer, err := core.NewTracer(core.Config{
		SessionName:   session,
		Index:         "events",
		Backend:       backend,
		AutoCorrelate: true,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Start(k); err != nil {
		t.Fatal(err)
	}
	if _, err := fluentbit.RunScenario(k, "/var/log", version); err != nil {
		t.Fatal(err)
	}
	if _, err := tracer.Stop(); err != nil {
		t.Fatal(err)
	}
	return backend
}

// diagnoseSession runs the default engine over one session.
func diagnoseSession(t *testing.T, b store.Backend, session string) Report {
	t.Helper()
	rep, err := NewEngine(DefaultRegistry()).Run(context.Background(), b, "events", session)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// byRule groups a report's findings by rule name.
func byRule(rep Report) map[string][]Finding {
	out := make(map[string][]Finding)
	for _, f := range rep.Findings {
		out[f.Rule] = append(out[f.Rule], f)
	}
	return out
}

func TestEngineFlagsStaleOffsetReadOnBuggyFluentBit(t *testing.T) {
	b := traceFluentBit(t, fluentbit.VersionBuggy, "buggy")
	stale := byRule(diagnoseSession(t, b, "buggy"))["stale-offset-read"]
	if len(stale) != 1 {
		t.Fatalf("stale-offset findings = %+v, want exactly 1", stale)
	}
	f := stale[0]
	if f.Severity != SeverityCritical || f.Detector != "stale-offset-read" {
		t.Fatalf("finding = %+v", f)
	}
	if !strings.Contains(f.Summary, "offset 26") {
		t.Fatalf("summary = %q", f.Summary)
	}
	if f.FilePath != "/var/log/app.log" {
		t.Fatalf("file = %q", f.FilePath)
	}
}

func TestNoStaleOffsetOnFixedFluentBit(t *testing.T) {
	b := traceFluentBit(t, fluentbit.VersionFixed, "fixed")
	if stale := byRule(diagnoseSession(t, b, "fixed"))["stale-offset-read"]; len(stale) != 0 {
		t.Fatalf("false positive on fixed version: %+v", stale)
	}
}

func TestEngineRunSeparatesVersions(t *testing.T) {
	bBuggy := traceFluentBit(t, fluentbit.VersionBuggy, "buggy")
	repBuggy := diagnoseSession(t, bBuggy, "buggy")
	if !repBuggy.Critical() {
		t.Fatalf("buggy session not critical: %s", repBuggy)
	}

	bFixed := traceFluentBit(t, fluentbit.VersionFixed, "fixed")
	repFixed := diagnoseSession(t, bFixed, "fixed")
	if repFixed.Critical() {
		t.Fatalf("fixed session flagged critical: %s", repFixed)
	}
	if repBuggy.HealthScore >= repFixed.HealthScore {
		t.Fatalf("health did not flip: buggy=%d fixed=%d",
			repBuggy.HealthScore, repFixed.HealthScore)
	}
	out := repBuggy.String()
	if !strings.Contains(out, "stale-offset-read") {
		t.Fatalf("report rendering: %q", out)
	}
	// Every registered detector must be attributed in the report.
	if len(repBuggy.Detectors) != len(DefaultRegistry().Detectors()) {
		t.Fatalf("detectors ran = %v", repBuggy.Detectors)
	}
}

func TestEngineFlagsCostlyPatterns(t *testing.T) {
	k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	k.MkdirAll("/d")
	backend := store.New()
	tracer, _ := core.NewTracer(core.Config{
		SessionName: "patterns", Index: "events", Backend: backend,
		AutoCorrelate: true, FlushInterval: time.Millisecond,
	})
	tracer.Start(k)

	task := k.NewProcess("app").NewTask("app")
	// Random, small I/O on one file.
	fd, _ := task.Openat(kernel.AtFDCWD, "/d/bad", kernel.ORdwr|kernel.OCreat, 0o644)
	task.Write(fd, make([]byte, 64<<10))
	buf := make([]byte, 100)
	for i := 20; i > 0; i-- {
		task.Pread64(fd, buf, int64(i*3000))
	}
	task.Close(fd)
	// Large sequential I/O on another.
	fd2, _ := task.Openat(kernel.AtFDCWD, "/d/good", kernel.OWronly|kernel.OCreat, 0o644)
	big := make([]byte, 16<<10)
	for i := 0; i < 10; i++ {
		task.Write(fd2, big)
	}
	task.Close(fd2)
	tracer.Stop()

	rules := byRule(diagnoseSession(t, backend, "patterns"))
	if got := rules["small-io"]; len(got) != 1 || got[0].FilePath != "/d/bad" {
		t.Fatalf("small-io findings = %+v", got)
	}
	if got := rules["random-io"]; len(got) != 1 || got[0].FilePath != "/d/bad" {
		t.Fatalf("random-io findings = %+v", got)
	}
}

func TestEngineFlagsFailingSyscalls(t *testing.T) {
	k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	backend := store.New()
	tracer, _ := core.NewTracer(core.Config{
		SessionName: "errs", Index: "events", Backend: backend,
		FlushInterval: time.Millisecond,
	})
	tracer.Start(k)
	task := k.NewProcess("app").NewTask("app")
	task.Stat("/missing1")
	task.Stat("/missing2")
	task.Unlink("/missing3")
	tracer.Stop()

	findings := byRule(diagnoseSession(t, backend, "errs"))["failing-syscalls"]
	if len(findings) != 1 {
		t.Fatalf("findings = %+v", findings)
	}
	if !strings.Contains(findings[0].Summary, "3 syscalls returned errors") {
		t.Fatalf("summary = %q", findings[0].Summary)
	}
}

func TestEngineFlagsContentionOnRocksDBRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second contention run")
	}
	res, err := experiments.RunRocksDB(experiments.RocksDBConfig{
		Duration: 1500 * time.Millisecond,
		Trace:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewEngine(DefaultRegistry()).Run(context.Background(), res.Backend, res.Index, res.Session)
	if err != nil {
		t.Fatal(err)
	}
	findings := byRule(rep)["background-io-contention"]
	if len(findings) == 0 {
		t.Skip("no contention windows matched in this run (timing-dependent)")
	}
	f := findings[0]
	if f.Severity != SeverityWarning || len(f.Evidence) == 0 {
		t.Fatalf("finding = %+v", f)
	}
	if rep.HealthScore == 100 {
		t.Fatalf("contended session scored perfect health: %s", rep)
	}
}

func TestEngineNoContentionSignalOnQuietTrace(t *testing.T) {
	// A single-threaded quiet trace yields no contention findings.
	k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	k.MkdirAll("/d")
	backend := store.New()
	tracer, _ := core.NewTracer(core.Config{
		SessionName: "quiet", Index: "events", Backend: backend,
		Filter:        ebpf.Filter{},
		FlushInterval: time.Millisecond,
	})
	tracer.Start(k)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(kernel.AtFDCWD, "/d/x", kernel.OWronly|kernel.OCreat, 0o644)
	for i := 0; i < 50; i++ {
		task.Write(fd, []byte("x"))
	}
	task.Close(fd)
	tracer.Stop()

	p := Params{Contention: ContentionParams{
		ClientThread: "app", WindowNS: 1000, MinBackground: 2, DropFraction: 0.5,
	}}
	rep, err := NewEngine(DefaultRegistry()).RunParams(context.Background(), backend, "events", "quiet", p)
	if err != nil {
		t.Fatal(err)
	}
	if got := byRule(rep)["background-io-contention"]; len(got) != 0 {
		t.Fatalf("false positive: %+v", got)
	}
}

func TestDeprecatedRunWrapperStillWorks(t *testing.T) {
	b := traceFluentBit(t, fluentbit.VersionBuggy, "buggy")
	rep, err := Run(b, "events", "buggy", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Critical() {
		t.Fatalf("wrapper lost the critical finding: %s", rep)
	}
}
