package diagnose

import (
	"fmt"
	"sort"
	"strings"
)

// DeltaClass classifies one change between two sessions.
type DeltaClass string

// Delta classes.
const (
	ClassRegression  DeltaClass = "regression"
	ClassImprovement DeltaClass = "improvement"
	ClassNeutral     DeltaClass = "neutral"
)

// Delta is one classified difference between session A and session B.
type Delta struct {
	// Kind is "finding", "health", or "dfg-edge".
	Kind string `json:"kind"`
	// Rule names the finding rule or DFG edge involved.
	Rule     string     `json:"rule,omitempty"`
	FilePath string     `json:"file_path,omitempty"`
	Detail   string     `json:"detail"`
	Class    DeltaClass `json:"class"`
}

// DiffResult compares two sessions' diagnosis reports and DFGs — the
// regression-testing workflow: trace a run before and after a change,
// diff, and read off whether I/O behavior got better or worse.
type DiffResult struct {
	SessionA string `json:"session_a"`
	SessionB string `json:"session_b"`
	HealthA  int    `json:"health_a"`
	HealthB  int    `json:"health_b"`
	// HealthDelta is HealthB - HealthA: positive means B is healthier.
	HealthDelta int `json:"health_delta"`
	// Class is the overall verdict, driven by the health delta.
	Class  DeltaClass `json:"class"`
	Deltas []Delta    `json:"deltas"`
}

// String renders the diff.
func (r DiffResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Diff %s → %s: %s (health %d → %d, %+d)\n",
		r.SessionA, r.SessionB, r.Class, r.HealthA, r.HealthB, r.HealthDelta)
	for _, d := range r.Deltas {
		fmt.Fprintf(&b, "  [%s] %s\n", d.Class, d.Detail)
	}
	return b.String()
}

// findingKey identifies a finding across two reports: same rule on the
// same file (or, for file-less rules, the rule alone).
func findingKey(f Finding) string { return f.Rule + "|" + f.FilePath }

// Diff compares two reports (and optionally their DFGs; nil skips the
// graph comparison) and classifies every delta. A finding present only in
// A is an improvement — B no longer exhibits it; present only in B, a
// regression; present in both with a different severity, classified by
// the direction of the change. DFG edge-count shifts are reported as
// neutral context unless a finding already covers them.
func Diff(a, b Report, dfgA, dfgB *DFG) DiffResult {
	res := DiffResult{
		SessionA:    a.Session,
		SessionB:    b.Session,
		HealthA:     a.HealthScore,
		HealthB:     b.HealthScore,
		HealthDelta: b.HealthScore - a.HealthScore,
	}
	switch {
	case res.HealthDelta > 0:
		res.Class = ClassImprovement
	case res.HealthDelta < 0:
		res.Class = ClassRegression
	default:
		res.Class = ClassNeutral
	}
	res.Deltas = append(res.Deltas, Delta{
		Kind:  "health",
		Class: res.Class,
		Detail: fmt.Sprintf("health score %d → %d (%+d)",
			res.HealthA, res.HealthB, res.HealthDelta),
	})

	inA := make(map[string]Finding)
	for _, f := range a.Findings {
		inA[findingKey(f)] = f
	}
	inB := make(map[string]Finding)
	for _, f := range b.Findings {
		inB[findingKey(f)] = f
	}
	keys := make([]string, 0, len(inA)+len(inB))
	for k := range inA {
		keys = append(keys, k)
	}
	for k := range inB {
		if _, dup := inA[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		fa, oka := inA[k]
		fb, okb := inB[k]
		switch {
		case oka && !okb:
			res.Deltas = append(res.Deltas, Delta{
				Kind: "finding", Rule: fa.Rule, FilePath: fa.FilePath,
				Class:  ClassImprovement,
				Detail: fmt.Sprintf("resolved [%s] %s: %s", fa.Severity, fa.Rule, fa.Summary),
			})
		case !oka && okb:
			res.Deltas = append(res.Deltas, Delta{
				Kind: "finding", Rule: fb.Rule, FilePath: fb.FilePath,
				Class:  ClassRegression,
				Detail: fmt.Sprintf("new [%s] %s: %s", fb.Severity, fb.Rule, fb.Summary),
			})
		case fa.Severity != fb.Severity:
			class := ClassImprovement
			if fb.Severity > fa.Severity {
				class = ClassRegression
			}
			res.Deltas = append(res.Deltas, Delta{
				Kind: "finding", Rule: fb.Rule, FilePath: fb.FilePath,
				Class:  class,
				Detail: fmt.Sprintf("%s: severity %s → %s", fb.Rule, fa.Severity, fb.Severity),
			})
		}
	}

	if dfgA != nil && dfgB != nil {
		res.Deltas = append(res.Deltas, diffDFGs(dfgA, dfgB)...)
	}
	return res
}

// diffDFGs reports large shifts in directly-follows edge frequency,
// normalized per 1000 events so sessions of different lengths compare.
// The shifts are context, not verdicts — they explain what changed in the
// syscall stream without presuming a direction is good or bad.
func diffDFGs(a, b *DFG) []Delta {
	const (
		minCount = 16  // ignore edges too rare to matter
		minRatio = 2.0 // report >=2x shifts in normalized frequency
	)
	ca, cb := a.edgeCounts(), b.edgeCounts()
	norm := func(n int64, total int64) float64 {
		if total == 0 {
			return 0
		}
		return float64(n) * 1000 / float64(total)
	}
	labels := make([]string, 0, len(ca)+len(cb))
	for l := range ca {
		labels = append(labels, l)
	}
	for l := range cb {
		if _, dup := ca[l]; !dup {
			labels = append(labels, l)
		}
	}
	sort.Strings(labels)
	var out []Delta
	for _, l := range labels {
		na, nb := ca[l], cb[l]
		if na < minCount && nb < minCount {
			continue
		}
		ra, rb := norm(na, a.Events), norm(nb, b.Events)
		lo, hi := ra, rb
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo > 0 && hi/lo < minRatio {
			continue
		}
		out = append(out, Delta{
			Kind: "dfg-edge", Rule: l, Class: ClassNeutral,
			Detail: fmt.Sprintf("follows %s: %.1f → %.1f per 1000 events (%d → %d)",
				l, ra, rb, na, nb),
		})
	}
	return out
}
