package diagnose

import (
	"context"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// tracedSession runs fn on a traced kernel and returns the backend with
// correlation applied.
func tracedSession(t *testing.T, session string, fn func(k *kernel.Kernel)) *store.Store {
	t.Helper()
	k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	if err := k.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	backend := store.New()
	tracer, err := core.NewTracer(core.Config{
		SessionName:   session,
		Index:         "events",
		Backend:       backend,
		AutoCorrelate: true,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Start(k); err != nil {
		t.Fatal(err)
	}
	fn(k)
	if _, err := tracer.Stop(); err != nil {
		t.Fatal(err)
	}
	return backend
}

func TestFileOffsetPatternSequential(t *testing.T) {
	b := tracedSession(t, "seq", func(k *kernel.Kernel) {
		task := k.NewProcess("app").NewTask("app")
		fd, _ := task.Openat(kernel.AtFDCWD, "/d/seq", kernel.ORdwr|kernel.OCreat, 0o644)
		buf := make([]byte, 8192)
		for i := 0; i < 10; i++ {
			task.Write(fd, buf)
		}
		task.Lseek(fd, 0, kernel.SeekSet)
		for i := 0; i < 10; i++ {
			task.Read(fd, buf)
		}
		task.Close(fd)
	})
	p, err := FileOffsetPattern(context.Background(), b, "events", "seq", "/d/seq")
	if err != nil {
		t.Fatal(err)
	}
	if p.Reads != 10 || p.Writes != 10 {
		t.Fatalf("counts = %d/%d", p.Reads, p.Writes)
	}
	// The rewind to offset 0 after the write stream counts as one
	// non-contiguous access; everything else must be sequential.
	if p.RandomReads > 1 || p.RandomWrites != 0 {
		t.Fatalf("random accesses in sequential stream: %+v", p)
	}
	if p.Classification() != "sequential" {
		t.Fatalf("classification = %q", p.Classification())
	}
	if p.SmallIOs != 0 {
		t.Fatalf("8KiB I/Os flagged small: %d", p.SmallIOs)
	}
	if p.BytesRead != 81920 || p.BytesWrite != 81920 {
		t.Fatalf("bytes = %d/%d", p.BytesRead, p.BytesWrite)
	}
}

func TestFileOffsetPatternRandom(t *testing.T) {
	b := tracedSession(t, "rand", func(k *kernel.Kernel) {
		task := k.NewProcess("app").NewTask("app")
		fd, _ := task.Openat(kernel.AtFDCWD, "/d/rand", kernel.ORdwr|kernel.OCreat, 0o644)
		task.Write(fd, make([]byte, 64<<10))
		buf := make([]byte, 512)
		// Strided backwards preads: never sequential after the first.
		for i := 10; i > 0; i-- {
			task.Pread64(fd, buf, int64(i*4096))
		}
		task.Close(fd)
	})
	p, err := FileOffsetPattern(context.Background(), b, "events", "rand", "/d/rand")
	if err != nil {
		t.Fatal(err)
	}
	if p.Classification() != "random" {
		t.Fatalf("classification = %q (%+v)", p.Classification(), p)
	}
	if p.SmallIOs != 10 {
		t.Fatalf("small I/Os = %d, want 10", p.SmallIOs)
	}
}

func TestFileOffsetPatternPerThreadSequentiality(t *testing.T) {
	// Two threads interleave on the same file, each writing its own region
	// sequentially via pwrite: per-thread tracking must classify this as
	// sequential even though the global offset stream jumps around.
	b := tracedSession(t, "perthread", func(k *kernel.Kernel) {
		proc := k.NewProcess("app")
		t1 := proc.NewTask("t1")
		t2 := proc.NewTask("t2")
		fd, _ := t1.Openat(kernel.AtFDCWD, "/d/two", kernel.ORdwr|kernel.OCreat, 0o644)
		buf := make([]byte, 4096)
		for i := 0; i < 5; i++ {
			t1.Pwrite64(fd, buf, int64(i*4096))       // region 0..20K
			t2.Pwrite64(fd, buf, int64(1<<20+i*4096)) // region 1M..
		}
		t1.Close(fd)
	})
	p, err := FileOffsetPattern(context.Background(), b, "events", "perthread", "/d/two")
	if err != nil {
		t.Fatal(err)
	}
	if p.RandomWrites != 0 {
		t.Fatalf("interleaved per-thread sequential streams misclassified: %+v", p)
	}
	if p.SequentialWrites != 10 {
		t.Fatalf("sequential writes = %d, want 10", p.SequentialWrites)
	}
}

func TestHotFilesRanking(t *testing.T) {
	b := tracedSession(t, "hot", func(k *kernel.Kernel) {
		task := k.NewProcess("app").NewTask("app")
		write := func(path string, n int) {
			fd, _ := task.Openat(kernel.AtFDCWD, path, kernel.OWronly|kernel.OCreat, 0o644)
			task.Write(fd, make([]byte, n))
			task.Close(fd)
		}
		write("/d/big", 1<<20)
		write("/d/mid", 64<<10)
		write("/d/tiny", 128)
	})
	files, err := HotFiles(context.Background(), b, "events", "hot", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("topN = %d", len(files))
	}
	if files[0].FilePath != "/d/big" || files[1].FilePath != "/d/mid" {
		t.Fatalf("ranking = %+v", files)
	}
	if files[0].Bytes != 1<<20 {
		t.Fatalf("big bytes = %d", files[0].Bytes)
	}
}

func TestCompareSessions(t *testing.T) {
	backend := store.New()
	run := func(session string, withSeek bool) {
		k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
		k.MkdirAll("/d")
		tracer, _ := core.NewTracer(core.Config{
			SessionName: session, Index: "events", Backend: backend,
			FlushInterval: time.Millisecond,
		})
		tracer.Start(k)
		task := k.NewProcess("app").NewTask("app")
		fd, _ := task.Openat(kernel.AtFDCWD, "/d/f", kernel.ORdwr|kernel.OCreat, 0o644)
		task.Write(fd, []byte("abc"))
		if withSeek {
			task.Lseek(fd, 100, kernel.SeekSet)
		}
		task.Read(fd, make([]byte, 8))
		task.Close(fd)
		task.Stat("/nope") // one failing syscall
		tracer.Stop()
	}
	run("a", true)
	run("b", false)

	deltas, err := CompareSessions(context.Background(), backend, "events", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]SessionDelta)
	for _, d := range deltas {
		byName[d.Syscall] = d
	}
	if d := byName["lseek"]; d.CountA != 1 || d.CountB != 0 {
		t.Fatalf("lseek delta = %+v", d)
	}
	if d := byName["stat"]; d.ErrsA != 1 || d.ErrsB != 1 {
		t.Fatalf("stat errors = %+v", d)
	}
	if d := byName["write"]; d.CountA != 1 || d.CountB != 1 {
		t.Fatalf("write delta = %+v", d)
	}
}

func TestPatternsErrorOnMissingIndex(t *testing.T) {
	st := store.New()
	ctx := context.Background()
	if _, err := FileOffsetPattern(ctx, st, "missing", "s", "/f"); err == nil {
		t.Fatal("FileOffsetPattern succeeded on missing index")
	}
	if _, err := HotFiles(ctx, st, "missing", "s", 5); err == nil {
		t.Fatal("HotFiles succeeded on missing index")
	}
	if _, err := CompareSessions(ctx, st, "missing", "a", "b"); err == nil {
		t.Fatal("CompareSessions succeeded on missing index")
	}
	if _, err := NewEngine(DefaultRegistry()).Run(ctx, st, "missing", "s"); err == nil {
		t.Fatal("Engine.Run succeeded on missing index")
	}
}
