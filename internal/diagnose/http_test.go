package diagnose_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/apps/fluentbit"
	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/diagnose"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// newDiagnosisServer traces both Fluent Bit versions into one store and
// serves it with the diagnosis endpoints installed.
func newDiagnosisServer(t *testing.T) *httptest.Server {
	t.Helper()
	backend := store.New()
	for _, v := range []struct {
		session string
		version fluentbit.Version
	}{{"buggy", fluentbit.VersionBuggy}, {"fixed", fluentbit.VersionFixed}} {
		k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
		tracer, err := core.NewTracer(core.Config{
			SessionName: v.session, Index: "events", Backend: backend,
			AutoCorrelate: true, FlushInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := tracer.Start(k); err != nil {
			t.Fatal(err)
		}
		if _, err := fluentbit.RunScenario(k, "/var/log", v.version); err != nil {
			t.Fatal(err)
		}
		if _, err := tracer.Stop(); err != nil {
			t.Fatal(err)
		}
	}
	server := store.NewServer(backend)
	diagnose.Install(server)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	return srv
}

func TestRemoteDiagnoseDFGAndDiff(t *testing.T) {
	srv := newDiagnosisServer(t)
	dc := diagnose.NewClient(store.NewClient(srv.URL))
	ctx := context.Background()

	rep, err := dc.Diagnose(ctx, "events", "buggy")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Critical() || rep.Session != "buggy" {
		t.Fatalf("remote report = %s", rep)
	}
	var stale bool
	for _, f := range rep.Findings {
		stale = stale || (f.Rule == "stale-offset-read" && f.Severity == diagnose.SeverityCritical)
	}
	if !stale {
		t.Fatalf("stale-offset finding lost over the wire: %+v", rep.Findings)
	}

	g, err := dc.DFG(ctx, "events", "buggy")
	if err != nil {
		t.Fatal(err)
	}
	if g.Events == 0 || len(g.Procs) == 0 {
		t.Fatalf("remote dfg = %+v", g)
	}

	res, err := dc.Diff(ctx, "events", "buggy", "fixed")
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != diagnose.ClassImprovement || res.HealthDelta <= 0 {
		t.Fatalf("remote diff = %s", res)
	}
}

// postRaw issues a POST and returns status and body.
func postRaw(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func TestDiagnosisRoutesServeV1AndLegacyIdentically(t *testing.T) {
	srv := newDiagnosisServer(t)
	for _, route := range []string{
		"/events/_diagnose?session=buggy",
		"/events/_dfg?session=buggy",
		"/events/_diff?a=buggy&b=fixed",
	} {
		legacyCode, legacyBody := postRaw(t, srv.URL+route, nil)
		v1Code, v1Body := postRaw(t, srv.URL+"/v1"+route, nil)
		if legacyCode != http.StatusOK || v1Code != http.StatusOK {
			t.Fatalf("%s: status legacy=%d v1=%d", route, legacyCode, v1Code)
		}
		if !bytes.Equal(legacyBody, v1Body) {
			t.Fatalf("%s: v1 and legacy bodies differ:\n%s\nvs\n%s", route, legacyBody, v1Body)
		}
	}
}

func TestDiagnosisRouteErrors(t *testing.T) {
	srv := newDiagnosisServer(t)
	if code, _ := postRaw(t, srv.URL+"/events/_diagnose", nil); code != http.StatusBadRequest {
		t.Fatalf("missing session -> %d", code)
	}
	if code, _ := postRaw(t, srv.URL+"/events/_diff?a=buggy", nil); code != http.StatusBadRequest {
		t.Fatalf("missing b -> %d", code)
	}
	if code, _ := postRaw(t, srv.URL+"/events/_diagnose?session=x", []byte("{bad")); code != http.StatusBadRequest {
		t.Fatalf("bad params body -> %d", code)
	}
	resp, err := http.Get(srv.URL + "/events/_diagnose?session=buggy")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET -> %d", resp.StatusCode)
	}

	dc := diagnose.NewClient(store.NewClient(srv.URL))
	_, err = dc.Diagnose(context.Background(), "missing", "s")
	var he *store.HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusNotFound {
		t.Fatalf("missing index error = %v", err)
	}
}

func TestDiagnoseParamsBodyIsHonored(t *testing.T) {
	srv := newDiagnosisServer(t)
	// An absurdly high churn threshold must suppress churn findings.
	code, body := postRaw(t, srv.URL+"/v1/events/_diagnose?session=buggy",
		[]byte(`{"dfg":{"churn_min_opens":1000000}}`))
	if code != http.StatusOK {
		t.Fatalf("status = %d (%s)", code, body)
	}
	if strings.Contains(string(body), "open-close-churn") {
		t.Fatalf("params body ignored, churn still reported:\n%s", body)
	}
}
