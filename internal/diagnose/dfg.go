package diagnose

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"github.com/dsrhaslab/dio-go/internal/store"
)

// DFG is a session's syscall Directly-Follows-Graph (Sankaran et al.,
// arXiv:2408.07378): per traced process, nodes are syscall kinds and a
// directed edge A→B counts how often a thread's syscall B directly
// followed its syscall A, with latency quantiles on both. Follows are
// computed per thread, so two threads interleaving in wall-clock order
// never fabricate an edge neither of them executed.
//
// The graph is built from the stored events through the sorted streaming
// cursor; because sorted search has a total order independent of shard or
// partition layout, the same session yields byte-identical marshaled
// graphs across shard counts.
type DFG struct {
	Session string `json:"session"`
	Index   string `json:"index,omitempty"`
	// Events is the number of stored events folded into the graph.
	Events int64 `json:"events"`
	// Procs holds one subgraph per traced process, sorted by PID.
	Procs []ProcessDFG `json:"processes"`
}

// ProcessDFG is one process's subgraph.
type ProcessDFG struct {
	PID   int    `json:"pid"`
	Proc  string `json:"proc_name"`
	Nodes []Node `json:"nodes"`
	Edges []Edge `json:"edges"`
}

// Node is one syscall kind with duration quantiles.
type Node struct {
	Syscall string `json:"syscall"`
	Count   int64  `json:"count"`
	// Errors counts invocations that returned a negative value.
	Errors int64 `json:"errors"`
	// P50/P95/P99 are syscall duration quantiles in nanoseconds.
	P50NS float64 `json:"p50_ns"`
	P95NS float64 `json:"p95_ns"`
	P99NS float64 `json:"p99_ns"`
}

// Edge is one observed directly-follows relation with inter-call gap
// quantiles (exit of From to enter of To, same thread).
type Edge struct {
	From  string  `json:"from"`
	To    string  `json:"to"`
	Count int64   `json:"count"`
	P50NS float64 `json:"p50_ns"`
	P95NS float64 `json:"p95_ns"`
	P99NS float64 `json:"p99_ns"`
}

// Fingerprint is the SHA-256 of the canonical JSON encoding — the value
// the determinism tests compare across shard counts.
func (d *DFG) Fingerprint() string {
	raw, err := json.Marshal(d)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// edgeCounts folds every process's edges into one session-level count per
// "from→to" label (the view Diff compares, since PIDs differ across runs).
func (d *DFG) edgeCounts() map[string]int64 {
	out := make(map[string]int64)
	for _, p := range d.Procs {
		for _, e := range p.Edges {
			out[e.From+"→"+e.To] += e.Count
		}
	}
	return out
}

// dfgHist is a fixed power-of-two-bucket histogram over non-negative
// nanosecond samples. Quantiles interpolate linearly inside the matched
// bucket; with fixed bounds and integer counts the result is a pure
// function of the sample multiset, which keeps marshaled DFGs
// deterministic across shard counts and build orders.
type dfgHist struct {
	counts [64]int64
	total  int64
}

func (h *dfgHist) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bits.Len64(uint64(ns))]++ // bucket i covers [2^(i-1), 2^i)
	h.total++
}

func (h *dfgHist) quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := q * float64(h.total)
	var seen float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			lo, hi := 0.0, 1.0
			if i > 0 {
				lo = math.Exp2(float64(i - 1))
				hi = math.Exp2(float64(i))
			}
			frac := (rank - seen) / float64(c)
			return lo + frac*(hi-lo)
		}
		seen += float64(c)
	}
	return math.Exp2(63)
}

// BuildDFG computes the session's DFG by streaming the stored events in
// total time order through pageSize-bounded cursor pages (pageSize <= 0
// selects the default). Memory is bounded by the distinct syscall kinds
// and live threads, not the session length.
func BuildDFG(ctx context.Context, b store.Backend, index, session string, pageSize int) (*DFG, error) {
	type prev struct {
		syscall string
		exitNS  int64
	}
	type nodeAgg struct {
		count, errors int64
		dur           dfgHist
	}
	type edgeKey struct{ from, to string }
	type edgeAgg struct {
		count int64
		gap   dfgHist
	}
	type procAgg struct {
		name  string
		nodes map[string]*nodeAgg
		edges map[edgeKey]*edgeAgg
		last  map[int]prev
	}
	procs := make(map[int]*procAgg)
	var events int64

	req := store.SearchRequest{
		Query: store.Term(store.FieldSession, session),
		Sort:  []store.SortField{{Field: store.FieldTimeEnter}},
	}
	err := store.EachEventPage(ctx, b, index, req, pageSize, func(page store.EventsResult) error {
		for i := range page.Hits {
			e := &page.Hits[i]
			events++
			p := procs[e.PID]
			if p == nil {
				p = &procAgg{
					nodes: make(map[string]*nodeAgg),
					edges: make(map[edgeKey]*edgeAgg),
					last:  make(map[int]prev),
				}
				procs[e.PID] = p
			}
			if p.name == "" {
				p.name = e.ProcName
			}
			n := p.nodes[e.Syscall]
			if n == nil {
				n = &nodeAgg{}
				p.nodes[e.Syscall] = n
			}
			n.count++
			if e.RetVal < 0 {
				n.errors++
			}
			n.dur.observe(e.DurationNS())
			if pr, ok := p.last[e.TID]; ok {
				k := edgeKey{pr.syscall, e.Syscall}
				ed := p.edges[k]
				if ed == nil {
					ed = &edgeAgg{}
					p.edges[k] = ed
				}
				ed.count++
				ed.gap.observe(e.TimeEnterNS - pr.exitNS)
			}
			p.last[e.TID] = prev{e.Syscall, e.TimeExitNS}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("dfg stream: %w", err)
	}

	d := &DFG{Session: session, Index: index, Events: events}
	pids := make([]int, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		p := procs[pid]
		sub := ProcessDFG{PID: pid, Proc: p.name}
		names := make([]string, 0, len(p.nodes))
		for name := range p.nodes {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			n := p.nodes[name]
			sub.Nodes = append(sub.Nodes, Node{
				Syscall: name, Count: n.count, Errors: n.errors,
				P50NS: n.dur.quantile(0.50),
				P95NS: n.dur.quantile(0.95),
				P99NS: n.dur.quantile(0.99),
			})
		}
		keys := make([]edgeKey, 0, len(p.edges))
		for k := range p.edges {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].from != keys[j].from {
				return keys[i].from < keys[j].from
			}
			return keys[i].to < keys[j].to
		})
		for _, k := range keys {
			ed := p.edges[k]
			sub.Edges = append(sub.Edges, Edge{
				From: k.from, To: k.to, Count: ed.count,
				P50NS: ed.gap.quantile(0.50),
				P95NS: ed.gap.quantile(0.95),
				P99NS: ed.gap.quantile(0.99),
			})
		}
		d.Procs = append(d.Procs, sub)
	}
	return d, nil
}
