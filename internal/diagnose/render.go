package diagnose

import (
	"fmt"
	"sort"

	"github.com/dsrhaslab/dio-go/internal/viz"
)

// This file renders the engine's outputs as viz tables. It lives here
// rather than in viz because viz sits below experiments in the package
// graph; diagnose is free to depend on both.

// ReportTable renders a diagnosis report: one row per finding, ordered as
// the engine emitted them (detector registration order).
func ReportTable(rep Report) *viz.Table {
	t := &viz.Table{
		Title: fmt.Sprintf("Diagnosis of session %q: health %d/100 over %d events",
			rep.Session, rep.HealthScore, rep.Events),
		Columns: []string{"severity", "rule", "detector", "file", "summary"},
	}
	for _, f := range rep.Findings {
		t.Rows = append(t.Rows, []string{
			f.Severity.String(), f.Rule, f.Detector, f.FilePath, f.Summary,
		})
	}
	return t
}

// DFGTable renders the heaviest edges of a session's Directly-Follows-Graph
// across all processes, capped at topN rows (0 = all).
func DFGTable(g *DFG, topN int) *viz.Table {
	t := &viz.Table{
		Title: fmt.Sprintf("Syscall DFG of session %q: %d events, %d process(es)",
			g.Session, g.Events, len(g.Procs)),
		Columns: []string{"pid", "proc", "edge", "count", "p50(ns)", "p95(ns)", "p99(ns)"},
	}
	type row struct {
		pid  int
		proc string
		e    Edge
	}
	var rows []row
	for _, p := range g.Procs {
		for _, e := range p.Edges {
			rows = append(rows, row{pid: p.PID, proc: p.Proc, e: e})
		}
	}
	// Heaviest first; ties keep the DFG's own deterministic ordering.
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].e.Count > rows[j].e.Count })
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.pid), r.proc,
			r.e.From + " -> " + r.e.To,
			fmt.Sprintf("%d", r.e.Count),
			fmt.Sprintf("%.0f", r.e.P50NS), fmt.Sprintf("%.0f", r.e.P95NS), fmt.Sprintf("%.0f", r.e.P99NS),
		})
	}
	return t
}

// DiffTable renders a session diff: the health delta followed by each
// classified change.
func DiffTable(res DiffResult) *viz.Table {
	t := &viz.Table{
		Title: fmt.Sprintf("Diff %s -> %s: health %d -> %d (%+d, %s)",
			res.SessionA, res.SessionB, res.HealthA, res.HealthB, res.HealthDelta, res.Class),
		Columns: []string{"kind", "class", "rule", "file", "detail"},
	}
	for _, d := range res.Deltas {
		t.Rows = append(t.Rows, []string{
			d.Kind, string(d.Class), d.Rule, d.FilePath, d.Detail,
		})
	}
	return t
}

// ComparisonTable renders a per-syscall session comparison as a table.
func ComparisonTable(deltas []SessionDelta, sessionA, sessionB string) *viz.Table {
	t := &viz.Table{
		Title: fmt.Sprintf("Session comparison: %s vs %s", sessionA, sessionB),
		Columns: []string{
			"syscall", sessionA, sessionB, "errors(" + sessionA + ")", "errors(" + sessionB + ")",
		},
	}
	for _, d := range deltas {
		t.Rows = append(t.Rows, []string{
			d.Syscall,
			fmt.Sprintf("%d", d.CountA), fmt.Sprintf("%d", d.CountB),
			fmt.Sprintf("%d", d.ErrsA), fmt.Sprintf("%d", d.ErrsB),
		})
	}
	return t
}
