package diagnose

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// pingPongWorkload issues alternating read/lseek calls — the positional-IO
// anti-pattern — plus an open/close churn loop with no data I/O.
func pingPongWorkload(k *kernel.Kernel) {
	task := k.NewProcess("pingpong").NewTask("pingpong")
	fd, _ := task.Openat(kernel.AtFDCWD, "/d/data", kernel.ORdwr|kernel.OCreat, 0o644)
	task.Write(fd, make([]byte, 64<<10))
	task.Lseek(fd, 0, kernel.SeekSet)
	buf := make([]byte, 4096)
	for i := 0; i < 12; i++ {
		task.Read(fd, buf)
		task.Lseek(fd, int64(i*4096), kernel.SeekSet)
	}
	task.Close(fd)

	churn := k.NewProcess("churner").NewTask("churner")
	for i := 0; i < 10; i++ {
		cfd, _ := churn.Openat(kernel.AtFDCWD, "/d/meta", kernel.ORdonly|kernel.OCreat, 0o644)
		churn.Close(cfd)
	}
}

// traceWorkload traces fn into a backend with the given shard count.
func traceWorkload(t *testing.T, shards int, session string, fn func(k *kernel.Kernel)) *store.Store {
	t.Helper()
	k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	if err := k.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	backend := store.New(store.WithShards(shards))
	tracer, err := core.NewTracer(core.Config{
		SessionName: session, Index: "events", Backend: backend,
		AutoCorrelate: true, FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Start(k); err != nil {
		t.Fatal(err)
	}
	fn(k)
	if _, err := tracer.Stop(); err != nil {
		t.Fatal(err)
	}
	return backend
}

func TestDFGDeterministicAcrossShardCounts(t *testing.T) {
	type build struct {
		shards int
		raw    []byte
		fp     string
	}
	var builds []build
	for _, shards := range []int{1, 4, 16} {
		b := traceWorkload(t, shards, "det", pingPongWorkload)
		g, err := BuildDFG(context.Background(), b, "events", "det", 7 /* force paging */)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(g)
		if err != nil {
			t.Fatal(err)
		}
		builds = append(builds, build{shards: shards, raw: raw, fp: g.Fingerprint()})
	}
	for _, b := range builds[1:] {
		if string(b.raw) != string(builds[0].raw) {
			t.Fatalf("DFG differs between %d and %d shards:\n%s\nvs\n%s",
				builds[0].shards, b.shards, builds[0].raw, b.raw)
		}
		if b.fp != builds[0].fp {
			t.Fatalf("fingerprint differs: %s vs %s", builds[0].fp, b.fp)
		}
	}
}

func TestDFGStructure(t *testing.T) {
	b := traceWorkload(t, 4, "struct", pingPongWorkload)
	g, err := BuildDFG(context.Background(), b, "events", "struct", 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Session != "struct" || g.Events == 0 {
		t.Fatalf("header = %+v", g)
	}
	if len(g.Procs) != 2 {
		t.Fatalf("processes = %d, want 2 (pingpong + churner)", len(g.Procs))
	}
	// Procs sorted by PID; find the ping-pong process by name.
	var pp *ProcessDFG
	for i := range g.Procs {
		if g.Procs[i].Proc == "pingpong" {
			pp = &g.Procs[i]
		}
		if g.Procs[i].PID <= 0 {
			t.Fatalf("bad pid in %+v", g.Procs[i])
		}
	}
	if pp == nil {
		t.Fatalf("no pingpong process: %+v", g.Procs)
	}
	edges := make(map[string]int64)
	for _, e := range pp.Edges {
		edges[e.From+"->"+e.To] = e.Count
	}
	if edges["read->lseek"] < 11 || edges["lseek->read"] < 11 {
		t.Fatalf("ping-pong edges missing: %v", edges)
	}
	nodes := make(map[string]Node)
	for _, n := range pp.Nodes {
		nodes[n.Syscall] = n
	}
	if nodes["read"].Count != 12 {
		t.Fatalf("read node = %+v", nodes["read"])
	}
}

func TestDFGDetectorFlagsAntiPatterns(t *testing.T) {
	b := traceWorkload(t, 4, "anti", pingPongWorkload)
	rep := diagnoseSession(t, b, "anti")
	rules := byRule(rep)
	if got := rules["read-lseek-ping-pong"]; len(got) != 1 {
		t.Fatalf("ping-pong findings = %+v (report %s)", got, rep)
	}
	churn := rules["open-close-churn"]
	found := false
	for _, f := range churn {
		if f.Detector != "dfg-antipatterns" {
			t.Fatalf("churn finding from wrong detector: %+v", f)
		}
		found = found || strings.Contains(f.Summary, "churner")
	}
	if !found {
		t.Fatalf("churner process not flagged: %+v", churn)
	}
}

// pagingBackend records the Size of every search to prove the DFG builder
// and detectors stream pages instead of materializing whole sessions.
type pagingBackend struct {
	*store.Store
	sizes []int
}

func (p *pagingBackend) Search(ctx context.Context, index string, req store.SearchRequest) (store.SearchResponse, error) {
	p.sizes = append(p.sizes, req.Size)
	return p.Store.Search(ctx, index, req)
}

func TestEngineStreamsThroughCursors(t *testing.T) {
	b := traceWorkload(t, 4, "page", pingPongWorkload)
	pb := &pagingBackend{Store: b}
	rep, err := NewEngine(DefaultRegistry()).RunParams(
		context.Background(), pb, "events", "page", Params{PageSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events == 0 {
		t.Fatal("no events diagnosed")
	}
	if len(pb.sizes) == 0 {
		t.Fatal("engine bypassed the backend Search path")
	}
	for _, size := range pb.sizes {
		if size < 0 {
			t.Fatalf("engine issued an unbounded (Size=-1) search: %v", pb.sizes)
		}
		if size > 16 {
			t.Fatalf("engine exceeded its page size: %v", pb.sizes)
		}
	}
}
