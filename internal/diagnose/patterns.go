package diagnose

// The custom analyses that used to live in internal/analysis (the paper's
// flexibility claim, §IV), folded into the engine package: context-first,
// and reading events through the streaming cursor instead of materializing
// a whole session per query.

import (
	"context"
	"fmt"
	"sort"

	"github.com/dsrhaslab/dio-go/internal/store"
)

// OffsetPattern summarizes the file-offset access pattern of one file in
// one session — the paper's f_offset enrichment makes this possible even
// for read/write, which carry no offset argument.
type OffsetPattern struct {
	FilePath string
	// Reads/Writes counts and total bytes (successful data syscalls only).
	Reads      int
	Writes     int
	BytesRead  int64
	BytesWrite int64
	// Sequential accesses start exactly where the previous access by the
	// same thread on the same file ended.
	SequentialReads  int
	SequentialWrites int
	RandomReads      int
	RandomWrites     int
	// SmallIOs counts data syscalls moving fewer than SmallIOThreshold
	// bytes (the paper's "small-sized I/O requests" inefficiency).
	SmallIOs int
}

// SmallIOThreshold classifies an I/O as small (bytes).
const SmallIOThreshold = 4096

// SequentialFraction returns the share of data accesses that were
// sequential.
func (p OffsetPattern) SequentialFraction() float64 {
	total := p.SequentialReads + p.SequentialWrites + p.RandomReads + p.RandomWrites
	if total == 0 {
		return 0
	}
	return float64(p.SequentialReads+p.SequentialWrites) / float64(total)
}

// Classification labels the dominant pattern.
func (p OffsetPattern) Classification() string {
	switch f := p.SequentialFraction(); {
	case p.Reads+p.Writes == 0:
		return "no data I/O"
	case f >= 0.9:
		return "sequential"
	case f <= 0.5:
		return "random"
	default:
		return "mixed"
	}
}

var dataSyscalls = []any{"read", "pread64", "readv", "write", "pwrite64", "writev"}

// FileOffsetPattern analyzes the offset pattern of filePath within a
// session. Events must have been path-correlated first (file_path set).
func FileOffsetPattern(ctx context.Context, b store.Backend, index, session, filePath string) (OffsetPattern, error) {
	return fileOffsetPattern(ctx, b, index, session, filePath, 0)
}

func fileOffsetPattern(ctx context.Context, b store.Backend, index, session, filePath string, pageSize int) (OffsetPattern, error) {
	p := OffsetPattern{FilePath: filePath}
	// Track the expected next offset per thread, as concurrent streams can
	// interleave while each remains sequential.
	nextByTID := make(map[int]int64)
	req := store.SearchRequest{
		Query: store.Must(
			store.Term(store.FieldSession, session),
			store.Term(store.FieldFilePath, filePath),
			store.Terms(store.FieldSyscall, dataSyscalls...),
		),
		Sort: []store.SortField{{Field: store.FieldTimeEnter}},
	}
	err := store.EachEventPage(ctx, b, index, req, pageSize, func(page store.EventsResult) error {
		for i := range page.Hits {
			e := &page.Hits[i]
			if e.RetVal < 0 || !e.HasOffset {
				continue
			}
			isRead := e.Syscall == "read" || e.Syscall == "pread64" || e.Syscall == "readv"
			moved := e.RetVal
			if !isRead {
				moved = int64(e.Count)
			}
			if moved < SmallIOThreshold {
				p.SmallIOs++
			}
			expected, seen := nextByTID[e.TID]
			sequential := !seen || e.Offset == expected
			nextByTID[e.TID] = e.Offset + moved
			switch {
			case isRead && sequential:
				p.SequentialReads++
			case isRead:
				p.RandomReads++
			case sequential:
				p.SequentialWrites++
			default:
				p.RandomWrites++
			}
			if isRead {
				p.Reads++
				p.BytesRead += e.RetVal
			} else {
				p.Writes++
				p.BytesWrite += moved
			}
		}
		return nil
	})
	if err != nil {
		return OffsetPattern{}, fmt.Errorf("offset pattern query: %w", err)
	}
	return p, nil
}

// FileLoad summarizes the I/O volume attracted by one file.
type FileLoad struct {
	FilePath string
	Events   int
	Bytes    int64
}

// HotFiles ranks the session's files by data volume — the skew view that
// turns "the disk is busy" into "these files are busy".
func HotFiles(ctx context.Context, b store.Backend, index, session string, topN int) ([]FileLoad, error) {
	return hotFiles(ctx, b, index, session, topN, 0)
}

func hotFiles(ctx context.Context, b store.Backend, index, session string, topN, pageSize int) ([]FileLoad, error) {
	agg := make(map[string]*FileLoad)
	req := store.SearchRequest{
		Query: store.Must(
			store.Term(store.FieldSession, session),
			store.Exists(store.FieldFilePath),
			store.Terms(store.FieldSyscall, dataSyscalls...),
		),
		Sort: []store.SortField{{Field: store.FieldTimeEnter}},
	}
	err := store.EachEventPage(ctx, b, index, req, pageSize, func(page store.EventsResult) error {
		for i := range page.Hits {
			e := &page.Hits[i]
			if e.RetVal < 0 {
				continue
			}
			fl, ok := agg[e.FilePath]
			if !ok {
				fl = &FileLoad{FilePath: e.FilePath}
				agg[e.FilePath] = fl
			}
			fl.Events++
			moved := e.RetVal
			if e.Syscall == "write" || e.Syscall == "pwrite64" || e.Syscall == "writev" {
				moved = int64(e.Count)
			}
			fl.Bytes += moved
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("hot files query: %w", err)
	}
	out := make([]FileLoad, 0, len(agg))
	for _, fl := range agg {
		out = append(out, *fl)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].FilePath < out[j].FilePath
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out, nil
}

// SessionDelta is one row of a session comparison.
type SessionDelta struct {
	Syscall string
	CountA  int
	CountB  int
	ErrsA   int
	ErrsB   int
}

// CompareSessions contrasts two tracing executions stored in the same
// backend — the post-mortem analysis workflow of §II (the paper compares
// Fluent Bit v1.4.0 against v2.0.5 this way).
func CompareSessions(ctx context.Context, b store.Backend, index, sessionA, sessionB string) ([]SessionDelta, error) {
	lt := 0.0
	counts := func(session string) (map[string]int, map[string]int, error) {
		resp, err := b.Search(ctx, index, store.SearchRequest{
			Query: store.Term(store.FieldSession, session),
			Size:  1,
			Aggs: map[string]store.Agg{
				"all": {Terms: &store.TermsAgg{Field: store.FieldSyscall}},
			},
		})
		if err != nil {
			return nil, nil, err
		}
		all := make(map[string]int)
		for _, bkt := range resp.Aggs["all"].Buckets {
			all[bkt.Key] = bkt.Count
		}
		respErr, err := b.Search(ctx, index, store.SearchRequest{
			Query: store.Must(
				store.Term(store.FieldSession, session),
				store.Query{Range: &store.RangeQuery{Field: store.FieldRetVal, LT: &lt}},
			),
			Size: 1,
			Aggs: map[string]store.Agg{"errs": {Terms: &store.TermsAgg{Field: store.FieldSyscall}}},
		})
		if err != nil {
			return nil, nil, err
		}
		errs := make(map[string]int)
		for _, bkt := range respErr.Aggs["errs"].Buckets {
			errs[bkt.Key] = bkt.Count
		}
		return all, errs, nil
	}
	allA, errsA, err := counts(sessionA)
	if err != nil {
		return nil, fmt.Errorf("session %s: %w", sessionA, err)
	}
	allB, errsB, err := counts(sessionB)
	if err != nil {
		return nil, fmt.Errorf("session %s: %w", sessionB, err)
	}
	names := make(map[string]bool)
	for n := range allA {
		names[n] = true
	}
	for n := range allB {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	out := make([]SessionDelta, 0, len(sorted))
	for _, n := range sorted {
		out = append(out, SessionDelta{
			Syscall: n,
			CountA:  allA[n], CountB: allB[n],
			ErrsA: errsA[n], ErrsB: errsB[n],
		})
	}
	return out, nil
}
