package kernel

import (
	"sync"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
)

// DiskConfig parametrizes the shared-bandwidth disk model.
type DiskConfig struct {
	// BytesPerSecond is the device bandwidth shared by all threads.
	BytesPerSecond int64
	// PerOpLatency is the fixed cost of each request (seek/command overhead).
	PerOpLatency time.Duration
	// MaxQueue bounds the device queue; zero means unbounded.
	MaxQueue int
	// PageCacheBytes enables an LRU page cache of this capacity in front of
	// the device: warm reads skip the disk entirely. Zero disables caching
	// (the default, and what the paper's experiments assume).
	PageCacheBytes int64
}

// DefaultDiskConfig returns a disk fast enough that microbenchmarks finish
// quickly while still exhibiting queueing contention when many threads issue
// large transfers (the RocksDB experiment's mechanism).
func DefaultDiskConfig() DiskConfig {
	return DiskConfig{
		BytesPerSecond: 400 << 20, // 400 MiB/s, NVMe-ish but scaled down
		PerOpLatency:   20 * time.Microsecond,
	}
}

// Disk is a single-queue storage device: requests are serviced FIFO, so the
// time a request waits grows with the amount of outstanding I/O. This is the
// mechanism behind the tail-latency spikes of §III-C — when several
// compaction threads stream large transfers, foreground requests queue
// behind them.
type Disk struct {
	mu        sync.Mutex
	cfg       DiskConfig
	clk       clock.Clock
	busyUntil int64 // ns timestamp at which the device becomes idle

	// Statistics (protected by mu).
	ops         uint64
	bytes       uint64
	busyNS      int64
	maxWaitNS   int64
	totWaitNS   int64
	inFlight    int
	maxInFlight int
}

// NewDisk creates a disk using the given clock. A zero config selects the
// full default model; a config with only PerOpLatency left zero keeps it at
// zero (an idealized device with no fixed per-request cost).
func NewDisk(cfg DiskConfig, clk clock.Clock) *Disk {
	if cfg == (DiskConfig{}) {
		cfg = DefaultDiskConfig()
	}
	if cfg.BytesPerSecond <= 0 {
		cfg.BytesPerSecond = DefaultDiskConfig().BytesPerSecond
	}
	return &Disk{cfg: cfg, clk: clk}
}

// Submit issues a request of n bytes and blocks until it completes,
// returning the total time the request spent queued plus in service.
func (d *Disk) Submit(n int) time.Duration {
	if n < 0 {
		n = 0
	}
	d.mu.Lock()
	now := d.clk.NowNS()
	start := d.busyUntil
	if now > start {
		start = now
	}
	service := d.cfg.PerOpLatency.Nanoseconds() +
		int64(float64(n)/float64(d.cfg.BytesPerSecond)*float64(time.Second))
	end := start + service
	d.busyUntil = end
	wait := end - now
	d.ops++
	d.bytes += uint64(n)
	d.busyNS += service
	d.totWaitNS += wait
	if wait > d.maxWaitNS {
		d.maxWaitNS = wait
	}
	d.inFlight++
	if d.inFlight > d.maxInFlight {
		d.maxInFlight = d.inFlight
	}
	d.mu.Unlock()

	d.clk.Sleep(time.Duration(wait))

	d.mu.Lock()
	d.inFlight--
	d.mu.Unlock()
	return time.Duration(wait)
}

// DiskStats is a snapshot of device counters.
type DiskStats struct {
	Ops           uint64
	Bytes         uint64
	BusyNS        int64
	TotalWaitNS   int64
	MaxWaitNS     int64
	MaxConcurrent int
}

// Stats returns a snapshot of the device counters.
func (d *Disk) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DiskStats{
		Ops:           d.ops,
		Bytes:         d.bytes,
		BusyNS:        d.busyNS,
		TotalWaitNS:   d.totWaitNS,
		MaxWaitNS:     d.maxWaitNS,
		MaxConcurrent: d.maxInFlight,
	}
}
