package kernel

import (
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
)

// FuzzPaths drives the VFS with arbitrary path strings: no input may
// panic, and successful creations must be observable via stat.
func FuzzPaths(f *testing.F) {
	f.Add("/a/b/c")
	f.Add("")
	f.Add("////")
	f.Add("/..")
	f.Add("/a/../b")
	f.Add("relative/path")
	f.Add("/with\x00nul")
	f.Add("/" + string(make([]byte, 300)))
	f.Fuzz(func(t *testing.T, path string) {
		k := New(Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
		task := k.NewProcess("fuzz").NewTask("fuzz")

		fd, err := task.Open(path, OWronly|OCreat, 0o644)
		if err == nil {
			if _, serr := task.Stat(path); serr != nil {
				t.Fatalf("created %q but stat failed: %v", path, serr)
			}
			if _, werr := task.Write(fd, []byte("x")); werr != nil {
				t.Fatalf("write to created %q: %v", path, werr)
			}
			if cerr := task.Close(fd); cerr != nil {
				t.Fatalf("close %q: %v", path, cerr)
			}
			if uerr := task.Unlink(path); uerr != nil {
				t.Fatalf("unlink created %q: %v", path, uerr)
			}
		}
		// These must never panic regardless of input.
		task.Stat(path)
		task.Mkdir(path, 0o755)
		task.Rmdir(path)
		task.Rename(path, "/renamed")
		task.Getxattr(path, "user.x")
	})
}

// FuzzFileTagOffsets drives pread/pwrite with arbitrary offsets and sizes.
func FuzzFileTagOffsets(f *testing.F) {
	f.Add(int64(0), 10)
	f.Add(int64(-1), 1)
	f.Add(int64(1<<40), 5)
	f.Fuzz(func(t *testing.T, off int64, size int) {
		if size < 0 || size > 1<<16 {
			return
		}
		k := New(Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
		task := k.NewProcess("fuzz").NewTask("fuzz")
		fd, err := task.Open("/f", ORdwr|OCreat, 0o644)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		buf := make([]byte, size)
		if off >= 0 && off < 1<<30 {
			if _, werr := task.Pwrite64(fd, buf, off); werr != nil {
				t.Fatalf("pwrite(off=%d,size=%d): %v", off, size, werr)
			}
			st, _ := task.Fstat(fd)
			if st.Size < off {
				t.Fatalf("size %d < write offset %d", st.Size, off)
			}
		}
		task.Pread64(fd, buf, off)
		task.Lseek(fd, off, SeekSet)
		task.Close(fd)
	})
}
