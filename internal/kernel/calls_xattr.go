package kernel

import "sort"

// Getxattr reads the extended attribute name of the file at path.
func (t *Task) Getxattr(path, name string) ([]byte, error) {
	enter := t.begin(SysGetxattr, SyscallArgs{Path: path, AttrName: name})
	val, aux, err := t.getxattrPath(path, name, true)
	t.finish(enter, Ret(int64(len(val)), err), aux)
	return val, err
}

// Lgetxattr is Getxattr without following a final symlink.
func (t *Task) Lgetxattr(path, name string) ([]byte, error) {
	enter := t.begin(SysLgetxattr, SyscallArgs{Path: path, AttrName: name})
	val, aux, err := t.getxattrPath(path, name, false)
	t.finish(enter, Ret(int64(len(val)), err), aux)
	return val, err
}

// Fgetxattr reads the extended attribute name of the file behind fd.
func (t *Task) Fgetxattr(fd int, name string) ([]byte, error) {
	enter := t.begin(SysFgetxattr, SyscallArgs{FD: fd, AttrName: name})
	val, aux, err := t.withFD(fd, func(nd *inode) ([]byte, error) {
		return getxattr(nd, name)
	})
	t.finish(enter, Ret(int64(len(val)), err), aux)
	return val, err
}

// Setxattr sets the extended attribute name of the file at path.
func (t *Task) Setxattr(path, name string, value []byte) error {
	enter := t.begin(SysSetxattr, SyscallArgs{Path: path, AttrName: name, Count: len(value)})
	_, aux, err := t.xattrPath(path, true, func(nd *inode) ([]byte, error) {
		setxattr(nd, name, value)
		return nil, nil
	})
	t.finish(enter, Ret(0, err), aux)
	return err
}

// Lsetxattr is Setxattr without following a final symlink.
func (t *Task) Lsetxattr(path, name string, value []byte) error {
	enter := t.begin(SysLsetxattr, SyscallArgs{Path: path, AttrName: name, Count: len(value)})
	_, aux, err := t.xattrPath(path, false, func(nd *inode) ([]byte, error) {
		setxattr(nd, name, value)
		return nil, nil
	})
	t.finish(enter, Ret(0, err), aux)
	return err
}

// Fsetxattr sets the extended attribute name of the file behind fd.
func (t *Task) Fsetxattr(fd int, name string, value []byte) error {
	enter := t.begin(SysFsetxattr, SyscallArgs{FD: fd, AttrName: name, Count: len(value)})
	_, aux, err := t.withFD(fd, func(nd *inode) ([]byte, error) {
		setxattr(nd, name, value)
		return nil, nil
	})
	t.finish(enter, Ret(0, err), aux)
	return err
}

// Listxattr lists attribute names of the file at path.
func (t *Task) Listxattr(path string) ([]string, error) {
	enter := t.begin(SysListxattr, SyscallArgs{Path: path})
	names, aux, err := t.listxattrPath(path, true)
	t.finish(enter, Ret(int64(len(names)), err), aux)
	return names, err
}

// Llistxattr is Listxattr without following a final symlink.
func (t *Task) Llistxattr(path string) ([]string, error) {
	enter := t.begin(SysLlistxattr, SyscallArgs{Path: path})
	names, aux, err := t.listxattrPath(path, false)
	t.finish(enter, Ret(int64(len(names)), err), aux)
	return names, err
}

// Flistxattr lists attribute names of the file behind fd.
func (t *Task) Flistxattr(fd int) ([]string, error) {
	enter := t.begin(SysFlistxattr, SyscallArgs{FD: fd})
	var names []string
	_, aux, err := t.withFD(fd, func(nd *inode) ([]byte, error) {
		names = listxattr(nd)
		return nil, nil
	})
	t.finish(enter, Ret(int64(len(names)), err), aux)
	return names, err
}

// Removexattr removes the extended attribute name of the file at path.
func (t *Task) Removexattr(path, name string) error {
	enter := t.begin(SysRemovexattr, SyscallArgs{Path: path, AttrName: name})
	_, aux, err := t.xattrPath(path, true, func(nd *inode) ([]byte, error) {
		return nil, removexattr(nd, name)
	})
	t.finish(enter, Ret(0, err), aux)
	return err
}

// Lremovexattr is Removexattr without following a final symlink.
func (t *Task) Lremovexattr(path, name string) error {
	enter := t.begin(SysLremovexattr, SyscallArgs{Path: path, AttrName: name})
	_, aux, err := t.xattrPath(path, false, func(nd *inode) ([]byte, error) {
		return nil, removexattr(nd, name)
	})
	t.finish(enter, Ret(0, err), aux)
	return err
}

// Fremovexattr removes the extended attribute name of the file behind fd.
func (t *Task) Fremovexattr(fd int, name string) error {
	enter := t.begin(SysFremovexattr, SyscallArgs{FD: fd, AttrName: name})
	_, aux, err := t.withFD(fd, func(nd *inode) ([]byte, error) {
		return nil, removexattr(nd, name)
	})
	t.finish(enter, Ret(0, err), aux)
	return err
}

func (t *Task) getxattrPath(path, name string, follow bool) ([]byte, Aux, error) {
	return t.xattrPath(path, follow, func(nd *inode) ([]byte, error) {
		return getxattr(nd, name)
	})
}

func (t *Task) listxattrPath(path string, follow bool) ([]string, Aux, error) {
	var names []string
	_, aux, err := t.xattrPath(path, follow, func(nd *inode) ([]byte, error) {
		names = listxattr(nd)
		return nil, nil
	})
	return names, aux, err
}

// xattrPath resolves path and applies fn to the inode under the kernel lock.
func (t *Task) xattrPath(path string, follow bool, fn func(*inode) ([]byte, error)) ([]byte, Aux, error) {
	k := t.k
	k.mu.Lock()
	defer k.mu.Unlock()
	nd, err := k.fs.namei(path, follow)
	if err != nil {
		return nil, Aux{}, err
	}
	val, err := fn(nd)
	if err != nil {
		return nil, Aux{}, err
	}
	aux := auxOf(nd)
	aux.Path = path
	return val, aux, nil
}

// withFD looks up fd and applies fn to its inode under the kernel lock.
func (t *Task) withFD(fd int, fn func(*inode) ([]byte, error)) ([]byte, Aux, error) {
	of, ok := t.proc.lookupFD(fd)
	if !ok {
		return nil, Aux{}, EBADF
	}
	k := t.k
	k.mu.Lock()
	defer k.mu.Unlock()
	val, err := fn(of.nd)
	if err != nil {
		return nil, Aux{}, err
	}
	return val, auxOf(of.nd), nil
}

func getxattr(nd *inode, name string) ([]byte, error) {
	v, ok := nd.xattrs[name]
	if !ok {
		return nil, ENODATA
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

func setxattr(nd *inode, name string, value []byte) {
	if nd.xattrs == nil {
		nd.xattrs = make(map[string][]byte)
	}
	v := make([]byte, len(value))
	copy(v, value)
	nd.xattrs[name] = v
}

func listxattr(nd *inode) []string {
	names := make([]string, 0, len(nd.xattrs))
	for n := range nd.xattrs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func removexattr(nd *inode, name string) error {
	if _, ok := nd.xattrs[name]; !ok {
		return ENODATA
	}
	delete(nd.xattrs, name)
	return nil
}
