package kernel

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/dsrhaslab/dio-go/internal/clock"
)

// Config parametrizes a simulated kernel instance.
type Config struct {
	// Clock supplies timestamps and sleeps. Defaults to a real clock with a
	// base resembling the raw kernel timestamps of the paper's figures.
	Clock clock.Clock
	// Disk configures the storage device model.
	Disk DiskConfig
}

// Kernel is one simulated machine: a filesystem, a device, a process table,
// and the tracing infrastructure. It is safe for concurrent use by any
// number of tasks.
type Kernel struct {
	mu     sync.Mutex
	clk    clock.Clock
	fs     *vfs
	disk   *Disk
	tps    *TracepointRegistry
	cache  *pageCache
	nextID int
	procs  map[int]*Process
	tasks  map[int]*Task

	syscallCount atomic.Uint64
}

// BaseTimestampNS is the default epoch for kernel clocks; chosen so traces
// look like the raw nanosecond timestamps in the paper's Fig. 2.
const BaseTimestampNS = 1_679_308_382_000_000_000

// New creates a kernel. A zero Config selects a real-time clock and the
// default disk model.
func New(cfg Config) *Kernel {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewReal(BaseTimestampNS)
	}
	k := &Kernel{
		clk:    clk,
		tps:    newTracepointRegistry(),
		nextID: 100, // first pid, strace-style low numbers kept free
		procs:  make(map[int]*Process),
		tasks:  make(map[int]*Task),
	}
	k.fs = newVFS(clk.NowNS)
	k.disk = NewDisk(cfg.Disk, clk)
	k.cache = newPageCache(cfg.Disk.PageCacheBytes)
	return k
}

// Clock returns the kernel's time source.
func (k *Kernel) Clock() clock.Clock { return k.clk }

// Disk returns the kernel's storage device.
func (k *Kernel) Disk() *Disk { return k.disk }

// Tracepoints returns the tracepoint registry that tracers attach to.
func (k *Kernel) Tracepoints() *TracepointRegistry { return k.tps }

// SyscallCount returns the total number of syscalls dispatched since boot.
func (k *Kernel) SyscallCount() uint64 { return k.syscallCount.Load() }

// NewProcess creates a process with one initial task named like the process.
func (k *Kernel) NewProcess(name string) *Process {
	k.mu.Lock()
	pid := k.nextID
	k.nextID++
	k.mu.Unlock()

	p := &Process{
		pid:    pid,
		name:   name,
		nextFD: 3, // 0-2 are stdio, never handed out for files
		maxFDs: DefaultMaxFDs,
		fds:    make(map[int]*openFile),
		kern:   k,
	}
	t := &Task{tid: pid, name: name, proc: p, k: k}
	p.tasks = append(p.tasks, t)

	k.mu.Lock()
	k.procs[pid] = p
	k.tasks[pid] = t
	k.mu.Unlock()
	return p
}

func (k *Kernel) registerTask(t *Task) {
	k.mu.Lock()
	k.tasks[t.tid] = t
	k.mu.Unlock()
}

// Processes returns a snapshot of all processes.
func (k *Kernel) Processes() []*Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Process, 0, len(k.procs))
	for _, p := range k.procs {
		out = append(out, p)
	}
	return out
}

// MkdirAll is a host-side helper (not a traced syscall) used by workload
// setup code to prepare directory trees.
func (k *Kernel) MkdirAll(path string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.fs.mkdirAll(path)
}

// ReadFileContents returns a copy of a regular file's bytes; a host-side
// helper for assertions in tests and examples.
func (k *Kernel) ReadFileContents(path string) ([]byte, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	nd, err := k.fs.namei(path, true)
	if err != nil {
		return nil, err
	}
	if nd.ftype != FileTypeRegular {
		return nil, EISDIR
	}
	out := make([]byte, len(nd.data))
	copy(out, nd.data)
	return out, nil
}

// ListDir returns the sorted entry names of a directory; a host-side
// helper (getdents is outside Table I's syscall set) used by recovery code
// and tests.
func (k *Kernel) ListDir(path string) ([]string, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	nd, err := k.fs.namei(path, true)
	if err != nil {
		return nil, err
	}
	if nd.ftype != FileTypeDirectory {
		return nil, ENOTDIR
	}
	names := make([]string, 0, len(nd.childs))
	for name := range nd.childs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// InodeReuses reports how many times the allocator handed out a recycled
// inode number; used by tests of the Fluent Bit scenario.
func (k *Kernel) InodeReuses() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.fs.it.reuses
}

// begin stamps a syscall entry, fires sys_enter hooks, and returns the Enter
// payload for the matching exit. When no hooks are attached the payload is
// still produced (it is cheap) but hook dispatch is skipped.
func (t *Task) begin(nr Syscall, args SyscallArgs) Enter {
	t.k.syscallCount.Add(1)
	ev := Enter{
		NR:       nr,
		PID:      t.proc.pid,
		TID:      t.tid,
		ProcName: t.proc.name,
		TaskName: t.name,
		TimeNS:   t.k.clk.NowNS(),
		Args:     args,
	}
	if t.k.tps.HasHooks(nr) {
		t.k.tps.fireEnter(&ev)
	}
	return ev
}

// finish stamps the syscall exit and fires sys_exit hooks.
func (t *Task) finish(enter Enter, ret int64, aux Aux) {
	if !t.k.tps.HasHooks(enter.NR) {
		return
	}
	ev := Exit{
		Enter:  enter,
		Ret:    ret,
		ExitNS: t.k.clk.NowNS(),
		Aux:    aux,
	}
	t.k.tps.fireExit(&ev)
}

// auxOf captures enrichment context from an inode. Callers must hold k.mu.
func auxOf(nd *inode) Aux {
	return Aux{
		HaveFile: true,
		Dev:      nd.dev,
		Ino:      nd.ino,
		FileType: nd.ftype,
		BirthNS:  nd.birthNS,
	}
}
