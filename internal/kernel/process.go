package kernel

import "sync"

// OpenFlags are the open(2) flags supported by the simulated kernel.
type OpenFlags int

// Open flags (Linux x86-64 values where it matters for trace readability).
const (
	ORdonly    OpenFlags = 0x0
	OWronly    OpenFlags = 0x1
	ORdwr      OpenFlags = 0x2
	OCreat     OpenFlags = 0x40
	OExcl      OpenFlags = 0x80
	OTrunc     OpenFlags = 0x200
	OAppend    OpenFlags = 0x400
	ODirectory OpenFlags = 0x10000
)

func (f OpenFlags) readable() bool { return f&0x3 == ORdonly || f&0x3 == ORdwr }
func (f OpenFlags) writable() bool { return f&0x3 == OWronly || f&0x3 == ORdwr }

// openFile is an open file description: the object an fd points at. It owns
// the file offset, which is how the tracer can report offsets for read and
// write even though those syscalls do not carry one (paper §II-B).
type openFile struct {
	nd     *inode
	path   string // path used at open time
	flags  OpenFlags
	offset int64
}

// AT_FDCWD mirrors the Linux special dirfd value accepted by *at syscalls.
const AtFDCWD = -100

// DefaultMaxFDs mirrors RLIMIT_NOFILE: a process cannot hold more than
// this many open descriptors; opens beyond it fail with EMFILE.
const DefaultMaxFDs = 1024

// Process is a traced application process. Threads of a process share its
// file-descriptor table, as on Linux.
type Process struct {
	pid  int
	name string

	mu     sync.Mutex
	nextFD int
	maxFDs int
	fds    map[int]*openFile
	tasks  []*Task
	kern   *Kernel
}

// PID returns the process identifier.
func (p *Process) PID() int { return p.pid }

// Name returns the process name (comm).
func (p *Process) Name() string { return p.name }

// Task is a kernel thread of execution: the unit that issues syscalls. The
// paper's Fig. 4 aggregates events by thread name (db_bench, rocksdb:low0,
// ...), so tasks carry their own comm, distinct from the process name.
type Task struct {
	tid  int
	name string
	proc *Process
	k    *Kernel
}

// TID returns the thread identifier.
func (t *Task) TID() int { return t.tid }

// PID returns the owning process identifier.
func (t *Task) PID() int { return t.proc.pid }

// Name returns the thread name (thread comm).
func (t *Task) Name() string { return t.name }

// ProcessName returns the owning process name.
func (t *Task) ProcessName() string { return t.proc.name }

// Process returns the owning process.
func (t *Task) Process() *Process { return t.proc }

// NewTask adds a named thread to the process and returns it.
func (p *Process) NewTask(name string) *Task {
	p.kern.mu.Lock()
	tid := p.kern.nextID
	p.kern.nextID++
	p.kern.mu.Unlock()

	t := &Task{tid: tid, name: name, proc: p, k: p.kern}
	p.mu.Lock()
	p.tasks = append(p.tasks, t)
	p.mu.Unlock()
	p.kern.registerTask(t)
	return t
}

// reservedFD marks a descriptor number claimed by an in-flight open, the
// moral equivalent of Linux's get_unused_fd before fd_install.
var reservedFD = &openFile{}

// reserveFD claims the lowest free descriptor, enforcing the per-process
// limit (EMFILE is checked before any path resolution, as on Linux). It
// returns -1 when the table is full.
func (p *Process) reserveFD() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.fds) >= p.maxFDs {
		return -1
	}
	fd := p.nextFD
	for {
		if _, used := p.fds[fd]; !used {
			break
		}
		fd++
	}
	p.fds[fd] = reservedFD
	if fd == p.nextFD {
		p.nextFD = fd + 1
	}
	return fd
}

// fillFD installs the open file description into a reserved slot.
func (p *Process) fillFD(fd int, of *openFile) {
	p.mu.Lock()
	p.fds[fd] = of
	p.mu.Unlock()
}

// releaseFD returns a reserved slot after a failed open.
func (p *Process) releaseFD(fd int) {
	p.mu.Lock()
	delete(p.fds, fd)
	if fd < p.nextFD {
		p.nextFD = fd
	}
	p.mu.Unlock()
}

// SetMaxFDs adjusts the process descriptor limit (setrlimit-style); values
// below the current open count only affect future opens.
func (p *Process) SetMaxFDs(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > 0 {
		p.maxFDs = n
	}
}

// lookupFD returns the open file description for fd. Reserved slots from
// in-flight opens are invisible.
func (p *Process) lookupFD(fd int) (*openFile, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	of, ok := p.fds[fd]
	if of == reservedFD {
		return nil, false
	}
	return of, ok
}

// removeFD deletes fd from the table and returns its description.
func (p *Process) removeFD(fd int) (*openFile, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	of, ok := p.fds[fd]
	if ok && of == reservedFD {
		return nil, false
	}
	if ok {
		delete(p.fds, fd)
		if fd < p.nextFD {
			p.nextFD = fd
		}
	}
	return of, ok
}

// OpenFDs returns the descriptors currently open in the process, for
// diagnostics and tests.
func (p *Process) OpenFDs() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, 0, len(p.fds))
	for fd := range p.fds {
		out = append(out, fd)
	}
	return out
}
