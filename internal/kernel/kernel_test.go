package kernel

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
)

func newTestKernel(t *testing.T) *Kernel {
	t.Helper()
	k := New(Config{Clock: clock.NewVirtualTicking(BaseTimestampNS, time.Microsecond)})
	for _, dir := range []string{"/tmp", "/log"} {
		if err := k.MkdirAll(dir); err != nil {
			t.Fatalf("mkdir %s: %v", dir, err)
		}
	}
	return k
}

func TestOpenWriteReadClose(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")

	fd, err := task.Openat(AtFDCWD, "/tmp/fileA", OWronly|OCreat, 0o644)
	if err != nil {
		t.Fatalf("openat: %v", err)
	}
	if fd != 3 {
		t.Fatalf("first fd = %d, want 3", fd)
	}
	n, err := task.Write(fd, []byte("hello world"))
	if err != nil || n != 11 {
		t.Fatalf("write = (%d, %v), want (11, nil)", n, err)
	}
	if err := task.Close(fd); err != nil {
		t.Fatalf("close: %v", err)
	}

	fd, err = task.Openat(AtFDCWD, "/tmp/fileA", ORdonly, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	buf := make([]byte, 32)
	n, err = task.Read(fd, buf)
	if err != nil || n != 11 {
		t.Fatalf("read = (%d, %v), want (11, nil)", n, err)
	}
	if string(buf[:n]) != "hello world" {
		t.Fatalf("read content %q", buf[:n])
	}
	// Second read is at EOF.
	n, err = task.Read(fd, buf)
	if err != nil || n != 0 {
		t.Fatalf("read at EOF = (%d, %v), want (0, nil)", n, err)
	}
	if err := task.Close(fd); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestMissingParentDirectory(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	if _, err := task.Openat(AtFDCWD, "/nosuch/dir/file", OWronly|OCreat, 0o644); err != ENOENT {
		t.Fatalf("openat = %v, want ENOENT", err)
	}
}

func TestOpenNonexistentReadOnly(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	if _, err := task.Openat(AtFDCWD, "/tmp/nope", ORdonly, 0); err != ENOENT {
		t.Fatalf("openat = %v, want ENOENT", err)
	}
}

func TestOpenExclusive(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	fd, err := task.Openat(AtFDCWD, "/tmp/x", OWronly|OCreat|OExcl, 0o644)
	if err != nil {
		t.Fatalf("first O_EXCL create: %v", err)
	}
	task.Close(fd)
	if _, err := task.Openat(AtFDCWD, "/tmp/x", OWronly|OCreat|OExcl, 0o644); err != EEXIST {
		t.Fatalf("second O_EXCL create = %v, want EEXIST", err)
	}
}

func TestOpenTruncate(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(AtFDCWD, "/tmp/t", OWronly|OCreat, 0o644)
	task.Write(fd, []byte("0123456789"))
	task.Close(fd)

	fd, _ = task.Openat(AtFDCWD, "/tmp/t", OWronly|OTrunc, 0)
	task.Close(fd)
	st, err := task.Stat("/tmp/t")
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if st.Size != 0 {
		t.Fatalf("size after O_TRUNC = %d, want 0", st.Size)
	}
}

func TestAppendFlag(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(AtFDCWD, "/tmp/log", OWronly|OCreat, 0o644)
	task.Write(fd, []byte("aaaa"))
	task.Close(fd)

	fd, _ = task.Openat(AtFDCWD, "/tmp/log", OWronly|OAppend, 0)
	task.Write(fd, []byte("bb"))
	task.Close(fd)

	data, err := k.ReadFileContents("/tmp/log")
	if err != nil {
		t.Fatalf("read contents: %v", err)
	}
	if string(data) != "aaaabb" {
		t.Fatalf("content = %q, want aaaabb", data)
	}
}

func TestPreadPwriteDoNotMoveOffset(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(AtFDCWD, "/tmp/p", ORdwr|OCreat, 0o644)
	task.Write(fd, []byte("abcdefgh"))
	task.Lseek(fd, 0, SeekSet)

	buf := make([]byte, 2)
	if n, err := task.Pread64(fd, buf, 4); n != 2 || err != nil || string(buf) != "ef" {
		t.Fatalf("pread = (%d, %v, %q)", n, err, buf)
	}
	if n, err := task.Pwrite64(fd, []byte("ZZ"), 0); n != 2 || err != nil {
		t.Fatalf("pwrite = (%d, %v)", n, err)
	}
	// Offset still at 0: a plain read sees the pwritten bytes first.
	if n, err := task.Read(fd, buf); n != 2 || err != nil || string(buf) != "ZZ" {
		t.Fatalf("read after pread/pwrite = (%d, %v, %q)", n, err, buf)
	}
}

func TestReadvWritev(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(AtFDCWD, "/tmp/v", ORdwr|OCreat, 0o644)
	n, err := task.Writev(fd, [][]byte{[]byte("abc"), []byte("de")})
	if n != 5 || err != nil {
		t.Fatalf("writev = (%d, %v)", n, err)
	}
	task.Lseek(fd, 0, SeekSet)
	b1 := make([]byte, 2)
	b2 := make([]byte, 3)
	n, err = task.Readv(fd, [][]byte{b1, b2})
	if n != 5 || err != nil {
		t.Fatalf("readv = (%d, %v)", n, err)
	}
	if string(b1) != "ab" || string(b2) != "cde" {
		t.Fatalf("readv buffers %q %q", b1, b2)
	}
}

func TestLseekWhence(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(AtFDCWD, "/tmp/s", ORdwr|OCreat, 0o644)
	task.Write(fd, []byte("0123456789"))

	if off, _ := task.Lseek(fd, 2, SeekSet); off != 2 {
		t.Fatalf("SEEK_SET = %d, want 2", off)
	}
	if off, _ := task.Lseek(fd, 3, SeekCur); off != 5 {
		t.Fatalf("SEEK_CUR = %d, want 5", off)
	}
	if off, _ := task.Lseek(fd, -1, SeekEnd); off != 9 {
		t.Fatalf("SEEK_END = %d, want 9", off)
	}
	if _, err := task.Lseek(fd, -100, SeekSet); err != EINVAL {
		t.Fatalf("negative seek err = %v, want EINVAL", err)
	}
	if _, err := task.Lseek(fd, 0, 99); err != EINVAL {
		t.Fatalf("bad whence err = %v, want EINVAL", err)
	}
}

func TestBadFD(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	if _, err := task.Read(42, make([]byte, 1)); err != EBADF {
		t.Fatalf("read bad fd = %v, want EBADF", err)
	}
	if _, err := task.Write(42, []byte("x")); err != EBADF {
		t.Fatalf("write bad fd = %v, want EBADF", err)
	}
	if err := task.Close(42); err != EBADF {
		t.Fatalf("close bad fd = %v, want EBADF", err)
	}
	if _, err := task.Fstat(42); err != EBADF {
		t.Fatalf("fstat bad fd = %v, want EBADF", err)
	}
}

func TestReadOnWriteOnlyFD(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(AtFDCWD, "/tmp/w", OWronly|OCreat, 0o644)
	if _, err := task.Read(fd, make([]byte, 1)); err != EBADF {
		t.Fatalf("read on O_WRONLY = %v, want EBADF", err)
	}
	fd2, _ := task.Openat(AtFDCWD, "/tmp/w", ORdonly, 0)
	if _, err := task.Write(fd2, []byte("x")); err != EBADF {
		t.Fatalf("write on O_RDONLY = %v, want EBADF", err)
	}
}

func TestFDReuseLowestFirst(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	fdA, _ := task.Openat(AtFDCWD, "/a", OWronly|OCreat, 0o644)
	fdB, _ := task.Openat(AtFDCWD, "/b", OWronly|OCreat, 0o644)
	if fdA != 3 || fdB != 4 {
		t.Fatalf("fds = %d,%d want 3,4", fdA, fdB)
	}
	task.Close(fdA)
	fdC, _ := task.Openat(AtFDCWD, "/c", OWronly|OCreat, 0o644)
	if fdC != 3 {
		t.Fatalf("fd after close = %d, want reused 3", fdC)
	}
}

func TestInodeReuseAfterUnlinkAndClose(t *testing.T) {
	k := newTestKernel(t)
	app := k.NewProcess("app").NewTask("app")
	reader := k.NewProcess("reader").NewTask("reader")

	fd, _ := app.Openat(AtFDCWD, "/log/app.log", OWronly|OCreat, 0o644)
	if fd < 0 {
		// parent dir missing: create it
		k.MkdirAll("/log")
		fd, _ = app.Openat(AtFDCWD, "/log/app.log", OWronly|OCreat, 0o644)
	}
	st1, _ := app.Fstat(fd)
	app.Close(fd)

	// Reader holds the file open while app unlinks it.
	rfd, err := reader.Openat(AtFDCWD, "/log/app.log", ORdonly, 0)
	if err != nil {
		t.Fatalf("reader open: %v", err)
	}
	if err := app.Unlink("/log/app.log"); err != nil {
		t.Fatalf("unlink: %v", err)
	}

	// While the reader keeps it open, the inode number must NOT be reused.
	fd2, _ := app.Openat(AtFDCWD, "/log/app.log", OWronly|OCreat, 0o644)
	st2, _ := app.Fstat(fd2)
	if st2.Ino == st1.Ino {
		t.Fatalf("inode %d reused while still open elsewhere", st1.Ino)
	}
	app.Close(fd2)
	app.Unlink("/log/app.log")

	// Now release the original inode and recreate: the number comes back.
	reader.Close(rfd)
	fd3, _ := app.Openat(AtFDCWD, "/log/app.log", OWronly|OCreat, 0o644)
	st3, _ := app.Fstat(fd3)
	if st3.Ino != st1.Ino {
		t.Fatalf("inode not reused: got %d, want %d", st3.Ino, st1.Ino)
	}
	if st3.BirthNS == st1.BirthNS {
		t.Fatalf("reused inode kept the same birth timestamp %d", st3.BirthNS)
	}
	app.Close(fd3)
	if k.InodeReuses() == 0 {
		t.Fatal("kernel recorded no inode reuses")
	}
}

func TestUnlinkedFileStillReadable(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(AtFDCWD, "/f", ORdwr|OCreat, 0o644)
	task.Write(fd, []byte("persist"))
	if err := task.Unlink("/f"); err != nil {
		t.Fatalf("unlink: %v", err)
	}
	task.Lseek(fd, 0, SeekSet)
	buf := make([]byte, 16)
	n, err := task.Read(fd, buf)
	if err != nil || string(buf[:n]) != "persist" {
		t.Fatalf("read after unlink = (%q, %v)", buf[:n], err)
	}
	if _, err := task.Stat("/f"); err != ENOENT {
		t.Fatalf("stat after unlink = %v, want ENOENT", err)
	}
}

func TestRenameReplacesTarget(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(AtFDCWD, "/a", OWronly|OCreat, 0o644)
	task.Write(fd, []byte("AAA"))
	task.Close(fd)
	fd, _ = task.Openat(AtFDCWD, "/b", OWronly|OCreat, 0o644)
	task.Write(fd, []byte("BBB"))
	task.Close(fd)

	if err := task.Rename("/a", "/b"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if _, err := task.Stat("/a"); err != ENOENT {
		t.Fatalf("stat old = %v, want ENOENT", err)
	}
	data, _ := k.ReadFileContents("/b")
	if string(data) != "AAA" {
		t.Fatalf("target content = %q, want AAA", data)
	}
}

func TestRenameMissingSource(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	if err := task.Rename("/nope", "/x"); err != ENOENT {
		t.Fatalf("rename = %v, want ENOENT", err)
	}
}

func TestTruncateAndFtruncate(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(AtFDCWD, "/t", ORdwr|OCreat, 0o644)
	task.Write(fd, []byte("0123456789"))

	if err := task.Ftruncate(fd, 4); err != nil {
		t.Fatalf("ftruncate: %v", err)
	}
	st, _ := task.Fstat(fd)
	if st.Size != 4 {
		t.Fatalf("size = %d, want 4", st.Size)
	}
	if err := task.Truncate("/t", 8); err != nil {
		t.Fatalf("truncate grow: %v", err)
	}
	data, _ := k.ReadFileContents("/t")
	if !bytes.Equal(data, []byte{'0', '1', '2', '3', 0, 0, 0, 0}) {
		t.Fatalf("grown content = %v", data)
	}
	if err := task.Ftruncate(fd, -1); err != EINVAL {
		t.Fatalf("negative ftruncate = %v, want EINVAL", err)
	}
}

func TestMkdirRmdir(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	if err := task.Mkdir("/d", 0o755); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := task.Mkdir("/d", 0o755); err != EEXIST {
		t.Fatalf("mkdir again = %v, want EEXIST", err)
	}
	st, err := task.Stat("/d")
	if err != nil || st.Mode != FileTypeDirectory {
		t.Fatalf("stat dir = (%+v, %v)", st, err)
	}
	fd, _ := task.Openat(AtFDCWD, "/d/f", OWronly|OCreat, 0o644)
	task.Close(fd)
	if err := task.Rmdir("/d"); err != ENOTEMPTY {
		t.Fatalf("rmdir non-empty = %v, want ENOTEMPTY", err)
	}
	task.Unlink("/d/f")
	if err := task.Rmdir("/d"); err != nil {
		t.Fatalf("rmdir: %v", err)
	}
	if err := task.Rmdir("/d"); err != ENOENT {
		t.Fatalf("rmdir again = %v, want ENOENT", err)
	}
}

func TestMknodTypes(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	cases := []struct {
		path string
		mode uint32
		want FileType
	}{
		{"/dev/null0", ModeCharDev, FileTypeCharDevice},
		{"/dev/blk0", ModeBlkDev, FileTypeBlockDevice},
		{"/fifo", ModeFIFO, FileTypePipe},
		{"/sock", ModeSocket, FileTypeSocket},
		{"/reg", ModeRegular, FileTypeRegular},
	}
	k.MkdirAll("/dev")
	for _, c := range cases {
		if err := task.Mknod(c.path, c.mode, 0); err != nil {
			t.Fatalf("mknod %s: %v", c.path, err)
		}
		st, err := task.Lstat(c.path)
		if err != nil || st.Mode != c.want {
			t.Fatalf("lstat %s = (%v, %v), want type %v", c.path, st.Mode, err, c.want)
		}
	}
}

func TestSymlinkFollowAndLstat(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(AtFDCWD, "/target", OWronly|OCreat, 0o644)
	task.Write(fd, []byte("data"))
	task.Close(fd)
	if err := k.Symlink("/target", "/link"); err != nil {
		t.Fatalf("symlink: %v", err)
	}
	st, err := task.Stat("/link")
	if err != nil || st.Mode != FileTypeRegular {
		t.Fatalf("stat follows symlink = (%v, %v)", st.Mode, err)
	}
	lst, err := task.Lstat("/link")
	if err != nil || lst.Mode != FileTypeSymlink {
		t.Fatalf("lstat = (%v, %v), want symlink", lst.Mode, err)
	}
	rfd, err := task.Openat(AtFDCWD, "/link", ORdonly, 0)
	if err != nil {
		t.Fatalf("open through symlink: %v", err)
	}
	buf := make([]byte, 8)
	n, _ := task.Read(rfd, buf)
	if string(buf[:n]) != "data" {
		t.Fatalf("read through symlink = %q", buf[:n])
	}
}

func TestSymlinkLoop(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	k.Symlink("/l2", "/l1")
	k.Symlink("/l1", "/l2")
	if _, err := task.Stat("/l1"); err != ELOOP {
		t.Fatalf("stat loop = %v, want ELOOP", err)
	}
}

func TestXattrRoundTrip(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(AtFDCWD, "/x", OWronly|OCreat, 0o644)

	if err := task.Setxattr("/x", "user.tag", []byte("v1")); err != nil {
		t.Fatalf("setxattr: %v", err)
	}
	if err := task.Fsetxattr(fd, "user.other", []byte("v2")); err != nil {
		t.Fatalf("fsetxattr: %v", err)
	}
	v, err := task.Getxattr("/x", "user.tag")
	if err != nil || string(v) != "v1" {
		t.Fatalf("getxattr = (%q, %v)", v, err)
	}
	v, err = task.Fgetxattr(fd, "user.other")
	if err != nil || string(v) != "v2" {
		t.Fatalf("fgetxattr = (%q, %v)", v, err)
	}
	names, err := task.Listxattr("/x")
	if err != nil || len(names) != 2 || names[0] != "user.other" || names[1] != "user.tag" {
		t.Fatalf("listxattr = (%v, %v)", names, err)
	}
	if err := task.Removexattr("/x", "user.tag"); err != nil {
		t.Fatalf("removexattr: %v", err)
	}
	if _, err := task.Getxattr("/x", "user.tag"); err != ENODATA {
		t.Fatalf("getxattr removed = %v, want ENODATA", err)
	}
	if err := task.Fremovexattr(fd, "user.nope"); err != ENODATA {
		t.Fatalf("fremovexattr missing = %v, want ENODATA", err)
	}
}

func TestXattrSymlinkVariants(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(AtFDCWD, "/t", OWronly|OCreat, 0o644)
	task.Close(fd)
	k.Symlink("/t", "/l")

	// setxattr follows the link: the attribute lands on the target.
	task.Setxattr("/l", "user.a", []byte("x"))
	if v, err := task.Getxattr("/t", "user.a"); err != nil || string(v) != "x" {
		t.Fatalf("attr did not follow symlink: (%q, %v)", v, err)
	}
	// l* variants act on the link inode itself.
	task.Lsetxattr("/l", "user.onlink", []byte("y"))
	if _, err := task.Getxattr("/t", "user.onlink"); err != ENODATA {
		t.Fatalf("lsetxattr leaked to target: %v", err)
	}
	if v, err := task.Lgetxattr("/l", "user.onlink"); err != nil || string(v) != "y" {
		t.Fatalf("lgetxattr = (%q, %v)", v, err)
	}
	names, _ := task.Llistxattr("/l")
	if len(names) != 1 || names[0] != "user.onlink" {
		t.Fatalf("llistxattr = %v", names)
	}
	if err := task.Lremovexattr("/l", "user.onlink"); err != nil {
		t.Fatalf("lremovexattr: %v", err)
	}
}

func TestFstatfs(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(AtFDCWD, "/f", OWronly|OCreat, 0o644)
	sf, err := task.Fstatfs(fd)
	if err != nil {
		t.Fatalf("fstatfs: %v", err)
	}
	if sf.BlockSize != 4096 || sf.FSTypeMagic != 0xef53 {
		t.Fatalf("fstatfs = %+v", sf)
	}
}

func TestTracepointEnterExitPairs(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")

	var enters, exits []Syscall
	var lastExit Exit
	detE := k.Tracepoints().AttachEnter(SysOpenat, func(e *Enter) { enters = append(enters, e.NR) })
	detX := k.Tracepoints().AttachExit(SysOpenat, func(e *Exit) { exits = append(exits, e.NR); lastExit = *e })
	defer detE()
	defer detX()

	fd, _ := task.Openat(AtFDCWD, "/tp", OWronly|OCreat, 0o644)
	task.Close(fd) // no hook on close

	if len(enters) != 1 || len(exits) != 1 {
		t.Fatalf("hook counts = %d/%d, want 1/1", len(enters), len(exits))
	}
	if lastExit.Ret != int64(fd) {
		t.Fatalf("exit ret = %d, want %d", lastExit.Ret, fd)
	}
	if !lastExit.Aux.HaveFile || lastExit.Aux.Path != "/tp" {
		t.Fatalf("exit aux = %+v", lastExit.Aux)
	}
	if lastExit.ExitNS < lastExit.TimeNS {
		t.Fatalf("exit ts %d < enter ts %d", lastExit.ExitNS, lastExit.TimeNS)
	}
	if lastExit.PID != task.PID() || lastExit.TID != task.TID() {
		t.Fatalf("identity mismatch: %+v", lastExit.Enter)
	}

	detE()
	detX()
	fd2, _ := task.Openat(AtFDCWD, "/tp2", OWronly|OCreat, 0o644)
	task.Close(fd2)
	if len(enters) != 1 {
		t.Fatalf("hooks fired after detach: %d", len(enters))
	}
}

func TestTracepointOffsetEnrichment(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")

	var offsets []int64
	det := k.Tracepoints().AttachExit(SysRead, func(e *Exit) {
		if e.Aux.HaveOffset {
			offsets = append(offsets, e.Aux.Offset)
		}
	})
	defer det()

	fd, _ := task.Openat(AtFDCWD, "/o", ORdwr|OCreat, 0o644)
	task.Write(fd, []byte("0123456789"))
	task.Lseek(fd, 0, SeekSet)
	buf := make([]byte, 4)
	task.Read(fd, buf) // starts at 0
	task.Read(fd, buf) // starts at 4
	task.Read(fd, buf) // starts at 8

	want := []int64{0, 4, 8}
	if len(offsets) != 3 {
		t.Fatalf("offsets = %v", offsets)
	}
	for i := range want {
		if offsets[i] != want[i] {
			t.Fatalf("offsets = %v, want %v", offsets, want)
		}
	}
}

func TestTaskIdentities(t *testing.T) {
	k := newTestKernel(t)
	p := k.NewProcess("rocksdb")
	main := p.NewTask("rocksdb:main")
	flush := p.NewTask("rocksdb:high0")
	if main.PID() != p.PID() || flush.PID() != p.PID() {
		t.Fatal("tasks do not share pid")
	}
	if main.TID() == flush.TID() {
		t.Fatal("tasks share tid")
	}
	if flush.Name() != "rocksdb:high0" || flush.ProcessName() != "rocksdb" {
		t.Fatalf("names = %q %q", flush.Name(), flush.ProcessName())
	}

	// Threads share the fd table.
	fd, _ := main.Openat(AtFDCWD, "/shared", OWronly|OCreat, 0o644)
	if _, err := flush.Write(fd, []byte("x")); err != nil {
		t.Fatalf("cross-thread write: %v", err)
	}
}

// frozenClock never advances, so consecutive Submit calls model concurrent
// arrivals and expose FIFO queueing delay.
type frozenClock struct{}

func (frozenClock) NowNS() int64        { return 0 }
func (frozenClock) Sleep(time.Duration) {}

func TestDiskFIFOQueueing(t *testing.T) {
	d := NewDisk(DiskConfig{BytesPerSecond: 1 << 20, PerOpLatency: time.Millisecond}, frozenClock{})
	// Two back-to-back 1 MiB requests: the second waits for the first.
	w1 := d.Submit(1 << 20)
	w2 := d.Submit(1 << 20)
	if w2 <= w1 {
		t.Fatalf("second request did not queue: w1=%v w2=%v", w1, w2)
	}
	st := d.Stats()
	if st.Ops != 2 || st.Bytes != 2<<20 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSyscallCountAndNames(t *testing.T) {
	if NumSyscalls != 42 {
		t.Fatalf("NumSyscalls = %d, want 42 (Table I)", NumSyscalls)
	}
	all := AllSyscalls()
	if len(all) != 42 {
		t.Fatalf("AllSyscalls len = %d", len(all))
	}
	seen := make(map[string]bool, len(all))
	for _, s := range all {
		name := s.String()
		if name == "" || name == "unknown" {
			t.Fatalf("syscall %d has no name", s)
		}
		if seen[name] {
			t.Fatalf("duplicate syscall name %q", name)
		}
		seen[name] = true
		if s.Class() == 0 {
			t.Fatalf("syscall %s has no class", name)
		}
		got, ok := SyscallByName(name)
		if !ok || got != s {
			t.Fatalf("SyscallByName(%q) = (%v, %v)", name, got, ok)
		}
	}
	if _, ok := SyscallByName("clone"); ok {
		t.Fatal("SyscallByName accepted an unsupported syscall")
	}
	if Syscall(0).Valid() || Syscall(999).Valid() {
		t.Fatal("Valid() accepted out-of-range values")
	}
}

func TestSyscallClassCounts(t *testing.T) {
	counts := make(map[Class]int)
	for _, s := range AllSyscalls() {
		counts[s.Class()]++
	}
	if counts[ClassData] != 10 {
		t.Errorf("data class = %d, want 10", counts[ClassData])
	}
	if counts[ClassMetadata] != 15 {
		t.Errorf("metadata class = %d, want 15", counts[ClassMetadata])
	}
	if counts[ClassExtendedAttr] != 12 {
		t.Errorf("xattr class = %d, want 12", counts[ClassExtendedAttr])
	}
	if counts[ClassDirectory] != 5 {
		t.Errorf("directory class = %d, want 5", counts[ClassDirectory])
	}
}

func TestKernelSyscallCounter(t *testing.T) {
	k := newTestKernel(t)
	task := k.NewProcess("app").NewTask("app")
	before := k.SyscallCount()
	fd, _ := task.Openat(AtFDCWD, "/c", OWronly|OCreat, 0o644)
	task.Write(fd, []byte("x"))
	task.Close(fd)
	if got := k.SyscallCount() - before; got != 3 {
		t.Fatalf("syscall count delta = %d, want 3", got)
	}
}

func TestFDLimitEMFILE(t *testing.T) {
	k := newTestKernel(t)
	p := k.NewProcess("limited")
	p.SetMaxFDs(4)
	task := p.NewTask("limited")
	var fds []int
	for i := 0; i < 4; i++ {
		fd, err := task.Openat(AtFDCWD, fmt.Sprintf("/tmp/l%d", i), OWronly|OCreat, 0o644)
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		fds = append(fds, fd)
	}
	if _, err := task.Openat(AtFDCWD, "/tmp/over", OWronly|OCreat, 0o644); err != EMFILE {
		t.Fatalf("open over limit = %v, want EMFILE", err)
	}
	// Closing one frees a slot.
	task.Close(fds[0])
	if _, err := task.Openat(AtFDCWD, "/tmp/over2", OWronly|OCreat, 0o644); err != nil {
		t.Fatalf("open after close: %v", err)
	}
	// EMFILE is reported before the path walk, so the failed open created
	// nothing.
	if err := task.Unlink("/tmp/over"); err != ENOENT {
		t.Fatalf("unlink of never-created file = %v, want ENOENT", err)
	}
}

func TestPageCacheWarmReadsSkipDisk(t *testing.T) {
	k := New(Config{
		Clock: clock.NewVirtualTicking(0, time.Microsecond),
		Disk: DiskConfig{
			BytesPerSecond: 1 << 20,
			PerOpLatency:   time.Millisecond,
			PageCacheBytes: 1 << 20,
		},
	})
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Open("/c", ORdwr|OCreat, 0o644)
	data := bytes.Repeat([]byte("x"), 64<<10)
	task.Write(fd, data)

	opsAfterWrite := k.Disk().Stats().Ops

	// Warm read: the write populated the cache, so no disk op.
	buf := make([]byte, 64<<10)
	task.Lseek(fd, 0, SeekSet)
	task.Read(fd, buf)
	if got := k.Disk().Stats().Ops; got != opsAfterWrite {
		t.Fatalf("warm read hit the disk: ops %d -> %d", opsAfterWrite, got)
	}
	st := k.PageCacheStats()
	if st.Hits == 0 {
		t.Fatalf("no cache hits: %+v", st)
	}
	task.Close(fd)
}

func TestPageCacheColdReadChargesDisk(t *testing.T) {
	k := New(Config{
		Clock: clock.NewVirtualTicking(0, time.Microsecond),
		Disk:  DiskConfig{BytesPerSecond: 1 << 30, PageCacheBytes: 1 << 20},
	})
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Open("/c", ORdwr|OCreat, 0o644)
	task.Write(fd, bytes.Repeat([]byte("y"), 32<<10))
	task.Close(fd)

	// A second kernel-level reader through a fresh kernel would be cold;
	// here we simulate eviction by filling the cache with another file.
	fd2, _ := task.Open("/big", ORdwr|OCreat, 0o644)
	task.Write(fd2, bytes.Repeat([]byte("z"), 2<<20)) // evicts /c's pages
	task.Close(fd2)

	before := k.Disk().Stats().Ops
	fd3, _ := task.Open("/c", ORdonly, 0)
	task.Read(fd3, make([]byte, 32<<10))
	if got := k.Disk().Stats().Ops; got == before {
		t.Fatal("cold read did not hit the disk after eviction")
	}
	task.Close(fd3)
}

func TestPageCacheDisabledByDefault(t *testing.T) {
	k := newTestKernel(t)
	if st := k.PageCacheStats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("cache active by default: %+v", st)
	}
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(AtFDCWD, "/tmp/nc", ORdwr|OCreat, 0o644)
	task.Write(fd, []byte("data"))
	before := k.Disk().Stats().Ops
	task.Lseek(fd, 0, SeekSet)
	task.Read(fd, make([]byte, 4))
	if got := k.Disk().Stats().Ops; got != before+1 {
		t.Fatalf("uncached read ops delta = %d, want 1", got-before)
	}
}

func TestPageCacheInodeReuseNoStaleHits(t *testing.T) {
	k := New(Config{
		Clock: clock.NewVirtualTicking(0, time.Microsecond),
		Disk:  DiskConfig{BytesPerSecond: 1 << 30, PageCacheBytes: 1 << 20},
	})
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Open("/r", OWronly|OCreat, 0o644)
	task.Write(fd, []byte("old"))
	task.Close(fd)
	task.Unlink("/r")

	// Recreate: same inode number, new generation. Reading it must MISS
	// (different birth timestamp in the page key), not reuse stale pages.
	fd2, _ := task.Open("/r", ORdwr|OCreat, 0o644)
	task.Write(fd2, []byte("new"))
	hitsBefore := k.PageCacheStats().Hits
	// Fresh descriptor, read through a range never accessed in this
	// generation beyond the write-populated page: the write populated it,
	// so the read hits — but only within THIS generation.
	task.Lseek(fd2, 0, SeekSet)
	task.Read(fd2, make([]byte, 3))
	if k.PageCacheStats().Hits == hitsBefore {
		t.Fatal("same-generation read did not hit")
	}
	task.Close(fd2)
	if k.InodeReuses() == 0 {
		t.Fatal("scenario did not reuse an inode")
	}
}
