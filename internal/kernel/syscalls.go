// Package kernel implements a simulated POSIX storage kernel: a VFS with
// inode allocation and reuse, per-process file-descriptor tables, processes
// and named threads, a shared-bandwidth disk model, and a syscall layer that
// fires sys_enter/sys_exit tracepoints exactly like the Linux tracing
// infrastructure that DIO's eBPF programs attach to.
//
// The package substitutes for the real Linux kernel in this reproduction:
// all application workloads (the Fluent Bit forwarder, the LSM key-value
// store, the db_bench clients) issue their I/O through this kernel, and all
// tracers (DIO, the strace-style and sysdig-style comparators) observe it
// through the tracepoint registry.
package kernel

// Syscall identifies one of the storage-related system calls supported by
// the simulated kernel. The set matches Table I of the paper: 42 syscalls
// covering data, metadata, extended-attribute, and directory management
// requests.
type Syscall int

// The 42 storage-related syscalls of Table I.
const (
	// Data syscalls.
	SysRead Syscall = iota + 1
	SysPread64
	SysReadv
	SysWrite
	SysPwrite64
	SysWritev
	SysFsync
	SysFdatasync
	SysReadahead
	SysLseek

	// Open/close and file metadata syscalls.
	SysOpen
	SysOpenat
	SysCreat
	SysClose
	SysTruncate
	SysFtruncate
	SysRename
	SysRenameat
	SysRenameat2
	SysUnlink
	SysUnlinkat
	SysStat
	SysLstat
	SysFstat
	SysFstatfs

	// Extended attribute syscalls.
	SysGetxattr
	SysLgetxattr
	SysFgetxattr
	SysSetxattr
	SysLsetxattr
	SysFsetxattr
	SysListxattr
	SysLlistxattr
	SysFlistxattr
	SysRemovexattr
	SysLremovexattr
	SysFremovexattr

	// Directory management syscalls.
	SysMknod
	SysMknodat
	SysMkdir
	SysMkdirat
	SysRmdir

	syscallSentinel // keep last
)

// NumSyscalls is the number of syscalls the kernel exposes tracepoints for.
const NumSyscalls = int(syscallSentinel) - 1

// Class groups syscalls the way Table I does.
type Class int

// Syscall classes from Table I.
const (
	ClassData Class = iota + 1
	ClassMetadata
	ClassExtendedAttr
	ClassDirectory
)

// String returns the class label used in Table I.
func (c Class) String() string {
	switch c {
	case ClassData:
		return "data"
	case ClassMetadata:
		return "metadata"
	case ClassExtendedAttr:
		return "extended attributes"
	case ClassDirectory:
		return "directory management"
	default:
		return "unknown"
	}
}

var syscallNames = [...]string{
	SysRead:         "read",
	SysPread64:      "pread64",
	SysReadv:        "readv",
	SysWrite:        "write",
	SysPwrite64:     "pwrite64",
	SysWritev:       "writev",
	SysFsync:        "fsync",
	SysFdatasync:    "fdatasync",
	SysReadahead:    "readahead",
	SysLseek:        "lseek",
	SysOpen:         "open",
	SysOpenat:       "openat",
	SysCreat:        "creat",
	SysClose:        "close",
	SysTruncate:     "truncate",
	SysFtruncate:    "ftruncate",
	SysRename:       "rename",
	SysRenameat:     "renameat",
	SysRenameat2:    "renameat2",
	SysUnlink:       "unlink",
	SysUnlinkat:     "unlinkat",
	SysStat:         "stat",
	SysLstat:        "lstat",
	SysFstat:        "fstat",
	SysFstatfs:      "fstatfs",
	SysGetxattr:     "getxattr",
	SysLgetxattr:    "lgetxattr",
	SysFgetxattr:    "fgetxattr",
	SysSetxattr:     "setxattr",
	SysLsetxattr:    "lsetxattr",
	SysFsetxattr:    "fsetxattr",
	SysListxattr:    "listxattr",
	SysLlistxattr:   "llistxattr",
	SysFlistxattr:   "flistxattr",
	SysRemovexattr:  "removexattr",
	SysLremovexattr: "lremovexattr",
	SysFremovexattr: "fremovexattr",
	SysMknod:        "mknod",
	SysMknodat:      "mknodat",
	SysMkdir:        "mkdir",
	SysMkdirat:      "mkdirat",
	SysRmdir:        "rmdir",
	syscallSentinel: "",
}

var syscallClasses = [...]Class{
	SysRead:         ClassData,
	SysPread64:      ClassData,
	SysReadv:        ClassData,
	SysWrite:        ClassData,
	SysPwrite64:     ClassData,
	SysWritev:       ClassData,
	SysFsync:        ClassData,
	SysFdatasync:    ClassData,
	SysReadahead:    ClassData,
	SysLseek:        ClassData,
	SysOpen:         ClassMetadata,
	SysOpenat:       ClassMetadata,
	SysCreat:        ClassMetadata,
	SysClose:        ClassMetadata,
	SysTruncate:     ClassMetadata,
	SysFtruncate:    ClassMetadata,
	SysRename:       ClassMetadata,
	SysRenameat:     ClassMetadata,
	SysRenameat2:    ClassMetadata,
	SysUnlink:       ClassMetadata,
	SysUnlinkat:     ClassMetadata,
	SysStat:         ClassMetadata,
	SysLstat:        ClassMetadata,
	SysFstat:        ClassMetadata,
	SysFstatfs:      ClassMetadata,
	SysGetxattr:     ClassExtendedAttr,
	SysLgetxattr:    ClassExtendedAttr,
	SysFgetxattr:    ClassExtendedAttr,
	SysSetxattr:     ClassExtendedAttr,
	SysLsetxattr:    ClassExtendedAttr,
	SysFsetxattr:    ClassExtendedAttr,
	SysListxattr:    ClassExtendedAttr,
	SysLlistxattr:   ClassExtendedAttr,
	SysFlistxattr:   ClassExtendedAttr,
	SysRemovexattr:  ClassExtendedAttr,
	SysLremovexattr: ClassExtendedAttr,
	SysFremovexattr: ClassExtendedAttr,
	SysMknod:        ClassDirectory,
	SysMknodat:      ClassDirectory,
	SysMkdir:        ClassDirectory,
	SysMkdirat:      ClassDirectory,
	SysRmdir:        ClassDirectory,
	syscallSentinel: 0,
}

// String returns the syscall name, e.g. "openat".
func (s Syscall) String() string {
	if s <= 0 || int(s) >= len(syscallNames) {
		return "unknown"
	}
	return syscallNames[s]
}

// Valid reports whether s is one of the supported syscalls.
func (s Syscall) Valid() bool {
	return s > 0 && s < syscallSentinel
}

// Class returns the Table I class of the syscall.
func (s Syscall) Class() Class {
	if !s.Valid() {
		return 0
	}
	return syscallClasses[s]
}

// AllSyscalls returns the full ordered list of supported syscalls.
func AllSyscalls() []Syscall {
	out := make([]Syscall, 0, NumSyscalls)
	for s := Syscall(1); s < syscallSentinel; s++ {
		out = append(out, s)
	}
	return out
}

// SyscallByName resolves a syscall name to its identifier. It returns false
// for names outside the supported set.
func SyscallByName(name string) (Syscall, bool) {
	for s := Syscall(1); s < syscallSentinel; s++ {
		if syscallNames[s] == name {
			return s, true
		}
	}
	return 0, false
}

// UsesFD reports whether the syscall's primary argument is a file
// descriptor (rather than a path). These are the syscalls that require the
// file-tag mechanism for path correlation.
func (s Syscall) UsesFD() bool {
	switch s {
	case SysRead, SysPread64, SysReadv, SysWrite, SysPwrite64, SysWritev,
		SysFsync, SysFdatasync, SysReadahead, SysLseek, SysClose,
		SysFtruncate, SysFstat, SysFstatfs,
		SysFgetxattr, SysFsetxattr, SysFlistxattr, SysFremovexattr:
		return true
	}
	return false
}

// MovesData reports whether the syscall transfers file data and therefore
// has a meaningful file offset (the paper's f_offset enrichment).
func (s Syscall) MovesData() bool {
	switch s {
	case SysRead, SysPread64, SysReadv, SysWrite, SysPwrite64, SysWritev,
		SysLseek, SysReadahead:
		return true
	}
	return false
}
