package kernel

import "strconv"

// Errno is a POSIX error number. Syscall methods return Errno values so that
// tracers observe negative return values exactly as they would on Linux.
type Errno int

// POSIX error numbers used by the simulated kernel (Linux x86-64 values).
const (
	EPERM        Errno = 1
	ENOENT       Errno = 2
	EBADF        Errno = 9
	EACCES       Errno = 13
	EEXIST       Errno = 17
	EXDEV        Errno = 18
	ENOTDIR      Errno = 20
	EISDIR       Errno = 21
	EINVAL       Errno = 22
	EMFILE       Errno = 24
	EFBIG        Errno = 27
	ENOSPC       Errno = 28
	ENAMETOOLONG Errno = 36
	ENOTEMPTY    Errno = 39
	ELOOP        Errno = 40
	ENODATA      Errno = 61
	EOPNOTSUPP   Errno = 95
)

var errnoNames = map[Errno]string{
	EPERM:        "EPERM",
	ENOENT:       "ENOENT",
	EBADF:        "EBADF",
	EACCES:       "EACCES",
	EEXIST:       "EEXIST",
	EXDEV:        "EXDEV",
	ENOTDIR:      "ENOTDIR",
	EISDIR:       "EISDIR",
	EINVAL:       "EINVAL",
	EMFILE:       "EMFILE",
	EFBIG:        "EFBIG",
	ENOSPC:       "ENOSPC",
	ENAMETOOLONG: "ENAMETOOLONG",
	ENOTEMPTY:    "ENOTEMPTY",
	ELOOP:        "ELOOP",
	ENODATA:      "ENODATA",
	EOPNOTSUPP:   "EOPNOTSUPP",
}

// Error implements the error interface.
func (e Errno) Error() string {
	if n, ok := errnoNames[e]; ok {
		return n
	}
	return "errno " + strconv.Itoa(int(e))
}

// Ret converts an (n, err) syscall result into the int64 return value that
// appears on the sys_exit tracepoint: n on success, -errno on failure.
func Ret(n int64, err error) int64 {
	if err == nil {
		return n
	}
	if e, ok := err.(Errno); ok {
		return -int64(e)
	}
	return -int64(EINVAL)
}
