package kernel

import "sync"

// SyscallArgs carries the decoded arguments of a syscall as they appear on
// the sys_enter tracepoint. Fields that do not apply to a given syscall are
// left at their zero values.
type SyscallArgs struct {
	FD       int
	Path     string
	Path2    string
	Count    int
	Offset   int64
	Whence   int
	Flags    OpenFlags
	Mode     uint32
	AttrName string
}

// Enter is the payload delivered to sys_enter hooks.
type Enter struct {
	NR       Syscall
	PID      int
	TID      int
	ProcName string
	TaskName string
	TimeNS   int64
	Args     SyscallArgs
}

// Aux is the kernel-side context an eBPF program can read from kernel
// structures at syscall exit: the basis of DIO's enrichment (§II-B).
type Aux struct {
	// HaveFile reports whether the syscall resolved to a filesystem object.
	HaveFile bool
	Dev      uint64
	Ino      uint64
	FileType FileType
	// BirthNS is the inode allocation timestamp; together with Dev and Ino
	// it forms the unique file tag that survives inode-number reuse.
	BirthNS int64
	// HaveOffset reports whether Offset is meaningful for this syscall.
	HaveOffset bool
	// Offset is the file offset at which a data syscall started accessing
	// the file (available even for read/write, which take no offset).
	Offset int64
	// Path is the kernel-resolved path for path-based syscalls; fd-based
	// syscalls leave it empty, as the kernel does not resolve fd→path on
	// the fast path (that is what the file-tag correlation is for).
	Path string
}

// Exit is the payload delivered to sys_exit hooks. It embeds the matching
// Enter payload so hooks that pair entry and exit in kernel space (as DIO,
// CaT and Tracee do) receive a single complete record.
type Exit struct {
	Enter
	Ret    int64
	ExitNS int64
	Aux    Aux
}

// EnterHook observes a syscall entry. Hooks run synchronously in the calling
// task's context, like eBPF programs on a tracepoint: the time they take is
// charged to the application.
type EnterHook func(*Enter)

// ExitHook observes a syscall exit.
type ExitHook func(*Exit)

// TracepointRegistry holds the hooks attached to each syscall tracepoint.
type TracepointRegistry struct {
	mu     sync.RWMutex
	nextID int
	enter  [syscallSentinel][]hookSlot[EnterHook]
	exit   [syscallSentinel][]hookSlot[ExitHook]
}

type hookSlot[H any] struct {
	id int
	fn H
}

func newTracepointRegistry() *TracepointRegistry {
	return &TracepointRegistry{nextID: 1}
}

// AttachEnter attaches fn to the sys_enter tracepoint of nr and returns a
// detach function.
func (r *TracepointRegistry) AttachEnter(nr Syscall, fn EnterHook) (detach func()) {
	if !nr.Valid() || fn == nil {
		return func() {}
	}
	r.mu.Lock()
	id := r.nextID
	r.nextID++
	r.enter[nr] = append(r.enter[nr], hookSlot[EnterHook]{id: id, fn: fn})
	r.mu.Unlock()
	return func() { r.detachEnter(nr, id) }
}

// AttachExit attaches fn to the sys_exit tracepoint of nr and returns a
// detach function.
func (r *TracepointRegistry) AttachExit(nr Syscall, fn ExitHook) (detach func()) {
	if !nr.Valid() || fn == nil {
		return func() {}
	}
	r.mu.Lock()
	id := r.nextID
	r.nextID++
	r.exit[nr] = append(r.exit[nr], hookSlot[ExitHook]{id: id, fn: fn})
	r.mu.Unlock()
	return func() { r.detachExit(nr, id) }
}

func (r *TracepointRegistry) detachEnter(nr Syscall, id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	hooks := r.enter[nr]
	for i, h := range hooks {
		if h.id == id {
			r.enter[nr] = append(append([]hookSlot[EnterHook]{}, hooks[:i]...), hooks[i+1:]...)
			return
		}
	}
}

func (r *TracepointRegistry) detachExit(nr Syscall, id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	hooks := r.exit[nr]
	for i, h := range hooks {
		if h.id == id {
			r.exit[nr] = append(append([]hookSlot[ExitHook]{}, hooks[:i]...), hooks[i+1:]...)
			return
		}
	}
}

// fireEnter invokes the sys_enter hooks for ev.NR.
func (r *TracepointRegistry) fireEnter(ev *Enter) {
	r.mu.RLock()
	hooks := r.enter[ev.NR]
	r.mu.RUnlock()
	for _, h := range hooks {
		h.fn(ev)
	}
}

// fireExit invokes the sys_exit hooks for ev.NR.
func (r *TracepointRegistry) fireExit(ev *Exit) {
	r.mu.RLock()
	hooks := r.exit[ev.NR]
	r.mu.RUnlock()
	for _, h := range hooks {
		h.fn(ev)
	}
}

// HasHooks reports whether any hook is attached to nr's tracepoints. The
// syscall fast path uses it to skip event construction entirely when the
// kernel is untraced (the vanilla configuration of Table II).
func (r *TracepointRegistry) HasHooks(nr Syscall) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.enter[nr]) > 0 || len(r.exit[nr]) > 0
}
