package kernel

// Stat returns metadata for the object at path, following symlinks.
func (t *Task) Stat(path string) (Stat, error) {
	enter := t.begin(SysStat, SyscallArgs{Path: path})
	st, aux, err := t.statImpl(path, true)
	t.finish(enter, Ret(0, err), aux)
	return st, err
}

// Lstat returns metadata for the object at path without following a final
// symlink.
func (t *Task) Lstat(path string) (Stat, error) {
	enter := t.begin(SysLstat, SyscallArgs{Path: path})
	st, aux, err := t.statImpl(path, false)
	t.finish(enter, Ret(0, err), aux)
	return st, err
}

func (t *Task) statImpl(path string, follow bool) (Stat, Aux, error) {
	k := t.k
	k.mu.Lock()
	defer k.mu.Unlock()
	nd, err := k.fs.namei(path, follow)
	if err != nil {
		return Stat{}, Aux{}, err
	}
	aux := auxOf(nd)
	aux.Path = path
	return statOf(nd), aux, nil
}

// Fstat returns metadata for the object behind fd.
func (t *Task) Fstat(fd int) (Stat, error) {
	enter := t.begin(SysFstat, SyscallArgs{FD: fd})
	var (
		st  Stat
		aux Aux
		err error
	)
	of, ok := t.proc.lookupFD(fd)
	if !ok {
		err = EBADF
	} else {
		k := t.k
		k.mu.Lock()
		st = statOf(of.nd)
		aux = auxOf(of.nd)
		k.mu.Unlock()
	}
	t.finish(enter, Ret(0, err), aux)
	return st, err
}

// Fstatfs returns filesystem statistics for the filesystem containing fd.
func (t *Task) Fstatfs(fd int) (StatFS, error) {
	enter := t.begin(SysFstatfs, SyscallArgs{FD: fd})
	var (
		sf  StatFS
		aux Aux
		err error
	)
	of, ok := t.proc.lookupFD(fd)
	if !ok {
		err = EBADF
	} else {
		k := t.k
		k.mu.Lock()
		sf = k.fs.statfs()
		aux = auxOf(of.nd)
		k.mu.Unlock()
	}
	t.finish(enter, Ret(0, err), aux)
	return sf, err
}

// Truncate resizes the file at path to size.
func (t *Task) Truncate(path string, size int64) error {
	enter := t.begin(SysTruncate, SyscallArgs{Path: path, Offset: size})
	aux, err := t.truncateImpl(path, size)
	t.finish(enter, Ret(0, err), aux)
	return err
}

func (t *Task) truncateImpl(path string, size int64) (Aux, error) {
	if size < 0 {
		return Aux{}, EINVAL
	}
	k := t.k
	k.mu.Lock()
	defer k.mu.Unlock()
	nd, err := k.fs.namei(path, true)
	if err != nil {
		return Aux{}, err
	}
	if nd.ftype == FileTypeDirectory {
		return Aux{}, EISDIR
	}
	resize(nd, size)
	aux := auxOf(nd)
	aux.Path = path
	return aux, nil
}

// Ftruncate resizes the file behind fd to size.
func (t *Task) Ftruncate(fd int, size int64) error {
	enter := t.begin(SysFtruncate, SyscallArgs{FD: fd, Offset: size})
	var (
		aux Aux
		err error
	)
	of, ok := t.proc.lookupFD(fd)
	switch {
	case !ok:
		err = EBADF
	case size < 0:
		err = EINVAL
	default:
		k := t.k
		k.mu.Lock()
		if !of.flags.writable() {
			err = EBADF
		} else {
			resize(of.nd, size)
			aux = auxOf(of.nd)
		}
		k.mu.Unlock()
	}
	t.finish(enter, Ret(0, err), aux)
	return err
}

func resize(nd *inode, size int64) {
	switch {
	case size < int64(len(nd.data)):
		nd.data = nd.data[:size]
	case size > int64(len(nd.data)):
		grown := make([]byte, size)
		copy(grown, nd.data)
		nd.data = grown
	}
}

// Rename moves oldPath to newPath.
func (t *Task) Rename(oldPath, newPath string) error {
	enter := t.begin(SysRename, SyscallArgs{Path: oldPath, Path2: newPath})
	aux, err := t.renameImpl(oldPath, newPath)
	t.finish(enter, Ret(0, err), aux)
	return err
}

// Renameat moves oldPath to newPath relative to directory fds (only
// AtFDCWD with absolute paths is supported).
func (t *Task) Renameat(olddirfd int, oldPath string, newdirfd int, newPath string) error {
	enter := t.begin(SysRenameat, SyscallArgs{FD: olddirfd, Path: oldPath, Path2: newPath})
	aux, err := t.renameImpl(oldPath, newPath)
	t.finish(enter, Ret(0, err), aux)
	return err
}

// Renameat2 is Renameat with flags; flags are accepted but only 0 is
// supported.
func (t *Task) Renameat2(olddirfd int, oldPath string, newdirfd int, newPath string, flags int) error {
	enter := t.begin(SysRenameat2, SyscallArgs{FD: olddirfd, Path: oldPath, Path2: newPath, Flags: OpenFlags(flags)})
	var (
		aux Aux
		err error
	)
	if flags != 0 {
		err = EINVAL
	} else {
		aux, err = t.renameImpl(oldPath, newPath)
	}
	t.finish(enter, Ret(0, err), aux)
	return err
}

func (t *Task) renameImpl(oldPath, newPath string) (Aux, error) {
	k := t.k
	k.mu.Lock()
	defer k.mu.Unlock()
	if err := k.fs.rename(oldPath, newPath); err != nil {
		return Aux{}, err
	}
	nd, err := k.fs.namei(newPath, false)
	if err != nil {
		return Aux{}, err
	}
	aux := auxOf(nd)
	aux.Path = newPath
	return aux, nil
}

// Unlink removes the file at path.
func (t *Task) Unlink(path string) error {
	enter := t.begin(SysUnlink, SyscallArgs{Path: path})
	err := t.unlinkImpl(path)
	t.finish(enter, Ret(0, err), Aux{Path: path})
	return err
}

// Unlinkat removes the file (or, with AT_REMOVEDIR semantics via rmdirFlag,
// the directory) at path.
func (t *Task) Unlinkat(dirfd int, path string, rmdirFlag bool) error {
	enter := t.begin(SysUnlinkat, SyscallArgs{FD: dirfd, Path: path})
	var err error
	if rmdirFlag {
		err = t.rmdirImpl(path)
	} else {
		err = t.unlinkImpl(path)
	}
	t.finish(enter, Ret(0, err), Aux{Path: path})
	return err
}

func (t *Task) unlinkImpl(path string) error {
	k := t.k
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.fs.unlink(path)
}
