package kernel

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
)

// TestFileContentsModelProperty runs random sequences of write/pwrite/
// truncate/lseek against both the kernel and an in-memory reference model,
// then verifies the file contents match.
func TestFileContentsModelProperty(t *testing.T) {
	type op struct {
		Kind   uint8
		Offset uint16
		Len    uint8
		Fill   byte
	}
	f := func(ops []op) bool {
		k := New(Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
		task := k.NewProcess("m").NewTask("m")
		fd, err := task.Open("/f", ORdwr|OCreat, 0o644)
		if err != nil {
			return false
		}
		var model []byte
		grow := func(n int) {
			if n > len(model) {
				model = append(model, make([]byte, n-len(model))...)
			}
		}
		for _, o := range ops {
			switch o.Kind % 4 {
			case 0: // sequential write
				data := bytes.Repeat([]byte{o.Fill}, int(o.Len))
				off, _ := task.Lseek(fd, 0, SeekCur)
				if _, err := task.Write(fd, data); err != nil {
					return false
				}
				grow(int(off) + len(data))
				copy(model[off:], data)
			case 1: // positional write
				off := int64(o.Offset % 4096)
				data := bytes.Repeat([]byte{o.Fill}, int(o.Len))
				if _, err := task.Pwrite64(fd, data, off); err != nil {
					return false
				}
				grow(int(off) + len(data))
				copy(model[off:], data)
			case 2: // truncate
				size := int64(o.Offset % 2048)
				if err := task.Ftruncate(fd, size); err != nil {
					return false
				}
				switch {
				case int(size) < len(model):
					model = model[:size]
				default:
					grow(int(size))
				}
			case 3: // seek
				off := int64(o.Offset % 2048)
				if _, err := task.Lseek(fd, off, SeekSet); err != nil {
					return false
				}
			}
		}
		got, err := k.ReadFileContents("/f")
		if err != nil {
			return false
		}
		return bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestInodeUniquenessInvariant: at any point, all live paths resolve to
// distinct inode numbers (single-link files only) and every recycled
// number has a fresh birth timestamp.
func TestInodeUniquenessInvariant(t *testing.T) {
	k := New(Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	task := k.NewProcess("m").NewTask("m")
	rng := rand.New(rand.NewSource(7))

	live := make(map[string]Stat) // path -> stat at creation
	birthSeen := make(map[string]bool)

	for i := 0; i < 2000; i++ {
		path := fmt.Sprintf("/f%02d", rng.Intn(30))
		if rng.Intn(2) == 0 {
			fd, err := task.Open(path, OWronly|OCreat, 0o644)
			if err != nil {
				t.Fatalf("open %s: %v", path, err)
			}
			st, _ := task.Fstat(fd)
			task.Close(fd)
			if _, exists := live[path]; !exists {
				// Fresh creation: the (ino, birth) pair must never repeat.
				key := fmt.Sprintf("%d-%d", st.Ino, st.BirthNS)
				if birthSeen[key] {
					t.Fatalf("file tag reused: %s", key)
				}
				birthSeen[key] = true
				live[path] = st
			}
		} else {
			err := task.Unlink(path)
			if _, exists := live[path]; exists {
				if err != nil {
					t.Fatalf("unlink %s: %v", path, err)
				}
				delete(live, path)
			} else if err != ENOENT {
				t.Fatalf("unlink missing %s = %v, want ENOENT", path, err)
			}
		}
		// Invariant: all live paths have distinct inode numbers.
		inos := make(map[uint64]string, len(live))
		for p := range live {
			st, err := task.Stat(p)
			if err != nil {
				t.Fatalf("stat %s: %v", p, err)
			}
			if other, dup := inos[st.Ino]; dup {
				t.Fatalf("paths %s and %s share inode %d", p, other, st.Ino)
			}
			inos[st.Ino] = p
		}
	}
}

// TestConcurrentSyscallsNoCorruption hammers the kernel from many tasks to
// shake out locking bugs (run with -race for full value).
func TestConcurrentSyscallsNoCorruption(t *testing.T) {
	k := New(Config{
		Clock: clock.NewReal(0),
		Disk:  DiskConfig{BytesPerSecond: 1 << 40, PerOpLatency: 0},
	})
	k.MkdirAll("/c")
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			proc := k.NewProcess(fmt.Sprintf("p%d", w))
			task := proc.NewTask("t")
			path := fmt.Sprintf("/c/f%d", w)
			for i := 0; i < 300; i++ {
				fd, err := task.Open(path, ORdwr|OCreat, 0o644)
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				task.Write(fd, []byte(path))
				buf := make([]byte, len(path))
				task.Pread64(fd, buf, 0)
				if string(buf) != path {
					t.Errorf("read back %q, want %q", buf, path)
				}
				task.Close(fd)
				if i%10 == 9 {
					task.Unlink(path)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSharedFileConcurrentAppend: concurrent O_APPEND writers never lose or
// tear writes.
func TestSharedFileConcurrentAppend(t *testing.T) {
	k := New(Config{
		Clock: clock.NewReal(0),
		Disk:  DiskConfig{BytesPerSecond: 1 << 40, PerOpLatency: 0},
	})
	proc := k.NewProcess("app")
	const writers = 4
	const lines = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			task := proc.NewTask("w")
			fd, err := task.Open("/log", OWronly|OCreat|OAppend, 0o644)
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			defer task.Close(fd)
			line := bytes.Repeat([]byte{byte('a' + w)}, 8)
			for i := 0; i < lines; i++ {
				if n, err := task.Write(fd, line); n != 8 || err != nil {
					t.Errorf("write = (%d, %v)", n, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	data, err := k.ReadFileContents("/log")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(data) != writers*lines*8 {
		t.Fatalf("file size = %d, want %d", len(data), writers*lines*8)
	}
	// Every 8-byte record is untorn: all bytes identical.
	counts := make(map[byte]int)
	for i := 0; i < len(data); i += 8 {
		rec := data[i : i+8]
		for _, b := range rec {
			if b != rec[0] {
				t.Fatalf("torn record at %d: %q", i, rec)
			}
		}
		counts[rec[0]]++
	}
	for w := 0; w < writers; w++ {
		if counts[byte('a'+w)] != lines {
			t.Fatalf("writer %d records = %d, want %d", w, counts[byte('a'+w)], lines)
		}
	}
}
