package kernel

// Whence values for lseek.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Open opens path with flags, returning a new file descriptor.
func (t *Task) Open(path string, flags OpenFlags, mode uint32) (int, error) {
	enter := t.begin(SysOpen, SyscallArgs{Path: path, Flags: flags, Mode: mode})
	fd, aux, err := t.openImpl(path, flags)
	t.finish(enter, Ret(int64(fd), err), aux)
	return fd, err
}

// Openat opens path relative to dirfd (only AtFDCWD with absolute paths is
// supported, which is how the traced workloads use it).
func (t *Task) Openat(dirfd int, path string, flags OpenFlags, mode uint32) (int, error) {
	enter := t.begin(SysOpenat, SyscallArgs{FD: dirfd, Path: path, Flags: flags, Mode: mode})
	fd, aux, err := t.openImpl(path, flags)
	t.finish(enter, Ret(int64(fd), err), aux)
	return fd, err
}

// Creat creates (or truncates) path for writing.
func (t *Task) Creat(path string, mode uint32) (int, error) {
	enter := t.begin(SysCreat, SyscallArgs{Path: path, Mode: mode})
	fd, aux, err := t.openImpl(path, OWronly|OCreat|OTrunc)
	t.finish(enter, Ret(int64(fd), err), aux)
	return fd, err
}

func (t *Task) openImpl(path string, flags OpenFlags) (int, Aux, error) {
	// EMFILE is reported before any filesystem effect (as on Linux, where
	// the unused-fd allocation precedes the path walk).
	fd := t.proc.reserveFD()
	if fd < 0 {
		return -1, Aux{}, EMFILE
	}
	k := t.k
	k.mu.Lock()
	nd, err := k.fs.namei(path, true)
	switch {
	case err == nil:
		if flags&OExcl != 0 && flags&OCreat != 0 {
			k.mu.Unlock()
			t.proc.releaseFD(fd)
			return -1, Aux{}, EEXIST
		}
	case err == ENOENT && flags&OCreat != 0:
		nd, err = k.fs.create(path, FileTypeRegular)
		if err != nil {
			k.mu.Unlock()
			t.proc.releaseFD(fd)
			return -1, Aux{}, err.(Errno)
		}
	default:
		k.mu.Unlock()
		t.proc.releaseFD(fd)
		return -1, Aux{}, err
	}
	if flags&ODirectory != 0 && nd.ftype != FileTypeDirectory {
		k.mu.Unlock()
		t.proc.releaseFD(fd)
		return -1, Aux{}, ENOTDIR
	}
	if nd.ftype == FileTypeDirectory && flags.writable() {
		k.mu.Unlock()
		t.proc.releaseFD(fd)
		return -1, Aux{}, EISDIR
	}
	if flags&OTrunc != 0 && nd.ftype == FileTypeRegular {
		nd.data = nil
	}
	nd.opens++
	aux := auxOf(nd)
	aux.Path = path
	of := &openFile{nd: nd, path: path, flags: flags}
	k.mu.Unlock()

	t.proc.fillFD(fd, of)
	return fd, aux, nil
}

// Close closes fd.
func (t *Task) Close(fd int) error {
	enter := t.begin(SysClose, SyscallArgs{FD: fd})
	var aux Aux
	of, ok := t.proc.removeFD(fd)
	var err error
	if !ok {
		err = EBADF
	} else {
		k := t.k
		k.mu.Lock()
		of.nd.opens--
		aux = auxOf(of.nd)
		k.fs.it.maybeRelease(of.nd)
		k.mu.Unlock()
	}
	t.finish(enter, Ret(0, err), aux)
	return err
}

// Read reads up to len(buf) bytes from fd's current offset.
func (t *Task) Read(fd int, buf []byte) (int, error) {
	enter := t.begin(SysRead, SyscallArgs{FD: fd, Count: len(buf)})
	n, aux, err := t.readImpl(fd, buf, -1, true)
	t.finish(enter, Ret(int64(n), err), aux)
	return n, err
}

// Pread64 reads up to len(buf) bytes from the given offset without moving
// the file offset.
func (t *Task) Pread64(fd int, buf []byte, offset int64) (int, error) {
	enter := t.begin(SysPread64, SyscallArgs{FD: fd, Count: len(buf), Offset: offset})
	n, aux, err := t.readImpl(fd, buf, offset, false)
	t.finish(enter, Ret(int64(n), err), aux)
	return n, err
}

// Readv reads into multiple buffers from fd's current offset.
func (t *Task) Readv(fd int, bufs [][]byte) (int, error) {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	enter := t.begin(SysReadv, SyscallArgs{FD: fd, Count: total})
	flat := make([]byte, total)
	n, aux, err := t.readImpl(fd, flat, -1, true)
	if err == nil {
		rem := flat[:n]
		for _, b := range bufs {
			m := copy(b, rem)
			rem = rem[m:]
			if len(rem) == 0 {
				break
			}
		}
	}
	t.finish(enter, Ret(int64(n), err), aux)
	return n, err
}

func (t *Task) readImpl(fd int, buf []byte, offset int64, advance bool) (int, Aux, error) {
	of, ok := t.proc.lookupFD(fd)
	if !ok {
		return 0, Aux{}, EBADF
	}
	k := t.k
	k.mu.Lock()
	if !of.flags.readable() {
		k.mu.Unlock()
		return 0, Aux{}, EBADF
	}
	if of.nd.ftype == FileTypeDirectory {
		k.mu.Unlock()
		return 0, Aux{}, EISDIR
	}
	off := offset
	if off < 0 {
		off = of.offset
	}
	aux := auxOf(of.nd)
	aux.HaveOffset = true
	aux.Offset = off
	ino, birth := of.nd.ino, of.nd.birthNS
	var n int
	if off < int64(len(of.nd.data)) {
		n = copy(buf, of.nd.data[off:])
	}
	if advance {
		of.offset = off + int64(n)
	}
	k.mu.Unlock()

	// Pages resident in the cache are served from memory; only the misses
	// hit the device.
	charge := int64(n)
	if k.cache != nil {
		charge = k.cache.access(ino, birth, off, int64(n), false)
	}
	if charge > 0 || k.cache == nil {
		k.disk.Submit(int(charge))
	}
	return n, aux, nil
}

// Write writes buf at fd's current offset (or at EOF with O_APPEND).
func (t *Task) Write(fd int, buf []byte) (int, error) {
	enter := t.begin(SysWrite, SyscallArgs{FD: fd, Count: len(buf)})
	n, aux, err := t.writeImpl(fd, buf, -1, true)
	t.finish(enter, Ret(int64(n), err), aux)
	return n, err
}

// Pwrite64 writes buf at the given offset without moving the file offset.
func (t *Task) Pwrite64(fd int, buf []byte, offset int64) (int, error) {
	enter := t.begin(SysPwrite64, SyscallArgs{FD: fd, Count: len(buf), Offset: offset})
	n, aux, err := t.writeImpl(fd, buf, offset, false)
	t.finish(enter, Ret(int64(n), err), aux)
	return n, err
}

// Writev writes multiple buffers at fd's current offset.
func (t *Task) Writev(fd int, bufs [][]byte) (int, error) {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	enter := t.begin(SysWritev, SyscallArgs{FD: fd, Count: total})
	flat := make([]byte, 0, total)
	for _, b := range bufs {
		flat = append(flat, b...)
	}
	n, aux, err := t.writeImpl(fd, flat, -1, true)
	t.finish(enter, Ret(int64(n), err), aux)
	return n, err
}

func (t *Task) writeImpl(fd int, buf []byte, offset int64, advance bool) (int, Aux, error) {
	of, ok := t.proc.lookupFD(fd)
	if !ok {
		return 0, Aux{}, EBADF
	}
	k := t.k
	k.mu.Lock()
	if !of.flags.writable() {
		k.mu.Unlock()
		return 0, Aux{}, EBADF
	}
	off := offset
	if off < 0 {
		off = of.offset
		if of.flags&OAppend != 0 {
			off = int64(len(of.nd.data))
		}
	}
	aux := auxOf(of.nd)
	aux.HaveOffset = true
	aux.Offset = off
	end := off + int64(len(buf))
	if end > int64(len(of.nd.data)) {
		if end <= int64(cap(of.nd.data)) {
			// Zero any gap between the old length and the new end before
			// exposing it (sparse-write semantics).
			old := len(of.nd.data)
			of.nd.data = of.nd.data[:end]
			for i := old; int64(i) < off; i++ {
				of.nd.data[i] = 0
			}
		} else {
			// Amortized growth: doubling keeps long append streams linear.
			newCap := int64(cap(of.nd.data)) * 2
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, of.nd.data)
			of.nd.data = grown
		}
	}
	copy(of.nd.data[off:end], buf)
	if advance {
		of.offset = end
	}
	ino, birth := of.nd.ino, of.nd.birthNS
	k.mu.Unlock()

	// Write-through: populate the cache, still charge the device.
	if k.cache != nil {
		k.cache.access(ino, birth, off, int64(len(buf)), true)
	}
	k.disk.Submit(len(buf))
	return len(buf), aux, nil
}

// Lseek repositions fd's offset and returns the new offset.
func (t *Task) Lseek(fd int, offset int64, whence int) (int64, error) {
	enter := t.begin(SysLseek, SyscallArgs{FD: fd, Offset: offset, Whence: whence})
	var (
		aux    Aux
		newOff int64
		err    error
	)
	of, ok := t.proc.lookupFD(fd)
	if !ok {
		err = EBADF
	} else {
		k := t.k
		k.mu.Lock()
		switch whence {
		case SeekSet:
			newOff = offset
		case SeekCur:
			newOff = of.offset + offset
		case SeekEnd:
			newOff = int64(len(of.nd.data)) + offset
		default:
			err = EINVAL
		}
		if err == nil && newOff < 0 {
			err = EINVAL
		}
		if err == nil {
			of.offset = newOff
			aux = auxOf(of.nd)
			aux.HaveOffset = true
			aux.Offset = newOff
		}
		k.mu.Unlock()
	}
	t.finish(enter, Ret(newOff, err), aux)
	return newOff, err
}

// Fsync flushes fd's data and metadata to the device.
func (t *Task) Fsync(fd int) error {
	enter := t.begin(SysFsync, SyscallArgs{FD: fd})
	aux, err := t.syncImpl(fd)
	t.finish(enter, Ret(0, err), aux)
	return err
}

// Fdatasync flushes fd's data to the device.
func (t *Task) Fdatasync(fd int) error {
	enter := t.begin(SysFdatasync, SyscallArgs{FD: fd})
	aux, err := t.syncImpl(fd)
	t.finish(enter, Ret(0, err), aux)
	return err
}

func (t *Task) syncImpl(fd int) (Aux, error) {
	of, ok := t.proc.lookupFD(fd)
	if !ok {
		return Aux{}, EBADF
	}
	k := t.k
	k.mu.Lock()
	aux := auxOf(of.nd)
	k.mu.Unlock()
	k.disk.Submit(0) // a flush costs one device round trip
	return aux, nil
}

// Readahead populates the page cache for [offset, offset+count).
func (t *Task) Readahead(fd int, offset int64, count int) error {
	enter := t.begin(SysReadahead, SyscallArgs{FD: fd, Offset: offset, Count: count})
	var (
		aux Aux
		err error
	)
	of, ok := t.proc.lookupFD(fd)
	if !ok {
		err = EBADF
	} else {
		k := t.k
		k.mu.Lock()
		aux = auxOf(of.nd)
		aux.HaveOffset = true
		aux.Offset = offset
		size := int64(len(of.nd.data))
		k.mu.Unlock()
		n := int64(count)
		if offset < size && offset+n > size {
			n = size - offset
		}
		if offset >= size {
			n = 0
		}
		k.disk.Submit(int(n))
	}
	t.finish(enter, Ret(0, err), aux)
	return err
}
