package kernel

import (
	"strings"
)

// DefaultDev is the device number of the kernel's single filesystem. The
// value matches the dev_no column of the paper's Fig. 2 traces.
const DefaultDev uint64 = 7340032

// vfs is the in-memory filesystem: a single device with a directory tree.
// All methods assume the kernel mutex is held.
type vfs struct {
	it   *inodeTable
	root uint64
}

func newVFS(nowNS func() int64) *vfs {
	v := &vfs{it: newInodeTable(DefaultDev, nowNS)}
	rootInode := v.it.alloc(FileTypeDirectory)
	rootInode.nlink = 2
	v.root = rootInode.ino
	return v
}

// splitPath normalizes an absolute path into components. It returns false
// for relative or empty paths.
func splitPath(path string) ([]string, bool) {
	if path == "" || path[0] != '/' {
		return nil, false
	}
	raw := strings.Split(path, "/")
	comps := make([]string, 0, len(raw))
	for _, c := range raw {
		switch c {
		case "", ".":
			continue
		case "..":
			if len(comps) > 0 {
				comps = comps[:len(comps)-1]
			}
		default:
			comps = append(comps, c)
		}
	}
	return comps, true
}

const maxNameLen = 255

// namei resolves path to an inode, following symlinks in intermediate and
// final components (up to a loop budget).
func (v *vfs) namei(path string, followFinal bool) (*inode, error) {
	return v.nameiDepth(path, followFinal, 0)
}

func (v *vfs) nameiDepth(path string, followFinal bool, depth int) (*inode, error) {
	if depth > 8 {
		return nil, ELOOP
	}
	comps, ok := splitPath(path)
	if !ok {
		return nil, EINVAL
	}
	cur, _ := v.it.get(v.root)
	for i, c := range comps {
		if cur.ftype != FileTypeDirectory {
			return nil, ENOTDIR
		}
		if len(c) > maxNameLen {
			return nil, ENAMETOOLONG
		}
		childIno, ok := cur.childs[c]
		if !ok {
			return nil, ENOENT
		}
		child, ok := v.it.get(childIno)
		if !ok {
			return nil, ENOENT
		}
		final := i == len(comps)-1
		if child.ftype == FileTypeSymlink && (!final || followFinal) {
			resolved, err := v.nameiDepth(child.target, true, depth+1)
			if err != nil {
				return nil, err
			}
			child = resolved
		}
		cur = child
	}
	return cur, nil
}

// parentOf resolves the directory that would contain path's final component
// and returns that component's name.
func (v *vfs) parentOf(path string) (*inode, string, error) {
	comps, ok := splitPath(path)
	if !ok {
		return nil, "", EINVAL
	}
	if len(comps) == 0 {
		return nil, "", EEXIST // operating on the root itself
	}
	name := comps[len(comps)-1]
	if len(name) > maxNameLen {
		return nil, "", ENAMETOOLONG
	}
	dirPath := "/" + strings.Join(comps[:len(comps)-1], "/")
	dir, err := v.namei(dirPath, true)
	if err != nil {
		return nil, "", err
	}
	if dir.ftype != FileTypeDirectory {
		return nil, "", ENOTDIR
	}
	return dir, name, nil
}

// create makes a new filesystem object at path. It fails with EEXIST if the
// name is already taken.
func (v *vfs) create(path string, ft FileType) (*inode, error) {
	dir, name, err := v.parentOf(path)
	if err != nil {
		return nil, err
	}
	if _, exists := dir.childs[name]; exists {
		return nil, EEXIST
	}
	nd := v.it.alloc(ft)
	nd.nlink = 1
	if ft == FileTypeDirectory {
		nd.nlink = 2
		dir.nlink++
	}
	dir.childs[name] = nd.ino
	return nd, nil
}

// unlink removes a non-directory entry. The inode number is recycled only
// once no open descriptors remain (POSIX delete-on-last-close).
func (v *vfs) unlink(path string) error {
	dir, name, err := v.parentOf(path)
	if err != nil {
		return err
	}
	ino, ok := dir.childs[name]
	if !ok {
		return ENOENT
	}
	nd, ok := v.it.get(ino)
	if !ok {
		return ENOENT
	}
	if nd.ftype == FileTypeDirectory {
		return EISDIR
	}
	delete(dir.childs, name)
	nd.nlink--
	v.it.maybeRelease(nd)
	return nil
}

// rmdir removes an empty directory.
func (v *vfs) rmdir(path string) error {
	dir, name, err := v.parentOf(path)
	if err != nil {
		return err
	}
	ino, ok := dir.childs[name]
	if !ok {
		return ENOENT
	}
	nd, ok := v.it.get(ino)
	if !ok {
		return ENOENT
	}
	if nd.ftype != FileTypeDirectory {
		return ENOTDIR
	}
	if len(nd.childs) != 0 {
		return ENOTEMPTY
	}
	delete(dir.childs, name)
	dir.nlink--
	nd.nlink -= 2
	v.it.maybeRelease(nd)
	return nil
}

// rename moves oldPath to newPath, replacing a non-directory target.
func (v *vfs) rename(oldPath, newPath string) error {
	odir, oname, err := v.parentOf(oldPath)
	if err != nil {
		return err
	}
	oino, ok := odir.childs[oname]
	if !ok {
		return ENOENT
	}
	src, ok := v.it.get(oino)
	if !ok {
		return ENOENT
	}
	ndir, nname, err := v.parentOf(newPath)
	if err != nil {
		return err
	}
	if tgtIno, exists := ndir.childs[nname]; exists {
		tgt, ok := v.it.get(tgtIno)
		if !ok {
			return ENOENT
		}
		if tgt.ftype == FileTypeDirectory {
			if src.ftype != FileTypeDirectory {
				return EISDIR
			}
			if len(tgt.childs) != 0 {
				return ENOTEMPTY
			}
			ndir.nlink--
			tgt.nlink -= 2
		} else {
			if src.ftype == FileTypeDirectory {
				return ENOTDIR
			}
			tgt.nlink--
		}
		v.it.maybeRelease(tgt)
	}
	delete(odir.childs, oname)
	ndir.childs[nname] = src.ino
	if src.ftype == FileTypeDirectory && odir != ndir {
		odir.nlink--
		ndir.nlink++
	}
	return nil
}

// mkdirAll creates all missing directories along path. It is a host helper
// used by workload setup code, not a traced syscall.
func (v *vfs) mkdirAll(path string) error {
	comps, ok := splitPath(path)
	if !ok {
		return EINVAL
	}
	cur := "/"
	for _, c := range comps {
		if cur == "/" {
			cur += c
		} else {
			cur += "/" + c
		}
		nd, err := v.namei(cur, true)
		switch {
		case err == nil:
			if nd.ftype != FileTypeDirectory {
				return ENOTDIR
			}
		case err == ENOENT:
			if _, err := v.create(cur, FileTypeDirectory); err != nil {
				return err
			}
		default:
			return err
		}
	}
	return nil
}

// Stat holds the subset of struct stat fields the tracer and workloads use.
type Stat struct {
	Dev     uint64
	Ino     uint64
	Mode    FileType
	Nlink   int
	Size    int64
	BirthNS int64
}

func statOf(nd *inode) Stat {
	return Stat{
		Dev:     nd.dev,
		Ino:     nd.ino,
		Mode:    nd.ftype,
		Nlink:   nd.nlink,
		Size:    nd.size(),
		BirthNS: nd.birthNS,
	}
}

// StatFS holds the subset of struct statfs fields exposed by fstatfs.
type StatFS struct {
	BlockSize   int64
	Blocks      int64
	BlocksFree  int64
	FilesTotal  int64
	FilesFree   int64
	NameMaxLen  int64
	FSTypeMagic int64
}

func (v *vfs) statfs() StatFS {
	used := int64(len(v.it.inodes))
	return StatFS{
		BlockSize:   4096,
		Blocks:      1 << 26,
		BlocksFree:  1 << 25,
		FilesTotal:  1 << 20,
		FilesFree:   1<<20 - used,
		NameMaxLen:  maxNameLen,
		FSTypeMagic: 0xef53, // ext4
	}
}
