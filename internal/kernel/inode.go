package kernel

import (
	"container/heap"
)

// FileType classifies the object behind an inode. DIO's enrichment exposes
// this so analyses can differentiate accesses to regular files, directories,
// sockets, devices, pipes, and symbolic links (paper §II-B).
type FileType int

// File types distinguishable by the tracer's enrichment.
const (
	FileTypeRegular FileType = iota + 1
	FileTypeDirectory
	FileTypeSocket
	FileTypeBlockDevice
	FileTypeCharDevice
	FileTypePipe
	FileTypeSymlink
	FileTypeUnknown
)

// String returns the short label used in trace events.
func (ft FileType) String() string {
	switch ft {
	case FileTypeRegular:
		return "regular"
	case FileTypeDirectory:
		return "directory"
	case FileTypeSocket:
		return "socket"
	case FileTypeBlockDevice:
		return "block device"
	case FileTypeCharDevice:
		return "char device"
	case FileTypePipe:
		return "pipe"
	case FileTypeSymlink:
		return "symlink"
	default:
		return "unknown"
	}
}

// inode is the in-core representation of a filesystem object. Inode numbers
// are reused after the inode is fully released (link count zero and no open
// descriptors), reproducing the Linux behaviour at the heart of the Fluent
// Bit data-loss case (§III-B): a freshly created file can receive the inode
// number of a recently deleted one.
type inode struct {
	ino     uint64
	dev     uint64
	ftype   FileType
	data    []byte            // regular file contents
	childs  map[string]uint64 // directory entries
	target  string            // symlink target
	xattrs  map[string][]byte
	nlink   int
	opens   int   // open file descriptions referencing this inode
	birthNS int64 // allocation timestamp; distinguishes reuse generations
}

func (ino *inode) size() int64 {
	if ino.ftype == FileTypeDirectory {
		return int64(len(ino.childs)) * 32
	}
	return int64(len(ino.data))
}

// released reports whether the inode number can return to the free pool.
func (ino *inode) released() bool { return ino.nlink == 0 && ino.opens == 0 }

// inoHeap is a min-heap of freed inode numbers; the allocator hands out the
// lowest free number first, like ext4's bitmap scan, so deleted inode
// numbers resurface quickly.
type inoHeap []uint64

func (h inoHeap) Len() int            { return len(h) }
func (h inoHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h inoHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *inoHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *inoHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// inodeTable allocates and recycles inodes for one device.
type inodeTable struct {
	dev     uint64
	next    uint64
	free    inoHeap
	inodes  map[uint64]*inode
	nowNS   func() int64
	reuses  uint64 // number of times a freed inode number was handed out again
	allocis uint64
}

func newInodeTable(dev uint64, nowNS func() int64) *inodeTable {
	return &inodeTable{
		dev:    dev,
		next:   2, // inode 1 is reserved; 2 is the root directory
		inodes: make(map[uint64]*inode),
		nowNS:  nowNS,
	}
}

// alloc creates a new inode of the given type, preferring recycled numbers.
func (t *inodeTable) alloc(ft FileType) *inode {
	var ino uint64
	if t.free.Len() > 0 {
		ino = heap.Pop(&t.free).(uint64)
		t.reuses++
	} else {
		ino = t.next
		t.next++
	}
	t.allocis++
	nd := &inode{
		ino:     ino,
		dev:     t.dev,
		ftype:   ft,
		birthNS: t.nowNS(),
	}
	if ft == FileTypeDirectory {
		nd.childs = make(map[string]uint64)
	}
	t.inodes[ino] = nd
	return nd
}

// get looks up an inode by number.
func (t *inodeTable) get(ino uint64) (*inode, bool) {
	nd, ok := t.inodes[ino]
	return nd, ok
}

// maybeRelease frees the inode number if the inode is fully released.
func (t *inodeTable) maybeRelease(nd *inode) {
	if !nd.released() {
		return
	}
	if _, ok := t.inodes[nd.ino]; !ok {
		return
	}
	delete(t.inodes, nd.ino)
	heap.Push(&t.free, nd.ino)
}
