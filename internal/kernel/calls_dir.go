package kernel

// Node type selectors for mknod, mirroring the S_IF* mode bits.
const (
	ModeRegular uint32 = 0o100000
	ModeCharDev uint32 = 0o020000
	ModeBlkDev  uint32 = 0o060000
	ModeFIFO    uint32 = 0o010000
	ModeSocket  uint32 = 0o140000
)

func fileTypeForMode(mode uint32) FileType {
	switch mode & 0o170000 {
	case ModeCharDev:
		return FileTypeCharDevice
	case ModeBlkDev:
		return FileTypeBlockDevice
	case ModeFIFO:
		return FileTypePipe
	case ModeSocket:
		return FileTypeSocket
	default:
		return FileTypeRegular
	}
}

// Mkdir creates a directory at path.
func (t *Task) Mkdir(path string, mode uint32) error {
	enter := t.begin(SysMkdir, SyscallArgs{Path: path, Mode: mode})
	aux, err := t.mkdirImpl(path)
	t.finish(enter, Ret(0, err), aux)
	return err
}

// Mkdirat creates a directory at path relative to dirfd.
func (t *Task) Mkdirat(dirfd int, path string, mode uint32) error {
	enter := t.begin(SysMkdirat, SyscallArgs{FD: dirfd, Path: path, Mode: mode})
	aux, err := t.mkdirImpl(path)
	t.finish(enter, Ret(0, err), aux)
	return err
}

func (t *Task) mkdirImpl(path string) (Aux, error) {
	k := t.k
	k.mu.Lock()
	defer k.mu.Unlock()
	nd, err := k.fs.create(path, FileTypeDirectory)
	if err != nil {
		return Aux{}, err
	}
	aux := auxOf(nd)
	aux.Path = path
	return aux, nil
}

// Rmdir removes the empty directory at path.
func (t *Task) Rmdir(path string) error {
	enter := t.begin(SysRmdir, SyscallArgs{Path: path})
	err := t.rmdirImpl(path)
	t.finish(enter, Ret(0, err), Aux{Path: path})
	return err
}

func (t *Task) rmdirImpl(path string) error {
	k := t.k
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.fs.rmdir(path)
}

// Mknod creates a filesystem node (regular file, device, pipe, or socket)
// at path.
func (t *Task) Mknod(path string, mode uint32, dev uint64) error {
	enter := t.begin(SysMknod, SyscallArgs{Path: path, Mode: mode})
	aux, err := t.mknodImpl(path, mode)
	t.finish(enter, Ret(0, err), aux)
	return err
}

// Mknodat creates a filesystem node at path relative to dirfd.
func (t *Task) Mknodat(dirfd int, path string, mode uint32, dev uint64) error {
	enter := t.begin(SysMknodat, SyscallArgs{FD: dirfd, Path: path, Mode: mode})
	aux, err := t.mknodImpl(path, mode)
	t.finish(enter, Ret(0, err), aux)
	return err
}

func (t *Task) mknodImpl(path string, mode uint32) (Aux, error) {
	k := t.k
	k.mu.Lock()
	defer k.mu.Unlock()
	nd, err := k.fs.create(path, fileTypeForMode(mode))
	if err != nil {
		return Aux{}, err
	}
	aux := auxOf(nd)
	aux.Path = path
	return aux, nil
}

// Symlink creates a symbolic link at linkPath pointing to target. It is a
// host helper for building test fixtures (symlink(2) itself is not in the
// 42-syscall set of Table I, but symlinks must exist so that the f_type
// enrichment can observe them).
func (k *Kernel) Symlink(target, linkPath string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	nd, err := k.fs.create(linkPath, FileTypeSymlink)
	if err != nil {
		return err
	}
	nd.target = target
	return nil
}
