package kernel

import (
	"container/list"
	"sync"
)

// PageSize is the cache granularity (4 KiB pages, as on Linux).
const PageSize = 4096

// pageKey identifies one cached page. The inode birth timestamp is part of
// the key so that a recycled inode number never hits stale pages.
type pageKey struct {
	ino     uint64
	birthNS int64
	block   int64
}

// pageCache is an LRU page cache in front of the disk model. Writes
// populate it (write-through: the disk is still charged); reads served
// entirely from resident pages skip the disk. Disabled unless the kernel's
// DiskConfig sets PageCacheBytes.
type pageCache struct {
	mu       sync.Mutex
	capPages int
	pages    map[pageKey]*list.Element
	lru      *list.List // of pageKey; front = most recent
	hits     uint64
	misses   uint64
}

func newPageCache(capBytes int64) *pageCache {
	capPages := int(capBytes / PageSize)
	if capPages <= 0 {
		return nil
	}
	return &pageCache{
		capPages: capPages,
		pages:    make(map[pageKey]*list.Element, capPages),
		lru:      list.New(),
	}
}

// insert makes the page resident, evicting the least recently used page
// when at capacity.
func (c *pageCache) insertLocked(k pageKey) {
	if el, ok := c.pages[k]; ok {
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.capPages {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.pages, oldest.Value.(pageKey))
	}
	c.pages[k] = c.lru.PushFront(k)
}

// access walks the byte range [off, off+n) of the file identified by
// (ino, birthNS): resident pages count as hits; missing pages are inserted
// and their bytes returned as the amount the disk must serve.
func (c *pageCache) access(ino uint64, birthNS int64, off, n int64, populateOnly bool) (missBytes int64) {
	if c == nil || n <= 0 {
		return n
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	first := off / PageSize
	last := (off + n - 1) / PageSize
	for b := first; b <= last; b++ {
		k := pageKey{ino: ino, birthNS: birthNS, block: b}
		if el, ok := c.pages[k]; ok {
			c.lru.MoveToFront(el)
			if !populateOnly {
				c.hits++
			}
			continue
		}
		if !populateOnly {
			c.misses++
		}
		missBytes += PageSize
		c.insertLocked(k)
	}
	if missBytes > n {
		missBytes = n
	}
	return missBytes
}

// PageCacheStats reports cache effectiveness.
type PageCacheStats struct {
	Hits   uint64
	Misses uint64
}

// PageCacheStats returns hit/miss counters; zeros when the cache is
// disabled.
func (k *Kernel) PageCacheStats() PageCacheStats {
	if k.cache == nil {
		return PageCacheStats{}
	}
	k.cache.mu.Lock()
	defer k.cache.mu.Unlock()
	return PageCacheStats{Hits: k.cache.hits, Misses: k.cache.misses}
}
