package core

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// runTelemetryWorkload traces a small open/write/close burst.
func runTelemetryWorkload(t *testing.T, k *kernel.Kernel, writes int) {
	t.Helper()
	task := k.NewProcess("tm").NewTask("tm")
	fd, err := task.Openat(kernel.AtFDCWD, "/tmp/tm.log", kernel.OWronly|kernel.OCreat, 0o644)
	if err != nil {
		t.Fatalf("openat: %v", err)
	}
	for i := 0; i < writes; i++ {
		task.Write(fd, []byte("x"))
	}
	task.Close(fd)
}

func TestTracerTelemetrySnapshot(t *testing.T) {
	k := newTracedKernel(t)
	tr, err := NewTracer(Config{
		SessionName:   "tm",
		Index:         "events",
		Backend:       store.New(),
		FlushInterval: time.Millisecond,
		Resilience:    chaosResilience(),
	})
	if err != nil {
		t.Fatalf("NewTracer: %v", err)
	}
	if err := tr.Start(k); err != nil {
		t.Fatalf("Start: %v", err)
	}
	runTelemetryWorkload(t, k, 200)
	st, err := tr.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}

	s := tr.Telemetry()
	// The snapshot agrees with the Stop statistics stage by stage.
	if got := s.Counters[telemetry.MetricCaptured]; got != st.Captured {
		t.Fatalf("captured: telemetry %d, stats %d", got, st.Captured)
	}
	if got := s.Counters[telemetry.MetricParsed]; got != st.Parsed {
		t.Fatalf("parsed: telemetry %d, stats %d", got, st.Parsed)
	}
	if got := s.Counters[telemetry.MetricShipped] + s.Counters[telemetry.MetricReplayed]; got != st.Shipped {
		t.Fatalf("shipped: telemetry %d, stats %d", got, st.Shipped)
	}
	if got := s.Counters[telemetry.MetricRingProduced] + s.Counters[telemetry.MetricRingDropped]; got != st.Captured {
		t.Fatalf("ring produce(%d)+drop(%d) != captured %d",
			s.Counters[telemetry.MetricRingProduced], s.Counters[telemetry.MetricRingDropped], st.Captured)
	}
	// Per-worker drain and parse histograms exist and saw work.
	var drainObs uint64
	for name, h := range s.Histograms {
		if strings.HasPrefix(name, telemetry.MetricDrainNS) {
			drainObs += h.Count
		}
	}
	if drainObs == 0 {
		t.Fatal("no per-worker drain cycles recorded")
	}
	if s.Histograms[telemetry.MetricFlushNS].Count == 0 {
		t.Fatal("no flush latency recorded")
	}
	if len(s.Windows[telemetry.MetricFlushWindow]) == 0 {
		t.Fatal("no windowed flush latency recorded")
	}
	assertLedgerBalanced(t, tr)
}

func TestTracerTelemetryDisabled(t *testing.T) {
	k := newTracedKernel(t)
	tr, err := NewTracer(Config{
		SessionName:      "off",
		Backend:          store.New(),
		FlushInterval:    time.Millisecond,
		DisableTelemetry: true,
	})
	if err != nil {
		t.Fatalf("NewTracer: %v", err)
	}
	if tr.TelemetryRegistry() != nil {
		t.Fatal("DisableTelemetry left a registry")
	}
	if err := tr.Start(k); err != nil {
		t.Fatalf("Start: %v", err)
	}
	runTelemetryWorkload(t, k, 50)
	st, err := tr.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if st.Captured == 0 || st.Shipped == 0 {
		t.Fatalf("pipeline broken with telemetry off: %+v", st)
	}
	s := tr.Telemetry()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("disabled telemetry produced a non-empty snapshot")
	}
}

// TestMetricsEndpointAllStages is the acceptance check for the tentpole: a
// co-located tracer attaches its registry to the store server, and one GET
// /metrics scrape exposes instruments from all five pipeline stages.
func TestMetricsEndpointAllStages(t *testing.T) {
	k := newTracedKernel(t)
	st := store.New()
	srv := store.NewServer(st)

	tr, err := NewTracer(Config{
		SessionName:   "metrics",
		Index:         "events",
		Backend:       st,
		FlushInterval: time.Millisecond,
		Resilience:    chaosResilience(),
		AutoCorrelate: true,
	})
	if err != nil {
		t.Fatalf("NewTracer: %v", err)
	}
	srv.ExposeTelemetry(tr.TelemetryRegistry())
	srv.ExposeTelemetry(tr.TelemetryRegistry()) // idempotent: no duplicate output

	if err := tr.Start(k); err != nil {
		t.Fatalf("Start: %v", err)
	}
	runTelemetryWorkload(t, k, 100)
	if _, err := tr.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}

	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		telemetry.MetricCaptured,                  // stage 1: ebpf
		telemetry.MetricParsed,                    // stage 2: core drain
		telemetry.MetricShipAttempts,              // stage 3: resilience
		telemetry.MetricBulkDocs,                  // stage 4: store
		telemetry.MetricCorrelateRuns,             // stage 5: correlation
		telemetry.MetricShardImbalance,            // store gauge
		`dio_core_drain_ns_bucket{worker="0",le=`, // per-worker labeled histogram
		`dio_store_docs{index="events"}`,          // per-index gauge
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q\n%s", want, out)
		}
	}
	samples := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "dio_ebpf_captured_total ") {
			samples++
		}
	}
	if samples != 1 {
		t.Fatalf("dio_ebpf_captured_total emitted %d times; duplicate registry attachment?", samples)
	}
}
