package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/ebpf"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/store"
)

func newTracedKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(kernel.BaseTimestampNS, time.Microsecond)})
	if err := k.MkdirAll("/tmp"); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	return k
}

func TestNewTracerValidation(t *testing.T) {
	if _, err := NewTracer(Config{}); !errors.Is(err, ErrNoBackend) {
		t.Fatalf("err = %v, want ErrNoBackend", err)
	}
	tr, err := NewTracer(Config{Backend: store.New()})
	if err != nil {
		t.Fatalf("NewTracer: %v", err)
	}
	if tr.Session() == "" || tr.Index() != "dio-events" {
		t.Fatalf("defaults: session=%q index=%q", tr.Session(), tr.Index())
	}
}

func TestTracerLifecycleErrors(t *testing.T) {
	k := newTracedKernel(t)
	tr, _ := NewTracer(Config{Backend: store.New()})
	if _, err := tr.Stop(); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Stop before Start = %v", err)
	}
	if err := tr.Start(k); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := tr.Start(k); !errors.Is(err, ErrAlreadyStarted) {
		t.Fatalf("second Start = %v", err)
	}
	if _, err := tr.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	// Stop twice is safe.
	if _, err := tr.Stop(); err != nil {
		t.Fatalf("double Stop: %v", err)
	}
}

func TestTracerEndToEnd(t *testing.T) {
	k := newTracedKernel(t)
	backend := store.New()
	tr, _ := NewTracer(Config{
		SessionName:   "e2e",
		Index:         "events",
		Backend:       backend,
		AutoCorrelate: true,
		FlushInterval: time.Millisecond,
	})
	if err := tr.Start(k); err != nil {
		t.Fatalf("Start: %v", err)
	}

	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(kernel.AtFDCWD, "/tmp/app.log", kernel.OWronly|kernel.OCreat, 0o644)
	task.Write(fd, []byte("hello, tracing world! 26 b"))
	task.Close(fd)
	task.Unlink("/tmp/app.log")

	st, err := tr.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if st.Captured != 4 || st.Parsed != 4 || st.Shipped != 4 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}

	resp, err := backend.Search(context.Background(), "events", store.SearchRequest{
		Query: store.Term(store.FieldSession, "e2e"),
		Sort:  []store.SortField{{Field: store.FieldTimeEnter}},
	})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if resp.Total != 4 {
		t.Fatalf("indexed events = %d, want 4", resp.Total)
	}

	evs := make([]map[string]any, len(resp.Hits))
	for i, h := range resp.Hits {
		evs[i] = h
	}
	if evs[0][store.FieldSyscall] != "openat" || evs[1][store.FieldSyscall] != "write" ||
		evs[2][store.FieldSyscall] != "close" || evs[3][store.FieldSyscall] != "unlink" {
		t.Fatalf("event order: %v %v %v %v",
			evs[0][store.FieldSyscall], evs[1][store.FieldSyscall],
			evs[2][store.FieldSyscall], evs[3][store.FieldSyscall])
	}
	// The write has offset enrichment and a correlated file path.
	w := store.DocToEvent(evs[1])
	if !w.HasOffset || w.Offset != 0 {
		t.Fatalf("write offset enrichment: %+v", w)
	}
	if w.FilePath != "/tmp/app.log" {
		t.Fatalf("write file_path = %q (correlation failed)", w.FilePath)
	}
	if w.FileType != "regular" {
		t.Fatalf("write file_type = %q", w.FileType)
	}
	if w.RetVal != 26 || w.Count != 26 {
		t.Fatalf("write ret/count = %d/%d", w.RetVal, w.Count)
	}
	if st.Correlation.EventsUnresolved != 0 {
		t.Fatalf("correlation left %d unresolved", st.Correlation.EventsUnresolved)
	}
}

func TestTracerFiltersToConfiguredSyscalls(t *testing.T) {
	k := newTracedKernel(t)
	backend := store.New()
	tr, _ := NewTracer(Config{
		SessionName: "subset",
		Index:       "events",
		Backend:     backend,
		Filter: ebpf.Filter{
			Syscalls: []kernel.Syscall{kernel.SysOpenat, kernel.SysRead, kernel.SysWrite, kernel.SysClose},
		},
		FlushInterval: time.Millisecond,
	})
	tr.Start(k)

	task := k.NewProcess("db").NewTask("db")
	fd, _ := task.Openat(kernel.AtFDCWD, "/tmp/x", kernel.ORdwr|kernel.OCreat, 0o644)
	task.Write(fd, []byte("abc"))
	task.Fsync(fd) // not traced
	task.Stat("/tmp/x")
	task.Close(fd)

	st, err := tr.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if st.Shipped != 3 {
		t.Fatalf("shipped = %d, want 3 (open,write,close)", st.Shipped)
	}
	n, _ := backend.Count(context.Background(), "events", store.Term(store.FieldSyscall, "fsync"))
	if n != 0 {
		t.Fatal("fsync event leaked past syscall filter")
	}
}

func TestTracerMultipleSessionsShareBackend(t *testing.T) {
	k := newTracedKernel(t)
	backend := store.New()
	run := func(session string) {
		tr, _ := NewTracer(Config{
			SessionName:   session,
			Index:         "events",
			Backend:       backend,
			FlushInterval: time.Millisecond,
		})
		tr.Start(k)
		task := k.NewProcess("app-" + session).NewTask("app")
		fd, _ := task.Openat(kernel.AtFDCWD, "/tmp/f-"+session, kernel.OWronly|kernel.OCreat, 0o644)
		task.Close(fd)
		if _, err := tr.Stop(); err != nil {
			t.Fatalf("stop %s: %v", session, err)
		}
	}
	run("r1")
	run("r2")
	n1, _ := backend.Count(context.Background(), "events", store.Term(store.FieldSession, "r1"))
	n2, _ := backend.Count(context.Background(), "events", store.Term(store.FieldSession, "r2"))
	if n1 != 2 || n2 != 2 {
		t.Fatalf("per-session counts = %d/%d, want 2/2", n1, n2)
	}
}

func TestTracerDropAccounting(t *testing.T) {
	k := newTracedKernel(t)
	backend := store.New()
	tr, _ := NewTracer(Config{
		SessionName: "drops",
		Index:       "events",
		Backend:     backend,
		RingBytes:   600, // a handful of records
		// Long flush interval so the consumer cannot keep up.
		FlushInterval: time.Hour,
	})
	tr.Start(k)

	task := k.NewProcess("storm").NewTask("storm")
	fd, _ := task.Openat(kernel.AtFDCWD, "/tmp/s", kernel.OWronly|kernel.OCreat, 0o644)
	for i := 0; i < 200; i++ {
		task.Write(fd, []byte("x"))
	}
	task.Close(fd)

	st, err := tr.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if st.Dropped == 0 {
		t.Fatal("expected drops with tiny ring and stalled consumer")
	}
	if st.Shipped+st.Dropped != st.Captured {
		t.Fatalf("shipped(%d)+dropped(%d) != captured(%d)", st.Shipped, st.Dropped, st.Captured)
	}
	if st.DropFraction() <= 0 || st.DropFraction() >= 1 {
		t.Fatalf("drop fraction = %v", st.DropFraction())
	}
}

// failingBackend fails every bulk request.
type failingBackend struct{ store.Backend }

func (f failingBackend) Bulk(context.Context, string, []store.Document) error {
	return errors.New("backend unavailable")
}

func TestTracerShipErrorsSurface(t *testing.T) {
	k := newTracedKernel(t)
	tr, _ := NewTracer(Config{
		Backend:       failingBackend{store.New()},
		FlushInterval: time.Millisecond,
	})
	tr.Start(k)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(kernel.AtFDCWD, "/tmp/f", kernel.OWronly|kernel.OCreat, 0o644)
	task.Close(fd)
	st, err := tr.Stop()
	if err == nil {
		t.Fatal("Stop returned nil despite ship failures")
	}
	if st.ShipErrors == 0 || st.Shipped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTracerOverHTTPBackend(t *testing.T) {
	k := newTracedKernel(t)
	st := store.New()
	srv := newHTTPServer(t, st)
	client := store.NewClient(srv)

	tr, _ := NewTracer(Config{
		SessionName:   "http",
		Index:         "events",
		Backend:       client,
		AutoCorrelate: true,
		FlushInterval: time.Millisecond,
	})
	tr.Start(k)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(kernel.AtFDCWD, "/tmp/h", kernel.OWronly|kernel.OCreat, 0o644)
	task.Write(fd, []byte("remote"))
	task.Close(fd)
	stats, err := tr.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if stats.Shipped != 3 {
		t.Fatalf("shipped = %d", stats.Shipped)
	}
	n, _ := st.Count(context.Background(), "events", store.Exists(store.FieldFilePath))
	if n != 3 {
		t.Fatalf("correlated events at remote store = %d, want 3", n)
	}
}
