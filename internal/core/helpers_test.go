package core

import (
	"net/http/httptest"
	"testing"

	"github.com/dsrhaslab/dio-go/internal/store"
)

// newHTTPServer starts a backend HTTP server for tests and returns its URL.
func newHTTPServer(t *testing.T, st *store.Store) string {
	t.Helper()
	srv := httptest.NewServer(store.NewServer(st))
	t.Cleanup(srv.Close)
	return srv.URL
}
