package core

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/resilience"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// chaosResilience is a fast-converging resilience config for chaos tests:
// millisecond-scale backoffs and cooldowns so a full retry → breaker →
// spill → replay cycle fits in a unit test.
func chaosResilience() *resilience.Config {
	return &resilience.Config{
		MaxAttempts:      3,
		BaseBackoff:      200 * time.Microsecond,
		MaxBackoff:       time.Millisecond,
		BreakerThreshold: 4,
		BreakerCooldown:  5 * time.Millisecond,
		SpillEvents:      1 << 16,
	}
}

// runChaosWorkload writes events spread over enough flush intervals that the
// drain workers ship many separate batches while faults are being injected.
func runChaosWorkload(t *testing.T, k *kernel.Kernel, writes int) {
	t.Helper()
	task := k.NewProcess("chaos").NewTask("chaos")
	fd, err := task.Openat(kernel.AtFDCWD, "/tmp/chaos.log", kernel.OWronly|kernel.OCreat, 0o644)
	if err != nil {
		t.Fatalf("openat: %v", err)
	}
	for i := 0; i < writes; i++ {
		task.Write(fd, []byte("x"))
		if i%100 == 99 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	task.Close(fd)
}

// assertExactAccounting is the chaos invariant: every captured event is
// either shipped or counted in exactly one drop counter — zero unaccounted
// loss, the property the whole resilience ladder exists to protect.
func assertExactAccounting(t *testing.T, st Stats) {
	t.Helper()
	if st.Captured == 0 {
		t.Fatal("no events captured")
	}
	if got := st.Shipped + st.Dropped + st.SpillDropped + st.ParseErrors; got != st.Captured {
		t.Fatalf("unaccounted loss: shipped(%d) + dropped(%d) + spillDropped(%d) + parseErrors(%d) = %d, captured = %d",
			st.Shipped, st.Dropped, st.SpillDropped, st.ParseErrors, got, st.Captured)
	}
}

// assertLedgerBalanced asserts the same invariant through the runtime
// telemetry snapshot (DESIGN.md §9) instead of the Stop statistics: after
// Stop the pipeline is quiescent, so the conservation ledger must close with
// nothing pending.
func assertLedgerBalanced(t *testing.T, tr *Tracer) {
	t.Helper()
	l := tr.Ledger()
	if l.Captured == 0 {
		t.Fatal("telemetry ledger captured nothing")
	}
	if l.Pending != 0 {
		t.Fatalf("ledger pending = %d after Stop, want 0", l.Pending)
	}
	if !l.Balanced() {
		t.Fatalf("telemetry ledger does not close: %+v (outstanding %d)", l, l.Outstanding())
	}
}

func TestTracerChaosExactAccounting(t *testing.T) {
	k := newTracedKernel(t)
	inner := store.New()
	faulty := resilience.NewFaultyBackend(inner, 1)
	faulty.SetErrorRate(0.3)
	faulty.ScriptOutage(10, 16) // one scripted full outage mid-run

	tr, err := NewTracer(Config{
		SessionName:   "chaos",
		Index:         "events",
		Backend:       faulty,
		BatchSize:     32,
		FlushInterval: time.Millisecond,
		Resilience:    chaosResilience(),
	})
	if err != nil {
		t.Fatalf("NewTracer: %v", err)
	}
	if err := tr.Start(k); err != nil {
		t.Fatalf("Start: %v", err)
	}
	runChaosWorkload(t, k, 3000)

	// The backend recovers before shutdown, as in a real transient incident;
	// the final flush must then deliver everything still parked.
	faulty.SetErrorRate(0)
	st, _ := tr.Stop() // a non-nil error only reports the transient failures

	assertExactAccounting(t, st)
	assertLedgerBalanced(t, tr)
	if st.SpillDropped != 0 {
		t.Fatalf("events dropped despite recovery: %+v", st.Resilience)
	}
	if st.Retries == 0 {
		t.Fatal("no retries under 30% fault injection")
	}
	if st.BreakerOpens == 0 {
		t.Fatal("breaker never opened during the scripted outage")
	}
	if st.Resilience == nil || st.Resilience.BreakerCloses == 0 {
		t.Fatalf("breaker never closed after recovery: %+v", st.Resilience)
	}
	if st.Resilience.BreakerState != "closed" {
		t.Fatalf("breaker state = %s after recovery", st.Resilience.BreakerState)
	}
	if st.Requeued == 0 || st.Replayed != st.Requeued {
		t.Fatalf("spill was not fully replayed: %+v", st.Resilience)
	}
	// The store holds exactly the shipped events: nothing duplicated by
	// retries-after-spill, nothing missing.
	n, err := inner.Count(context.Background(), "events", store.Term(store.FieldSession, "chaos"))
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if uint64(n) != st.Shipped {
		t.Fatalf("store holds %d events, stats say %d shipped", n, st.Shipped)
	}
}

func TestTracerChaosOverHTTP(t *testing.T) {
	k := newTracedKernel(t)
	st := store.New()
	chaos := store.NewChaosHandler(store.NewServer(st), 1)
	chaos.SetConfig(store.ChaosConfig{Rate: 0.3, RetryAfterSec: 0})
	srv := httptest.NewServer(chaos)
	t.Cleanup(srv.Close)
	client := store.NewClient(srv.URL)

	tr, err := NewTracer(Config{
		SessionName:   "chaos-http",
		Index:         "events",
		Backend:       client,
		BatchSize:     16,
		FlushInterval: time.Millisecond,
		Resilience:    chaosResilience(),
	})
	if err != nil {
		t.Fatalf("NewTracer: %v", err)
	}
	if err := tr.Start(k); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Keep generating load until the chaos handler has demonstrably injected
	// failures into the live ship path (the seeded dice decide exactly when).
	for round := 0; round < 20 && chaos.Injected() == 0; round++ {
		runChaosWorkload(t, k, 300)
	}
	if chaos.Injected() == 0 {
		t.Fatal("chaos handler injected nothing")
	}
	chaos.SetConfig(store.ChaosConfig{}) // recover before shutdown
	stats, _ := tr.Stop()

	assertExactAccounting(t, stats)
	assertLedgerBalanced(t, tr)
	if stats.SpillDropped != 0 {
		t.Fatalf("events dropped despite recovery: %+v", stats.Resilience)
	}
	if stats.Retries == 0 {
		t.Fatal("no retries despite injected 503s")
	}
	n, err := st.Count(context.Background(), "events", store.Term(store.FieldSession, "chaos-http"))
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if uint64(n) != stats.Shipped {
		t.Fatalf("store holds %d events, stats say %d shipped", n, stats.Shipped)
	}
}

func TestTracerChaosPermanentOutageCountsDrops(t *testing.T) {
	k := newTracedKernel(t)
	faulty := resilience.NewFaultyBackend(store.New(), 1)
	faulty.SetErrorRate(1) // dead for the whole session, shutdown included

	tr, _ := NewTracer(Config{
		SessionName:   "dead",
		Index:         "events",
		Backend:       faulty,
		BatchSize:     32,
		FlushInterval: time.Millisecond,
		Resilience:    chaosResilience(),
	})
	tr.Start(k)
	runChaosWorkload(t, k, 500)
	st, err := tr.Stop()
	if err == nil {
		t.Fatal("Stop must report the delivery failure")
	}
	assertExactAccounting(t, st)
	assertLedgerBalanced(t, tr)
	if st.Shipped != 0 {
		t.Fatalf("shipped %d events through a dead backend", st.Shipped)
	}
	if st.SpillDropped == 0 {
		t.Fatal("lost events were not counted")
	}
}

// countingFailBackend fails every Bulk with a distinct error message.
type countingFailBackend struct {
	store.Backend
	calls atomic64
}

type atomic64 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic64) next() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
	return a.n
}

func (c *countingFailBackend) Bulk(context.Context, string, []store.Document) error {
	return fmt.Errorf("backend unavailable (failure %d)", c.calls.next())
}

func TestTracerErrorListBoundedAndDistinct(t *testing.T) {
	k := newTracedKernel(t)
	tr, _ := NewTracer(Config{
		Backend:       &countingFailBackend{Backend: store.New()},
		BatchSize:     1, // one failing flush per event
		FlushInterval: time.Millisecond,
	})
	tr.Start(k)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(kernel.AtFDCWD, "/tmp/e", kernel.OWronly|kernel.OCreat, 0o644)
	for i := 0; i < 28; i++ {
		task.Write(fd, []byte("x"))
	}
	task.Close(fd)
	st, err := tr.Stop()
	if err == nil {
		t.Fatal("Stop returned nil despite ship failures")
	}
	if st.ShipErrors < 10 {
		t.Fatalf("ship errors = %d, want many", st.ShipErrors)
	}
	msg := err.Error()
	if !strings.Contains(msg, "failure 1)") {
		t.Fatalf("first error lost from report: %s", msg)
	}
	if got := strings.Count(msg, "backend unavailable"); got != 8 {
		t.Fatalf("retained %d errors, want 8 (bounded): %s", got, msg)
	}
	if !strings.Contains(msg, "more distinct errors omitted") {
		t.Fatalf("overflow not reported: %s", msg)
	}
}

// errShort produces an undecodable ring record.
var errShortRecord = []byte{0x01, 0x02, 0x03}

func TestTracerCountsParseErrors(t *testing.T) {
	k := newTracedKernel(t)
	backend := store.New()
	tr, _ := NewTracer(Config{
		SessionName:   "parse",
		Index:         "events",
		Backend:       backend,
		FlushInterval: time.Millisecond,
	})
	tr.Start(k)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(kernel.AtFDCWD, "/tmp/p", kernel.OWronly|kernel.OCreat, 0o644)
	task.Close(fd)
	// Inject corrupt records directly into the rings, as a kernel-side bug
	// or torn write would.
	for _, ring := range tr.prog.Rings().Rings() {
		ring.Write(errShortRecord)
	}
	st, err := tr.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if st.ParseErrors != uint64(len(tr.prog.Rings().Rings())) {
		t.Fatalf("parse errors = %d, want %d", st.ParseErrors, len(tr.prog.Rings().Rings()))
	}
	if st.Shipped != 2 {
		t.Fatalf("valid events shipped = %d, want 2", st.Shipped)
	}
	var workerParseErrs uint64
	for _, w := range st.Workers {
		workerParseErrs += w.ParseErrors
	}
	if workerParseErrs != st.ParseErrors {
		t.Fatalf("worker parse errors %d != total %d", workerParseErrs, st.ParseErrors)
	}
}
