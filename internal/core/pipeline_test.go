package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/ebpf"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// TestNearRealTimeVisibility verifies the in-line pipeline property of
// §II: events become queryable at the backend while the application is
// still running, without stopping the tracer.
func TestNearRealTimeVisibility(t *testing.T) {
	k := newTracedKernel(t)
	backend := store.New()
	tracer, _ := NewTracer(Config{
		SessionName:   "live",
		Index:         "events",
		Backend:       backend,
		FlushInterval: time.Millisecond,
	})
	if err := tracer.Start(k); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer tracer.Stop()

	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(kernel.AtFDCWD, "/tmp/live", kernel.OWronly|kernel.OCreat, 0o644)
	task.Write(fd, []byte("x"))

	// Without stopping the tracer, the events must appear at the backend.
	deadline := time.Now().Add(2 * time.Second)
	for {
		n, _ := backend.Count(context.Background(), "events", store.Term(store.FieldSession, "live"))
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("events not visible in near real time (count=%d)", n)
		}
		time.Sleep(time.Millisecond)
	}
	task.Close(fd)
}

// TestTracerConcurrentTasks verifies correct attribution when many threads
// of several processes issue syscalls simultaneously.
func TestTracerConcurrentTasks(t *testing.T) {
	k := newTracedKernel(t)
	backend := store.New()
	tracer, _ := NewTracer(Config{
		SessionName:   "mt",
		Index:         "events",
		Backend:       backend,
		NumCPU:        4,
		FlushInterval: time.Millisecond,
	})
	tracer.Start(k)

	const (
		procs     = 3
		threads   = 4
		opsPerThr = 50
	)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		proc := k.NewProcess("proc")
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(p, th int) {
				defer wg.Done()
				task := proc.NewTask("worker")
				path := "/tmp/mt"
				fd, err := task.Openat(kernel.AtFDCWD, path, kernel.ORdwr|kernel.OCreat, 0o644)
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				for i := 0; i < opsPerThr; i++ {
					task.Pwrite64(fd, []byte("y"), int64(i))
				}
				task.Close(fd)
			}(p, th)
		}
	}
	wg.Wait()
	st, err := tracer.Stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	wantEvents := uint64(procs * threads * (opsPerThr + 2))
	if st.Shipped != wantEvents {
		t.Fatalf("shipped = %d, want %d", st.Shipped, wantEvents)
	}
	// Every event is attributed to a distinct tid within the right pid.
	resp, _ := backend.Search(context.Background(), "events", store.SearchRequest{
		Query: store.Term(store.FieldSession, "mt"),
		Size:  1,
		Aggs: map[string]store.Agg{
			"by_tid": {Terms: &store.TermsAgg{Field: store.FieldTID}},
		},
	})
	// TID is numeric, so the terms agg groups on the numeric key strings.
	if got := len(resp.Aggs["by_tid"].Buckets); got != procs*threads {
		t.Fatalf("distinct tids = %d, want %d", got, procs*threads)
	}
}

// TestTracerTIDFilter narrows tracing to a single thread of a process.
func TestTracerTIDFilter(t *testing.T) {
	k := newTracedKernel(t)
	backend := store.New()
	proc := k.NewProcess("app")
	keep := proc.NewTask("keep")
	skip := proc.NewTask("skip")

	tracer, _ := NewTracer(Config{
		SessionName:   "tid",
		Index:         "events",
		Backend:       backend,
		Filter:        ebpf.Filter{TIDs: []int{keep.TID()}},
		FlushInterval: time.Millisecond,
	})
	tracer.Start(k)

	fd, _ := keep.Openat(kernel.AtFDCWD, "/tmp/a", kernel.OWronly|kernel.OCreat, 0o644)
	keep.Close(fd)
	fd2, _ := skip.Openat(kernel.AtFDCWD, "/tmp/b", kernel.OWronly|kernel.OCreat, 0o644)
	skip.Close(fd2)

	st, err := tracer.Stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	if st.Shipped != 2 {
		t.Fatalf("shipped = %d, want 2", st.Shipped)
	}
	n, _ := backend.Count(context.Background(), "events", store.Term(store.FieldTID, keep.TID()))
	if n != 2 {
		t.Fatalf("keep-tid events = %d", n)
	}
	n, _ = backend.Count(context.Background(), "events", store.Term(store.FieldTID, skip.TID()))
	if n != 0 {
		t.Fatalf("skip-tid events leaked: %d", n)
	}
}

// TestTracerSessionIsolation: two concurrent sessions on the same kernel
// (e.g. two users tracing different processes against one shared backend,
// §II-F) must not interleave events.
func TestTracerSessionIsolation(t *testing.T) {
	k := newTracedKernel(t)
	backend := store.New()

	procA := k.NewProcess("a")
	procB := k.NewProcess("b")
	mk := func(name string, pid int) *Tracer {
		tr, _ := NewTracer(Config{
			SessionName:   name,
			Index:         "events",
			Backend:       backend,
			Filter:        ebpf.Filter{PIDs: []int{pid}},
			FlushInterval: time.Millisecond,
		})
		if err := tr.Start(k); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		return tr
	}
	trA := mk("sess-a", procA.PID())
	trB := mk("sess-b", procB.PID())

	ta := procA.NewTask("a")
	tb := procB.NewTask("b")
	fdA, _ := ta.Openat(kernel.AtFDCWD, "/tmp/a", kernel.OWronly|kernel.OCreat, 0o644)
	ta.Close(fdA)
	fdB, _ := tb.Openat(kernel.AtFDCWD, "/tmp/b", kernel.OWronly|kernel.OCreat, 0o644)
	tb.Write(fdB, []byte("x"))
	tb.Close(fdB)

	if _, err := trA.Stop(); err != nil {
		t.Fatalf("stop a: %v", err)
	}
	if _, err := trB.Stop(); err != nil {
		t.Fatalf("stop b: %v", err)
	}

	nA, _ := backend.Count(context.Background(), "events", store.Term(store.FieldSession, "sess-a"))
	nB, _ := backend.Count(context.Background(), "events", store.Term(store.FieldSession, "sess-b"))
	if nA != 2 || nB != 3 {
		t.Fatalf("session counts = %d/%d, want 2/3", nA, nB)
	}
	// No cross-contamination: session A has no pid-B events.
	n, _ := backend.Count(context.Background(), "events", store.Must(
		store.Term(store.FieldSession, "sess-a"),
		store.Term(store.FieldPID, procB.PID()),
	))
	if n != 0 {
		t.Fatalf("session a contains %d events from process b", n)
	}
}
