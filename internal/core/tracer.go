// Package core implements DIO's tracer (§II-B): it attaches eBPF-style
// programs to the simulated kernel's syscall tracepoints, lets them filter
// and enrich events in kernel space, and runs a user-space consumer that
// asynchronously drains the per-CPU ring buffers, parses binary records
// into JSON-ready events, and ships them in batches to the analysis
// backend. Only syscall interception is synchronous; everything else is off
// the application's critical path.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/dio-go/internal/ebpf"
	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/metrics"
	"github.com/dsrhaslab/dio-go/internal/resilience"
	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// Config configures one tracing session.
type Config struct {
	// SessionName labels this tracing execution; auto-generated when empty
	// so multiple runs can share a backend (§II-F).
	SessionName string
	// Index is the backend index receiving events (default "dio-events").
	Index string
	// Filter narrows tracing by syscall type, PID/TID, and path (§II-B).
	Filter ebpf.Filter
	// NumCPU is the number of per-CPU ring buffers (default 1).
	NumCPU int
	// RingBytes is each ring's capacity in bytes (default ebpf.DefaultRingBytes).
	RingBytes int
	// BatchSize groups events into bulk requests (default 512).
	BatchSize int
	// FlushInterval bounds how long a partial batch may wait (default 10ms),
	// keeping the pipeline near-real-time. It also paces the drain workers:
	// rings are only emptied once per interval, which is what lets the
	// drops experiments model a consumer that falls behind (§III-D).
	FlushInterval time.Duration
	// DrainWorkers is the number of user-space drain goroutines. 0 (the
	// default) starts one worker per CPU ring — the scalable configuration.
	// 1 reproduces the original single-consumer loop over all rings and is
	// kept as the ablation baseline; other values assign rings to workers
	// round-robin.
	DrainWorkers int
	// Backend receives the events. Required.
	Backend store.Backend
	// Resilience, when non-nil, wraps Backend in the fault-tolerant ship
	// path (retry → circuit breaker → spill queue → counted drop; see
	// DESIGN.md §8). Stop's final drain flushes the spill queue before
	// returning, so every captured event is either shipped or counted in
	// exactly one drop counter.
	Resilience *resilience.Config
	// AutoCorrelate runs the file-path correlation algorithm on Stop.
	AutoCorrelate bool
	// PerEventCost optionally charges a synthetic kernel-side cost per
	// traced event (used by the overhead experiments of Table II).
	PerEventCost func()
	// Telemetry is the self-accounting registry every pipeline stage
	// records into (ring produce/drop, drain/parse/flush latency, shipper
	// ladder activity). Nil creates a private registry per tracer; pass a
	// shared one to merge the tracer's metrics into a server's /metrics
	// endpoint. See DESIGN.md §9.
	Telemetry *telemetry.Registry
	// DisableTelemetry turns self-accounting off entirely — the ablation
	// switch for BenchmarkTelemetryOverhead, in the same spirit as
	// Index.SetLegacyScan and DrainWorkers=1.
	DisableTelemetry bool
}

// WorkerStats summarizes one drain worker's share of the pipeline.
type WorkerStats struct {
	// Worker is the worker's index.
	Worker int
	// Rings is the number of per-CPU rings the worker drains.
	Rings int
	// Dropped is the number of events lost on this worker's rings.
	Dropped uint64
	// Parsed is the number of records the worker decoded.
	Parsed uint64
	// ParseErrors is the number of corrupt records the worker could not
	// decode (each is one lost event, counted here instead of vanishing).
	ParseErrors uint64
	// Shipped is the number of events the worker indexed at the backend.
	Shipped uint64
	// Requeued is the number of events the resilience layer parked in the
	// spill queue on this worker's behalf.
	Requeued uint64
	// ShipErrors counts the worker's failed bulk requests.
	ShipErrors uint64
	// Flushes counts the worker's bulk requests (including failed ones).
	Flushes uint64
}

// Stats summarizes a tracing session.
type Stats struct {
	Session string
	// Captured is the number of events accepted by kernel-side filters.
	Captured uint64
	// Filtered is the number of events rejected in kernel space.
	Filtered uint64
	// Dropped is the number of events lost to full ring buffers (§III-D).
	Dropped uint64
	// Parsed is the number of records decoded by the user-space consumers.
	Parsed uint64
	// ParseErrors is the number of corrupt records dropped by the parsers.
	ParseErrors uint64
	// Shipped is the number of events successfully indexed at the backend,
	// including spilled events delivered later by replay.
	Shipped uint64
	// ShipErrors counts failed bulk requests.
	ShipErrors uint64
	// Retries counts ship attempts beyond each batch's first (resilience).
	Retries uint64
	// Requeued is the number of events parked in the spill queue while the
	// backend was failing (resilience).
	Requeued uint64
	// Replayed is the number of spilled events later delivered (resilience).
	Replayed uint64
	// SpillDropped is the number of events dropped with accounting by the
	// resilience layer: spill overflow, permanently-failed batches, and
	// batches the final flush could not deliver. Together with Dropped it
	// makes loss exact: Shipped + Dropped + SpillDropped + ParseErrors ==
	// Captured.
	SpillDropped uint64
	// BreakerOpens counts circuit-breaker trips (resilience).
	BreakerOpens uint64
	// Resilience is the full shipper snapshot when Config.Resilience is set.
	Resilience *resilience.Stats
	// Workers breaks the user-space numbers down per drain worker.
	Workers []WorkerStats
	// Correlation is the result of the final correlation pass, when
	// AutoCorrelate is set.
	Correlation store.CorrelationResult
}

// DropFraction returns the share of captured events that were lost.
func (s Stats) DropFraction() float64 {
	if s.Captured == 0 {
		return 0
	}
	return float64(s.Dropped) / float64(s.Captured)
}

// Tracer is one DIO tracing session.
type Tracer struct {
	cfg  Config
	prog *ebpf.Program
	// backend is the ship target: cfg.Backend, or the resilience shipper
	// wrapped around it when Config.Resilience is set.
	backend store.Backend
	shipper *resilience.Shipper

	mu      sync.Mutex
	started bool
	stopped bool
	stop    chan struct{}
	wg      sync.WaitGroup

	workers   []*drainWorker
	batchPool sync.Pool // *[]event.Event, cap BatchSize
	errs      shipErrorList
	tm        coreTelemetry
}

// coreTelemetry holds the user-space stage's shared instruments. All fields
// are nil-safe no-ops when telemetry is disabled, so the drain loop guards
// only its time.Now() calls on the enabled flag.
type coreTelemetry struct {
	enabled     bool
	parsed      *telemetry.Counter
	parseErrors *telemetry.Counter
	shipped     *telemetry.Counter
	shipErrors  *telemetry.Counter
	flushes     *telemetry.Counter
	flushNS     *telemetry.Histogram
	flushWindow *metrics.WindowedRecorder
}

// drainWorker is one user-space consumer goroutine: it owns a subset of the
// per-CPU rings, a reusable batch buffer, and its own counters, so workers
// never contend with each other on the drain path.
type drainWorker struct {
	id    int
	rings []*ebpf.RingBuffer

	parsed      atomic.Uint64
	parseErrors atomic.Uint64
	shipped     atomic.Uint64
	requeued    atomic.Uint64
	shipErrors  atomic.Uint64
	flushes     atomic.Uint64

	// batchLen mirrors len(batch) at batch granularity so the telemetry
	// batch-pending gauge can observe drained-but-unflushed events without
	// sharing the worker-local batch slice.
	batchLen atomic.Int64

	// Per-worker latency histograms (nil when telemetry is disabled).
	tmDrainNS *telemetry.Histogram
	tmParseNS *telemetry.Histogram
}

// maxShipErrors bounds how many distinct ship errors are retained for Stop's
// report.
const maxShipErrors = 8

// shipErrorList retains the first maxShipErrors distinct ship errors instead
// of last-writer-wins, so Stop reports what actually went wrong over the
// session, not just the final failure.
type shipErrorList struct {
	mu      sync.Mutex
	seen    map[string]struct{}
	errs    []error
	omitted int
}

func (l *shipErrorList) add(err error) {
	if err == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seen == nil {
		l.seen = make(map[string]struct{})
	}
	key := err.Error()
	if _, dup := l.seen[key]; dup {
		return
	}
	if len(l.errs) >= maxShipErrors {
		l.omitted++
		return
	}
	l.seen[key] = struct{}{}
	l.errs = append(l.errs, err)
}

// err joins the retained errors (nil when none occurred).
func (l *shipErrorList) err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.errs) == 0 {
		return nil
	}
	joined := errors.Join(l.errs...)
	if l.omitted > 0 {
		return fmt.Errorf("%w\n(and %d more distinct errors omitted)", joined, l.omitted)
	}
	return joined
}

var (
	// ErrNoBackend reports a Config without a Backend.
	ErrNoBackend = errors.New("core: config requires a backend")
	// ErrNotStarted reports Stop before Start.
	ErrNotStarted = errors.New("core: tracer not started")
	// ErrAlreadyStarted reports a second Start.
	ErrAlreadyStarted = errors.New("core: tracer already started")
)

var sessionCounter atomic.Uint64

// NewTracer validates cfg and creates a tracer.
func NewTracer(cfg Config) (*Tracer, error) {
	if cfg.Backend == nil {
		return nil, ErrNoBackend
	}
	if cfg.SessionName == "" {
		cfg.SessionName = fmt.Sprintf("dio-%d-%d", time.Now().UnixNano(), sessionCounter.Add(1))
	}
	if cfg.Index == "" {
		cfg.Index = "dio-events"
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 512
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 10 * time.Millisecond
	}
	if !cfg.DisableTelemetry && cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	if cfg.DisableTelemetry {
		cfg.Telemetry = nil
	}
	t := &Tracer{cfg: cfg, backend: cfg.Backend}
	if tm := cfg.Telemetry; tm != nil {
		t.tm = coreTelemetry{
			enabled:     true,
			parsed:      tm.Counter(telemetry.MetricParsed, "records decoded by the drain workers"),
			parseErrors: tm.Counter(telemetry.MetricParseErrors, "corrupt records dropped by the parsers"),
			shipped:     tm.Counter(telemetry.MetricShipped, "events acked synchronously by the backend"),
			shipErrors:  tm.Counter(telemetry.MetricShipErrors, "failed bulk requests"),
			flushes:     tm.Counter(telemetry.MetricFlushes, "bulk requests issued"),
			flushNS:     tm.Histogram(telemetry.MetricFlushNS, "one bulk ship call", nil),
			flushWindow: tm.Window(telemetry.MetricFlushWindow, "windowed flush latency", int64(100*time.Millisecond)),
		}
	}
	if cfg.Resilience != nil {
		rcfg := *cfg.Resilience
		if rcfg.Telemetry == nil {
			rcfg.Telemetry = cfg.Telemetry
		}
		t.shipper = resilience.NewShipper(cfg.Backend, rcfg)
		t.backend = t.shipper
	}
	return t, nil
}

// Shipper exposes the resilience layer when configured (nil otherwise).
func (t *Tracer) Shipper() *resilience.Shipper { return t.shipper }

// Session returns the session name labeling this execution.
func (t *Tracer) Session() string { return t.cfg.SessionName }

// Index returns the backend index receiving this session's events.
func (t *Tracer) Index() string { return t.cfg.Index }

// Start attaches the kernel-side program to k and starts the asynchronous
// consumer.
func (t *Tracer) Start(k *kernel.Kernel) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		return ErrAlreadyStarted
	}
	t.started = true
	t.prog = ebpf.NewProgram(ebpf.ProgramConfig{
		Filter:       t.cfg.Filter,
		NumCPU:       t.cfg.NumCPU,
		RingBytes:    t.cfg.RingBytes,
		PerEventCost: t.cfg.PerEventCost,
		Telemetry:    t.cfg.Telemetry,
	})
	t.prog.Attach(k)
	t.stop = make(chan struct{})
	batchCap := t.cfg.BatchSize
	t.batchPool.New = func() any {
		s := make([]event.Event, 0, batchCap)
		return &s
	}

	// Partition the per-CPU rings across the drain workers round-robin.
	rings := t.prog.Rings().Rings()
	n := t.cfg.DrainWorkers
	if n <= 0 || n > len(rings) {
		n = len(rings)
	}
	t.workers = make([]*drainWorker, n)
	for i := range t.workers {
		w := &drainWorker{id: i}
		for r := i; r < len(rings); r += n {
			w.rings = append(w.rings, rings[r])
		}
		if tm := t.cfg.Telemetry; tm != nil {
			w.tmDrainNS = tm.Histogram(
				fmt.Sprintf("%s{worker=\"%d\"}", telemetry.MetricDrainNS, i),
				"one drain cycle (rings to batch)", nil)
			w.tmParseNS = tm.Histogram(
				fmt.Sprintf("%s{worker=\"%d\"}", telemetry.MetricParseNS, i),
				"decoding one raw read batch", nil)
		}
		t.workers[i] = w
	}
	if tm := t.cfg.Telemetry; tm != nil {
		workers := t.workers
		tm.GaugeFunc(telemetry.MetricBatchPending, "events drained but not yet flushed",
			func() float64 {
				var n int64
				for _, w := range workers {
					n += w.batchLen.Load()
				}
				return float64(n)
			})
	}
	t.wg.Add(len(t.workers))
	for _, w := range t.workers {
		go t.drain(w)
	}
	return nil
}

// Stop detaches the program, drains and ships remaining events, optionally
// runs correlation, and returns the session statistics.
func (t *Tracer) Stop() (Stats, error) {
	t.mu.Lock()
	if !t.started {
		t.mu.Unlock()
		return Stats{}, ErrNotStarted
	}
	if t.stopped {
		t.mu.Unlock()
		return t.statsLocked(), nil
	}
	t.stopped = true
	t.mu.Unlock()

	t.prog.Detach()
	close(t.stop)
	t.wg.Wait()

	// Final spill flush: replay everything the resilience layer parked, so
	// a backend that recovered gets the events and one that did not gets
	// exact drop accounting. Runs before correlation so the correlation
	// pass sees the replayed events.
	if t.shipper != nil {
		if ferr := t.shipper.Flush(); ferr != nil {
			t.errs.add(fmt.Errorf("final spill flush: %w", ferr))
		}
	}

	var res store.CorrelationResult
	var err error
	if t.cfg.AutoCorrelate {
		res, err = t.cfg.Backend.Correlate(context.Background(), t.cfg.Index, t.cfg.SessionName)
	}
	if err == nil {
		err = t.errs.err()
	}

	st := t.stats()
	st.Correlation = res
	return st, err
}

// Stats returns a snapshot of the session statistics.
func (t *Tracer) Stats() Stats { return t.stats() }

// TelemetryRegistry returns the tracer's self-accounting registry (nil when
// DisableTelemetry is set). Attach it to a store.Server with
// ExposeTelemetry to surface the tracer's metrics on GET /metrics alongside
// the backend's own.
func (t *Tracer) TelemetryRegistry() *telemetry.Registry { return t.cfg.Telemetry }

// Telemetry snapshots the pipeline's self-accounting: counters, gauges,
// histograms, and windowed latency series from every stage the tracer owns
// (ebpf rings, drain workers, and the resilience ladder when configured).
// Safe to call while tracing and after Stop.
func (t *Tracer) Telemetry() telemetry.Snapshot { return t.cfg.Telemetry.Snapshot() }

// Ledger derives the conservation ledger from the current telemetry
// snapshot. After Stop it must balance exactly:
//
//	Captured == Shipped + RingDropped + SpillDropped + ParseErrors
//
// Live, in-flight events appear in Ledger.Pending instead of vanishing.
func (t *Tracer) Ledger() telemetry.Ledger {
	return telemetry.LedgerFromSnapshot(t.Telemetry())
}

func (t *Tracer) stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.statsLocked()
}

func (t *Tracer) statsLocked() Stats {
	st := Stats{Session: t.cfg.SessionName}
	for _, w := range t.workers {
		ws := WorkerStats{
			Worker:      w.id,
			Rings:       len(w.rings),
			Parsed:      w.parsed.Load(),
			ParseErrors: w.parseErrors.Load(),
			Shipped:     w.shipped.Load(),
			Requeued:    w.requeued.Load(),
			ShipErrors:  w.shipErrors.Load(),
			Flushes:     w.flushes.Load(),
		}
		for _, r := range w.rings {
			ws.Dropped += r.Drops()
		}
		st.Parsed += ws.Parsed
		st.ParseErrors += ws.ParseErrors
		st.Shipped += ws.Shipped
		st.ShipErrors += ws.ShipErrors
		st.Workers = append(st.Workers, ws)
	}
	if t.prog != nil {
		st.Captured = t.prog.Captured()
		st.Filtered = t.prog.Filtered()
		st.Dropped = t.prog.Drops()
	}
	if t.shipper != nil {
		rs := t.shipper.Stats()
		// Workers count only batches acked synchronously; replays are
		// delivered (and counted once) by the shipper.
		st.Shipped += rs.Replayed
		st.Retries = rs.Retries
		st.Requeued = rs.Requeued
		st.Replayed = rs.Replayed
		st.SpillDropped = rs.SpillDropped
		st.BreakerOpens = rs.BreakerOpens
		st.Resilience = &rs
	}
	return st
}

// drain is one worker's loop: every FlushInterval it fetches binary records
// from its rings, parses them into typed events, and ships batches to the
// backend. Workers share nothing but the backend handle, so drain throughput
// scales with the number of rings when cores are available. Batch buffers
// come from a pool, the raw-record slice and the scratch Record are reused
// across reads, and no Document is materialized anywhere on this path —
// typed batches flow straight into the backend's typed bulk interface
// (degrading to documents only for doc-only backends).
func (t *Tracer) drain(w *drainWorker) {
	defer t.wg.Done()
	ticker := time.NewTicker(t.cfg.FlushInterval)
	defer ticker.Stop()

	batchp := t.batchPool.Get().(*[]event.Event)
	batch := (*batchp)[:0]
	var raws [][]byte
	var rec ebpf.Record

	tmOn := t.tm.enabled

	flush := func() {
		if len(batch) == 0 {
			return
		}
		w.flushes.Add(1)
		t.tm.flushes.Inc()
		var start time.Time
		if tmOn {
			start = time.Now()
		}
		err := store.ShipEvents(context.Background(), t.backend, t.cfg.Index, batch)
		if tmOn {
			d := float64(time.Since(start))
			t.tm.flushNS.Observe(d)
			t.tm.flushWindow.Record(start.UnixNano(), d)
		}
		switch {
		case err == nil:
			w.shipped.Add(uint64(len(batch)))
			t.tm.shipped.Add(uint64(len(batch)))
		case errors.Is(err, resilience.ErrSpilled):
			// The resilience layer parked the batch and owns its accounting
			// from here (replay or counted drop).
			w.requeued.Add(uint64(len(batch)))
		default:
			w.shipErrors.Add(1)
			t.tm.shipErrors.Inc()
			t.errs.add(fmt.Errorf("bulk ship: %w", err))
		}
		batch = batch[:0]
		w.batchLen.Store(0)
	}

	drainRings := func() {
		var drainStart time.Time
		if tmOn {
			drainStart = time.Now()
		}
		for _, ring := range w.rings {
			for {
				raws = ring.ReadBatchInto(raws[:0], t.cfg.BatchSize)
				if len(raws) == 0 {
					break
				}
				var parseStart time.Time
				if tmOn {
					parseStart = time.Now()
				}
				parsed, parseErrs := 0, 0
				for _, raw := range raws {
					if err := ebpf.UnmarshalInto(raw, &rec); err != nil {
						// Corrupt record: nothing to recover, but the loss
						// is counted so the accounting stays exact.
						w.parseErrors.Add(1)
						parseErrs++
						continue
					}
					w.parsed.Add(1)
					parsed++
					batch = append(batch, t.recordToEvent(&rec))
					if len(batch) >= t.cfg.BatchSize {
						w.batchLen.Store(int64(len(batch)))
						flush()
					}
				}
				if tmOn {
					w.tmParseNS.Observe(float64(time.Since(parseStart)))
					t.tm.parsed.Add(uint64(parsed))
					t.tm.parseErrors.Add(uint64(parseErrs))
					w.batchLen.Store(int64(len(batch)))
				}
			}
		}
		if tmOn {
			w.tmDrainNS.Observe(float64(time.Since(drainStart)))
		}
	}

	for {
		select {
		case <-t.stop:
			// Final drain: the program is detached, so the rings are quiescent.
			drainRings()
			flush()
			*batchp = batch[:0]
			t.batchPool.Put(batchp)
			return
		case <-ticker.C:
			drainRings()
			flush()
		}
	}
}

// recordToEvent converts a kernel record into the enriched event model.
func (t *Tracer) recordToEvent(r *ebpf.Record) event.Event {
	nr := kernel.Syscall(r.NR)
	ev := event.Event{
		Session:     t.cfg.SessionName,
		Syscall:     nr.String(),
		Class:       nr.Class().String(),
		RetVal:      r.Ret,
		FD:          int(r.FD),
		ArgPath:     r.Path,
		ArgPath2:    r.Path2,
		Count:       int(r.Count),
		ArgOff:      r.ArgOff,
		Whence:      int(r.Whence),
		Flags:       int(r.Flags),
		Mode:        r.Mode,
		AttrName:    r.AttrName,
		PID:         int(r.PID),
		TID:         int(r.TID),
		ProcName:    r.Comm,
		ThreadName:  r.TaskComm,
		TimeEnterNS: r.EnterNS,
		TimeExitNS:  r.ExitNS,
	}
	if r.HaveFile() {
		ev.FileTag = event.FileTag{Dev: r.Dev, Ino: r.Ino, BirthNS: r.BirthNS}
	}
	if r.HaveOffset() {
		ev.HasOffset = true
		ev.Offset = r.Offset
	}
	if r.Path != "" {
		ev.KernelPath = r.Path
	}
	if r.HaveFile() && r.FType != 0 {
		ev.FileType = kernel.FileType(r.FType).String()
	}
	return ev
}
