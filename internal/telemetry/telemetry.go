// Package telemetry is DIO's self-accounting layer: a stdlib-only metrics
// registry that every pipeline stage records into, so the tracer's own
// behavior — ring drops, drain latency, breaker state, spill depth, index
// latency — is observable live instead of only post-mortem through
// Tracer.Stop(). Recorder and uringscope ship the same kind of first-class
// tracer self-accounting; the paper's overhead/drop analysis (§III-E,
// Fig. 7) needs it to be reproducible at runtime.
//
// Hot paths are lock-free: counters and gauges are single atomic words,
// histogram observation is two atomic adds plus an atomic bucket increment.
// The registry mutex is taken only on metric registration (once per name)
// and on snapshot/exposition, never per event.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/dsrhaslab/dio-go/internal/metrics"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter is a
// valid no-op, so instrumented code can hold counters unconditionally and a
// disabled registry costs one predictable branch per record.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets are the histogram upper bounds used for latency
// metrics, in nanoseconds: roughly 1-2.5-5 per decade from 1µs to 10s.
var DefaultLatencyBuckets = []float64{
	1e3, 2.5e3, 5e3, // 1µs .. 5µs
	1e4, 2.5e4, 5e4, // 10µs .. 50µs
	1e5, 2.5e5, 5e5, // 100µs .. 500µs
	1e6, 2.5e6, 5e6, // 1ms .. 5ms
	1e7, 2.5e7, 5e7, // 10ms .. 50ms
	1e8, 2.5e8, 5e8, // 100ms .. 500ms
	1e9, 2.5e9, 5e9, // 1s .. 5s
	1e10, // 10s
}

// Histogram is a fixed-bucket histogram with a lock-free observe path. The
// bucket bounds are upper bounds (le semantics); observations above the last
// bound land in the implicit +Inf bucket. Sum is accumulated in integer
// units (callers observe nanoseconds), so there is no floating-point CAS
// loop on the hot path.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sum     atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search the bucket; bounds are ascending.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(v))
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] is the number of
	// observations in (Bounds[i-1], Bounds[i]]. Counts has one extra entry
	// for the +Inf bucket.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram counters. Buckets are read individually, so
// a snapshot taken during concurrent observation may be off by in-flight
// samples — fine for monitoring, exact at quiescence.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    float64(h.sum.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the containing bucket, the standard fixed-bucket estimator.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: the best point estimate is the last finite bound.
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		if c == 0 {
			return upper
		}
		return lower + (upper-lower)*(rank-float64(prev))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// metric is one registered entry; exactly one field is set.
type metric struct {
	counter   *Counter
	gauge     *Gauge
	gaugeFunc func() float64
	histogram *Histogram
	window    *metrics.WindowedRecorder
	help      string
}

// Registry is a named collection of metrics. Registration is idempotent per
// (name, kind): re-registering returns the existing metric, so independent
// components can share a registry without coordination. A nil *Registry is
// valid and hands out nil metrics, making telemetry free to disable.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) lookup(name string) *metric {
	m, ok := r.metrics[name]
	if !ok {
		m = &metric{}
		r.metrics[name] = m
		r.order = append(r.order, name)
	}
	return m
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name)
	if m.counter == nil {
		m.counter = &Counter{}
		m.help = help
	}
	return m.counter
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name)
	if m.gauge == nil {
		m.gauge = &Gauge{}
		m.help = help
	}
	return m.gauge
}

// GaugeFunc registers a pull-style gauge evaluated at snapshot time — the
// shape used for values that already exist as state elsewhere (spill depth,
// breaker position, shard imbalance) so the hot path pays nothing.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name)
	m.gaugeFunc = fn
	m.help = help
}

// Histogram returns the named histogram, registering it with bounds on
// first use (nil bounds selects DefaultLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name)
	if m.histogram == nil {
		m.histogram = newHistogram(bounds)
		m.help = help
	}
	return m.histogram
}

// Window returns the named windowed latency recorder (windowNS bucket
// width), registering it on first use. Windows feed the "DIO observing DIO"
// time-series dashboards; unlike histograms they keep raw samples, so they
// are reserved for batch-level (not per-event) observations.
func (r *Registry) Window(name, help string, windowNS int64) *metrics.WindowedRecorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name)
	if m.window == nil {
		m.window = metrics.NewWindowedRecorder(windowNS)
		m.help = help
	}
	return m.window
}

// Snapshot is a point-in-time copy of a registry: plain maps, safe to
// serialize, compare, and render after the pipeline has moved on.
type Snapshot struct {
	Counters   map[string]uint64                `json:"counters,omitempty"`
	Gauges     map[string]float64               `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot     `json:"histograms,omitempty"`
	Windows    map[string][]metrics.WindowPoint `json:"windows,omitempty"`
}

// Snapshot copies every metric's current value. GaugeFuncs are evaluated
// outside the registry lock is not needed — they are cheap reads — but they
// must not call back into the same registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
		Windows:    make(map[string][]metrics.WindowPoint),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, m := range r.metrics {
		switch {
		case m.counter != nil:
			s.Counters[name] = m.counter.Value()
		case m.gauge != nil:
			s.Gauges[name] = float64(m.gauge.Value())
		case m.gaugeFunc != nil:
			s.Gauges[name] = m.gaugeFunc()
		case m.histogram != nil:
			s.Histograms[name] = m.histogram.Snapshot()
		case m.window != nil:
			s.Windows[name] = m.window.Series()
		}
	}
	return s
}

// WriteText renders the registry in the Prometheus text exposition format
// (counters/gauges/histograms; windows are snapshot-only). Metrics are
// emitted in registration order with names sorted within a write for
// deterministic output across runs.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	lookup := make(map[string]*metric, len(names))
	for _, n := range names {
		lookup[n] = r.metrics[n]
	}
	r.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		m := lookup[name]
		if err := writeMetricText(w, name, m); err != nil {
			return err
		}
	}
	return nil
}

func writeMetricText(w io.Writer, name string, m *metric) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	base, labels := splitLabels(name)
	if m.help != "" {
		p("# HELP %s %s\n", base, m.help)
	}
	switch {
	case m.counter != nil:
		p("# TYPE %s counter\n%s %d\n", base, name, m.counter.Value())
	case m.gauge != nil:
		p("# TYPE %s gauge\n%s %d\n", base, name, m.gauge.Value())
	case m.gaugeFunc != nil:
		p("# TYPE %s gauge\n%s %g\n", base, name, m.gaugeFunc())
	case m.histogram != nil:
		s := m.histogram.Snapshot()
		p("# TYPE %s histogram\n", base)
		var cum uint64
		for i, b := range s.Bounds {
			cum += s.Counts[i]
			p("%s %d\n", labeledName(base, labels, fmt.Sprintf("%g", b)), cum)
		}
		cum += s.Counts[len(s.Bounds)]
		p("%s %d\n", labeledName(base, labels, "+Inf"), cum)
		p("%s_sum%s %g\n%s_count%s %d\n", base, labels, s.Sum, base, labels, s.Count)
	}
	return err
}

// splitLabels separates a registered name like `dio_store_docs{index="x"}`
// into base name and label block (labels may be empty).
func splitLabels(name string) (base, labels string) {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i], name[i:]
		}
	}
	return name, ""
}

// labeledName renders a histogram bucket line name with the le label merged
// into any existing label block.
func labeledName(base, labels, le string) string {
	if labels == "" {
		return fmt.Sprintf("%s_bucket{le=%q}", base, le)
	}
	// labels is `{k="v",...}`; splice le before the closing brace.
	return fmt.Sprintf("%s_bucket%s,le=%q}", base, labels[:len(labels)-1], le)
}

// WriteText renders a snapshot in the same text format (counters, gauges,
// and histograms), for callers that hold a Snapshot rather than a live
// Registry.
func (s Snapshot) WriteText(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		base, _ := splitLabels(name)
		p("# TYPE %s counter\n%s %d\n", base, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		base, _ := splitLabels(name)
		p("# TYPE %s gauge\n%s %g\n", base, name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		base, labels := splitLabels(name)
		h := s.Histograms[name]
		p("# TYPE %s histogram\n", base)
		var cum uint64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			p("%s %d\n", labeledName(base, labels, fmt.Sprintf("%g", b)), cum)
		}
		cum += h.Counts[len(h.Bounds)]
		p("%s %d\n", labeledName(base, labels, "+Inf"), cum)
		p("%s_sum%s %g\n%s_count%s %d\n", base, labels, h.Sum, base, labels, h.Count)
	}
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
