package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// Nil metrics and a nil registry must be usable no-ops: this is how
	// DisableTelemetry makes instrumentation free.
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(42)

	var r *Registry
	if r.Counter("x", "") != nil || r.Histogram("x", "", nil) != nil || r.Window("x", "", 1) != nil {
		t.Fatal("nil registry handed out live metrics")
	}
	r.GaugeFunc("x", "", func() float64 { return 1 })
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dio_test_total", "help")
	b := r.Counter("dio_test_total", "other help ignored")
	if a != b {
		t.Fatal("re-registering a counter returned a different instance")
	}
	h1 := r.Histogram("dio_test_ns", "", nil)
	h2 := r.Histogram("dio_test_ns", "", []float64{1, 2, 3})
	if h1 != h2 {
		t.Fatal("re-registering a histogram returned a different instance")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30})
	for i := 0; i < 10; i++ {
		h.Observe(5) // bucket le=10
	}
	for i := 0; i < 10; i++ {
		h.Observe(15) // bucket le=20
	}
	h.Observe(1e9) // +Inf bucket
	s := h.Snapshot()
	if s.Count != 21 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Quantile(0.5); got < 10 || got > 20 {
		t.Fatalf("p50 = %g, want within (10, 20]", got)
	}
	// The +Inf bucket is estimated at the last finite bound.
	if got := s.Quantile(0.999); got != 30 {
		t.Fatalf("p99.9 = %g, want 30", got)
	}
	wantMean := (10*5 + 10*15 + 1e9) / 21.0
	if got := s.Mean(); math.Abs(got-wantMean) > 1 {
		t.Fatalf("mean = %g, want ~%g", got, wantMean)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var s HistogramSnapshot
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty snapshot quantile/mean not zero")
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("dio_x_total", "things").Add(7)
	r.GaugeFunc("dio_depth", "queue depth", func() float64 { return 3 })
	r.Histogram("dio_lat_ns", "latency", []float64{100, 200}).Observe(150)
	r.Histogram(`dio_lab_ns{worker="0"}`, "labeled", []float64{100}).Observe(50)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE dio_x_total counter",
		"dio_x_total 7",
		"dio_depth 3",
		`dio_lat_ns_bucket{le="100"} 0`,
		`dio_lat_ns_bucket{le="200"} 1`,
		`dio_lat_ns_bucket{le="+Inf"} 1`,
		"dio_lat_ns_count 1",
		`dio_lab_ns_bucket{worker="0",le="100"} 1`,
		`dio_lab_ns_sum{worker="0"} 50`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Snapshot exposition agrees on the same lines.
	var sb2 strings.Builder
	if err := r.Snapshot().WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), "dio_x_total 7") {
		t.Fatalf("snapshot exposition missing counter:\n%s", sb2.String())
	}
}

func TestLedgerFromSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricCaptured, "").Add(100)
	r.Counter(MetricShipped, "").Add(80)
	r.Counter(MetricReplayed, "").Add(5)
	r.Counter(MetricRingDropped, "").Add(7)
	r.Counter(MetricSpillDropped, "").Add(3)
	r.Counter(MetricParseErrors, "").Add(1)
	r.GaugeFunc(MetricSpillPending, "", func() float64 { return 4 })

	l := LedgerFromSnapshot(r.Snapshot())
	if l.Shipped != 85 {
		t.Fatalf("shipped = %d, want sync+replayed = 85", l.Shipped)
	}
	if l.Accounted() != 85+7+3+1+4 {
		t.Fatalf("accounted = %d", l.Accounted())
	}
	if !l.Balanced() || l.Outstanding() != 0 {
		t.Fatalf("ledger should balance: %+v", l)
	}
	r.Counter(MetricCaptured, "").Add(10)
	l = LedgerFromSnapshot(r.Snapshot())
	if l.Balanced() || l.Outstanding() != 10 {
		t.Fatalf("outstanding = %d, want 10", l.Outstanding())
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines that
// race registration (same and distinct names), recording, and snapshotting.
// Run under -race this is the telemetry stress test the satellite asks for.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("dio_shared_total", "").Inc()
				r.Counter("dio_mine_total", "").Add(1)
				r.Histogram("dio_shared_ns", "", nil).Observe(float64(i))
				r.Gauge("dio_depth", "").Set(int64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
					_ = r.WriteText(&strings.Builder{})
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["dio_shared_total"]; got != goroutines*iters {
		t.Fatalf("shared counter = %d, want %d", got, goroutines*iters)
	}
	if got := s.Histograms["dio_shared_ns"].Count; got != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*iters)
	}
}
