package telemetry

// Canonical metric names for the tracing pipeline. The five stages record
// under these names so the conservation ledger can be computed from any
// snapshot without knowing which component produced it. Names follow the
// Prometheus convention: `dio_<stage>_<what>_<unit>`.
const (
	// internal/ebpf — kernel-side program and per-CPU rings.
	MetricCaptured     = "dio_ebpf_captured_total"      // events accepted by kernel-side filters
	MetricFiltered     = "dio_ebpf_filtered_total"      // events rejected in kernel space
	MetricRingProduced = "dio_ebpf_ring_produced_total" // records written to a ring
	MetricRingDropped  = "dio_ebpf_ring_dropped_total"  // records lost to full rings
	MetricRingPending  = "dio_ebpf_ring_pending"        // records currently queued in rings

	// internal/core — user-space drain workers.
	MetricParsed       = "dio_core_parsed_total"       // records decoded
	MetricParseErrors  = "dio_core_parse_errors_total" // corrupt records dropped
	MetricShipped      = "dio_core_shipped_total"      // events acked synchronously by the backend
	MetricShipErrors   = "dio_core_ship_errors_total"  // failed bulk requests
	MetricFlushes      = "dio_core_flushes_total"      // bulk requests issued
	MetricBatchPending = "dio_core_batch_pending"      // events drained but not yet flushed
	MetricDrainNS      = "dio_core_drain_ns"           // one drain cycle (rings -> batch)
	MetricParseNS      = "dio_core_parse_batch_ns"     // decoding one raw read batch
	MetricFlushNS      = "dio_core_flush_ns"           // one bulk ship call
	MetricFlushWindow  = "dio_core_flush_window_ns"    // windowed flush latency (self-dashboard)

	// internal/resilience — retry / breaker / spill ladder.
	MetricShipAttempts  = "dio_resilience_attempts_total"      // delivery attempts, first tries included
	MetricRetries       = "dio_resilience_retries_total"       // attempts beyond each batch's first
	MetricBackoffNS     = "dio_resilience_backoff_ns"          // backoff delays slept
	MetricRequeued      = "dio_resilience_requeued_total"      // events parked in the spill queue
	MetricReplayed      = "dio_resilience_replayed_total"      // spilled events later delivered
	MetricSpillDropped  = "dio_resilience_spill_dropped_total" // events dropped with accounting
	MetricSpillPending  = "dio_resilience_spill_pending"       // events currently parked
	MetricBreakerOpens  = "dio_resilience_breaker_opens_total" // breaker trips
	MetricBreakerCloses = "dio_resilience_breaker_closes_total"
	MetricBreakerState  = "dio_resilience_breaker_state" // 0 closed, 1 open, 2 half-open

	// internal/store — backend indexing and query path.
	MetricBulkNS         = "dio_store_bulk_ns"   // one bulk indexing call
	MetricSearchNS       = "dio_store_search_ns" // one search
	MetricCountNS        = "dio_store_count_ns"  // one count
	MetricUpdateNS       = "dio_store_update_by_query_ns"
	MetricBulkDocs       = "dio_store_bulk_docs_total"
	MetricSearches       = "dio_store_searches_total"
	MetricDocs           = "dio_store_docs"            // live docs per index (gauge, labeled)
	MetricShardImbalance = "dio_store_shard_imbalance" // max/mean shard doc count across indices

	// internal/store — read-path acceleration (query cache + rollups).
	MetricQueryCacheHits      = "dio_store_query_cache_hits_total"      // searches answered from cache
	MetricQueryCacheMisses    = "dio_store_query_cache_misses_total"    // searches that ran and were cached
	MetricQueryCacheEvictions = "dio_store_query_cache_evictions_total" // entries dropped (LRU or stale)
	MetricQueryCacheEntries   = "dio_store_query_cache_entries"         // live cache entries (gauge)
	MetricRollupAggHits       = "dio_store_rollup_agg_hits_total"       // aggs served from rollup partials
	MetricRollupAggMisses     = "dio_store_rollup_agg_misses_total"     // aggs that fell back to shard scans
	MetricRollupRebuilds      = "dio_store_rollup_rebuilds_total"       // rollups rebuilt after invalidation

	// internal/store + internal/durable — the durability layer. The
	// recovery counters close their own conservation invariant: after
	// recovery, an index's live doc count equals the committed segment's
	// rows plus the rows of every replayed WAL batch (rewrite records
	// change rows in place and add none).
	MetricWALAppendNS     = "dio_wal_append_ns"               // one WAL record append
	MetricWALFsyncNS      = "dio_wal_fsync_ns"                // one WAL fsync
	MetricWALAppends      = "dio_wal_appends_total"           // WAL records appended
	MetricWALBytes        = "dio_wal_bytes_total"             // WAL bytes appended
	MetricWALFsyncs       = "dio_wal_fsyncs_total"            // WAL fsyncs issued
	MetricSegments        = "dio_store_segments"              // live committed segments (gauge)
	MetricSegmentsOpened  = "dio_store_segments_opened_total" // cold segments opened by time-bounded queries
	MetricSegmentsPruned  = "dio_store_segments_pruned_total" // cold segments skipped by time-range pruning
	MetricCompactions     = "dio_store_compactions_total"     // segment merges committed
	MetricRetentionDrops  = "dio_store_retention_drops_total" // segments dropped past the retention horizon
	MetricSnapshots       = "dio_store_snapshots_total"       // segment snapshots committed
	MetricSnapshotNS      = "dio_store_snapshot_ns"           // one segment snapshot
	MetricRecoveryNS      = "dio_store_recovery_ns"           // one index recovery
	MetricReplayedBatches = "dio_store_replayed_batches_total"
	MetricReplayedEvents  = "dio_store_replayed_events_total"
	MetricWALTornTails    = "dio_store_wal_torn_tails_total"

	// internal/store + internal/repl — primary/follower replication.
	MetricReplRole         = "dio_repl_role"                  // 0 primary, 1 follower
	MetricReplShippedRecs  = "dio_repl_shipped_records_total" // WAL records pushed to followers
	MetricReplShippedBytes = "dio_repl_shipped_bytes_total"   // payload bytes pushed to followers
	MetricReplPushes       = "dio_repl_pushes_total"          // push calls issued (bootstraps included)
	MetricReplPushRetries  = "dio_repl_push_retries_total"    // push attempts beyond each call's first
	MetricReplPushNS       = "dio_repl_push_ns"               // one push call (ship + follower apply)
	MetricReplBootstraps   = "dio_repl_bootstraps_total"      // full-state bootstraps shipped
	MetricReplLag          = "dio_repl_lag_records"           // primary head - follower acked, summed
	MetricReplAppliedRecs  = "dio_repl_applied_records_total" // frames applied on this follower
	MetricReplApplyNS      = "dio_repl_apply_ns"              // one follower frame-batch apply
	MetricReplSeqRejects   = "dio_repl_seq_rejects_total"     // out-of-sequence pushes rejected

	// internal/store/correlate.go — the correlation algorithm.
	MetricCorrelateRuns       = "dio_correlate_runs_total"
	MetricCorrelateNS         = "dio_correlate_ns"
	MetricCorrelateTags       = "dio_correlate_tags_resolved_total"
	MetricCorrelateUpdated    = "dio_correlate_events_updated_total"
	MetricCorrelateUnresolved = "dio_correlate_events_unresolved_total"
)

// Ledger is the pipeline's conservation accounting, computed from a
// snapshot. At quiescence (after Tracer.Stop) it must close exactly:
//
//	Captured == Shipped + RingDropped + SpillDropped + ParseErrors
//
// Live, events in flight sit in the Pending terms (ring queues, drained
// batches, spill queue), so Balanced() checks the ledger with Pending
// included; once the pipeline drains, Pending is zero and the closed-form
// invariant of DESIGN.md §8 holds.
type Ledger struct {
	Captured     uint64 `json:"captured"`
	Shipped      uint64 `json:"shipped"` // synchronous acks + replays
	RingDropped  uint64 `json:"ring_dropped"`
	SpillDropped uint64 `json:"spill_dropped"`
	ParseErrors  uint64 `json:"parse_errors"`
	// Pending is the in-flight population: ring queues + drained-not-flushed
	// batches + the spill queue.
	Pending uint64 `json:"pending"`
}

// LedgerFromSnapshot derives the conservation ledger from a snapshot's
// canonical counters and gauges.
func LedgerFromSnapshot(s Snapshot) Ledger {
	g := func(name string) uint64 {
		v := s.Gauges[name]
		if v < 0 {
			return 0
		}
		return uint64(v)
	}
	return Ledger{
		Captured:     s.Counters[MetricCaptured],
		Shipped:      s.Counters[MetricShipped] + s.Counters[MetricReplayed],
		RingDropped:  s.Counters[MetricRingDropped],
		SpillDropped: s.Counters[MetricSpillDropped],
		ParseErrors:  s.Counters[MetricParseErrors],
		Pending:      g(MetricRingPending) + g(MetricBatchPending) + g(MetricSpillPending),
	}
}

// Accounted is the sum of the right-hand side: every event the pipeline can
// name a fate for.
func (l Ledger) Accounted() uint64 {
	return l.Shipped + l.RingDropped + l.SpillDropped + l.ParseErrors + l.Pending
}

// Balanced reports whether the ledger closes. Exact at quiescence; live
// snapshots may transiently disagree by events between two counter updates
// (an event popped from a ring but not yet counted as parsed).
func (l Ledger) Balanced() bool { return l.Accounted() == l.Captured }

// Outstanding returns Captured - Accounted (0 when balanced or ahead).
func (l Ledger) Outstanding() int64 {
	return int64(l.Captured) - int64(l.Accounted())
}
