package metrics

import (
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	s := Summarize(vals)
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 != 50 || s.P99 != 99 || s.P90 != 90 || s.P95 != 95 {
		t.Fatalf("percentiles = %+v", s)
	}
	if s.Mean != 50.5 {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	vals := []float64{3, 1, 2}
	Summarize(vals)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatalf("input mutated: %v", vals)
	}
}

func TestPercentileEdges(t *testing.T) {
	sorted := []float64{10, 20, 30}
	if got := Percentile(sorted, 0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(sorted, 100); got != 30 {
		t.Fatalf("p100 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("p50 of empty not NaN")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		sort.Float64s(vals)
		prev := math.Inf(-1)
		for pct := 0.0; pct <= 100; pct += 5 {
			p := Percentile(vals, pct)
			if p < prev {
				return false
			}
			prev = p
		}
		return Percentile(vals, 0) == vals[0] && Percentile(vals, 100) == vals[len(vals)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowedRecorderSeries(t *testing.T) {
	w := NewWindowedRecorder(100)
	for i := int64(0); i < 10; i++ {
		w.Record(i*10, float64(i)) // all in window 0
	}
	w.Record(150, 42) // window 100
	w.Record(990, 7)  // window 900

	series := w.Series()
	if len(series) != 3 {
		t.Fatalf("series = %+v", series)
	}
	if series[0].StartNS != 0 || series[0].Count != 10 {
		t.Fatalf("window 0 = %+v", series[0])
	}
	if series[1].StartNS != 100 || series[1].P99 != 42 {
		t.Fatalf("window 100 = %+v", series[1])
	}
	if series[2].StartNS != 900 || series[2].Max != 7 {
		t.Fatalf("window 900 = %+v", series[2])
	}
	if w.TotalCount() != 12 {
		t.Fatalf("total = %d", w.TotalCount())
	}
	if got := len(w.AllValues()); got != 12 {
		t.Fatalf("all values = %d", got)
	}
}

func TestWindowedRecorderConcurrent(t *testing.T) {
	w := NewWindowedRecorder(1000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				w.Record(int64(i*10), float64(g))
			}
		}(g)
	}
	wg.Wait()
	if w.TotalCount() != 4000 {
		t.Fatalf("total = %d", w.TotalCount())
	}
}

func TestWindowedRecorderDegenerateWindow(t *testing.T) {
	w := NewWindowedRecorder(0) // coerced to 1
	w.Record(5, 1)
	if len(w.Series()) != 1 {
		t.Fatal("series empty")
	}
}
