// Package metrics provides the latency accounting used by the benchmark
// harness: percentile summaries and windowed time series (the paper's
// Fig. 3 plots the 99th percentile of client request latency over time).
package metrics

import (
	"math"
	"sort"
	"sync"
)

// Summary holds order statistics of a sample.
type Summary struct {
	Count int
	Min   float64
	Max   float64
	Mean  float64
	P50   float64
	P90   float64
	P95   float64
	P99   float64
}

// Summarize computes a Summary. The input slice is not modified.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		Count: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		Mean:  sum / float64(len(sorted)),
		P50:   Percentile(sorted, 50),
		P90:   Percentile(sorted, 90),
		P95:   Percentile(sorted, 95),
		P99:   Percentile(sorted, 99),
	}
}

// Percentile returns the pct-th percentile of an ascending-sorted sample,
// using the nearest-rank method.
func Percentile(sorted []float64, pct float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if pct <= 0 {
		return sorted[0]
	}
	if pct >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(pct / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// WindowPoint is one bucket of a windowed latency series.
type WindowPoint struct {
	StartNS int64
	Count   int
	Mean    float64
	P50     float64
	P99     float64
	Max     float64
}

// WindowedRecorder collects (timestamp, latency) samples and produces a
// fixed-interval percentile series. It is safe for concurrent use by many
// client threads.
type WindowedRecorder struct {
	mu       sync.Mutex
	windowNS int64
	samples  map[int64][]float64
}

// NewWindowedRecorder creates a recorder with the given window width.
func NewWindowedRecorder(windowNS int64) *WindowedRecorder {
	if windowNS <= 0 {
		windowNS = 1
	}
	return &WindowedRecorder{
		windowNS: windowNS,
		samples:  make(map[int64][]float64),
	}
}

// Record adds one sample observed at tsNS.
func (w *WindowedRecorder) Record(tsNS int64, value float64) {
	bucket := tsNS / w.windowNS * w.windowNS
	w.mu.Lock()
	w.samples[bucket] = append(w.samples[bucket], value)
	w.mu.Unlock()
}

// TotalCount returns the number of recorded samples.
func (w *WindowedRecorder) TotalCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, s := range w.samples {
		n += len(s)
	}
	return n
}

// Series returns the ordered windowed percentile series.
func (w *WindowedRecorder) Series() []WindowPoint {
	w.mu.Lock()
	defer w.mu.Unlock()
	keys := make([]int64, 0, len(w.samples))
	for k := range w.samples {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]WindowPoint, 0, len(keys))
	for _, k := range keys {
		s := append([]float64(nil), w.samples[k]...)
		sort.Float64s(s)
		var sum float64
		for _, v := range s {
			sum += v
		}
		out = append(out, WindowPoint{
			StartNS: k,
			Count:   len(s),
			Mean:    sum / float64(len(s)),
			P50:     Percentile(s, 50),
			P99:     Percentile(s, 99),
			Max:     s[len(s)-1],
		})
	}
	return out
}

// AllValues returns every recorded sample (unordered across windows).
func (w *WindowedRecorder) AllValues() []float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []float64
	for _, s := range w.samples {
		out = append(out, s...)
	}
	return out
}
