// Package cluster lifts the store's intra-node shard fan-out one level up: a
// thin coordinator stripes an index's rows across N diod nodes and routes the
// full v1 surface — bulk writes hashed to their owner partitions, searches
// scattered to every partition and gathered through the SAME merge layer the
// shard fan-out reduces through one level down (store/merge.go, DESIGN.md
// §16).
//
// Partitioning is row-level round-robin: cluster-global row g lives on
// partition p = g mod P at node-local row id l = (g-p)/P, and maps back as
// g = l*P + p. Because (l, p) lexicographic order equals global row order,
// a P-node cluster and a 1-node store holding the same ingest return
// byte-identical responses for every search, count, and aggregation — the
// differential tests pin exactly that.
//
// The coordinator holds no durable state of its own. Its one piece of
// arithmetic — the next cluster-global row id per index — is seeded lazily
// from the sum of the partitions' Rows counters (which WAL replay and
// follower bootstrap both restore), and dropped for re-derivation whenever a
// striped bulk fails partway: after such a seam the per-partition row sets
// are no longer exactly {g : g mod P == p}, which degrades nothing but the
// tie order of rows ingested across the seam (counts, aggregations, and
// filter results stay exact; the synthetic l*P+p order remains total and
// deterministic).
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/resilience"
	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// Node is one partition's backend: the slice of the store surface the
// coordinator routes through. HTTP deployments satisfy it with NewHTTPNode
// (a FailoverClient over the partition's primary and followers); the
// in-process test harness satisfies it with fake nodes over *store.Store.
type Node interface {
	// Target names the node for health reports and error messages.
	Target() string
	Bulk(ctx context.Context, index string, docs []store.Document) error
	BulkEvents(ctx context.Context, index string, events []event.Event) error
	// BulkFrame forwards an already-encoded binary event frame verbatim.
	BulkFrame(ctx context.Context, index string, frame []byte) error
	Scatter(ctx context.Context, index string, sreq store.ScatterRequest) (store.ScatterResponse, error)
	Count(ctx context.Context, index string, q store.Query) (int, error)
	Stats(ctx context.Context, index string) (store.IndexStats, error)
	ListIndices(ctx context.Context) ([]string, error)
	DeleteIndex(ctx context.Context, index string) error
	Health(ctx context.Context) (store.HealthStatus, error)
}

// ErrIndexNotFound marks a per-node "index not found": node adapters
// translate their transport's encoding (HTTP 404, a nil GetIndex) into it so
// the coordinator can tell "this partition owns no rows of the index yet"
// (treated as empty) from a real failure (never treated as empty).
var ErrIndexNotFound = errors.New("cluster: index not found on node")

// ErrNodeUnavailable is returned without touching the wire when a
// partition's circuit breaker is open: the node failed repeatedly and the
// cooldown has not elapsed.
var ErrNodeUnavailable = errors.New("cluster: partition node unavailable (circuit open)")

// Machine-readable reasons the coordinator's 501 responses carry, one per
// operation that does not route across partitions.
const (
	// ReasonClusterCorrelate is the reason for correlation requests.
	ReasonClusterCorrelate = "cluster_correlation_unsupported"
	// ReasonClusterDiagnose is the reason for diagnosis-engine requests.
	ReasonClusterDiagnose = "cluster_diagnose_unsupported"
	// ReasonClusterDFG is the reason for DFG-build requests.
	ReasonClusterDFG = "cluster_dfg_unsupported"
	// ReasonClusterDiff is the reason for session-diff requests.
	ReasonClusterDiff = "cluster_diff_unsupported"
)

// ErrNotRoutable is the typed refusal for operations that need one node's
// totally-ordered view of a session and therefore do not route across
// partitions. The HTTP layer maps it to 501 with the machine-readable
// Reason in the body, so clients dispatch on the reason rather than
// parsing prose. Well-known instances below are stable sentinel values:
// errors.Is against them keeps working as it did when they were plain
// errors.
type ErrNotRoutable struct {
	// Op is the API operation refused ("_correlate", "_diagnose", …).
	Op string
	// Reason is the machine-readable reason code of the 501 body.
	Reason string
	msg    string
}

// Error implements error.
func (e *ErrNotRoutable) Error() string { return e.msg }

// Typed refusals for the non-routable operations.
var (
	// ErrCorrelateUnsupported rejects correlation through the coordinator:
	// the pass anchors open/openat events to later tagged events by
	// scanning rows in order, and with rows striped across partitions an
	// anchor and its dependents may live on different nodes — a per-node
	// pass would resolve paths wrongly rather than partially. Run
	// correlation before ingest (dio trace does) or against a single node.
	ErrCorrelateUnsupported = &ErrNotRoutable{
		Op: "_correlate", Reason: ReasonClusterCorrelate,
		msg: "cluster: correlation is not supported across partitions: open/tag anchor pairs may span nodes",
	}
	// ErrDiagnoseUnsupported, ErrDFGUnsupported, and ErrDiffUnsupported
	// reject the diagnosis endpoints for the same structural reason: the
	// engine streams a session in total time order with per-thread state,
	// and striped rows would hand every partition a gapped stream. Run
	// them against the node (or single store) holding the session.
	ErrDiagnoseUnsupported = &ErrNotRoutable{
		Op: "_diagnose", Reason: ReasonClusterDiagnose,
		msg: "cluster: diagnosis is not supported across partitions: the engine needs one node's ordered session stream",
	}
	ErrDFGUnsupported = &ErrNotRoutable{
		Op: "_dfg", Reason: ReasonClusterDFG,
		msg: "cluster: DFG builds are not supported across partitions: directly-follows edges would span nodes",
	}
	ErrDiffUnsupported = &ErrNotRoutable{
		Op: "_diff", Reason: ReasonClusterDiff,
		msg: "cluster: session diffs are not supported across partitions: both sessions' streams are striped",
	}
)

// Config tunes the coordinator's resilience ladder.
type Config struct {
	// BreakerThreshold is the consecutive-failure count that opens a
	// partition's circuit (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects calls before
	// admitting a probe (default 5s).
	BreakerCooldown time.Duration
	// Clock drives breaker cooldowns; tests inject a virtual clock. Defaults
	// to the real clock.
	Clock clock.Clock
	// Registry receives the coordinator's routing/fan-out/lag counters; one
	// is created if nil (exposed at GET /metrics either way).
	Registry *telemetry.Registry
}

// clusterIndex is the coordinator's only per-index state: the next
// cluster-global row id, guarded by a mutex held across reserve AND the
// striped posts so concurrent bulks cannot interleave their per-node appends
// (node-local append order must follow global row order).
type clusterIndex struct {
	mu     sync.Mutex
	next   int64
	seeded bool
}

// Coordinator routes the v1 surface across partition nodes. nodes[p] owns
// partition p of len(nodes).
type Coordinator struct {
	nodes    []Node
	breakers []*resilience.Breaker
	reg      *telemetry.Registry

	mu      sync.Mutex
	indices map[string]*clusterIndex

	fanouts   *telemetry.Counter
	routed    *telemetry.Counter
	bulkFails *telemetry.Counter
	seeds     *telemetry.Counter
	nodeCalls []*telemetry.Counter
	nodeErrs  []*telemetry.Counter
}

// New builds a coordinator over the given partition nodes (nodes[p] owns
// partition p). At least one node is required; a 1-node coordinator is a
// transparent proxy whose row ids coincide with the node's own.
func New(cfg Config, nodes ...Node) (*Coordinator, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: at least one node required")
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal(0)
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	co := &Coordinator{
		nodes:   nodes,
		reg:     cfg.Registry,
		indices: make(map[string]*clusterIndex),
		fanouts: cfg.Registry.Counter("dio_cluster_fanouts_total",
			"Scatter fan-outs issued across partition nodes."),
		routed: cfg.Registry.Counter("dio_cluster_routed_rows_total",
			"Rows striped to their owner partitions by bulk routing."),
		bulkFails: cfg.Registry.Counter("dio_cluster_bulk_partial_failures_total",
			"Striped bulks that failed on at least one partition (row counter reseeds afterwards)."),
		seeds: cfg.Registry.Counter("dio_cluster_counter_seeds_total",
			"Row-counter seedings from the partitions' Rows sums (first write and after partial failures)."),
	}
	for p := range nodes {
		co.breakers = append(co.breakers,
			resilience.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock))
		co.nodeCalls = append(co.nodeCalls, cfg.Registry.Counter(
			fmt.Sprintf("dio_cluster_node%d_calls_total", p),
			fmt.Sprintf("Requests routed to partition %d (%s).", p, nodes[p].Target())))
		co.nodeErrs = append(co.nodeErrs, cfg.Registry.Counter(
			fmt.Sprintf("dio_cluster_node%d_errors_total", p),
			fmt.Sprintf("Failed or breaker-rejected requests for partition %d (%s).", p, nodes[p].Target())))
		br := co.breakers[p]
		cfg.Registry.GaugeFunc(fmt.Sprintf("dio_cluster_node%d_breaker_open", p),
			fmt.Sprintf("1 when partition %d's circuit is open.", p),
			func() float64 {
				if br.State() == resilience.BreakerOpen {
					return 1
				}
				return 0
			})
	}
	return co, nil
}

// Partitions returns the partition count (the node count).
func (co *Coordinator) Partitions() int { return len(co.nodes) }

// Telemetry exposes the coordinator's registry for GET /metrics.
func (co *Coordinator) Telemetry() *telemetry.Registry { return co.reg }

// BreakerState reports partition p's circuit position (health reports).
func (co *Coordinator) BreakerState(p int) resilience.BreakerState {
	return co.breakers[p].State()
}

// breakerWorthy reports whether err should count against a node's circuit:
// transport failures and 5xx do; client errors (bad cursor, missing index)
// and caller-side cancellation say nothing about the node's liveness.
func breakerWorthy(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrIndexNotFound) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var he *store.HTTPError
	if errors.As(err, &he) {
		return he.Status >= 500
	}
	return true
}

// call runs op against partition p under its circuit breaker, tagging errors
// with the partition and target so a scatter failure names its node.
func (co *Coordinator) call(ctx context.Context, p int, op func(Node) error) error {
	br := co.breakers[p]
	if !br.Allow() {
		co.nodeErrs[p].Inc()
		return fmt.Errorf("cluster: partition %d (%s): %w", p, co.nodes[p].Target(), ErrNodeUnavailable)
	}
	co.nodeCalls[p].Inc()
	err := op(co.nodes[p])
	if breakerWorthy(err) {
		br.RecordFailure()
		co.nodeErrs[p].Inc()
	} else {
		br.RecordSuccess()
	}
	if err != nil && !errors.Is(err, ErrIndexNotFound) {
		return fmt.Errorf("cluster: partition %d (%s): %w", p, co.nodes[p].Target(), err)
	}
	return err
}

// index returns (creating if needed) the per-index routing state.
func (co *Coordinator) index(name string) *clusterIndex {
	co.mu.Lock()
	defer co.mu.Unlock()
	ci := co.indices[name]
	if ci == nil {
		ci = &clusterIndex{}
		co.indices[name] = ci
	}
	return ci
}

// seedLocked derives the next cluster-global row id from the partitions'
// Rows counters (rows ever placed, unshrunk by retention — restored by WAL
// replay and follower bootstrap, so the figure survives node restarts and
// failovers). Caller holds ci.mu. A partition without the index contributes
// zero; any other per-node failure aborts the write that needed the seed.
func (co *Coordinator) seedLocked(ctx context.Context, name string, ci *clusterIndex) error {
	if ci.seeded {
		return nil
	}
	var total int64
	for p := range co.nodes {
		var st store.IndexStats
		err := co.call(ctx, p, func(n Node) error {
			var e error
			st, e = n.Stats(ctx, name)
			return e
		})
		if err != nil {
			if errors.Is(err, ErrIndexNotFound) {
				continue
			}
			return fmt.Errorf("cluster: seed row counter for %q: %w", name, err)
		}
		total += st.Rows
	}
	ci.next = total
	ci.seeded = true
	co.seeds.Inc()
	return nil
}

// stripedBulk is the shared write path: it serializes on the index's row
// counter, seeds it if needed, asks build for the per-partition posts given
// the reserved base row id, runs them in parallel, and on success advances
// the counter by nrows. Any per-node failure fails the whole bulk (the
// client retries or reports; the coordinator never acks a partial write) and
// drops the seed so the next write re-derives the counter from node state.
func (co *Coordinator) stripedBulk(ctx context.Context, index string, nrows int,
	build func(base int64) []func(Node) error) error {
	ci := co.index(index)
	ci.mu.Lock()
	defer ci.mu.Unlock()
	if err := co.seedLocked(ctx, index, ci); err != nil {
		return err
	}
	ops := build(ci.next)
	errs := make([]error, len(ops))
	var wg sync.WaitGroup
	for p := range ops {
		if ops[p] == nil {
			continue
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = co.call(ctx, p, ops[p])
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			ci.seeded = false
			co.bulkFails.Inc()
			return fmt.Errorf("cluster: bulk on %q failed (row counter will reseed): %w", index, err)
		}
	}
	ci.next += int64(nrows)
	co.routed.Add(uint64(nrows))
	return nil
}

// Bulk stripes documents across partitions: document i of a bulk starting at
// global row base goes to partition (base+i) mod P.
func (co *Coordinator) Bulk(ctx context.Context, index string, docs []store.Document) error {
	if len(docs) == 0 {
		return nil
	}
	return co.stripedBulk(ctx, index, len(docs), func(base int64) []func(Node) error {
		P := len(co.nodes)
		if P == 1 {
			return []func(Node) error{func(n Node) error { return n.Bulk(ctx, index, docs) }}
		}
		per := make([][]store.Document, P)
		for i := range docs {
			p := int((base + int64(i)) % int64(P))
			per[p] = append(per[p], docs[i])
		}
		ops := make([]func(Node) error, P)
		for p := range per {
			if batch := per[p]; len(batch) > 0 {
				ops[p] = func(n Node) error { return n.Bulk(ctx, index, batch) }
			}
		}
		return ops
	})
}

// BulkEvents stripes typed events the same way; each partition's share still
// travels the binary typed path on the wire.
func (co *Coordinator) BulkEvents(ctx context.Context, index string, events []event.Event) error {
	if len(events) == 0 {
		return nil
	}
	return co.stripedBulk(ctx, index, len(events), func(base int64) []func(Node) error {
		P := len(co.nodes)
		if P == 1 {
			return []func(Node) error{func(n Node) error { return n.BulkEvents(ctx, index, events) }}
		}
		per := make([][]event.Event, P)
		for i := range events {
			p := int((base + int64(i)) % int64(P))
			per[p] = append(per[p], events[i])
		}
		ops := make([]func(Node) error, P)
		for p := range per {
			if batch := per[p]; len(batch) > 0 {
				ops[p] = func(n Node) error { return n.BulkEvents(ctx, index, batch) }
			}
		}
		return ops
	})
}

// BulkFrame ingests an already-encoded binary event frame. On a 1-partition
// cluster the frame bytes are forwarded verbatim — no decode/re-encode on
// the hot path beyond the count the row counter needs. With P > 1 the frame
// must be split at event granularity, so the coordinator decodes once and
// re-encodes each partition's share (still binary on the wire); that
// per-hop re-encode is the stated cost of striping below frame granularity
// (DESIGN.md §16). Returns the number of events ingested.
func (co *Coordinator) BulkFrame(ctx context.Context, index string, frame []byte) (int, error) {
	events, err := event.DecodeBatch(frame, nil)
	if err != nil {
		return 0, fmt.Errorf("cluster: decode frame: %w", err)
	}
	if len(events) == 0 {
		return 0, nil
	}
	if len(co.nodes) == 1 {
		err := co.stripedBulk(ctx, index, len(events), func(int64) []func(Node) error {
			return []func(Node) error{func(n Node) error { return n.BulkFrame(ctx, index, frame) }}
		})
		return len(events), err
	}
	return len(events), co.BulkEvents(ctx, index, events)
}

// Search scatters the request to every partition and gathers the responses
// through the shared merge layer. A partition that has never seen the index
// contributes an empty response; any other per-node failure fails the search
// — the coordinator never returns partial data for a partial scatter.
func (co *Coordinator) Search(ctx context.Context, index string, req store.SearchRequest) (store.GatherResponse, error) {
	P := len(co.nodes)
	co.fanouts.Inc()
	resps := make([]store.ScatterResponse, P)
	errs := make([]error, P)
	var wg sync.WaitGroup
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = co.call(ctx, p, func(n Node) error {
				r, e := n.Scatter(ctx, index, store.ScatterRequest{
					Req: req, Partition: p, Partitions: P,
				})
				if e != nil {
					return e
				}
				resps[p] = r
				return nil
			})
		}(p)
	}
	wg.Wait()
	missing := 0
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrIndexNotFound) {
			missing++
			continue
		}
		return store.GatherResponse{}, err
	}
	if missing == P {
		return store.GatherResponse{}, fmt.Errorf("cluster: index %q: %w", index, ErrIndexNotFound)
	}
	return store.MergeScatters(req, resps), nil
}

// Count scatters a count and sums the partition totals.
func (co *Coordinator) Count(ctx context.Context, index string, q store.Query) (int, error) {
	P := len(co.nodes)
	co.fanouts.Inc()
	counts := make([]int, P)
	errs := make([]error, P)
	var wg sync.WaitGroup
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = co.call(ctx, p, func(n Node) error {
				var e error
				counts[p], e = n.Count(ctx, index, q)
				return e
			})
		}(p)
	}
	wg.Wait()
	total, missing := 0, 0
	for p := 0; p < P; p++ {
		if errs[p] != nil {
			if errors.Is(errs[p], ErrIndexNotFound) {
				missing++
				continue
			}
			return 0, errs[p]
		}
		total += counts[p]
	}
	if missing == P {
		return 0, fmt.Errorf("cluster: index %q: %w", index, ErrIndexNotFound)
	}
	return total, nil
}

// Correlate is not routable across partitions; see ErrCorrelateUnsupported.
func (co *Coordinator) Correlate(ctx context.Context, index, session string) (store.CorrelationResult, error) {
	return store.CorrelationResult{}, ErrCorrelateUnsupported
}

// PartitionStats is one partition's slice of an index in the cluster _stats
// report.
type PartitionStats struct {
	Partition int    `json:"partition"`
	Target    string `json:"target"`
	Docs      int    `json:"docs"`
	Rows      int64  `json:"rows"`
	Shards    int    `json:"shards"`
}

// ClusterStats aggregates an index's stats across the coordinator: cluster
// totals plus the per-partition breakdown.
type ClusterStats struct {
	Index      string           `json:"index"`
	Docs       int              `json:"docs"`
	Rows       int64            `json:"rows"`
	Partitions []PartitionStats `json:"partitions"`
}

// Stats fans _stats to every partition and aggregates: Docs and Rows are
// summed; partitions that have never seen the index report zeros (their
// entry stays, showing the layout). All partitions missing means the index
// does not exist.
func (co *Coordinator) Stats(ctx context.Context, index string) (ClusterStats, error) {
	P := len(co.nodes)
	out := ClusterStats{Index: index, Partitions: make([]PartitionStats, P)}
	stats := make([]store.IndexStats, P)
	errs := make([]error, P)
	var wg sync.WaitGroup
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = co.call(ctx, p, func(n Node) error {
				var e error
				stats[p], e = n.Stats(ctx, index)
				return e
			})
		}(p)
	}
	wg.Wait()
	missing := 0
	for p := 0; p < P; p++ {
		out.Partitions[p] = PartitionStats{Partition: p, Target: co.nodes[p].Target()}
		if errs[p] != nil {
			if errors.Is(errs[p], ErrIndexNotFound) {
				missing++
				continue
			}
			return ClusterStats{}, errs[p]
		}
		out.Partitions[p].Docs = stats[p].Docs
		out.Partitions[p].Rows = stats[p].Rows
		out.Partitions[p].Shards = stats[p].Shards
		out.Docs += stats[p].Docs
		out.Rows += stats[p].Rows
	}
	if missing == P {
		return ClusterStats{}, fmt.Errorf("cluster: index %q: %w", index, ErrIndexNotFound)
	}
	return out, nil
}

// ListIndices returns the sorted union of every partition's index names.
func (co *Coordinator) ListIndices(ctx context.Context) ([]string, error) {
	seen := make(map[string]bool)
	for p := range co.nodes {
		var names []string
		err := co.call(ctx, p, func(n Node) error {
			var e error
			names, e = n.ListIndices(ctx)
			return e
		})
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			seen[name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// DeleteIndex drops the index on every partition and forgets the row
// counter, so a re-created index seeds from zero.
func (co *Coordinator) DeleteIndex(ctx context.Context, index string) error {
	for p := range co.nodes {
		err := co.call(ctx, p, func(n Node) error { return n.DeleteIndex(ctx, index) })
		if err != nil && !errors.Is(err, ErrIndexNotFound) {
			return err
		}
	}
	co.mu.Lock()
	delete(co.indices, index)
	co.mu.Unlock()
	return nil
}

// NodeHealth is one partition's liveness in the cluster health report.
type NodeHealth struct {
	Partition int    `json:"partition"`
	Target    string `json:"target"`
	// Status is the node's own report ("ok"), or "unreachable".
	Status string `json:"status"`
	Role   string `json:"role,omitempty"`
	// Breaker is the partition circuit's position: closed, open, half-open.
	Breaker string `json:"breaker"`
	// ReplLag sums the node's replication lag across its followers.
	ReplLag int64  `json:"repl_lag,omitempty"`
	Error   string `json:"error,omitempty"`
}

// ClusterHealth is the coordinator's /_health body: overall status plus one
// entry per partition.
type ClusterHealth struct {
	// Status is "ok" when every partition answered healthily, else
	// "degraded" (reads and writes touching the dead partition will fail;
	// the rest of the surface keeps working).
	Status     string       `json:"status"`
	Partitions int          `json:"partitions"`
	Nodes      []NodeHealth `json:"nodes"`
}

// Health probes every partition and reports per-node status, role, breaker
// position, and replication lag.
func (co *Coordinator) Health(ctx context.Context) ClusterHealth {
	P := len(co.nodes)
	out := ClusterHealth{Status: "ok", Partitions: P, Nodes: make([]NodeHealth, P)}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			nh := NodeHealth{Partition: p, Target: co.nodes[p].Target()}
			var h store.HealthStatus
			err := co.call(ctx, p, func(n Node) error {
				var e error
				h, e = n.Health(ctx)
				return e
			})
			if err != nil {
				nh.Status = "unreachable"
				nh.Error = err.Error()
			} else {
				nh.Status = h.Status
				nh.Role = h.Role
				for _, r := range h.Replication {
					nh.ReplLag += r.Lag
				}
			}
			nh.Breaker = co.breakers[p].State().String()
			mu.Lock()
			out.Nodes[p] = nh
			if nh.Status != "ok" {
				out.Status = "degraded"
			}
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	return out
}
