package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/resilience"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// The deterministic in-process multi-node harness: fake nodes wrap real
// *store.Store instances behind the Node interface with injectable faults —
// the same pattern the chaos-repl suite uses one layer down — so partition
// routing, node loss mid-scatter, breaker transitions, and cursor resume run
// without sockets, deterministically, under -race.

const testIndex = "dio-events"

// memNode is an in-process partition node over a real store, with a settable
// fault that makes every call fail as if the node's transport died.
type memNode struct {
	st   *store.Store
	name string

	mu    sync.Mutex
	fault error
}

var _ Node = (*memNode)(nil)

func newMemNode(name string) *memNode {
	return &memNode{st: store.New(), name: name}
}

// setFault arms (or, with nil, clears) the injected failure.
func (m *memNode) setFault(err error) {
	m.mu.Lock()
	m.fault = err
	m.mu.Unlock()
}

func (m *memNode) injected() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fault
}

func (m *memNode) Target() string { return m.name }

// found maps the store's "index not found" onto the coordinator sentinel,
// mirroring what the HTTP adapter does with a 404.
func (m *memNode) found(index string) error {
	if _, ok := m.st.GetIndex(index); !ok {
		return fmt.Errorf("index %q not found on %s: %w", index, m.name, ErrIndexNotFound)
	}
	return nil
}

func (m *memNode) Bulk(ctx context.Context, index string, docs []store.Document) error {
	if err := m.injected(); err != nil {
		return err
	}
	return m.st.Bulk(ctx, index, docs)
}

func (m *memNode) BulkEvents(ctx context.Context, index string, events []event.Event) error {
	if err := m.injected(); err != nil {
		return err
	}
	return m.st.BulkEvents(ctx, index, events)
}

func (m *memNode) BulkFrame(ctx context.Context, index string, frame []byte) error {
	if err := m.injected(); err != nil {
		return err
	}
	events, err := event.DecodeBatch(frame, nil)
	if err != nil {
		return err
	}
	return m.st.BulkEvents(ctx, index, events)
}

func (m *memNode) Scatter(ctx context.Context, index string, sreq store.ScatterRequest) (store.ScatterResponse, error) {
	if err := m.injected(); err != nil {
		return store.ScatterResponse{}, err
	}
	if err := m.found(index); err != nil {
		return store.ScatterResponse{}, err
	}
	return m.st.Scatter(ctx, index, sreq)
}

func (m *memNode) Count(ctx context.Context, index string, q store.Query) (int, error) {
	if err := m.injected(); err != nil {
		return 0, err
	}
	if err := m.found(index); err != nil {
		return 0, err
	}
	return m.st.Count(ctx, index, q)
}

func (m *memNode) Stats(ctx context.Context, index string) (store.IndexStats, error) {
	if err := m.injected(); err != nil {
		return store.IndexStats{}, err
	}
	if err := m.found(index); err != nil {
		return store.IndexStats{}, err
	}
	return m.st.Stats(index)
}

func (m *memNode) ListIndices(ctx context.Context) ([]string, error) {
	if err := m.injected(); err != nil {
		return nil, err
	}
	return m.st.Indices(), nil
}

func (m *memNode) DeleteIndex(ctx context.Context, index string) error {
	if err := m.injected(); err != nil {
		return err
	}
	m.st.DeleteIndex(index)
	return nil
}

func (m *memNode) Health(ctx context.Context) (store.HealthStatus, error) {
	if err := m.injected(); err != nil {
		return store.HealthStatus{}, err
	}
	return m.st.Health(), nil
}

// clusterEvents builds a deterministic, varied batch: several processes and
// syscalls, strictly increasing enter times, integer magnitudes well inside
// float64's exact range so JSON round-trips are lossless.
func clusterEvents(round, n int) []event.Event {
	procs := []string{"postgres", "redis", "etcd"}
	calls := []struct{ sys, class string }{
		{"openat", "metadata"}, {"read", "read"}, {"write", "write"},
		{"fsync", "write"}, {"close", "metadata"},
	}
	out := make([]event.Event, n)
	for i := 0; i < n; i++ {
		g := round*10_000 + i
		c := calls[g%len(calls)]
		enter := int64(1_700_000_000_000)*1000 + int64(g)*1_000
		out[i] = event.Event{
			Session:     fmt.Sprintf("run-%d", round%2),
			Syscall:     c.sys,
			Class:       c.class,
			RetVal:      int64(g % 4096),
			FD:          3 + g%13,
			Count:       (g % 7) * 512,
			PID:         100 + g%3,
			TID:         200 + g%5,
			ProcName:    procs[g%len(procs)],
			ThreadName:  fmt.Sprintf("worker-%d", g%4),
			TimeEnterNS: enter,
			TimeExitNS:  enter + int64(50+g%900),
		}
	}
	return out
}

// clusterDocs builds legacy document rows with a mix of field types.
func clusterDocs(round, n int) []store.Document {
	out := make([]store.Document, n)
	for i := 0; i < n; i++ {
		g := round*10_000 + i
		out[i] = store.Document{
			store.FieldSession:   fmt.Sprintf("run-%d", round%2),
			store.FieldSyscall:   []string{"lseek", "stat", "pread64"}[g%3],
			store.FieldProcName:  "loader",
			store.FieldTimeEnter: int64(1_700_000_500_000)*1000 + int64(g)*1_000,
			store.FieldRetVal:    int64(g % 257),
			"batch":              fmt.Sprintf("b%d", round),
		}
	}
	return out
}

// ingestBoth drives one identical ingest sequence — interleaved event and
// document bulks with sizes that are not multiples of the partition count,
// so stripes wrap mid-batch — into every backend in targets.
type eventSink interface {
	Bulk(ctx context.Context, index string, docs []store.Document) error
	BulkEvents(ctx context.Context, index string, events []event.Event) error
}

func ingestBoth(t *testing.T, targets ...eventSink) {
	t.Helper()
	ctx := context.Background()
	for round := 0; round < 4; round++ {
		ev := clusterEvents(round, 37+round*11)
		docs := clusterDocs(round, 13+round*5)
		for _, tg := range targets {
			if err := tg.BulkEvents(ctx, testIndex, ev); err != nil {
				t.Fatalf("round %d: bulk events: %v", round, err)
			}
			if err := tg.Bulk(ctx, testIndex, docs); err != nil {
				t.Fatalf("round %d: bulk docs: %v", round, err)
			}
		}
	}
}

func newTestCluster(t *testing.T, nodes int) (*Coordinator, []*memNode) {
	t.Helper()
	mems := make([]*memNode, nodes)
	ns := make([]Node, nodes)
	for i := range mems {
		mems[i] = newMemNode(fmt.Sprintf("mem-%d", i))
		ns[i] = mems[i]
	}
	co, err := New(Config{Clock: clock.NewVirtual(0)}, ns...)
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	return co, mems
}

// differentialRequests is the query battery the byte-identity tests sweep:
// filters, sorts (numeric, string, multi-key, descending), windows, and
// every aggregation kind including sub-aggregations.
func differentialRequests() map[string]store.SearchRequest {
	return map[string]store.SearchRequest{
		"match_all_unbounded": {Query: store.MatchAll()},
		"term_filter":         {Query: store.Term(store.FieldSyscall, "write"), Size: 20},
		"window_from_size": {Query: store.MatchAll(), Size: 10, From: 17,
			Sort: []store.SortField{{Field: store.FieldTimeEnter}}},
		"sorted_numeric_desc": {Query: store.MatchAll(), Size: 25,
			Sort: []store.SortField{{Field: store.FieldTimeEnter, Desc: true}}},
		"sorted_string_multikey": {Query: store.MatchAll(), Size: 40,
			Sort: []store.SortField{
				{Field: store.FieldProcName},
				{Field: store.FieldRetVal, Desc: true},
			}},
		"sorted_missing_field": {Query: store.Term(store.FieldProcName, "loader"), Size: 15,
			Sort: []store.SortField{{Field: store.FieldFD}}}, // docs rows lack fd
		"exists_filter": {Query: store.Exists("batch"), Size: 12},
		"aggs_all_kinds": {Query: store.MatchAll(), Size: 5, Aggs: map[string]store.Agg{
			"by_syscall": {Terms: &store.TermsAgg{Field: store.FieldSyscall, Size: 4}},
			"by_minute":  {DateHistogram: &store.DateHistogramAgg{Field: store.FieldTimeEnter, IntervalNS: int64(time.Minute)}},
			"ret_pcts":   {Percentiles: &store.PercentilesAgg{Field: store.FieldRetVal, Percents: []float64{50, 90, 99}}},
			"ret_stats":  {Stats: &store.StatsAgg{Field: store.FieldRetVal}},
		}},
		"aggs_sub": {Query: store.Term(store.FieldSession, "run-0"), Size: 0, Aggs: map[string]store.Agg{
			"by_proc": {
				Terms: &store.TermsAgg{Field: store.FieldProcName},
				Aggs: map[string]store.Agg{
					"lat": {Stats: &store.StatsAgg{Field: store.FieldRetVal}},
				},
			},
		}},
	}
}

// fingerprintSingle / fingerprintCluster render a response to canonical JSON.
func fingerprintSingle(t *testing.T, resp store.SearchResponse) string {
	t.Helper()
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatalf("marshal single response: %v", err)
	}
	return string(b)
}

func fingerprintCluster(t *testing.T, resp store.GatherResponse) string {
	t.Helper()
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatalf("marshal cluster response: %v", err)
	}
	return string(b)
}

// TestClusterDifferentialFingerprint is the acceptance differential: every
// search, count, aggregation, and cursor walk must return byte-identical
// results on a 1-node store and a 4-node partitioned cluster over the same
// ingest.
func TestClusterDifferentialFingerprint(t *testing.T) {
	ctx := context.Background()
	single := store.New()
	co, _ := newTestCluster(t, 4)
	ingestBoth(t, single, co)

	for name, req := range differentialRequests() {
		sresp, err := single.Search(ctx, testIndex, req)
		if err != nil {
			t.Fatalf("%s: single search: %v", name, err)
		}
		cresp, err := co.Search(ctx, testIndex, req)
		if err != nil {
			t.Fatalf("%s: cluster search: %v", name, err)
		}
		if got, want := fingerprintCluster(t, cresp), fingerprintSingle(t, sresp); got != want {
			t.Fatalf("%s: cluster response diverged\nsingle:  %s\ncluster: %s", name, want, got)
		}
	}

	for _, q := range []store.Query{
		store.MatchAll(),
		store.Term(store.FieldSyscall, "fsync"),
		store.Term(store.FieldProcName, "etcd"),
		store.Exists("batch"),
	} {
		sn, err := single.Count(ctx, testIndex, q)
		if err != nil {
			t.Fatalf("single count: %v", err)
		}
		cn, err := co.Count(ctx, testIndex, q)
		if err != nil {
			t.Fatalf("cluster count: %v", err)
		}
		if sn != cn {
			t.Fatalf("count diverged: single %d cluster %d", sn, cn)
		}
	}

	// Cursor walks: unsorted (insertion order) and sorted, paged to
	// exhaustion; every page and every continuation token must match.
	walks := map[string]store.SearchRequest{
		"walk_unsorted": {Query: store.MatchAll(), Size: 7},
		"walk_sorted": {Query: store.Term(store.FieldSession, "run-1"), Size: 9,
			Sort: []store.SortField{
				{Field: store.FieldSyscall},
				{Field: store.FieldTimeEnter, Desc: true},
			}},
	}
	for name, base := range walks {
		sreq, creq := base, base
		for page := 0; ; page++ {
			sresp, err := single.Search(ctx, testIndex, sreq)
			if err != nil {
				t.Fatalf("%s page %d: single: %v", name, page, err)
			}
			cresp, err := co.Search(ctx, testIndex, creq)
			if err != nil {
				t.Fatalf("%s page %d: cluster: %v", name, page, err)
			}
			if got, want := fingerprintCluster(t, cresp), fingerprintSingle(t, sresp); got != want {
				t.Fatalf("%s page %d diverged\nsingle:  %s\ncluster: %s", name, page, want, got)
			}
			if sresp.NextAfter == nil {
				break
			}
			sreq.SearchAfter, creq.SearchAfter = sresp.NextAfter, cresp.NextAfter
			if page > 50 {
				t.Fatalf("%s: cursor walk did not terminate", name)
			}
		}
	}
}

// TestClusterSingleNodeTransparent pins the P=1 degenerate case: a 1-node
// coordinator is a pure proxy — same bytes as the store underneath it.
func TestClusterSingleNodeTransparent(t *testing.T) {
	ctx := context.Background()
	single := store.New()
	co, mems := newTestCluster(t, 1)
	ingestBoth(t, single, co)
	for name, req := range differentialRequests() {
		sresp, err := single.Search(ctx, testIndex, req)
		if err != nil {
			t.Fatalf("%s: single: %v", name, err)
		}
		cresp, err := co.Search(ctx, testIndex, req)
		if err != nil {
			t.Fatalf("%s: cluster: %v", name, err)
		}
		if fingerprintCluster(t, cresp) != fingerprintSingle(t, sresp) {
			t.Fatalf("%s: 1-node coordinator diverged from bare store", name)
		}
	}
	// And the backing store really holds everything (no phantom striping).
	n, err := mems[0].st.Count(ctx, testIndex, store.MatchAll())
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	sn, _ := single.Count(ctx, testIndex, store.MatchAll())
	if n != sn {
		t.Fatalf("1-node cluster holds %d rows, bare store %d", n, sn)
	}
}

// TestClusterNodeLossMidScatter: a partition failing mid-scatter must fail
// the whole search — never partial data — then trip its breaker so later
// scatters fail fast, and recover through the half-open probe when the node
// returns.
func TestClusterNodeLossMidScatter(t *testing.T) {
	ctx := context.Background()
	clk := clock.NewVirtual(0)
	mems := make([]*memNode, 4)
	ns := make([]Node, 4)
	for i := range mems {
		mems[i] = newMemNode(fmt.Sprintf("mem-%d", i))
		ns[i] = mems[i]
	}
	co, err := New(Config{Clock: clk, BreakerThreshold: 3, BreakerCooldown: time.Second}, ns...)
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	ingestBoth(t, co)

	req := store.SearchRequest{Query: store.MatchAll(), Size: 10}
	if _, err := co.Search(ctx, testIndex, req); err != nil {
		t.Fatalf("healthy search: %v", err)
	}

	boom := errors.New("connection reset by peer")
	mems[2].setFault(boom)
	for i := 0; i < 3; i++ {
		_, err := co.Search(ctx, testIndex, req)
		if err == nil {
			t.Fatalf("search %d with dead partition returned data", i)
		}
		if !strings.Contains(err.Error(), "partition 2") || !errors.Is(err, boom) {
			t.Fatalf("search %d: error does not name the dead partition: %v", i, err)
		}
	}
	if st := co.BreakerState(2); st != resilience.BreakerOpen {
		t.Fatalf("breaker after 3 failures = %v, want open", st)
	}
	// Open circuit: the scatter fails fast without touching the dead node.
	if _, err := co.Search(ctx, testIndex, req); !errors.Is(err, ErrNodeUnavailable) {
		t.Fatalf("search with open breaker: %v, want ErrNodeUnavailable", err)
	}

	// Node comes back; after the cooldown the half-open probe closes the
	// circuit and scatters flow again.
	mems[2].setFault(nil)
	clk.Advance(2 * time.Second)
	if _, err := co.Search(ctx, testIndex, req); err != nil {
		t.Fatalf("search after recovery: %v", err)
	}
	if st := co.BreakerState(2); st != resilience.BreakerClosed {
		t.Fatalf("breaker after recovery = %v, want closed", st)
	}
}

// TestClusterWriteFailureReseeds: a striped bulk failing on one partition is
// an error to the client, bumps the partial-failure counter, and drops the
// row-counter seed; the next successful write re-derives it from node state
// and the cluster keeps answering exact counts.
func TestClusterWriteFailureReseeds(t *testing.T) {
	ctx := context.Background()
	co, mems := newTestCluster(t, 4)
	ingestBoth(t, co)
	before, err := co.Count(ctx, testIndex, store.MatchAll())
	if err != nil {
		t.Fatalf("count: %v", err)
	}

	boom := errors.New("node down")
	mems[1].setFault(boom)
	batch := clusterEvents(9, 23)
	if err := co.BulkEvents(ctx, testIndex, batch); !errors.Is(err, boom) {
		t.Fatalf("striped bulk with dead partition: %v, want the node error", err)
	}
	mems[1].setFault(nil)

	// The failed bulk landed on some partitions only; the next write reseeds
	// and keeps going. Counts stay exact relative to what each node holds.
	if err := co.BulkEvents(ctx, testIndex, clusterEvents(10, 17)); err != nil {
		t.Fatalf("bulk after reseed: %v", err)
	}
	after, err := co.Count(ctx, testIndex, store.MatchAll())
	if err != nil {
		t.Fatalf("count after reseed: %v", err)
	}
	perNode := 0
	for _, m := range mems {
		n, err := m.st.Count(ctx, testIndex, store.MatchAll())
		if err != nil {
			t.Fatalf("node count: %v", err)
		}
		perNode += n
	}
	if after != perNode {
		t.Fatalf("cluster count %d != sum of node counts %d", after, perNode)
	}
	if after <= before {
		t.Fatalf("count did not grow past %d after recovery (got %d)", before, after)
	}
	// Searches still work over the seam (tie order at the seam is synthetic
	// but total; the response must simply be well-formed and complete).
	resp, err := co.Search(ctx, testIndex, store.SearchRequest{Query: store.MatchAll()})
	if err != nil {
		t.Fatalf("search over seam: %v", err)
	}
	if resp.Total != after || len(resp.Hits) != after {
		t.Fatalf("search over seam: total %d hits %d, want %d", resp.Total, len(resp.Hits), after)
	}
}

// TestClusterCursorResumeAcrossCoordinators: a continuation token minted by
// one coordinator resumes on a fresh coordinator over the same nodes — the
// row counter reseeds from the partitions' Rows sums, so cluster-global ids
// (and therefore cursor positions) are stable across coordinator restarts.
func TestClusterCursorResumeAcrossCoordinators(t *testing.T) {
	ctx := context.Background()
	single := store.New()
	co1, mems := newTestCluster(t, 4)
	ingestBoth(t, single, co1)

	req := store.SearchRequest{
		Query: store.MatchAll(), Size: 11,
		Sort: []store.SortField{{Field: store.FieldTimeEnter}},
	}
	sresp, err := single.Search(ctx, testIndex, req)
	if err != nil {
		t.Fatalf("single page 1: %v", err)
	}
	cresp, err := co1.Search(ctx, testIndex, req)
	if err != nil {
		t.Fatalf("cluster page 1: %v", err)
	}
	if fingerprintCluster(t, cresp) != fingerprintSingle(t, sresp) {
		t.Fatal("page 1 diverged")
	}

	// A new coordinator process takes over (the old one's counter state is
	// gone); it must keep assigning ids consistently and honor the old
	// cursor.
	ns := make([]Node, len(mems))
	for i := range mems {
		ns[i] = mems[i]
	}
	co2, err := New(Config{Clock: clock.NewVirtual(0)}, ns...)
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	// More ingest through the NEW coordinator before resuming: the reseeded
	// counter must continue the global sequence exactly.
	extra := clusterEvents(20, 19)
	if err := single.BulkEvents(ctx, testIndex, extra); err != nil {
		t.Fatalf("single extra ingest: %v", err)
	}
	if err := co2.BulkEvents(ctx, testIndex, extra); err != nil {
		t.Fatalf("cluster extra ingest: %v", err)
	}

	sreq, creq := req, req
	sreq.SearchAfter, creq.SearchAfter = sresp.NextAfter, cresp.NextAfter
	for page := 2; ; page++ {
		sresp, err = single.Search(ctx, testIndex, sreq)
		if err != nil {
			t.Fatalf("single page %d: %v", page, err)
		}
		cresp, err = co2.Search(ctx, testIndex, creq)
		if err != nil {
			t.Fatalf("cluster page %d: %v", page, err)
		}
		if fingerprintCluster(t, cresp) != fingerprintSingle(t, sresp) {
			t.Fatalf("page %d diverged after coordinator handover", page)
		}
		if sresp.NextAfter == nil {
			break
		}
		sreq.SearchAfter, creq.SearchAfter = sresp.NextAfter, cresp.NextAfter
		if page > 60 {
			t.Fatal("cursor walk did not terminate")
		}
	}
}

// TestClusterStatsAggregation pins the satellite: _stats aggregates across
// the coordinator and exposes per-partition doc counts.
func TestClusterStatsAggregation(t *testing.T) {
	ctx := context.Background()
	single := store.New()
	co, _ := newTestCluster(t, 4)
	ingestBoth(t, single, co)

	want, _ := single.Count(ctx, testIndex, store.MatchAll())
	st, err := co.Stats(ctx, testIndex)
	if err != nil {
		t.Fatalf("cluster stats: %v", err)
	}
	if st.Index != testIndex || st.Docs != want || st.Rows != int64(want) {
		t.Fatalf("cluster stats = %+v, want %d docs/rows for %q", st, want, testIndex)
	}
	if len(st.Partitions) != 4 {
		t.Fatalf("stats partitions = %d, want 4", len(st.Partitions))
	}
	sum := 0
	for p, ps := range st.Partitions {
		if ps.Partition != p || ps.Target != fmt.Sprintf("mem-%d", p) {
			t.Fatalf("partition %d stats mislabeled: %+v", p, ps)
		}
		if ps.Docs == 0 {
			t.Fatalf("partition %d owns no rows — striping is not spreading", p)
		}
		sum += ps.Docs
	}
	if sum != want {
		t.Fatalf("per-partition docs sum %d != total %d", sum, want)
	}

	// Missing index: 404-equivalent, not an empty report.
	if _, err := co.Stats(ctx, "nope"); !errors.Is(err, ErrIndexNotFound) {
		t.Fatalf("stats on missing index: %v, want ErrIndexNotFound", err)
	}
}

// TestClusterCorrelateTyped501: correlation does not route across
// partitions; the coordinator refuses with the typed sentinel.
func TestClusterCorrelateTyped501(t *testing.T) {
	co, _ := newTestCluster(t, 2)
	if _, err := co.Correlate(context.Background(), testIndex, "s"); !errors.Is(err, ErrCorrelateUnsupported) {
		t.Fatalf("cluster correlate: %v, want ErrCorrelateUnsupported", err)
	}
}

// TestClusterFrameForwardVerbatim: on a 1-partition cluster the binary frame
// is forwarded byte-for-byte (no decode/re-encode of the payload sent to the
// node); with more partitions the frame is split at event granularity.
func TestClusterFrameForwardVerbatim(t *testing.T) {
	ctx := context.Background()
	rec := &frameRecorder{memNode: newMemNode("rec-0")}
	co, err := New(Config{Clock: clock.NewVirtual(0)}, rec)
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	events := clusterEvents(0, 9)
	frame := event.EncodeBatch(nil, events)
	items, err := co.BulkFrame(ctx, testIndex, frame)
	if err != nil {
		t.Fatalf("bulk frame: %v", err)
	}
	if items != len(events) {
		t.Fatalf("items = %d, want %d", items, len(events))
	}
	if len(rec.frames) != 1 || !bytes.Equal(rec.frames[0], frame) {
		t.Fatalf("1-node coordinator did not forward the frame verbatim (%d frames)", len(rec.frames))
	}

	// P>1: the split path delivers every event exactly once.
	co4, mems := newTestCluster(t, 4)
	if _, err := co4.BulkFrame(ctx, testIndex, frame); err != nil {
		t.Fatalf("striped bulk frame: %v", err)
	}
	total := 0
	for _, m := range mems {
		n, err := m.st.Count(ctx, testIndex, store.MatchAll())
		if err != nil {
			t.Fatalf("node count: %v", err)
		}
		total += n
	}
	if total != len(events) {
		t.Fatalf("striped frame delivered %d events, want %d", total, len(events))
	}
}

// frameRecorder captures the frames a 1-node coordinator forwards.
type frameRecorder struct {
	*memNode
	frames [][]byte
}

func (f *frameRecorder) BulkFrame(ctx context.Context, index string, frame []byte) error {
	f.frames = append(f.frames, append([]byte(nil), frame...))
	return f.memNode.BulkFrame(ctx, index, frame)
}

// TestClusterScatterErrorMapping: a scattered request must fail exactly like
// a direct one — bad cursors are client errors on both paths.
func TestClusterScatterErrorMapping(t *testing.T) {
	ctx := context.Background()
	co, _ := newTestCluster(t, 3)
	ingestBoth(t, co)

	// From alongside a cursor is rejected even though the node-local rewrite
	// would mask it (the node validates the original request).
	bad := store.SearchRequest{
		Query: store.MatchAll(), Size: 5, From: 3,
		SearchAfter: []any{float64(10)},
	}
	if _, err := co.Search(ctx, testIndex, bad); err == nil || !store.IsBadRequest(err) {
		t.Fatalf("From+cursor through cluster: %v, want a bad-request error", err)
	}
	// Arity mismatch likewise.
	bad2 := store.SearchRequest{
		Query: store.MatchAll(), Size: 5,
		Sort:        []store.SortField{{Field: store.FieldTimeEnter}},
		SearchAfter: []any{float64(10)}, // missing the sort value
	}
	if _, err := co.Search(ctx, testIndex, bad2); err == nil || !store.IsBadRequest(err) {
		t.Fatalf("bad arity through cluster: %v, want a bad-request error", err)
	}
	// Missing index surfaces as not-found when no partition has it.
	if _, err := co.Search(ctx, "nope", store.SearchRequest{Query: store.MatchAll()}); !errors.Is(err, ErrIndexNotFound) {
		t.Fatalf("missing index through cluster: %v, want ErrIndexNotFound", err)
	}
}

// TestClusterListAndDelete: _cat union and cluster-wide index drops.
func TestClusterListAndDelete(t *testing.T) {
	ctx := context.Background()
	co, mems := newTestCluster(t, 3)
	ingestBoth(t, co)
	// A second index that happens to live on one node only (written behind
	// the coordinator's back — the union must still report it).
	if err := mems[2].st.Bulk(ctx, "side", clusterDocs(0, 3)); err != nil {
		t.Fatalf("side bulk: %v", err)
	}
	names, err := co.ListIndices(ctx)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(names) != 2 || names[0] != testIndex || names[1] != "side" {
		t.Fatalf("list = %v, want [%s side]", names, testIndex)
	}
	if err := co.DeleteIndex(ctx, testIndex); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := co.Count(ctx, testIndex, store.MatchAll()); !errors.Is(err, ErrIndexNotFound) {
		t.Fatalf("count after delete: %v, want ErrIndexNotFound", err)
	}
	// Re-created index seeds from zero again and stays consistent.
	if err := co.BulkEvents(ctx, testIndex, clusterEvents(0, 8)); err != nil {
		t.Fatalf("re-create: %v", err)
	}
	n, err := co.Count(ctx, testIndex, store.MatchAll())
	if err != nil || n != 8 {
		t.Fatalf("count after re-create = %d, %v; want 8", n, err)
	}
}

// TestClusterHealthDegraded: the health report names the dead partition and
// its breaker position, and flips the cluster status to degraded.
func TestClusterHealthDegraded(t *testing.T) {
	ctx := context.Background()
	co, mems := newTestCluster(t, 3)
	h := co.Health(ctx)
	if h.Status != "ok" || h.Partitions != 3 || len(h.Nodes) != 3 {
		t.Fatalf("healthy cluster health = %+v", h)
	}
	mems[1].setFault(errors.New("gone"))
	h = co.Health(ctx)
	if h.Status != "degraded" {
		t.Fatalf("health with dead node = %q, want degraded", h.Status)
	}
	if h.Nodes[1].Status != "unreachable" || h.Nodes[1].Error == "" {
		t.Fatalf("dead node entry = %+v", h.Nodes[1])
	}
	if h.Nodes[0].Status != "ok" || h.Nodes[2].Status != "ok" {
		t.Fatalf("live nodes misreported: %+v", h.Nodes)
	}
}
