package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// Server exposes the coordinator over HTTP with the same surface (and the
// same dual mounting — versioned /v1/ plus the legacy unprefixed alias) as a
// single diod node, so clients point at a coordinator with nothing but a
// base-URL change:
//
//	POST   /v1/{index}/_bulk       NDJSON pairs or a binary event frame, striped to owners
//	POST   /v1/{index}/_search     scattered to all partitions, merged once
//	POST   /v1/{index}/_count      scattered, summed
//	POST   /v1/{index}/_correlate  501: not routable across partitions
//	POST   /v1/{index}/_diagnose   501: not routable across partitions
//	POST   /v1/{index}/_dfg        501: not routable across partitions
//	POST   /v1/{index}/_diff       501: not routable across partitions
//	GET    /v1/{index}/_stats      aggregated, with per-partition breakdown
//	GET    /v1/_cat/indices        union of partition index lists
//	GET    /v1/_health             per-partition liveness, roles, breaker state
//	GET    /v1/metrics             coordinator routing/fan-out counters
//	DELETE /v1/{index}             dropped on every partition
type Server struct {
	co  *Coordinator
	mux *http.ServeMux
}

var _ http.Handler = (*Server)(nil)

// NewServer wraps a coordinator in an HTTP handler.
func NewServer(co *Coordinator) *Server {
	s := &Server{co: co, mux: http.NewServeMux()}
	inner := http.NewServeMux()
	inner.HandleFunc("/_cat/indices", s.handleCatIndices)
	inner.HandleFunc("/_health", s.handleHealth)
	inner.HandleFunc("/metrics", s.handleMetrics)
	inner.HandleFunc("/", s.handleIndexOps)
	s.mux.Handle("/", inner)
	s.mux.Handle("/v1/", http.StripPrefix("/v1", inner))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleCatIndices(w http.ResponseWriter, r *http.Request) {
	names, err := s.co.ListIndices(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, names)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.co.Health(r.Context()))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.co.Telemetry().WriteText(w)
}

func (s *Server) handleIndexOps(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
	switch {
	case len(parts) == 1 && parts[0] != "" && r.Method == http.MethodDelete:
		if err := s.co.DeleteIndex(r.Context(), parts[0]); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"acknowledged": true})
	case len(parts) == 2:
		index, op := parts[0], parts[1]
		switch op {
		case "_bulk":
			s.handleBulk(w, r, index)
		case "_search":
			s.handleSearch(w, r, index)
		case "_count":
			s.handleCount(w, r, index)
		case "_correlate":
			s.handleNotRoutable(w, r, ErrCorrelateUnsupported)
		case "_diagnose":
			s.handleNotRoutable(w, r, ErrDiagnoseUnsupported)
		case "_dfg":
			s.handleNotRoutable(w, r, ErrDFGUnsupported)
		case "_diff":
			s.handleNotRoutable(w, r, ErrDiffUnsupported)
		case "_stats":
			s.handleStats(w, r, index)
		default:
			httpError(w, http.StatusNotFound, "unknown operation %q", op)
		}
	default:
		httpError(w, http.StatusNotFound, "not found")
	}
}

// handleBulk accepts the same two encodings a node does — the binary event
// frame or Elasticsearch-style NDJSON — and stripes the rows to their owner
// partitions.
func (s *Server) handleBulk(w http.ResponseWriter, r *http.Request, index string) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, event.ContentTypeBinaryV1) {
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(r.Body); err != nil {
			httpError(w, http.StatusBadRequest, "read body: %v", err)
			return
		}
		items, err := s.co.BulkFrame(r.Context(), index, buf.Bytes())
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"items": items})
		return
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64*1024), 8*1024*1024)
	var docs []store.Document
	expectDoc := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if !expectDoc {
			expectDoc = true // action line, e.g. {"index":{}}
			continue
		}
		var d store.Document
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			httpError(w, http.StatusBadRequest, "bad document: %v", err)
			return
		}
		docs = append(docs, d)
		expectDoc = false
	}
	if err := sc.Err(); err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if err := s.co.Bulk(r.Context(), index, docs); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"items": len(docs)})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request, index string) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req store.SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad search request: %v", err)
		return
	}
	resp, err := s.co.Search(r.Context(), index, req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request, index string) {
	var q store.Query
	if r.Body != nil && r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
			httpError(w, http.StatusBadRequest, "bad query: %v", err)
			return
		}
	}
	n, err := s.co.Count(r.Context(), index, q)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"count": n})
}

// handleNotRoutable answers the shared typed refusal for operations that
// do not route across partitions (correlation and the diagnosis
// endpoints): 501 with the operation's machine-readable reason.
func (s *Server) handleNotRoutable(w http.ResponseWriter, r *http.Request, err *ErrNotRoutable) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	writeJSON(w, http.StatusNotImplemented, map[string]string{
		"error":  err.Error(),
		"reason": err.Reason,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, index string) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	st, err := s.co.Stats(r.Context(), index)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// writeError maps coordinator errors to statuses consistent with a single
// node's API: client errors keep their 4xx (a scattered request fails like a
// direct one), per-node statuses forward, and a dead or breaker-rejected
// partition is the coordinator's own failure — 503/502, temporary under the
// client's retry classification.
func writeError(w http.ResponseWriter, err error) {
	var he *store.HTTPError
	var nr *ErrNotRoutable
	switch {
	case errors.As(err, &nr):
		writeJSON(w, http.StatusNotImplemented, map[string]string{
			"error": err.Error(), "reason": nr.Reason,
		})
	case errors.Is(err, store.ErrCursorExpired):
		httpError(w, http.StatusGone, "%v", err)
	case store.IsBadRequest(err):
		httpError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, ErrIndexNotFound):
		httpError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrNodeUnavailable):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.As(err, &he):
		httpError(w, he.Status, "%v", err)
	default:
		httpError(w, http.StatusBadGateway, "%v", err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
