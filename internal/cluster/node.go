package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// httpNode adapts a store.FailoverClient to the Node interface: each
// partition is a FailoverClient over its primary and followers, so the
// existing resilience ladder (probe, switch, retry once) runs per-partition
// underneath the coordinator's per-partition circuit breaker.
type httpNode struct {
	fc     *store.FailoverClient
	target string
}

// NewHTTPNode wraps a partition's failover client as a coordinator Node.
// target names the partition in health reports (typically the primary URL).
func NewHTTPNode(target string, fc *store.FailoverClient) Node {
	return &httpNode{fc: fc, target: target}
}

var _ Node = (*httpNode)(nil)

// notFound translates the HTTP encoding of "index not found" into the
// coordinator's sentinel, leaving every other error (including other 404s'
// message text) intact inside the wrap.
func notFound(err error) error {
	var he *store.HTTPError
	if errors.As(err, &he) && he.Status == http.StatusNotFound {
		return fmt.Errorf("%v: %w", err, ErrIndexNotFound)
	}
	return err
}

func (n *httpNode) Target() string { return n.target }

func (n *httpNode) Bulk(ctx context.Context, index string, docs []store.Document) error {
	return n.fc.Bulk(ctx, index, docs)
}

func (n *httpNode) BulkEvents(ctx context.Context, index string, events []event.Event) error {
	return n.fc.BulkEvents(ctx, index, events)
}

func (n *httpNode) BulkFrame(ctx context.Context, index string, frame []byte) error {
	return n.fc.BulkFrame(ctx, index, frame)
}

func (n *httpNode) Scatter(ctx context.Context, index string, sreq store.ScatterRequest) (store.ScatterResponse, error) {
	resp, err := n.fc.Scatter(ctx, index, sreq)
	return resp, notFound(err)
}

func (n *httpNode) Count(ctx context.Context, index string, q store.Query) (int, error) {
	c, err := n.fc.Count(ctx, index, q)
	return c, notFound(err)
}

func (n *httpNode) Stats(ctx context.Context, index string) (store.IndexStats, error) {
	st, err := n.fc.Stats(ctx, index)
	return st, notFound(err)
}

func (n *httpNode) ListIndices(ctx context.Context) ([]string, error) {
	return n.fc.ListIndices(ctx)
}

func (n *httpNode) DeleteIndex(ctx context.Context, index string) error {
	return n.fc.DeleteIndex(ctx, index)
}

func (n *httpNode) Health(ctx context.Context) (store.HealthStatus, error) {
	return n.fc.HealthStatus(ctx)
}
