package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/repl"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// The HTTP half of the harness: real store servers behind httptest, real
// FailoverClients per partition, the coordinator's own HTTP server on top,
// and the ordinary store.Client pointed at it. These tests pin the
// transparency claim — a client cannot tell a coordinator from a node — down
// to the raw response bytes.

// newHTTPCluster boots n single-node partitions, each a store server behind
// a one-member FailoverClient, under a coordinator HTTP server.
func newHTTPCluster(t *testing.T, n int) (*Coordinator, *httptest.Server, []*store.Store) {
	t.Helper()
	stores := make([]*store.Store, n)
	nodes := make([]Node, n)
	for i := range nodes {
		st := store.New()
		srv := httptest.NewServer(store.NewServer(st))
		t.Cleanup(srv.Close)
		fc, err := store.NewFailoverClient(store.NewClient(srv.URL, store.WithAPIPrefix("/v1")))
		if err != nil {
			t.Fatalf("failover client: %v", err)
		}
		stores[i] = st
		nodes[i] = NewHTTPNode(srv.URL, fc)
	}
	co, err := New(Config{Clock: clock.NewVirtual(0)}, nodes...)
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	csrv := httptest.NewServer(NewServer(co))
	t.Cleanup(csrv.Close)
	return co, csrv, stores
}

// postRaw POSTs a body and returns status plus the exact response bytes.
func postRaw(t *testing.T, url, contentType string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b
}

// TestClusterHTTPTransparency is the end-to-end byte-identity check: the
// same ingest through a 4-partition coordinator's HTTP API and through a
// bare node, then every query compared as raw response bodies — including
// the aggregation partials' JSON round-trip across the real wire.
func TestClusterHTTPTransparency(t *testing.T) {
	singleStore := store.New()
	ssrv := httptest.NewServer(store.NewServer(singleStore))
	defer ssrv.Close()

	_, csrv, _ := newHTTPCluster(t, 4)

	// Ingest through both HTTP front doors: binary frames and NDJSON bulks.
	singleC := store.NewClient(ssrv.URL, store.WithAPIPrefix("/v1"))
	clusterC := store.NewClient(csrv.URL, store.WithAPIPrefix("/v1"))
	ingestBoth(t, singleC, clusterC)

	var ndjson bytes.Buffer
	for _, d := range clusterDocs(7, 9) {
		ndjson.WriteString(`{"index":{}}` + "\n")
		b, _ := json.Marshal(d)
		ndjson.Write(b)
		ndjson.WriteByte('\n')
	}
	for _, base := range []string{ssrv.URL, csrv.URL} {
		code, body := postRaw(t, base+"/v1/"+testIndex+"/_bulk", "application/x-ndjson", ndjson.Bytes())
		if code != http.StatusOK {
			t.Fatalf("ndjson bulk via %s: %d %s", base, code, body)
		}
	}

	for name, req := range differentialRequests() {
		rb, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		scode, sbody := postRaw(t, ssrv.URL+"/v1/"+testIndex+"/_search", "application/json", rb)
		ccode, cbody := postRaw(t, csrv.URL+"/v1/"+testIndex+"/_search", "application/json", rb)
		if scode != http.StatusOK || ccode != http.StatusOK {
			t.Fatalf("%s: statuses single=%d cluster=%d", name, scode, ccode)
		}
		if !bytes.Equal(sbody, cbody) {
			t.Fatalf("%s: HTTP bodies diverged\nsingle:  %s\ncluster: %s", name, sbody, cbody)
		}
	}

	// The ordinary client decodes a coordinator response transparently.
	ctx := context.Background()
	resp, err := clusterC.Search(ctx, testIndex, store.SearchRequest{
		Query: store.Term(store.FieldProcName, "loader"), Size: 5,
		Sort: []store.SortField{{Field: store.FieldTimeEnter, Desc: true}},
	})
	if err != nil {
		t.Fatalf("client search via coordinator: %v", err)
	}
	if len(resp.Hits) != 5 || resp.NextAfter == nil {
		t.Fatalf("client search via coordinator: %d hits, next_after %v", len(resp.Hits), resp.NextAfter)
	}

	// Error statuses match a node's, too.
	badReq, _ := json.Marshal(store.SearchRequest{
		Query: store.MatchAll(), Size: 3, From: 1, SearchAfter: []any{float64(4)},
	})
	scode, _ := postRaw(t, ssrv.URL+"/v1/"+testIndex+"/_search", "application/json", badReq)
	ccode, _ := postRaw(t, csrv.URL+"/v1/"+testIndex+"/_search", "application/json", badReq)
	if scode != http.StatusBadRequest || ccode != http.StatusBadRequest {
		t.Fatalf("From+cursor: single=%d cluster=%d, want 400/400", scode, ccode)
	}
	scode, _ = postRaw(t, ssrv.URL+"/v1/nope/_search", "application/json", []byte(`{}`))
	ccode, _ = postRaw(t, csrv.URL+"/v1/nope/_search", "application/json", []byte(`{}`))
	if scode != http.StatusNotFound || ccode != http.StatusNotFound {
		t.Fatalf("missing index: single=%d cluster=%d, want 404/404", scode, ccode)
	}

	// Correlate over HTTP: typed 501 with a machine-readable reason.
	code, body := postRaw(t, csrv.URL+"/v1/"+testIndex+"/_correlate", "application/json", []byte(`{"session":"run-0"}`))
	if code != http.StatusNotImplemented {
		t.Fatalf("cluster correlate: %d %s, want 501", code, body)
	}
	var ce struct{ Error, Reason string }
	if err := json.Unmarshal(body, &ce); err != nil || ce.Reason != ReasonClusterCorrelate {
		t.Fatalf("cluster correlate body %s: reason %q, want %q", body, ce.Reason, ReasonClusterCorrelate)
	}
	if _, err := clusterC.Correlate(ctx, testIndex, "run-0"); err == nil {
		t.Fatal("client correlate via coordinator succeeded, want typed refusal")
	}

	// The diagnosis endpoints share the same typed-501 contract, each with
	// its own machine-readable reason.
	for _, tc := range []struct {
		route  string
		reason string
	}{
		{"/_diagnose?session=run-0", ReasonClusterDiagnose},
		{"/_dfg?session=run-0", ReasonClusterDFG},
		{"/_diff?a=run-0&b=run-1", ReasonClusterDiff},
	} {
		code, body := postRaw(t, csrv.URL+"/v1/"+testIndex+tc.route, "application/json", nil)
		if code != http.StatusNotImplemented {
			t.Fatalf("cluster %s: %d %s, want 501", tc.route, code, body)
		}
		var de struct{ Error, Reason string }
		if err := json.Unmarshal(body, &de); err != nil || de.Reason != tc.reason {
			t.Fatalf("cluster %s body %s: reason %q, want %q", tc.route, body, de.Reason, tc.reason)
		}
		// The legacy alias answers identically.
		lcode, lbody := postRaw(t, csrv.URL+"/"+testIndex+tc.route, "application/json", nil)
		if lcode != code || !bytes.Equal(lbody, body) {
			t.Fatalf("cluster %s: legacy alias diverged (%d %s)", tc.route, lcode, lbody)
		}
	}

	// Stats through the coordinator aggregates with a partition breakdown.
	hresp, err := http.Get(csrv.URL + "/v1/" + testIndex + "/_stats")
	if err != nil {
		t.Fatalf("GET _stats: %v", err)
	}
	defer hresp.Body.Close()
	var cs ClusterStats
	if err := json.NewDecoder(hresp.Body).Decode(&cs); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	want, err := singleC.Count(ctx, testIndex, store.MatchAll())
	if err != nil {
		t.Fatalf("single count: %v", err)
	}
	if cs.Docs != want || len(cs.Partitions) != 4 {
		t.Fatalf("cluster stats %+v, want %d docs over 4 partitions", cs, want)
	}
}

// TestClusterHealthAndMetricsHTTP: the coordinator's observability endpoints
// report per-node routing state and fan-out counters.
func TestClusterHealthAndMetricsHTTP(t *testing.T) {
	_, csrv, _ := newHTTPCluster(t, 2)
	clusterC := store.NewClient(csrv.URL, store.WithAPIPrefix("/v1"))
	ingestBoth(t, clusterC)
	if _, err := clusterC.Search(context.Background(), testIndex, store.SearchRequest{Query: store.MatchAll(), Size: 1}); err != nil {
		t.Fatalf("search: %v", err)
	}

	hresp, err := http.Get(csrv.URL + "/v1/_health")
	if err != nil {
		t.Fatalf("GET _health: %v", err)
	}
	defer hresp.Body.Close()
	var h ClusterHealth
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatalf("decode health: %v", err)
	}
	if h.Status != "ok" || h.Partitions != 2 || len(h.Nodes) != 2 {
		t.Fatalf("cluster health = %+v", h)
	}
	for p, n := range h.Nodes {
		if n.Partition != p || n.Breaker != "closed" || n.Role != "primary" {
			t.Fatalf("node %d health = %+v", p, n)
		}
	}

	mresp, err := http.Get(csrv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer mresp.Body.Close()
	mb, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"dio_cluster_fanouts_total",
		"dio_cluster_routed_rows_total",
		"dio_cluster_node0_calls_total",
		"dio_cluster_node1_breaker_open",
	} {
		if !bytes.Contains(mb, []byte(want)) {
			t.Fatalf("/metrics missing %s:\n%s", want, mb)
		}
	}
}

// TestClusterCursorResumeAcrossPartitionFailover is the satellite scenario:
// a sorted search_after walk through the coordinator keeps returning
// byte-identical pages when one partition's primary dies between pages and
// its WAL-shipped follower is promoted — the FailoverClient under that
// partition re-picks, and the cursor (cluster-global coordinates) is valid
// on the follower because replication preserves row ids.
func TestClusterCursorResumeAcrossPartitionFailover(t *testing.T) {
	ctx := context.Background()

	// Partition 0: durable primary + in-memory follower behind a
	// WAL-shipping replicator, fronted by a two-member FailoverClient.
	dir, err := os.MkdirTemp("", "dio-cluster-failover-")
	if err != nil {
		t.Fatalf("tempdir: %v", err)
	}
	defer os.RemoveAll(dir)
	primary, err := store.Open(
		store.WithDataDir(dir),
		store.WithFsyncPolicy(store.FsyncInterval),
		store.WithSnapshotInterval(0))
	if err != nil {
		t.Fatalf("open primary: %v", err)
	}
	defer primary.Close()
	psrv := httptest.NewServer(store.NewServer(primary))
	follower := store.New()
	follower.SetFollower()
	fsrv := httptest.NewServer(store.NewServer(follower))
	defer fsrv.Close()
	shipper := repl.New(primary, repl.ClientTransport{C: store.NewClient(fsrv.URL)}, repl.Config{
		Interval: 5 * time.Millisecond,
	})
	shipper.Start()
	fo0, err := store.NewFailoverClient(
		store.NewClient(psrv.URL, store.WithAPIPrefix("/v1")),
		store.NewClient(fsrv.URL, store.WithAPIPrefix("/v1")))
	if err != nil {
		t.Fatalf("failover client: %v", err)
	}

	// Partition 1: a plain single-member node.
	st1 := store.New()
	srv1 := httptest.NewServer(store.NewServer(st1))
	defer srv1.Close()
	fo1, err := store.NewFailoverClient(store.NewClient(srv1.URL, store.WithAPIPrefix("/v1")))
	if err != nil {
		t.Fatalf("failover client: %v", err)
	}

	co, err := New(Config{Clock: clock.NewVirtual(0)}, NewHTTPNode(psrv.URL, fo0), NewHTTPNode(srv1.URL, fo1))
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}

	// Control: the same rows in a single store, walked uninterrupted.
	control := store.New()
	ingestBoth(t, control, co)

	// Drain replication so the follower holds exactly the primary's state
	// before the kill (the repl suite's own lossless-handover precondition).
	if err := shipper.Stop(); err != nil {
		t.Fatalf("drain shipper: %v", err)
	}

	req := store.SearchRequest{
		Query: store.MatchAll(), Size: 13,
		Sort: []store.SortField{
			{Field: store.FieldProcName},
			{Field: store.FieldTimeEnter},
		},
	}
	want, err := control.Search(ctx, testIndex, req)
	if err != nil {
		t.Fatalf("control page 1: %v", err)
	}
	got, err := co.Search(ctx, testIndex, req)
	if err != nil {
		t.Fatalf("cluster page 1: %v", err)
	}
	if fingerprintCluster(t, got) != fingerprintSingle(t, want) {
		t.Fatal("page 1 diverged before the failover")
	}

	// Partition 0's primary dies between pages; the follower is promoted.
	psrv.Close()
	follower.Promote()

	creq, sreq := req, req
	page := 2
	for {
		sreq.SearchAfter, creq.SearchAfter = want.NextAfter, got.NextAfter
		want, err = control.Search(ctx, testIndex, sreq)
		if err != nil {
			t.Fatalf("control page %d: %v", page, err)
		}
		got, err = co.Search(ctx, testIndex, creq)
		if err != nil {
			t.Fatalf("cluster page %d (after failover): %v", page, err)
		}
		if fingerprintCluster(t, got) != fingerprintSingle(t, want) {
			t.Fatalf("page %d diverged after partition failover", page)
		}
		if want.NextAfter == nil {
			break
		}
		if page++; page > 60 {
			t.Fatal("cursor walk did not terminate")
		}
	}
	if fo0.Switches() == 0 {
		t.Fatal("partition 0 never failed over — the test did not exercise the handover")
	}

	// The promoted follower also accepts new writes routed to partition 0.
	if err := co.BulkEvents(ctx, testIndex, clusterEvents(30, 6)); err != nil {
		t.Fatalf("bulk after promote: %v", err)
	}

	// Count still exact across the promoted partition.
	cn, err := co.Count(ctx, testIndex, store.MatchAll())
	if err != nil {
		t.Fatalf("count after failover: %v", err)
	}
	sn, _ := control.Count(ctx, testIndex, store.MatchAll())
	if cn != sn+6 {
		t.Fatalf("post-failover count %d, want %d", cn, sn+6)
	}
}

// TestClusterHTTPNode404Sentinel pins the adapter detail the empty-partition
// logic rides on: an HTTP 404 from a node surfaces as ErrIndexNotFound.
func TestClusterHTTPNode404Sentinel(t *testing.T) {
	ctx := context.Background()
	st := store.New()
	srv := httptest.NewServer(store.NewServer(st))
	defer srv.Close()
	fc, err := store.NewFailoverClient(store.NewClient(srv.URL, store.WithAPIPrefix("/v1")))
	if err != nil {
		t.Fatalf("failover client: %v", err)
	}
	n := NewHTTPNode(srv.URL, fc)
	if _, err := n.Count(ctx, "missing", store.MatchAll()); !errors.Is(err, ErrIndexNotFound) {
		t.Fatalf("count on missing index: %v, want ErrIndexNotFound", err)
	}
	if _, err := n.Scatter(ctx, "missing", store.ScatterRequest{
		Req: store.SearchRequest{Query: store.MatchAll()}, Partitions: 1,
	}); !errors.Is(err, ErrIndexNotFound) {
		t.Fatalf("scatter on missing index: %v, want ErrIndexNotFound", err)
	}
	if _, err := n.Stats(ctx, "missing"); !errors.Is(err, ErrIndexNotFound) {
		t.Fatalf("stats on missing index: %v, want ErrIndexNotFound", err)
	}
}
