package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// BenchmarkCoordinatorFanout measures the scatter-gather read path at 1, 2,
// and 4 partitions, against the central-gather ablation: a naive coordinator
// that makes every node ship ALL matching hits (marshaled docs and sort keys
// included) and applies the top-k window centrally. The production scatter
// prunes per node — each partition contributes at most From+Size candidates
// — so the gap between the two is the win the per-node candidate budget buys
// (the cluster-level analogue of the shard-level top-k heap in PR 1).
//
// On a single-core host the partitions' scatters serialize, so nodes=4 vs
// nodes=1 measures coordination overhead, not parallel speedup; the
// pruned-vs-central ratio is the committed acceptance number.
func BenchmarkCoordinatorFanout(b *testing.B) {
	const rows = 30_000
	req := store.SearchRequest{
		Query: store.Term(store.FieldSyscall, "write"),
		Size:  50,
		Sort:  []store.SortField{{Field: store.FieldTimeEnter, Desc: true}},
	}
	for _, n := range []int{1, 2, 4} {
		co, mems := benchCluster(b, n, rows)
		b.Run(fmt.Sprintf("scatter-pruned/nodes=%d", n), func(b *testing.B) {
			ctx := context.Background()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				resp, err := co.Search(ctx, testIndex, req)
				if err != nil {
					b.Fatal(err)
				}
				if len(resp.Hits) != req.Size {
					b.Fatalf("got %d hits, want %d", len(resp.Hits), req.Size)
				}
			}
		})
		b.Run(fmt.Sprintf("central-gather/nodes=%d", n), func(b *testing.B) {
			ctx := context.Background()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				resp, err := centralGather(ctx, mems, testIndex, req)
				if err != nil {
					b.Fatal(err)
				}
				if len(resp.Hits) != req.Size {
					b.Fatalf("got %d hits, want %d", len(resp.Hits), req.Size)
				}
			}
		})
	}
}

func benchCluster(b *testing.B, nodes, rows int) (*Coordinator, []*memNode) {
	b.Helper()
	mems := make([]*memNode, nodes)
	ns := make([]Node, nodes)
	for i := range mems {
		mems[i] = newMemNode(fmt.Sprintf("mem-%d", i))
		ns[i] = mems[i]
	}
	co, err := New(Config{Clock: clock.NewVirtual(0)}, ns...)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	const batch = 1000
	for off := 0; off < rows; off += batch {
		if err := co.BulkEvents(ctx, testIndex, clusterEvents(off/batch, batch)); err != nil {
			b.Fatal(err)
		}
	}
	return co, mems
}

// centralGather is the ablation coordinator: the same scatter RPC, but with
// the candidate budget removed (Size=0 makes each node ship its entire match
// set), the window applied only at the top. Identical results, no per-node
// pruning.
func centralGather(ctx context.Context, mems []*memNode, index string, req store.SearchRequest) (store.GatherResponse, error) {
	naive := req
	naive.From, naive.Size = 0, 0
	P := len(mems)
	resps := make([]store.ScatterResponse, P)
	errs := make([]error, P)
	var wg sync.WaitGroup
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			resps[p], errs[p] = mems[p].Scatter(ctx, index, store.ScatterRequest{
				Req: naive, Partition: p, Partitions: P,
			})
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return store.GatherResponse{}, err
		}
	}
	return store.MergeScatters(req, resps), nil
}
