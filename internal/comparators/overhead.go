package comparators

import (
	"fmt"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// OverheadResult is one row of Table II.
type OverheadResult struct {
	Mode     Mode
	Syscalls uint64
	// ExecTime is the workload's execution time in simulated (virtual)
	// time, where tracer costs are charged synchronously like the real
	// mechanisms would.
	ExecTime time.Duration
	// Overhead is ExecTime divided by the vanilla ExecTime.
	Overhead float64
}

// OverheadConfig parametrizes the Table II experiment.
type OverheadConfig struct {
	// Cycles is the number of workload cycles (each ≈20 syscalls).
	Cycles int
	// Costs is the per-syscall tracer cost model.
	Costs CostModel
	// Workload shapes the synthetic I/O stream.
	Workload WorkloadConfig
	// Disk configures the simulated device (zero = default).
	Disk kernel.DiskConfig
}

// RunOverheadExperiment reproduces Table II: it executes the same workload
// under the vanilla, Sysdig, DIO, and strace configurations on a virtual
// clock, charging each tracer's synchronous costs, and reports execution
// times and slowdowns. The simulation runs single-threaded so that the
// virtual clock advances only with the workload's own operations.
func RunOverheadExperiment(cfg OverheadConfig) ([]OverheadResult, error) {
	if cfg.Cycles <= 0 {
		cfg.Cycles = 500
	}
	if cfg.Costs == (CostModel{}) {
		cfg.Costs = DefaultCostModel()
	}

	out := make([]OverheadResult, 0, 4)
	var vanillaNS int64
	for _, mode := range AllModes() {
		execNS, syscalls, err := runMode(mode, cfg)
		if err != nil {
			return nil, fmt.Errorf("mode %s: %w", mode, err)
		}
		res := OverheadResult{Mode: mode, Syscalls: syscalls, ExecTime: time.Duration(execNS)}
		if mode == ModeVanilla {
			vanillaNS = execNS
		}
		if vanillaNS > 0 {
			res.Overhead = float64(execNS) / float64(vanillaNS)
		}
		out = append(out, res)
	}
	return out, nil
}

func runMode(mode Mode, cfg OverheadConfig) (execNS int64, syscalls uint64, err error) {
	clk := clock.NewVirtual(0)
	k := kernel.New(kernel.Config{Clock: clk, Disk: cfg.Disk})
	task := k.NewProcess("db_bench").NewTask("db_bench")

	var finish func() error
	switch mode {
	case ModeVanilla:
		finish = func() error { return nil }
	case ModeStrace:
		tr := NewStraceTracer(clk, cfg.Costs.StracePerSyscall)
		tr.Attach(k)
		finish = func() error { tr.Detach(); return nil }
	case ModeSysdig:
		tr := NewSysdigTracer(SysdigConfig{
			Clock:        clk,
			PerEventCost: cfg.Costs.SysdigPerSyscall,
			RingBytes:    1 << 30, // ample: this experiment measures cost, not drops
		})
		tr.Attach(k)
		finish = func() error { tr.Detach(); tr.Consume(); return nil }
	case ModeDIO:
		half := cfg.Costs.DIOPerSyscall / 2
		tracer, terr := core.NewTracer(core.Config{
			SessionName: "table2-dio",
			Backend:     store.New(),
			RingBytes:   1 << 30,
			// The program charges this at both entry and exit.
			PerEventCost: func() { clk.Sleep(half) },
		})
		if terr != nil {
			return 0, 0, terr
		}
		if serr := tracer.Start(k); serr != nil {
			return 0, 0, serr
		}
		finish = func() error { _, e := tracer.Stop(); return e }
	default:
		return 0, 0, fmt.Errorf("unknown mode %v", mode)
	}

	start := clk.NowNS()
	if werr := RunWorkload(k, task, cfg.Workload, cfg.Cycles); werr != nil {
		finish()
		return 0, 0, werr
	}
	end := clk.NowNS()
	if ferr := finish(); ferr != nil {
		return 0, 0, ferr
	}
	return end - start, k.SyscallCount(), nil
}
