package comparators

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/kernel"
)

// StraceTracer models strace: a ptrace-based tracer that stops the traced
// thread at every syscall entry and exit, decodes the event synchronously
// in the tracer process, and appends a formatted line to its log. It never
// drops events — the cost is that the full decoding latency sits on the
// application's critical path, which is why Table II shows it with the
// highest overhead (1.71×).
type StraceTracer struct {
	clk  clock.Clock
	cost time.Duration

	mu       sync.Mutex
	lines    []string
	detaches []func()
	events   atomic.Uint64
}

// NewStraceTracer creates a strace-style tracer charging cost per syscall.
func NewStraceTracer(clk clock.Clock, cost time.Duration) *StraceTracer {
	return &StraceTracer{clk: clk, cost: cost}
}

// Attach instruments every supported syscall of k.
func (s *StraceTracer) Attach(k *kernel.Kernel) {
	tps := k.Tracepoints()
	half := s.cost / 2
	for _, nr := range kernel.AllSyscalls() {
		s.detaches = append(s.detaches,
			tps.AttachEnter(nr, func(e *kernel.Enter) {
				// PTRACE_SYSCALL stop at entry: tracee blocks while the
				// tracer inspects registers.
				s.clk.Sleep(half)
			}),
			tps.AttachExit(nr, func(e *kernel.Exit) {
				s.clk.Sleep(half)
				s.events.Add(1)
				s.mu.Lock()
				s.lines = append(s.lines, formatStraceLine(e))
				s.mu.Unlock()
			}),
		)
	}
}

// Detach removes all instrumentation.
func (s *StraceTracer) Detach() {
	for _, d := range s.detaches {
		d()
	}
	s.detaches = nil
}

// Events returns the number of traced syscalls.
func (s *StraceTracer) Events() uint64 { return s.events.Load() }

// Lines returns a copy of the formatted trace log.
func (s *StraceTracer) Lines() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.lines...)
}

// formatStraceLine renders an event in strace's familiar style, with
// decoded open flags, whence names, and errno names on failures, e.g.
//
//	[pid 101] openat(AT_FDCWD, "/tmp/a", O_WRONLY|O_CREAT, 0644) = 3
//	[pid 101] stat("/nope") = -1 ENOENT
func formatStraceLine(e *kernel.Exit) string {
	args := straceArgs(e)
	ret := fmt.Sprintf("%d", e.Ret)
	if e.Ret < 0 {
		ret = "-1 " + kernel.Errno(-e.Ret).Error()
	}
	return fmt.Sprintf("[pid %d] %s(%s) = %s", e.TID, e.NR, strings.Join(args, ", "), ret)
}

// straceArgs decodes the syscall's arguments per type.
func straceArgs(e *kernel.Exit) []string {
	var args []string
	addFD := func() {
		if e.Args.FD == kernel.AtFDCWD {
			args = append(args, "AT_FDCWD")
		} else {
			args = append(args, fmt.Sprintf("%d", e.Args.FD))
		}
	}
	switch {
	case e.NR == kernel.SysOpen || e.NR == kernel.SysCreat:
		args = append(args, fmt.Sprintf("%q", e.Args.Path), formatOpenFlags(e.Args.Flags),
			fmt.Sprintf("%04o", e.Args.Mode))
	case e.NR == kernel.SysOpenat:
		addFD()
		args = append(args, fmt.Sprintf("%q", e.Args.Path), formatOpenFlags(e.Args.Flags),
			fmt.Sprintf("%04o", e.Args.Mode))
	case e.NR == kernel.SysLseek:
		addFD()
		args = append(args, fmt.Sprintf("%d", e.Args.Offset), whenceName(e.Args.Whence))
	case e.NR == kernel.SysPread64 || e.NR == kernel.SysPwrite64:
		addFD()
		args = append(args, fmt.Sprintf("%d", e.Args.Count), fmt.Sprintf("%d", e.Args.Offset))
	case e.NR.UsesFD():
		addFD()
		if e.Args.Count != 0 {
			args = append(args, fmt.Sprintf("%d", e.Args.Count))
		}
		if e.Args.AttrName != "" {
			args = append(args, fmt.Sprintf("%q", e.Args.AttrName))
		}
	default:
		if e.Args.Path != "" {
			args = append(args, fmt.Sprintf("%q", e.Args.Path))
		}
		if e.Args.Path2 != "" {
			args = append(args, fmt.Sprintf("%q", e.Args.Path2))
		}
		if e.Args.AttrName != "" {
			args = append(args, fmt.Sprintf("%q", e.Args.AttrName))
		}
		if e.Args.Count != 0 {
			args = append(args, fmt.Sprintf("%d", e.Args.Count))
		}
	}
	return args
}

// formatOpenFlags renders open(2) flags symbolically.
func formatOpenFlags(f kernel.OpenFlags) string {
	var parts []string
	switch f & 0x3 {
	case kernel.OWronly:
		parts = append(parts, "O_WRONLY")
	case kernel.ORdwr:
		parts = append(parts, "O_RDWR")
	default:
		parts = append(parts, "O_RDONLY")
	}
	for _, fl := range []struct {
		bit  kernel.OpenFlags
		name string
	}{
		{kernel.OCreat, "O_CREAT"},
		{kernel.OExcl, "O_EXCL"},
		{kernel.OTrunc, "O_TRUNC"},
		{kernel.OAppend, "O_APPEND"},
		{kernel.ODirectory, "O_DIRECTORY"},
	} {
		if f&fl.bit != 0 {
			parts = append(parts, fl.name)
		}
	}
	return strings.Join(parts, "|")
}

func whenceName(w int) string {
	switch w {
	case kernel.SeekSet:
		return "SEEK_SET"
	case kernel.SeekCur:
		return "SEEK_CUR"
	case kernel.SeekEnd:
		return "SEEK_END"
	default:
		return fmt.Sprintf("%d", w)
	}
}
