package comparators

import (
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/kernel"
)

func TestModeStrings(t *testing.T) {
	want := []string{"vanilla", "sysdig", "DIO", "strace"}
	for i, m := range AllModes() {
		if m.String() != want[i] {
			t.Fatalf("mode[%d] = %q, want %q", i, m, want[i])
		}
	}
	if Mode(0).String() != "unknown" {
		t.Fatal("zero mode string")
	}
}

func TestWorkloadSyscallCount(t *testing.T) {
	clk := clock.NewVirtual(0)
	k := kernel.New(kernel.Config{Clock: clk})
	task := k.NewProcess("w").NewTask("w")
	cfg := WorkloadConfig{}
	const cycles = 10
	if err := RunWorkload(k, task, cfg, cycles); err != nil {
		t.Fatalf("workload: %v", err)
	}
	want := uint64(cycles * cfg.SyscallsPerCycle())
	if got := k.SyscallCount(); got != want {
		t.Fatalf("syscalls = %d, want %d", got, want)
	}
}

func TestStraceTracerCapturesAndCharges(t *testing.T) {
	clk := clock.NewVirtual(0)
	k := kernel.New(kernel.Config{
		Clock: clk,
		Disk:  kernel.DiskConfig{BytesPerSecond: 1 << 40, PerOpLatency: 0},
	})
	task := k.NewProcess("app").NewTask("app")
	k.MkdirAll("/tmp")

	tr := NewStraceTracer(clk, 10*time.Microsecond)
	tr.Attach(k)

	before := clk.NowNS()
	fd, _ := task.Openat(kernel.AtFDCWD, "/tmp/a", kernel.OWronly|kernel.OCreat, 0o644)
	task.Write(fd, []byte("abc"))
	task.Close(fd)
	charged := clk.NowNS() - before

	tr.Detach()
	if tr.Events() != 3 {
		t.Fatalf("events = %d, want 3", tr.Events())
	}
	// Three syscalls at 10µs each.
	if charged != 30_000 {
		t.Fatalf("charged = %dns, want 30000", charged)
	}
	lines := tr.Lines()
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.Contains(lines[0], `openat(AT_FDCWD, "/tmp/a", O_WRONLY|O_CREAT, 0644) = 3`) {
		t.Fatalf("line[0] = %q", lines[0])
	}
	if !strings.Contains(lines[1], "write(3, 3) = 3") {
		t.Fatalf("line[1] = %q", lines[1])
	}

	// After detach nothing is charged or captured.
	task.Stat("/tmp/a")
	if tr.Events() != 3 {
		t.Fatal("events captured after detach")
	}
}

func TestSysdigResolvesOnlySessionOpenedFDs(t *testing.T) {
	clk := clock.NewVirtual(0)
	k := kernel.New(kernel.Config{Clock: clk})
	k.MkdirAll("/tmp")
	task := k.NewProcess("app").NewTask("app")

	// Opened before the tracer attaches: unresolvable for sysdig.
	preFD, _ := task.Openat(kernel.AtFDCWD, "/tmp/pre", kernel.OWronly|kernel.OCreat, 0o644)

	tr := NewSysdigTracer(SysdigConfig{Clock: clk})
	tr.Attach(k)

	task.Write(preFD, []byte("x")) // unresolved
	fd, _ := task.Openat(kernel.AtFDCWD, "/tmp/in", kernel.OWronly|kernel.OCreat, 0o644)
	task.Write(fd, []byte("y")) // resolved
	task.Close(fd)              // resolved
	tr.Detach()
	tr.Consume()

	st := tr.Stats()
	if st.Consumed != 4 {
		t.Fatalf("consumed = %d, want 4", st.Consumed)
	}
	if st.Unresolved != 1 || st.Resolved != 3 {
		t.Fatalf("resolved/unresolved = %d/%d, want 3/1", st.Resolved, st.Unresolved)
	}
	evs := tr.Events()
	if evs[0].Path != "" {
		t.Fatalf("pre-attach fd resolved to %q", evs[0].Path)
	}
	if evs[2].Path != "/tmp/in" {
		t.Fatalf("in-session write path = %q", evs[2].Path)
	}
	if f := st.UnresolvedFraction(); f != 0.25 {
		t.Fatalf("unresolved fraction = %v", f)
	}
}

func TestSysdigDropsPoisonPathResolution(t *testing.T) {
	clk := clock.NewVirtual(0)
	k := kernel.New(kernel.Config{Clock: clk})
	k.MkdirAll("/tmp")
	task := k.NewProcess("app").NewTask("app")

	// A ring that fits only a couple of records: the open event is consumed,
	// then the buffer overflows during the write storm.
	tr := NewSysdigTracer(SysdigConfig{Clock: clk, RingBytes: 400})
	tr.Attach(k)
	fd, _ := task.Openat(kernel.AtFDCWD, "/tmp/f", kernel.OWronly|kernel.OCreat, 0o644)
	for i := 0; i < 50; i++ {
		task.Write(fd, []byte("x"))
	}
	task.Close(fd)
	tr.Detach()
	tr.Consume()

	st := tr.Stats()
	if st.Dropped == 0 {
		t.Fatal("no drops despite tiny ring")
	}
	if st.Consumed+st.Dropped != st.Captured {
		t.Fatalf("consumed(%d)+dropped(%d) != captured(%d)", st.Consumed, st.Dropped, st.Captured)
	}
}

func TestOverheadExperimentShape(t *testing.T) {
	res, err := RunOverheadExperiment(OverheadConfig{Cycles: 200})
	if err != nil {
		t.Fatalf("experiment: %v", err)
	}
	if len(res) != 4 {
		t.Fatalf("rows = %d", len(res))
	}
	byMode := make(map[Mode]OverheadResult, 4)
	for _, r := range res {
		byMode[r.Mode] = r
	}
	v, s, d, st := byMode[ModeVanilla], byMode[ModeSysdig], byMode[ModeDIO], byMode[ModeStrace]

	// All modes executed the same workload.
	if v.Syscalls == 0 || v.Syscalls != s.Syscalls || v.Syscalls != d.Syscalls || v.Syscalls != st.Syscalls {
		t.Fatalf("syscall counts differ: %d %d %d %d", v.Syscalls, s.Syscalls, d.Syscalls, st.Syscalls)
	}
	// Table II ordering: vanilla < sysdig < DIO < strace.
	if !(v.ExecTime < s.ExecTime && s.ExecTime < d.ExecTime && d.ExecTime < st.ExecTime) {
		t.Fatalf("ordering violated: %v %v %v %v", v.ExecTime, s.ExecTime, d.ExecTime, st.ExecTime)
	}
	// Ratios near the paper's 1.04 / 1.37 / 1.71.
	within := func(got, want, tol float64) bool { return got > want-tol && got < want+tol }
	if !within(s.Overhead, 1.04, 0.04) {
		t.Errorf("sysdig overhead = %.3f, want ≈1.04", s.Overhead)
	}
	if !within(d.Overhead, 1.37, 0.12) {
		t.Errorf("DIO overhead = %.3f, want ≈1.37", d.Overhead)
	}
	if !within(st.Overhead, 1.71, 0.22) {
		t.Errorf("strace overhead = %.3f, want ≈1.71", st.Overhead)
	}
}

func TestTable3Encoding(t *testing.T) {
	rows := Table3()
	if len(rows) != 9 {
		t.Fatalf("tools = %d, want 9", len(rows))
	}
	var dio *ToolCapability
	offsetTools := 0
	for i := range rows {
		if rows[i].FOffset {
			offsetTools++
		}
		if rows[i].Tool == "DIO" {
			dio = &rows[i]
		}
	}
	if offsetTools != 1 {
		t.Fatalf("tools with f_offset = %d; the paper says only DIO collects offsets", offsetTools)
	}
	if dio == nil || dio.UseCaseB != UseCaseAnalysis || dio.UseCaseC != UseCaseAnalysis {
		t.Fatalf("DIO row = %+v", dio)
	}
	if dio.Integrated != IntegrationInline || !dio.Customizable || !dio.PredefinedVis {
		t.Fatalf("DIO pipeline caps = %+v", dio)
	}
	tbl := RenderTable3()
	if len(tbl.Rows) != 9 || len(tbl.Columns) != 12 {
		t.Fatalf("rendered table = %dx%d", len(tbl.Rows), len(tbl.Columns))
	}
	if !strings.Contains(tbl.String(), "DIO") {
		t.Fatal("rendered table missing DIO")
	}
}

func TestStraceFormatting(t *testing.T) {
	clk := clock.NewVirtual(0)
	k := kernel.New(kernel.Config{
		Clock: clk,
		Disk:  kernel.DiskConfig{BytesPerSecond: 1 << 40, PerOpLatency: 0},
	})
	k.MkdirAll("/tmp")
	task := k.NewProcess("app").NewTask("app")

	tr := NewStraceTracer(clk, 0)
	tr.Attach(k)
	defer tr.Detach()

	fd, _ := task.Openat(kernel.AtFDCWD, "/tmp/fmt", kernel.ORdwr|kernel.OCreat|kernel.OTrunc, 0o600)
	task.Lseek(fd, 10, kernel.SeekSet)
	task.Pwrite64(fd, []byte("abcd"), 2)
	task.Stat("/missing")
	task.Rename("/tmp/fmt", "/tmp/fmt2")
	task.Close(fd)

	lines := tr.Lines()
	want := []string{
		`openat(AT_FDCWD, "/tmp/fmt", O_RDWR|O_CREAT|O_TRUNC, 0600) = 3`,
		`lseek(3, 10, SEEK_SET) = 10`,
		`pwrite64(3, 4, 2) = 4`,
		`stat("/missing") = -1 ENOENT`,
		`rename("/tmp/fmt", "/tmp/fmt2") = 0`,
		`close(3) = 0`,
	}
	if len(lines) != len(want) {
		t.Fatalf("lines = %d: %v", len(lines), lines)
	}
	for i, w := range want {
		if !strings.Contains(lines[i], w) {
			t.Errorf("line[%d] = %q, want suffix %q", i, lines[i], w)
		}
	}
}
