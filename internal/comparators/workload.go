package comparators

import (
	"fmt"

	"github.com/dsrhaslab/dio-go/internal/kernel"
)

// WorkloadConfig shapes the synthetic data-intensive workload used by the
// overhead experiment. The default mix reproduces the per-syscall cost
// profile of the paper's RocksDB run: mostly 4 KiB data transfers with
// periodic opens, fsyncs, and closes, averaging ≈25µs of storage time per
// syscall on the default disk (549M syscalls over 13,680s in the paper).
type WorkloadConfig struct {
	// Dir is the directory holding the workload's files.
	Dir string
	// Files is the number of files cycled over.
	Files int
	// IOSize is the size of each read/write.
	IOSize int
	// IOsPerOpen is the number of writes (and reads) per open/close cycle.
	IOsPerOpen int
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.Dir == "" {
		c.Dir = "/data"
	}
	if c.Files <= 0 {
		c.Files = 16
	}
	if c.IOSize <= 0 {
		c.IOSize = 4096
	}
	if c.IOsPerOpen <= 0 {
		c.IOsPerOpen = 8
	}
	return c
}

// SyscallsPerCycle returns the number of syscalls one cycle issues.
func (c WorkloadConfig) SyscallsPerCycle() int {
	c = c.withDefaults()
	// openat + N writes + fsync + lseek + N reads + close
	return 1 + c.IOsPerOpen + 1 + 1 + c.IOsPerOpen + 1
}

// RunWorkload executes cycles of the synthetic workload on task. Each cycle
// opens a file, streams IOsPerOpen writes, fsyncs, rewinds, streams
// IOsPerOpen reads, and closes — the data-oriented open/read/write/close
// pattern the paper traces in §III-C.
func RunWorkload(k *kernel.Kernel, task *kernel.Task, cfg WorkloadConfig, cycles int) error {
	cfg = cfg.withDefaults()
	if err := k.MkdirAll(cfg.Dir); err != nil {
		return fmt.Errorf("mkdir %s: %w", cfg.Dir, err)
	}
	buf := make([]byte, cfg.IOSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	rbuf := make([]byte, cfg.IOSize)
	for cyc := 0; cyc < cycles; cyc++ {
		path := fmt.Sprintf("%s/f%03d.dat", cfg.Dir, cyc%cfg.Files)
		fd, err := task.Openat(kernel.AtFDCWD, path, kernel.ORdwr|kernel.OCreat|kernel.OTrunc, 0o644)
		if err != nil {
			return fmt.Errorf("cycle %d open: %w", cyc, err)
		}
		for i := 0; i < cfg.IOsPerOpen; i++ {
			if _, err := task.Write(fd, buf); err != nil {
				return fmt.Errorf("cycle %d write: %w", cyc, err)
			}
		}
		if err := task.Fsync(fd); err != nil {
			return fmt.Errorf("cycle %d fsync: %w", cyc, err)
		}
		if _, err := task.Lseek(fd, 0, kernel.SeekSet); err != nil {
			return fmt.Errorf("cycle %d lseek: %w", cyc, err)
		}
		for i := 0; i < cfg.IOsPerOpen; i++ {
			if _, err := task.Read(fd, rbuf); err != nil {
				return fmt.Errorf("cycle %d read: %w", cyc, err)
			}
		}
		if err := task.Close(fd); err != nil {
			return fmt.Errorf("cycle %d close: %w", cyc, err)
		}
	}
	return nil
}
