// Package comparators implements the baseline tracers DIO is evaluated
// against in §III-D: a strace-style synchronous ptrace tracer and a
// Sysdig-style eBPF tracer, plus the overhead experiment (Table II), the
// path-resolution coverage experiment, and the qualitative tool-comparison
// matrix (Table III).
package comparators

import "time"

// CostModel holds the per-syscall tracing costs charged synchronously to
// the traced application. The defaults are derived from the paper's
// Table II: with ≈549M syscalls over a 3h48m (13,680s) vanilla run, the
// measured slowdowns translate to per-syscall costs of ≈1.0µs for Sysdig
// (1.04×), ≈9.2µs for DIO (1.37×), and ≈17.7µs for strace (1.71×). The
// strace figure is consistent with its mechanism: two ptrace stops per
// syscall, each costing a pair of context switches.
type CostModel struct {
	// StracePerSyscall is charged once per syscall (entry+exit combined):
	// trap, tracee stop, tracer wakeup, argument peeking, resume.
	StracePerSyscall time.Duration
	// SysdigPerSyscall is the in-kernel capture cost of the Sysdig probe.
	SysdigPerSyscall time.Duration
	// DIOPerSyscall is DIO's kernel-side cost: record construction,
	// enrichment lookups (file tag, offset, type), and ring publication.
	DIOPerSyscall time.Duration
}

// DefaultCostModel returns the Table II-derived costs.
func DefaultCostModel() CostModel {
	return CostModel{
		StracePerSyscall: 17700 * time.Nanosecond,
		SysdigPerSyscall: 1000 * time.Nanosecond,
		DIOPerSyscall:    9200 * time.Nanosecond,
	}
}

// Mode identifies a tracing configuration of Table II.
type Mode int

// Tracing configurations.
const (
	ModeVanilla Mode = iota + 1
	ModeSysdig
	ModeDIO
	ModeStrace
)

// String returns the row label used in Table II.
func (m Mode) String() string {
	switch m {
	case ModeVanilla:
		return "vanilla"
	case ModeSysdig:
		return "sysdig"
	case ModeDIO:
		return "DIO"
	case ModeStrace:
		return "strace"
	default:
		return "unknown"
	}
}

// AllModes returns the Table II rows in paper order.
func AllModes() []Mode {
	return []Mode{ModeVanilla, ModeSysdig, ModeDIO, ModeStrace}
}
