package comparators

import (
	"sync"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/ebpf"
	"github.com/dsrhaslab/dio-go/internal/kernel"
)

// SysdigDefaultRingBytes mirrors Sysdig's small default per-CPU buffer
// (8 MiB, versus the 256 MiB the paper configures for DIO), scaled to the
// simulation. A smaller buffer drops more events under pressure.
const SysdigDefaultRingBytes = 128 << 10

// SysdigEvent is one decoded event from the Sysdig-style tracer.
type SysdigEvent struct {
	Syscall  kernel.Syscall
	PID      int
	TID      int
	ProcName string
	Ret      int64
	// Path is resolved from the tracer's user-space fd table; empty when
	// the descriptor's open was never consumed (opened before the tracer
	// attached, or the open event was dropped).
	Path string
}

// SysdigStats summarizes a Sysdig-style capture.
type SysdigStats struct {
	Captured   uint64
	Dropped    uint64
	Consumed   uint64
	Resolved   uint64
	Unresolved uint64
}

// UnresolvedFraction is the share of consumed events without a path.
func (s SysdigStats) UnresolvedFraction() float64 {
	if s.Consumed == 0 {
		return 0
	}
	return float64(s.Unresolved) / float64(s.Consumed)
}

// SysdigTracer models Sysdig: an eBPF-based tracer with a lean kernel probe
// (low overhead, Table II's 1.04×) that captures minimal per-event data and
// reconstructs context — such as fd→path mappings — in user space. The
// reconstruction is lossy: descriptors opened before the capture started,
// and descriptors whose open event was dropped by the ring buffer, can
// never be resolved to paths. This is the mechanism behind §III-D's
// observation that Sysdig reports no path for ≈45% of events while DIO's
// kernel-side file tags miss at most the dropped opens (≈5%).
type SysdigTracer struct {
	clk   clock.Clock
	cost  time.Duration
	rings *ebpf.PerCPU

	detaches []func()

	mu      sync.Mutex
	fdTable map[fdKey]string
	events  []SysdigEvent
	stats   SysdigStats
}

type fdKey struct {
	pid int
	fd  int
}

// SysdigConfig parametrizes the tracer.
type SysdigConfig struct {
	Clock        clock.Clock
	PerEventCost time.Duration
	NumCPU       int
	RingBytes    int
}

// NewSysdigTracer creates the tracer.
func NewSysdigTracer(cfg SysdigConfig) *SysdigTracer {
	if cfg.NumCPU < 1 {
		cfg.NumCPU = 1
	}
	if cfg.RingBytes <= 0 {
		cfg.RingBytes = SysdigDefaultRingBytes
	}
	return &SysdigTracer{
		clk:     cfg.Clock,
		cost:    cfg.PerEventCost,
		rings:   ebpf.NewPerCPU(cfg.NumCPU, cfg.RingBytes),
		fdTable: make(map[fdKey]string),
	}
}

// Attach instruments every supported syscall of k.
func (s *SysdigTracer) Attach(k *kernel.Kernel) {
	tps := k.Tracepoints()
	for _, nr := range kernel.AllSyscalls() {
		s.detaches = append(s.detaches, tps.AttachExit(nr, s.onExit))
	}
}

// Detach removes the instrumentation.
func (s *SysdigTracer) Detach() {
	for _, d := range s.detaches {
		d()
	}
	s.detaches = nil
}

// onExit is the lean kernel probe: copy the minimal event (no enrichment,
// no offsets, no file tags) into the ring.
func (s *SysdigTracer) onExit(e *kernel.Exit) {
	if s.cost > 0 && s.clk != nil {
		s.clk.Sleep(s.cost)
	}
	rec := ebpf.Record{
		NR:    uint16(e.NR),
		PID:   int32(e.PID),
		TID:   int32(e.TID),
		Ret:   e.Ret,
		FD:    int32(e.Args.FD),
		Count: int32(e.Args.Count),
		Comm:  e.ProcName,
		Path:  e.Args.Path, // argument path only; no kernel-side resolution
	}
	s.mu.Lock()
	s.stats.Captured++
	s.mu.Unlock()
	s.rings.Write(e.TID, rec.Marshal())
}

// Consume drains the rings, reconstructing fd→path mappings in user space.
// Call it periodically (or once after the workload) the way sysdig's
// consumer thread does.
func (s *SysdigTracer) Consume() {
	for _, ring := range s.rings.Rings() {
		for {
			raws := ring.ReadBatch(1024)
			if len(raws) == 0 {
				break
			}
			for _, raw := range raws {
				rec, err := ebpf.Unmarshal(raw)
				if err != nil {
					continue
				}
				s.consumeRecord(rec)
			}
		}
	}
	s.mu.Lock()
	s.stats.Dropped = s.rings.Drops()
	s.mu.Unlock()
}

func (s *SysdigTracer) consumeRecord(rec ebpf.Record) {
	nr := kernel.Syscall(rec.NR)
	ev := SysdigEvent{
		Syscall:  nr,
		PID:      int(rec.PID),
		TID:      int(rec.TID),
		ProcName: rec.Comm,
		Ret:      rec.Ret,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Consumed++
	switch {
	case nr == kernel.SysOpen || nr == kernel.SysOpenat || nr == kernel.SysCreat:
		ev.Path = rec.Path
		if rec.Ret >= 0 {
			s.fdTable[fdKey{int(rec.PID), int(rec.Ret)}] = rec.Path
		}
	case nr == kernel.SysClose:
		key := fdKey{int(rec.PID), int(rec.FD)}
		ev.Path = s.fdTable[key]
		delete(s.fdTable, key)
	case nr.UsesFD():
		ev.Path = s.fdTable[fdKey{int(rec.PID), int(rec.FD)}]
	default:
		ev.Path = rec.Path
	}
	if ev.Path == "" {
		s.stats.Unresolved++
	} else {
		s.stats.Resolved++
	}
	s.events = append(s.events, ev)
}

// Stats returns a snapshot of the capture statistics.
func (s *SysdigTracer) Stats() SysdigStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Dropped = s.rings.Drops()
	return st
}

// Events returns a copy of the consumed events.
func (s *SysdigTracer) Events() []SysdigEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SysdigEvent(nil), s.events...)
}
