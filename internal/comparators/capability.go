package comparators

import "github.com/dsrhaslab/dio-go/internal/viz"

// Integration styles of an analysis pipeline (Table III).
const (
	IntegrationNone    = ""
	IntegrationOffline = "O"
	IntegrationInline  = "I"
)

// Use-case support levels of Table III: a tool may trace the information a
// use case needs (T), and may additionally provide the analysis to
// diagnose it (TA).
const (
	UseCaseNone     = ""
	UseCaseTrace    = "T"
	UseCaseAnalysis = "TA"
)

// ToolCapability is one column of the paper's Table III, transposed into a
// record per tool.
type ToolCapability struct {
	Tool          string
	Technology    string // tracing technology
	SyscallInfo   bool   // args, return value, timestamps, PID/TID
	FOffset       bool   // file offset enrichment
	FType         bool   // file type enrichment
	ProcName      bool   // process name enrichment
	Filters       bool   // filtering at the tracing phase
	Integrated    string // "", "O" (offline), "I" (inline)
	Customizable  bool   // user-defined analysis over all captured fields
	PredefinedVis bool   // ships visualizations
	UseCaseB      string // §III-B (data loss; needs offsets)
	UseCaseC      string // §III-C (contention; needs names over time)
}

// Table3 returns the qualitative comparison of Table III. The encoding
// follows the paper's related-work discussion: only DIO collects file
// offsets; CaT, Tracee, and DIO pair entry/exit in kernel space; only DIO
// and LongLine forward events inline; and only DIO both traces and analyzes
// the two use cases.
func Table3() []ToolCapability {
	return []ToolCapability{
		{
			Tool: "strace", Technology: "ptrace",
			SyscallInfo: true, Filters: true,
			UseCaseB: UseCaseTrace, UseCaseC: UseCaseNone,
		},
		{
			Tool: "Sysdig", Technology: "eBPF",
			SyscallInfo: true, ProcName: true, Filters: true,
			UseCaseB: UseCaseNone, UseCaseC: UseCaseTrace,
		},
		{
			Tool: "Re-Animator", Technology: "LTTng",
			SyscallInfo: true,
			UseCaseB:    UseCaseNone, UseCaseC: UseCaseNone,
		},
		{
			Tool: "Tracee", Technology: "eBPF",
			SyscallInfo: true, ProcName: true, Filters: true,
			UseCaseB: UseCaseNone, UseCaseC: UseCaseTrace,
		},
		{
			Tool: "CaT", Technology: "eBPF",
			SyscallInfo: true, ProcName: true, Filters: true,
			Integrated: IntegrationOffline, UseCaseB: UseCaseNone, UseCaseC: UseCaseTrace,
		},
		{
			Tool: "IOscope", Technology: "eBPF",
			SyscallInfo: true,
			UseCaseB:    UseCaseNone, UseCaseC: UseCaseNone,
		},
		{
			Tool: "LongLine", Technology: "auditd",
			SyscallInfo: true, ProcName: true,
			Integrated: IntegrationInline, PredefinedVis: true,
			UseCaseB: UseCaseNone, UseCaseC: UseCaseTrace,
		},
		{
			Tool: "Daoud et al.", Technology: "LTTng",
			SyscallInfo: true,
			Integrated:  IntegrationOffline, Customizable: true, PredefinedVis: true,
			UseCaseB: UseCaseNone, UseCaseC: UseCaseTrace,
		},
		{
			Tool: "DIO", Technology: "eBPF",
			SyscallInfo: true, FOffset: true, FType: true, ProcName: true, Filters: true,
			Integrated: IntegrationInline, Customizable: true, PredefinedVis: true,
			UseCaseB: UseCaseAnalysis, UseCaseC: UseCaseAnalysis,
		},
	}
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "-"
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// RenderTable3 renders the comparison matrix as a table.
func RenderTable3() *viz.Table {
	t := &viz.Table{
		Title: "Table III: DIO versus other syscall tracing/analysis tools",
		Columns: []string{
			"tool", "tech", "syscall info", "f_offset", "f_type", "proc_name",
			"filters", "pipeline", "customizable", "predef. vis", "use §III-B", "use §III-C",
		},
	}
	for _, c := range Table3() {
		t.Rows = append(t.Rows, []string{
			c.Tool, c.Technology, yn(c.SyscallInfo), yn(c.FOffset), yn(c.FType),
			yn(c.ProcName), yn(c.Filters), orDash(c.Integrated),
			yn(c.Customizable), yn(c.PredefinedVis), orDash(c.UseCaseB), orDash(c.UseCaseC),
		})
	}
	return t
}
