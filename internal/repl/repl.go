// Package repl ships a primary store's WAL to followers. The store exposes
// the replication data plane (sequenced WAL ranges, full-state bootstraps,
// follower apply — internal/store/repl.go); this package is the control
// plane: a Replicator per follower that tails the primary's records and
// pushes them over a Transport, reusing the resilience ladder (full-jitter
// backoff honoring Retry-After hints, circuit breaker) that already guards
// the tracer's ship path. A sequence mismatch from the follower is never
// retried blindly — the replicator resyncs from the follower's reported
// position, bootstrapping wholesale when the follower is too far behind for
// the primary to serve the gap as WAL records.
package repl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/resilience"
	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// Transport moves replication calls to one follower. ClientTransport speaks
// HTTP through store.Client; tests swap in in-process fault-injecting fakes.
type Transport interface {
	// Target names the follower (health reporting, logs).
	Target() string
	// Status fetches the follower's applied positions (resync, reconnect).
	Status(ctx context.Context) (store.ReplState, error)
	// Apply pushes consecutive frames starting at from; returns the
	// follower's new applied sequence. A sequence mismatch surfaces as
	// *store.ReplSeqError (or an HTTP 409 carrying the same meaning).
	Apply(ctx context.Context, index string, from int64, frames []store.ReplFrame) (int64, error)
	// Bootstrap replaces the follower's index state wholesale, aligned to
	// the snapshot's primary sequence.
	Bootstrap(ctx context.Context, index string, snap store.ReplSnapshot) error
}

// Config tunes a Replicator.
type Config struct {
	// Interval is the steady-state poll period between sync passes
	// (default 50ms). Each pass drains the follower to the current head, so
	// the interval bounds added lag, not throughput.
	Interval time.Duration
	// MaxFrames / MaxBytes bound one push (defaults 256 frames / 4 MiB).
	MaxFrames int
	MaxBytes  int
	// BootstrapRows batches rows per frame in a full-state transfer
	// (default 1024).
	BootstrapRows int
	// MaxAttempts is the per-push attempt budget, first try included
	// (default 4).
	MaxAttempts int
	// BaseBackoff / MaxBackoff shape the retry delays (defaults 10ms / 1s);
	// Retry-After hints from the follower floor them.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AttemptTimeout is the per-attempt deadline (default 5s).
	AttemptTimeout time.Duration
	// BreakerThreshold / BreakerCooldown tune the circuit breaker guarding
	// the follower (defaults 5 / 500ms).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Clock drives sleeps and cooldowns; virtual in tests (default wall).
	Clock clock.Clock
	// Seed seeds backoff jitter (0 selects a fixed default).
	Seed int64
	// Telemetry, when non-nil, receives shipping counters and the lag gauge.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.MaxFrames <= 0 {
		c.MaxFrames = 256
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 4 << 20
	}
	if c.BootstrapRows <= 0 {
		c.BootstrapRows = 1024
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 5 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 500 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = clock.NewReal(0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Stats is a snapshot of one replicator's shipping accounting.
type Stats struct {
	// ShippedRecords / ShippedBytes count acked frames and their payload
	// bytes (bootstrap frames included).
	ShippedRecords uint64 `json:"shipped_records"`
	ShippedBytes   uint64 `json:"shipped_bytes"`
	// Pushes counts Apply/Bootstrap calls that succeeded; Retries counts
	// attempts beyond each push's first.
	Pushes  uint64 `json:"pushes"`
	Retries uint64 `json:"retries"`
	// Bootstraps counts full-state transfers.
	Bootstraps uint64 `json:"bootstraps"`
	// SeqRejects counts out-of-sequence pushes the follower bounced; each
	// one forced a resync from the follower's reported position.
	SeqRejects uint64 `json:"seq_rejects"`
	// Lag is primary head minus follower acked, summed across indices, as of
	// the last completed pass.
	Lag int64 `json:"lag"`
	// LastSyncNS is when the last fully-acked pass finished (unix ns; 0
	// means never).
	LastSyncNS int64 `json:"last_sync_ns"`
}

// ErrFollowerDown reports a push abandoned after the retry budget (or a
// breaker rejection); the next sync pass will try again.
var ErrFollowerDown = errors.New("repl: follower unreachable")

// Replicator tails one primary store and pushes its WAL records to one
// follower. Run one per follower; each keeps its own cursor, breaker, and
// accounting.
type Replicator struct {
	src *store.Store
	tr  Transport
	cfg Config

	backoff *resilience.Backoff
	breaker *resilience.Breaker

	// mu serializes sync passes: the background loop, explicit Sync calls,
	// and the final Stop drain never interleave.
	mu      sync.Mutex
	acked   map[string]int64             // follower's applied seq per index
	cursors map[string]*store.ReplCursor // WAL file cursors per index

	shippedRecs  atomic.Uint64
	shippedBytes atomic.Uint64
	pushes       atomic.Uint64
	retries      atomic.Uint64
	bootstraps   atomic.Uint64
	seqRejects   atomic.Uint64
	lag          atomic.Int64
	lastSyncNS   atomic.Int64

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup

	// Telemetry instruments (nil-safe no-ops when Config.Telemetry unset).
	tmShippedRecs  *telemetry.Counter
	tmShippedBytes *telemetry.Counter
	tmPushes       *telemetry.Counter
	tmRetries      *telemetry.Counter
	tmPushNS       *telemetry.Histogram
	tmBootstraps   *telemetry.Counter
}

// New builds a replicator shipping src's WAL to the follower behind tr. It
// arms src's replication tail buffers (the ingest path starts copying
// journaled payloads into them) and registers a per-target health source on
// src, so GET /_health reports this follower's lag. Call Start to begin
// shipping.
func New(src *store.Store, tr Transport, cfg Config) *Replicator {
	cfg = cfg.withDefaults()
	r := &Replicator{
		src:     src,
		tr:      tr,
		cfg:     cfg,
		backoff: resilience.NewBackoff(cfg.BaseBackoff, cfg.MaxBackoff, cfg.Seed),
		breaker: resilience.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock),
		acked:   map[string]int64{},
		cursors: map[string]*store.ReplCursor{},
		stopCh:  make(chan struct{}),
	}
	src.ArmReplication()
	src.RegisterReplicaHealth(r.health)
	if tm := cfg.Telemetry; tm != nil {
		r.tmShippedRecs = tm.Counter(telemetry.MetricReplShippedRecs, "replication records acked by followers")
		r.tmShippedBytes = tm.Counter(telemetry.MetricReplShippedBytes, "replication payload bytes acked by followers")
		r.tmPushes = tm.Counter(telemetry.MetricReplPushes, "successful replication pushes")
		r.tmRetries = tm.Counter(telemetry.MetricReplPushRetries, "replication push attempts beyond the first")
		r.tmPushNS = tm.Histogram(telemetry.MetricReplPushNS, "one replication push round-trip", nil)
		r.tmBootstraps = tm.Counter(telemetry.MetricReplBootstraps, "full-state transfers shipped")
		tm.GaugeFunc(telemetry.MetricReplLag, "primary head minus follower acked, summed across indices",
			func() float64 { return float64(r.lag.Load()) })
	}
	return r
}

// health snapshots this target's shipping state for GET /_health.
func (r *Replicator) health() store.ReplHealth {
	last := r.lastSyncNS.Load()
	lastMS := int64(-1)
	if last != 0 {
		lastMS = (r.cfg.Clock.NowNS() - last) / int64(time.Millisecond)
		if lastMS < 0 {
			lastMS = 0
		}
	}
	return store.ReplHealth{
		Target:     r.tr.Target(),
		Lag:        r.lag.Load(),
		LastSyncMS: lastMS,
		Bootstraps: r.bootstraps.Load(),
		SeqRejects: r.seqRejects.Load(),
	}
}

// Stats snapshots the replicator's accounting.
func (r *Replicator) Stats() Stats {
	return Stats{
		ShippedRecords: r.shippedRecs.Load(),
		ShippedBytes:   r.shippedBytes.Load(),
		Pushes:         r.pushes.Load(),
		Retries:        r.retries.Load(),
		Bootstraps:     r.bootstraps.Load(),
		SeqRejects:     r.seqRejects.Load(),
		Lag:            r.lag.Load(),
		LastSyncNS:     r.lastSyncNS.Load(),
	}
}

// Breaker exposes the breaker guarding this follower (tests, health).
func (r *Replicator) Breaker() *resilience.Breaker { return r.breaker }

// Target names the follower this replicator ships to.
func (r *Replicator) Target() string { return r.tr.Target() }

// Start launches the background shipping loop. The loop paces itself with a
// plain timer rather than Clock.Sleep: a wall Clock's Sleep yield-spins its
// final 2ms for sub-millisecond precision the loop does not need, and the
// timer lets Stop interrupt a sleeping loop immediately. The Clock still
// drives the retry backoff and the breaker cooldown, which is what the
// deterministic tests pace.
func (r *Replicator) Start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTimer(0)
		defer t.Stop()
		for {
			select {
			case <-r.stopCh:
				return
			case <-t.C:
			}
			_ = r.Sync(context.Background())
			t.Reset(r.cfg.Interval)
		}
	}()
}

// Stop halts the loop, then runs one final drain pass so a graceful shutdown
// hands the follower everything journaled so far — the clean-handoff point a
// promoted follower resumes from. The drain's error (if the follower is down)
// is returned; the primary's durability is unaffected either way.
func (r *Replicator) Stop() error {
	r.stopOnce.Do(func() { close(r.stopCh) })
	r.wg.Wait()
	return r.Sync(context.Background())
}

// Sync runs one full pass: for every durable index on the primary, push
// frames until the follower is caught up to the pass's head. Returns the
// first error that ended an index's drain early (the next pass retries).
func (r *Replicator) Sync(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var firstErr error
	var lag int64
	for _, name := range r.src.Indices() {
		left, err := r.syncIndex(ctx, name)
		lag += left
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("repl: index %q: %w", name, err)
		}
	}
	r.lag.Store(lag)
	if firstErr == nil {
		r.lastSyncNS.Store(r.cfg.Clock.NowNS())
	}
	return firstErr
}

// syncIndex drains one index to the follower and reports the residual lag.
// Non-durable indices are skipped (no WAL, nothing to ship).
func (r *Replicator) syncIndex(ctx context.Context, name string) (lag int64, err error) {
	head, ok := r.src.ReplHeadSeq(name)
	if !ok {
		return 0, nil
	}
	acked, known := r.acked[name]
	if !known {
		if err := r.resync(ctx, name); err != nil {
			return head, err
		}
		acked = r.acked[name]
	}
	if acked > head {
		// The follower claims more records than this primary ever journaled:
		// divergent histories (it applied writes from another promoted node).
		// Only a full-state transfer reconciles that.
		if err := r.bootstrap(ctx, name); err != nil {
			return 0, err
		}
		acked = r.acked[name]
	}
	resyncs := 0
	for acked < head {
		cur := r.cursors[name]
		if cur == nil {
			cur = &store.ReplCursor{}
			r.cursors[name] = cur
		}
		frames, h, bootstrap, err := r.src.ReplRange(name, acked, cur, r.cfg.MaxFrames, r.cfg.MaxBytes)
		if err != nil {
			return h - acked, err
		}
		head = h
		if bootstrap {
			if err := r.bootstrap(ctx, name); err != nil {
				return head - acked, err
			}
			acked = r.acked[name]
			continue
		}
		if len(frames) == 0 {
			break // in-flight tail append; next pass picks it up
		}
		applied, err := r.push(ctx, func(c context.Context) (int64, error) {
			return r.tr.Apply(c, name, acked, frames)
		})
		if err != nil {
			if !isSeqMismatch(err) {
				return head - acked, err
			}
			// The follower is elsewhere (restart, duplicate, divergence):
			// resync from its reported position instead of repushing.
			r.seqRejects.Add(1)
			if resyncs++; resyncs > 3 {
				return head - acked, fmt.Errorf("repl: index %q: resync loop: %w", name, err)
			}
			if err := r.resync(ctx, name); err != nil {
				return head - acked, err
			}
			acked = r.acked[name]
			continue
		}
		var pushed uint64
		for _, f := range frames {
			r.shippedBytes.Add(uint64(len(f.Payload)))
			pushed++
		}
		r.shippedRecs.Add(pushed)
		r.tmShippedRecs.Add(pushed)
		r.acked[name] = applied
		acked = applied
	}
	return head - acked, nil
}

// resync reads the follower's applied position for one index (creating the
// entry at 0 for an index the follower has never seen) and drops the WAL
// cursor so the next range scan restarts cleanly.
func (r *Replicator) resync(ctx context.Context, name string) error {
	st, err := r.push(ctx, func(c context.Context) (int64, error) {
		s, e := r.tr.Status(c)
		if e != nil {
			return 0, e
		}
		return s.Indices[name], nil
	})
	if err != nil {
		return err
	}
	r.acked[name] = st
	delete(r.cursors, name)
	return nil
}

// bootstrap ships the index's full state and aligns the follower to the
// snapshot's head sequence.
func (r *Replicator) bootstrap(ctx context.Context, name string) error {
	snap, err := r.src.ReplBootstrapFrames(name, r.cfg.BootstrapRows)
	if err != nil {
		return err
	}
	_, err = r.push(ctx, func(c context.Context) (int64, error) {
		return snap.Seq, r.tr.Bootstrap(c, name, snap)
	})
	if err != nil {
		return err
	}
	r.bootstraps.Add(1)
	r.tmBootstraps.Inc()
	for _, f := range snap.Frames {
		r.shippedBytes.Add(uint64(len(f.Payload)))
	}
	r.shippedRecs.Add(uint64(len(snap.Frames)))
	r.tmShippedRecs.Add(uint64(len(snap.Frames)))
	r.acked[name] = snap.Seq
	delete(r.cursors, name)
	return nil
}

// push runs one transport call through the retry → breaker ladder. Retryable
// failures (timeouts, 5xx, connection errors) burn attempts with jittered
// backoff floored by Retry-After hints; non-retryable ones — sequence
// mismatches above all — fail fast for the caller to handle.
func (r *Replicator) push(ctx context.Context, fn func(context.Context) (int64, error)) (int64, error) {
	var lastErr error
	start := r.cfg.Clock.NowNS()
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.retries.Add(1)
			r.tmRetries.Inc()
			r.cfg.Clock.Sleep(r.backoff.Delay(attempt, lastErr))
		}
		if !r.breaker.Allow() {
			if lastErr != nil {
				return 0, fmt.Errorf("%w: breaker open (last attempt: %v)", ErrFollowerDown, lastErr)
			}
			return 0, fmt.Errorf("%w: breaker open", ErrFollowerDown)
		}
		c, cancel := context.WithTimeout(ctx, r.cfg.AttemptTimeout)
		v, err := fn(c)
		cancel()
		if err == nil {
			r.breaker.RecordSuccess()
			r.pushes.Add(1)
			r.tmPushes.Inc()
			r.tmPushNS.Observe(float64(r.cfg.Clock.NowNS() - start))
			return v, nil
		}
		// A sequence mismatch is a healthy follower answering correctly, not
		// a failure of the target: it must not open the breaker.
		if isSeqMismatch(err) {
			r.breaker.RecordSuccess()
			return 0, err
		}
		r.breaker.RecordFailure()
		lastErr = err
		if !resilience.IsRetryable(err) {
			return 0, err
		}
	}
	return 0, fmt.Errorf("%w: %v", ErrFollowerDown, lastErr)
}

// isSeqMismatch recognizes the follower's out-of-sequence rejection across
// transports: the typed error in-process, HTTP 409 over the wire.
func isSeqMismatch(err error) bool {
	var se *store.ReplSeqError
	if errors.As(err, &se) {
		return true
	}
	var he *store.HTTPError
	return errors.As(err, &he) && he.Status == 409
}

// ClientTransport adapts a store.Client into a Transport: the HTTP path a
// real deployment ships over (POST /v1/_repl/apply etc. on the follower).
type ClientTransport struct {
	C *store.Client
}

var _ Transport = ClientTransport{}

// Target implements Transport.
func (t ClientTransport) Target() string { return t.C.Base() }

// Status implements Transport.
func (t ClientTransport) Status(ctx context.Context) (store.ReplState, error) {
	return t.C.ReplStatus(ctx)
}

// Apply implements Transport.
func (t ClientTransport) Apply(ctx context.Context, index string, from int64, frames []store.ReplFrame) (int64, error) {
	return t.C.ReplApply(ctx, index, from, frames)
}

// Bootstrap implements Transport.
func (t ClientTransport) Bootstrap(ctx context.Context, index string, snap store.ReplSnapshot) error {
	return t.C.ReplBootstrap(ctx, index, snap)
}
