package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/store"
)

const testIndex = "events"

// ingestRound applies one deterministic round of mixed writes — a typed
// batch, a generic batch, and (odd rounds) an update-by-query rewrite — the
// three journal record types the replication stream carries.
func ingestRound(t *testing.T, st *store.Store, round int) {
	t.Helper()
	ctx := context.Background()
	base := int64(1<<60) + int64(round)*1_000_000
	evs := make([]event.Event, 0, 8)
	for i := 0; i < 8; i++ {
		evs = append(evs, event.Event{
			Session: "repl", Syscall: []string{"read", "write", "openat", "fsync"}[i%4],
			Class: "file", ProcName: "app", ThreadName: "app-worker",
			PID: 100 + round, TID: 200 + i,
			RetVal: int64(i * 13), FD: 3 + i, Count: 4096,
			TimeEnterNS: base + int64(i)*1000, TimeExitNS: base + int64(i)*1000 + 500,
			ArgPath: "/data/f" + string(rune('a'+i%3)),
		})
	}
	if err := st.BulkEvents(ctx, testIndex, evs); err != nil {
		t.Fatalf("round %d: bulk events: %v", round, err)
	}
	docs := make([]store.Document, 0, 4)
	for i := 0; i < 4; i++ {
		docs = append(docs, store.Document{
			store.FieldSession: "repl", store.FieldSyscall: "ioctl",
			store.FieldRetVal: int64(round*10 + i), store.FieldPID: int64(100 + round),
			store.FieldTimeEnter: base + int64(900+i),
			"custom_seq":         int64(i),
		})
	}
	if err := st.Bulk(ctx, testIndex, docs); err != nil {
		t.Fatalf("round %d: bulk docs: %v", round, err)
	}
	if round%2 == 1 {
		_, err := st.UpdateByQuery(ctx, testIndex, store.Term(store.FieldSyscall, "openat"), func(d store.Document) bool {
			d[store.FieldFilePath] = "/resolved/by/round"
			return true
		})
		if err != nil {
			t.Fatalf("round %d: update-by-query: %v", round, err)
		}
	}
}

// rowsPerRound is how many rows one ingestRound adds (8 events + 4 docs).
const rowsPerRound = 12

// fingerprint serializes everything a reader can observe from the index.
func fingerprint(t *testing.T, st *store.Store) string {
	t.Helper()
	ctx := context.Background()
	req := store.SearchRequest{Query: store.MatchAll(), Size: -1, Aggs: map[string]store.Agg{
		"by_syscall": {Terms: &store.TermsAgg{Field: store.FieldSyscall}},
		"ret_stats":  {Stats: &store.StatsAgg{Field: store.FieldRetVal}},
	}}
	evs, err := st.SearchEvents(ctx, testIndex, req)
	if err != nil {
		t.Fatalf("fingerprint typed search: %v", err)
	}
	docs, err := st.Search(ctx, testIndex, req)
	if err != nil {
		t.Fatalf("fingerprint doc search: %v", err)
	}
	n, err := st.Count(ctx, testIndex, store.MatchAll())
	if err != nil {
		t.Fatalf("fingerprint count: %v", err)
	}
	blob, err := json.Marshal(struct {
		Events store.EventsResult
		Docs   store.SearchResponse
		Count  int
	}{evs, docs, n})
	if err != nil {
		t.Fatalf("fingerprint marshal: %v", err)
	}
	return string(blob)
}

// controlStore replays rounds [0, rounds) into a fresh in-memory store.
func controlStore(t *testing.T, rounds int) *store.Store {
	t.Helper()
	st := store.New()
	for r := 0; r < rounds; r++ {
		ingestRound(t, st, r)
	}
	return st
}

func openDurable(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(
		store.WithDataDir(dir),
		store.WithFsyncPolicy(store.FsyncAlways),
		store.WithSnapshotInterval(0))
	if err != nil {
		t.Fatalf("open durable store: %v", err)
	}
	return st
}

// faultTransport is the in-process fake transport: it applies frames
// directly to a follower store and injects network faults on the way —
// dropped calls (partition), delayed calls, duplicated deliveries, and a
// reordered delivery (the tail of a batch arriving before its head).
type faultTransport struct {
	mu sync.Mutex
	st *store.Store
	// clk, when set with delay, advances/sleeps before every delivery.
	clk   clock.Clock
	delay time.Duration
	// failN makes the next N calls fail with failErr (partition).
	failN   int
	failErr error
	// dupApply delivers every Apply twice (network duplication).
	dupApply bool
	// reorderOnce delivers the next multi-frame Apply tail-first.
	reorderOnce bool

	statusCalls, applyCalls, bootstrapCalls int
}

func (f *faultTransport) Target() string { return "fake://follower" }

// fault consumes one injected fault, if armed.
func (f *faultTransport) fault() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.clk != nil && f.delay > 0 {
		f.clk.Sleep(f.delay)
	}
	if f.failN > 0 {
		f.failN--
		if f.failErr != nil {
			return f.failErr
		}
		return errors.New("fake: connection refused")
	}
	return nil
}

func (f *faultTransport) Status(ctx context.Context) (store.ReplState, error) {
	f.mu.Lock()
	f.statusCalls++
	f.mu.Unlock()
	if err := f.fault(); err != nil {
		return store.ReplState{}, err
	}
	return f.st.ReplStatus(), nil
}

func (f *faultTransport) Apply(ctx context.Context, index string, from int64, frames []store.ReplFrame) (int64, error) {
	f.mu.Lock()
	f.applyCalls++
	reorder := f.reorderOnce && len(frames) > 1
	if reorder {
		f.reorderOnce = false
	}
	dup := f.dupApply
	f.mu.Unlock()
	if err := f.fault(); err != nil {
		return 0, err
	}
	if reorder {
		// The batch's tail arrives before its head: the follower must bounce
		// it, and the shipper must resync rather than trust partial delivery.
		_, err := f.st.ReplApply(ctx, index, from+1, frames[1:])
		return 0, err
	}
	applied, err := f.st.ReplApply(ctx, index, from, frames)
	if dup && err == nil {
		// The network delivers the same push again; the follower must reject
		// the duplicate without double-applying.
		if _, derr := f.st.ReplApply(ctx, index, from, frames); derr == nil {
			return applied, errors.New("fake: duplicate delivery was accepted")
		}
	}
	return applied, err
}

func (f *faultTransport) Bootstrap(ctx context.Context, index string, snap store.ReplSnapshot) error {
	f.mu.Lock()
	f.bootstrapCalls++
	f.mu.Unlock()
	if err := f.fault(); err != nil {
		return err
	}
	return f.st.ReplBootstrap(ctx, index, snap)
}

// hintedErr is a retryable failure carrying a Retry-After hint, as the HTTP
// client surfaces 429/503 responses.
type hintedErr struct{ after time.Duration }

func (e hintedErr) Error() string                 { return fmt.Sprintf("fake: back off %v", e.after) }
func (e hintedErr) Temporary() bool               { return true }
func (e hintedErr) RetryAfterHint() time.Duration { return e.after }

// newPair builds a primary (durable, dir) and an in-memory follower behind a
// fault transport, plus a replicator wired with a virtual clock.
func newPair(t *testing.T, cfg Config) (*store.Store, *store.Store, *faultTransport, *Replicator) {
	t.Helper()
	primary := openDurable(t, t.TempDir())
	t.Cleanup(func() { primary.Close() })
	follower := store.New()
	follower.SetFollower()
	tr := &faultTransport{st: follower}
	r := New(primary, tr, cfg)
	return primary, follower, tr, r
}

// TestSyncDrainsAndReports is the happy path: one pass drains every record,
// the follower fingerprints identical to a never-replicated control, and the
// stats/health surfaces report a caught-up target.
func TestSyncDrainsAndReports(t *testing.T) {
	vclk := clock.NewVirtual(0)
	primary, follower, _, r := newPair(t, Config{Clock: vclk})
	for round := 0; round < 3; round++ {
		ingestRound(t, primary, round)
	}
	if err := r.Sync(context.Background()); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if got, want := fingerprint(t, follower), fingerprint(t, controlStore(t, 3)); got != want {
		t.Fatalf("follower diverged from control")
	}
	st := r.Stats()
	if st.Lag != 0 || st.ShippedRecords == 0 || st.Pushes == 0 || st.Retries != 0 {
		t.Fatalf("stats after clean drain: %+v", st)
	}
	h := primary.Health()
	if len(h.Replication) != 1 || h.Replication[0].Target != "fake://follower" || h.Replication[0].Lag != 0 {
		t.Fatalf("primary health replication entry: %+v", h.Replication)
	}
	// Nothing new → next pass pushes nothing.
	pushes := st.Pushes
	if err := r.Sync(context.Background()); err != nil {
		t.Fatalf("idle sync: %v", err)
	}
	if got := r.Stats().Pushes; got != pushes {
		t.Fatalf("idle sync pushed: %d → %d", pushes, got)
	}
}

// TestPartitionHeals drops enough calls to exhaust attempts and open the
// breaker, then heals the partition and checks the stream catches up with no
// lost or duplicated records.
func TestPartitionHeals(t *testing.T) {
	vclk := clock.NewVirtual(0)
	primary, follower, tr, r := newPair(t, Config{
		Clock: vclk, MaxAttempts: 2, BreakerThreshold: 2, BreakerCooldown: 100 * time.Millisecond,
	})
	ingestRound(t, primary, 0)
	tr.mu.Lock()
	tr.failN = 50 // partition: every call fails for a while
	tr.mu.Unlock()
	if err := r.Sync(context.Background()); err == nil {
		t.Fatalf("sync through partition succeeded")
	}
	if err := r.Sync(context.Background()); !errors.Is(err, ErrFollowerDown) {
		t.Fatalf("partitioned sync error = %v, want ErrFollowerDown", err)
	}
	if r.Stats().Retries == 0 {
		t.Fatalf("no retries recorded during partition")
	}
	// Heal: clear the fault, wait out the breaker cooldown, resync.
	tr.mu.Lock()
	tr.failN = 0
	tr.mu.Unlock()
	vclk.Advance(time.Second)
	ingestRound(t, primary, 1)
	if err := r.Sync(context.Background()); err != nil {
		t.Fatalf("sync after heal: %v", err)
	}
	if got, want := fingerprint(t, follower), fingerprint(t, controlStore(t, 2)); got != want {
		t.Fatalf("follower diverged after partition heal")
	}
	if lag := r.Stats().Lag; lag != 0 {
		t.Fatalf("lag after heal = %d", lag)
	}
}

// TestDelayedDuplicatedReordered runs the stream through a transport that
// delays every delivery, duplicates every apply, and reorders one batch:
// the follower's sequence guard plus the shipper's resync must yield exactly
// the control state anyway.
func TestDelayedDuplicatedReordered(t *testing.T) {
	vclk := clock.NewVirtual(0)
	primary, follower, tr, r := newPair(t, Config{Clock: vclk})
	tr.clk, tr.delay = vclk, 5*time.Millisecond
	tr.dupApply = true
	tr.reorderOnce = true
	for round := 0; round < 4; round++ {
		ingestRound(t, primary, round)
	}
	if err := r.Sync(context.Background()); err != nil {
		t.Fatalf("sync under faults: %v", err)
	}
	if got, want := fingerprint(t, follower), fingerprint(t, controlStore(t, 4)); got != want {
		t.Fatalf("follower diverged under delay+dup+reorder")
	}
	st := r.Stats()
	if st.SeqRejects == 0 {
		t.Fatalf("reordered delivery did not surface as a seq reject: %+v", st)
	}
	n, err := follower.Count(context.Background(), testIndex, store.MatchAll())
	if err != nil || n != 4*rowsPerRound {
		t.Fatalf("follower rows = %d, %v; want %d (duplicates applied?)", n, err, 4*rowsPerRound)
	}
}

// TestFollowerCrashMidReplay kills a durable follower mid-stream — torn WAL
// tail included, exactly as the crash matrix does for primaries — restarts
// it, and checks the shipper resyncs from the follower's recovered position
// and converges without a bootstrap.
func TestFollowerCrashMidReplay(t *testing.T) {
	vclk := clock.NewVirtual(0)
	primary := openDurable(t, t.TempDir())
	defer primary.Close()
	fdir := t.TempDir()
	follower := openDurable(t, fdir)
	follower.SetFollower()
	tr := &faultTransport{st: follower}
	r := New(primary, tr, Config{Clock: vclk})

	ingestRound(t, primary, 0)
	ingestRound(t, primary, 1)
	if err := r.Sync(context.Background()); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	// Crash: close, then tear the last WAL record as a mid-write kill would.
	if err := follower.Close(); err != nil {
		t.Fatalf("close follower: %v", err)
	}
	wals, err := filepath.Glob(filepath.Join(fdir, "*", "wal-*"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("follower wal files = %v, %v", wals, err)
	}
	info, err := os.Stat(wals[0])
	if err != nil {
		t.Fatalf("stat follower wal: %v", err)
	}
	if err := os.Truncate(wals[0], info.Size()-3); err != nil {
		t.Fatalf("tear follower wal: %v", err)
	}

	restarted := openDurable(t, fdir)
	defer restarted.Close()
	restarted.SetFollower()
	tr.mu.Lock()
	tr.st = restarted
	tr.mu.Unlock()

	ingestRound(t, primary, 2)
	if err := r.Sync(context.Background()); err != nil {
		t.Fatalf("sync after follower crash: %v", err)
	}
	if got, want := fingerprint(t, restarted), fingerprint(t, controlStore(t, 3)); got != want {
		t.Fatalf("restarted follower diverged from never-crashed control")
	}
	st := r.Stats()
	if st.Bootstraps != 0 {
		t.Fatalf("follower restart forced a bootstrap; resync from the torn record should have sufficed")
	}
	if st.SeqRejects == 0 {
		t.Fatalf("expected a seq reject when pushing past the restarted follower's position")
	}
}

// TestPrimaryKillMidIngestFailover is the failover oracle: the primary dies
// with journaled-but-unshipped records, the follower promotes, and the
// promoted state must equal the never-crashed control at the last replicated
// boundary — a consistent prefix, conservation intact — and then accept new
// writes as primary.
func TestPrimaryKillMidIngestFailover(t *testing.T) {
	vclk := clock.NewVirtual(0)
	primary, follower, _, r := newPair(t, Config{Clock: vclk})
	for round := 0; round < 3; round++ {
		ingestRound(t, primary, round)
	}
	if err := r.Sync(context.Background()); err != nil {
		t.Fatalf("sync: %v", err)
	}
	// The primary journals one more round that never ships: the kill point.
	ingestRound(t, primary, 3)

	// Failover: the primary is gone; promote the follower.
	follower.Promote()
	if got, want := fingerprint(t, follower), fingerprint(t, controlStore(t, 3)); got != want {
		t.Fatalf("promoted state != never-crashed control at the replicated boundary")
	}
	n, err := follower.Count(context.Background(), testIndex, store.MatchAll())
	if err != nil || n != 3*rowsPerRound {
		t.Fatalf("conservation: promoted rows = %d, %v; want %d", n, err, 3*rowsPerRound)
	}
	// The promoted node is a primary now: it takes the lost round directly.
	ingestRound(t, follower, 3)
	if got, want := fingerprint(t, follower), fingerprint(t, controlStore(t, 4)); got != want {
		t.Fatalf("promoted primary diverged after taking over writes")
	}
}

// TestGracefulStopDrainsAndResumes covers the clean-handoff satellite: Stop
// runs a final drain so nothing journaled is left unshipped, and a new
// replicator over the same pair resumes from the follower's position — no
// bootstrap, no re-shipping of acked records.
func TestGracefulStopDrainsAndResumes(t *testing.T) {
	primary, follower, tr, r := newPair(t, Config{Interval: time.Millisecond})
	ingestRound(t, primary, 0)
	r.Start()
	ingestRound(t, primary, 1)
	if err := r.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if got, want := fingerprint(t, follower), fingerprint(t, controlStore(t, 2)); got != want {
		t.Fatalf("graceful stop left unshipped records")
	}
	shipped := r.Stats().ShippedRecords

	// A successor replicator (the restarted process) resumes exactly where
	// the handoff left the follower.
	r2 := New(primary, tr, Config{Clock: clock.NewVirtual(0)})
	ingestRound(t, primary, 2)
	if err := r2.Sync(context.Background()); err != nil {
		t.Fatalf("successor sync: %v", err)
	}
	if got, want := fingerprint(t, follower), fingerprint(t, controlStore(t, 3)); got != want {
		t.Fatalf("successor replicator diverged")
	}
	st := r2.Stats()
	if st.Bootstraps != 0 || st.SeqRejects != 0 {
		t.Fatalf("successor did not resume cleanly: %+v", st)
	}
	if st.ShippedRecords >= shipped {
		t.Fatalf("successor re-shipped acked records: first %d, successor %d", shipped, st.ShippedRecords)
	}
}

// TestRetryAfterFloorHonored checks the reconnect contract: when the
// follower sends Retry-After hints, every retry delay is floored by the
// hint — measured exactly on the virtual clock.
func TestRetryAfterFloorHonored(t *testing.T) {
	vclk := clock.NewVirtual(0)
	primary, _, tr, r := newPair(t, Config{Clock: vclk, MaxAttempts: 4})
	ingestRound(t, primary, 0)
	const hint = 2 * time.Second
	tr.mu.Lock()
	tr.failN, tr.failErr = 2, hintedErr{after: hint}
	tr.mu.Unlock()

	before := vclk.NowNS()
	if err := r.Sync(context.Background()); err != nil {
		t.Fatalf("sync with hinted failures: %v", err)
	}
	slept := time.Duration(vclk.NowNS() - before)
	if slept < 2*hint {
		t.Fatalf("slept %v across 2 hinted retries, want ≥ %v (Retry-After floor ignored)", slept, 2*hint)
	}
	if got := r.Stats().Retries; got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
}

// TestChaosReplShipping is the HTTP end-to-end: a real follower server
// behind the chaos injector faulting the replication path, a ClientTransport
// shipper, and random 503s with Retry-After — the stream must converge to
// the control fingerprint anyway.
func TestChaosReplShipping(t *testing.T) {
	primary := openDurable(t, t.TempDir())
	defer primary.Close()
	follower := store.New()
	follower.SetFollower()
	chaos := store.NewChaosHandler(store.NewServer(follower), 42)
	chaos.SetConfig(store.ChaosConfig{Rate: 0.4, Status: 503, Repl: true})
	srv := httptest.NewServer(chaos)
	defer srv.Close()

	r := New(primary, ClientTransport{C: store.NewClient(srv.URL, store.WithAPIPrefix("/v1"))}, Config{
		BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
		MaxFrames: 4, // many small pushes → many chances to be faulted
	})
	for round := 0; round < 4; round++ {
		ingestRound(t, primary, round)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if err := r.Sync(context.Background()); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("stream never converged under chaos: %v", err)
		}
	}
	if got, want := fingerprint(t, follower), fingerprint(t, controlStore(t, 4)); got != want {
		t.Fatalf("follower diverged under HTTP chaos")
	}
	if chaos.Injected() == 0 {
		t.Fatalf("chaos injected nothing; test exercised no faults")
	}
	if r.Stats().Retries == 0 {
		t.Fatalf("no retries under chaos; injector not hitting the repl path")
	}
}
