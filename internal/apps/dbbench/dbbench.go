// Package dbbench reimplements the slice of RocksDB's db_bench used by the
// paper's §III-C evaluation: N client threads issue a closed-loop mixture
// of reads and updates (YCSB workload A is a 50/50 mix) against the LSM
// store, while the benchmark records per-operation latency into windowed
// percentiles — the series behind Fig. 3.
package dbbench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/dio-go/internal/apps/lsmkv"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/metrics"
)

// Mix shapes the operation mixture of a run, db_bench-style.
type Mix struct {
	// Name labels the mixture in reports.
	Name string
	// ReadFraction is the share of point reads.
	ReadFraction float64
	// ScanFraction is the share of range scans.
	ScanFraction float64
	// ScanLength bounds each scan's key range (number of sequential keys).
	ScanLength int
	// SequentialKeys makes writers use an ascending key sequence (fillseq)
	// instead of uniform-random keys.
	SequentialKeys bool
	// Zipfian skews key popularity (YCSB's default request distribution);
	// false selects uniform keys.
	Zipfian bool
}

// Standard mixtures, mirroring db_bench's workload presets and the YCSB
// mixes the paper references.
var (
	// MixYCSBA is the paper's workload: 50% reads, 50% updates.
	MixYCSBA = Mix{Name: "ycsb-a", ReadFraction: 0.5}
	// MixYCSBB is read-heavy: 95% reads, 5% updates.
	MixYCSBB = Mix{Name: "ycsb-b", ReadFraction: 0.95}
	// MixYCSBE is scan-heavy: 95% short scans, 5% inserts.
	MixYCSBE = Mix{Name: "ycsb-e", ScanFraction: 0.95, ScanLength: 50}
	// MixFillSeq is a pure sequential load phase.
	MixFillSeq = Mix{Name: "fillseq", SequentialKeys: true}
	// MixReadRandom is a pure uniform point-read workload.
	MixReadRandom = Mix{Name: "readrandom", ReadFraction: 1.0}
)

// Config parametrizes a benchmark run.
type Config struct {
	// Mix selects the operation mixture; the zero value selects YCSB-A
	// unless ReadFraction is set (kept for backward compatibility).
	Mix Mix
	// Clients is the number of closed-loop client threads (paper: 8).
	Clients int
	// OpsPerClient bounds the run by operation count; 0 means use Duration.
	OpsPerClient int
	// Duration bounds the run by wall time when OpsPerClient is 0.
	Duration time.Duration
	// KeyCount is the key-space size.
	KeyCount int
	// ValueBytes is the value size for updates.
	ValueBytes int
	// ReadFraction is the share of reads (YCSB-A: 0.5).
	ReadFraction float64
	// PreloadKeys loads this many keys before the timed phase.
	PreloadKeys int
	// WindowNS is the latency-series window width (default 100ms).
	WindowNS int64
	// Seed makes the key sequence reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.KeyCount <= 0 {
		c.KeyCount = 10_000
	}
	if c.ValueBytes <= 0 {
		c.ValueBytes = 512
	}
	if c.Mix == (Mix{}) {
		c.Mix = MixYCSBA
		if c.ReadFraction > 0 {
			c.Mix.ReadFraction = c.ReadFraction
			c.Mix.Name = "custom"
		}
	}
	if c.Mix.ScanFraction > 0 && c.Mix.ScanLength <= 0 {
		c.Mix.ScanLength = 50
	}
	if c.WindowNS <= 0 {
		c.WindowNS = int64(100 * time.Millisecond)
	}
	if c.OpsPerClient <= 0 && c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Result summarizes a run.
type Result struct {
	// MixName labels the operation mixture that ran.
	MixName string
	// StartNS is the kernel timestamp at which the timed phase began; the
	// latency recorder's windows use the same absolute axis as traced
	// events, so the two views join directly (Fig. 3 vs Fig. 4).
	StartNS  int64
	Ops      uint64
	Reads    uint64
	Writes   uint64
	Scans    uint64
	Misses   uint64
	Elapsed  time.Duration
	Recorder *metrics.WindowedRecorder
	Summary  metrics.Summary
	DBStats  lsmkv.Stats
}

// Throughput returns operations per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Key formats the i-th key the way db_bench does.
func Key(i int) string { return fmt.Sprintf("user%012d", i) }

// Preload fills the store with cfg.PreloadKeys sequential keys (untimed).
func Preload(db *lsmkv.DB, cfg Config) error {
	cfg = cfg.withDefaults()
	task := db.NewClientTask("db_bench")
	val := make([]byte, cfg.ValueBytes)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.PreloadKeys; i++ {
		rng.Read(val)
		if err := db.Put(task, Key(i%cfg.KeyCount), val); err != nil {
			return fmt.Errorf("preload put %d: %w", i, err)
		}
	}
	return nil
}

// Run executes the timed benchmark phase against db on kernel k.
func Run(k *kernel.Kernel, db *lsmkv.DB, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if db == nil {
		return Result{}, errors.New("dbbench: nil db")
	}
	rec := metrics.NewWindowedRecorder(cfg.WindowNS)
	clk := k.Clock()

	var (
		ops, reads, writes, scans, misses atomic.Uint64
		wg                                sync.WaitGroup
		errMu                             sync.Mutex
		firstErr                          error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	startNS := clk.NowNS()
	deadlineNS := int64(0)
	if cfg.OpsPerClient <= 0 {
		deadlineNS = startNS + cfg.Duration.Nanoseconds()
	}

	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			task := db.NewClientTask("db_bench")
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			var zipf *rand.Zipf
			if cfg.Mix.Zipfian {
				zipf = rand.NewZipf(rng, 1.1, 8, uint64(cfg.KeyCount-1))
			}
			val := make([]byte, cfg.ValueBytes)
			for i := 0; ; i++ {
				if cfg.OpsPerClient > 0 {
					if i >= cfg.OpsPerClient {
						return
					}
				} else if clk.NowNS() >= deadlineNS {
					return
				}
				keyIdx := rng.Intn(cfg.KeyCount)
				switch {
				case cfg.Mix.SequentialKeys:
					keyIdx = (c*cfg.KeyCount/cfg.Clients + i) % cfg.KeyCount
				case zipf != nil:
					keyIdx = int(zipf.Uint64())
				}
				key := Key(keyIdx)
				t0 := clk.NowNS()
				r := rng.Float64()
				switch {
				case r < cfg.Mix.ReadFraction:
					_, ok, err := db.Get(task, key)
					if err != nil {
						setErr(err)
						return
					}
					if !ok {
						misses.Add(1)
					}
					reads.Add(1)
				case r < cfg.Mix.ReadFraction+cfg.Mix.ScanFraction:
					end := Key(keyIdx + cfg.Mix.ScanLength)
					it, err := db.Scan(task, key, end)
					if err != nil {
						setErr(err)
						return
					}
					if it.Len() == 0 {
						misses.Add(1)
					}
					scans.Add(1)
				default:
					rng.Read(val)
					if err := db.Put(task, key, val); err != nil {
						setErr(err)
						return
					}
					writes.Add(1)
				}
				t1 := clk.NowNS()
				rec.Record(t0, float64(t1-t0))
				ops.Add(1)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Duration(clk.NowNS() - startNS)

	res := Result{
		MixName:  cfg.Mix.Name,
		StartNS:  startNS,
		Ops:      ops.Load(),
		Reads:    reads.Load(),
		Writes:   writes.Load(),
		Scans:    scans.Load(),
		Misses:   misses.Load(),
		Elapsed:  elapsed,
		Recorder: rec,
		Summary:  metrics.Summarize(rec.AllValues()),
		DBStats:  db.Stats(),
	}
	return res, firstErr
}
