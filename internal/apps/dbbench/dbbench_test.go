package dbbench

import (
	"math/rand"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/apps/lsmkv"
	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/kernel"
)

func benchKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	return kernel.New(kernel.Config{
		Clock: clock.NewReal(0),
		Disk:  kernel.DiskConfig{BytesPerSecond: 4 << 30, PerOpLatency: 2 * time.Microsecond},
	})
}

func TestKeyFormat(t *testing.T) {
	if got := Key(7); got != "user000000000007" {
		t.Fatalf("Key(7) = %q", got)
	}
	if len(Key(0)) != len(Key(999_999)) {
		t.Fatal("keys are not fixed width")
	}
}

func TestRunMixedWorkload(t *testing.T) {
	k := benchKernel(t)
	db, err := lsmkv.Open(k, lsmkv.Config{Dir: "/db", MemtableBytes: 64 << 10, CompactionThreads: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()

	cfg := Config{
		Clients:      4,
		OpsPerClient: 500,
		KeyCount:     2_000,
		ValueBytes:   128,
		PreloadKeys:  2_000,
	}
	if err := Preload(db, cfg); err != nil {
		t.Fatalf("preload: %v", err)
	}
	res, err := Run(k, db, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Ops != 2000 {
		t.Fatalf("ops = %d, want 2000", res.Ops)
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Fatalf("mix = %d reads / %d writes", res.Reads, res.Writes)
	}
	// 50/50 mix within generous tolerance.
	frac := float64(res.Reads) / float64(res.Ops)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("read fraction = %v", frac)
	}
	// Preloaded key space: no misses expected.
	if res.Misses != 0 {
		t.Fatalf("misses = %d", res.Misses)
	}
	if res.Summary.Count != int(res.Ops) {
		t.Fatalf("latency samples = %d", res.Summary.Count)
	}
	if res.Summary.P99 <= 0 {
		t.Fatalf("p99 = %v", res.Summary.P99)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not positive")
	}
}

func TestRunDurationBound(t *testing.T) {
	k := benchKernel(t)
	db, err := lsmkv.Open(k, lsmkv.Config{Dir: "/db", CompactionThreads: 1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	cfg := Config{
		Clients:     2,
		Duration:    100 * time.Millisecond,
		KeyCount:    500,
		ValueBytes:  64,
		PreloadKeys: 500,
	}
	if err := Preload(db, cfg); err != nil {
		t.Fatalf("preload: %v", err)
	}
	res, err := Run(k, db, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.Elapsed < 100*time.Millisecond || res.Elapsed > 5*time.Second {
		t.Fatalf("elapsed = %v", res.Elapsed)
	}
	// The recorder produced at least one window.
	if len(res.Recorder.Series()) == 0 {
		t.Fatal("no latency windows")
	}
}

func TestRunNilDB(t *testing.T) {
	k := benchKernel(t)
	if _, err := Run(k, nil, Config{}); err == nil {
		t.Fatal("Run with nil db succeeded")
	}
}

func TestRunDeterministicSeed(t *testing.T) {
	mix := func(seed int64) (uint64, uint64) {
		k := benchKernel(t)
		db, _ := lsmkv.Open(k, lsmkv.Config{Dir: "/db"})
		defer db.Close()
		cfg := Config{Clients: 1, OpsPerClient: 200, KeyCount: 100, PreloadKeys: 100, Seed: seed}
		Preload(db, cfg)
		res, err := Run(k, db, cfg)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res.Reads, res.Writes
	}
	r1, w1 := mix(7)
	r2, w2 := mix(7)
	if r1 != r2 || w1 != w2 {
		t.Fatalf("same seed differs: %d/%d vs %d/%d", r1, w1, r2, w2)
	}
}

func TestMixFillSeq(t *testing.T) {
	k := benchKernel(t)
	db, err := lsmkv.Open(k, lsmkv.Config{Dir: "/db", MemtableBytes: 32 << 10})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	cfg := Config{Mix: MixFillSeq, Clients: 2, OpsPerClient: 300, KeyCount: 600}
	res, err := Run(k, db, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.MixName != "fillseq" {
		t.Fatalf("mix = %q", res.MixName)
	}
	if res.Writes != 600 || res.Reads != 0 || res.Scans != 0 {
		t.Fatalf("mix counts = %d/%d/%d", res.Reads, res.Writes, res.Scans)
	}
	// Every written key is readable.
	task := db.NewClientTask("check")
	for i := 0; i < 600; i += 50 {
		if _, ok, err := db.Get(task, Key(i)); !ok || err != nil {
			t.Fatalf("fillseq key %d missing (%v)", i, err)
		}
	}
}

func TestMixReadRandomAllReads(t *testing.T) {
	k := benchKernel(t)
	db, _ := lsmkv.Open(k, lsmkv.Config{Dir: "/db"})
	defer db.Close()
	cfg := Config{Mix: MixReadRandom, Clients: 2, OpsPerClient: 100, KeyCount: 100, PreloadKeys: 100}
	if err := Preload(db, cfg); err != nil {
		t.Fatalf("preload: %v", err)
	}
	res, err := Run(k, db, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Reads != 200 || res.Writes != 0 || res.Misses != 0 {
		t.Fatalf("readrandom counts = %+v", res)
	}
}

func TestMixYCSBEScans(t *testing.T) {
	k := benchKernel(t)
	db, _ := lsmkv.Open(k, lsmkv.Config{Dir: "/db", MemtableBytes: 32 << 10})
	defer db.Close()
	cfg := Config{Mix: MixYCSBE, Clients: 2, OpsPerClient: 100, KeyCount: 1000, PreloadKeys: 1000, ValueBytes: 64}
	if err := Preload(db, cfg); err != nil {
		t.Fatalf("preload: %v", err)
	}
	res, err := Run(k, db, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Scans == 0 {
		t.Fatal("no scans in YCSB-E run")
	}
	frac := float64(res.Scans) / float64(res.Ops)
	if frac < 0.85 {
		t.Fatalf("scan fraction = %v, want ~0.95", frac)
	}
	if res.Misses != 0 {
		t.Fatalf("scan misses = %d", res.Misses)
	}
}

func TestZipfianSkewsKeyPopularity(t *testing.T) {
	k := benchKernel(t)
	db, _ := lsmkv.Open(k, lsmkv.Config{Dir: "/db"})
	defer db.Close()
	mix := MixYCSBA
	mix.Zipfian = true
	cfg := Config{Mix: mix, Clients: 1, OpsPerClient: 2000, KeyCount: 1000, PreloadKeys: 1000, ValueBytes: 32}
	if err := Preload(db, cfg); err != nil {
		t.Fatalf("preload: %v", err)
	}
	res, err := Run(k, db, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Ops != 2000 || res.Misses != 0 {
		t.Fatalf("result = %+v", res)
	}
	// With zipf skew the hottest key must be requested far more often than
	// uniform (2000/1000 = 2 expected); we can't observe keys directly, but
	// determinism lets us just assert the run completed; the distribution
	// property is checked below on the generator itself.
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.1, 8, 999)
	counts := make(map[uint64]int)
	for i := 0; i < 10000; i++ {
		counts[zipf.Uint64()]++
	}
	if counts[0] < 100 { // uniform would give ~10
		t.Fatalf("zipf head count = %d, want heavily skewed", counts[0])
	}
}
