package fluentbit

import (
	"bytes"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/kernel"
)

func newKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	return kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(kernel.BaseTimestampNS, time.Microsecond)})
}

func TestBuggyVersionLosesData(t *testing.T) {
	k := newKernel(t)
	res, err := RunScenario(k, "/var/log", VersionBuggy)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	if !res.DataLost() {
		t.Fatal("v1.4.0 scenario did not lose data")
	}
	if res.LostBytes != len(res.SecondWrite) {
		t.Fatalf("lost %d bytes, want the whole second write (%d)", res.LostBytes, len(res.SecondWrite))
	}
	if !bytes.Equal(res.Received, res.FirstWrite) {
		t.Fatalf("received %q, want only the first write", res.Received)
	}
	if k.InodeReuses() == 0 {
		t.Fatal("scenario did not exercise inode reuse")
	}
}

func TestFixedVersionKeepsData(t *testing.T) {
	k := newKernel(t)
	res, err := RunScenario(k, "/var/log", VersionFixed)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	if res.DataLost() {
		t.Fatalf("v2.0.5 scenario lost %d bytes", res.LostBytes)
	}
	want := append(append([]byte(nil), res.FirstWrite...), res.SecondWrite...)
	if !bytes.Equal(res.Received, want) {
		t.Fatalf("received %q, want %q", res.Received, want)
	}
}

func TestForwarderIncrementalTail(t *testing.T) {
	k := newKernel(t)
	k.MkdirAll("/logs")
	app := k.NewProcess("app").NewTask("app")
	flb := k.NewProcess("flb").NewTask("flb")

	// Append twice; the forwarder must deliver each chunk exactly once.
	fd, _ := app.Openat(kernel.AtFDCWD, "/logs/x.log", kernel.OWronly|kernel.OCreat|kernel.OAppend, 0o644)
	app.Write(fd, []byte("first\n"))
	app.Close(fd)

	f := NewForwarder(flb, "/logs/x.log", VersionFixed)
	if err := f.Poll(); err != nil {
		t.Fatalf("poll: %v", err)
	}
	if string(f.Received()) != "first\n" {
		t.Fatalf("received %q", f.Received())
	}

	fd, _ = app.Openat(kernel.AtFDCWD, "/logs/x.log", kernel.OWronly|kernel.OAppend, 0)
	app.Write(fd, []byte("second\n"))
	app.Close(fd)

	if err := f.Poll(); err != nil {
		t.Fatalf("poll: %v", err)
	}
	if string(f.Received()) != "first\nsecond\n" {
		t.Fatalf("received %q", f.Received())
	}
	// A poll with no new content delivers nothing new.
	if err := f.Poll(); err != nil {
		t.Fatalf("poll: %v", err)
	}
	if string(f.Received()) != "first\nsecond\n" {
		t.Fatalf("received %q after idle poll", f.Received())
	}
	if err := f.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestForwarderMissingFile(t *testing.T) {
	k := newKernel(t)
	flb := k.NewProcess("flb").NewTask("flb")
	f := NewForwarder(flb, "/nope.log", VersionFixed)
	if err := f.Poll(); err != nil {
		t.Fatalf("poll on missing file: %v", err)
	}
	if len(f.Received()) != 0 {
		t.Fatal("received bytes from a missing file")
	}
}

func TestForwarderRotationToNewInode(t *testing.T) {
	k := newKernel(t)
	k.MkdirAll("/logs")
	app := k.NewProcess("app").NewTask("app")
	flb := k.NewProcess("flb").NewTask("flb")
	w := NewLogWriter(app, "/logs/r.log")

	w.WriteFile([]byte("one"))
	f := NewForwarder(flb, "/logs/r.log", VersionFixed)
	f.Poll()

	// Rotate via rename + recreate: the new file has a different inode
	// while the forwarder still holds the old one open.
	app.Rename("/logs/r.log", "/logs/r.log.1")
	w.WriteFile([]byte("two"))
	if err := f.Poll(); err != nil {
		t.Fatalf("poll after rotation: %v", err)
	}
	if string(f.Received()) != "onetwo" {
		t.Fatalf("received %q, want onetwo", f.Received())
	}
	f.Shutdown()
}

func TestVersionString(t *testing.T) {
	if VersionBuggy.String() != "v1.4.0" || VersionFixed.String() != "v2.0.5" {
		t.Fatalf("version strings: %s %s", VersionBuggy, VersionFixed)
	}
	if Version(99).String() != "unknown" {
		t.Fatal("unknown version string")
	}
}

func TestScenarioOffsetsMatchFig2(t *testing.T) {
	// Trace the buggy scenario at the tracepoint level and assert the
	// paper's key observations: the final read starts at offset 26 and
	// returns 0 (Fig. 2a), while the fixed version reads at offset 0 and
	// returns 16 (Fig. 2b).
	type readObs struct {
		offset int64
		ret    int64
	}
	observe := func(version Version) []readObs {
		k := newKernel(t)
		var reads []readObs
		det := k.Tracepoints().AttachExit(kernel.SysRead, func(e *kernel.Exit) {
			reads = append(reads, readObs{offset: e.Aux.Offset, ret: e.Ret})
		})
		defer det()
		if _, err := RunScenario(k, "/var/log", version); err != nil {
			t.Fatalf("scenario %v: %v", version, err)
		}
		return reads
	}

	buggy := observe(VersionBuggy)
	last := buggy[len(buggy)-1]
	if last.offset != 26 || last.ret != 0 {
		t.Fatalf("buggy final read = %+v, want offset 26 ret 0", last)
	}

	fixed := observe(VersionFixed)
	// Find the read of the second file: the first read with ret 16.
	var got *readObs
	for i := range fixed {
		if fixed[i].ret == 16 {
			got = &fixed[i]
			break
		}
	}
	if got == nil || got.offset != 0 {
		t.Fatalf("fixed second-file read = %+v, want offset 0 ret 16", got)
	}
}
