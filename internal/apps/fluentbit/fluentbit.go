// Package fluentbit reimplements the slice of Fluent Bit exercised by the
// paper's §III-B use case: the tail input plugin that follows a log file
// and forwards newly appended content. Two behaviours are provided:
//
//   - VersionBuggy mirrors v1.4.0 (issues #1875/#4895): the plugin keeps a
//     per-file offset database keyed by file name plus inode number and
//     never deletes entries when files are removed. When the OS reuses the
//     inode number for a recreated file of the same name, the plugin resumes
//     reading at the stale offset — past EOF — and the new content is lost.
//   - VersionFixed mirrors v2.0.5: stale database entries are invalidated
//     (removed when the tracked file disappears, and offsets are validated
//     against the current file size), so reads restart at offset 0.
//
// The forwarder performs all I/O through the simulated kernel, so DIO can
// trace the exact erroneous and corrected access patterns of Fig. 2.
package fluentbit

import (
	"fmt"

	"github.com/dsrhaslab/dio-go/internal/kernel"
)

// Version selects the plugin behaviour.
type Version int

// Supported forwarder versions.
const (
	// VersionBuggy reproduces Fluent Bit v1.4.0 (data loss on inode reuse).
	VersionBuggy Version = iota + 1
	// VersionFixed reproduces Fluent Bit v2.0.5 (stale offsets invalidated).
	VersionFixed
)

// String returns the Fluent Bit release the behaviour mirrors.
func (v Version) String() string {
	switch v {
	case VersionBuggy:
		return "v1.4.0"
	case VersionFixed:
		return "v2.0.5"
	default:
		return "unknown"
	}
}

// dbKey identifies a tracked file the way Fluent Bit's database does: by
// name plus inode number — the root cause of the bug, since the pair is not
// unique across delete/recreate cycles.
type dbKey struct {
	name string
	ino  uint64
}

// Forwarder is the tail input plugin: it follows one log file and forwards
// new bytes to an in-memory sink.
type Forwarder struct {
	task    *kernel.Task
	path    string
	version Version

	offsets map[dbKey]int64

	fd      int
	fdOpen  bool
	curKey  dbKey
	curIno  uint64
	deliver []byte // all bytes forwarded so far
	readBuf []byte
}

// NewForwarder creates a tail forwarder running on task, following path.
func NewForwarder(task *kernel.Task, path string, version Version) *Forwarder {
	return &Forwarder{
		task:    task,
		path:    path,
		version: version,
		offsets: make(map[dbKey]int64),
		fd:      -1,
		readBuf: make([]byte, 4096),
	}
}

// Received returns a copy of all bytes the forwarder has delivered.
func (f *Forwarder) Received() []byte {
	out := make([]byte, len(f.deliver))
	copy(out, f.deliver)
	return out
}

// Poll performs one tail iteration: detect file churn, open the file if
// needed, seek to the recorded offset, and read new content.
func (f *Forwarder) Poll() error {
	st, err := f.task.Stat(f.path)
	if err == kernel.ENOENT {
		// Tracked file disappeared: release the descriptor. The buggy
		// version keeps the offsets database entry; the fixed version
		// forgets the file entirely.
		if f.fdOpen {
			if cerr := f.task.Close(f.fd); cerr != nil {
				return fmt.Errorf("close removed file: %w", cerr)
			}
			f.fdOpen = false
			if f.version == VersionFixed {
				delete(f.offsets, f.curKey)
			}
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("stat %s: %w", f.path, err)
	}

	if f.fdOpen && st.Ino != f.curIno {
		// Rotation to a different inode: reopen below.
		if cerr := f.task.Close(f.fd); cerr != nil {
			return fmt.Errorf("close rotated file: %w", cerr)
		}
		f.fdOpen = false
		if f.version == VersionFixed {
			delete(f.offsets, f.curKey)
		}
	}

	if !f.fdOpen {
		fd, oerr := f.task.Openat(kernel.AtFDCWD, f.path, kernel.ORdonly, 0)
		if oerr != nil {
			return fmt.Errorf("open %s: %w", f.path, oerr)
		}
		f.fd = fd
		f.fdOpen = true
		f.curIno = st.Ino
		f.curKey = dbKey{name: f.path, ino: st.Ino}

		off := f.offsets[f.curKey]
		if f.version == VersionFixed && off > st.Size {
			// v2.0.5: a recorded offset beyond EOF means the file was
			// replaced; restart from the beginning.
			off = 0
			f.offsets[f.curKey] = 0
		}
		if off > 0 {
			// Resume where the database says we stopped — for v1.4.0 this
			// is the erroneous lseek past EOF of Fig. 2a step 5.
			if _, serr := f.task.Lseek(f.fd, off, kernel.SeekSet); serr != nil {
				return fmt.Errorf("seek %s: %w", f.path, serr)
			}
		}
	}

	// Read until EOF, forwarding every byte.
	for {
		n, rerr := f.task.Read(f.fd, f.readBuf)
		if rerr != nil {
			return fmt.Errorf("read %s: %w", f.path, rerr)
		}
		if n == 0 {
			return nil
		}
		f.deliver = append(f.deliver, f.readBuf[:n]...)
		f.offsets[f.curKey] += int64(n)
	}
}

// Shutdown closes any open descriptor.
func (f *Forwarder) Shutdown() error {
	if !f.fdOpen {
		return nil
	}
	f.fdOpen = false
	return f.task.Close(f.fd)
}

// LogWriter is the client program ("app") that generates the log file churn
// of issue #1875: write a file, remove it, and recreate it under the same
// name (receiving the recycled inode number).
type LogWriter struct {
	task *kernel.Task
	path string
}

// NewLogWriter creates a log writer on task for path.
func NewLogWriter(task *kernel.Task, path string) *LogWriter {
	return &LogWriter{task: task, path: path}
}

// WriteFile creates (or truncates) the log file and writes data.
func (w *LogWriter) WriteFile(data []byte) error {
	fd, err := w.task.Openat(kernel.AtFDCWD, w.path, kernel.OWronly|kernel.OCreat, 0o644)
	if err != nil {
		return fmt.Errorf("create %s: %w", w.path, err)
	}
	if _, err := w.task.Write(fd, data); err != nil {
		w.task.Close(fd)
		return fmt.Errorf("write %s: %w", w.path, err)
	}
	if err := w.task.Close(fd); err != nil {
		return fmt.Errorf("close %s: %w", w.path, err)
	}
	return nil
}

// Remove unlinks the log file.
func (w *LogWriter) Remove() error {
	if err := w.task.Unlink(w.path); err != nil {
		return fmt.Errorf("unlink %s: %w", w.path, err)
	}
	return nil
}

// ScenarioResult captures the outcome of one data-loss scenario run.
type ScenarioResult struct {
	Version Version
	// FirstWrite and SecondWrite are the bytes the client wrote.
	FirstWrite  []byte
	SecondWrite []byte
	// Received is everything the forwarder delivered.
	Received []byte
	// LostBytes is how many of the second write's bytes never arrived.
	LostBytes int
}

// DataLost reports whether any log content was lost.
func (r ScenarioResult) DataLost() bool { return r.LostBytes > 0 }

// RunScenario executes the issue #1875 reproduction against a kernel:
//
//  1. app creates app.log and writes 26 bytes            (Fig. 2 step 1)
//  2. fluent-bit reads the 26 bytes                      (step 2)
//  3. app unlinks the file; fluent-bit closes it         (step 3)
//  4. app recreates app.log (inode reused), writes 16 B  (step 4)
//  5. fluent-bit reads the new file                      (step 5: offset 26
//     and data loss for VersionBuggy; offset 0 for VersionFixed)
//
// The forwarder process is named after the version the paper traced:
// "fluent-bit" for v1.4.0 and "flb-pipeline" for v2.0.5.
func RunScenario(k *kernel.Kernel, dir string, version Version) (ScenarioResult, error) {
	procName := "fluent-bit"
	if version == VersionFixed {
		procName = "flb-pipeline"
	}
	appTask := k.NewProcess("app").NewTask("app")
	flbTask := k.NewProcess(procName).NewTask(procName)

	if err := k.MkdirAll(dir); err != nil {
		return ScenarioResult{}, fmt.Errorf("mkdir %s: %w", dir, err)
	}
	path := dir + "/app.log"
	res := ScenarioResult{
		Version:     version,
		FirstWrite:  []byte("log entry one - 26 bytes.\n"),
		SecondWrite: []byte("second file 16b\n"),
	}
	if len(res.FirstWrite) != 26 || len(res.SecondWrite) != 16 {
		return res, fmt.Errorf("scenario fixture sizes wrong: %d/%d", len(res.FirstWrite), len(res.SecondWrite))
	}

	writer := NewLogWriter(appTask, path)
	fwd := NewForwarder(flbTask, path, version)

	// Step 1: app writes the first file.
	if err := writer.WriteFile(res.FirstWrite); err != nil {
		return res, err
	}
	// Step 2: fluent-bit picks up the content.
	if err := fwd.Poll(); err != nil {
		return res, err
	}
	// Step 3: app removes the file; fluent-bit notices on its next poll.
	if err := writer.Remove(); err != nil {
		return res, err
	}
	if err := fwd.Poll(); err != nil {
		return res, err
	}
	// Step 4: app recreates the file; the kernel recycles the inode number.
	if err := writer.WriteFile(res.SecondWrite); err != nil {
		return res, err
	}
	// Step 5: fluent-bit reads the recreated file.
	if err := fwd.Poll(); err != nil {
		return res, err
	}
	if err := fwd.Shutdown(); err != nil {
		return res, err
	}

	res.Received = fwd.Received()
	expected := len(res.FirstWrite) + len(res.SecondWrite)
	res.LostBytes = expected - len(res.Received)
	return res, nil
}
