package lsmkv

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/kernel"
)

// fastKernel returns a real-time kernel with a very fast disk so tests run
// quickly.
func fastKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	return kernel.New(kernel.Config{
		Clock: clock.NewReal(0),
		Disk:  kernel.DiskConfig{BytesPerSecond: 10 << 30, PerOpLatency: time.Microsecond},
	})
}

func key(i int) string { return fmt.Sprintf("user%08d", i) }

func TestMemtablePutGetAndSizing(t *testing.T) {
	m := newMemtable("", -1)
	m.put("b", []byte("2"))
	m.put("a", []byte("1"))
	if v, ok := m.get("a"); !ok || string(v) != "1" {
		t.Fatalf("get a = (%q, %v)", v, ok)
	}
	before := m.bytes
	m.put("a", []byte("11")) // overwrite accounts correctly
	if m.bytes != before+1 {
		t.Fatalf("bytes after overwrite = %d, want %d", m.bytes, before+1)
	}
	sorted := m.sorted()
	if len(sorted) != 2 || sorted[0].Key != "a" || sorted[1].Key != "b" {
		t.Fatalf("sorted = %+v", sorted)
	}
}

func TestSSTableBuildAndGet(t *testing.T) {
	k := fastKernel(t)
	k.MkdirAll("/db")
	task := k.NewProcess("rocksdb").NewTask("rocksdb:high0")

	entries := make([]Entry, 0, 100)
	for i := 0; i < 100; i++ {
		entries = append(entries, Entry{Key: key(i), Value: []byte(fmt.Sprintf("val-%04d", i))})
	}
	tbl, err := buildSSTable(task, "/db/000001.sst", 1, entries)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if tbl.minKey != key(0) || tbl.maxKey != key(99) {
		t.Fatalf("key range = %q..%q", tbl.minKey, tbl.maxKey)
	}
	for _, i := range []int{0, 50, 99} {
		v, ok, err := tbl.get(task, key(i))
		if err != nil || !ok || string(v) != fmt.Sprintf("val-%04d", i) {
			t.Fatalf("get %s = (%q, %v, %v)", key(i), v, ok, err)
		}
	}
	if _, ok, _ := tbl.get(task, "userZZZ"); ok {
		t.Fatal("get out-of-range key succeeded")
	}
	if _, ok, _ := tbl.get(task, key(100)); ok {
		t.Fatal("get absent key succeeded")
	}

	// loadAll round-trips every entry.
	loaded, err := tbl.loadAll(task)
	if err != nil {
		t.Fatalf("loadAll: %v", err)
	}
	if len(loaded) != 100 {
		t.Fatalf("loadAll len = %d", len(loaded))
	}
	for i, e := range loaded {
		if e.Key != entries[i].Key || !bytes.Equal(e.Value, entries[i].Value) {
			t.Fatalf("loadAll[%d] = %+v", i, e)
		}
	}
}

func TestSSTableDropClosesAfterReads(t *testing.T) {
	k := fastKernel(t)
	k.MkdirAll("/db")
	proc := k.NewProcess("rocksdb")
	task := proc.NewTask("t")
	tbl, err := buildSSTable(task, "/db/x.sst", 1, []Entry{{Key: "a", Value: []byte("1")}})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// Open the fd by reading once.
	tbl.get(task, "a")
	tbl.acquire()
	tbl.drop(task) // must not close while a reference is held
	if !tbl.fdOpen {
		t.Fatal("fd closed while reference held")
	}
	tbl.release(task)
	if tbl.fdOpen {
		t.Fatal("fd still open after last release on dropped table")
	}
}

func TestDBPutGetRoundTrip(t *testing.T) {
	k := fastKernel(t)
	db, err := Open(k, Config{Dir: "/db", CompactionThreads: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	client := db.NewClientTask("db_bench")

	for i := 0; i < 200; i++ {
		if err := db.Put(client, key(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for _, i := range []int{0, 100, 199} {
		v, ok, err := db.Get(client, key(i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %d = (%q, %v, %v)", i, v, ok, err)
		}
	}
	if _, ok, _ := db.Get(client, "missing"); ok {
		t.Fatal("get of missing key succeeded")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := db.Put(client, "x", []byte("y")); err != ErrClosed {
		t.Fatalf("put after close = %v, want ErrClosed", err)
	}
	if _, _, err := db.Get(client, "x"); err != ErrClosed {
		t.Fatalf("get after close = %v, want ErrClosed", err)
	}
}

func TestDBFlushesAndReadsFromSSTables(t *testing.T) {
	k := fastKernel(t)
	db, err := Open(k, Config{
		Dir:           "/db",
		MemtableBytes: 4 << 10, // tiny: force many flushes
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	client := db.NewClientTask("db_bench")
	val := bytes.Repeat([]byte("x"), 128)

	const n = 500
	for i := 0; i < n; i++ {
		if err := db.Put(client, key(i), val); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	// Wait for at least one flush to land.
	deadline := time.Now().Add(5 * time.Second)
	for db.Stats().Flushes == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if db.Stats().Flushes == 0 {
		t.Fatal("no flush happened")
	}
	// Every key remains readable (memtable, imm, or SSTables).
	for i := 0; i < n; i += 37 {
		v, ok, err := db.Get(client, key(i))
		if err != nil || !ok || !bytes.Equal(v, val) {
			t.Fatalf("get %d after flushes = (%v, %v)", i, ok, err)
		}
	}
	db.Close()
}

func TestDBCompactionsReduceL0AndPreserveData(t *testing.T) {
	k := fastKernel(t)
	db, err := Open(k, Config{
		Dir:               "/db",
		MemtableBytes:     4 << 10,
		L0CompactTrigger:  2,
		L0StallTrigger:    4,
		LevelBaseBytes:    16 << 10,
		TargetFileBytes:   8 << 10,
		CompactionThreads: 3,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	client := db.NewClientTask("db_bench")
	val := bytes.Repeat([]byte("y"), 100)

	const n = 2000
	for i := 0; i < n; i++ {
		if err := db.Put(client, key(i%500), append(val, byte(i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for db.Stats().Compactions == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := db.Stats()
	if st.Compactions == 0 || st.L0Compactions == 0 {
		t.Fatalf("no compactions ran: %+v", st)
	}
	// Latest value wins: key(0) was overwritten at i=1500 (1500%500==0).
	v, ok, err := db.Get(client, key(0))
	if err != nil || !ok {
		t.Fatalf("get after compactions = (%v, %v)", ok, err)
	}
	const wantLast = byte(1500 % 256)
	if v[len(v)-1] != wantLast {
		t.Fatalf("stale value after compaction: last byte %d, want %d", v[len(v)-1], wantLast)
	}
	db.Close()
}

func TestDBWriteStallsAccounted(t *testing.T) {
	k := fastKernel(t)
	db, err := Open(k, Config{
		Dir:               "/db",
		MemtableBytes:     2 << 10,
		L0CompactTrigger:  2,
		L0StallTrigger:    2, // stall almost immediately
		CompactionThreads: 1,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	client := db.NewClientTask("db_bench")
	val := bytes.Repeat([]byte("z"), 256)
	for i := 0; i < 400; i++ {
		if err := db.Put(client, key(i), val); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if db.Stats().Stalls == 0 {
		t.Fatal("no write stalls despite tiny L0 stall trigger")
	}
	db.Close()
}

func TestDBConcurrentClients(t *testing.T) {
	k := fastKernel(t)
	db, err := Open(k, Config{Dir: "/db", MemtableBytes: 16 << 10, CompactionThreads: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const clients = 4
	const perClient = 300
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			task := db.NewClientTask("db_bench")
			for i := 0; i < perClient; i++ {
				kk := key(c*perClient + i)
				if err := db.Put(task, kk, []byte(kk)); err != nil {
					errs <- err
					return
				}
				if _, _, err := db.Get(task, key(i)); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("client error: %v", err)
	}
	// Spot-check durability of all clients' keys.
	task := db.NewClientTask("checker")
	for c := 0; c < clients; c++ {
		kk := key(c*perClient + perClient - 1)
		if _, ok, err := db.Get(task, kk); !ok || err != nil {
			t.Fatalf("missing key %s (%v)", kk, err)
		}
	}
	db.Close()
}

func TestDBCloseFlushesMemtable(t *testing.T) {
	k := fastKernel(t)
	db, _ := Open(k, Config{Dir: "/db"})
	client := db.NewClientTask("db_bench")
	db.Put(client, "k1", []byte("v1"))
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if db.Stats().Flushes == 0 {
		t.Fatal("close did not flush the active memtable")
	}
	// Double close is safe.
	if err := db.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestDBBackgroundThreadNames(t *testing.T) {
	k := fastKernel(t)
	db, _ := Open(k, Config{Dir: "/db", CompactionThreads: 7})
	defer db.Close()

	var names []string
	for _, p := range k.Processes() {
		if p.Name() == "db_bench" {
			// Collect thread names via a traced syscall is overkill here;
			// instead check the fd table owner process exists and thread
			// count is 1 main + 1 close-helper possible + 1 flush + 7 comp.
			names = append(names, p.Name())
		}
	}
	if len(names) != 1 {
		t.Fatalf("db_bench processes = %v", names)
	}
}

// TestDBMatchesModelRandomOps drives the store with a random mix of puts,
// overwrites, gets, and scans while flushes and compactions run in the
// background, checking every result against an in-memory reference model.
func TestDBMatchesModelRandomOps(t *testing.T) {
	k := fastKernel(t)
	db, err := Open(k, Config{
		Dir:               "/db",
		MemtableBytes:     4 << 10,
		L0CompactTrigger:  2,
		LevelBaseBytes:    16 << 10,
		TargetFileBytes:   8 << 10,
		CompactionThreads: 2,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	client := db.NewClientTask("model")
	rng := rand.New(rand.NewSource(11))
	model := make(map[string]string)

	const keySpace = 150
	for i := 0; i < 3000; i++ {
		kk := key(rng.Intn(keySpace))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // put
			v := fmt.Sprintf("v%d-%s", i, kk)
			if err := db.Put(client, kk, []byte(v)); err != nil {
				t.Fatalf("put: %v", err)
			}
			model[kk] = v
		case 5, 6, 7, 8: // get
			v, ok, err := db.Get(client, kk)
			if err != nil {
				t.Fatalf("get: %v", err)
			}
			want, wantOK := model[kk]
			if ok != wantOK || (ok && string(v) != want) {
				t.Fatalf("get %s = (%q, %v), model (%q, %v) at op %d", kk, v, ok, want, wantOK, i)
			}
		default: // scan a small range
			lo := rng.Intn(keySpace)
			hi := lo + rng.Intn(20)
			it, err := db.Scan(client, key(lo), key(hi))
			if err != nil {
				t.Fatalf("scan: %v", err)
			}
			got := map[string]string{}
			for ; it.Valid(); it.Next() {
				got[it.Key()] = string(it.Value())
			}
			for j := lo; j < hi; j++ {
				kk := key(j)
				want, wantOK := model[kk]
				gv, gok := got[kk]
				if gok != wantOK || (gok && gv != want) {
					t.Fatalf("scan[%s] = (%q, %v), model (%q, %v) at op %d", kk, gv, gok, want, wantOK, i)
				}
			}
			if len(got) != countRange(model, key(lo), key(hi)) {
				t.Fatalf("scan size %d != model at op %d", len(got), i)
			}
		}
	}
	if db.Stats().Flushes == 0 || db.Stats().Compactions == 0 {
		t.Fatalf("model test did not exercise background work: %+v", db.Stats())
	}
}

func countRange(m map[string]string, lo, hi string) int {
	n := 0
	for k := range m {
		if k >= lo && k < hi {
			n++
		}
	}
	return n
}
