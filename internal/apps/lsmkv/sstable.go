package lsmkv

import (
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/dsrhaslab/dio-go/internal/kernel"
)

// indexEntry locates one value inside an SSTable file.
type indexEntry struct {
	key    string
	valOff int64
	valLen int32
}

// SSTable is one immutable sorted table on the simulated filesystem. The
// key index is kept in memory (the moral equivalent of RocksDB's table
// cache + index blocks); values are read with pread through a shared file
// descriptor.
type SSTable struct {
	path    string
	fileNum uint64
	size    int64
	index   []indexEntry
	minKey  string
	maxKey  string
	// compacting marks the table as claimed by a running compaction job;
	// guarded by the owning DB's mutex, not the table's.
	compacting bool

	mu      sync.Mutex
	fd      int
	fdOpen  bool
	refs    int
	dropped bool
	owner   *kernel.Process // descriptor lives in the DB process fd table
}

const writeChunk = 32 << 10

// buildSSTable writes sorted entries to path using task's syscalls and
// returns the table. The write path is the I/O that flush and compaction
// threads push through the shared disk: sequential writes plus a final
// fsync.
func buildSSTable(task *kernel.Task, path string, fileNum uint64, entries []Entry) (*SSTable, error) {
	fd, err := task.Openat(kernel.AtFDCWD, path, kernel.OWronly|kernel.OCreat|kernel.OTrunc, 0o644)
	if err != nil {
		return nil, fmt.Errorf("create sstable %s: %w", path, err)
	}
	t := &SSTable{
		path:    path,
		fileNum: fileNum,
		fd:      -1,
		owner:   task.Process(),
	}
	var (
		buf []byte
		off int64
	)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if _, werr := task.Write(fd, buf); werr != nil {
			return fmt.Errorf("write sstable %s: %w", path, werr)
		}
		buf = buf[:0]
		return nil
	}
	var hdr [6]byte
	for _, e := range entries {
		binary.LittleEndian.PutUint16(hdr[0:], uint16(len(e.Key)))
		binary.LittleEndian.PutUint32(hdr[2:], uint32(len(e.Value)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, e.Key...)
		valOff := off + int64(len(buf))
		buf = append(buf, e.Value...)
		t.index = append(t.index, indexEntry{key: e.Key, valOff: valOff, valLen: int32(len(e.Value))})
		if len(buf) >= writeChunk {
			wrote := int64(len(buf))
			if err := flush(); err != nil {
				task.Close(fd)
				return nil, err
			}
			off += wrote
		}
	}
	wrote := int64(len(buf))
	if err := flush(); err != nil {
		task.Close(fd)
		return nil, err
	}
	off += wrote
	if err := task.Fsync(fd); err != nil {
		task.Close(fd)
		return nil, fmt.Errorf("fsync sstable %s: %w", path, err)
	}
	if err := task.Close(fd); err != nil {
		return nil, fmt.Errorf("close sstable %s: %w", path, err)
	}
	t.size = off
	if len(entries) > 0 {
		t.minKey = entries[0].Key
		t.maxKey = entries[len(entries)-1].Key
	}
	return t, nil
}

// mayContain reports whether key falls in the table's key range.
func (t *SSTable) mayContain(key string) bool {
	return len(t.index) > 0 && key >= t.minKey && key <= t.maxKey
}

// acquire takes a reference, preventing the descriptor from being closed
// while a read is in flight.
func (t *SSTable) acquire() {
	t.mu.Lock()
	t.refs++
	t.mu.Unlock()
}

// release drops a reference; the last release after drop() closes the fd.
func (t *SSTable) release(task *kernel.Task) {
	t.mu.Lock()
	t.refs--
	closeNow := t.dropped && t.refs == 0 && t.fdOpen
	fd := t.fd
	if closeNow {
		t.fdOpen = false
	}
	t.mu.Unlock()
	if closeNow {
		task.Close(fd)
	}
}

// drop marks the table dead (superseded by compaction). The caller unlinks
// the path; the descriptor closes when the last in-flight read releases.
func (t *SSTable) drop(task *kernel.Task) {
	t.mu.Lock()
	t.dropped = true
	closeNow := t.refs == 0 && t.fdOpen
	fd := t.fd
	if closeNow {
		t.fdOpen = false
	}
	t.mu.Unlock()
	if closeNow {
		task.Close(fd)
	}
}

// ensureOpen opens the table's descriptor on first use.
func (t *SSTable) ensureOpen(task *kernel.Task) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fdOpen {
		return nil
	}
	fd, err := task.Openat(kernel.AtFDCWD, t.path, kernel.ORdonly, 0)
	if err != nil {
		return fmt.Errorf("open sstable %s: %w", t.path, err)
	}
	t.fd = fd
	t.fdOpen = true
	return nil
}

// get reads the value for key, if present, using task's syscalls.
func (t *SSTable) get(task *kernel.Task, key string) ([]byte, bool, error) {
	lo, hi := 0, len(t.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.index[mid].key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(t.index) || t.index[lo].key != key {
		return nil, false, nil
	}
	if err := t.ensureOpen(task); err != nil {
		return nil, false, err
	}
	ie := t.index[lo]
	buf := make([]byte, ie.valLen)
	n, err := task.Pread64(t.fd, buf, ie.valOff)
	if err != nil {
		return nil, false, fmt.Errorf("pread sstable %s: %w", t.path, err)
	}
	if n != int(ie.valLen) {
		return nil, false, fmt.Errorf("pread sstable %s: short read %d/%d", t.path, n, ie.valLen)
	}
	return buf, true, nil
}

// loadAll reads every entry of the table (sequential scan), used by
// compactions to merge inputs.
func (t *SSTable) loadAll(task *kernel.Task) ([]Entry, error) {
	if err := t.ensureOpen(task); err != nil {
		return nil, err
	}
	// Sequential chunked reads of the whole file.
	data := make([]byte, 0, t.size)
	buf := make([]byte, 64<<10)
	var off int64
	for off < t.size {
		n, err := task.Pread64(t.fd, buf, off)
		if err != nil {
			return nil, fmt.Errorf("scan sstable %s: %w", t.path, err)
		}
		if n == 0 {
			break
		}
		data = append(data, buf[:n]...)
		off += int64(n)
	}
	entries := make([]Entry, 0, len(t.index))
	for pos := 0; pos+6 <= len(data); {
		kl := int(binary.LittleEndian.Uint16(data[pos:]))
		vl := int(binary.LittleEndian.Uint32(data[pos+2:]))
		pos += 6
		if pos+kl+vl > len(data) {
			return nil, fmt.Errorf("scan sstable %s: corrupt entry at %d", t.path, pos)
		}
		key := string(data[pos : pos+kl])
		val := make([]byte, vl)
		copy(val, data[pos+kl:pos+kl+vl])
		entries = append(entries, Entry{Key: key, Value: val})
		pos += kl + vl
	}
	return entries, nil
}
