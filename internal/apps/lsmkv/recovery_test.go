package lsmkv

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/kernel"
)

func TestRecoveryFromCleanClose(t *testing.T) {
	k := fastKernel(t)
	db, err := Open(k, Config{Dir: "/db", MemtableBytes: 4 << 10})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	client := db.NewClientTask("db_bench")
	val := bytes.Repeat([]byte("v"), 64)
	for i := 0; i < 300; i++ {
		if err := db.Put(client, key(i), val); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Re-open the same directory: everything must still be readable.
	db2, err := Open(k, Config{Dir: "/db", MemtableBytes: 4 << 10})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	client2 := db2.NewClientTask("db_bench")
	for i := 0; i < 300; i += 17 {
		v, ok, err := db2.Get(client2, key(i))
		if err != nil || !ok || !bytes.Equal(v, val) {
			t.Fatalf("get %d after reopen = (%v, %v)", i, ok, err)
		}
	}
}

func TestRecoveryReplaysWALAfterCrash(t *testing.T) {
	k := fastKernel(t)
	db, err := Open(k, Config{Dir: "/db", MemtableBytes: 1 << 20}) // big: nothing flushes
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	client := db.NewClientTask("db_bench")
	for i := 0; i < 50; i++ {
		if err := db.Put(client, key(i), []byte(fmt.Sprintf("wal-%d", i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if db.Stats().Flushes != 0 {
		t.Fatal("precondition failed: data flushed before crash")
	}
	db.CloseAbrupt() // crash: memtable lost, WAL survives

	db2, err := Open(k, Config{Dir: "/db"})
	if err != nil {
		t.Fatalf("recover open: %v", err)
	}
	defer db2.Close()
	if db2.Stats().Flushes == 0 {
		t.Fatal("recovery did not flush replayed WAL data")
	}
	client2 := db2.NewClientTask("db_bench")
	for i := 0; i < 50; i++ {
		v, ok, err := db2.Get(client2, key(i))
		if err != nil || !ok || string(v) != fmt.Sprintf("wal-%d", i) {
			t.Fatalf("get %d after crash recovery = (%q, %v, %v)", i, v, ok, err)
		}
	}
}

func TestRecoveryAfterCrashWithFlushesAndCompactions(t *testing.T) {
	k := fastKernel(t)
	db, err := Open(k, Config{
		Dir:               "/db",
		MemtableBytes:     2 << 10,
		L0CompactTrigger:  2,
		LevelBaseBytes:    8 << 10,
		TargetFileBytes:   4 << 10,
		CompactionThreads: 2,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	client := db.NewClientTask("db_bench")
	val := bytes.Repeat([]byte("r"), 100)
	const n = 500
	for i := 0; i < n; i++ {
		if err := db.Put(client, key(i), append(val, byte(i%256))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	// Let background work settle a little, then crash.
	deadline := time.Now().Add(5 * time.Second)
	for db.Stats().Compactions == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	db.CloseAbrupt()

	db2, err := Open(k, Config{
		Dir:              "/db",
		MemtableBytes:    2 << 10,
		L0CompactTrigger: 2,
	})
	if err != nil {
		t.Fatalf("recover open: %v", err)
	}
	defer db2.Close()
	client2 := db2.NewClientTask("db_bench")
	for i := 0; i < n; i += 23 {
		v, ok, err := db2.Get(client2, key(i))
		if err != nil || !ok {
			t.Fatalf("get %d after crash = (%v, %v)", i, ok, err)
		}
		if v[len(v)-1] != byte(i%256) {
			t.Fatalf("get %d returned stale value (last byte %d)", i, v[len(v)-1])
		}
	}
}

func TestRecoveryWithTornWALTail(t *testing.T) {
	k := fastKernel(t)
	db, err := Open(k, Config{Dir: "/db", MemtableBytes: 1 << 20})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	client := db.NewClientTask("db_bench")
	for i := 0; i < 10; i++ {
		db.Put(client, key(i), []byte("good"))
	}
	// Simulate a torn final record: append garbage that parses as a huge
	// length prefix.
	walPath := "/db/000001.wal"
	fd, err := client.Openat(kernel.AtFDCWD, walPath, kernel.OWronly|kernel.OAppend, 0)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	client.Write(fd, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	client.Close(fd)
	db.CloseAbrupt()

	db2, err := Open(k, Config{Dir: "/db"})
	if err != nil {
		t.Fatalf("recover open with torn wal: %v", err)
	}
	defer db2.Close()
	client2 := db2.NewClientTask("db_bench")
	for i := 0; i < 10; i++ {
		v, ok, _ := db2.Get(client2, key(i))
		if !ok || string(v) != "good" {
			t.Fatalf("get %d after torn-tail recovery = (%q, %v)", i, v, ok)
		}
	}
}

func TestManifestSurvivesMissingTable(t *testing.T) {
	k := fastKernel(t)
	db, err := Open(k, Config{Dir: "/db", MemtableBytes: 2 << 10})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	client := db.NewClientTask("db_bench")
	val := bytes.Repeat([]byte("m"), 64)
	for i := 0; i < 200; i++ {
		db.Put(client, key(i), val)
	}
	db.Close()

	// Delete one SST file behind the manifest's back; recovery must skip
	// it and still open.
	names, _ := k.ListDir("/db")
	for _, n := range names {
		if len(n) > 4 && n[len(n)-4:] == ".sst" {
			t := db.NewClientTask("hack")
			t.Unlink("/db/" + n)
			break
		}
	}
	db2, err := Open(k, Config{Dir: "/db"})
	if err != nil {
		t.Fatalf("open with missing table: %v", err)
	}
	db2.Close()
}
