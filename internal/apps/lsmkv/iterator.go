package lsmkv

import (
	"sort"

	"github.com/dsrhaslab/dio-go/internal/kernel"
)

// Iterator walks key-value pairs in ascending key order over a consistent
// snapshot of the store (memtable, immutable memtable, and all SSTables).
// It powers range scans (YCSB workload E's primary operation).
type Iterator struct {
	entries []Entry
	pos     int
}

// Scan returns an iterator over keys in [startKey, endKey) — endKey empty
// means "to the end". The snapshot is taken under the store lock; table
// contents are then read through task's syscalls outside the lock, with
// references held so compactions cannot retire descriptors mid-scan.
func (db *DB) Scan(task *kernel.Task, startKey, endKey string) (*Iterator, error) {
	if task.Process() != db.proc {
		return nil, ErrForeignTask
	}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	// Collect sources newest-first: memtable, immutable, L0 newest-first,
	// then deeper levels.
	type memSnapshot struct {
		entries []Entry
	}
	var mems []memSnapshot
	snapshotMem := func(m *memtable) {
		if m == nil {
			return
		}
		var es []Entry
		for k, v := range m.data {
			if k >= startKey && (endKey == "" || k < endKey) {
				es = append(es, Entry{Key: k, Value: append([]byte(nil), v...)})
			}
		}
		mems = append(mems, memSnapshot{entries: es})
	}
	snapshotMem(db.mem)
	snapshotMem(db.imm)

	var tables []*SSTable
	for li, lvl := range db.levels {
		lvlTables := lvl
		if li > 0 {
			// Deeper levels: restrict to range-overlapping tables, newest
			// file numbers first within the level for precedence.
			lvlTables = nil
			for _, t := range lvl {
				if len(t.index) == 0 {
					continue
				}
				if endKey != "" && t.minKey >= endKey {
					continue
				}
				if t.maxKey < startKey {
					continue
				}
				lvlTables = append(lvlTables, t)
			}
			sort.Slice(lvlTables, func(i, j int) bool {
				return lvlTables[i].fileNum > lvlTables[j].fileNum
			})
		}
		for _, t := range lvlTables {
			t.acquire()
			tables = append(tables, t)
		}
	}
	db.mu.Unlock()

	// Merge newest-first: the first writer of a key wins.
	merged := make(map[string][]byte)
	for _, ms := range mems {
		for _, e := range ms.entries {
			if _, seen := merged[e.Key]; !seen {
				merged[e.Key] = e.Value
			}
		}
	}
	var scanErr error
	for _, t := range tables {
		if scanErr == nil {
			entries, err := t.loadAll(task)
			if err != nil {
				scanErr = err
			} else {
				for _, e := range entries {
					if e.Key < startKey || (endKey != "" && e.Key >= endKey) {
						continue
					}
					if _, seen := merged[e.Key]; !seen {
						merged[e.Key] = e.Value
					}
				}
			}
		}
		t.release(task)
	}
	if scanErr != nil {
		return nil, scanErr
	}

	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	it := &Iterator{entries: make([]Entry, 0, len(keys))}
	for _, k := range keys {
		it.entries = append(it.entries, Entry{Key: k, Value: merged[k]})
	}
	return it, nil
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool { return it.pos < len(it.entries) }

// Key returns the current key.
func (it *Iterator) Key() string { return it.entries[it.pos].Key }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.entries[it.pos].Value }

// Next advances the iterator.
func (it *Iterator) Next() { it.pos++ }

// Len returns the number of entries in the snapshot range.
func (it *Iterator) Len() int { return len(it.entries) }
