package lsmkv

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

func TestScanAcrossMemtableAndTables(t *testing.T) {
	k := fastKernel(t)
	db, err := Open(k, Config{Dir: "/db", MemtableBytes: 2 << 10, L0CompactTrigger: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	client := db.NewClientTask("db_bench")

	const n = 200
	val := bytes.Repeat([]byte("s"), 64)
	for i := 0; i < n; i++ {
		if err := db.Put(client, key(i), append(val, byte(i%256))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	// Some data is in SSTables (flushes happened), some still in memtable.
	it, err := db.Scan(client, key(50), key(150))
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if it.Len() != 100 {
		t.Fatalf("scan len = %d, want 100", it.Len())
	}
	i := 50
	for ; it.Valid(); it.Next() {
		if it.Key() != key(i) {
			t.Fatalf("scan[%d] key = %q, want %q", i-50, it.Key(), key(i))
		}
		if it.Value()[len(it.Value())-1] != byte(i%256) {
			t.Fatalf("scan %s stale value", it.Key())
		}
		i++
	}
	if i != 150 {
		t.Fatalf("iterated to %d, want 150", i)
	}
}

func TestScanSeesNewestVersion(t *testing.T) {
	k := fastKernel(t)
	db, err := Open(k, Config{Dir: "/db", MemtableBytes: 1 << 10, L0CompactTrigger: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	client := db.NewClientTask("db_bench")
	// Write twice: first version lands in SSTables, second stays fresher.
	for round := 0; round < 2; round++ {
		for i := 0; i < 100; i++ {
			if err := db.Put(client, key(i), []byte(fmt.Sprintf("v%d-%d", round, i))); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
	}
	it, err := db.Scan(client, key(0), "")
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if it.Len() != 100 {
		t.Fatalf("len = %d", it.Len())
	}
	for i := 0; it.Valid(); it.Next() {
		want := fmt.Sprintf("v1-%d", i)
		if string(it.Value()) != want {
			t.Fatalf("scan %s = %q, want %q", it.Key(), it.Value(), want)
		}
		i++
	}
}

func TestScanOpenEndedAndEmpty(t *testing.T) {
	k := fastKernel(t)
	db, _ := Open(k, Config{Dir: "/db"})
	defer db.Close()
	client := db.NewClientTask("db_bench")
	for i := 0; i < 10; i++ {
		db.Put(client, key(i), []byte("x"))
	}
	it, err := db.Scan(client, "", "")
	if err != nil || it.Len() != 10 {
		t.Fatalf("full scan = (%d, %v)", it.Len(), err)
	}
	it, err = db.Scan(client, key(100), key(200))
	if err != nil || it.Len() != 0 {
		t.Fatalf("empty scan = (%d, %v)", it.Len(), err)
	}
	if it.Valid() {
		t.Fatal("empty iterator Valid()")
	}
}

func TestScanForeignTaskRejected(t *testing.T) {
	k := fastKernel(t)
	db, _ := Open(k, Config{Dir: "/db"})
	defer db.Close()
	alien := k.NewProcess("other").NewTask("other")
	if _, err := db.Scan(alien, "", ""); err != ErrForeignTask {
		t.Fatalf("scan from foreign task = %v", err)
	}
}

func TestScanDuringCompactions(t *testing.T) {
	k := fastKernel(t)
	db, err := Open(k, Config{
		Dir:               "/db",
		MemtableBytes:     2 << 10,
		L0CompactTrigger:  2,
		LevelBaseBytes:    8 << 10,
		TargetFileBytes:   4 << 10,
		CompactionThreads: 3,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	client := db.NewClientTask("db_bench")
	val := bytes.Repeat([]byte("c"), 100)

	done := make(chan struct{})
	go func() {
		defer close(done)
		w := db.NewClientTask("writer")
		for i := 0; i < 1000; i++ {
			db.Put(w, key(i%300), val)
		}
	}()
	// Scans race with flushes and compactions; every scan must be
	// consistent (sorted, no duplicates, correct value size).
	for j := 0; j < 20; j++ {
		it, err := db.Scan(client, key(0), key(300))
		if err != nil {
			t.Fatalf("scan %d: %v", j, err)
		}
		prev := ""
		for ; it.Valid(); it.Next() {
			if it.Key() <= prev {
				t.Fatalf("scan %d out of order: %q after %q", j, it.Key(), prev)
			}
			if len(it.Value()) != len(val) {
				t.Fatalf("scan %d value len = %d", j, len(it.Value()))
			}
			prev = it.Key()
		}
		time.Sleep(time.Millisecond)
	}
	<-done
}
