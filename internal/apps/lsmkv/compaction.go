package lsmkv

import (
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/dsrhaslab/dio-go/internal/kernel"
)

// compactionJob describes one unit of background merge work: inputs from
// level plus the overlapping tables of level+1, merged and written into
// level+1.
type compactionJob struct {
	level    int
	inputs   []*SSTable // from job.level (for L0: every L0 table)
	overlaps []*SSTable // from job.level+1
}

func (j *compactionJob) isL0() bool { return j.level == 0 }

// targetBytes returns the size target of level n (n >= 1).
func (db *DB) targetBytes(n int) int64 {
	t := db.cfg.LevelBaseBytes
	for i := 1; i < n; i++ {
		t *= int64(db.cfg.LevelMultiplier)
	}
	return t
}

func levelBytes(tables []*SSTable) int64 {
	var n int64
	for _, t := range tables {
		n += t.size
	}
	return n
}

func overlapping(tables []*SSTable, minKey, maxKey string) []*SSTable {
	var out []*SSTable
	for _, t := range tables {
		if len(t.index) == 0 {
			continue
		}
		if t.maxKey < minKey || t.minKey > maxKey {
			continue
		}
		out = append(out, t)
	}
	return out
}

// pickCompactionLocked selects the next compaction job, or nil when no
// level needs work (or all needed inputs are already being compacted).
// Callers hold db.mu. L0→L1 compactions are exclusive (every L0 table
// overlaps every other); deeper compactions parallelize across disjoint
// table sets, which is how several rocksdb:lowX threads end up doing I/O at
// once in the paper's Fig. 4.
func (db *DB) pickCompactionLocked() *compactionJob {
	// L0: all tables merge together into L1.
	if !db.l0Busy && len(db.levels[0]) >= db.cfg.L0CompactTrigger {
		inputs := append([]*SSTable(nil), db.levels[0]...)
		minK, maxK := keyRange(inputs)
		ovl := overlapping(db.levels[1], minK, maxK)
		if !anyCompacting(ovl) {
			db.l0Busy = true
			markCompacting(inputs, true)
			markCompacting(ovl, true)
			return &compactionJob{level: 0, inputs: inputs, overlaps: ovl}
		}
	}
	// Deeper levels: one table at a time, by descending size pressure.
	for n := 1; n < db.cfg.MaxLevels-1; n++ {
		if levelBytes(db.levels[n]) <= db.targetBytes(n) {
			continue
		}
		for _, t := range db.levels[n] {
			if t.compacting || len(t.index) == 0 {
				continue
			}
			ovl := overlapping(db.levels[n+1], t.minKey, t.maxKey)
			if anyCompacting(ovl) {
				continue
			}
			inputs := []*SSTable{t}
			markCompacting(inputs, true)
			markCompacting(ovl, true)
			return &compactionJob{level: n, inputs: inputs, overlaps: ovl}
		}
	}
	return nil
}

func keyRange(tables []*SSTable) (string, string) {
	minK, maxK := "", ""
	for i, t := range tables {
		if len(t.index) == 0 {
			continue
		}
		if i == 0 || t.minKey < minK || minK == "" {
			minK = t.minKey
		}
		if t.maxKey > maxK {
			maxK = t.maxKey
		}
	}
	return minK, maxK
}

func anyCompacting(tables []*SSTable) bool {
	for _, t := range tables {
		if t.compacting {
			return true
		}
	}
	return false
}

func markCompacting(tables []*SSTable, v bool) {
	for _, t := range tables {
		t.compacting = v
	}
}

// compactionLoop is one "rocksdb:lowN" thread.
func (db *DB) compactionLoop(task *kernel.Task) {
	defer db.wg.Done()
	for {
		db.mu.Lock()
		job := db.pickCompactionLocked()
		for job == nil && !db.closed {
			db.cond.Wait()
			job = db.pickCompactionLocked()
		}
		if job == nil {
			db.mu.Unlock()
			return
		}
		db.mu.Unlock()

		if err := db.runCompaction(task, job); err != nil {
			// A failed compaction releases its claims and leaves the tables
			// in place; the store degrades to higher read amplification
			// rather than breaking.
			db.mu.Lock()
			markCompacting(job.inputs, false)
			markCompacting(job.overlaps, false)
			if job.isL0() {
				db.l0Busy = false
			}
			db.cond.Broadcast()
			db.mu.Unlock()
		}
	}
}

// runCompaction merges the job's inputs and installs the outputs.
func (db *DB) runCompaction(task *kernel.Task, job *compactionJob) error {
	// Merge precedence: level n data is newer than level n+1 data; within
	// L0, later flushes (held first in the slice) are newer. Iterate from
	// oldest to newest so newer values overwrite older ones.
	merged := make(map[string][]byte)
	loadInto := func(t *SSTable) error {
		entries, err := t.loadAll(task)
		if err != nil {
			return err
		}
		for _, e := range entries {
			merged[e.Key] = e.Value
		}
		return nil
	}
	for _, t := range job.overlaps { // oldest data first
		if err := loadInto(t); err != nil {
			return err
		}
	}
	for i := len(job.inputs) - 1; i >= 0; i-- { // L0: oldest flush first
		if err := loadInto(job.inputs[i]); err != nil {
			return err
		}
	}

	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Split the merged run into output tables of ~TargetFileBytes.
	var outputs []*SSTable
	var cur []Entry
	var curBytes int64
	writeOut := func() error {
		if len(cur) == 0 {
			return nil
		}
		num := atomic.AddUint64(&db.nextFile, 1)
		path := fmt.Sprintf("%s/%06d.sst", db.cfg.Dir, num)
		t, err := buildSSTable(task, path, num, cur)
		if err != nil {
			return err
		}
		outputs = append(outputs, t)
		cur = nil
		curBytes = 0
		return nil
	}
	for _, k := range keys {
		v := merged[k]
		cur = append(cur, Entry{Key: k, Value: v})
		curBytes += int64(len(k)+len(v)) + 6
		if curBytes >= db.cfg.TargetFileBytes {
			if err := writeOut(); err != nil {
				return err
			}
		}
	}
	if err := writeOut(); err != nil {
		return err
	}

	// Install: remove inputs and overlaps, add outputs to level+1.
	db.mu.Lock()
	db.levels[job.level] = removeTables(db.levels[job.level], job.inputs)
	dst := job.level + 1
	db.levels[dst] = removeTables(db.levels[dst], job.overlaps)
	db.levels[dst] = append(db.levels[dst], outputs...)
	sort.Slice(db.levels[dst], func(i, j int) bool {
		return db.levels[dst][i].minKey < db.levels[dst][j].minKey
	})
	if job.isL0() {
		db.l0Busy = false
		db.l0comps.Add(1)
	}
	db.compactions.Add(1)
	db.cond.Broadcast()
	db.mu.Unlock()

	// Persist the new layout, then retire the dead tables: unlink the
	// paths; descriptors close when the last in-flight read finishes.
	if merr := db.writeManifest(task); merr != nil {
		db.manifestErrs.Add(1)
	}
	for _, t := range append(append([]*SSTable(nil), job.inputs...), job.overlaps...) {
		t.drop(task)
		task.Unlink(t.path)
	}
	return nil
}

func removeTables(tables []*SSTable, dead []*SSTable) []*SSTable {
	deadSet := make(map[*SSTable]struct{}, len(dead))
	for _, t := range dead {
		deadSet[t] = struct{}{}
	}
	out := tables[:0]
	for _, t := range tables {
		if _, isDead := deadSet[t]; !isDead {
			out = append(out, t)
		}
	}
	return out
}
