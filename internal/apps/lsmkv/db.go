package lsmkv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/dsrhaslab/dio-go/internal/kernel"
)

// Config parametrizes the store. Zero values select defaults scaled for
// simulation (small memtables so that flushes and compactions happen within
// seconds instead of hours).
type Config struct {
	// Dir is the database directory on the simulated filesystem.
	Dir string
	// MemtableBytes triggers a flush when the active memtable exceeds it.
	MemtableBytes int
	// L0CompactTrigger schedules an L0→L1 compaction at this many L0 files.
	L0CompactTrigger int
	// L0StallTrigger blocks writers at this many L0 files (RocksDB's
	// level0_stop_writes_trigger), the paper's stall mechanism.
	L0StallTrigger int
	// LevelBaseBytes is the target size of L1; level n targets
	// LevelBaseBytes * LevelMultiplier^(n-1).
	LevelBaseBytes int64
	// LevelMultiplier is the per-level size ratio.
	LevelMultiplier int
	// MaxLevels bounds the level hierarchy.
	MaxLevels int
	// TargetFileBytes splits compaction outputs into files of this size.
	TargetFileBytes int64
	// CompactionThreads is the number of background compaction threads
	// (the paper's RocksDB setup used 7, plus 1 flush thread).
	CompactionThreads int
	// ProcessName names the database process (default "db_bench", since
	// RocksDB runs embedded inside the benchmark binary: client threads and
	// background threads share one process, as in the paper's Fig. 4).
	ProcessName string
}

func (c Config) withDefaults() Config {
	if c.Dir == "" {
		c.Dir = "/db"
	}
	if c.MemtableBytes <= 0 {
		c.MemtableBytes = 256 << 10
	}
	if c.L0CompactTrigger <= 0 {
		c.L0CompactTrigger = 4
	}
	if c.L0StallTrigger <= 0 {
		c.L0StallTrigger = 8
	}
	if c.LevelBaseBytes <= 0 {
		c.LevelBaseBytes = 1 << 20
	}
	if c.LevelMultiplier <= 0 {
		c.LevelMultiplier = 4
	}
	if c.MaxLevels <= 0 {
		c.MaxLevels = 5
	}
	if c.TargetFileBytes <= 0 {
		c.TargetFileBytes = 512 << 10
	}
	if c.CompactionThreads <= 0 {
		c.CompactionThreads = 7
	}
	if c.ProcessName == "" {
		c.ProcessName = "db_bench"
	}
	return c
}

// Stats are cumulative DB counters.
type Stats struct {
	Puts          uint64
	Gets          uint64
	Flushes       uint64
	Compactions   uint64
	L0Compactions uint64
	Stalls        uint64
	StallNS       int64
}

// DB is the LSM store.
type DB struct {
	cfg  Config
	kern *kernel.Kernel
	proc *kernel.Process

	mu       sync.Mutex
	cond     *sync.Cond
	mem      *memtable
	imm      *memtable
	levels   [][]*SSTable
	l0Busy   bool
	closed   bool
	nextFile uint64

	walMu      sync.Mutex
	manifestMu sync.Mutex

	wg sync.WaitGroup

	puts, gets, flushes, compactions, l0comps, stalls atomic.Uint64
	stallNS                                           atomic.Int64
	manifestErrs                                      atomic.Uint64
}

// ErrClosed reports an operation on a closed DB.
var ErrClosed = errors.New("lsmkv: database closed")

// Open creates (or re-creates) a database under cfg.Dir and starts the
// background flush and compaction threads.
func Open(k *kernel.Kernel, cfg Config) (*DB, error) {
	cfg = cfg.withDefaults()
	if err := k.MkdirAll(cfg.Dir); err != nil {
		return nil, fmt.Errorf("mkdir %s: %w", cfg.Dir, err)
	}
	db := &DB{
		cfg:    cfg,
		kern:   k,
		proc:   k.NewProcess(cfg.ProcessName),
		levels: make([][]*SSTable, cfg.MaxLevels),
	}
	db.cond = sync.NewCond(&db.mu)

	mainTask := db.proc.NewTask(cfg.ProcessName)

	// Crash recovery (before any background work): rebuild the level
	// hierarchy from the manifest and replay leftover WALs into a staging
	// memtable, which is flushed synchronously so its data is durable again
	// before new writes arrive.
	db.mem = newMemtable("", -1)
	if err := db.recover(mainTask); err != nil {
		return nil, fmt.Errorf("recover: %w", err)
	}
	recovered := db.mem

	// The first WAL is created by the DB's main task; its file number is
	// allocated after recovery so it cannot collide with pre-crash files.
	wal, walFD, err := db.newWAL(mainTask)
	if err != nil {
		return nil, err
	}
	db.mem = newMemtable(wal, walFD)
	if recovered.bytes > 0 {
		num := atomic.AddUint64(&db.nextFile, 1)
		path := fmt.Sprintf("%s/%06d.sst", cfg.Dir, num)
		t, berr := buildSSTable(mainTask, path, num, recovered.sorted())
		if berr != nil {
			return nil, fmt.Errorf("flush recovered wal data: %w", berr)
		}
		db.levels[0] = append([]*SSTable{t}, db.levels[0]...)
		db.flushes.Add(1)
		if merr := db.writeManifest(mainTask); merr != nil {
			return nil, merr
		}
	}

	flushTask := db.proc.NewTask("rocksdb:high0")
	db.wg.Add(1)
	go db.flushLoop(flushTask)
	for i := 0; i < cfg.CompactionThreads; i++ {
		compTask := db.proc.NewTask("rocksdb:low" + strconv.Itoa(i))
		db.wg.Add(1)
		go db.compactionLoop(compTask)
	}
	return db, nil
}

// Process returns the database's kernel process (e.g. to filter tracing).
func (db *DB) Process() *kernel.Process { return db.proc }

// NewClientTask creates a foreground client thread inside the database
// process. Clients must issue Put/Get on such tasks: RocksDB is an embedded
// store, so client threads share the process (and its file-descriptor
// table) with the background flush and compaction threads.
func (db *DB) NewClientTask(name string) *kernel.Task {
	return db.proc.NewTask(name)
}

// ErrForeignTask reports a Put/Get issued from a task outside the database
// process, which could not share the store's file descriptors.
var ErrForeignTask = errors.New("lsmkv: task does not belong to the database process")

// Stats returns a snapshot of the counters.
func (db *DB) Stats() Stats {
	return Stats{
		Puts:          db.puts.Load(),
		Gets:          db.gets.Load(),
		Flushes:       db.flushes.Load(),
		Compactions:   db.compactions.Load(),
		L0Compactions: db.l0comps.Load(),
		Stalls:        db.stalls.Load(),
		StallNS:       db.stallNS.Load(),
	}
}

// LevelFileCounts returns the current number of tables per level.
func (db *DB) LevelFileCounts() []int {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]int, len(db.levels))
	for i, lvl := range db.levels {
		out[i] = len(lvl)
	}
	return out
}

func (db *DB) newWAL(task *kernel.Task) (string, int, error) {
	num := atomic.AddUint64(&db.nextFile, 1)
	path := fmt.Sprintf("%s/%06d.wal", db.cfg.Dir, num)
	fd, err := task.Openat(kernel.AtFDCWD, path, kernel.OWronly|kernel.OCreat|kernel.OAppend, 0o644)
	if err != nil {
		return "", -1, fmt.Errorf("create wal %s: %w", path, err)
	}
	return path, fd, nil
}

// Put inserts key→value, performing the WAL write on the calling task (as
// RocksDB foreground threads do) and stalling when L0 is full.
func (db *DB) Put(task *kernel.Task, key string, value []byte) error {
	if task.Process() != db.proc {
		return ErrForeignTask
	}
	db.puts.Add(1)

	db.mu.Lock()
	// Write stall: too many L0 files, or a flush is already pending while
	// the active memtable is full again.
	stallStart := int64(-1)
	for !db.closed && (len(db.levels[0]) >= db.cfg.L0StallTrigger ||
		(db.imm != nil && db.mem.bytes >= db.cfg.MemtableBytes)) {
		if stallStart < 0 {
			stallStart = db.kern.Clock().NowNS()
			db.stalls.Add(1)
		}
		db.cond.Wait()
	}
	if stallStart >= 0 {
		db.stallNS.Add(db.kern.Clock().NowNS() - stallStart)
	}
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	db.mu.Unlock()

	// WAL append outside db.mu so that Gets are not blocked by disk time.
	// walMu covers both the append and WAL retirement in flushLoop, so the
	// descriptor cannot be closed mid-write.
	rec := walRecord(key, value)
	db.walMu.Lock()
	db.mu.Lock()
	walFD := db.mem.walFD
	db.mu.Unlock()
	_, werr := task.Write(walFD, rec)
	db.walMu.Unlock()
	if werr != nil {
		return fmt.Errorf("wal append: %w", werr)
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	db.mem.put(key, value)
	if db.mem.bytes >= db.cfg.MemtableBytes && db.imm == nil {
		// Rotate: the full memtable becomes immutable and a fresh WAL backs
		// the new one.
		wal, walFD, err := db.newWAL(task)
		if err != nil {
			return err
		}
		db.imm = db.mem
		db.mem = newMemtable(wal, walFD)
		db.cond.Broadcast() // wake the flush thread
	}
	return nil
}

// Get returns the value for key.
func (db *DB) Get(task *kernel.Task, key string) ([]byte, bool, error) {
	if task.Process() != db.proc {
		return nil, false, ErrForeignTask
	}
	db.gets.Add(1)

	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, false, ErrClosed
	}
	if v, ok := db.mem.get(key); ok {
		out := append([]byte(nil), v...)
		db.mu.Unlock()
		return out, true, nil
	}
	if db.imm != nil {
		if v, ok := db.imm.get(key); ok {
			out := append([]byte(nil), v...)
			db.mu.Unlock()
			return out, true, nil
		}
	}
	// Collect candidate tables: search levels top-down; within a level,
	// newer files (higher file numbers) take precedence. References are
	// acquired under the lock so compactions cannot close descriptors
	// under an in-flight read.
	var candidates []*SSTable
	for li, lvl := range db.levels {
		start := len(candidates)
		for _, t := range lvl {
			if t.mayContain(key) {
				t.acquire()
				candidates = append(candidates, t)
			}
		}
		// Within a level, newer files (higher numbers) take precedence; L0
		// is already held newest-first, deeper levels may transiently
		// overlap while compactions swap tables in.
		if li > 0 && len(candidates)-start > 1 {
			sub := candidates[start:]
			sort.Slice(sub, func(i, j int) bool { return sub[i].fileNum > sub[j].fileNum })
		}
	}
	db.mu.Unlock()

	var (
		val   []byte
		found bool
		gerr  error
	)
	for _, t := range candidates {
		if !found && gerr == nil {
			v, ok, err := t.get(task, key)
			if err != nil {
				gerr = err
			} else if ok {
				val, found = v, true
			}
		}
		t.release(task)
	}
	return val, found, gerr
}

// walRecord encodes one WAL entry.
func walRecord(key string, value []byte) []byte {
	rec := make([]byte, 6+len(key)+len(value))
	binary.LittleEndian.PutUint16(rec[0:], uint16(len(key)))
	binary.LittleEndian.PutUint32(rec[2:], uint32(len(value)))
	copy(rec[6:], key)
	copy(rec[6+len(key):], value)
	return rec
}

// flushLoop is the "rocksdb:high0" thread: it persists immutable memtables
// as L0 SSTables.
func (db *DB) flushLoop(task *kernel.Task) {
	defer db.wg.Done()
	for {
		db.mu.Lock()
		for db.imm == nil && !db.closed {
			db.cond.Wait()
		}
		if db.imm == nil && db.closed {
			db.mu.Unlock()
			return
		}
		imm := db.imm
		num := atomic.AddUint64(&db.nextFile, 1)
		db.mu.Unlock()

		entries := imm.sorted()
		path := fmt.Sprintf("%s/%06d.sst", db.cfg.Dir, num)
		t, err := buildSSTable(task, path, num, entries)

		db.mu.Lock()
		if err == nil {
			// L0 is ordered newest-first.
			db.levels[0] = append([]*SSTable{t}, db.levels[0]...)
			db.flushes.Add(1)
		}
		db.imm = nil
		db.cond.Broadcast()
		db.mu.Unlock()

		if err == nil {
			// Persist the new layout before retiring the WAL, so a crash
			// in between replays at most already-flushed data.
			if merr := db.writeManifest(task); merr != nil {
				db.manifestErrs.Add(1)
			}
		}

		// Retire the WAL that backed the flushed memtable. walMu keeps the
		// close from racing a WAL append still using the descriptor.
		db.walMu.Lock()
		task.Close(imm.walFD)
		db.walMu.Unlock()
		task.Unlink(imm.walPath)
	}
}

// Close stops background work and waits for it to finish. In-flight
// memtable contents are flushed before shutdown.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	// Flush the active memtable if it holds data and no flush is pending.
	for db.imm != nil {
		db.cond.Wait()
	}
	if db.mem.bytes > 0 {
		db.imm = db.mem
		wal, walFD, err := db.newWAL(db.proc.NewTask(db.cfg.ProcessName))
		if err == nil {
			db.mem = newMemtable(wal, walFD)
		}
		db.cond.Broadcast()
		for db.imm != nil {
			db.cond.Wait()
		}
	}
	db.closed = true
	db.cond.Broadcast()
	db.mu.Unlock()

	db.wg.Wait()
	return nil
}
