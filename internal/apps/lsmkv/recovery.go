package lsmkv

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"github.com/dsrhaslab/dio-go/internal/kernel"
)

// manifestName is the database's table-inventory file, rewritten after
// every flush and compaction so that Open can rebuild the level hierarchy
// after a crash (RocksDB's MANIFEST).
const manifestName = "MANIFEST"

// writeManifest persists the current level layout. It runs on the
// background task that just changed the layout, so the write is part of the
// traced I/O stream like RocksDB's own manifest updates. db.mu must NOT be
// held; the method snapshots the layout itself.
func (db *DB) writeManifest(task *kernel.Task) error {
	db.mu.Lock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "next_file %d\n", atomic.LoadUint64(&db.nextFile))
	for lvl, tables := range db.levels {
		for _, t := range tables {
			// compacting tables still belong to their level.
			fmt.Fprintf(&sb, "table %d %d %s\n", lvl, t.fileNum, t.path)
		}
	}
	db.mu.Unlock()

	db.manifestMu.Lock()
	defer db.manifestMu.Unlock()
	tmp := db.cfg.Dir + "/" + manifestName + ".tmp"
	fd, err := task.Openat(kernel.AtFDCWD, tmp, kernel.OWronly|kernel.OCreat|kernel.OTrunc, 0o644)
	if err != nil {
		return fmt.Errorf("create manifest: %w", err)
	}
	if _, err := task.Write(fd, []byte(sb.String())); err != nil {
		task.Close(fd)
		return fmt.Errorf("write manifest: %w", err)
	}
	if err := task.Fsync(fd); err != nil {
		task.Close(fd)
		return fmt.Errorf("fsync manifest: %w", err)
	}
	if err := task.Close(fd); err != nil {
		return fmt.Errorf("close manifest: %w", err)
	}
	// Atomic replace, the standard crash-safe manifest swap.
	if err := task.Rename(tmp, db.cfg.Dir+"/"+manifestName); err != nil {
		return fmt.Errorf("install manifest: %w", err)
	}
	return nil
}

// manifestEntry is one parsed table line.
type manifestEntry struct {
	level   int
	fileNum uint64
	path    string
}

// readManifest parses the manifest, returning the recorded next-file
// counter and table inventory. A missing manifest is not an error (fresh
// database).
func readManifest(k *kernel.Kernel, task *kernel.Task, dir string) (uint64, []manifestEntry, error) {
	path := dir + "/" + manifestName
	if _, err := task.Stat(path); err == kernel.ENOENT {
		return 0, nil, nil
	} else if err != nil {
		return 0, nil, fmt.Errorf("stat manifest: %w", err)
	}
	data, err := k.ReadFileContents(path)
	if err != nil {
		return 0, nil, fmt.Errorf("read manifest: %w", err)
	}
	var (
		nextFile uint64
		entries  []manifestEntry
	)
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "next_file":
			if len(fields) != 2 {
				return 0, nil, fmt.Errorf("manifest line %d: malformed next_file", lineNo+1)
			}
			nextFile, err = strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return 0, nil, fmt.Errorf("manifest line %d: %w", lineNo+1, err)
			}
		case "table":
			if len(fields) != 4 {
				return 0, nil, fmt.Errorf("manifest line %d: malformed table", lineNo+1)
			}
			lvl, err := strconv.Atoi(fields[1])
			if err != nil {
				return 0, nil, fmt.Errorf("manifest line %d: %w", lineNo+1, err)
			}
			num, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return 0, nil, fmt.Errorf("manifest line %d: %w", lineNo+1, err)
			}
			entries = append(entries, manifestEntry{level: lvl, fileNum: num, path: fields[3]})
		default:
			return 0, nil, fmt.Errorf("manifest line %d: unknown record %q", lineNo+1, fields[0])
		}
	}
	return nextFile, entries, nil
}

// openSSTable re-opens an existing table file, scanning it once to rebuild
// the in-memory index (the moral equivalent of reading index blocks).
func openSSTable(task *kernel.Task, path string, fileNum uint64) (*SSTable, error) {
	st, err := task.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("stat sstable %s: %w", path, err)
	}
	t := &SSTable{
		path:    path,
		fileNum: fileNum,
		size:    st.Size,
		fd:      -1,
		owner:   task.Process(),
	}
	entries, err := t.loadAll(task)
	if err != nil {
		return nil, err
	}
	var off int64
	for _, e := range entries {
		off += 6 + int64(len(e.Key))
		t.index = append(t.index, indexEntry{key: e.Key, valOff: off, valLen: int32(len(e.Value))})
		off += int64(len(e.Value))
	}
	if len(entries) > 0 {
		t.minKey = entries[0].Key
		t.maxKey = entries[len(entries)-1].Key
	}
	return t, nil
}

// recover rebuilds the level hierarchy from the manifest and replays
// write-ahead logs into the fresh memtable. It runs during Open, before
// background threads start.
func (db *DB) recover(task *kernel.Task) error {
	nextFile, entries, err := readManifest(db.kern, task, db.cfg.Dir)
	if err != nil {
		return err
	}
	maxNum := nextFile
	for _, e := range entries {
		if e.level < 0 || e.level >= len(db.levels) {
			return fmt.Errorf("manifest table %s: bad level %d", e.path, e.level)
		}
		t, oerr := openSSTable(task, e.path, e.fileNum)
		if oerr != nil {
			// A table referenced by the manifest but missing on disk means
			// the crash interleaved badly; skip it rather than refusing to
			// open (its data survives in older levels).
			continue
		}
		db.levels[e.level] = append(db.levels[e.level], t)
		if e.fileNum > maxNum {
			maxNum = e.fileNum
		}
	}
	// Keep L0 newest-first and deeper levels sorted by key.
	sort.Slice(db.levels[0], func(i, j int) bool {
		return db.levels[0][i].fileNum > db.levels[0][j].fileNum
	})
	for lvl := 1; lvl < len(db.levels); lvl++ {
		tables := db.levels[lvl]
		sort.Slice(tables, func(i, j int) bool { return tables[i].minKey < tables[j].minKey })
	}

	// Replay WALs (oldest first) into the memtable, then delete them: their
	// contents will reach an SSTable through the normal flush path.
	names, err := db.kern.ListDir(db.cfg.Dir)
	if err != nil {
		return fmt.Errorf("list db dir: %w", err)
	}
	var wals []string
	for _, n := range names {
		if strings.HasSuffix(n, ".wal") {
			wals = append(wals, n)
			if num, perr := strconv.ParseUint(strings.TrimSuffix(n, ".wal"), 10, 64); perr == nil && num > maxNum {
				maxNum = num
			}
		}
	}
	sort.Strings(wals) // zero-padded names sort by file number
	for _, name := range wals {
		path := db.cfg.Dir + "/" + name
		if rerr := db.replayWAL(task, path); rerr != nil {
			return fmt.Errorf("replay %s: %w", name, rerr)
		}
		task.Unlink(path)
	}
	atomic.StoreUint64(&db.nextFile, maxNum)
	return nil
}

// replayWAL feeds one log's records into the memtable.
func (db *DB) replayWAL(task *kernel.Task, path string) error {
	data, err := db.kern.ReadFileContents(path)
	if err != nil {
		return err
	}
	for pos := 0; pos+6 <= len(data); {
		kl := int(binary.LittleEndian.Uint16(data[pos:]))
		vl := int(binary.LittleEndian.Uint32(data[pos+2:]))
		pos += 6
		if pos+kl+vl > len(data) {
			// Torn tail write: everything before it is valid, as in a real
			// WAL recovery.
			return nil
		}
		key := string(data[pos : pos+kl])
		val := make([]byte, vl)
		copy(val, data[pos+kl:pos+kl+vl])
		db.mem.put(key, val)
		pos += kl + vl
	}
	return nil
}

// CloseAbrupt simulates a crash: background threads stop without flushing
// the memtable or deleting WALs, leaving recovery work for the next Open.
func (db *DB) CloseAbrupt() {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return
	}
	db.closed = true
	db.cond.Broadcast()
	db.mu.Unlock()
	db.wg.Wait()
}
