// Package lsmkv is a log-structured merge-tree key-value store modeled on
// RocksDB, built for the paper's §III-C use case: client threads serve
// Put/Get requests in the foreground while one flush thread
// ("rocksdb:high0") and a pool of compaction threads ("rocksdb:low0"…)
// perform background I/O through the shared simulated disk. Flushes move
// memtables to L0; compactions merge tables down the level hierarchy;
// writes stall when L0 grows beyond a limit. The interference of these
// background I/O workflows with foreground requests produces the tail
// latency spikes the paper diagnoses with DIO.
package lsmkv

import "sort"

// memtable is the in-memory write buffer.
type memtable struct {
	data  map[string][]byte
	bytes int
	// walPath is the write-ahead log backing this memtable; deleted after
	// the memtable is flushed to an SSTable.
	walPath string
	walFD   int
}

func newMemtable(walPath string, walFD int) *memtable {
	return &memtable{
		data:    make(map[string][]byte),
		walPath: walPath,
		walFD:   walFD,
	}
}

// put inserts or replaces a key.
func (m *memtable) put(key string, value []byte) {
	if old, ok := m.data[key]; ok {
		m.bytes -= len(key) + len(old)
	}
	v := make([]byte, len(value))
	copy(v, value)
	m.data[key] = v
	m.bytes += len(key) + len(v)
}

// get looks up a key.
func (m *memtable) get(key string) ([]byte, bool) {
	v, ok := m.data[key]
	return v, ok
}

// sorted returns the entries in key order, ready for SSTable building.
func (m *memtable) sorted() []Entry {
	keys := make([]string, 0, len(m.data))
	for k := range m.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Entry, len(keys))
	for i, k := range keys {
		out[i] = Entry{Key: k, Value: m.data[k]}
	}
	return out
}

// Entry is one key-value pair in an SSTable.
type Entry struct {
	Key   string
	Value []byte
}
