package viz

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Heatmap renders a matrix of intensities (rows × time buckets) — one of
// the visualization types the paper lists alongside tables, histograms, and
// time series (§IV). The canonical use is thread activity over time, where
// Fig. 4's stacked series become one shaded row per thread.
type Heatmap struct {
	Title string
	// RowLabels names the rows (e.g. thread names).
	RowLabels []string
	// ColLabels names the columns (e.g. window start times); optional.
	ColLabels []string
	// Values holds one intensity per row per column.
	Values [][]float64
}

// heatRunes shade from empty to full intensity.
var heatRunes = []rune(" ░▒▓█")

// HeatmapFromTimeSeries converts a multi-series chart into a heatmap with
// one row per series, normalized per row.
func HeatmapFromTimeSeries(ts *TimeSeries) *Heatmap {
	names := ts.SeriesNames()
	h := &Heatmap{Title: ts.Title, RowLabels: names}
	for _, t := range ts.BucketStartNS {
		h.ColLabels = append(h.ColLabels, strconv.FormatInt(t, 10))
	}
	for _, n := range names {
		vals := ts.Series[n]
		row := make([]float64, len(ts.BucketStartNS))
		copy(row, vals)
		h.Values = append(h.Values, row)
	}
	return h
}

// Render writes the heatmap as shaded text, one row per label, normalizing
// each row to its own maximum.
func (h *Heatmap) Render(w io.Writer) error {
	if h.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", h.Title); err != nil {
			return err
		}
	}
	labW := 0
	for _, l := range h.RowLabels {
		if len(l) > labW {
			labW = len(l)
		}
	}
	for i, label := range h.RowLabels {
		var vals []float64
		if i < len(h.Values) {
			vals = h.Values[i]
		}
		var max float64
		for _, v := range vals {
			if v > max {
				max = v
			}
		}
		var b strings.Builder
		for _, v := range vals {
			idx := 0
			if max > 0 && v > 0 {
				idx = 1 + int(v/max*float64(len(heatRunes)-2))
				if idx >= len(heatRunes) {
					idx = len(heatRunes) - 1
				}
			}
			b.WriteRune(heatRunes[idx])
		}
		if _, err := fmt.Fprintf(w, "%s |%s| max %s\n", pad(label, labW), b.String(), trimFloat(max)); err != nil {
			return err
		}
	}
	return nil
}

// String renders the heatmap to a string.
func (h *Heatmap) String() string {
	var b strings.Builder
	_ = h.Render(&b)
	return b.String()
}
