package viz

import (
	"context"
	"strings"
	"testing"

	"github.com/dsrhaslab/dio-go/internal/store"
)

func TestHeatmapFromTimeSeries(t *testing.T) {
	ts := &TimeSeries{
		Title:         "hm",
		BucketStartNS: []int64{0, 100, 200},
		Series: map[string][]float64{
			"a": {0, 5, 10},
			"b": {3, 3, 3},
		},
	}
	h := HeatmapFromTimeSeries(ts)
	if len(h.RowLabels) != 2 || len(h.Values) != 2 || len(h.ColLabels) != 3 {
		t.Fatalf("heatmap = %+v", h)
	}
	out := h.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // title + 2 rows
		t.Fatalf("lines = %v", lines)
	}
	// Row a: zero, mid, full intensity — first cell blank, last full block.
	rowA := lines[1]
	if !strings.Contains(rowA, "█") {
		t.Fatalf("row a missing full intensity: %q", rowA)
	}
	if !strings.Contains(rowA, "max 10") {
		t.Fatalf("row a missing max label: %q", rowA)
	}
}

func TestHeatmapEmptyRow(t *testing.T) {
	h := &Heatmap{RowLabels: []string{"empty"}, Values: [][]float64{{0, 0}}}
	out := h.String()
	if !strings.Contains(out, "empty") {
		t.Fatalf("out = %q", out)
	}
}

func TestHTMLDashboard(t *testing.T) {
	b := fixtureBackend(t)
	var sb strings.Builder
	if err := HTMLDashboard(&sb, b, "events", "s", 1000); err != nil {
		t.Fatalf("dashboard: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"DIO session s",
		"<svg",
		"polyline",
		"openat",
		"flb-pipeline",
		"Access pattern",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
	// All user data is escaped: no raw angle brackets from paths.
	if strings.Contains(out, "<script") {
		t.Fatal("unexpected script tag")
	}
}

func TestHTMLDashboardEscapesContent(t *testing.T) {
	st := fixtureBackend(t)
	// Inject a document with markup in a field.
	err := st.Bulk(context.Background(), "events", []store.Document{{
		"session": "s", "syscall": "<script>alert(1)</script>", "proc_name": "evil",
		"time_enter_ns": int64(5000),
	}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := HTMLDashboard(&sb, st, "events", "s", 1000); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "<script>alert(1)</script>") {
		t.Fatal("unescaped markup leaked into the dashboard")
	}
	if !strings.Contains(sb.String(), "&lt;script&gt;") {
		t.Fatal("escaped syscall name missing")
	}
}

func TestHTMLDashboardMissingIndex(t *testing.T) {
	var sb strings.Builder
	st := fixtureBackend(t)
	if err := HTMLDashboard(&sb, st, "missing", "s", 1000); err == nil {
		t.Fatal("dashboard on missing index succeeded")
	}
}
