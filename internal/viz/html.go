package viz

import (
	"fmt"
	"html"
	"io"
	"strings"

	"github.com/dsrhaslab/dio-go/internal/store"
)

// HTMLDashboard renders a session's predefined dashboard as one
// self-contained HTML page (inline CSS and SVG, no external assets): the
// Kibana-style artifact of the paper's visualizer, in static form. It
// contains the access-pattern table, the per-syscall histogram, and the
// per-thread syscall timeline.
func HTMLDashboard(w io.Writer, b store.Backend, index, session string, intervalNS int64) error {
	table, err := AccessPatternTable(b, index, session)
	if err != nil {
		return fmt.Errorf("dashboard table: %w", err)
	}
	hist, err := SyscallHistogram(b, index, session)
	if err != nil {
		return fmt.Errorf("dashboard histogram: %w", err)
	}
	timeline, err := SyscallTimeline(b, index, session, intervalNS)
	if err != nil {
		return fmt.Errorf("dashboard timeline: %w", err)
	}

	var sb strings.Builder
	sb.WriteString(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>DIO dashboard: `)
	sb.WriteString(html.EscapeString(session))
	sb.WriteString(`</title><style>
body { font-family: system-ui, sans-serif; margin: 2rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; font-size: 0.85rem; }
th, td { border: 1px solid #ccd; padding: 0.25rem 0.6rem; text-align: left; }
th { background: #eef; }
.bar { fill: #4477aa; } .axis { stroke: #999; stroke-width: 1; }
.series { fill: none; stroke-width: 2; }
.lbl { font-size: 11px; fill: #333; }
</style></head><body>
`)
	fmt.Fprintf(&sb, "<h1>DIO session %s</h1>\n", html.EscapeString(session))

	// Histogram as SVG bars.
	sb.WriteString("<h2>Syscall counts</h2>\n")
	writeHistogramSVG(&sb, hist)

	// Timeline as SVG polylines, one color per thread.
	sb.WriteString("<h2>Syscalls over time by thread</h2>\n")
	writeTimelineSVG(&sb, timeline)

	// Access-pattern table (bounded to keep pages reasonable).
	sb.WriteString("<h2>Access pattern</h2>\n")
	writeTableHTML(&sb, table, 500)

	sb.WriteString("</body></html>\n")
	_, err = io.WriteString(w, sb.String())
	return err
}

func writeTableHTML(sb *strings.Builder, t *Table, maxRows int) {
	sb.WriteString("<table><thead><tr>")
	for _, c := range t.Columns {
		fmt.Fprintf(sb, "<th>%s</th>", html.EscapeString(c))
	}
	sb.WriteString("</tr></thead><tbody>\n")
	rows := t.Rows
	truncated := false
	if maxRows > 0 && len(rows) > maxRows {
		rows = rows[:maxRows]
		truncated = true
	}
	for _, row := range rows {
		sb.WriteString("<tr>")
		for _, cell := range row {
			fmt.Fprintf(sb, "<td>%s</td>", html.EscapeString(cell))
		}
		sb.WriteString("</tr>\n")
	}
	sb.WriteString("</tbody></table>\n")
	if truncated {
		fmt.Fprintf(sb, "<p>(%d of %d rows shown)</p>\n", maxRows, len(t.Rows))
	}
}

func writeHistogramSVG(sb *strings.Builder, h *Histogram) {
	const (
		barH   = 18
		gap    = 4
		chartW = 640
		labelW = 140
	)
	var max float64
	for _, v := range h.Values {
		if v > max {
			max = v
		}
	}
	height := len(h.Labels)*(barH+gap) + gap
	fmt.Fprintf(sb, `<svg width="%d" height="%d" role="img">`, chartW+labelW+60, height)
	for i, label := range h.Labels {
		v := 0.0
		if i < len(h.Values) {
			v = h.Values[i]
		}
		w := 0.0
		if max > 0 {
			w = v / max * chartW
		}
		y := gap + i*(barH+gap)
		fmt.Fprintf(sb, `<text class="lbl" x="0" y="%d">%s</text>`, y+barH-5, html.EscapeString(label))
		fmt.Fprintf(sb, `<rect class="bar" x="%d" y="%d" width="%.1f" height="%d"/>`, labelW, y, w, barH)
		fmt.Fprintf(sb, `<text class="lbl" x="%.1f" y="%d">%s</text>`, labelW+w+4, y+barH-5, trimFloat(v))
	}
	sb.WriteString("</svg>\n")
}

// seriesColors is a color-blind-friendly palette cycled across series.
var seriesColors = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb",
	"#44aa99", "#882255",
}

func writeTimelineSVG(sb *strings.Builder, ts *TimeSeries) {
	const (
		chartW  = 720
		chartH  = 220
		padL    = 50
		padB    = 20
		legendW = 170
	)
	names := ts.SeriesNames()
	var max float64
	for _, vals := range ts.Series {
		for _, v := range vals {
			if v > max {
				max = v
			}
		}
	}
	n := len(ts.BucketStartNS)
	fmt.Fprintf(sb, `<svg width="%d" height="%d" role="img">`, padL+chartW+legendW, chartH+padB+10)
	// Axes.
	fmt.Fprintf(sb, `<line class="axis" x1="%d" y1="%d" x2="%d" y2="%d"/>`, padL, chartH, padL+chartW, chartH)
	fmt.Fprintf(sb, `<line class="axis" x1="%d" y1="0" x2="%d" y2="%d"/>`, padL, padL, chartH)
	fmt.Fprintf(sb, `<text class="lbl" x="0" y="12">%s</text>`, trimFloat(max))
	for si, name := range names {
		color := seriesColors[si%len(seriesColors)]
		vals := ts.Series[name]
		var pts []string
		for i := 0; i < n && i < len(vals); i++ {
			x := float64(padL)
			if n > 1 {
				x += float64(i) / float64(n-1) * chartW
			}
			y := float64(chartH)
			if max > 0 {
				y -= vals[i] / max * (chartH - 10)
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		fmt.Fprintf(sb, `<polyline class="series" stroke="%s" points="%s"/>`, color, strings.Join(pts, " "))
		// Legend.
		ly := 14 + si*16
		fmt.Fprintf(sb, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`, padL+chartW+10, ly-9, color)
		fmt.Fprintf(sb, `<text class="lbl" x="%d" y="%d">%s</text>`, padL+chartW+24, ly, html.EscapeString(name))
	}
	sb.WriteString("</svg>\n")
}
