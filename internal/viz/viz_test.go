package viz

import (
	"context"
	"strings"
	"testing"

	"github.com/dsrhaslab/dio-go/internal/metrics"
	"github.com/dsrhaslab/dio-go/internal/store"
)

func TestTableRenderAligned(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Columns: []string{"a", "long_column"},
		Rows:    [][]string{{"xxxxxx", "1"}, {"y", "2"}},
	}
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if lines[0] != "demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	// All table lines share the same width.
	w := len(lines[1])
	for _, l := range lines[2:] {
		if len(l) != w {
			t.Fatalf("misaligned line %q (want width %d)", l, w)
		}
	}
	if !strings.Contains(out, "long_column") || !strings.Contains(out, "xxxxxx") {
		t.Fatalf("content missing: %q", out)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	var b strings.Builder
	if err := tbl.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "a,b\n1,2\n" {
		t.Fatalf("csv = %q", b.String())
	}
}

func TestHistogramRender(t *testing.T) {
	h := &Histogram{
		Labels: []string{"read", "write"},
		Values: []float64{100, 50},
		Width:  10,
	}
	out := h.String()
	if !strings.Contains(out, "read") || !strings.Contains(out, "##########") {
		t.Fatalf("histogram = %q", out)
	}
	// write bar is half the width.
	if !strings.Contains(out, "#####") {
		t.Fatalf("histogram = %q", out)
	}
}

func TestHistogramZeroMax(t *testing.T) {
	h := &Histogram{Labels: []string{"x"}, Values: []float64{0}}
	if out := h.String(); !strings.Contains(out, "x") {
		t.Fatalf("histogram = %q", out)
	}
}

func TestTimeSeriesTableAndSpark(t *testing.T) {
	ts := &TimeSeries{
		Title:         "t",
		BucketStartNS: []int64{0, 100, 200},
		Series: map[string][]float64{
			"db_bench":     {10, 5, 0},
			"rocksdb:low0": {0, 8, 9},
		},
		ValueLabel: "syscalls",
	}
	tbl := ts.Table()
	if len(tbl.Columns) != 3 || tbl.Columns[1] != "db_bench" {
		t.Fatalf("columns = %v", tbl.Columns)
	}
	if tbl.Rows[1][2] != "8" {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	out := ts.String()
	if !strings.Contains(out, "db_bench") || !strings.Contains(out, "rocksdb:low0") {
		t.Fatalf("spark chart = %q", out)
	}
}

func TestGroupDigits(t *testing.T) {
	cases := map[int64]string{
		0:                "0",
		999:              "999",
		1000:             "1,000",
		1679308382363981: "1,679,308,382,363,981",
		-12345:           "-12,345",
	}
	for in, want := range cases {
		if got := groupDigits(in); got != want {
			t.Errorf("groupDigits(%d) = %q, want %q", in, got, want)
		}
	}
}

func fixtureBackend(t *testing.T) store.Backend {
	t.Helper()
	st := store.New()
	docs := []store.Document{
		{"session": "s", "syscall": "openat", "proc_name": "app", "thread_name": "app",
			"ret_val": int64(3), "time_enter_ns": int64(1000), "file_tag": "7340032 12 99",
			"kernel_path": "/tmp/app.log", "has_offset": false},
		{"session": "s", "syscall": "write", "proc_name": "app", "thread_name": "app",
			"ret_val": int64(26), "time_enter_ns": int64(2000), "file_tag": "7340032 12 99",
			"offset": int64(0), "has_offset": true},
		{"session": "s", "syscall": "read", "proc_name": "fluent-bit", "thread_name": "flb-pipeline",
			"ret_val": int64(0), "time_enter_ns": int64(3000), "file_tag": "7340032 12 99",
			"offset": int64(26), "has_offset": true},
	}
	if err := st.Bulk(context.Background(), "events", docs); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestAccessPatternTable(t *testing.T) {
	b := fixtureBackend(t)
	tbl, err := AccessPatternTable(b, "events", "s")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Ordered by time; offsets rendered only when present.
	if tbl.Rows[0][2] != "openat" || tbl.Rows[0][5] != "" {
		t.Fatalf("row0 = %v", tbl.Rows[0])
	}
	if tbl.Rows[2][2] != "read" || tbl.Rows[2][5] != "26" {
		t.Fatalf("row2 = %v", tbl.Rows[2])
	}
	if tbl.Rows[0][4] != "7340032 12 99" {
		t.Fatalf("file tag cell = %q", tbl.Rows[0][4])
	}
	if tbl.Rows[0][0] != "1,000" {
		t.Fatalf("time cell = %q", tbl.Rows[0][0])
	}
}

func TestSyscallTimeline(t *testing.T) {
	b := fixtureBackend(t)
	ts, err := SyscallTimeline(b, "events", "s", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.BucketStartNS) != 3 {
		t.Fatalf("buckets = %v", ts.BucketStartNS)
	}
	if got := ts.Series["app"]; len(got) != 3 || got[0] != 1 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("app series = %v", got)
	}
	if got := ts.Series["flb-pipeline"]; got[2] != 1 {
		t.Fatalf("flb series = %v", got)
	}
}

func TestSyscallHistogram(t *testing.T) {
	b := fixtureBackend(t)
	h, err := SyscallHistogram(b, "events", "s")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Labels) != 3 {
		t.Fatalf("labels = %v", h.Labels)
	}
}

func TestLatencySeries(t *testing.T) {
	pts := []metrics.WindowPoint{
		{StartNS: 0, P99: 1_500_000},
		{StartNS: 1000, P99: 3_500_000},
	}
	ts := LatencySeries(pts)
	if ts.Series["p99"][0] != 1500 || ts.Series["p99"][1] != 3500 {
		t.Fatalf("p99 series = %v", ts.Series["p99"])
	}
}

func TestDashboardsErrorOnMissingIndex(t *testing.T) {
	st := store.New()
	if _, err := AccessPatternTable(st, "missing", "s"); err == nil {
		t.Fatal("AccessPatternTable on missing index succeeded")
	}
	if _, err := SyscallTimeline(st, "missing", "s", 1000); err == nil {
		t.Fatal("SyscallTimeline on missing index succeeded")
	}
	if _, err := SyscallHistogram(st, "missing", "s"); err == nil {
		t.Fatal("SyscallHistogram on missing index succeeded")
	}
}
