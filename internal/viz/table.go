// Package viz is DIO's visualizer (§II-D): the Kibana stand-in. It queries
// the analysis backend and renders tabular views, histograms, and
// time-series charts as text and CSV, including the predefined dashboards
// that regenerate the paper's figures.
package viz

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered tabular visualization (the paper's Fig. 2 views).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the table as CSV (no quoting needed for trace fields).
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Histogram renders labeled counts as a horizontal ASCII bar chart.
type Histogram struct {
	Title  string
	Labels []string
	Values []float64
	// Width is the maximum bar width in characters (default 50).
	Width int
}

// Render writes the histogram.
func (h *Histogram) Render(w io.Writer) error {
	width := h.Width
	if width <= 0 {
		width = 50
	}
	var max float64
	for _, v := range h.Values {
		if v > max {
			max = v
		}
	}
	labW := 0
	for _, l := range h.Labels {
		if len(l) > labW {
			labW = len(l)
		}
	}
	if h.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", h.Title); err != nil {
			return err
		}
	}
	for i, l := range h.Labels {
		v := 0.0
		if i < len(h.Values) {
			v = h.Values[i]
		}
		bar := 0
		if max > 0 {
			bar = int(v / max * float64(width))
		}
		if _, err := fmt.Fprintf(w, "%s | %s %g\n", pad(l, labW), strings.Repeat("#", bar), v); err != nil {
			return err
		}
	}
	return nil
}

// String renders the histogram to a string.
func (h *Histogram) String() string {
	var b strings.Builder
	_ = h.Render(&b)
	return b.String()
}
