package viz

import (
	"fmt"
	"sort"
	"strconv"

	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// SelfDashboard renders "DIO observing DIO": the pipeline's own telemetry
// snapshot as a table — the conservation ledger first, then every counter,
// gauge, and histogram summary (count / mean / p50 / p99). The same
// instruments the analysis backend exposes on GET /metrics, rendered with
// the visualization layer DIO points at traced applications.
func SelfDashboard(s telemetry.Snapshot) *Table {
	t := &Table{
		Title:   "DIO self-telemetry",
		Columns: []string{"metric", "value", "mean", "p50", "p99"},
	}
	row := func(name, value, mean, p50, p99 string) {
		t.Rows = append(t.Rows, []string{name, value, mean, p50, p99})
	}

	l := telemetry.LedgerFromSnapshot(s)
	balance := "BALANCED"
	if !l.Balanced() {
		balance = fmt.Sprintf("outstanding %d", l.Outstanding())
	}
	row("ledger: captured", formatCount(l.Captured), "", "", "")
	row("ledger: shipped", formatCount(l.Shipped), "", "", "")
	row("ledger: ring dropped", formatCount(l.RingDropped), "", "", "")
	row("ledger: spill dropped", formatCount(l.SpillDropped), "", "", "")
	row("ledger: parse errors", formatCount(l.ParseErrors), "", "", "")
	row("ledger: pending", formatCount(l.Pending), "", "", "")
	row("ledger: balance", balance, "", "", "")

	for _, name := range sortedNames(s.Counters) {
		row(name, formatCount(s.Counters[name]), "", "", "")
	}
	for _, name := range sortedNames(s.Gauges) {
		row(name, trimFloat(s.Gauges[name]), "", "", "")
	}
	for _, name := range sortedNames(s.Histograms) {
		h := s.Histograms[name]
		row(name, formatCount(h.Count),
			formatNS(h.Mean()), formatNS(h.Quantile(0.5)), formatNS(h.Quantile(0.99)))
	}
	return t
}

// SelfFlushSeries renders the windowed flush-latency recording as the same
// Fig. 3-style p99 time series used for client operations, pointed at the
// tracer's own bulk-flush path. Returns nil when no flush window was
// recorded (telemetry disabled or no flush happened yet).
func SelfFlushSeries(s telemetry.Snapshot) *TimeSeries {
	points, ok := s.Windows[telemetry.MetricFlushWindow]
	if !ok || len(points) == 0 {
		return nil
	}
	ts := LatencySeries(points)
	ts.Title = "DIO self-telemetry: p99 flush latency per window"
	return ts
}

// formatNS renders a nanosecond quantity in the most readable unit.
func formatNS(ns float64) string {
	switch {
	case ns <= 0:
		return "0"
	case ns < 1e3:
		return trimFloat(ns) + "ns"
	case ns < 1e6:
		return trimFloat(ns/1e3) + "us"
	case ns < 1e9:
		return trimFloat(ns/1e6) + "ms"
	default:
		return trimFloat(ns/1e9) + "s"
	}
}

func formatCount(v uint64) string {
	return strconv.FormatUint(v, 10)
}

func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
