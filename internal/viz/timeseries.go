package viz

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// TimeSeries is a set of named series sampled on a shared time axis: the
// shape behind the paper's Fig. 3 (latency over time) and Fig. 4 (syscalls
// over time, one series per thread name).
type TimeSeries struct {
	Title string
	// BucketStartNS are the ordered bucket timestamps.
	BucketStartNS []int64
	// Series maps a series name (e.g. thread name) to one value per bucket.
	Series map[string][]float64
	// ValueLabel names the measured quantity (e.g. "syscalls", "p99 us").
	ValueLabel string
}

// SeriesNames returns the series names in sorted order.
func (ts *TimeSeries) SeriesNames() []string {
	names := make([]string, 0, len(ts.Series))
	for n := range ts.Series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table converts the time series into a tabular view: one row per bucket,
// one column per series.
func (ts *TimeSeries) Table() *Table {
	names := ts.SeriesNames()
	cols := append([]string{"t_ns"}, names...)
	rows := make([][]string, len(ts.BucketStartNS))
	for i, t := range ts.BucketStartNS {
		row := make([]string, 0, len(cols))
		row = append(row, strconv.FormatInt(t, 10))
		for _, n := range names {
			vals := ts.Series[n]
			v := 0.0
			if i < len(vals) {
				v = vals[i]
			}
			row = append(row, trimFloat(v))
		}
		rows[i] = row
	}
	return &Table{Title: ts.Title, Columns: cols, Rows: rows}
}

// RenderCSV writes the series as CSV.
func (ts *TimeSeries) RenderCSV(w io.Writer) error {
	return ts.Table().RenderCSV(w)
}

// Render writes a per-series sparkline chart, the closest text analogue of
// the paper's stacked count plots.
func (ts *TimeSeries) Render(w io.Writer) error {
	if ts.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", ts.Title); err != nil {
			return err
		}
	}
	names := ts.SeriesNames()
	labW := 0
	for _, n := range names {
		if len(n) > labW {
			labW = len(n)
		}
	}
	// Each series is normalized to its own maximum, so low-volume series
	// (e.g. compaction threads next to client threads) remain visible; the
	// per-row max is printed alongside.
	for _, n := range names {
		vals := ts.Series[n]
		var max float64
		for _, v := range vals {
			if v > max {
				max = v
			}
		}
		spark := sparkline(vals, max)
		if _, err := fmt.Fprintf(w, "%s | %s | max %s\n", pad(n, labW), spark, trimFloat(max)); err != nil {
			return err
		}
	}
	if ts.ValueLabel != "" {
		_, err := fmt.Fprintf(w, "(%d buckets, values: %s)\n",
			len(ts.BucketStartNS), ts.ValueLabel)
		return err
	}
	return nil
}

// String renders the chart to a string.
func (ts *TimeSeries) String() string {
	var b strings.Builder
	_ = ts.Render(&b)
	return b.String()
}

var sparkRunes = []rune(" .:-=+*#%@")

func sparkline(vals []float64, max float64) string {
	if max <= 0 {
		return strings.Repeat(" ", len(vals))
	}
	var b strings.Builder
	b.Grow(len(vals))
	for _, v := range vals {
		idx := int(v / max * float64(len(sparkRunes)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}
