package viz

import (
	"context"

	"fmt"
	"strconv"

	"github.com/dsrhaslab/dio-go/internal/metrics"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// AccessPatternTable builds the paper's Fig. 2 tabular visualization for a
// session: one row per syscall, ordered by time, showing the process name,
// syscall, return value, file tag, and offset.
func AccessPatternTable(b store.Backend, index, session string) (*Table, error) {
	t := &Table{
		Title:   "Session " + session + ": syscalls over time",
		Columns: []string{"time", "proc_name", "syscall", "ret_val", "file_tag (dev_no inode_no timestamp)", "offset"},
	}
	// Page with the streaming cursor instead of materializing the whole
	// session in one response: a long trace renders in bounded memory, and
	// each bounded page is a cacheable unit for re-renders.
	req := store.SearchRequest{
		Query: store.Term(store.FieldSession, session),
		Sort:  []store.SortField{{Field: store.FieldTimeEnter}},
	}
	err := store.EachEventPage(context.Background(), b, index, req, accessPatternPageSize, func(page store.EventsResult) error {
		for i := range page.Hits {
			e := &page.Hits[i]
			t.Rows = append(t.Rows, []string{
				groupDigits(e.TimeEnterNS),
				e.ProcName,
				e.Syscall,
				strconv.FormatInt(e.RetVal, 10),
				e.FileTag.String(),
				e.OffsetOrBlank(),
			})
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("access pattern query: %w", err)
	}
	return t, nil
}

// accessPatternPageSize bounds one cursor page of the Fig. 2 table (a
// variable so tests can exercise multi-page renders cheaply).
var accessPatternPageSize = 2000

// SyscallTimeline builds the paper's Fig. 4 view: syscall counts over time,
// one series per thread name, via a date-histogram aggregation with a terms
// sub-aggregation.
func SyscallTimeline(b store.Backend, index, session string, intervalNS int64) (*TimeSeries, error) {
	resp, err := b.Search(context.Background(), index, store.SearchRequest{
		Query: store.Term(store.FieldSession, session),
		Size:  1, // aggregation-driven; hits are irrelevant
		Aggs: map[string]store.Agg{
			"timeline": {
				DateHistogram: &store.DateHistogramAgg{Field: store.FieldTimeEnter, IntervalNS: intervalNS},
				Aggs: map[string]store.Agg{
					"by_thread": {Terms: &store.TermsAgg{Field: store.FieldThreadName}},
				},
			},
		},
	})
	if err != nil {
		return nil, fmt.Errorf("timeline query: %w", err)
	}
	buckets := resp.Aggs["timeline"].Buckets
	ts := &TimeSeries{
		Title:      "Session " + session + ": syscalls over time by thread",
		ValueLabel: "syscalls",
		Series:     make(map[string][]float64),
	}
	for _, bkt := range buckets {
		ts.BucketStartNS = append(ts.BucketStartNS, int64(bkt.KeyNum))
	}
	for i, bkt := range buckets {
		for _, sub := range bkt.Sub["by_thread"].Buckets {
			vals, ok := ts.Series[sub.Key]
			if !ok {
				vals = make([]float64, len(buckets))
				ts.Series[sub.Key] = vals
			}
			vals[i] = float64(sub.Count)
		}
	}
	return ts, nil
}

// SyscallHistogram renders the per-syscall counts of a session.
func SyscallHistogram(b store.Backend, index, session string) (*Histogram, error) {
	resp, err := b.Search(context.Background(), index, store.SearchRequest{
		Query: store.Term(store.FieldSession, session),
		Size:  1,
		Aggs: map[string]store.Agg{
			"by_syscall": {Terms: &store.TermsAgg{Field: store.FieldSyscall}},
		},
	})
	if err != nil {
		return nil, fmt.Errorf("syscall histogram query: %w", err)
	}
	h := &Histogram{Title: "Session " + session + ": syscall counts"}
	for _, bkt := range resp.Aggs["by_syscall"].Buckets {
		h.Labels = append(h.Labels, bkt.Key)
		h.Values = append(h.Values, float64(bkt.Count))
	}
	return h, nil
}

// LatencySeries converts a windowed latency recording into the Fig. 3 view
// (p99 latency per time window). Latencies are reported in microseconds.
func LatencySeries(points []metrics.WindowPoint) *TimeSeries {
	ts := &TimeSeries{
		Title:      "99th percentile latency for client operations",
		ValueLabel: "p99 us",
		Series:     map[string][]float64{"p99": make([]float64, len(points))},
	}
	for i, p := range points {
		ts.BucketStartNS = append(ts.BucketStartNS, p.StartNS)
		ts.Series["p99"][i] = p.P99 / 1000.0
	}
	return ts
}

// groupDigits formats a nanosecond timestamp with thousands separators, as
// Kibana renders the raw timestamps in the paper's Fig. 2.
func groupDigits(n int64) string {
	s := strconv.FormatInt(n, 10)
	neg := false
	if len(s) > 0 && s[0] == '-' {
		neg = true
		s = s[1:]
	}
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	if neg {
		return "-" + string(out)
	}
	return string(out)
}
