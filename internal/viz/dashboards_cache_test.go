package viz

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// TestDashboardRerenderHitsCache proves the dashboards ride the store's
// read-path accelerations end to end: rendering the same views twice must
// answer the second pass from the query cache (hit counters move, outputs
// match), and the aggregation views must be served from rollup partials
// rather than shard scans.
func TestDashboardRerenderHitsCache(t *testing.T) {
	st, err := store.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := context.Background()
	evs := make([]event.Event, 600)
	for i := range evs {
		enter := 1_000_000_000 + int64(i)*1_000_000
		evs[i] = event.Event{
			Session:     "s",
			Syscall:     []string{"read", "write", "openat"}[i%3],
			Class:       "io",
			RetVal:      int64(i % 100),
			PID:         7,
			TID:         8,
			ProcName:    "app",
			ThreadName:  fmt.Sprintf("w%d", i%2),
			TimeEnterNS: enter,
			TimeExitNS:  enter + 500,
		}
	}
	if err := st.BulkEvents(ctx, "events", evs); err != nil {
		t.Fatal(err)
	}

	// Multi-page render: the Fig. 2 table pages through the cursor, and each
	// bounded page is its own cacheable unit.
	oldPage := accessPatternPageSize
	accessPatternPageSize = 100
	defer func() { accessPatternPageSize = oldPage }()

	render := func() (*Table, *TimeSeries, *Histogram) {
		tbl, err := AccessPatternTable(st, "events", "s")
		if err != nil {
			t.Fatal(err)
		}
		ts, err := SyscallTimeline(st, "events", "s", 100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		h, err := SyscallHistogram(st, "events", "s")
		if err != nil {
			t.Fatal(err)
		}
		return tbl, ts, h
	}

	reg := st.Telemetry()
	tbl1, ts1, h1 := render()
	if len(tbl1.Rows) != len(evs) {
		t.Fatalf("table rows = %d, want %d (pager dropped or duplicated rows)", len(tbl1.Rows), len(evs))
	}
	snap := reg.Snapshot()
	hits0 := snap.Counters[telemetry.MetricQueryCacheHits]
	rollup0 := snap.Counters[telemetry.MetricRollupAggHits]

	tbl2, ts2, h2 := render()
	snap = reg.Snapshot()
	// Second render: every cursor page plus both aggregation views repeat
	// verbatim, so at minimum pages+2 requests must be cache hits.
	minHits := uint64(len(evs)/accessPatternPageSize + 2)
	if d := snap.Counters[telemetry.MetricQueryCacheHits] - hits0; d < minHits {
		t.Errorf("re-render produced %d cache hits, want >= %d", d, minHits)
	}
	if d := snap.Counters[telemetry.MetricRollupAggHits] - rollup0; d != 0 {
		t.Errorf("cached re-render recomputed %d rollup partials; hits should come from the query cache", d)
	}
	if rollup0 == 0 {
		t.Error("first render served no aggregation from rollup partials")
	}
	if !reflect.DeepEqual(tbl1, tbl2) || !reflect.DeepEqual(ts1, ts2) || !reflect.DeepEqual(h1, h2) {
		t.Error("re-rendered dashboards differ from the first render")
	}

	// New data invalidates: a third render recomputes and shows the new rows.
	if err := st.BulkEvents(ctx, "events", evs[:30]); err != nil {
		t.Fatal(err)
	}
	tbl3, _, _ := render()
	if len(tbl3.Rows) != len(evs)+30 {
		t.Errorf("post-ingest render rows = %d, want %d", len(tbl3.Rows), len(evs)+30)
	}
}
