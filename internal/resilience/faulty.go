package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// FaultyBackend wraps a store.Backend and injects faults on the ship path
// (Bulk): a configurable transient-error rate, an error class toggle
// (retryable vs permanent), added latency, and scripted full-outage windows
// expressed in bulk-call counts, which keeps chaos tests deterministic under
// any scheduling. The read path passes through untouched.
type FaultyBackend struct {
	inner store.Backend
	clk   clock.Clock

	mu         sync.Mutex
	rng        *rand.Rand
	errRate    float64
	permanent  bool
	latency    time.Duration
	outageFrom uint64
	outageTo   uint64
	calls      uint64
	injected   uint64
}

var _ store.Backend = (*FaultyBackend)(nil)

// NewFaultyBackend wraps inner with a deterministic (seeded) fault injector.
func NewFaultyBackend(inner store.Backend, seed int64) *FaultyBackend {
	return &FaultyBackend{
		inner: inner,
		clk:   clock.NewReal(0),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// SetClock replaces the latency time source (virtual clocks make latency
// injection free in tests).
func (f *FaultyBackend) SetClock(clk clock.Clock) { f.clk = clk }

// SetErrorRate makes each Bulk call outside an outage window fail with
// probability p.
func (f *FaultyBackend) SetErrorRate(p float64) {
	f.mu.Lock()
	f.errRate = p
	f.mu.Unlock()
}

// SetPermanent selects the class of injected errors: permanent (true) or
// retryable (false, the default).
func (f *FaultyBackend) SetPermanent(v bool) {
	f.mu.Lock()
	f.permanent = v
	f.mu.Unlock()
}

// SetLatency adds d of delay to every Bulk call.
func (f *FaultyBackend) SetLatency(d time.Duration) {
	f.mu.Lock()
	f.latency = d
	f.mu.Unlock()
}

// ScriptOutage makes every Bulk call in the half-open call-count window
// [from, to) fail with a retryable error — a scripted full outage that ends
// only after to-from failing calls have been absorbed.
func (f *FaultyBackend) ScriptOutage(from, to uint64) {
	f.mu.Lock()
	f.outageFrom, f.outageTo = from, to
	f.mu.Unlock()
}

// Calls returns how many Bulk calls were observed.
func (f *FaultyBackend) Calls() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// Injected returns how many Bulk calls failed by injection.
func (f *FaultyBackend) Injected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// inject rolls the configured fault dice for one ship call and returns the
// injected error, or nil to let the call through. Shared by Bulk and
// BulkEvents so both ship representations see identical fault sequences.
func (f *FaultyBackend) inject() error {
	f.mu.Lock()
	call := f.calls
	f.calls++
	inOutage := call >= f.outageFrom && call < f.outageTo
	roll := !inOutage && f.errRate > 0 && f.rng.Float64() < f.errRate
	perm := f.permanent
	lat := f.latency
	if inOutage || roll {
		f.injected++
	}
	f.mu.Unlock()

	if lat > 0 {
		f.clk.Sleep(lat)
	}
	switch {
	case inOutage:
		return Retryable(fmt.Errorf("%w: scripted outage (call %d)", ErrInjected, call))
	case roll && perm:
		return Permanent(fmt.Errorf("%w: permanent (call %d)", ErrInjected, call))
	case roll:
		return Retryable(fmt.Errorf("%w: transient (call %d)", ErrInjected, call))
	}
	return nil
}

// Bulk injects the configured faults, then delegates.
func (f *FaultyBackend) Bulk(ctx context.Context, index string, docs []store.Document) error {
	if err := f.inject(); err != nil {
		return err
	}
	return f.inner.Bulk(ctx, index, docs)
}

// BulkEvents injects the configured faults on the typed ship path, then
// delegates through the inner backend's typed path when it has one.
func (f *FaultyBackend) BulkEvents(ctx context.Context, index string, events []event.Event) error {
	if err := f.inject(); err != nil {
		return err
	}
	return store.ShipEvents(ctx, f.inner, index, events)
}

// Search delegates to the wrapped backend.
func (f *FaultyBackend) Search(ctx context.Context, index string, req store.SearchRequest) (store.SearchResponse, error) {
	return f.inner.Search(ctx, index, req)
}

// Count delegates to the wrapped backend.
func (f *FaultyBackend) Count(ctx context.Context, index string, q store.Query) (int, error) {
	return f.inner.Count(ctx, index, q)
}

// Correlate delegates to the wrapped backend.
func (f *FaultyBackend) Correlate(ctx context.Context, index, session string) (store.CorrelationResult, error) {
	return f.inner.Correlate(ctx, index, session)
}
