package resilience

import (
	"errors"
	"testing"
	"time"
)

type hintedErr struct{ d time.Duration }

func (e *hintedErr) Error() string                 { return "try later" }
func (e *hintedErr) Temporary() bool               { return true }
func (e *hintedErr) RetryAfterHint() time.Duration { return e.d }

func TestBackoffCapGrowth(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 7)
	// Delay for attempt k is jittered in [0, min(base<<(k-1), max)].
	caps := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, c := range caps {
		c *= time.Millisecond
		for trial := 0; trial < 200; trial++ {
			if d := b.Delay(i+1, nil); d < 0 || d > c {
				t.Fatalf("attempt %d: delay %v outside [0, %v]", i+1, d, c)
			}
		}
	}
	// Absurd attempt counts must not overflow the shift into a negative cap.
	if d := b.Delay(200, nil); d < 0 || d > 80*time.Millisecond {
		t.Fatalf("attempt 200: delay %v", d)
	}
}

func TestBackoffRetryAfterFloor(t *testing.T) {
	b := NewBackoff(time.Millisecond, 4*time.Millisecond, 3)
	hint := 250 * time.Millisecond
	err := error(&hintedErr{d: hint})
	for trial := 0; trial < 100; trial++ {
		if d := b.Delay(1, err); d < hint {
			t.Fatalf("delay %v below Retry-After floor %v", d, hint)
		}
	}
	// A hint below the jittered delay does not cap it — it is a floor only.
	small := error(&hintedErr{d: 0})
	sawAbove := false
	for trial := 0; trial < 200 && !sawAbove; trial++ {
		sawAbove = b.Delay(3, small) > 0
	}
	if !sawAbove {
		t.Fatal("zero hint flattened all jittered delays to zero")
	}
	// Hints survive wrapping.
	wrapped := errors.Join(errors.New("outer"), err)
	if d := b.Delay(1, wrapped); d < hint {
		t.Fatalf("wrapped hint ignored: %v", d)
	}
}

func TestBackoffZeroConfigDefaults(t *testing.T) {
	b := NewBackoff(0, 0, 0)
	if d := b.Delay(1, nil); d < 0 || d > 10*time.Millisecond {
		t.Fatalf("default first delay %v", d)
	}
	if d := b.Delay(50, nil); d < 0 || d > time.Second {
		t.Fatalf("default capped delay %v", d)
	}
}
