package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// recordingBackend is a scriptable backend: the first failFirst Bulk calls
// fail with retryable errors, later ones record the batch.
type recordingBackend struct {
	mu        sync.Mutex
	failFirst int
	permanent bool
	calls     int
	batches   [][]store.Document
}

func (r *recordingBackend) Bulk(_ context.Context, index string, docs []store.Document) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls++
	if r.calls <= r.failFirst {
		err := fmt.Errorf("backend down (call %d)", r.calls)
		if r.permanent {
			return Permanent(err)
		}
		return Retryable(err)
	}
	cp := make([]store.Document, len(docs))
	copy(cp, docs)
	r.batches = append(r.batches, cp)
	return nil
}

func (r *recordingBackend) Calls() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

func (r *recordingBackend) seqs() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []int
	for _, b := range r.batches {
		for _, d := range b {
			out = append(out, d["seq"].(int))
		}
	}
	return out
}

func (r *recordingBackend) Search(context.Context, string, store.SearchRequest) (store.SearchResponse, error) {
	return store.SearchResponse{}, nil
}
func (r *recordingBackend) Count(context.Context, string, store.Query) (int, error) { return 0, nil }
func (r *recordingBackend) Correlate(context.Context, string, string) (store.CorrelationResult, error) {
	return store.CorrelationResult{}, nil
}

func batch(start, n int) []store.Document {
	docs := make([]store.Document, n)
	for i := range docs {
		docs[i] = store.Document{"seq": start + i}
	}
	return docs
}

func testConfig(clk clock.Clock) Config {
	return Config{
		MaxAttempts:      3,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       8 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Second,
		SpillEvents:      1 << 20,
		Clock:            clk,
	}
}

func TestClassification(t *testing.T) {
	if IsRetryable(nil) {
		t.Fatal("nil is retryable")
	}
	base := errors.New("boom")
	if IsRetryable(Permanent(base)) {
		t.Fatal("Permanent classified retryable")
	}
	if !IsRetryable(Retryable(base)) {
		t.Fatal("Retryable classified permanent")
	}
	if !IsRetryable(base) {
		t.Fatal("unmarked error should default to retryable")
	}
	if !errors.Is(Permanent(base), base) {
		t.Fatal("Permanent breaks errors.Is")
	}
	// Wrapping preserves the class.
	wrapped := fmt.Errorf("ship: %w", Permanent(base))
	if IsRetryable(wrapped) {
		t.Fatal("wrapped Permanent classified retryable")
	}
}

func TestBreakerTransitions(t *testing.T) {
	clk := clock.NewVirtual(0)
	b := NewBreaker(2, time.Second, clk)
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("new breaker should be closed and allowing")
	}
	b.RecordFailure()
	if b.State() != BreakerClosed {
		t.Fatal("one failure should not trip a threshold-2 breaker")
	}
	b.RecordFailure()
	if b.State() != BreakerOpen || b.Opens() != 1 {
		t.Fatalf("state=%v opens=%d after threshold failures", b.State(), b.Opens())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call before cooldown")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: probe should be admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state=%v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller should not get a probe slot")
	}
	b.RecordFailure()
	if b.State() != BreakerOpen || b.Opens() != 2 {
		t.Fatalf("probe failure should reopen: state=%v opens=%d", b.State(), b.Opens())
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("second probe not admitted")
	}
	b.RecordSuccess()
	if b.State() != BreakerClosed || b.Closes() != 1 {
		t.Fatalf("probe success should close: state=%v closes=%d", b.State(), b.Closes())
	}
}

func TestShipperRetriesTransientFailures(t *testing.T) {
	clk := clock.NewVirtual(0)
	be := &recordingBackend{failFirst: 2}
	s := NewShipper(be, testConfig(clk))
	if err := s.Bulk(context.Background(), "ix", batch(0, 4)); err != nil {
		t.Fatalf("Bulk: %v", err)
	}
	st := s.Stats()
	if st.Shipped != 4 || st.Retries != 2 || st.Requeued != 0 || st.SpillDropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if clk.NowNS() == 0 {
		t.Fatal("retries should have slept on the clock")
	}
}

func TestShipperPermanentFailureDropsWithoutRetry(t *testing.T) {
	be := &recordingBackend{failFirst: 100, permanent: true}
	s := NewShipper(be, testConfig(clock.NewVirtual(0)))
	err := s.Bulk(context.Background(), "ix", batch(0, 4))
	if err == nil || errors.Is(err, ErrSpilled) {
		t.Fatalf("permanent failure should surface directly, got %v", err)
	}
	st := s.Stats()
	if be.Calls() != 1 {
		t.Fatalf("permanent error retried: %d calls", be.Calls())
	}
	if st.SpillDropped != 4 || st.Shipped != 0 || st.Requeued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShipperSpillsAndReplaysInOrder(t *testing.T) {
	clk := clock.NewVirtual(0)
	be := &recordingBackend{failFirst: 1 << 30} // down until told otherwise
	cfg := testConfig(clk)
	cfg.BreakerThreshold = 100 // isolate spill behavior from the breaker
	s := NewShipper(be, cfg)

	if err := s.Bulk(context.Background(), "ix", batch(0, 3)); !errors.Is(err, ErrSpilled) {
		t.Fatalf("outage Bulk = %v, want ErrSpilled", err)
	}
	if err := s.Bulk(context.Background(), "ix", batch(3, 3)); !errors.Is(err, ErrSpilled) {
		t.Fatalf("outage Bulk = %v, want ErrSpilled", err)
	}
	st := s.Stats()
	if st.Requeued != 6 || st.SpillPending != 6 || st.Shipped != 0 {
		t.Fatalf("stats during outage = %+v", st)
	}

	// Recovery: the next Bulk replays the parked batches before its own.
	be.mu.Lock()
	be.failFirst = 0
	be.mu.Unlock()
	if err := s.Bulk(context.Background(), "ix", batch(6, 3)); err != nil {
		t.Fatalf("post-recovery Bulk: %v", err)
	}
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	got := be.seqs()
	if len(got) != len(want) {
		t.Fatalf("backend got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay order: backend got %v, want %v", got, want)
		}
	}
	st = s.Stats()
	if st.Replayed != 6 || st.Shipped != 9 || st.SpillPending != 0 || st.SpillDropped != 0 {
		t.Fatalf("stats after recovery = %+v", st)
	}
}

func TestShipperSpillOverflowDropsOldestCounted(t *testing.T) {
	clk := clock.NewVirtual(0)
	be := &recordingBackend{failFirst: 1 << 30}
	cfg := testConfig(clk)
	cfg.BreakerThreshold = 1000
	cfg.SpillEvents = 10
	s := NewShipper(be, cfg)

	for i := 0; i < 4; i++ {
		s.Bulk(context.Background(), "ix", batch(i*4, 4)) // each exhausts retries and spills
	}
	st := s.Stats()
	if st.Requeued != 16 || st.SpillDropped != 8 || st.SpillPending != 8 {
		t.Fatalf("stats after overflow = %+v", st)
	}

	be.mu.Lock()
	be.failFirst = 0
	be.mu.Unlock()
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	st = s.Stats()
	// Newest batches (seq 8..15) survived; everything is accounted for.
	if st.Shipped != 8 || st.Replayed != 8 || st.SpillDropped != 8 || st.SpillPending != 0 {
		t.Fatalf("stats after flush = %+v", st)
	}
	got := be.seqs()
	if len(got) != 8 || got[0] != 8 || got[7] != 15 {
		t.Fatalf("flushed seqs = %v, want 8..15", got)
	}
	if st.Shipped+st.SpillDropped != 16 {
		t.Fatalf("accounting leak: shipped=%d dropped=%d of 16", st.Shipped, st.SpillDropped)
	}
}

func TestShipperBreakerStopsHammeringAndFlushRecovers(t *testing.T) {
	clk := clock.NewVirtual(0)
	be := &recordingBackend{failFirst: 5}
	cfg := testConfig(clk)
	cfg.MaxAttempts = 3
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = time.Hour // stays open for the rest of the run
	s := NewShipper(be, cfg)

	// b1 exhausts its attempts (calls 1-3) and trips the breaker.
	if err := s.Bulk(context.Background(), "ix", batch(0, 2)); !errors.Is(err, ErrSpilled) {
		t.Fatalf("b1 = %v, want ErrSpilled", err)
	}
	if s.Breaker().State() != BreakerOpen {
		t.Fatalf("breaker = %v, want open", s.Breaker().State())
	}
	calls := be.Calls()
	// b2 and b3 must spill without touching the dead backend.
	if err := s.Bulk(context.Background(), "ix", batch(2, 2)); !errors.Is(err, ErrSpilled) {
		t.Fatalf("b2 = %v, want ErrSpilled", err)
	}
	if err := s.Bulk(context.Background(), "ix", batch(4, 2)); !errors.Is(err, ErrSpilled) {
		t.Fatalf("b3 = %v, want ErrSpilled", err)
	}
	if got := be.Calls(); got != calls {
		t.Fatalf("open breaker still hammered the backend: %d -> %d calls", calls, got)
	}

	// Final flush bypasses the breaker, rides out the tail of the outage
	// (calls 4-5 fail, call 6 succeeds), and closes the breaker.
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	st := s.Stats()
	if st.Replayed != 6 || st.SpillDropped != 0 || st.SpillPending != 0 {
		t.Fatalf("stats after flush = %+v", st)
	}
	if st.BreakerOpens != 1 || st.BreakerCloses != 1 || st.BreakerState != "closed" {
		t.Fatalf("breaker lifecycle = %+v", st)
	}
	got := be.seqs()
	for i := 0; i < 6; i++ {
		if got[i] != i {
			t.Fatalf("flush order = %v", got)
		}
	}
}

func TestShipperFlushCountsUndeliverableBatches(t *testing.T) {
	be := &recordingBackend{failFirst: 1 << 30}
	cfg := testConfig(clock.NewVirtual(0))
	cfg.BreakerThreshold = 1000
	s := NewShipper(be, cfg)
	s.Bulk(context.Background(), "ix", batch(0, 5))
	if err := s.Flush(); err == nil {
		t.Fatal("Flush against a dead backend should report an error")
	}
	st := s.Stats()
	if st.SpillDropped != 5 || st.SpillPending != 0 || st.Shipped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// hintedError carries a Retry-After hint like store.HTTPError.
type hintedError struct{ hint time.Duration }

func (e *hintedError) Error() string                 { return "throttled" }
func (e *hintedError) Temporary() bool               { return true }
func (e *hintedError) RetryAfterHint() time.Duration { return e.hint }

func TestBackoffHonorsRetryAfterHint(t *testing.T) {
	clk := clock.NewVirtual(0)
	cfg := testConfig(clk)
	s := NewShipper(&recordingBackend{}, cfg)
	d := s.backoff.Delay(1, &hintedError{hint: 3 * time.Second})
	if d < 3*time.Second {
		t.Fatalf("delay %v ignores Retry-After hint", d)
	}
	// Without a hint the delay stays inside the jittered exponential cap.
	for attempt := 1; attempt < 10; attempt++ {
		if d := s.backoff.Delay(attempt, errors.New("x")); d < 0 || d > cfg.MaxBackoff {
			t.Fatalf("attempt %d delay %v outside [0, %v]", attempt, d, cfg.MaxBackoff)
		}
	}
}

func TestFaultyBackendScriptedOutageAndRates(t *testing.T) {
	inner := store.New()
	f := NewFaultyBackend(inner, 42)
	f.ScriptOutage(1, 3)
	docs := batch(0, 1)
	if err := f.Bulk(context.Background(), "ix", docs); err != nil {
		t.Fatalf("call 0 before outage: %v", err)
	}
	for i := 0; i < 2; i++ {
		err := f.Bulk(context.Background(), "ix", docs)
		if !errors.Is(err, ErrInjected) || !IsRetryable(err) {
			t.Fatalf("outage call %d = %v, want retryable injected", i, err)
		}
	}
	if err := f.Bulk(context.Background(), "ix", docs); err != nil {
		t.Fatalf("call after outage: %v", err)
	}
	if f.Calls() != 4 || f.Injected() != 2 {
		t.Fatalf("calls=%d injected=%d", f.Calls(), f.Injected())
	}

	// Error-rate injection is deterministic under a fixed seed and the
	// requested class.
	f2 := NewFaultyBackend(inner, 7)
	f2.SetErrorRate(0.5)
	f2.SetPermanent(true)
	var injected int
	for i := 0; i < 200; i++ {
		if err := f2.Bulk(context.Background(), "ix", docs); err != nil {
			if IsRetryable(err) {
				t.Fatalf("injected error should be permanent: %v", err)
			}
			injected++
		}
	}
	if injected < 60 || injected > 140 {
		t.Fatalf("injected %d/200 at rate 0.5", injected)
	}
}

func TestShipperConcurrentBulkRace(t *testing.T) {
	clk := clock.NewVirtual(0)
	be := NewFaultyBackend(store.New(), 3)
	be.SetErrorRate(0.3)
	cfg := testConfig(clk)
	s := NewShipper(be, cfg)
	var wg sync.WaitGroup
	const workers, perWorker, n = 4, 25, 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Bulk(context.Background(), "ix", batch((w*perWorker+i)*n, n))
			}
		}(w)
	}
	wg.Wait()
	// Flush may legitimately fail batches (and count them) when the random
	// faults line up; the invariant below is what must hold regardless.
	_ = s.Flush()
	st := s.Stats()
	total := uint64(workers * perWorker * n)
	if st.Shipped+st.SpillDropped != total {
		t.Fatalf("accounting leak: shipped=%d dropped=%d of %d (stats %+v)",
			st.Shipped, st.SpillDropped, total, st)
	}
}
