package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// Config tunes the fault-tolerant ship path.
type Config struct {
	// MaxAttempts is the per-batch ship attempt budget, first try included
	// (default 4).
	MaxAttempts int
	// BaseBackoff caps the first retry delay; subsequent delays double up to
	// MaxBackoff, with full jitter (default 10ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 1s).
	MaxBackoff time.Duration
	// AttemptTimeout is the per-attempt deadline, layered onto the caller's
	// context for each delivery attempt (default 5s).
	AttemptTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit breaker (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before admitting a
	// recovery probe (default 500ms).
	BreakerCooldown time.Duration
	// SpillEvents bounds the spill queue in events; overflowing events are
	// dropped oldest-first and counted (default 65536).
	SpillEvents int
	// Clock drives backoff sleeps and breaker cooldowns; a virtual clock
	// makes retry tests deterministic and instant (default wall clock).
	Clock clock.Clock
	// Seed seeds the jitter source (0 selects a fixed default; jitter only
	// needs to decorrelate concurrent workers, not be unpredictable).
	Seed int64
	// Telemetry, when non-nil, receives the ship-path self-accounting
	// (attempts, retries, backoff delays, spill depth, breaker state). The
	// tracer wires its own registry through here automatically.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 5 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 500 * time.Millisecond
	}
	if c.SpillEvents <= 0 {
		c.SpillEvents = 65536
	}
	if c.Clock == nil {
		c.Clock = clock.NewReal(0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Stats is a snapshot of the shipper's event accounting. Every event handed
// to Bulk ends up in exactly one of: Shipped (acked, possibly via replay) or
// SpillDropped (dropped with accounting).
type Stats struct {
	// Shipped is the number of events acknowledged by the backend, replays
	// included.
	Shipped uint64 `json:"shipped"`
	// Retries counts ship attempts beyond each batch's first.
	Retries uint64 `json:"retries"`
	// Requeued is the number of events parked in the spill queue.
	Requeued uint64 `json:"requeued"`
	// Replayed is the number of spilled events later acknowledged.
	Replayed uint64 `json:"replayed"`
	// SpillDropped is the number of events dropped with accounting: spill
	// overflow, permanently-failed batches, and batches the final flush
	// could not deliver.
	SpillDropped uint64 `json:"spill_dropped"`
	// SpillPending is the number of events currently parked.
	SpillPending uint64 `json:"spill_pending"`
	// BreakerOpens / BreakerCloses count breaker trips and recoveries.
	BreakerOpens  uint64 `json:"breaker_opens"`
	BreakerCloses uint64 `json:"breaker_closes"`
	// BreakerState is the breaker's position at snapshot time.
	BreakerState string `json:"breaker_state"`
}

var (
	// ErrSpilled reports that Bulk parked the batch in the spill queue for
	// later replay instead of delivering it; the shipper owns its accounting
	// from here on.
	ErrSpilled = errors.New("resilience: batch spilled for later replay")
	// ErrBreakerOpen reports a call rejected by the open circuit breaker.
	ErrBreakerOpen = errors.New("resilience: circuit breaker open")
)

// Shipper wraps a store.Backend with the retry → breaker → spill → counted
// drop ladder. It implements store.Backend, so the tracer's drain workers
// use it transparently; the read path (Search/Count/Correlate) passes
// through untouched — queries are interactive and their callers handle
// errors directly.
type Shipper struct {
	backend store.Backend
	cfg     Config
	breaker *Breaker
	spill   *spillQueue

	// replayMu serializes spill replay so recovered batches leave in FIFO
	// order; Bulk callers use TryLock and skip replay when another worker
	// already holds it.
	replayMu sync.Mutex

	backoff *Backoff

	shipped      atomic.Uint64
	retries      atomic.Uint64
	requeued     atomic.Uint64
	replayed     atomic.Uint64
	spillDropped atomic.Uint64

	// Telemetry counters/histograms (nil-safe no-ops when unset).
	tmAttempts     *telemetry.Counter
	tmRetries      *telemetry.Counter
	tmBackoffNS    *telemetry.Histogram
	tmRequeued     *telemetry.Counter
	tmReplayed     *telemetry.Counter
	tmSpillDropped *telemetry.Counter
}

var (
	_ store.Backend      = (*Shipper)(nil)
	_ store.EventBackend = (*Shipper)(nil)
)

// NewShipper wraps backend with cfg's resilience ladder.
func NewShipper(backend store.Backend, cfg Config) *Shipper {
	cfg = cfg.withDefaults()
	s := &Shipper{
		backend: backend,
		cfg:     cfg,
		breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock),
		spill:   newSpillQueue(cfg.SpillEvents),
		backoff: NewBackoff(cfg.BaseBackoff, cfg.MaxBackoff, cfg.Seed),
	}
	if tm := cfg.Telemetry; tm != nil {
		s.tmAttempts = tm.Counter(telemetry.MetricShipAttempts, "delivery attempts, first tries included")
		s.tmRetries = tm.Counter(telemetry.MetricRetries, "ship attempts beyond each batch's first")
		s.tmBackoffNS = tm.Histogram(telemetry.MetricBackoffNS, "backoff delays slept before retries", nil)
		s.tmRequeued = tm.Counter(telemetry.MetricRequeued, "events parked in the spill queue")
		s.tmReplayed = tm.Counter(telemetry.MetricReplayed, "spilled events later delivered")
		s.tmSpillDropped = tm.Counter(telemetry.MetricSpillDropped, "events dropped with accounting")
		spill, breaker := s.spill, s.breaker
		tm.GaugeFunc(telemetry.MetricSpillPending, "events currently parked in the spill queue",
			func() float64 { return float64(spill.size()) })
		tm.GaugeFunc(telemetry.MetricBreakerState, "circuit breaker position (0 closed, 1 open, 2 half-open)",
			func() float64 { return float64(breaker.State()) })
		breaker.setTelemetry(
			tm.Counter(telemetry.MetricBreakerOpens, "circuit breaker trips"),
			tm.Counter(telemetry.MetricBreakerCloses, "circuit breaker recoveries"))
	}
	return s
}

// Bulk ships docs with retries; on exhaustion the batch spills (ErrSpilled)
// and on permanent failure it is dropped and counted. Every event is
// accounted for exactly once. ctx bounds the whole delivery (per-attempt
// deadlines layer AttemptTimeout on top of it).
func (s *Shipper) Bulk(ctx context.Context, index string, docs []store.Document) error {
	if len(docs) == 0 {
		return nil
	}
	return s.deliver(ctx, spillBatch{index: index, docs: docs})
}

// BulkEvents ships typed events down the same ladder: retries, breaker,
// spill, and counted drop all operate on the typed batch, which is only
// degraded to documents if the backend itself has no typed path.
func (s *Shipper) BulkEvents(ctx context.Context, index string, events []event.Event) error {
	if len(events) == 0 {
		return nil
	}
	return s.deliver(ctx, spillBatch{index: index, events: events})
}

// deliver runs one batch (either representation) through the ladder.
func (s *Shipper) deliver(ctx context.Context, b spillBatch) error {
	// Replay parked batches first so a recovered backend receives events in
	// the order they were drained.
	if s.spill.size() > 0 {
		s.tryReplay(ctx)
	}
	n := uint64(b.n())
	err := s.ship(ctx, &b, false)
	if err == nil {
		s.shipped.Add(n)
		return nil
	}
	if IsRetryable(err) {
		queued, evicted := s.spill.push(b)
		s.countSpillDropped(uint64(evicted))
		if !queued {
			s.countSpillDropped(n)
			return fmt.Errorf("resilience: batch of %d events exceeds spill capacity, dropped: %w", n, err)
		}
		s.requeued.Add(n)
		s.tmRequeued.Add(n)
		return fmt.Errorf("%w: %v", ErrSpilled, err)
	}
	// Permanent failure: the final rung of the ladder is a counted drop.
	s.countSpillDropped(n)
	return err
}

// countSpillDropped records an accounted drop in both the Stats counter and
// the telemetry registry.
func (s *Shipper) countSpillDropped(n uint64) {
	if n == 0 {
		return
	}
	s.spillDropped.Add(n)
	s.tmSpillDropped.Add(n)
}

// countReplayed records a successful replay in both accounting surfaces.
func (s *Shipper) countReplayed(n uint64) {
	s.replayed.Add(n)
	s.shipped.Add(n)
	s.tmReplayed.Add(n)
}

// ship runs the retry loop for one batch. bypassBreaker is the final flush's
// last-chance mode: attempts proceed even while the breaker is open, and
// their outcome still feeds the breaker so recovery is observed.
func (s *Shipper) ship(ctx context.Context, b *spillBatch, bypassBreaker bool) error {
	var lastErr error
	for attempt := 0; attempt < s.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			s.retries.Add(1)
			s.tmRetries.Inc()
			d := s.backoff.Delay(attempt, lastErr)
			s.tmBackoffNS.Observe(float64(d))
			s.cfg.Clock.Sleep(d)
		}
		if !bypassBreaker && !s.breaker.Allow() {
			if lastErr != nil {
				return fmt.Errorf("%w (last attempt: %v)", ErrBreakerOpen, lastErr)
			}
			return ErrBreakerOpen
		}
		err := s.attempt(ctx, b)
		if err == nil {
			s.breaker.RecordSuccess()
			return nil
		}
		s.breaker.RecordFailure()
		lastErr = err
		if !IsRetryable(err) {
			return err
		}
	}
	return lastErr
}

// attempt makes one delivery attempt under a per-attempt deadline layered
// onto the caller's context. Typed batches prefer the typed bulk interfaces
// and degrade to EventToDoc + Bulk only for doc-only backends.
func (s *Shipper) attempt(ctx context.Context, b *spillBatch) error {
	s.tmAttempts.Inc()
	ctx, cancel := context.WithTimeout(ctx, s.cfg.AttemptTimeout)
	defer cancel()
	if b.events != nil {
		return store.ShipEvents(ctx, s.backend, b.index, b.events)
	}
	return s.backend.Bulk(ctx, b.index, b.docs)
}

// tryReplay drains the spill queue opportunistically: it backs off
// immediately if another goroutine is already replaying or the backend is
// still failing.
func (s *Shipper) tryReplay(ctx context.Context) {
	if !s.replayMu.TryLock() {
		return
	}
	defer s.replayMu.Unlock()
	for {
		b, ok := s.spill.pop()
		if !ok {
			return
		}
		err := s.ship(ctx, &b, false)
		if err == nil {
			s.countReplayed(uint64(b.n()))
			continue
		}
		if IsRetryable(err) {
			// Still down: park the batch back at the front and stop probing.
			s.spill.unshift(b)
			return
		}
		// The backend permanently rejected this batch: count the drop and
		// keep replaying the rest.
		s.countSpillDropped(uint64(b.n()))
	}
}

// Flush replays every parked batch, bypassing the breaker — this is the
// final drain's last chance before Stop returns. Batches that still fail are
// dropped and counted, so the accounting invariant holds even through a
// shutdown during an outage. The returned error joins the first few delivery
// failures.
func (s *Shipper) Flush() error {
	s.replayMu.Lock()
	defer s.replayMu.Unlock()
	var errs []error
	for {
		b, ok := s.spill.pop()
		if !ok {
			break
		}
		err := s.ship(context.Background(), &b, true)
		if err == nil {
			s.countReplayed(uint64(b.n()))
			continue
		}
		s.countSpillDropped(uint64(b.n()))
		if len(errs) < 4 {
			errs = append(errs, fmt.Errorf("flush %d spilled events: %w", b.n(), err))
		}
	}
	return errors.Join(errs...)
}

// Stats snapshots the shipper's accounting.
func (s *Shipper) Stats() Stats {
	return Stats{
		Shipped:       s.shipped.Load(),
		Retries:       s.retries.Load(),
		Requeued:      s.requeued.Load(),
		Replayed:      s.replayed.Load(),
		SpillDropped:  s.spillDropped.Load(),
		SpillPending:  uint64(s.spill.size()),
		BreakerOpens:  s.breaker.Opens(),
		BreakerCloses: s.breaker.Closes(),
		BreakerState:  s.breaker.State().String(),
	}
}

// Breaker exposes the underlying breaker (tests and health reporting).
func (s *Shipper) Breaker() *Breaker { return s.breaker }

// Search delegates to the wrapped backend.
func (s *Shipper) Search(ctx context.Context, index string, req store.SearchRequest) (store.SearchResponse, error) {
	return s.backend.Search(ctx, index, req)
}

// SearchEvents delegates typed search to the wrapped backend (converting
// through the schema when the backend is doc-only).
func (s *Shipper) SearchEvents(ctx context.Context, index string, req store.SearchRequest) (store.EventsResult, error) {
	return store.SearchEvents(ctx, s.backend, index, req)
}

// Count delegates to the wrapped backend.
func (s *Shipper) Count(ctx context.Context, index string, q store.Query) (int, error) {
	return s.backend.Count(ctx, index, q)
}

// Correlate delegates to the wrapped backend.
func (s *Shipper) Correlate(ctx context.Context, index, session string) (store.CorrelationResult, error) {
	return s.backend.Correlate(ctx, index, session)
}
