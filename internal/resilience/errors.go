// Package resilience hardens the tracer→backend ship path (DESIGN.md §8).
//
// The paper's pipeline promises that only syscall interception is synchronous
// and that event loss happens exclusively at the ring buffers, where it is
// counted (§II-B, §III-D). That promise breaks the moment a bulk request
// fails: without this package a transient backend error silently discards a
// whole batch of already-drained events. The resilience layer restores exact
// accounting with a degradation ladder:
//
//	retry (backoff + jitter) → circuit breaker → spill queue → counted drop
//
// Every event handed to the Shipper is eventually either acknowledged by the
// backend (Shipped/Replayed) or counted in exactly one drop counter
// (SpillDropped), so "where did my events go" stays answerable end to end.
package resilience

import (
	"errors"
	"time"
)

// ErrInjected is the base error returned by the fault-injection wrappers.
var ErrInjected = errors.New("resilience: injected fault")

// temporary is the structural interface transport layers use to label their
// errors as transient; store.HTTPError implements it for 429/5xx responses.
type temporary interface {
	Temporary() bool
}

// retryHinted is implemented by errors that carry a server-provided backoff
// hint (an HTTP Retry-After header surfaced by store.Client).
type retryHinted interface {
	RetryAfterHint() time.Duration
}

// classifiedError wraps an error with an explicit retryability class.
type classifiedError struct {
	err       error
	retryable bool
}

func (e *classifiedError) Error() string   { return e.err.Error() }
func (e *classifiedError) Unwrap() error   { return e.err }
func (e *classifiedError) Temporary() bool { return e.retryable }

// Permanent marks err as non-retryable: the shipper fails the batch
// immediately (counting its events as dropped) instead of retrying.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &classifiedError{err: err, retryable: false}
}

// Retryable marks err as transient: the shipper retries with backoff and
// spills the batch if the attempts are exhausted.
func Retryable(err error) error {
	if err == nil {
		return nil
	}
	return &classifiedError{err: err, retryable: true}
}

// IsRetryable classifies err. Errors exposing Temporary() bool (explicit
// marks, store.HTTPError) decide for themselves; everything else — transport
// failures, deadline expiries, unknown errors — defaults to retryable, the
// safe choice for a delivery pipeline (a wrongly-retried permanent error
// costs a few attempts; a wrongly-dropped transient error costs data).
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	var t temporary
	if errors.As(err, &t) {
		return t.Temporary()
	}
	return true
}

// retryAfter extracts a server-provided backoff hint, if any.
func retryAfter(err error) time.Duration {
	var h retryHinted
	if errors.As(err, &h) {
		return h.RetryAfterHint()
	}
	return 0
}
