package resilience

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes retry delays: full jitter over an exponentially growing
// cap, floored by any server-provided Retry-After hint carried on the last
// error. It is the delay policy shared by the ship ladder and the replication
// shipper, safe for concurrent use.
type Backoff struct {
	base time.Duration
	max  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff builds a policy whose first-retry delay is capped at base and
// whose exponential growth is capped at max. seed seeds the jitter source
// (0 selects a fixed default; jitter only needs to decorrelate concurrent
// workers, not be unpredictable).
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	if seed == 0 {
		seed = 1
	}
	return &Backoff{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

// Delay computes the delay before the attempt'th retry (attempt >= 1 — the
// first try itself never waits). lastErr, when it carries a Retry-After hint
// (store.HTTPError does), floors the jittered delay so the server's explicit
// pacing is always honored.
func (b *Backoff) Delay(attempt int, lastErr error) time.Duration {
	cap := b.base << uint(attempt-1)
	if cap > b.max || cap <= 0 {
		cap = b.max
	}
	b.mu.Lock()
	d := time.Duration(b.rng.Int63n(int64(cap) + 1))
	b.mu.Unlock()
	if hint := retryAfter(lastErr); hint > d {
		d = hint
	}
	return d
}
