package resilience

import (
	"sync"

	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// spillBatch is one parked bulk request, in either representation: typed
// events (the tracer's fast path) or generic documents. Exactly one of the
// two slices is non-nil.
type spillBatch struct {
	index  string
	docs   []store.Document
	events []event.Event
}

// n returns the batch's event count, whichever representation it holds.
func (b *spillBatch) n() int {
	if b.events != nil {
		return len(b.events)
	}
	return len(b.docs)
}

// spillQueue is a bounded FIFO of batches that could not be shipped, bounded
// by total event count. When a push would exceed the bound, the oldest
// batches are evicted and their events counted as dropped — newest data wins,
// mirroring the ring buffers' bounded-loss strategy one level up the stack.
type spillQueue struct {
	capEvents int

	mu      sync.Mutex
	batches []spillBatch
	head    int
	events  int
}

func newSpillQueue(capEvents int) *spillQueue {
	return &spillQueue{capEvents: capEvents}
}

// push parks a copy of b's payload (callers recycle their batch buffers). It
// returns whether the batch was queued and how many older events were
// evicted to make room; a batch larger than the whole queue capacity is
// rejected outright (queued=false, evicted=0) and the caller accounts it.
func (q *spillQueue) push(b spillBatch) (queued bool, evicted int) {
	n := b.n()
	if n > q.capEvents {
		return false, 0
	}
	if b.events != nil {
		cp := make([]event.Event, len(b.events))
		copy(cp, b.events)
		b.events, b.docs = cp, nil
	} else {
		cp := make([]store.Document, len(b.docs))
		copy(cp, b.docs)
		b.docs = cp
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.events+n > q.capEvents {
		old := q.popLocked()
		evicted += old.n()
	}
	q.batches = append(q.batches, b)
	q.events += n
	return true, evicted
}

// pop removes and returns the oldest batch; ok is false when empty.
func (q *spillQueue) pop() (spillBatch, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.batches) {
		return spillBatch{}, false
	}
	return q.popLocked(), true
}

func (q *spillQueue) popLocked() spillBatch {
	b := q.batches[q.head]
	q.batches[q.head] = spillBatch{}
	q.head++
	q.events -= b.n()
	if q.head == len(q.batches) {
		q.batches = q.batches[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 > len(q.batches) {
		q.batches = append(q.batches[:0], q.batches[q.head:]...)
		q.head = 0
	}
	return b
}

// unshift puts a popped batch back at the front, preserving replay order
// after a failed replay attempt. Capacity is not re-checked: the batch was
// already accounted for when first pushed.
func (q *spillQueue) unshift(b spillBatch) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head > 0 {
		q.head--
		q.batches[q.head] = b
	} else {
		q.batches = append([]spillBatch{b}, q.batches...)
	}
	q.events += b.n()
}

// size returns the queued event count.
func (q *spillQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.events
}
