package resilience

import (
	"sync"

	"github.com/dsrhaslab/dio-go/internal/store"
)

// spillBatch is one parked bulk request.
type spillBatch struct {
	index string
	docs  []store.Document
}

// spillQueue is a bounded FIFO of batches that could not be shipped, bounded
// by total event count. When a push would exceed the bound, the oldest
// batches are evicted and their events counted as dropped — newest data wins,
// mirroring the ring buffers' bounded-loss strategy one level up the stack.
type spillQueue struct {
	capEvents int

	mu      sync.Mutex
	batches []spillBatch
	head    int
	events  int
}

func newSpillQueue(capEvents int) *spillQueue {
	return &spillQueue{capEvents: capEvents}
}

// push parks a copy of docs (callers recycle their batch buffers). It
// returns whether the batch was queued and how many older events were
// evicted to make room; a batch larger than the whole queue capacity is
// rejected outright (queued=false, evicted=0) and the caller accounts it.
func (q *spillQueue) push(index string, docs []store.Document) (queued bool, evicted int) {
	if len(docs) > q.capEvents {
		return false, 0
	}
	cp := make([]store.Document, len(docs))
	copy(cp, docs)
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.events+len(cp) > q.capEvents {
		old := q.popLocked()
		evicted += len(old.docs)
	}
	q.batches = append(q.batches, spillBatch{index: index, docs: cp})
	q.events += len(cp)
	return true, evicted
}

// pop removes and returns the oldest batch; ok is false when empty.
func (q *spillQueue) pop() (spillBatch, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.batches) {
		return spillBatch{}, false
	}
	return q.popLocked(), true
}

func (q *spillQueue) popLocked() spillBatch {
	b := q.batches[q.head]
	q.batches[q.head] = spillBatch{}
	q.head++
	q.events -= len(b.docs)
	if q.head == len(q.batches) {
		q.batches = q.batches[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 > len(q.batches) {
		q.batches = append(q.batches[:0], q.batches[q.head:]...)
		q.head = 0
	}
	return b
}

// unshift puts a popped batch back at the front, preserving replay order
// after a failed replay attempt. Capacity is not re-checked: the batch was
// already accounted for when first pushed.
func (q *spillQueue) unshift(b spillBatch) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head > 0 {
		q.head--
		q.batches[q.head] = b
	} else {
		q.batches = append([]spillBatch{b}, q.batches...)
	}
	q.events += len(b.docs)
}

// size returns the queued event count.
func (q *spillQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.events
}
