package resilience

import (
	"sync"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed lets requests through; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects requests until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single probe request to test recovery.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a classic closed/open/half-open circuit breaker: after
// `threshold` consecutive failures it opens and rejects calls outright, so a
// dead backend is not hammered with doomed retries; after `cooldown` it
// admits one probe, and a probe success closes it again. Time comes from the
// clock abstraction so tests drive transitions deterministically.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	clk       clock.Clock

	mu       sync.Mutex
	state    BreakerState
	failures int   // consecutive failures while closed
	openedNS int64 // clock time of the last open transition
	probing  bool  // a half-open probe is in flight
	opens    uint64
	closes   uint64

	// Telemetry transition counters (nil-safe no-ops when unset).
	tmOpens  *telemetry.Counter
	tmCloses *telemetry.Counter
}

// setTelemetry wires transition counters; the shipper installs them when its
// config carries a registry.
func (b *Breaker) setTelemetry(opens, closes *telemetry.Counter) {
	b.mu.Lock()
	b.tmOpens, b.tmCloses = opens, closes
	b.mu.Unlock()
}

// NewBreaker creates a breaker that opens after threshold consecutive
// failures and probes for recovery cooldown later.
func NewBreaker(threshold int, cooldown time.Duration, clk clock.Clock) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, clk: clk}
}

// Allow reports whether a call may proceed. In the half-open state only one
// caller wins the probe slot; the rest are rejected until the probe reports.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if time.Duration(b.clk.NowNS()-b.openedNS) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// RecordSuccess reports a successful call: a half-open probe success closes
// the breaker; in the closed state the consecutive-failure count resets.
func (b *Breaker) RecordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerClosed
		b.closes++
		b.tmCloses.Inc()
	case BreakerOpen:
		// A bypassing caller (final flush) succeeded: the backend is back.
		b.state = BreakerClosed
		b.closes++
		b.tmCloses.Inc()
	}
	b.failures = 0
	b.probing = false
}

// RecordFailure reports a failed call: a half-open probe failure reopens the
// breaker; in the closed state the threshold check may trip it.
func (b *Breaker) RecordFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.openLocked()
		}
	case BreakerHalfOpen:
		b.openLocked()
	case BreakerOpen:
		// Bypassing caller failed while open: refresh the cooldown window.
		b.openedNS = b.clk.NowNS()
	}
	b.probing = false
}

func (b *Breaker) openLocked() {
	b.state = BreakerOpen
	b.openedNS = b.clk.NowNS()
	b.failures = 0
	b.opens++
	b.tmOpens.Inc()
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker tripped open.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// Closes returns how many times the breaker recovered to closed.
func (b *Breaker) Closes() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closes
}
