package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parseFiles(t *testing.T, srcs ...string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	for i, src := range srcs {
		f, err := parser.ParseFile(fset, "f"+string(rune('0'+i))+".go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		files = append(files, f)
	}
	return fset, files
}

func TestDetectsDeadVarFuncType(t *testing.T) {
	fset, files := parseFiles(t, `package p

var deadVar = 1
var liveVar = 2

func deadFunc() {}

func liveFunc() int { return liveVar }

type deadType struct{}

type liveType struct{}

func (l liveType) m() int { return liveFunc() }

var _ = liveType{}.m
`)
	dead := deadSymbols(fset, files)
	joined := strings.Join(dead, "\n")
	for _, want := range []string{"deadVar is never used", "deadFunc is never used", "deadType is never used"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
	for _, bad := range []string{"liveVar", "liveFunc", "liveType"} {
		if strings.Contains(joined, bad) {
			t.Errorf("live symbol %q flagged:\n%s", bad, joined)
		}
	}
}

func TestUsageInTestFileCounts(t *testing.T) {
	fset, files := parseFiles(t,
		`package p

func helper() int { return 1 }
`, `package p

import "testing"

func TestHelper(t *testing.T) { _ = helper() }
`)
	if dead := deadSymbols(fset, files); len(dead) != 0 {
		t.Fatalf("test-only usage flagged as dead: %v", dead)
	}
}

func TestSkipsMethodsMainInitAndExported(t *testing.T) {
	fset, files := parseFiles(t, `package main

func main() {}

func init() {}

func Exported() {}

type s struct{}

func (s) unusedMethod() {}

var _ = s{}
`)
	if dead := deadSymbols(fset, files); len(dead) != 0 {
		t.Fatalf("non-candidates flagged: %v", dead)
	}
}

func TestAnalyzeDirOnDisk(t *testing.T) {
	dir := t.TempDir()
	src := `package p

var orphan = []any{"open", "openat"}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	dead, err := analyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 1 || !strings.Contains(dead[0], "orphan is never used") {
		t.Fatalf("dead = %v", dead)
	}
}

// TestRepositoryIsClean runs the lint over the whole repository — the same
// invocation `make tier1` uses. A regression like the dead openSyscalls
// dictionary fails this test before it fails CI.
func TestRepositoryIsClean(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	dead, err := walk(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) > 0 {
		t.Fatalf("dead package-level symbols:\n%s", strings.Join(dead, "\n"))
	}
}
