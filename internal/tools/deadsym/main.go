// Command deadsym is the repository's dead-symbol lint: it reports
// unexported package-level declarations that are never referenced anywhere
// else in their package (test files included). It exists because the
// correlation layer shipped a dead `openSyscalls` dictionary that silently
// widened the anchor query — `go vet` only catches unused locals, not
// unused package-level state.
//
// The analysis is name-based over the AST: a declaration is dead when its
// identifier appears nowhere in the package beyond its own definition
// sites. Name collisions (a local shadowing the package symbol) make it
// conservative: shadowed uses still count, so it reports false negatives,
// never false positives for merely-shadowed names.
//
// Usage:
//
//	deadsym <dir> [<dir>...]   # each dir is walked recursively
//
// Exits 1 when any dead symbol is found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var dead []string
	for _, root := range roots {
		found, err := walk(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "deadsym:", err)
			os.Exit(2)
		}
		dead = append(dead, found...)
	}
	for _, d := range dead {
		fmt.Println(d)
	}
	if len(dead) > 0 {
		fmt.Fprintf(os.Stderr, "deadsym: %d dead package-level symbol(s)\n", len(dead))
		os.Exit(1)
	}
}

// walk analyzes every package directory under root.
func walk(root string) ([]string, error) {
	var dead []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		found, aerr := analyzeDir(path)
		if aerr != nil {
			return fmt.Errorf("%s: %w", path, aerr)
		}
		dead = append(dead, found...)
		return nil
	})
	return dead, err
}

// analyzeDir reports dead unexported package-level symbols in one directory
// (one Go package plus its tests). Directories without Go files yield nil.
func analyzeDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, perr := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.SkipObjectResolution)
		if perr != nil {
			return nil, perr
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return deadSymbols(fset, files), nil
}

// decl is one unexported package-level definition site.
type decl struct {
	name string
	pos  token.Position
}

// deadSymbols returns "path:line: name is never used" findings for the
// package formed by files.
func deadSymbols(fset *token.FileSet, files []*ast.File) []string {
	// Collect candidate declarations: unexported package-level funcs, vars,
	// consts, and types. Methods, main, init, blank names, and test entry
	// points are never candidates.
	var candidates []decl
	defs := make(map[string]int)
	for _, f := range files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil || !isCandidateName(d.Name.Name) || isTestEntry(d.Name.Name) {
					continue
				}
				candidates = append(candidates, decl{d.Name.Name, fset.Position(d.Name.Pos())})
				defs[d.Name.Name]++
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch spec := spec.(type) {
					case *ast.ValueSpec:
						for _, n := range spec.Names {
							if !isCandidateName(n.Name) {
								continue
							}
							candidates = append(candidates, decl{n.Name, fset.Position(n.Pos())})
							defs[n.Name]++
						}
					case *ast.TypeSpec:
						if !isCandidateName(spec.Name.Name) {
							continue
						}
						candidates = append(candidates, decl{spec.Name.Name, fset.Position(spec.Name.Pos())})
						defs[spec.Name.Name]++
					}
				}
			}
		}
	}
	if len(candidates) == 0 {
		return nil
	}

	// Count every identifier occurrence in the package, definition sites
	// included. A symbol is dead when nothing beyond its definitions names it.
	uses := make(map[string]int)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if _, tracked := defs[id.Name]; tracked {
					uses[id.Name]++
				}
			}
			return true
		})
	}

	var dead []string
	for _, c := range candidates {
		if uses[c.name] <= defs[c.name] {
			dead = append(dead, fmt.Sprintf("%s:%d: %s is never used", c.pos.Filename, c.pos.Line, c.name))
		}
	}
	sort.Strings(dead)
	return dead
}

func isCandidateName(name string) bool {
	if name == "_" || name == "main" || name == "init" {
		return false
	}
	r := name[0]
	return r >= 'a' && r <= 'z' || r == '_'
}

func isTestEntry(name string) bool {
	for _, p := range []string{"Test", "Benchmark", "Example", "Fuzz"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
