// Command deadsym is the repository's dead-symbol lint: it reports
// unexported package-level declarations that are never referenced anywhere
// else in their package (test files included). It exists because the
// correlation layer shipped a dead `openSyscalls` dictionary that silently
// widened the anchor query — `go vet` only catches unused locals, not
// unused package-level state.
//
// The analysis is name-based over the AST: a declaration is dead when its
// identifier appears nowhere in the package beyond its own definition
// sites. Name collisions (a local shadowing the package symbol) make it
// conservative: shadowed uses still count, so it reports false negatives,
// never false positives for merely-shadowed names.
//
// With -exported, deadsym additionally audits the EXPORTED package-level
// declarations of one or more package directories (comma-separated): a
// second pass scans every root for qualified references (pkg.Name selectors
// from other packages, or bare uses inside the package itself) and reports
// exported symbols nothing references. The same conservatism applies — a
// local variable that shares the package's import name makes its selector
// uses count, so the mode under-reports rather than flagging live API.
//
// Usage:
//
//	deadsym [-exported <pkgdir>[,<pkgdir>...]] <dir> [<dir>...]   # each dir is walked recursively
//
// Exits 1 when any dead symbol is found.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	exportedDirs := flag.String("exported", "", "comma-separated package directories whose exported symbols are audited for external uses")
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var dead []string
	for _, root := range roots {
		found, err := walk(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "deadsym:", err)
			os.Exit(2)
		}
		dead = append(dead, found...)
	}
	if *exportedDirs != "" {
		for _, dir := range strings.Split(*exportedDirs, ",") {
			found, err := deadExported(strings.TrimSpace(dir), roots)
			if err != nil {
				fmt.Fprintln(os.Stderr, "deadsym:", err)
				os.Exit(2)
			}
			dead = append(dead, found...)
		}
	}
	for _, d := range dead {
		fmt.Println(d)
	}
	if len(dead) > 0 {
		fmt.Fprintf(os.Stderr, "deadsym: %d dead package-level symbol(s)\n", len(dead))
		os.Exit(1)
	}
}

// deadExported reports exported package-level symbols of pkgDir that no file
// under roots references: neither a qualified pkg.Name selector from another
// package nor a bare use inside pkgDir beyond the definition sites.
func deadExported(pkgDir string, roots []string) ([]string, error) {
	fset := token.NewFileSet()
	pkgFiles, pkgName, err := parsePackageDir(fset, pkgDir)
	if err != nil {
		return nil, err
	}
	if len(pkgFiles) == 0 {
		return nil, fmt.Errorf("%s: no Go files", pkgDir)
	}

	// Pass 1: exported package-level declarations (methods excluded — a
	// name-based scan cannot attribute selector receivers).
	var candidates []decl
	defs := make(map[string]int)
	for _, f := range pkgFiles {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil || !ast.IsExported(d.Name.Name) {
					continue
				}
				candidates = append(candidates, decl{d.Name.Name, fset.Position(d.Name.Pos())})
				defs[d.Name.Name]++
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch spec := spec.(type) {
					case *ast.ValueSpec:
						for _, n := range spec.Names {
							if !ast.IsExported(n.Name) {
								continue
							}
							candidates = append(candidates, decl{n.Name, fset.Position(n.Pos())})
							defs[n.Name]++
						}
					case *ast.TypeSpec:
						if !ast.IsExported(spec.Name.Name) {
							continue
						}
						candidates = append(candidates, decl{spec.Name.Name, fset.Position(spec.Name.Pos())})
						defs[spec.Name.Name]++
					}
				}
			}
		}
	}
	if len(candidates) == 0 {
		return nil, nil
	}

	// Pass 2: count uses across every root. Inside pkgDir any identifier
	// occurrence counts (definitions subtracted below); elsewhere only
	// pkgName.Ident selectors do.
	absPkg, err := filepath.Abs(pkgDir)
	if err != nil {
		return nil, err
	}
	uses := make(map[string]int)
	for _, root := range roots {
		werr := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(d.Name(), ".go") {
				return nil
			}
			f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
			if perr != nil {
				return perr
			}
			abs, aerr := filepath.Abs(filepath.Dir(path))
			if aerr != nil {
				return aerr
			}
			if abs == absPkg {
				ast.Inspect(f, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok {
						if _, tracked := defs[id.Name]; tracked {
							uses[id.Name]++
						}
					}
					return true
				})
				return nil
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if x, ok := sel.X.(*ast.Ident); ok && x.Name == pkgName {
					if _, tracked := defs[sel.Sel.Name]; tracked {
						uses[sel.Sel.Name]++
					}
				}
				return true
			})
			return nil
		})
		if werr != nil {
			return nil, werr
		}
	}

	var dead []string
	for _, c := range candidates {
		if uses[c.name] <= defs[c.name] {
			dead = append(dead, fmt.Sprintf("%s:%d: exported %s is never used", c.pos.Filename, c.pos.Line, c.name))
		}
	}
	sort.Strings(dead)
	return dead, nil
}

// parsePackageDir parses the non-test Go files of one directory and returns
// them with the package name.
func parsePackageDir(fset *token.FileSet, dir string) ([]*ast.File, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	var files []*ast.File
	var pkgName string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, perr := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.SkipObjectResolution)
		if perr != nil {
			return nil, "", perr
		}
		files = append(files, f)
		pkgName = f.Name.Name
	}
	return files, pkgName, nil
}

// walk analyzes every package directory under root.
func walk(root string) ([]string, error) {
	var dead []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		found, aerr := analyzeDir(path)
		if aerr != nil {
			return fmt.Errorf("%s: %w", path, aerr)
		}
		dead = append(dead, found...)
		return nil
	})
	return dead, err
}

// analyzeDir reports dead unexported package-level symbols in one directory
// (one Go package plus its tests). Directories without Go files yield nil.
func analyzeDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, perr := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.SkipObjectResolution)
		if perr != nil {
			return nil, perr
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return deadSymbols(fset, files), nil
}

// decl is one unexported package-level definition site.
type decl struct {
	name string
	pos  token.Position
}

// deadSymbols returns "path:line: name is never used" findings for the
// package formed by files.
func deadSymbols(fset *token.FileSet, files []*ast.File) []string {
	// Collect candidate declarations: unexported package-level funcs, vars,
	// consts, and types. Methods, main, init, blank names, and test entry
	// points are never candidates.
	var candidates []decl
	defs := make(map[string]int)
	for _, f := range files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil || !isCandidateName(d.Name.Name) || isTestEntry(d.Name.Name) {
					continue
				}
				candidates = append(candidates, decl{d.Name.Name, fset.Position(d.Name.Pos())})
				defs[d.Name.Name]++
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch spec := spec.(type) {
					case *ast.ValueSpec:
						for _, n := range spec.Names {
							if !isCandidateName(n.Name) {
								continue
							}
							candidates = append(candidates, decl{n.Name, fset.Position(n.Pos())})
							defs[n.Name]++
						}
					case *ast.TypeSpec:
						if !isCandidateName(spec.Name.Name) {
							continue
						}
						candidates = append(candidates, decl{spec.Name.Name, fset.Position(spec.Name.Pos())})
						defs[spec.Name.Name]++
					}
				}
			}
		}
	}
	if len(candidates) == 0 {
		return nil
	}

	// Count every identifier occurrence in the package, definition sites
	// included. A symbol is dead when nothing beyond its definitions names it.
	uses := make(map[string]int)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if _, tracked := defs[id.Name]; tracked {
					uses[id.Name]++
				}
			}
			return true
		})
	}

	var dead []string
	for _, c := range candidates {
		if uses[c.name] <= defs[c.name] {
			dead = append(dead, fmt.Sprintf("%s:%d: %s is never used", c.pos.Filename, c.pos.Line, c.name))
		}
	}
	sort.Strings(dead)
	return dead
}

func isCandidateName(name string) bool {
	if name == "_" || name == "main" || name == "init" {
		return false
	}
	r := name[0]
	return r >= 'a' && r <= 'z' || r == '_'
}

func isTestEntry(name string) bool {
	for _, p := range []string{"Test", "Benchmark", "Example", "Fuzz"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
