package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"github.com/dsrhaslab/dio-go/internal/event"
)

// Segment file layout (all integers little-endian). A segment is one
// columnar snapshot of a contiguous (or, after compaction over retention
// gaps, sparse) run of an index's rows in global-id order, written under the
// store's locks and published by the manifest:
//
//	[4]  magic "DIOS"
//	[1]  version (2; version-1 files lack the two time fields)
//	[4]  u32 shard count (advisory: recovery recreates the index with it)
//	[8]  u64 total rows
//	[8]  u64 typed rows T
//	[8]  u64 generic rows G
//	[8]  i64 min time_enter_ns over timed rows   } v2 only; empty range
//	[8]  i64 max time_enter_ns over timed rows   } (min > max) when none timed
//	typed block (columnar — one array per field over the T typed rows):
//	  gids        T × u64
//	  i64 columns T × u64 each: ret_val, arg_offset, time_enter, time_exit,
//	              offset, dev, ino, birth
//	  i32 columns T × u32 each: pid, tid, fd, count, whence, flags
//	  mode        T × u32
//	  aux         T × u8 (bit 0: has_offset)
//	  11 string columns (wire order of the event codec), each:
//	    offsets (T+1) × u32 into the column's blob, then the blob bytes
//	generic block (row-major — generic documents are opaque):
//	  per row: u64 gid, u32 len, gob([]byte) payload
//	[4]  u32 CRC-32C of everything before it
//
// The columnar typed block is what makes snapshots cheap to load: each
// column decodes with one bounds check per row, and the string blobs intern
// naturally because equal values are loaded once per column read.
const (
	segMagicLen  = 4
	segHeaderLen = segMagicLen + 1 + 4 + 8 + 8 + 8
	segVersion   = 2
	// segVersionV1 files predate the header time range; readers accept them
	// with an unknown (never-pruned) range.
	segVersionV1 = 1
)

var segMagic = [segMagicLen]byte{'D', 'I', 'O', 'S'}

// segStringCount mirrors the event codec's string field count; the typed
// block stores one string column per field in the same wire order.
const segStringCount = 11

// SegmentRow is one row handed to WriteSegment: exactly one of Event (a
// typed row) or Doc (an opaque encoded generic document) is set. Generic
// documents are opaque to this package, so the caller extracts their
// time_enter_ns (DocTimed false when the document carries no numeric time;
// such rows are excluded from the segment's pruning range, which is sound
// because they can never match a numeric time-range filter). Typed rows are
// always timed via Event.TimeEnterNS.
type SegmentRow struct {
	Event    *event.Event
	Doc      []byte
	DocTime  int64
	DocTimed bool
}

// RowSource enumerates an index's rows in global-id order. Row may be called
// multiple times per index (the columnar writer makes one pass per column),
// so implementations should return views, not copies.
type RowSource interface {
	NumRows() int
	Row(i int) SegmentRow
}

// GidSource is an optional RowSource extension that assigns explicit
// segment-local row ids instead of the default dense 0..N-1. Compaction uses
// it when merging across a retention gap: ids must be strictly ascending but
// may be sparse.
type GidSource interface {
	Gid(i int) int
}

// segStrings enumerates the typed row's string fields in wire order (shared
// with the event codec's field order).
func segStrings(e *event.Event) [segStringCount]string {
	return [segStringCount]string{
		e.Session, e.Syscall, e.Class, e.ProcName, e.ThreadName,
		e.ArgPath, e.ArgPath2, e.AttrName, e.FileType, e.KernelPath,
		e.FilePath,
	}
}

// segWriter accumulates the segment image and its running checksum.
type segWriter struct {
	buf []byte
}

func (w *segWriter) u8(v byte)      { w.buf = append(w.buf, v) }
func (w *segWriter) u32(v uint32)   { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *segWriter) u64(v uint64)   { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *segWriter) bytes(b []byte) { w.buf = append(w.buf, b...) }

// WriteSegment writes a columnar snapshot of src to path atomically (tmp +
// fsync + rename) and returns the segment's stats, including the
// time_enter_ns range stamped into the header for query-time pruning. The
// caller holds whatever locks make src a consistent snapshot.
func WriteSegment(path string, shards int, src RowSource) (SegmentInfo, error) {
	n := src.NumRows()
	gid := func(i int) int { return i }
	if gs, ok := src.(GidSource); ok {
		gid = gs.Gid
	}
	var typed, generic []int
	minT, maxT := int64(math.MaxInt64), int64(math.MinInt64)
	stamp := func(t int64) {
		if t < minT {
			minT = t
		}
		if t > maxT {
			maxT = t
		}
	}
	for i := 0; i < n; i++ {
		row := src.Row(i)
		if row.Event != nil {
			typed = append(typed, i)
			stamp(row.Event.TimeEnterNS)
		} else {
			generic = append(generic, i)
			if row.DocTimed {
				stamp(row.DocTime)
			}
		}
	}
	w := &segWriter{buf: make([]byte, 0, segHeaderLen+16+64*n)}
	w.bytes(segMagic[:])
	w.u8(segVersion)
	w.u32(uint32(shards))
	w.u64(uint64(n))
	w.u64(uint64(len(typed)))
	w.u64(uint64(len(generic)))
	w.u64(uint64(minT))
	w.u64(uint64(maxT))

	for _, i := range typed {
		w.u64(uint64(gid(i)))
	}
	i64cols := []func(e *event.Event) int64{
		func(e *event.Event) int64 { return e.RetVal },
		func(e *event.Event) int64 { return e.ArgOff },
		func(e *event.Event) int64 { return e.TimeEnterNS },
		func(e *event.Event) int64 { return e.TimeExitNS },
		func(e *event.Event) int64 { return e.Offset },
		func(e *event.Event) int64 { return int64(e.FileTag.Dev) },
		func(e *event.Event) int64 { return int64(e.FileTag.Ino) },
		func(e *event.Event) int64 { return e.FileTag.BirthNS },
	}
	for _, col := range i64cols {
		for _, i := range typed {
			w.u64(uint64(col(src.Row(i).Event)))
		}
	}
	i32cols := []func(e *event.Event) int32{
		func(e *event.Event) int32 { return int32(e.PID) },
		func(e *event.Event) int32 { return int32(e.TID) },
		func(e *event.Event) int32 { return int32(e.FD) },
		func(e *event.Event) int32 { return int32(e.Count) },
		func(e *event.Event) int32 { return int32(e.Whence) },
		func(e *event.Event) int32 { return int32(e.Flags) },
	}
	for _, col := range i32cols {
		for _, i := range typed {
			w.u32(uint32(col(src.Row(i).Event)))
		}
	}
	for _, i := range typed {
		w.u32(src.Row(i).Event.Mode)
	}
	for _, i := range typed {
		var aux byte
		if src.Row(i).Event.HasOffset {
			aux |= 1
		}
		w.u8(aux)
	}
	for s := 0; s < segStringCount; s++ {
		off := uint32(0)
		w.u32(off)
		for _, i := range typed {
			off += uint32(len(segStrings(src.Row(i).Event)[s]))
			w.u32(off)
		}
		for _, i := range typed {
			w.bytes([]byte(segStrings(src.Row(i).Event)[s]))
		}
	}
	for _, i := range generic {
		doc := src.Row(i).Doc
		w.u64(uint64(gid(i)))
		w.u32(uint32(len(doc)))
		w.bytes(doc)
	}
	w.u32(crc32.Checksum(w.buf, crcTable))
	if err := writeFileAtomic(path, w.buf); err != nil {
		return SegmentInfo{}, fmt.Errorf("durable: write segment: %w", err)
	}
	return SegmentInfo{
		Shards:  shards,
		Rows:    n,
		Typed:   len(typed),
		Generic: len(generic),
		Bytes:   int64(len(w.buf)),
		MinTime: minT,
		MaxTime: maxT,
	}, nil
}

// segReader walks the segment image with bounds checking.
type segReader struct {
	data []byte
	o    int
}

func (r *segReader) need(n int) ([]byte, error) {
	if r.o+n > len(r.data) {
		return nil, fmt.Errorf("%w: truncated at offset %d (+%d)", ErrCorruptSegment, r.o, n)
	}
	b := r.data[r.o : r.o+n]
	r.o += n
	return b, nil
}

func (r *segReader) u8() (byte, error) {
	b, err := r.need(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *segReader) u32() (uint32, error) {
	b, err := r.need(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *segReader) u64() (uint64, error) {
	b, err := r.need(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// SegmentInfo summarizes a written or loaded segment. MinTime/MaxTime are
// the header's time_enter_ns range: empty (MinTime > MaxTime) when no row is
// timed, and the unknown sentinel (MinInt64, MaxInt64) for version-1 files
// that predate range stamping.
type SegmentInfo struct {
	Shards  int
	Rows    int
	Typed   int
	Generic int
	Bytes   int64
	MinTime int64
	MaxTime int64
}

// segMaxRows bounds the row-count fields so a corrupt header cannot drive
// huge allocations.
const segMaxRows = 1 << 32

// ReadSegment loads the segment at path, verifying the whole-file checksum
// before trusting any field, and hands every row — typed events and encoded
// generic documents — to fn in global-id order. Short strings intern through
// a per-load table, matching the wire codec's allocation discipline.
func ReadSegment(path string, fn func(gid int, ev *event.Event, doc []byte) error) (SegmentInfo, error) {
	var info SegmentInfo
	data, err := os.ReadFile(path)
	if err != nil {
		return info, fmt.Errorf("durable: read segment: %w", err)
	}
	if len(data) < segHeaderLen+4 {
		return info, fmt.Errorf("%w: short file (%d bytes)", ErrCorruptSegment, len(data))
	}
	body, sumBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(sumBytes) {
		return info, fmt.Errorf("%w: checksum mismatch", ErrCorruptSegment)
	}
	r := &segReader{data: body}
	magic, _ := r.need(segMagicLen)
	if [segMagicLen]byte(magic) != segMagic {
		return info, fmt.Errorf("%w: bad magic", ErrCorruptSegment)
	}
	ver, _ := r.u8()
	if ver != segVersion && ver != segVersionV1 {
		return info, fmt.Errorf("%w: unsupported version %d", ErrCorruptSegment, ver)
	}
	shards, _ := r.u32()
	total, _ := r.u64()
	typedN, _ := r.u64()
	genericN, _ := r.u64()
	minT, maxT := int64(math.MinInt64), int64(math.MaxInt64)
	if ver >= segVersion {
		mn, err := r.u64()
		if err != nil {
			return info, err
		}
		mx, err := r.u64()
		if err != nil {
			return info, err
		}
		minT, maxT = int64(mn), int64(mx)
	}
	if total > segMaxRows || typedN+genericN != total {
		return info, fmt.Errorf("%w: implausible row counts %d=%d+%d", ErrCorruptSegment, total, typedN, genericN)
	}
	info = SegmentInfo{
		Shards: int(shards), Rows: int(total), Typed: int(typedN), Generic: int(genericN),
		Bytes: int64(len(data)), MinTime: minT, MaxTime: maxT,
	}

	T := int(typedN)
	gids := make([]int, T)
	for i := 0; i < T; i++ {
		g, err := r.u64()
		if err != nil {
			return info, err
		}
		gids[i] = int(g)
	}
	events := make([]event.Event, T)
	i64cols := []func(e *event.Event, v int64){
		func(e *event.Event, v int64) { e.RetVal = v },
		func(e *event.Event, v int64) { e.ArgOff = v },
		func(e *event.Event, v int64) { e.TimeEnterNS = v },
		func(e *event.Event, v int64) { e.TimeExitNS = v },
		func(e *event.Event, v int64) { e.Offset = v },
		func(e *event.Event, v int64) { e.FileTag.Dev = uint64(v) },
		func(e *event.Event, v int64) { e.FileTag.Ino = uint64(v) },
		func(e *event.Event, v int64) { e.FileTag.BirthNS = v },
	}
	for _, set := range i64cols {
		for i := 0; i < T; i++ {
			v, err := r.u64()
			if err != nil {
				return info, err
			}
			set(&events[i], int64(v))
		}
	}
	i32cols := []func(e *event.Event, v int32){
		func(e *event.Event, v int32) { e.PID = int(v) },
		func(e *event.Event, v int32) { e.TID = int(v) },
		func(e *event.Event, v int32) { e.FD = int(v) },
		func(e *event.Event, v int32) { e.Count = int(v) },
		func(e *event.Event, v int32) { e.Whence = int(v) },
		func(e *event.Event, v int32) { e.Flags = int(v) },
	}
	for _, set := range i32cols {
		for i := 0; i < T; i++ {
			v, err := r.u32()
			if err != nil {
				return info, err
			}
			set(&events[i], int32(v))
		}
	}
	for i := 0; i < T; i++ {
		v, err := r.u32()
		if err != nil {
			return info, err
		}
		events[i].Mode = v
	}
	for i := 0; i < T; i++ {
		aux, err := r.u8()
		if err != nil {
			return info, err
		}
		events[i].HasOffset = aux&1 != 0
		if !events[i].HasOffset {
			events[i].Offset = 0
		}
	}
	intern := make(map[string]string, 64)
	internStr := func(b []byte) string {
		if len(b) == 0 {
			return ""
		}
		if len(b) <= 64 {
			if s, ok := intern[string(b)]; ok {
				return s
			}
			s := string(b)
			intern[s] = s
			return s
		}
		return string(b)
	}
	setters := []func(e *event.Event, s string){
		func(e *event.Event, s string) { e.Session = s },
		func(e *event.Event, s string) { e.Syscall = s },
		func(e *event.Event, s string) { e.Class = s },
		func(e *event.Event, s string) { e.ProcName = s },
		func(e *event.Event, s string) { e.ThreadName = s },
		func(e *event.Event, s string) { e.ArgPath = s },
		func(e *event.Event, s string) { e.ArgPath2 = s },
		func(e *event.Event, s string) { e.AttrName = s },
		func(e *event.Event, s string) { e.FileType = s },
		func(e *event.Event, s string) { e.KernelPath = s },
		func(e *event.Event, s string) { e.FilePath = s },
	}
	for s := 0; s < segStringCount; s++ {
		offsets := make([]uint32, T+1)
		for i := range offsets {
			v, err := r.u32()
			if err != nil {
				return info, err
			}
			offsets[i] = v
		}
		blobLen := int(offsets[T])
		blob, err := r.need(blobLen)
		if err != nil {
			return info, err
		}
		for i := 0; i < T; i++ {
			lo, hi := offsets[i], offsets[i+1]
			if lo > hi || int(hi) > blobLen {
				return info, fmt.Errorf("%w: string column %d offsets out of order", ErrCorruptSegment, s)
			}
			setters[s](&events[i], internStr(blob[lo:hi]))
		}
	}
	type genRow struct {
		gid int
		doc []byte
	}
	gens := make([]genRow, 0, int(genericN))
	for i := 0; i < int(genericN); i++ {
		gid, err := r.u64()
		if err != nil {
			return info, err
		}
		dlen, err := r.u32()
		if err != nil {
			return info, err
		}
		doc, err := r.need(int(dlen))
		if err != nil {
			return info, err
		}
		gens = append(gens, genRow{gid: int(gid), doc: doc})
	}
	if r.o != len(body) {
		return info, fmt.Errorf("%w: %d trailing bytes", ErrCorruptSegment, len(body)-r.o)
	}
	// Merge the two gid-ascending streams so fn sees rows in insertion order.
	ti, gi := 0, 0
	for ti < T || gi < len(gens) {
		switch {
		case gi >= len(gens) || (ti < T && gids[ti] < gens[gi].gid):
			if err := fn(gids[ti], &events[ti], nil); err != nil {
				return info, err
			}
			ti++
		default:
			if err := fn(gens[gi].gid, nil, gens[gi].doc); err != nil {
				return info, err
			}
			gi++
		}
	}
	return info, nil
}
