package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// buildWAL writes a small valid log and returns its bytes.
func buildWAL(t testing.TB, payloads ...[]byte) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal-fuzz.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		if _, err := w.Append(RecordType(1+i%3), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzWALReplay feeds arbitrary bytes — seeded with valid logs, bit-flipped
// logs, and truncations — to both WAL readers. The invariants: no panic, no
// over-read, a second replay of whatever ReplayWAL kept is clean (its torn-tail
// truncation converges), and ReadWALTail agrees with ReplayWAL on every intact
// prefix while never mutating the file.
func FuzzWALReplay(f *testing.F) {
	valid := buildWAL(f, []byte("alpha"), []byte("beta"), bytes.Repeat([]byte("g"), 300), nil)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])           // torn payload
	f.Add(valid[:walHeaderLen-2])         // torn header
	f.Add([]byte{})                       // empty log
	f.Add(bytes.Repeat([]byte{0xFF}, 64)) // garbage: absurd length field
	flip := bytes.Clone(valid)
	flip[walHeaderLen+1] ^= 0x40 // corrupt first payload
	f.Add(flip)
	flip2 := bytes.Clone(valid)
	flip2[1] ^= 0x01 // corrupt first length field
	f.Add(flip2)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal-000000.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var payloads [][]byte
		stats, err := ReplayWAL(path, func(rt RecordType, p []byte) error {
			payloads = append(payloads, bytes.Clone(p))
			return nil
		})
		if err != nil {
			t.Fatalf("replay of arbitrary bytes must not error, got %v", err)
		}
		if stats.Records != len(payloads) {
			t.Fatalf("stats.Records=%d but callback ran %d times", stats.Records, len(payloads))
		}
		if stats.Bytes > int64(len(data)) {
			t.Fatalf("replay claims %d bytes from a %d-byte file", stats.Bytes, len(data))
		}
		// After torn-tail truncation, the file must be exactly the intact
		// prefix and a second replay must be clean and identical.
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() != stats.Bytes {
			t.Fatalf("file is %d bytes after replay, stats kept %d", st.Size(), stats.Bytes)
		}
		n2 := 0
		stats2, err := ReplayWAL(path, func(rt RecordType, p []byte) error {
			if !bytes.Equal(p, payloads[n2]) {
				t.Fatalf("second replay diverged at record %d", n2)
			}
			n2++
			return nil
		})
		if err != nil || stats2.Torn || stats2.Records != stats.Records {
			t.Fatalf("second replay: stats=%+v err=%v (first %+v)", stats2, err, stats)
		}

		// ReadWALTail over the repaired file sees the same records, and over
		// the original bytes it stops at the same prefix without repairing.
		raw := filepath.Join(dir, "raw.log")
		if err := os.WriteFile(raw, data, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, off, err := ReadWALTail(raw, 0, len(payloads)+10, 1<<30)
		if err != nil {
			t.Fatalf("tail read of arbitrary bytes must not error, got %v", err)
		}
		if len(recs) != len(payloads) || off != stats.Bytes {
			t.Fatalf("tail read %d records to offset %d, replay had %d to %d",
				len(recs), off, len(payloads), stats.Bytes)
		}
		for i := range recs {
			if !bytes.Equal(recs[i].Payload, payloads[i]) {
				t.Fatalf("tail record %d diverged from replay", i)
			}
		}
		st, err = os.Stat(raw)
		if err != nil || st.Size() != int64(len(data)) {
			t.Fatalf("tail read mutated the file: %d bytes, want %d (err=%v)", st.Size(), len(data), err)
		}
	})
}
