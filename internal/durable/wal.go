// Package durable is the store's persistence layer: a per-index append-only
// write-ahead log for typed event batches and generic document batches, plus
// columnar segment snapshots and the manifest that makes snapshot→WAL
// handoff crash-atomic. The store (internal/store) owns placement and
// locking; this package owns bytes on disk and their integrity.
//
// The durability contract mirrors the role Elasticsearch's translog +
// Lucene segments play in the paper's deployment (§II-F): every acknowledged
// write is re-derivable after a crash from (segment, WAL suffix), torn WAL
// tails are detected by per-record CRCs and truncated, and partially written
// segments are never trusted because the manifest — renamed into place
// atomically — is the only commit point.
package durable

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// RecordType tags one WAL record's payload encoding.
type RecordType uint8

const (
	// RecordEvents is a typed event batch in the event binary codec
	// (event.EncodeBatch frame).
	RecordEvents RecordType = 1
	// RecordDocs is a generic document batch, gob-encoded ([]Document). Gob
	// round-trips int64 values exactly — JSON would coerce nanosecond
	// timestamps through float64 and corrupt them.
	RecordDocs RecordType = 2
	// RecordRewrite is an update-by-query effect batch: gob-encoded
	// (gid, document) pairs applied to rows that already exist in the log's
	// prefix.
	RecordRewrite RecordType = 3
)

// walHeaderLen is the per-record frame overhead: type byte, payload length,
// payload CRC.
const walHeaderLen = 1 + 4 + 4

// walMaxPayload bounds a single record so a corrupt length field cannot
// trigger a gigabyte allocation during replay.
const walMaxPayload = 1 << 30

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms the backend runs on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptSegment reports a segment file whose checksum or structure is
// invalid. Unlike a torn WAL tail — an expected crash artifact that replay
// repairs by truncation — a committed segment must be intact, so recovery
// surfaces this instead of guessing.
var ErrCorruptSegment = errors.New("durable: corrupt segment")

// WAL is one append-only log file. Appends are serialized by an internal
// mutex; Sync flushes written records to stable storage according to the
// caller's fsync policy (per-append, interval timer, or never).
type WAL struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	size  int64
	buf   []byte // frame scratch, reused across appends
	dirty bool   // bytes written since the last Sync
}

// OpenWAL opens (creating if needed) the log at path for appending.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: stat wal: %w", err)
	}
	return &WAL{f: f, path: path, size: st.Size()}, nil
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Size returns the log's current length in bytes (header bytes included).
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Append writes one record and returns the number of bytes appended. The
// frame is assembled in a reused scratch buffer and written with a single
// write call, so a crash can tear at most the record being written — which
// replay detects by length or CRC and truncates.
func (w *WAL) Append(t RecordType, payload []byte) (int, error) {
	if len(payload) > walMaxPayload {
		return 0, fmt.Errorf("durable: wal record of %d bytes exceeds limit", len(payload))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, errors.New("durable: wal is closed")
	}
	need := walHeaderLen + len(payload)
	if cap(w.buf) < need {
		w.buf = make([]byte, 0, need)
	}
	b := w.buf[:0]
	b = append(b, byte(t))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, crcTable))
	b = append(b, payload...)
	w.buf = b[:0]
	if _, err := w.f.Write(b); err != nil {
		return 0, fmt.Errorf("durable: wal append: %w", err)
	}
	w.size += int64(need)
	w.dirty = true
	return need, nil
}

// Sync flushes appended records to stable storage. It is a no-op when
// nothing was written since the last call, so interval-policy timers are
// free on idle indices. The fsync itself runs outside the append mutex:
// flushing the page cache needs no exclusion from concurrent appends (their
// bytes either ride this flush or the next), and holding the lock across a
// multi-millisecond fsync would stall every writer behind the interval
// timer. The dirty flag is claimed before the flush, so appends landing
// mid-fsync re-arm it.
func (w *WAL) Sync() error {
	w.mu.Lock()
	f := w.f
	if f == nil || !w.dirty {
		w.mu.Unlock()
		return nil
	}
	w.dirty = false
	w.mu.Unlock()
	if err := f.Sync(); err != nil {
		w.mu.Lock()
		w.dirty = true
		w.mu.Unlock()
		return fmt.Errorf("durable: wal fsync: %w", err)
	}
	return nil
}

// Close syncs and closes the log. A closed WAL rejects further appends.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	syncErr := w.f.Sync()
	closeErr := w.f.Close()
	w.f = nil
	if syncErr != nil {
		return fmt.Errorf("durable: wal close sync: %w", syncErr)
	}
	return closeErr
}

// WALReplayStats summarizes one replay pass.
type WALReplayStats struct {
	// Records is the number of intact records handed to the callback.
	Records int
	// Bytes is the number of intact bytes (the offset the file was kept to).
	Bytes int64
	// Torn reports that the file ended in a partial or corrupt record — the
	// expected artifact of a crash mid-append — which was truncated away.
	Torn bool
}

// ReplayWAL reads the log at path from the start, handing each intact
// record's type and payload to fn in append order. A torn tail (short
// header, short payload, or CRC mismatch) stops the scan and truncates the
// file back to the last intact record, so the next OpenWAL appends from a
// clean boundary. A missing file replays zero records. fn errors abort the
// replay unchanged.
func ReplayWAL(path string, fn func(t RecordType, payload []byte) error) (WALReplayStats, error) {
	var stats WALReplayStats
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return stats, nil
		}
		return stats, fmt.Errorf("durable: read wal: %w", err)
	}
	o := 0
	for {
		if o == len(data) {
			break
		}
		if o+walHeaderLen > len(data) {
			stats.Torn = true
			break
		}
		t := RecordType(data[o])
		plen := int(binary.LittleEndian.Uint32(data[o+1:]))
		sum := binary.LittleEndian.Uint32(data[o+5:])
		if plen > walMaxPayload || o+walHeaderLen+plen > len(data) {
			stats.Torn = true
			break
		}
		payload := data[o+walHeaderLen : o+walHeaderLen+plen]
		if crc32.Checksum(payload, crcTable) != sum {
			stats.Torn = true
			break
		}
		if err := fn(t, payload); err != nil {
			return stats, err
		}
		o += walHeaderLen + plen
		stats.Records++
		stats.Bytes = int64(o)
	}
	if stats.Torn {
		if err := os.Truncate(path, stats.Bytes); err != nil {
			return stats, fmt.Errorf("durable: truncate torn wal tail: %w", err)
		}
	}
	return stats, nil
}

// TailRecord is one intact WAL record handed back by ReadWALTail. Payload is
// freshly allocated and safe to retain.
type TailRecord struct {
	Type    RecordType
	Payload []byte
}

// ReadWALTail reads complete records from the log at path starting at byte
// offset off, stopping after maxRecords records or once more than maxBytes of
// payload have been collected (at least one record is returned if any is
// intact). It returns the records, the byte offset just past the last one —
// the cursor for the next call — and an error only for real I/O failures.
//
// Unlike ReplayWAL it never truncates: a short or CRC-failing record at the
// tail may simply be an append in flight on the live file (Append completes
// its single write before the head sequence advances, so any record the
// caller knows exists is fully visible), so the scan stops silently and the
// caller retries from the returned offset. A missing file returns
// (nil, off, nil) — the log was superseded by a snapshot.
func ReadWALTail(path string, off int64, maxRecords, maxBytes int) ([]TailRecord, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, off, nil
		}
		return nil, off, fmt.Errorf("durable: open wal tail: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, off, fmt.Errorf("durable: stat wal tail: %w", err)
	}
	end := st.Size()
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return nil, off, fmt.Errorf("durable: seek wal tail: %w", err)
	}
	r := bufio.NewReaderSize(f, 64<<10)
	var (
		recs  []TailRecord
		bytes int
		hdr   [walHeaderLen]byte
	)
	for len(recs) < maxRecords && bytes <= maxBytes {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break
			}
			return recs, off, fmt.Errorf("durable: read wal tail: %w", err)
		}
		t := RecordType(hdr[0])
		plen := int(binary.LittleEndian.Uint32(hdr[1:]))
		sum := binary.LittleEndian.Uint32(hdr[5:])
		// A length past the statted end is a torn or in-flight record (or a
		// corrupt field); checking before allocating also keeps a garbage
		// length from provoking a giant allocation.
		if plen > walMaxPayload || off+int64(walHeaderLen)+int64(plen) > end {
			break
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break
			}
			return recs, off, fmt.Errorf("durable: read wal tail: %w", err)
		}
		if crc32.Checksum(payload, crcTable) != sum {
			break
		}
		recs = append(recs, TailRecord{Type: t, Payload: payload})
		off += int64(walHeaderLen + plen)
		bytes += plen
	}
	return recs, off, nil
}

// syncParent fsyncs the directory containing path so renames and creates in
// it are durable (best-effort on filesystems that reject directory fsync).
func syncParent(path string) {
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	_ = dir.Sync()
	dir.Close()
}

// writeFileAtomic writes data to path via a temporary sibling, fsyncs it,
// and renames it into place — the standard crash-atomic publish.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncParent(path)
	return nil
}
