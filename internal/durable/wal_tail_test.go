package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestReadWALTailCursorWalk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("alpha"), []byte("beta"), {}, []byte("gamma"), []byte("delta")}
	types := []RecordType{RecordEvents, RecordDocs, RecordRewrite, RecordEvents, RecordDocs}
	for i, p := range payloads {
		if _, err := w.Append(types[i], p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Walk the log two records at a time; the returned offset is the cursor.
	var got []TailRecord
	off := int64(0)
	for {
		recs, next, err := ReadWALTail(path, off, 2, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			if next != off {
				t.Fatalf("empty read moved cursor %d -> %d", off, next)
			}
			break
		}
		got = append(got, recs...)
		off = next
	}
	if len(got) != len(payloads) {
		t.Fatalf("read %d records, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if got[i].Type != types[i] || !bytes.Equal(got[i].Payload, payloads[i]) {
			t.Fatalf("record %d = {%d %q}, want {%d %q}", i, got[i].Type, got[i].Payload, types[i], payloads[i])
		}
	}
	// The final cursor is the file size: nothing was skipped or re-read.
	st, err := os.Stat(path)
	if err != nil || off != st.Size() {
		t.Fatalf("cursor %d != file size %d (err=%v)", off, st.Size(), err)
	}
}

func TestReadWALTailStopsAtTornTailWithoutTruncating(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := w.Append(RecordEvents, []byte("intact"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(RecordDocs, []byte("in flight")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the second record mid-payload, as a concurrent append would look.
	if err := os.Truncate(path, int64(n1)+walHeaderLen+3); err != nil {
		t.Fatal(err)
	}
	sizeBefore, _ := os.Stat(path)

	recs, off, err := ReadWALTail(path, 0, 100, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "intact" {
		t.Fatalf("recs = %+v", recs)
	}
	if off != int64(n1) {
		t.Fatalf("cursor %d, want %d (end of last intact record)", off, n1)
	}
	// Crucially, the tail reader must NOT repair the file — the torn bytes may
	// be a live append racing this read.
	sizeAfter, _ := os.Stat(path)
	if sizeAfter.Size() != sizeBefore.Size() {
		t.Fatalf("tail read changed file size %d -> %d", sizeBefore.Size(), sizeAfter.Size())
	}

	// Retrying from the cursor after the "append" completes sees the record.
	if err := os.Truncate(path, int64(n1)); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Append(RecordDocs, []byte("in flight")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	recs2, off2, err := ReadWALTail(path, off, 100, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != 1 || string(recs2[0].Payload) != "in flight" || off2 <= off {
		t.Fatalf("resume read = %+v off=%d", recs2, off2)
	}
}

func TestReadWALTailMissingFile(t *testing.T) {
	recs, off, err := ReadWALTail(filepath.Join(t.TempDir(), "nope.log"), 42, 10, 1<<20)
	if err != nil || recs != nil || off != 42 {
		t.Fatalf("recs=%v off=%d err=%v", recs, off, err)
	}
}

func TestReadWALTailByteBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("x"), 1000)
	for i := 0; i < 5; i++ {
		if _, err := w.Append(RecordEvents, big); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Budget below one payload still yields one record (progress guarantee),
	// a 1500-byte budget yields two.
	recs, _, err := ReadWALTail(path, 0, 100, 10)
	if err != nil || len(recs) != 1 {
		t.Fatalf("tiny budget: %d records err=%v", len(recs), err)
	}
	recs, _, err = ReadWALTail(path, 0, 100, 1500)
	if err != nil || len(recs) != 2 {
		t.Fatalf("1500B budget: %d records err=%v", len(recs), err)
	}
}
