package durable

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// ManifestName is the per-index manifest file, the single commit point for
// the snapshot protocol: whichever (segments, WAL) set it names is the
// recovery source; everything else in the directory is an orphan from an
// interrupted snapshot or compaction and is ignored, then cleaned.
const ManifestName = "MANIFEST"

// manifestVersion is the current manifest schema. Version 1 named at most
// one monolithic segment (HasSegment/SegmentSeq); version 2 carries the
// leveled segment list. LoadManifest migrates v1 in place so the rest of
// the system only ever sees the leveled form.
const manifestVersion = 2

// SegmentMeta describes one committed immutable segment in the leveled
// layout. Segments are listed in ascending row order; StartRow is the global
// row id of the segment's first row, and EndRow is one past its last.
// Rows may be less than EndRow-StartRow when retention or compaction left
// interior gaps (the file encodes explicit per-row ids, so sparse segments
// are first-class).
type SegmentMeta struct {
	Seq      int   `json:"seq"`
	Level    int   `json:"level"`
	Rows     int64 `json:"rows"`
	StartRow int64 `json:"start_row"`
	EndRow   int64 `json:"end_row"`
	// MinTime/MaxTime bound time_enter_ns over the segment's timed rows,
	// the basis for query-time segment pruning. An empty range
	// (MinTime > MaxTime) means no row carries a numeric time; an unknown
	// range (MinTime = math.MinInt64, MaxTime = math.MaxInt64, the v1
	// migration default) overlaps everything and is never pruned.
	MinTime int64 `json:"min_time"`
	MaxTime int64 `json:"max_time"`
	Bytes   int64 `json:"bytes"`
	// Generic counts the segment's generic (schemaless) rows. Recovery that
	// leaves segments cold on disk still needs the index's generic-row count
	// (it gates integer range-bound folding in query-cache keys), and this
	// field supplies it without reading the file. Unknown (v1-era) metas
	// carry 0 alongside Rows < 0 and are fixed up on first read.
	Generic int64 `json:"generic,omitempty"`
}

// TimeUnknown reports whether the segment's time range was never stamped
// (a v1-era segment): it must be treated as overlapping every filter.
func (s SegmentMeta) TimeUnknown() bool {
	return s.MinTime == math.MinInt64 && s.MaxTime == math.MaxInt64
}

// Overlaps reports whether the segment's time range intersects [min, max].
func (s SegmentMeta) Overlaps(min, max int64) bool {
	return s.MinTime <= max && s.MaxTime >= min
}

// Manifest names the committed recovery sources of one index directory.
type Manifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
	WALSeq  int `json:"wal_seq"`
	// SegmentSeq is the next unused segment sequence number: every committed
	// segment's Seq is below it, and new segments (flush or compaction
	// output) claim it and increment. (In v1 manifests it named the single
	// committed segment; LoadManifest migrates.)
	SegmentSeq int `json:"segment_seq"`
	// Segments is the leveled segment list in ascending StartRow order.
	// Committing a manifest with a changed list is the atomic multi-segment
	// commit point: flushes append one entry, compactions replace a run with
	// its merged output, retention deletes a prefix.
	Segments []SegmentMeta `json:"segments,omitempty"`
	// HasSegment/v1 compatibility: retained on read only (see LoadManifest).
	HasSegment bool `json:"has_segment,omitempty"`
	// BaseSeq is the replication sequence number of the live WAL's first
	// record: every record folded into committed segments has a sequence
	// below it. The index head sequence is BaseSeq plus the live WAL's record
	// count, which is how recovery re-derives it without a full history.
	// Manifests written before replication existed carry 0, which is exactly
	// right — their WAL has held every record since sequence zero.
	BaseSeq int64 `json:"base_seq,omitempty"`
	// ReplOffset is a follower's alignment to its primary: primary sequence ==
	// local sequence + ReplOffset. Non-zero only after a bootstrap (the
	// follower's local journal starts mid-stream); primaries keep 0.
	ReplOffset int64 `json:"repl_offset,omitempty"`
	// RetentionFloor is one past the highest row id ever dropped by the
	// retention horizon. Rows at or above it are never dropped out from under
	// a paging cursor, which is what lets an unsorted search_after cursor
	// below the floor fail loudly (expired) instead of silently skipping.
	RetentionFloor int64 `json:"retention_floor,omitempty"`
	// Rewrites is the store's pending post-flush row-rewrite overlay,
	// serialized by the store (opaque bytes here) and re-applied during
	// recovery after segments load and before WAL replay. It rides in the
	// manifest rather than the WAL so persisting it never advances the
	// replication sequence.
	Rewrites []byte `json:"rewrites,omitempty"`
}

// SegmentRows sums the row counts of every listed segment (the Σsegments
// term of the recovery conservation invariant).
func (m Manifest) SegmentRows() int64 {
	var n int64
	for _, s := range m.Segments {
		n += s.Rows
	}
	return n
}

// SegmentEnd returns one past the last row covered by any listed segment
// (0 with no segments): the row id where the live WAL's coverage begins.
func (m Manifest) SegmentEnd() int64 {
	if len(m.Segments) == 0 {
		return 0
	}
	return m.Segments[len(m.Segments)-1].EndRow
}

// Contiguous reports whether the listed segments densely cover rows
// [0, SegmentEnd()) with no interior gaps — the precondition for loading
// them back into shard memory as if they were one monolithic snapshot.
func (m Manifest) Contiguous() bool {
	var next int64
	for _, s := range m.Segments {
		if s.StartRow != next || s.Rows != s.EndRow-s.StartRow {
			return false
		}
		next = s.EndRow
	}
	return true
}

// WALName formats the WAL filename for sequence number seq.
func WALName(seq int) string { return fmt.Sprintf("wal-%06d.log", seq) }

// SegmentName formats the segment filename for sequence number seq.
func SegmentName(seq int) string { return fmt.Sprintf("seg-%06d.snap", seq) }

// LoadManifest reads the manifest in dir. A missing manifest returns
// (zero manifest, false, nil): the directory is fresh (or a crash happened
// before the first commit) and recovery starts empty with WAL seq 0.
//
// Version 1 manifests (one monolithic HasSegment/SegmentSeq snapshot) are
// migrated to the leveled form in memory: the single segment becomes a
// one-entry list with Rows/EndRow = -1 (unknown until the file is read) and
// an unknown time range, and SegmentSeq advances to the next free sequence.
func LoadManifest(dir string) (Manifest, bool, error) {
	var m Manifest
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return m, false, nil
		}
		return m, false, fmt.Errorf("durable: read manifest: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, false, fmt.Errorf("durable: parse manifest: %w", err)
	}
	if m.Version < manifestVersion && len(m.Segments) == 0 && m.HasSegment {
		m.Segments = []SegmentMeta{{
			Seq:      m.SegmentSeq,
			Level:    0,
			Rows:     -1,
			StartRow: 0,
			EndRow:   -1,
			MinTime:  math.MinInt64,
			MaxTime:  math.MaxInt64,
		}}
		m.SegmentSeq++
	}
	m.Version = manifestVersion
	m.HasSegment = false
	return m, true, nil
}

// CommitManifest atomically publishes m as dir's manifest. After it returns,
// a crash at any point recovers from exactly the state m names.
func CommitManifest(dir string, m Manifest) error {
	m.Version = manifestVersion
	m.HasSegment = false
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("durable: encode manifest: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, ManifestName), data); err != nil {
		return fmt.Errorf("durable: commit manifest: %w", err)
	}
	return nil
}

// CleanOrphans removes files in dir left behind by an interrupted snapshot
// or compaction: segment temporaries, any wal-* whose sequence number is not
// the committed one, and any seg-* the manifest's leveled list does not
// reference (e.g. a compaction output written but never committed). Removal
// is best-effort — recovery correctness never depends on it, only disk
// hygiene does. CleanOrphans only ever runs against the committed manifest,
// which lists every live segment; the store's locking protocol makes that
// sufficient: segment-list changes commit while holding the index's snapshot
// gate plus every shard write lock, obsolete files are deleted only after
// those locks are released (so in-flight readers of the old list have
// finished), and replication bootstrap streams segment files while holding
// the gate exclusively, which excludes any concurrent commit or cleanup.
func CleanOrphans(dir string, m Manifest) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	keepWAL := WALName(m.WALSeq)
	keepSegs := make(map[string]bool, len(m.Segments))
	for _, s := range m.Segments {
		keepSegs[SegmentName(s.Seq)] = true
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
		case strings.HasPrefix(name, "wal-") && name != keepWAL:
		case strings.HasPrefix(name, "seg-") && !keepSegs[name]:
		default:
			continue
		}
		_ = os.Remove(filepath.Join(dir, name))
	}
}
