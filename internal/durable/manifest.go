package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// ManifestName is the per-index manifest file, the single commit point for
// the snapshot protocol: whichever (segment, WAL) pair it names is the
// recovery source; everything else in the directory is an orphan from an
// interrupted snapshot and is ignored, then cleaned.
const ManifestName = "MANIFEST"

// Manifest names the committed recovery sources of one index directory.
type Manifest struct {
	Version    int  `json:"version"`
	Shards     int  `json:"shards"`
	WALSeq     int  `json:"wal_seq"`
	SegmentSeq int  `json:"segment_seq"`
	HasSegment bool `json:"has_segment"`
	// BaseSeq is the replication sequence number of the live WAL's first
	// record: every record folded into the committed segment has a sequence
	// below it. The index head sequence is BaseSeq plus the live WAL's record
	// count, which is how recovery re-derives it without a full history.
	// Manifests written before replication existed carry 0, which is exactly
	// right — their WAL has held every record since sequence zero.
	BaseSeq int64 `json:"base_seq,omitempty"`
	// ReplOffset is a follower's alignment to its primary: primary sequence ==
	// local sequence + ReplOffset. Non-zero only after a bootstrap (the
	// follower's local journal starts mid-stream); primaries keep 0.
	ReplOffset int64 `json:"repl_offset,omitempty"`
}

// WALName formats the WAL filename for sequence number seq.
func WALName(seq int) string { return fmt.Sprintf("wal-%06d.log", seq) }

// SegmentName formats the segment filename for sequence number seq.
func SegmentName(seq int) string { return fmt.Sprintf("seg-%06d.snap", seq) }

// LoadManifest reads the manifest in dir. A missing manifest returns
// (zero manifest, false, nil): the directory is fresh (or a crash happened
// before the first commit) and recovery starts empty with WAL seq 0.
func LoadManifest(dir string) (Manifest, bool, error) {
	var m Manifest
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return m, false, nil
		}
		return m, false, fmt.Errorf("durable: read manifest: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, false, fmt.Errorf("durable: parse manifest: %w", err)
	}
	return m, true, nil
}

// CommitManifest atomically publishes m as dir's manifest. After it returns,
// a crash at any point recovers from exactly the state m names.
func CommitManifest(dir string, m Manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("durable: encode manifest: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, ManifestName), data); err != nil {
		return fmt.Errorf("durable: commit manifest: %w", err)
	}
	return nil
}

// CleanOrphans removes files in dir left behind by an interrupted snapshot:
// segment temporaries, and any wal-*/seg-* whose sequence number is not the
// committed one. Removal is best-effort — recovery correctness never depends
// on it, only disk hygiene does.
func CleanOrphans(dir string, m Manifest) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	keepWAL := WALName(m.WALSeq)
	keepSeg := SegmentName(m.SegmentSeq)
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
		case strings.HasPrefix(name, "wal-") && name != keepWAL:
		case strings.HasPrefix(name, "seg-") && (name != keepSeg || !m.HasSegment):
		default:
			continue
		}
		_ = os.Remove(filepath.Join(dir, name))
	}
}
