package durable

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/dsrhaslab/dio-go/internal/event"
)

// mergedRow is one surviving row of a compaction: its absolute global row id
// plus the row payload (and, for generic documents, the extracted time so
// the merged segment's pruning range stays tight).
type mergedRow struct {
	gid int64
	row SegmentRow
}

// mergedSource adapts the merged row list to WriteSegment, emitting explicit
// segment-local ids relative to base (sparse when the inputs had interior
// retention gaps).
type mergedSource struct {
	rows []mergedRow
	base int64
}

func (m *mergedSource) NumRows() int         { return len(m.rows) }
func (m *mergedSource) Row(i int) SegmentRow { return m.rows[i].row }
func (m *mergedSource) Gid(i int) int        { return int(m.rows[i].gid - m.base) }

// RewriteOverlay carries the store's pending row rewrites into a merge: for
// each input row it may return a replacement payload (folding post-flush
// update-by-query rewrites into the immutable output so recovery no longer
// depends on re-applying them). It is a callback rather than a map because
// only the caller knows how to re-encode a rewritten document in the row's
// original representation (typed event vs generic document) — it receives
// the row as stored and answers (replacement, replaced, error).
type RewriteOverlay func(gid int64, ev *event.Event, doc []byte) (SegmentRow, bool, error)

// MergeSegments reads the committed segments described by metas (ascending
// StartRow order, files resolved in dir) and writes their union as one
// segment with sequence outSeq, applying overlay rewrites (nil = none)
// along the way.
// Generic documents are opaque here, so docTime (nil = no generic row is
// timed) extracts their time_enter_ns to keep the merged pruning range
// sound. It returns the merged segment's metadata at level = max input
// level + 1. The inputs are immutable committed files, so no locks are
// needed; the caller commits the returned meta (replacing the inputs) under
// its manifest lock, or deletes the output file if the commit is abandoned.
func MergeSegments(dir string, metas []SegmentMeta, outSeq, shards int, overlay RewriteOverlay, docTime func([]byte) (int64, bool)) (SegmentMeta, error) {
	if len(metas) == 0 {
		return SegmentMeta{}, fmt.Errorf("durable: merge of zero segments")
	}
	var rows []mergedRow
	level := 0
	for _, sm := range metas {
		if sm.Level > level {
			level = sm.Level
		}
		start := sm.StartRow
		_, err := ReadSegment(filepath.Join(dir, SegmentName(sm.Seq)), func(gid int, ev *event.Event, doc []byte) error {
			abs := start + int64(gid)
			var row SegmentRow
			if overlay != nil {
				ov, replaced, oerr := overlay(abs, ev, doc)
				if oerr != nil {
					return oerr
				}
				if replaced {
					rows = append(rows, mergedRow{gid: abs, row: ov})
					return nil
				}
			}
			if ev != nil {
				e := *ev
				row = SegmentRow{Event: &e}
			} else {
				row = SegmentRow{Doc: doc}
				if docTime != nil {
					row.DocTime, row.DocTimed = docTime(doc)
				}
			}
			rows = append(rows, mergedRow{gid: abs, row: row})
			return nil
		})
		if err != nil {
			return SegmentMeta{}, fmt.Errorf("durable: merge read %s: %w", SegmentName(sm.Seq), err)
		}
	}
	base := metas[0].StartRow
	src := &mergedSource{rows: rows, base: base}
	info, err := WriteSegment(filepath.Join(dir, SegmentName(outSeq)), shards, src)
	if err != nil {
		return SegmentMeta{}, err
	}
	end := metas[len(metas)-1].EndRow
	return SegmentMeta{
		Seq:      outSeq,
		Level:    level + 1,
		Rows:     int64(len(rows)),
		StartRow: base,
		EndRow:   end,
		MinTime:  info.MinTime,
		MaxTime:  info.MaxTime,
		Bytes:    info.Bytes,
		Generic:  int64(info.Generic),
	}, nil
}

// RemoveSegment deletes a segment file best-effort (compaction/retention
// cleanup once the manifest no longer references it and all readers have
// released it).
func RemoveSegment(dir string, seq int) {
	_ = os.Remove(filepath.Join(dir, SegmentName(seq)))
}
