package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/dsrhaslab/dio-go/internal/event"
)

func testEvent(i int) event.Event {
	return event.Event{
		Session:     "sess",
		Syscall:     "pwrite64",
		Class:       "write",
		RetVal:      int64(i),
		FD:          3,
		ArgPath:     "/var/log/app.log",
		Count:       4096,
		ArgOff:      int64(i) * 4096,
		PID:         1234,
		TID:         1234 + i,
		ProcName:    "app",
		ThreadName:  "worker",
		TimeEnterNS: 1700000000000000000 + int64(i)*1000, // > 2^53: must survive exactly
		TimeExitNS:  1700000000000000000 + int64(i)*1000 + 500,
		FileTag:     event.FileTag{Dev: 0x801, Ino: uint64(100 + i), BirthNS: 42},
		FileType:    "regular",
		Offset:      int64(i) * 4096,
		HasOffset:   true,
		KernelPath:  "/var/log/app.log",
		FilePath:    "/var/log/app.log",
	}
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("alpha"), []byte("beta"), {}, []byte("gamma")}
	types := []RecordType{RecordEvents, RecordDocs, RecordRewrite, RecordEvents}
	total := 0
	for i, p := range payloads {
		n, err := w.Append(types[i], p)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if w.Size() != int64(total) {
		t.Fatalf("size %d != appended %d", w.Size(), total)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(RecordEvents, []byte("x")); err == nil {
		t.Fatal("append after close should fail")
	}
	var gotT []RecordType
	var gotP [][]byte
	stats, err := ReplayWAL(path, func(rt RecordType, payload []byte) error {
		gotT = append(gotT, rt)
		gotP = append(gotP, bytes.Clone(payload))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Torn || stats.Records != len(payloads) || stats.Bytes != int64(total) {
		t.Fatalf("stats = %+v", stats)
	}
	if !reflect.DeepEqual(gotT, types) {
		t.Fatalf("types %v != %v", gotT, types)
	}
	for i := range payloads {
		if !bytes.Equal(gotP[i], payloads[i]) {
			t.Fatalf("payload %d mismatch", i)
		}
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	// A torn tail of every flavor: short header, short payload, corrupt CRC.
	cases := []struct {
		name string
		tear func(t *testing.T, path string, goodEnd int64)
	}{
		{"short-header", func(t *testing.T, path string, goodEnd int64) {
			if err := os.Truncate(path, goodEnd+3); err != nil {
				t.Fatal(err)
			}
		}},
		{"short-payload", func(t *testing.T, path string, goodEnd int64) {
			if err := os.Truncate(path, goodEnd+walHeaderLen+2); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupt-crc", func(t *testing.T, path string, goodEnd int64) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[goodEnd+walHeaderLen] ^= 0xFF
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal-000000.log")
			w, err := OpenWAL(path)
			if err != nil {
				t.Fatal(err)
			}
			n1, err := w.Append(RecordEvents, []byte("keep me"))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Append(RecordDocs, []byte("tear me apart")); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			tc.tear(t, path, int64(n1))

			var got [][]byte
			stats, err := ReplayWAL(path, func(rt RecordType, payload []byte) error {
				got = append(got, bytes.Clone(payload))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if !stats.Torn || stats.Records != 1 || stats.Bytes != int64(n1) {
				t.Fatalf("stats = %+v, want torn with 1 record at %d", stats, n1)
			}
			if len(got) != 1 || string(got[0]) != "keep me" {
				t.Fatalf("replayed %q", got)
			}
			// Truncation repaired the file: a second replay sees a clean log,
			// and appending continues from the intact boundary.
			stats2, err := ReplayWAL(path, func(RecordType, []byte) error { return nil })
			if err != nil {
				t.Fatal(err)
			}
			if stats2.Torn || stats2.Records != 1 {
				t.Fatalf("post-repair stats = %+v", stats2)
			}
			w2, err := OpenWAL(path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w2.Append(RecordEvents, []byte("after repair")); err != nil {
				t.Fatal(err)
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			stats3, err := ReplayWAL(path, func(RecordType, []byte) error { return nil })
			if err != nil {
				t.Fatal(err)
			}
			if stats3.Torn || stats3.Records != 2 {
				t.Fatalf("post-append stats = %+v", stats3)
			}
		})
	}
}

func TestWALReplayMissingFile(t *testing.T) {
	stats, err := ReplayWAL(filepath.Join(t.TempDir(), "nope.log"), func(RecordType, []byte) error {
		t.Fatal("callback on missing file")
		return nil
	})
	if err != nil || stats.Records != 0 || stats.Torn {
		t.Fatalf("stats=%+v err=%v", stats, err)
	}
}

func TestWALReplayCallbackErrorAborts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000000.log")
	w, _ := OpenWAL(path)
	w.Append(RecordEvents, []byte("a"))
	w.Append(RecordEvents, []byte("b"))
	w.Close()
	boom := errors.New("boom")
	calls := 0
	_, err := ReplayWAL(path, func(RecordType, []byte) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

// sliceSource adapts a mixed typed/generic row slice to RowSource.
type sliceSource struct {
	rows []SegmentRow
}

func (s sliceSource) NumRows() int         { return len(s.rows) }
func (s sliceSource) Row(i int) SegmentRow { return s.rows[i] }

func TestSegmentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentName(1))
	evs := make([]event.Event, 5)
	for i := range evs {
		evs[i] = testEvent(i)
	}
	evs[2].HasOffset = false
	evs[2].Offset = 0
	evs[3].ArgPath2 = "/tmp/renamed"
	rows := []SegmentRow{
		{Event: &evs[0]},
		{Doc: []byte("generic-one")},
		{Event: &evs[1]},
		{Event: &evs[2]},
		{Doc: []byte("generic-two")},
		{Event: &evs[3]},
		{Event: &evs[4]},
	}
	winfo, err := WriteSegment(path, 8, sliceSource{rows})
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() != winfo.Bytes {
		t.Fatalf("size %d on disk vs %d reported (err=%v)", st.Size(), winfo.Bytes, err)
	}
	if winfo.MinTime != evs[0].TimeEnterNS || winfo.MaxTime != evs[4].TimeEnterNS {
		t.Fatalf("time range [%d, %d], want [%d, %d]",
			winfo.MinTime, winfo.MaxTime, evs[0].TimeEnterNS, evs[4].TimeEnterNS)
	}

	wantGid := 0
	var gotEvents []event.Event
	var gotDocs []string
	info, err := ReadSegment(path, func(gid int, ev *event.Event, doc []byte) error {
		if gid != wantGid {
			t.Fatalf("gid %d out of order, want %d", gid, wantGid)
		}
		wantGid++
		if ev != nil {
			gotEvents = append(gotEvents, *ev)
		} else {
			gotDocs = append(gotDocs, string(doc))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards != 8 || info.Rows != 7 || info.Typed != 5 || info.Generic != 2 {
		t.Fatalf("info = %+v", info)
	}
	want := []event.Event{evs[0], evs[1], evs[2], evs[3], evs[4]}
	if !reflect.DeepEqual(gotEvents, want) {
		t.Fatalf("typed rows did not round-trip:\n got %+v\nwant %+v", gotEvents, want)
	}
	if !reflect.DeepEqual(gotDocs, []string{"generic-one", "generic-two"}) {
		t.Fatalf("generic rows %v", gotDocs)
	}
}

func TestSegmentEmptyAndAllTyped(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, SegmentName(1))
	if _, err := WriteSegment(empty, 4, sliceSource{}); err != nil {
		t.Fatal(err)
	}
	info, err := ReadSegment(empty, func(int, *event.Event, []byte) error {
		t.Fatal("no rows expected")
		return nil
	})
	if err != nil || info.Rows != 0 || info.Shards != 4 {
		t.Fatalf("info=%+v err=%v", info, err)
	}
}

func TestSegmentCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentName(1))
	ev := testEvent(0)
	if _, err := WriteSegment(path, 4, sliceSource{[]SegmentRow{{Event: &ev}}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func([]byte) []byte{
		"flip-body-byte": func(d []byte) []byte { d[segHeaderLen+2] ^= 0x55; return d },
		"truncate":       func(d []byte) []byte { return d[:len(d)/2] },
		"too-short":      func(d []byte) []byte { return d[:6] },
	}
	for name, mut := range mutations {
		t.Run(name, func(t *testing.T) {
			bad := filepath.Join(dir, name+".snap")
			if err := os.WriteFile(bad, mut(bytes.Clone(data)), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := ReadSegment(bad, func(int, *event.Event, []byte) error { return nil })
			if !errors.Is(err, ErrCorruptSegment) {
				t.Fatalf("err = %v, want ErrCorruptSegment", err)
			}
		})
	}
}

func TestManifestLifecycle(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := LoadManifest(dir); ok || err != nil {
		t.Fatalf("fresh dir: ok=%v err=%v", ok, err)
	}
	m := Manifest{
		Version: 2, Shards: 8, WALSeq: 3, SegmentSeq: 3,
		Segments: []SegmentMeta{{Seq: 2, Rows: 5, StartRow: 0, EndRow: 5, MinTime: 10, MaxTime: 20}},
	}
	if err := CommitManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadManifest(dir)
	if err != nil || !ok || !reflect.DeepEqual(got, m) {
		t.Fatalf("got=%+v ok=%v err=%v", got, ok, err)
	}
	// Orphans from an interrupted snapshot: stale wal, stale seg, tmp file.
	for _, name := range []string{WALName(2), SegmentName(1), SegmentName(3) + ".tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("orphan"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{WALName(3), SegmentName(2)} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("live"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	CleanOrphans(dir, m)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	want := []string{ManifestName, SegmentName(2), WALName(3)}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("after clean: %v, want %v", names, want)
	}
}

func TestManifestV1Migration(t *testing.T) {
	dir := t.TempDir()
	v1 := []byte(`{"version":1,"shards":8,"wal_seq":3,"segment_seq":2,"has_segment":true}`)
	if err := os.WriteFile(filepath.Join(dir, ManifestName), v1, 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got.Version != 2 || got.HasSegment || got.SegmentSeq != 3 || len(got.Segments) != 1 {
		t.Fatalf("migrated = %+v", got)
	}
	sm := got.Segments[0]
	if sm.Seq != 2 || sm.Rows != -1 || sm.StartRow != 0 || sm.EndRow != -1 || !sm.TimeUnknown() {
		t.Fatalf("migrated segment = %+v", sm)
	}
}

func TestManifestCorruptIsError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadManifest(dir); err == nil {
		t.Fatal("corrupt manifest should be an error, not a fresh start")
	}
}
