package experiments

import (
	"context"

	"fmt"
	"sort"
	"time"

	"github.com/dsrhaslab/dio-go/internal/apps/dbbench"
	"github.com/dsrhaslab/dio-go/internal/apps/lsmkv"
	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/ebpf"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/metrics"
	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/viz"
)

// RocksDBConfig parametrizes the §III-C reproduction. The defaults shrink
// the paper's 5-hour run to a few wall-clock seconds while preserving the
// mechanism: a shared disk, 8 closed-loop clients, 1 flush thread, and 7
// compaction threads whose bursts of I/O inflate client tail latency.
type RocksDBConfig struct {
	// Duration is the timed benchmark phase.
	Duration time.Duration
	// Clients is the number of db_bench threads.
	Clients int
	// CompactionThreads is the number of rocksdb:lowX threads.
	CompactionThreads int
	// KeyCount / ValueBytes shape the YCSB-A workload.
	KeyCount   int
	ValueBytes int
	// WindowNS is the latency/timeline window width.
	WindowNS int64
	// Trace enables DIO tracing of the run (Fig. 4 needs it; a vanilla
	// latency-only run for Fig. 3 can disable it).
	Trace bool
	// RingBytes overrides the tracer's per-CPU ring capacity.
	RingBytes int
}

func (c RocksDBConfig) withDefaults() RocksDBConfig {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.CompactionThreads <= 0 {
		c.CompactionThreads = 7
	}
	if c.KeyCount <= 0 {
		c.KeyCount = 5_000
	}
	if c.ValueBytes <= 0 {
		c.ValueBytes = 512
	}
	if c.WindowNS <= 0 {
		c.WindowNS = int64(100 * time.Millisecond)
	}
	return c
}

// WindowActivity summarizes one time window of the RocksDB run, joining
// the client-side latency view (Fig. 3) with the thread-level syscall view
// (Fig. 4).
type WindowActivity struct {
	StartNS int64
	// P99NS is the 99th percentile client latency in the window.
	P99NS float64
	// ClientOps is the number of client operations completed.
	ClientOps int
	// ClientSyscalls is the number of db_bench syscalls traced (Fig. 4's
	// db_bench series).
	ClientSyscalls int
	// CompactionThreadsActive is how many distinct rocksdb:lowX threads
	// issued syscalls in the window (the red-box indicator of Fig. 4).
	CompactionThreadsActive int
	// CompactionSyscalls counts their syscalls.
	CompactionSyscalls int
	// FlushSyscalls counts rocksdb:high0 syscalls.
	FlushSyscalls int
}

// RocksDBResult is the output of the §III-C reproduction.
type RocksDBResult struct {
	// Latency is the Fig. 3 series (p99 per window).
	Latency []metrics.WindowPoint
	// Timeline is the Fig. 4 view (syscalls per window per thread).
	Timeline *viz.TimeSeries
	// Windows joins both views for analysis.
	Windows []WindowActivity
	// Bench summarizes the client workload.
	Bench dbbench.Result
	// Tracer summarizes the DIO session (zero when tracing is disabled).
	Tracer core.Stats
	// Backend retains the store for further queries (nil when untraced).
	Backend *store.Store
	Session string
	Index   string
}

// ContentionCorrelation returns the mean p99 latency of windows where at
// least minBusy compaction threads were active versus windows with at most
// maxQuiet active — the quantified version of the paper's Fig. 3/4
// contrast between intervals with ≥5 compacting threads and intervals with
// only 1–2. Windows in between are ignored.
func (r *RocksDBResult) ContentionCorrelation(minBusy, maxQuiet int) (busyP99, quietP99 float64, busyN, quietN int) {
	var busySum, quietSum float64
	for _, w := range r.Windows {
		if w.ClientOps == 0 {
			continue
		}
		switch {
		case w.CompactionThreadsActive >= minBusy:
			busySum += w.P99NS
			busyN++
		case w.CompactionThreadsActive <= maxQuiet:
			quietSum += w.P99NS
			quietN++
		}
	}
	if busyN > 0 {
		busyP99 = busySum / float64(busyN)
	}
	if quietN > 0 {
		quietP99 = quietSum / float64(quietN)
	}
	return busyP99, quietP99, busyN, quietN
}

// RunRocksDB reproduces Figures 3 and 4: it runs db_bench (YCSB-A) against
// the LSM store on a shared disk while DIO traces the open/read/write/close
// syscalls of the database process, then builds the latency series and the
// per-thread syscall timeline.
func RunRocksDB(cfg RocksDBConfig) (RocksDBResult, error) {
	cfg = cfg.withDefaults()
	// A modest disk makes background compaction I/O contend visibly with
	// foreground requests, as in the paper's testbed.
	k := kernel.New(kernel.Config{
		Clock: clock.NewReal(0),
		// A modest device: foreground requests are cheap (hundreds of
		// bytes), while compaction jobs stream hundreds of kilobytes and
		// occupy the queue for milliseconds at a time.
		Disk: kernel.DiskConfig{
			BytesPerSecond: 50 << 20,
			PerOpLatency:   20 * time.Microsecond,
		},
	})

	db, err := lsmkv.Open(k, lsmkv.Config{
		Dir:               "/db",
		MemtableBytes:     96 << 10,
		L0CompactTrigger:  4,
		L0StallTrigger:    10,
		LevelBaseBytes:    256 << 10,
		LevelMultiplier:   4,
		MaxLevels:         5,
		TargetFileBytes:   128 << 10,
		CompactionThreads: cfg.CompactionThreads,
	})
	if err != nil {
		return RocksDBResult{}, fmt.Errorf("open db: %w", err)
	}
	defer db.Close()

	benchCfg := dbbench.Config{
		Clients:     cfg.Clients,
		Duration:    cfg.Duration,
		KeyCount:    cfg.KeyCount,
		ValueBytes:  cfg.ValueBytes,
		PreloadKeys: cfg.KeyCount,
		WindowNS:    cfg.WindowNS,
	}
	if err := dbbench.Preload(db, benchCfg); err != nil {
		return RocksDBResult{}, fmt.Errorf("preload: %w", err)
	}

	res := RocksDBResult{Index: "dio-events", Session: "rocksdb-ycsb-a"}
	var tracer *core.Tracer
	if cfg.Trace {
		res.Backend = store.New()
		tracer, err = core.NewTracer(core.Config{
			SessionName: res.Session,
			Index:       res.Index,
			Backend:     res.Backend,
			// The paper configures DIO to capture exclusively open, read,
			// write, and close; the simulated store also uses the *at and
			// p* variants, which the paper's tracer treats as the same
			// operations.
			Filter: ebpf.Filter{
				Syscalls: []kernel.Syscall{
					kernel.SysOpen, kernel.SysOpenat,
					kernel.SysRead, kernel.SysPread64,
					kernel.SysWrite, kernel.SysPwrite64,
					kernel.SysClose,
				},
				PIDs: []int{db.Process().PID()},
			},
			NumCPU:        4,
			RingBytes:     cfg.RingBytes,
			FlushInterval: 5 * time.Millisecond,
		})
		if err != nil {
			return RocksDBResult{}, fmt.Errorf("new tracer: %w", err)
		}
		if err := tracer.Start(k); err != nil {
			return RocksDBResult{}, fmt.Errorf("start tracer: %w", err)
		}
	}

	bench, berr := dbbench.Run(k, db, benchCfg)
	if tracer != nil {
		stats, terr := tracer.Stop()
		if terr != nil {
			return RocksDBResult{}, fmt.Errorf("stop tracer: %w", terr)
		}
		res.Tracer = stats
	}
	if berr != nil {
		return RocksDBResult{}, fmt.Errorf("bench: %w", berr)
	}
	res.Bench = bench
	res.Latency = bench.Recorder.Series()

	if tracer != nil {
		timeline, verr := viz.SyscallTimeline(res.Backend, res.Index, res.Session, cfg.WindowNS)
		if verr != nil {
			return RocksDBResult{}, fmt.Errorf("timeline: %w", verr)
		}
		res.Timeline = timeline
		res.Windows = joinWindows(res.Latency, res.Backend, res.Index, res.Session, cfg.WindowNS)
	}
	return res, nil
}

// joinWindows merges the latency series with per-thread syscall activity.
func joinWindows(lat []metrics.WindowPoint, b store.Backend, index, session string, windowNS int64) []WindowActivity {
	byStart := make(map[int64]*WindowActivity, len(lat))
	var starts []int64
	for _, p := range lat {
		byStart[p.StartNS] = &WindowActivity{
			StartNS:   p.StartNS,
			P99NS:     p.P99,
			ClientOps: p.Count,
		}
		starts = append(starts, p.StartNS)
	}

	resp, err := b.Search(context.Background(), index, store.SearchRequest{
		Query: store.Term(store.FieldSession, session),
		Size:  1,
		Aggs: map[string]store.Agg{
			"timeline": {
				DateHistogram: &store.DateHistogramAgg{Field: store.FieldTimeEnter, IntervalNS: windowNS},
				Aggs: map[string]store.Agg{
					"by_thread": {Terms: &store.TermsAgg{Field: store.FieldThreadName}},
				},
			},
		},
	})
	if err == nil {
		for _, bkt := range resp.Aggs["timeline"].Buckets {
			w, ok := byStart[int64(bkt.KeyNum)]
			if !ok {
				w = &WindowActivity{StartNS: int64(bkt.KeyNum)}
				byStart[w.StartNS] = w
				starts = append(starts, w.StartNS)
			}
			for _, sub := range bkt.Sub["by_thread"].Buckets {
				switch {
				case sub.Key == "db_bench":
					w.ClientSyscalls += sub.Count
				case sub.Key == "rocksdb:high0":
					w.FlushSyscalls += sub.Count
				case len(sub.Key) > 11 && sub.Key[:11] == "rocksdb:low":
					w.CompactionThreadsActive++
					w.CompactionSyscalls += sub.Count
				}
			}
		}
	}

	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	out := make([]WindowActivity, 0, len(starts))
	seen := make(map[int64]bool, len(starts))
	for _, s := range starts {
		if seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, *byStart[s])
	}
	return out
}
