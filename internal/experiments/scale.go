package experiments

import (
	"fmt"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/viz"
)

// ScaleConfig parametrizes the backend/tracer scalability experiment.
type ScaleConfig struct {
	// Docs is the index size for the query measurements (default 120k — the
	// order of magnitude of one short tracing session).
	Docs int
	// Reps is how many times each query is repeated per strategy.
	Reps int
	// Writes is the syscall count for the drain-throughput measurement.
	Writes int
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.Docs <= 0 {
		c.Docs = 120_000
	}
	if c.Reps <= 0 {
		c.Reps = 5
	}
	if c.Writes <= 0 {
		c.Writes = 30_000
	}
	return c
}

// ScalePoint is one measurement: the legacy (serial full-scan) strategy
// against the sharded parallel execution.
type ScalePoint struct {
	Name      string
	LegacyNS  int64
	ShardedNS int64
}

// Speedup is legacy time over sharded time.
func (p ScalePoint) Speedup() float64 {
	if p.ShardedNS == 0 {
		return 0
	}
	return float64(p.LegacyNS) / float64(p.ShardedNS)
}

// ScaleResult is the output of the scalability experiment.
type ScaleResult struct {
	Points []ScalePoint
	// DrainSingleEPS and DrainMultiEPS are tracer drain throughputs
	// (shipped events per second) with one drain worker versus one worker
	// per CPU ring.
	DrainSingleEPS float64
	DrainMultiEPS  float64
	Table          *viz.Table
}

// RunScale measures what the sharded backend buys over the original serial
// implementation at session scale: filtered+sorted search, dashboard-style
// aggregation fan-out, count, and correlation rewrite over a 100k+ document
// index, plus tracer drain throughput with one consumer versus one consumer
// per CPU ring. The paper's pipeline stands or falls on this path: DIO
// ingests hundreds of millions of events per run and serves interactive
// queries over them (§II-F, §III-D).
func RunScale(cfg ScaleConfig) (ScaleResult, error) {
	cfg = cfg.withDefaults()
	ix := buildScaleIndex(cfg.Docs)

	searchReq := store.SearchRequest{
		Query: store.Query{Bool: &store.BoolQuery{Must: []store.Query{
			store.Term(store.FieldSyscall, "write"),
			store.RangeGTE(store.FieldDuration, 500),
		}}},
		Sort: []store.SortField{{Field: store.FieldTimeEnter, Desc: true}},
		Size: 50,
	}
	aggReq := store.SearchRequest{
		Query: store.MatchAll(),
		Size:  1,
		Aggs: map[string]store.Agg{
			"timeline": {DateHistogram: &store.DateHistogramAgg{
				Field: store.FieldTimeEnter, IntervalNS: 10_000_000,
			}},
			"by_sys": {Terms: &store.TermsAgg{Field: store.FieldSyscall}},
			"lat":    {Percentiles: &store.PercentilesAgg{Field: store.FieldDuration}},
			"stats":  {Stats: &store.StatsAgg{Field: store.FieldDuration}},
		},
	}
	countQ := store.RangeBetween(store.FieldDuration, 100, 900)

	res := ScaleResult{}
	res.Points = append(res.Points,
		measure(ix, cfg.Reps, "search (filter+sort, top 50)", func() {
			ix.Search(searchReq)
		}),
		measure(ix, cfg.Reps, "aggregation fan-out (4 aggs)", func() {
			ix.Search(aggReq)
		}),
		measure(ix, cfg.Reps, "count (range)", func() {
			ix.Count(countQ)
		}),
	)

	single, multi, err := drainThroughput(cfg.Writes)
	if err != nil {
		return ScaleResult{}, err
	}
	res.DrainSingleEPS, res.DrainMultiEPS = single, multi

	res.Table = &viz.Table{
		Title:   "Backend sharding + tracer drain scalability",
		Columns: []string{"operation", "legacy", "sharded", "speedup"},
	}
	for _, p := range res.Points {
		res.Table.Rows = append(res.Table.Rows, []string{
			p.Name,
			fmt.Sprintf("%.2fms", float64(p.LegacyNS)/1e6),
			fmt.Sprintf("%.2fms", float64(p.ShardedNS)/1e6),
			fmt.Sprintf("%.2fx", p.Speedup()),
		})
	}
	res.Table.Rows = append(res.Table.Rows, []string{
		"tracer drain (events/s)",
		fmt.Sprintf("%.0f", res.DrainSingleEPS),
		fmt.Sprintf("%.0f", res.DrainMultiEPS),
		fmt.Sprintf("%.2fx", safeRatio(res.DrainMultiEPS, res.DrainSingleEPS)),
	})
	return res, nil
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// buildScaleIndex fills an index with a session-shaped document mix.
func buildScaleIndex(n int) *store.Index {
	ix := store.NewIndex("scale")
	syscalls := []string{"read", "write", "openat", "close", "fsync", "lseek"}
	batch := make([]store.Document, 0, 4096)
	for i := 0; i < n; i++ {
		batch = append(batch, store.Document{
			store.FieldSession:    "scale",
			store.FieldSyscall:    syscalls[i%len(syscalls)],
			store.FieldProcName:   "app",
			store.FieldThreadName: fmt.Sprintf("t%d", i%16),
			store.FieldTimeEnter:  int64(i) * 1000,
			store.FieldDuration:   int64(i % 997),
		})
		if len(batch) == cap(batch) {
			ix.AddBulk(batch)
			batch = batch[:0]
		}
	}
	ix.AddBulk(batch)
	return ix
}

// measure times op under the legacy strategy and the sharded strategy,
// best-of-reps, warming each path once first.
func measure(ix *store.Index, reps int, name string, op func()) ScalePoint {
	pt := ScalePoint{Name: name}
	ix.SetLegacyScan(true)
	pt.LegacyNS = bestOf(reps, op)
	ix.SetLegacyScan(false)
	pt.ShardedNS = bestOf(reps, op)
	return pt
}

func bestOf(reps int, op func()) int64 {
	op() // warm caches
	best := int64(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		op()
		if d := time.Since(start).Nanoseconds(); best == 0 || d < best {
			best = d
		}
	}
	return best
}

// drainThroughput measures tracer drain throughput (shipped events per
// second of drain wall time) with a single drain worker versus one worker
// per CPU ring. The rings are filled while the workers idle on a long flush
// interval; the timed section is Stop's final drain — parse, batch, and
// ship of the whole backlog, which is where the workers run in parallel on
// a multi-core host.
func drainThroughput(writes int) (single, multi float64, err error) {
	run := func(workers int) (float64, error) {
		k := kernel.New(kernel.Config{
			Clock: clock.NewReal(0),
			Disk:  kernel.DiskConfig{BytesPerSecond: 1 << 40, PerOpLatency: 0},
		})
		if err := k.MkdirAll("/data"); err != nil {
			return 0, err
		}
		tracer, err := core.NewTracer(core.Config{
			SessionName:   fmt.Sprintf("scale-w%d", workers),
			Backend:       store.New(),
			NumCPU:        4,
			RingBytes:     256 << 20,
			FlushInterval: time.Hour, // idle the workers; Stop drains
			BatchSize:     1024,
			DrainWorkers:  workers,
		})
		if err != nil {
			return 0, err
		}
		if err := tracer.Start(k); err != nil {
			return 0, err
		}
		// One producer task per simulated CPU so every ring gets a share.
		buf := make([]byte, 4096)
		for t := 0; t < 4; t++ {
			task := k.NewProcess("storm").NewTask(fmt.Sprintf("storm-%d", t))
			fd, oerr := task.Openat(kernel.AtFDCWD, fmt.Sprintf("/data/s%d.dat", t), kernel.OWronly|kernel.OCreat, 0o644)
			if oerr != nil {
				tracer.Stop()
				return 0, oerr
			}
			for i := 0; i < writes/4; i++ {
				if _, werr := task.Write(fd, buf); werr != nil {
					tracer.Stop()
					return 0, werr
				}
			}
			task.Close(fd)
		}
		start := time.Now()
		stats, serr := tracer.Stop()
		if serr != nil {
			return 0, serr
		}
		elapsed := time.Since(start).Seconds()
		if elapsed <= 0 {
			return 0, nil
		}
		return float64(stats.Shipped) / elapsed, nil
	}
	if single, err = run(1); err != nil {
		return 0, 0, err
	}
	if multi, err = run(0); err != nil { // 0 = one worker per ring
		return 0, 0, err
	}
	return single, multi, nil
}
