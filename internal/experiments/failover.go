package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/repl"
	"github.com/dsrhaslab/dio-go/internal/resilience"
	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/viz"
)

// FailoverConfig parametrizes the primary-loss experiment.
type FailoverConfig struct {
	// Writes is the number of traced writes in the event storm, split evenly
	// across the pre-kill and post-failover phases.
	Writes int
	// DataDir is the durable primary's data directory (empty: a temp dir).
	DataDir string
}

func (c FailoverConfig) withDefaults() FailoverConfig {
	if c.Writes <= 0 {
		c.Writes = 8000
	}
	return c
}

// FailoverResult is the output of the failover experiment.
type FailoverResult struct {
	Stats core.Stats
	// AckedAtKill is the follower's applied sequence when the primary died;
	// PrimaryHeadAtKill is the primary's head at the same instant. Equal
	// values mean replication was fully drained — nothing acked was lost.
	AckedAtKill, PrimaryHeadAtKill int64
	// BackendCount is the promoted node's final document count; it must equal
	// Stats.Shipped for the zero-loss claim to hold.
	BackendCount int
	// Switches is how many times the failover client re-picked its primary.
	Switches uint64
	// Repl is the shipper's final accounting (pushes, retries, bootstraps).
	Repl repl.Stats
	// Lossless reports BackendCount == Shipped && AckedAtKill == PrimaryHeadAtKill.
	Lossless bool
	// Accounted reports the conservation invariant on the tracer side:
	// shipped + dropped + spill dropped + parse errors == captured.
	Accounted bool
	Table     *viz.Table
}

// RunFailover traces an event storm into a replicated pair — a durable
// primary WAL-shipping to a follower over HTTP — then kills the primary
// mid-storm, promotes the follower, and keeps tracing through the
// failover-aware client. The experiment's claim is the robustness analogue
// of the paper's exact-accounting promise: node loss costs no acked event.
// The replication stream is drained before the kill (lag 0), so the
// follower takes over with exactly the primary's state; the tracer's
// resilience ladder absorbs the handover window, and afterward the promoted
// node's count equals the tracer's shipped count exactly.
func RunFailover(cfg FailoverConfig) (FailoverResult, error) {
	cfg = cfg.withDefaults()

	dir := cfg.DataDir
	if dir == "" {
		d, err := os.MkdirTemp("", "dio-failover-")
		if err != nil {
			return FailoverResult{}, err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	primary, err := store.Open(
		store.WithDataDir(dir),
		store.WithFsyncPolicy(store.FsyncInterval),
		store.WithSnapshotInterval(0))
	if err != nil {
		return FailoverResult{}, err
	}
	defer primary.Close()
	psrv := httptest.NewServer(store.NewServer(primary))
	defer psrv.Close()

	follower := store.New()
	follower.SetFollower()
	fsrv := httptest.NewServer(store.NewServer(follower))
	defer fsrv.Close()

	shipper := repl.New(primary, repl.ClientTransport{C: store.NewClient(fsrv.URL)}, repl.Config{
		Interval: 10 * time.Millisecond,
	})
	shipper.Start()

	fo, err := store.NewFailoverClient(store.NewClient(psrv.URL), store.NewClient(fsrv.URL))
	if err != nil {
		return FailoverResult{}, err
	}

	k := kernel.New(kernel.Config{
		Clock: clock.NewReal(0),
		Disk:  kernel.DiskConfig{BytesPerSecond: 1 << 40, PerOpLatency: 0},
	})
	if err := k.MkdirAll("/data"); err != nil {
		return FailoverResult{}, err
	}
	tracer, err := core.NewTracer(core.Config{
		SessionName:   "failover",
		Backend:       fo,
		BatchSize:     256,
		FlushInterval: time.Millisecond,
		Resilience: &resilience.Config{
			MaxAttempts:      5,
			BaseBackoff:      500 * time.Microsecond,
			MaxBackoff:       10 * time.Millisecond,
			BreakerThreshold: 8,
			BreakerCooldown:  5 * time.Millisecond,
		},
	})
	if err != nil {
		return FailoverResult{}, err
	}
	if err := tracer.Start(k); err != nil {
		return FailoverResult{}, err
	}

	task := k.NewProcess("storm").NewTask("storm")
	fd, oerr := task.Openat(kernel.AtFDCWD, "/data/storm.dat", kernel.OWronly|kernel.OCreat, 0o644)
	if oerr != nil {
		tracer.Stop()
		return FailoverResult{}, oerr
	}
	buf := make([]byte, 1024)
	storm := func(n int) error {
		for i := 0; i < n; i++ {
			if _, werr := task.Write(fd, buf); werr != nil {
				return werr
			}
			if i%500 == 499 {
				// Spread the storm over several flush intervals so batches
				// ship while the storm is live, not just at the final drain.
				time.Sleep(2 * time.Millisecond)
			}
		}
		return nil
	}

	// Phase 1: half the storm lands on the primary and replicates.
	if err := storm(cfg.Writes / 2); err != nil {
		tracer.Stop()
		return FailoverResult{}, err
	}
	// Let the in-flight batches flush, then drain replication to lag 0: the
	// experiment isolates the failover itself, not async-replication loss
	// (which the acked-vs-head row would expose).
	time.Sleep(20 * time.Millisecond)
	if err := shipper.Stop(); err != nil {
		tracer.Stop()
		return FailoverResult{}, fmt.Errorf("replication drain: %w", err)
	}
	head, _ := primary.ReplHeadSeq("dio-events")
	acked := follower.ReplStatus().Indices["dio-events"]

	// Kill the primary, then promote the follower. The tracer keeps writing
	// through the gap; the resilience ladder retries until the failover
	// client finds the promoted node.
	psrv.Close()
	follower.Promote()

	// Phase 2: the rest of the storm lands on the promoted node.
	if err := storm(cfg.Writes - cfg.Writes/2); err != nil {
		tracer.Stop()
		return FailoverResult{}, err
	}
	task.Close(fd)
	stats, _ := tracer.Stop()

	count, err := follower.Count(context.Background(), "dio-events", store.MatchAll())
	if err != nil {
		return FailoverResult{}, err
	}

	res := FailoverResult{
		Stats:             stats,
		AckedAtKill:       acked,
		PrimaryHeadAtKill: head,
		BackendCount:      count,
		Switches:          fo.Switches(),
		Repl:              shipper.Stats(),
		Accounted:         stats.Shipped+stats.Dropped+stats.SpillDropped+stats.ParseErrors == stats.Captured,
	}
	res.Lossless = res.BackendCount == int(stats.Shipped) && acked == head
	res.Table = &viz.Table{
		Title:   "Failover: primary kill mid-storm, follower promotion",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"captured", fmt.Sprintf("%d", stats.Captured)},
			{"shipped (acked)", fmt.Sprintf("%d", stats.Shipped)},
			{"ring dropped", fmt.Sprintf("%d", stats.Dropped)},
			{"spill dropped", fmt.Sprintf("%d", stats.SpillDropped)},
			{"retries", fmt.Sprintf("%d", stats.Retries)},
			{"repl records shipped", fmt.Sprintf("%d", res.Repl.ShippedRecords)},
			{"repl pushes / retries", fmt.Sprintf("%d / %d", res.Repl.Pushes, res.Repl.Retries)},
			{"acked@kill / head@kill", fmt.Sprintf("%d / %d", acked, head)},
			{"failover switches", fmt.Sprintf("%d", res.Switches)},
			{"promoted node count", fmt.Sprintf("%d", count)},
			{"lossless", fmt.Sprintf("%v", res.Lossless)},
			{"exact accounting", fmt.Sprintf("%v", res.Accounted)},
		},
	}
	return res, nil
}
