package experiments

import (
	"fmt"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/viz"
)

// DropsConfig parametrizes the §III-D ring-buffer loss experiment.
type DropsConfig struct {
	// RingBytesSweep is the per-CPU ring capacities to test.
	RingBytesSweep []int
	// Writes is the number of back-to-back 4 KiB writes per run (the event
	// storm that outpaces the consumer).
	Writes int
	// FlushInterval throttles the user-space consumer; larger values model
	// a consumer that falls behind (as the paper's did at 549M events).
	FlushInterval time.Duration
}

func (c DropsConfig) withDefaults() DropsConfig {
	if len(c.RingBytesSweep) == 0 {
		c.RingBytesSweep = []int{16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	}
	if c.Writes <= 0 {
		c.Writes = 20_000
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 20 * time.Millisecond
	}
	return c
}

// DropsPoint is one sweep point: ring capacity versus event loss.
type DropsPoint struct {
	RingBytes    int
	Captured     uint64
	Dropped      uint64
	DropFraction float64
}

// DropsResult is the output of the ring-buffer loss experiment.
type DropsResult struct {
	Points []DropsPoint
	Table  *viz.Table
}

// RunDrops reproduces §III-D's I/O events handling observation: a
// fixed-size ring buffer drops events when the kernel produces faster than
// user space consumes (the paper lost ≈3.5% of 549M syscalls at 256 MiB per
// core). The sweep shows the loss shrinking as capacity grows.
func RunDrops(cfg DropsConfig) (DropsResult, error) {
	cfg = cfg.withDefaults()
	out := DropsResult{
		Table: &viz.Table{
			Title:   "§III-D: ring-buffer capacity vs discarded events",
			Columns: []string{"ring bytes/CPU", "captured", "dropped", "drop %"},
		},
	}
	for _, ringBytes := range cfg.RingBytesSweep {
		pt, err := runDropsPoint(ringBytes, cfg)
		if err != nil {
			return DropsResult{}, fmt.Errorf("ring %d: %w", ringBytes, err)
		}
		out.Points = append(out.Points, pt)
		out.Table.Rows = append(out.Table.Rows, []string{
			fmt.Sprintf("%d", pt.RingBytes),
			fmt.Sprintf("%d", pt.Captured),
			fmt.Sprintf("%d", pt.Dropped),
			fmt.Sprintf("%.2f%%", pt.DropFraction*100),
		})
	}
	return out, nil
}

func runDropsPoint(ringBytes int, cfg DropsConfig) (DropsPoint, error) {
	// A very fast disk so the producer outruns the consumer.
	k := kernel.New(kernel.Config{
		Clock: clock.NewReal(0),
		Disk:  kernel.DiskConfig{BytesPerSecond: 1 << 40, PerOpLatency: 0},
	})
	if err := k.MkdirAll("/data"); err != nil {
		return DropsPoint{}, err
	}
	backend := store.New()
	tracer, err := core.NewTracer(core.Config{
		SessionName:   fmt.Sprintf("drops-%d", ringBytes),
		Backend:       backend,
		NumCPU:        1,
		RingBytes:     ringBytes,
		FlushInterval: cfg.FlushInterval,
		BatchSize:     4096,
	})
	if err != nil {
		return DropsPoint{}, err
	}
	if err := tracer.Start(k); err != nil {
		return DropsPoint{}, err
	}

	task := k.NewProcess("storm").NewTask("storm")
	fd, oerr := task.Openat(kernel.AtFDCWD, "/data/storm.dat", kernel.OWronly|kernel.OCreat, 0o644)
	if oerr != nil {
		tracer.Stop()
		return DropsPoint{}, oerr
	}
	buf := make([]byte, 4096)
	for i := 0; i < cfg.Writes; i++ {
		if _, werr := task.Write(fd, buf); werr != nil {
			tracer.Stop()
			return DropsPoint{}, werr
		}
	}
	task.Close(fd)

	stats, serr := tracer.Stop()
	if serr != nil {
		return DropsPoint{}, serr
	}
	return DropsPoint{
		RingBytes:    ringBytes,
		Captured:     stats.Captured,
		Dropped:      stats.Dropped,
		DropFraction: stats.DropFraction(),
	}, nil
}
