package experiments

import (
	"fmt"

	"github.com/dsrhaslab/dio-go/internal/comparators"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/viz"
)

// RunTable1 renders Table I: the 42 storage-related syscalls the tracer
// supports, grouped by class.
func RunTable1() *viz.Table {
	t := &viz.Table{
		Title:   "Table I: syscalls supported by DIO",
		Columns: []string{"class", "syscalls", "count"},
	}
	groups := map[kernel.Class][]string{}
	order := []kernel.Class{
		kernel.ClassData, kernel.ClassMetadata, kernel.ClassExtendedAttr, kernel.ClassDirectory,
	}
	for _, s := range kernel.AllSyscalls() {
		groups[s.Class()] = append(groups[s.Class()], s.String())
	}
	total := 0
	for _, c := range order {
		names := groups[c]
		total += len(names)
		t.Rows = append(t.Rows, []string{c.String(), joinWrapped(names), fmt.Sprintf("%d", len(names))})
	}
	t.Rows = append(t.Rows, []string{"total", "", fmt.Sprintf("%d", total)})
	return t
}

func joinWrapped(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		out += n
	}
	return out
}

// Table2Row is one row of the overhead table, with the paper's reference
// values attached for side-by-side reporting.
type Table2Row struct {
	comparators.OverheadResult
	// PaperOverhead is the slowdown the paper measured on real hardware.
	PaperOverhead float64
}

// Table2Result is the output of the Table II reproduction.
type Table2Result struct {
	Rows  []Table2Row
	Table *viz.Table
}

var paperOverheads = map[comparators.Mode]float64{
	comparators.ModeVanilla: 1.00,
	comparators.ModeSysdig:  1.04,
	comparators.ModeDIO:     1.37,
	comparators.ModeStrace:  1.71,
}

// RunTable2 reproduces Table II with the given number of workload cycles
// (0 selects a default sized for quick runs).
func RunTable2(cycles int) (Table2Result, error) {
	res, err := comparators.RunOverheadExperiment(comparators.OverheadConfig{Cycles: cycles})
	if err != nil {
		return Table2Result{}, fmt.Errorf("overhead experiment: %w", err)
	}
	out := Table2Result{
		Table: &viz.Table{
			Title: "Table II: execution time and overhead per tracer",
			Columns: []string{
				"tracer", "syscalls", "exec time (simulated)", "overhead", "paper overhead",
			},
		},
	}
	for _, r := range res {
		row := Table2Row{OverheadResult: r, PaperOverhead: paperOverheads[r.Mode]}
		out.Rows = append(out.Rows, row)
		out.Table.Rows = append(out.Table.Rows, []string{
			r.Mode.String(),
			fmt.Sprintf("%d", r.Syscalls),
			r.ExecTime.String(),
			fmt.Sprintf("%.2fx", r.Overhead),
			fmt.Sprintf("%.2fx", row.PaperOverhead),
		})
	}
	return out, nil
}

// RunTable3 renders the qualitative tool comparison of Table III.
func RunTable3() *viz.Table {
	return comparators.RenderTable3()
}
