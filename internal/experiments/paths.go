package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/comparators"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/viz"
)

// PathsConfig parametrizes the §III-D path-coverage comparison.
type PathsConfig struct {
	// HotFiles is the number of long-lived files opened before tracing
	// starts (like RocksDB's WAL and already-open SSTables).
	HotFiles int
	// Ops is the number of traced I/O operations.
	Ops int
	// HotFraction is the share of operations against the pre-opened files.
	HotFraction float64
	// SysdigRingBytes is the Sysdig ring size (its small default loses
	// more events, poisoning its fd-table reconstruction).
	SysdigRingBytes int
	// Seed fixes the operation mix.
	Seed int64
}

func (c PathsConfig) withDefaults() PathsConfig {
	if c.HotFiles <= 0 {
		c.HotFiles = 8
	}
	if c.Ops <= 0 {
		c.Ops = 5_000
	}
	if c.HotFraction <= 0 {
		// Cold operations emit three events each (open, write, close), so a
		// 0.71 op-level hot share puts ≈45% of *events* on the pre-opened
		// descriptors — the paper's Sysdig blind spot.
		c.HotFraction = 0.71
	}
	if c.SysdigRingBytes <= 0 {
		c.SysdigRingBytes = comparators.SysdigDefaultRingBytes
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// PathsResult compares path-resolution coverage between DIO and Sysdig.
type PathsResult struct {
	// DIOUnresolved is the fraction of DIO's tagged events without a path
	// after correlation (paper: up to 5%).
	DIOUnresolved float64
	// SysdigUnresolved is the fraction of Sysdig's consumed events without
	// a path (paper: 45%).
	SysdigUnresolved float64
	DIOStats         core.Stats
	SysdigStats      comparators.SysdigStats
	Table            *viz.Table
}

// RunPathResolution reproduces §III-D's coverage comparison. Both tracers
// watch the same workload: a set of hot files opened before tracing
// started receives ≈45% of the I/O, while the rest goes to files opened
// and closed within the session.
//
// DIO resolves the hot files' events because its kernel-side file tags are
// anchored by any in-session path-carrying syscall on the same file
// (periodic stat calls here; re-opens in RocksDB). Sysdig reconstructs
// fd→path mappings purely from the open events it consumed, so descriptors
// opened before attach — and descriptors whose open event was dropped —
// stay unresolved forever.
func RunPathResolution(cfg PathsConfig) (PathsResult, error) {
	cfg = cfg.withDefaults()
	k := kernel.New(kernel.Config{
		Clock: clock.NewReal(0),
		Disk:  kernel.DiskConfig{BytesPerSecond: 1 << 40, PerOpLatency: 0},
	})
	if err := k.MkdirAll("/data"); err != nil {
		return PathsResult{}, err
	}
	task := k.NewProcess("app").NewTask("app")

	// Phase 0 (untraced): open the hot files.
	hotFDs := make([]int, cfg.HotFiles)
	hotPaths := make([]string, cfg.HotFiles)
	for i := range hotFDs {
		hotPaths[i] = fmt.Sprintf("/data/hot%02d.dat", i)
		fd, err := task.Openat(kernel.AtFDCWD, hotPaths[i], kernel.ORdwr|kernel.OCreat, 0o644)
		if err != nil {
			return PathsResult{}, err
		}
		hotFDs[i] = fd
	}

	// Attach both tracers.
	backend := store.New()
	dio, err := core.NewTracer(core.Config{
		SessionName:   "paths-dio",
		Index:         "dio-events",
		Backend:       backend,
		RingBytes:     16 << 20, // the paper gives DIO a generous buffer
		FlushInterval: 2 * time.Millisecond,
		AutoCorrelate: true,
	})
	if err != nil {
		return PathsResult{}, err
	}
	if err := dio.Start(k); err != nil {
		return PathsResult{}, err
	}
	sysdig := comparators.NewSysdigTracer(comparators.SysdigConfig{
		Clock:     k.Clock(),
		RingBytes: cfg.SysdigRingBytes,
	})
	sysdig.Attach(k)

	// Phase 1 (traced): mixed I/O.
	rng := rand.New(rand.NewSource(cfg.Seed))
	buf := make([]byte, 512)
	for i := 0; i < cfg.Ops; i++ {
		if rng.Float64() < cfg.HotFraction {
			j := rng.Intn(len(hotFDs))
			if _, err := task.Write(hotFDs[j], buf); err != nil {
				return PathsResult{}, err
			}
			// Periodic stats anchor the hot files' tags for DIO; cycling
			// round-robin guarantees every hot file gets an anchor.
			if i%64 == 0 {
				task.Stat(hotPaths[(i/64)%len(hotPaths)])
			}
		} else {
			p := fmt.Sprintf("/data/cold%04d.dat", i)
			fd, oerr := task.Openat(kernel.AtFDCWD, p, kernel.OWronly|kernel.OCreat, 0o644)
			if oerr != nil {
				return PathsResult{}, oerr
			}
			task.Write(fd, buf)
			task.Close(fd)
		}
		// Sysdig's consumer keeps pace only partially: it drains every few
		// hundred operations, so bursts overflow its small ring.
		if i%512 == 0 {
			sysdig.Consume()
		}
	}

	sysdig.Detach()
	sysdig.Consume()
	dioStats, serr := dio.Stop()
	if serr != nil {
		return PathsResult{}, serr
	}
	sysStats := sysdig.Stats()

	res := PathsResult{
		DIOUnresolved:    dioStats.Correlation.UnresolvedFraction(),
		SysdigUnresolved: sysStats.UnresolvedFraction(),
		DIOStats:         dioStats,
		SysdigStats:      sysStats,
	}
	res.Table = &viz.Table{
		Title:   "§III-D: events without resolvable file paths",
		Columns: []string{"tracer", "events", "unresolved", "unresolved %"},
		Rows: [][]string{
			{
				"DIO",
				fmt.Sprintf("%d", dioStats.Correlation.EventsWithTag),
				fmt.Sprintf("%d", dioStats.Correlation.EventsUnresolved),
				fmt.Sprintf("%.1f%%", res.DIOUnresolved*100),
			},
			{
				"Sysdig",
				fmt.Sprintf("%d", sysStats.Consumed),
				fmt.Sprintf("%d", sysStats.Unresolved),
				fmt.Sprintf("%.1f%%", res.SysdigUnresolved*100),
			},
		},
	}
	return res, nil
}
