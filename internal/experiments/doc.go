// Package experiments wires the repository's components into the paper's
// evaluation artifacts: each exported Run* function reproduces one table or
// figure of the DSN'23 DIO paper end-to-end (workload → tracer → backend →
// visualizer) and returns both the rendered artifact and the raw numbers so
// tests can assert the result's shape. The cmd/diobench binary and the
// repository-level benchmarks are thin wrappers around this package.
//
// Index (see DESIGN.md for the full mapping):
//
//	Table I   — RunTable1: supported-syscall inventory
//	Fig. 2a/b — RunFig2: Fluent Bit data-loss access patterns
//	Fig. 3    — RunRocksDB: p99 client latency over time
//	Fig. 4    — RunRocksDB: syscalls over time by thread name
//	Table II  — RunTable2: tracer execution-time overheads
//	Table III — RunTable3: qualitative tool comparison
//	§III-D    — RunDrops (ring-buffer loss), RunPathResolution (coverage)
package experiments
