package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/apps/fluentbit"
	"github.com/dsrhaslab/dio-go/internal/comparators"
	"github.com/dsrhaslab/dio-go/internal/store"
)

func TestRunTable1(t *testing.T) {
	tbl := RunTable1()
	if len(tbl.Rows) != 5 { // 4 classes + total
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[4][2] != "42" {
		t.Fatalf("total = %q, want 42", tbl.Rows[4][2])
	}
	out := tbl.String()
	for _, name := range []string{"openat", "getxattr", "mknod", "pread64"} {
		if !strings.Contains(out, name) {
			t.Errorf("table missing syscall %q", name)
		}
	}
}

func TestRunTable2MatchesPaperShape(t *testing.T) {
	res, err := RunTable2(300)
	if err != nil {
		t.Fatalf("table2: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.PaperOverhead == 0 {
			t.Fatalf("missing paper reference for %s", row.Mode)
		}
		// Measured overhead within 25% of the paper's value.
		ratio := row.Overhead / row.PaperOverhead
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("%s overhead %.2f vs paper %.2f", row.Mode, row.Overhead, row.PaperOverhead)
		}
	}
	if !strings.Contains(res.Table.String(), "strace") {
		t.Fatal("rendered table missing strace row")
	}
}

func TestRunTable3(t *testing.T) {
	tbl := RunTable3()
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestRunFig2Buggy(t *testing.T) {
	res, err := RunFig2(fluentbit.VersionBuggy)
	if err != nil {
		t.Fatalf("fig2a: %v", err)
	}
	if !res.Scenario.DataLost() {
		t.Fatal("buggy scenario did not lose data")
	}
	if res.Tracer.Dropped != 0 {
		t.Fatalf("tracer dropped %d events", res.Tracer.Dropped)
	}
	out := res.Table.String()
	// The paper's key row: a read at offset 26 returning 0 by fluent-bit.
	if !strings.Contains(out, "fluent-bit") {
		t.Fatalf("table missing fluent-bit rows:\n%s", out)
	}
	foundBadRead := false
	for _, row := range res.Table.Rows {
		if row[1] == "fluent-bit" && row[2] == "read" && row[3] == "0" && row[5] == "26" {
			foundBadRead = true
		}
	}
	if !foundBadRead {
		t.Fatalf("erroneous read (ret 0 at offset 26) not in table:\n%s", out)
	}
	// The lseek to 26 also appears (Fig. 2a step 5).
	foundSeek := false
	for _, row := range res.Table.Rows {
		if row[2] == "lseek" && row[3] == "26" {
			foundSeek = true
		}
	}
	if !foundSeek {
		t.Fatalf("lseek to 26 not in table:\n%s", out)
	}
	// Both generations of app.log share the inode number but differ in
	// file-tag timestamp: there must be exactly 2 distinct tags.
	tags := map[string]bool{}
	for _, row := range res.Table.Rows {
		if row[4] != "" {
			tags[row[4]] = true
		}
	}
	if len(tags) != 2 {
		t.Fatalf("distinct file tags = %d, want 2 (inode reuse)", len(tags))
	}
	// All tagged events were path-correlated.
	if res.Tracer.Correlation.EventsUnresolved != 0 {
		t.Fatalf("unresolved events: %d", res.Tracer.Correlation.EventsUnresolved)
	}
	n, err := res.Backend.Count(context.Background(), res.Index, store.Must(
		store.Term(store.FieldSession, res.Session),
		store.Term(store.FieldFilePath, "/var/log/app.log"),
	))
	if err != nil || n == 0 {
		t.Fatalf("correlated path count = (%d, %v)", n, err)
	}
}

func TestRunFig2Fixed(t *testing.T) {
	res, err := RunFig2(fluentbit.VersionFixed)
	if err != nil {
		t.Fatalf("fig2b: %v", err)
	}
	if res.Scenario.DataLost() {
		t.Fatal("fixed scenario lost data")
	}
	// The fixed version's second-file read: ret 16 at offset 0, by
	// flb-pipeline (Fig. 2b step 5).
	found := false
	for _, row := range res.Table.Rows {
		if row[1] == "flb-pipeline" && row[2] == "read" && row[3] == "16" && row[5] == "0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("corrected read (ret 16 at offset 0) not in table:\n%s", res.Table.String())
	}
	// No lseek past EOF in the fixed version.
	for _, row := range res.Table.Rows {
		if row[2] == "lseek" {
			t.Fatalf("unexpected lseek in fixed version:\n%s", res.Table.String())
		}
	}
}

func TestRunDropsSweepMonotone(t *testing.T) {
	res, err := RunDrops(DropsConfig{
		RingBytesSweep: []int{8 << 10, 128 << 10, 8 << 20},
		Writes:         5_000,
		FlushInterval:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("drops: %v", err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	small, large := res.Points[0], res.Points[2]
	if small.DropFraction == 0 {
		t.Fatal("tiny ring dropped nothing")
	}
	if large.DropFraction >= small.DropFraction {
		t.Fatalf("drop fraction not shrinking: %v -> %v", small.DropFraction, large.DropFraction)
	}
	for _, p := range res.Points {
		if p.Captured == 0 {
			t.Fatalf("point %+v captured nothing", p)
		}
		if p.DropFraction < 0 || p.DropFraction > 1 {
			t.Fatalf("bad drop fraction %v", p.DropFraction)
		}
	}
}

func TestRunPathResolutionShape(t *testing.T) {
	res, err := RunPathResolution(PathsConfig{Ops: 3_000})
	if err != nil {
		t.Fatalf("paths: %v", err)
	}
	// Paper: DIO unresolved ≤5%, Sysdig ≈45%.
	if res.DIOUnresolved > 0.05 {
		t.Errorf("DIO unresolved = %.1f%%, want <=5%%", res.DIOUnresolved*100)
	}
	if res.SysdigUnresolved < 0.30 || res.SysdigUnresolved > 0.70 {
		t.Errorf("Sysdig unresolved = %.1f%%, want ≈45%%", res.SysdigUnresolved*100)
	}
	if res.SysdigUnresolved <= res.DIOUnresolved {
		t.Errorf("shape violated: sysdig (%.2f) <= DIO (%.2f)",
			res.SysdigUnresolved, res.DIOUnresolved)
	}
	if len(res.Table.Rows) != 2 {
		t.Fatalf("table rows = %d", len(res.Table.Rows))
	}
}

func TestRunRocksDBContention(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second contention run")
	}
	res, err := RunRocksDB(RocksDBConfig{Duration: 1500 * time.Millisecond, Trace: true})
	if err != nil {
		t.Fatalf("rocksdb: %v", err)
	}
	if res.Bench.Ops == 0 {
		t.Fatal("no client operations")
	}
	if len(res.Latency) == 0 {
		t.Fatal("no latency windows (Fig. 3 empty)")
	}
	if res.Timeline == nil || len(res.Timeline.BucketStartNS) == 0 {
		t.Fatal("no syscall timeline (Fig. 4 empty)")
	}
	// Fig. 4 must contain the client series and at least one compaction
	// thread series.
	if _, ok := res.Timeline.Series["db_bench"]; !ok {
		t.Fatalf("timeline series = %v", res.Timeline.SeriesNames())
	}
	compSeries := 0
	for _, name := range res.Timeline.SeriesNames() {
		if strings.HasPrefix(name, "rocksdb:low") {
			compSeries++
		}
	}
	if compSeries == 0 {
		t.Fatalf("no compaction thread series: %v", res.Timeline.SeriesNames())
	}
	if res.Bench.DBStats.Compactions == 0 {
		t.Fatal("run produced no compactions; contention mechanism unexercised")
	}
	// The paper's diagnosis: windows with heavy compaction activity show
	// higher client tail latency than quiet windows.
	busy, quiet, busyN, quietN := res.ContentionCorrelation(5, 2)
	if busyN == 0 || quietN == 0 {
		t.Skipf("contention windows unbalanced (busy=%d quiet=%d)", busyN, quietN)
	}
	if busy <= quiet {
		t.Errorf("contention shape violated: busy p99 %.0fns <= quiet p99 %.0fns (busy=%d quiet=%d)",
			busy, quiet, busyN, quietN)
	}
}

func TestPathsConfigDefaults(t *testing.T) {
	c := PathsConfig{}.withDefaults()
	if c.HotFiles == 0 || c.Ops == 0 || c.HotFraction == 0 || c.SysdigRingBytes == 0 {
		t.Fatalf("defaults missing: %+v", c)
	}
	if c.SysdigRingBytes != comparators.SysdigDefaultRingBytes {
		t.Fatalf("sysdig ring default = %d", c.SysdigRingBytes)
	}
}
