package experiments

import (
	"fmt"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/resilience"
	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/telemetry"
	"github.com/dsrhaslab/dio-go/internal/viz"
)

// ChaosConfig parametrizes the fault-injection experiment.
type ChaosConfig struct {
	// Writes is the number of traced writes in the event storm.
	Writes int
	// ErrorRate is the probability that a bulk request fails transiently.
	ErrorRate float64
	// OutageFrom/OutageTo script a full backend outage over that bulk-call
	// window.
	OutageFrom, OutageTo uint64
	// Seed drives the injected-fault dice.
	Seed int64
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Writes <= 0 {
		c.Writes = 8000
	}
	if c.ErrorRate == 0 {
		c.ErrorRate = 0.3
	}
	if c.OutageTo == 0 {
		c.OutageFrom, c.OutageTo = 20, 28
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// ChaosResult is the output of the fault-injection experiment.
type ChaosResult struct {
	Stats    core.Stats
	Injected uint64
	// Accounted reports the invariant Shipped + Dropped + SpillDropped +
	// ParseErrors == Captured, computed from the Stop statistics.
	Accounted bool
	// Ledger is the same conservation accounting derived independently from
	// the live telemetry snapshot (DESIGN.md §9) — the runtime-readable path.
	Ledger telemetry.Ledger
	// LedgerBalanced reports whether the telemetry-derived ledger closes at
	// quiescence, which must agree with Accounted.
	LedgerBalanced bool
	Table          *viz.Table
}

// RunChaos traces an event storm against a backend that fails ~ErrorRate of
// bulk requests and goes fully dark for a scripted window, with the
// resilience ladder (retry → breaker → spill → counted drop) enabled. The
// point of the experiment is the paper's accounting promise under failure:
// every captured event is either shipped or counted in exactly one drop
// counter — the property the Fluent Bit data-loss diagnosis (§III-B) relies
// on.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	cfg = cfg.withDefaults()
	k := kernel.New(kernel.Config{
		Clock: clock.NewReal(0),
		Disk:  kernel.DiskConfig{BytesPerSecond: 1 << 40, PerOpLatency: 0},
	})
	if err := k.MkdirAll("/data"); err != nil {
		return ChaosResult{}, err
	}
	faulty := resilience.NewFaultyBackend(store.New(), cfg.Seed)
	faulty.SetErrorRate(cfg.ErrorRate)
	faulty.ScriptOutage(cfg.OutageFrom, cfg.OutageTo)

	tracer, err := core.NewTracer(core.Config{
		SessionName:   "chaos",
		Backend:       faulty,
		BatchSize:     256,
		FlushInterval: time.Millisecond,
		Resilience: &resilience.Config{
			MaxAttempts:      3,
			BaseBackoff:      200 * time.Microsecond,
			MaxBackoff:       2 * time.Millisecond,
			BreakerThreshold: 4,
			BreakerCooldown:  5 * time.Millisecond,
		},
	})
	if err != nil {
		return ChaosResult{}, err
	}
	if err := tracer.Start(k); err != nil {
		return ChaosResult{}, err
	}

	task := k.NewProcess("storm").NewTask("storm")
	fd, oerr := task.Openat(kernel.AtFDCWD, "/data/storm.dat", kernel.OWronly|kernel.OCreat, 0o644)
	if oerr != nil {
		tracer.Stop()
		return ChaosResult{}, oerr
	}
	buf := make([]byte, 1024)
	for i := 0; i < cfg.Writes; i++ {
		if _, werr := task.Write(fd, buf); werr != nil {
			tracer.Stop()
			return ChaosResult{}, werr
		}
		if i%500 == 499 {
			// Spread the storm over several flush intervals so faults hit
			// live batches, not just the final drain.
			time.Sleep(2 * time.Millisecond)
		}
	}
	task.Close(fd)

	// The backend recovers before shutdown; the final flush replays the
	// spill queue. A non-nil Stop error just reports the transient faults.
	faulty.SetErrorRate(0)
	stats, _ := tracer.Stop()

	ledger := tracer.Ledger()
	res := ChaosResult{
		Stats:          stats,
		Injected:       faulty.Injected(),
		Accounted:      stats.Shipped+stats.Dropped+stats.SpillDropped+stats.ParseErrors == stats.Captured,
		Ledger:         ledger,
		LedgerBalanced: ledger.Balanced(),
	}
	breakerState := "off"
	if stats.Resilience != nil {
		breakerState = stats.Resilience.BreakerState
	}
	res.Table = &viz.Table{
		Title:   "Chaos: ship-path fault injection with the resilience ladder",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"captured", fmt.Sprintf("%d", stats.Captured)},
			{"shipped (incl. replays)", fmt.Sprintf("%d", stats.Shipped)},
			{"ring dropped", fmt.Sprintf("%d", stats.Dropped)},
			{"spill dropped", fmt.Sprintf("%d", stats.SpillDropped)},
			{"injected faults", fmt.Sprintf("%d", res.Injected)},
			{"retries", fmt.Sprintf("%d", stats.Retries)},
			{"requeued", fmt.Sprintf("%d", stats.Requeued)},
			{"replayed", fmt.Sprintf("%d", stats.Replayed)},
			{"breaker opens", fmt.Sprintf("%d", stats.BreakerOpens)},
			{"breaker state", breakerState},
			{"exact accounting", fmt.Sprintf("%v", res.Accounted)},
			{"telemetry ledger balanced", fmt.Sprintf("%v", res.LedgerBalanced)},
			{"telemetry ledger pending", fmt.Sprintf("%d", ledger.Pending)},
		},
	}
	return res, nil
}
