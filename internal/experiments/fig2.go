package experiments

import (
	"context"

	"fmt"
	"time"

	"github.com/dsrhaslab/dio-go/internal/apps/fluentbit"
	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/ebpf"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/viz"
)

// Fig2Result is the output of the Fluent Bit use case (§III-B).
type Fig2Result struct {
	// Table is the tabular visualization of Fig. 2a (buggy) or 2b (fixed).
	Table *viz.Table
	// Scenario holds the workload-level outcome (bytes written/received).
	Scenario fluentbit.ScenarioResult
	// Tracer summarizes the DIO session.
	Tracer core.Stats
	// Backend retains the store so callers can run further queries.
	Backend *store.Store
	// Session and Index locate the events in Backend.
	Session string
	Index   string
}

// RunFig2 reproduces Fig. 2a (version = fluentbit.VersionBuggy) or Fig. 2b
// (fluentbit.VersionFixed): it traces the log-writer client and the Fluent
// Bit forwarder with DIO, runs the issue #1875 scenario, correlates file
// paths, and renders the access-pattern table.
func RunFig2(version fluentbit.Version) (Fig2Result, error) {
	k := kernel.New(kernel.Config{
		Clock: clock.NewVirtualTicking(kernel.BaseTimestampNS, 200*time.Microsecond),
	})
	backend := store.New()
	session := "fig2a-fluentbit-" + version.String()
	if version == fluentbit.VersionFixed {
		session = "fig2b-fluentbit-" + version.String()
	}

	tracer, err := core.NewTracer(core.Config{
		SessionName: session,
		Index:       "dio-events",
		Backend:     backend,
		// The paper traces both applications by filtering on their process
		// set; syscall-wise the use case needs the storage calls below.
		Filter: ebpf.Filter{
			Syscalls: []kernel.Syscall{
				kernel.SysOpenat, kernel.SysOpen, kernel.SysCreat,
				kernel.SysRead, kernel.SysWrite, kernel.SysLseek,
				kernel.SysClose, kernel.SysUnlink, kernel.SysStat,
			},
		},
		AutoCorrelate: true,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		return Fig2Result{}, fmt.Errorf("new tracer: %w", err)
	}
	if err := tracer.Start(k); err != nil {
		return Fig2Result{}, fmt.Errorf("start tracer: %w", err)
	}

	scenario, serr := fluentbit.RunScenario(k, "/var/log", version)

	stats, terr := tracer.Stop()
	if serr != nil {
		return Fig2Result{}, fmt.Errorf("scenario: %w", serr)
	}
	if terr != nil {
		return Fig2Result{}, fmt.Errorf("stop tracer: %w", terr)
	}

	table, err := fig2Table(backend, "dio-events", session, version)
	if err != nil {
		return Fig2Result{}, err
	}
	return Fig2Result{
		Table:    table,
		Scenario: scenario,
		Tracer:   stats,
		Backend:  backend,
		Session:  session,
		Index:    "dio-events",
	}, nil
}

// fig2Table renders the Fig. 2 view: like viz.AccessPatternTable but
// restricted to the open/read/write/lseek/close/unlink rows of the two
// traced applications, hiding the forwarder's stat polling.
func fig2Table(b store.Backend, index, session string, version fluentbit.Version) (*viz.Table, error) {
	resp, err := store.SearchEvents(context.Background(), b, index, store.SearchRequest{
		Query: store.Must(
			store.Term(store.FieldSession, session),
			store.Terms(store.FieldSyscall, "openat", "open", "creat", "read", "write", "lseek", "close", "unlink"),
		),
		Sort: []store.SortField{{Field: store.FieldTimeEnter}},
	})
	if err != nil {
		return nil, fmt.Errorf("fig2 query: %w", err)
	}
	title := fmt.Sprintf("Fig. 2a: Fluent Bit (%s) erroneous access pattern", version)
	if version == fluentbit.VersionFixed {
		title = fmt.Sprintf("Fig. 2b: Fluent Bit (%s) correct access pattern", version)
	}
	t := &viz.Table{
		Title:   title,
		Columns: []string{"time", "proc_name", "syscall", "ret_val", "file_tag (dev_no inode_no timestamp)", "offset"},
	}
	for i := range resp.Hits {
		e := &resp.Hits[i]
		t.Rows = append(t.Rows, []string{
			groupDigits(e.TimeEnterNS),
			e.ProcName,
			e.Syscall,
			fmt.Sprintf("%d", e.RetVal),
			e.FileTag.String(),
			e.OffsetOrBlank(),
		})
	}
	return t, nil
}

// groupDigits mirrors viz's Kibana-style timestamp formatting.
func groupDigits(n int64) string {
	s := fmt.Sprintf("%d", n)
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}
