package store

import (
	"math"
	"sort"
	"strconv"
)

// Agg is a JSON-serializable aggregation: exactly one kind should be set.
// Sub-aggregations apply within each bucket (e.g. a date histogram of
// syscall counts split by thread name, which is how Fig. 4 is built).
type Agg struct {
	Terms         *TermsAgg         `json:"terms,omitempty"`
	DateHistogram *DateHistogramAgg `json:"date_histogram,omitempty"`
	Percentiles   *PercentilesAgg   `json:"percentiles,omitempty"`
	Stats         *StatsAgg         `json:"stats,omitempty"`
	Aggs          map[string]Agg    `json:"aggs,omitempty"`
}

// TermsAgg buckets documents by the distinct values of a field.
type TermsAgg struct {
	Field string `json:"field"`
	// Size limits the number of buckets returned (0 = all), ordered by
	// descending count then key.
	Size int `json:"size,omitempty"`
}

// DateHistogramAgg buckets documents into fixed nanosecond intervals of a
// numeric timestamp field.
type DateHistogramAgg struct {
	Field      string `json:"field"`
	IntervalNS int64  `json:"interval_ns"`
}

// PercentilesAgg estimates percentiles of a numeric field.
type PercentilesAgg struct {
	Field    string    `json:"field"`
	Percents []float64 `json:"percents,omitempty"` // default 50,90,95,99
}

// StatsAgg computes count/min/max/sum/avg of a numeric field.
type StatsAgg struct {
	Field string `json:"field"`
}

// Bucket is one group of documents produced by a bucketing aggregation.
type Bucket struct {
	Key    string               `json:"key"`
	KeyNum float64              `json:"key_num,omitempty"`
	Count  int                  `json:"count"`
	Sub    map[string]AggResult `json:"sub,omitempty"`
}

// StatsResult is the output of a stats aggregation.
type StatsResult struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	Avg   float64 `json:"avg"`
}

// AggResult is the output of one aggregation.
type AggResult struct {
	Buckets     []Bucket           `json:"buckets,omitempty"`
	Percentiles map[string]float64 `json:"percentiles,omitempty"`
	Stats       *StatsResult       `json:"stats,omitempty"`
}

// apply runs the aggregation over the matched documents.
func (a Agg) apply(docs []Document) AggResult {
	switch {
	case a.Terms != nil:
		return a.applyTerms(docs)
	case a.DateHistogram != nil:
		return a.applyDateHistogram(docs)
	case a.Percentiles != nil:
		return applyPercentiles(docs, a.Percentiles)
	case a.Stats != nil:
		return applyStats(docs, a.Stats)
	default:
		return AggResult{}
	}
}

func (a Agg) applySubs(docs []Document) map[string]AggResult {
	if len(a.Aggs) == 0 {
		return nil
	}
	out := make(map[string]AggResult, len(a.Aggs))
	for name, sub := range a.Aggs {
		out[name] = sub.apply(docs)
	}
	return out
}

func (a Agg) applyTerms(docs []Document) AggResult {
	groups := make(map[string][]Document)
	for _, d := range docs {
		k := keyString(d[a.Terms.Field])
		groups[k] = append(groups[k], d)
	}
	return a.finalizeTerms(groups)
}

// finalizeTerms turns (possibly merged) term groups into ordered, truncated
// buckets with sub-aggregations.
func (a Agg) finalizeTerms(groups map[string][]Document) AggResult {
	buckets := make([]Bucket, 0, len(groups))
	for k, g := range groups {
		buckets = append(buckets, Bucket{Key: k, Count: len(g), Sub: a.applySubs(g)})
	}
	sort.Slice(buckets, func(i, j int) bool {
		if buckets[i].Count != buckets[j].Count {
			return buckets[i].Count > buckets[j].Count
		}
		return buckets[i].Key < buckets[j].Key
	})
	if a.Terms.Size > 0 && len(buckets) > a.Terms.Size {
		buckets = buckets[:a.Terms.Size]
	}
	return AggResult{Buckets: buckets}
}

// finalizeTermCounts is finalizeTerms for count-only partials (no sub-aggs).
func (a Agg) finalizeTermCounts(counts map[string]int) AggResult {
	buckets := make([]Bucket, 0, len(counts))
	for k, n := range counts {
		buckets = append(buckets, Bucket{Key: k, Count: n})
	}
	sort.Slice(buckets, func(i, j int) bool {
		if buckets[i].Count != buckets[j].Count {
			return buckets[i].Count > buckets[j].Count
		}
		return buckets[i].Key < buckets[j].Key
	})
	if a.Terms.Size > 0 && len(buckets) > a.Terms.Size {
		buckets = buckets[:a.Terms.Size]
	}
	return AggResult{Buckets: buckets}
}

// finalizeHistCounts is finalizeHistogram for count-only partials.
func (a Agg) finalizeHistCounts(counts map[int64]int) AggResult {
	keys := make([]int64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	buckets := make([]Bucket, 0, len(keys))
	for _, k := range keys {
		buckets = append(buckets, Bucket{
			Key:    strconv.FormatInt(k, 10),
			KeyNum: float64(k),
			Count:  counts[k],
		})
	}
	return AggResult{Buckets: buckets}
}

func (a Agg) applyDateHistogram(docs []Document) AggResult {
	interval := a.DateHistogram.IntervalNS
	if interval <= 0 {
		interval = 1
	}
	groups := make(map[int64][]Document)
	for _, d := range docs {
		f, ok := numeric(d[a.DateHistogram.Field])
		if !ok {
			continue
		}
		b := int64(f) / interval * interval
		groups[b] = append(groups[b], d)
	}
	return a.finalizeHistogram(groups)
}

// finalizeHistogram turns (possibly merged) interval groups into ordered
// buckets with sub-aggregations.
func (a Agg) finalizeHistogram(groups map[int64][]Document) AggResult {
	keys := make([]int64, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	buckets := make([]Bucket, 0, len(keys))
	for _, k := range keys {
		g := groups[k]
		buckets = append(buckets, Bucket{
			Key:    strconv.FormatInt(k, 10),
			KeyNum: float64(k),
			Count:  len(g),
			Sub:    a.applySubs(g),
		})
	}
	return AggResult{Buckets: buckets}
}

func applyPercentiles(docs []Document, p *PercentilesAgg) AggResult {
	vals := make([]float64, 0, len(docs))
	for _, d := range docs {
		if f, ok := numeric(d[p.Field]); ok {
			vals = append(vals, f)
		}
	}
	sort.Float64s(vals)
	return percentilesFromSorted(vals, p)
}

// percentilesFromSorted computes the requested percentiles of pre-sorted
// values.
func percentilesFromSorted(sorted []float64, p *PercentilesAgg) AggResult {
	percents := p.Percents
	if len(percents) == 0 {
		percents = []float64{50, 90, 95, 99}
	}
	out := make(map[string]float64, len(percents))
	for _, pct := range percents {
		out[strconv.FormatFloat(pct, 'g', -1, 64)] = percentileOf(sorted, pct)
	}
	return AggResult{Percentiles: out}
}

// percentileOf computes the pct-th percentile of sorted vals using the
// nearest-rank method.
func percentileOf(sorted []float64, pct float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if pct <= 0 {
		return sorted[0]
	}
	if pct >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(pct / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func applyStats(docs []Document, s *StatsAgg) AggResult {
	res := StatsResult{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, d := range docs {
		f, ok := numeric(d[s.Field])
		if !ok {
			continue
		}
		res.Count++
		res.Sum += f
		if f < res.Min {
			res.Min = f
		}
		if f > res.Max {
			res.Max = f
		}
	}
	return AggResult{Stats: finalizeStats(res)}
}

// finalizeStats computes the average and normalizes the empty accumulator.
func finalizeStats(res StatsResult) *StatsResult {
	if res.Count > 0 {
		res.Avg = res.Sum / float64(res.Count)
	} else {
		res.Min, res.Max = 0, 0
	}
	return &res
}

// --- Per-shard partials and their merges ---
//
// The sharded Search computes one partialAgg per (shard, aggregation) while
// holding only that shard's read lock, then merges the partials lock-free:
// bucketing aggregations merge their group maps (sub-aggregations run on the
// merged groups, so nesting stays exact), percentiles stream-merge per-shard
// sorted value slices, and stats combine their accumulators.

// partialAgg is one shard's mergeable contribution to an aggregation.
// Bucketing aggregations without sub-aggregations carry only bucket counts;
// document groups are materialized only when nested aggregations need to run
// over the merged groups.
type partialAgg struct {
	terms      map[string][]Document // TermsAgg groups (sub-aggs present)
	termCounts map[string]int        // TermsAgg counts (no sub-aggs)
	hist       map[int64][]Document  // DateHistogramAgg groups (sub-aggs present)
	histCounts map[int64]int         // DateHistogramAgg counts (no sub-aggs)
	vals       []float64             // PercentilesAgg values, sorted
	stats      *StatsResult          // StatsAgg raw accumulator (no Avg, ±Inf when empty)
}

// termCounts tallies ids by term. When the matched set is the whole shard
// and the posting lists fully cover it (every doc holds the field as a
// string), the counts are just the posting-list lengths — no per-document
// work at all.
func (sh *shard) termCounts(t *TermsAgg, ids []int32) map[string]int {
	if pl, ok := sh.postings[t.Field]; ok && len(ids) == len(sh.docs) {
		total := 0
		for _, l := range pl {
			total += len(l)
		}
		if total == len(sh.docs) {
			counts := make(map[string]int, len(pl))
			for term, l := range pl {
				counts[term] = len(l)
			}
			return counts
		}
	}
	counts := make(map[string]int)
	for _, id := range ids {
		counts[keyString(sh.val(id, t.Field))]++
	}
	return counts
}

// partial computes a's partial over the matched local ids, reading numeric
// fields through the shard's columnar caches. Caller holds the read lock.
func (sh *shard) partial(a Agg, ids []int32) *partialAgg {
	switch {
	case a.Terms != nil:
		if len(a.Aggs) == 0 {
			return &partialAgg{termCounts: sh.termCounts(a.Terms, ids)}
		}
		groups := make(map[string][]Document)
		for _, id := range ids {
			// Sub-aggregations run over merged Document groups, so typed rows
			// materialize here — the one aggregation path that still needs maps.
			d := sh.docView(id)
			k := keyString(d[a.Terms.Field])
			groups[k] = append(groups[k], d)
		}
		return &partialAgg{terms: groups}
	case a.DateHistogram != nil:
		interval := a.DateHistogram.IntervalNS
		if interval <= 0 {
			interval = 1
		}
		c := sh.cols[a.DateHistogram.Field]
		if len(a.Aggs) == 0 {
			counts := make(map[int64]int)
			for _, id := range ids {
				f, ok := sh.colVal(c, a.DateHistogram.Field, id)
				if !ok {
					continue
				}
				counts[int64(f)/interval*interval]++
			}
			return &partialAgg{histCounts: counts}
		}
		groups := make(map[int64][]Document)
		for _, id := range ids {
			f, ok := sh.colVal(c, a.DateHistogram.Field, id)
			if !ok {
				continue
			}
			b := int64(f) / interval * interval
			groups[b] = append(groups[b], sh.docView(id))
		}
		return &partialAgg{hist: groups}
	case a.Percentiles != nil:
		c := sh.cols[a.Percentiles.Field]
		vals := make([]float64, 0, len(ids))
		for _, id := range ids {
			if f, ok := sh.colVal(c, a.Percentiles.Field, id); ok {
				vals = append(vals, f)
			}
		}
		sort.Float64s(vals)
		return &partialAgg{vals: vals}
	case a.Stats != nil:
		c := sh.cols[a.Stats.Field]
		res := StatsResult{Min: math.Inf(1), Max: math.Inf(-1)}
		for _, id := range ids {
			f, ok := sh.colVal(c, a.Stats.Field, id)
			if !ok {
				continue
			}
			res.Count++
			res.Sum += f
			if f < res.Min {
				res.Min = f
			}
			if f > res.Max {
				res.Max = f
			}
		}
		return &partialAgg{stats: &res}
	default:
		return &partialAgg{}
	}
}

// mergeSortedFloats streams two ascending slices into one.
func mergeSortedFloats(a, b []float64) []float64 {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
