package store

import (
	"math"
	"sort"
	"strconv"
)

// Agg is a JSON-serializable aggregation: exactly one kind should be set.
// Sub-aggregations apply within each bucket (e.g. a date histogram of
// syscall counts split by thread name, which is how Fig. 4 is built).
type Agg struct {
	Terms         *TermsAgg         `json:"terms,omitempty"`
	DateHistogram *DateHistogramAgg `json:"date_histogram,omitempty"`
	Percentiles   *PercentilesAgg   `json:"percentiles,omitempty"`
	Stats         *StatsAgg         `json:"stats,omitempty"`
	Aggs          map[string]Agg    `json:"aggs,omitempty"`
}

// TermsAgg buckets documents by the distinct values of a field.
type TermsAgg struct {
	Field string `json:"field"`
	// Size limits the number of buckets returned (0 = all), ordered by
	// descending count then key.
	Size int `json:"size,omitempty"`
}

// DateHistogramAgg buckets documents into fixed nanosecond intervals of a
// numeric timestamp field.
type DateHistogramAgg struct {
	Field      string `json:"field"`
	IntervalNS int64  `json:"interval_ns"`
}

// PercentilesAgg estimates percentiles of a numeric field.
type PercentilesAgg struct {
	Field    string    `json:"field"`
	Percents []float64 `json:"percents,omitempty"` // default 50,90,95,99
}

// StatsAgg computes count/min/max/sum/avg of a numeric field.
type StatsAgg struct {
	Field string `json:"field"`
}

// Bucket is one group of documents produced by a bucketing aggregation.
type Bucket struct {
	Key    string               `json:"key"`
	KeyNum float64              `json:"key_num,omitempty"`
	Count  int                  `json:"count"`
	Sub    map[string]AggResult `json:"sub,omitempty"`
}

// StatsResult is the output of a stats aggregation.
type StatsResult struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	Avg   float64 `json:"avg"`
}

// AggResult is the output of one aggregation.
type AggResult struct {
	Buckets     []Bucket           `json:"buckets,omitempty"`
	Percentiles map[string]float64 `json:"percentiles,omitempty"`
	Stats       *StatsResult       `json:"stats,omitempty"`
}

// apply runs the aggregation over the matched documents.
func (a Agg) apply(docs []Document) AggResult {
	switch {
	case a.Terms != nil:
		return a.applyTerms(docs)
	case a.DateHistogram != nil:
		return a.applyDateHistogram(docs)
	case a.Percentiles != nil:
		return applyPercentiles(docs, a.Percentiles)
	case a.Stats != nil:
		return applyStats(docs, a.Stats)
	default:
		return AggResult{}
	}
}

func (a Agg) applySubs(docs []Document) map[string]AggResult {
	if len(a.Aggs) == 0 {
		return nil
	}
	out := make(map[string]AggResult, len(a.Aggs))
	for name, sub := range a.Aggs {
		out[name] = sub.apply(docs)
	}
	return out
}

func (a Agg) applyTerms(docs []Document) AggResult {
	groups := make(map[string][]Document)
	for _, d := range docs {
		k := keyString(d[a.Terms.Field])
		groups[k] = append(groups[k], d)
	}
	buckets := make([]Bucket, 0, len(groups))
	for k, g := range groups {
		buckets = append(buckets, Bucket{Key: k, Count: len(g), Sub: a.applySubs(g)})
	}
	sort.Slice(buckets, func(i, j int) bool {
		if buckets[i].Count != buckets[j].Count {
			return buckets[i].Count > buckets[j].Count
		}
		return buckets[i].Key < buckets[j].Key
	})
	if a.Terms.Size > 0 && len(buckets) > a.Terms.Size {
		buckets = buckets[:a.Terms.Size]
	}
	return AggResult{Buckets: buckets}
}

func (a Agg) applyDateHistogram(docs []Document) AggResult {
	interval := a.DateHistogram.IntervalNS
	if interval <= 0 {
		interval = 1
	}
	groups := make(map[int64][]Document)
	for _, d := range docs {
		f, ok := numeric(d[a.DateHistogram.Field])
		if !ok {
			continue
		}
		b := int64(f) / interval * interval
		groups[b] = append(groups[b], d)
	}
	keys := make([]int64, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	buckets := make([]Bucket, 0, len(keys))
	for _, k := range keys {
		g := groups[k]
		buckets = append(buckets, Bucket{
			Key:    strconv.FormatInt(k, 10),
			KeyNum: float64(k),
			Count:  len(g),
			Sub:    a.applySubs(g),
		})
	}
	return AggResult{Buckets: buckets}
}

func applyPercentiles(docs []Document, p *PercentilesAgg) AggResult {
	percents := p.Percents
	if len(percents) == 0 {
		percents = []float64{50, 90, 95, 99}
	}
	vals := make([]float64, 0, len(docs))
	for _, d := range docs {
		if f, ok := numeric(d[p.Field]); ok {
			vals = append(vals, f)
		}
	}
	out := make(map[string]float64, len(percents))
	sort.Float64s(vals)
	for _, pct := range percents {
		out[strconv.FormatFloat(pct, 'g', -1, 64)] = percentileOf(vals, pct)
	}
	return AggResult{Percentiles: out}
}

// percentileOf computes the pct-th percentile of sorted vals using the
// nearest-rank method.
func percentileOf(sorted []float64, pct float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if pct <= 0 {
		return sorted[0]
	}
	if pct >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(pct / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func applyStats(docs []Document, s *StatsAgg) AggResult {
	res := StatsResult{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, d := range docs {
		f, ok := numeric(d[s.Field])
		if !ok {
			continue
		}
		res.Count++
		res.Sum += f
		if f < res.Min {
			res.Min = f
		}
		if f > res.Max {
			res.Max = f
		}
	}
	if res.Count > 0 {
		res.Avg = res.Sum / float64(res.Count)
	} else {
		res.Min, res.Max = 0, 0
	}
	return AggResult{Stats: &res}
}
