package store

import (
	"context"
	"testing"

	"github.com/dsrhaslab/dio-go/internal/event"
)

func docFixture() []Document {
	return []Document{
		{"session": "s1", "syscall": "openat", "proc_name": "app", "thread_name": "app", "ret_val": int64(3), "time_enter_ns": int64(100), "duration_ns": int64(10), "kernel_path": "/tmp/a", "file_tag": "1 12 5"},
		{"session": "s1", "syscall": "write", "proc_name": "app", "thread_name": "app", "ret_val": int64(26), "time_enter_ns": int64(200), "duration_ns": int64(20), "file_tag": "1 12 5", "offset": int64(0), "has_offset": true},
		{"session": "s1", "syscall": "read", "proc_name": "fluent-bit", "thread_name": "flb-pipeline", "ret_val": int64(26), "time_enter_ns": int64(300), "duration_ns": int64(30), "file_tag": "1 12 5", "offset": int64(0), "has_offset": true},
		{"session": "s1", "syscall": "read", "proc_name": "fluent-bit", "thread_name": "flb-pipeline", "ret_val": int64(0), "time_enter_ns": int64(400), "duration_ns": int64(40), "file_tag": "1 12 5", "offset": int64(26), "has_offset": true},
		{"session": "s2", "syscall": "unlink", "proc_name": "app", "thread_name": "app", "ret_val": int64(0), "time_enter_ns": int64(500), "duration_ns": int64(50), "arg_path": "/tmp/a"},
	}
}

func newFixtureIndex() *Index {
	ix := NewIndex("events")
	ix.AddBulk(docFixture())
	return ix
}

func TestTermQueryUsesPostings(t *testing.T) {
	ix := newFixtureIndex()
	resp := ix.Search(SearchRequest{Query: Term("syscall", "read")})
	if resp.Total != 2 {
		t.Fatalf("total = %d, want 2", resp.Total)
	}
	for _, h := range resp.Hits {
		if h["syscall"] != "read" {
			t.Fatalf("hit = %v", h)
		}
	}
}

func TestTermQueryNumericField(t *testing.T) {
	ix := newFixtureIndex()
	resp := ix.Search(SearchRequest{Query: Term("ret_val", 26)})
	if resp.Total != 2 {
		t.Fatalf("total = %d, want 2", resp.Total)
	}
}

func TestTermsQuery(t *testing.T) {
	ix := newFixtureIndex()
	resp := ix.Search(SearchRequest{Query: Terms("syscall", "openat", "unlink")})
	if resp.Total != 2 {
		t.Fatalf("total = %d, want 2", resp.Total)
	}
}

func TestRangeQuery(t *testing.T) {
	ix := newFixtureIndex()
	resp := ix.Search(SearchRequest{Query: RangeBetween("time_enter_ns", 200, 400)})
	if resp.Total != 3 {
		t.Fatalf("total = %d, want 3", resp.Total)
	}
	gt := 200.0
	lt := 400.0
	resp = ix.Search(SearchRequest{Query: Query{Range: &RangeQuery{Field: "time_enter_ns", GT: &gt, LT: &lt}}})
	if resp.Total != 1 {
		t.Fatalf("exclusive total = %d, want 1", resp.Total)
	}
}

func TestPrefixAndExists(t *testing.T) {
	ix := newFixtureIndex()
	if got := ix.Count(Prefix("kernel_path", "/tmp")); got != 1 {
		t.Fatalf("prefix count = %d", got)
	}
	if got := ix.Count(Exists("file_tag")); got != 4 {
		t.Fatalf("exists count = %d", got)
	}
	if got := ix.Count(Exists("no_such_field")); got != 0 {
		t.Fatalf("exists missing field count = %d", got)
	}
}

func TestBoolQuery(t *testing.T) {
	ix := newFixtureIndex()
	q := Must(Term("session", "s1"), Term("proc_name", "fluent-bit"))
	if got := ix.Count(q); got != 2 {
		t.Fatalf("must count = %d", got)
	}
	q = Query{Bool: &BoolQuery{
		Must:    []Query{Term("session", "s1")},
		MustNot: []Query{Term("syscall", "read")},
	}}
	if got := ix.Count(q); got != 2 {
		t.Fatalf("must_not count = %d", got)
	}
	q = Query{Bool: &BoolQuery{
		Should: []Query{Term("syscall", "openat"), Term("syscall", "unlink")},
	}}
	if got := ix.Count(q); got != 2 {
		t.Fatalf("should count = %d", got)
	}
}

func TestMatchAllAndZeroQuery(t *testing.T) {
	ix := newFixtureIndex()
	if got := ix.Count(MatchAll()); got != 5 {
		t.Fatalf("match_all = %d", got)
	}
	if got := ix.Count(Query{}); got != 5 {
		t.Fatalf("zero query = %d", got)
	}
}

func TestSortAndPagination(t *testing.T) {
	ix := newFixtureIndex()
	resp := ix.Search(SearchRequest{
		Query: MatchAll(),
		Sort:  []SortField{{Field: "time_enter_ns", Desc: true}},
		Size:  2,
	})
	if len(resp.Hits) != 2 || resp.Total != 5 {
		t.Fatalf("hits=%d total=%d", len(resp.Hits), resp.Total)
	}
	if i64(resp.Hits[0]["time_enter_ns"]) != 500 {
		t.Fatalf("first hit ts = %v", resp.Hits[0]["time_enter_ns"])
	}
	resp = ix.Search(SearchRequest{
		Query: MatchAll(),
		Sort:  []SortField{{Field: "time_enter_ns"}},
		From:  3,
	})
	if len(resp.Hits) != 2 || i64(resp.Hits[0]["time_enter_ns"]) != 400 {
		t.Fatalf("from=3 hits=%v", resp.Hits)
	}
	resp = ix.Search(SearchRequest{Query: MatchAll(), From: 99})
	if len(resp.Hits) != 0 {
		t.Fatalf("past-end from returned %d hits", len(resp.Hits))
	}
}

func TestSortByStringField(t *testing.T) {
	ix := newFixtureIndex()
	resp := ix.Search(SearchRequest{
		Query: MatchAll(),
		Sort:  []SortField{{Field: "syscall"}, {Field: "time_enter_ns"}},
	})
	want := []string{"openat", "read", "read", "unlink", "write"}
	for i, h := range resp.Hits {
		if h["syscall"] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %s", i, h["syscall"], want[i])
		}
	}
}

func TestTermsAggregation(t *testing.T) {
	ix := newFixtureIndex()
	resp := ix.Search(SearchRequest{
		Query: MatchAll(),
		Aggs:  map[string]Agg{"by_syscall": {Terms: &TermsAgg{Field: "syscall"}}},
	})
	buckets := resp.Aggs["by_syscall"].Buckets
	if len(buckets) != 4 {
		t.Fatalf("buckets = %+v", buckets)
	}
	if buckets[0].Key != "read" || buckets[0].Count != 2 {
		t.Fatalf("top bucket = %+v", buckets[0])
	}
}

func TestTermsAggregationSize(t *testing.T) {
	ix := newFixtureIndex()
	resp := ix.Search(SearchRequest{
		Query: MatchAll(),
		Aggs:  map[string]Agg{"top": {Terms: &TermsAgg{Field: "syscall", Size: 2}}},
	})
	if got := len(resp.Aggs["top"].Buckets); got != 2 {
		t.Fatalf("buckets = %d, want 2", got)
	}
}

func TestDateHistogramWithSubAgg(t *testing.T) {
	ix := newFixtureIndex()
	resp := ix.Search(SearchRequest{
		Query: MatchAll(),
		Aggs: map[string]Agg{
			"over_time": {
				DateHistogram: &DateHistogramAgg{Field: "time_enter_ns", IntervalNS: 200},
				Aggs: map[string]Agg{
					"by_proc": {Terms: &TermsAgg{Field: "proc_name"}},
				},
			},
		},
	})
	buckets := resp.Aggs["over_time"].Buckets
	// ts 100 -> bucket 0; 200,300 -> 200; 400,500 -> 400
	if len(buckets) != 3 {
		t.Fatalf("buckets = %+v", buckets)
	}
	if buckets[0].KeyNum != 0 || buckets[0].Count != 1 {
		t.Fatalf("bucket[0] = %+v", buckets[0])
	}
	if buckets[1].KeyNum != 200 || buckets[1].Count != 2 {
		t.Fatalf("bucket[1] = %+v", buckets[1])
	}
	sub := buckets[1].Sub["by_proc"].Buckets
	if len(sub) != 2 {
		t.Fatalf("sub buckets = %+v", sub)
	}
}

func TestPercentilesAggregation(t *testing.T) {
	ix := NewIndex("lat")
	for i := 1; i <= 100; i++ {
		ix.Add(Document{"duration_ns": int64(i)})
	}
	resp := ix.Search(SearchRequest{
		Query: MatchAll(),
		Aggs: map[string]Agg{
			"lat": {Percentiles: &PercentilesAgg{Field: "duration_ns", Percents: []float64{50, 99}}},
		},
	})
	p := resp.Aggs["lat"].Percentiles
	if p["50"] != 50 || p["99"] != 99 {
		t.Fatalf("percentiles = %v", p)
	}
}

func TestStatsAggregation(t *testing.T) {
	ix := newFixtureIndex()
	resp := ix.Search(SearchRequest{
		Query: Term("session", "s1"),
		Aggs:  map[string]Agg{"d": {Stats: &StatsAgg{Field: "duration_ns"}}},
	})
	st := resp.Aggs["d"].Stats
	if st == nil || st.Count != 4 || st.Min != 10 || st.Max != 40 || st.Sum != 100 || st.Avg != 25 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUpdateByQuery(t *testing.T) {
	ix := newFixtureIndex()
	n := ix.UpdateByQuery(Term("proc_name", "app"), func(d Document) bool {
		d["flagged"] = true
		return true
	})
	if n != 3 {
		t.Fatalf("updated = %d, want 3", n)
	}
	if got := ix.Count(Term("flagged", true)); got != 3 {
		t.Fatalf("flagged count = %d", got)
	}
}

func TestStoreIndexLifecycle(t *testing.T) {
	s := New()
	if err := s.Bulk(context.Background(), "run1", docFixture()); err != nil {
		t.Fatalf("bulk: %v", err)
	}
	if got := s.Indices(); len(got) != 1 || got[0] != "run1" {
		t.Fatalf("indices = %v", got)
	}
	n, err := s.Count(context.Background(), "run1", MatchAll())
	if err != nil || n != 5 {
		t.Fatalf("count = (%d, %v)", n, err)
	}
	if _, err := s.Search(context.Background(), "missing", SearchRequest{}); err == nil {
		t.Fatal("search on missing index succeeded")
	}
	if _, err := s.Count(context.Background(), "missing", MatchAll()); err == nil {
		t.Fatal("count on missing index succeeded")
	}
	s.DeleteIndex("run1")
	if got := s.Indices(); len(got) != 0 {
		t.Fatalf("indices after delete = %v", got)
	}
}

func TestEventDocRoundTrip(t *testing.T) {
	in := event.Event{
		Session:     "s1",
		Syscall:     "read",
		Class:       "data",
		RetVal:      26,
		FD:          23,
		Count:       26,
		PID:         101,
		TID:         102,
		ProcName:    "fluent-bit",
		ThreadName:  "flb-pipeline",
		TimeEnterNS: 100,
		TimeExitNS:  150,
		FileTag:     event.FileTag{Dev: 7340032, Ino: 12, BirthNS: 99},
		FileType:    "regular",
		HasOffset:   true,
		Offset:      26,
	}
	out := DocToEvent(EventToDoc(&in))
	if out != in {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestEventDocOmitsZeroFields(t *testing.T) {
	e := event.Event{Session: "s", Syscall: "close", PID: 1, TID: 1}
	d := EventToDoc(&e)
	for _, f := range []string{FieldFD, FieldArgPath, FieldFileTag, FieldOffset, FieldFilePath} {
		if _, ok := d[f]; ok {
			t.Errorf("zero field %q present in doc", f)
		}
	}
}

func TestCorrelateFilePaths(t *testing.T) {
	ix := newFixtureIndex()
	// Add a tagged event whose open was never captured (unresolvable tag).
	ix.Add(Document{"session": "s1", "syscall": "read", "file_tag": "1 99 1", "ret_val": int64(5)})

	res := CorrelateFilePaths(ix, "s1")
	if res.TagsResolved != 1 {
		t.Fatalf("tags resolved = %d, want 1", res.TagsResolved)
	}
	// Tagged docs in s1: openat(anchor, has kernel_path), write, read, read, orphan read = 5
	if res.EventsWithTag != 5 {
		t.Fatalf("events with tag = %d, want 5", res.EventsWithTag)
	}
	if res.EventsUpdated != 4 { // openat gets path from kernel_path; 3 others via tag... orphan unresolved
		t.Fatalf("events updated = %d, want 4", res.EventsUpdated)
	}
	if res.EventsUnresolved != 1 {
		t.Fatalf("unresolved = %d, want 1", res.EventsUnresolved)
	}
	if f := res.UnresolvedFraction(); f != 0.2 {
		t.Fatalf("unresolved fraction = %v, want 0.2", f)
	}
	// The write event now has the resolved path.
	resp := ix.Search(SearchRequest{Query: Term("syscall", "write")})
	if resp.Hits[0][FieldFilePath] != "/tmp/a" {
		t.Fatalf("write file_path = %v", resp.Hits[0][FieldFilePath])
	}
	// Idempotent: re-running updates nothing more.
	res2 := CorrelateFilePaths(ix, "s1")
	if res2.EventsUpdated != 0 || res2.EventsUnresolved != 1 {
		t.Fatalf("second run = %+v", res2)
	}
}

func TestCorrelateAllSessions(t *testing.T) {
	ix := newFixtureIndex()
	res := CorrelateFilePaths(ix, "")
	if res.TagsResolved != 1 || res.EventsUpdated != 4 {
		t.Fatalf("res = %+v", res)
	}
}
