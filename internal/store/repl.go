package store

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/dio-go/internal/durable"
	"github.com/dsrhaslab/dio-go/internal/event"
)

// Replication data plane (DESIGN.md §14). The primary's WAL is already a
// replication log: every journaled record gets a dense per-index sequence
// number, and this file exposes sequenced ranges of those records
// (ReplRange), full-state bootstraps for followers too far behind
// (ReplBootstrapFrames), and the follower-side apply/bootstrap entry points
// that replay frames through the exact journaling machinery live writes use —
// so a follower's WAL bytes are the primary's WAL suffix and its state is
// fingerprint-identical by construction. The shipper that moves frames
// between nodes lives in internal/repl (it composes this surface with the
// resilience ladder).

// Role is a store's replication role.
type Role int32

const (
	// RolePrimary accepts writes and ships its WAL to followers.
	RolePrimary Role = iota
	// RoleFollower rejects direct writes; state arrives through ReplApply.
	RoleFollower
)

// String returns the role's wire spelling.
func (r Role) String() string {
	if r == RoleFollower {
		return "follower"
	}
	return "primary"
}

var (
	// ErrReadOnlyFollower rejects direct writes on a follower: they must go
	// to the primary, which replicates them back. Non-temporary, so the
	// resilience ladder fails fast instead of retrying into a wall.
	ErrReadOnlyFollower = errors.New("store: follower is read-only; write to the primary")
	// ErrNotFollower rejects replication pushes on a store that is not a
	// follower (split-brain guard: a primary never silently accepts frames).
	ErrNotFollower = errors.New("store: not a follower")
)

// ReplSeqError reports an out-of-sequence replication push: the follower has
// applied Want frames and the primary offered frames starting at Got. The
// shipper answers by resyncing from the follower's reported position, not by
// retrying the same push.
type ReplSeqError struct {
	Want int64 // next sequence the follower will accept
	Got  int64 // sequence the push started at
}

// Error implements error.
func (e *ReplSeqError) Error() string {
	return fmt.Sprintf("store: replication sequence mismatch: follower at %d, push starts at %d", e.Want, e.Got)
}

// Temporary marks the mismatch non-retryable: retrying the identical push
// can never succeed — the shipper must resync first.
func (e *ReplSeqError) Temporary() bool { return false }

// ReplFrame is one replicated WAL record: its primary-assigned sequence, the
// record type, and the verbatim WAL payload. JSON encoding base64s the
// payload, which keeps the HTTP transport trivial; the in-process transport
// passes frames by value.
type ReplFrame struct {
	Seq     int64              `json:"seq"`
	Type    durable.RecordType `json:"type"`
	Payload []byte             `json:"payload"`
	// StartRow is the global row id of the frame's first row, stamped on
	// bootstrap frames (whose rows are gid-contiguous within a frame). A
	// follower rebuilding a tiered primary needs it to place cold rows at
	// their original ids; live replication frames carry 0 and ignore it.
	StartRow int64 `json:"start_row,omitempty"`
}

// ReplSnapshot is a full-state bootstrap package: the primary sequence the
// snapshot corresponds to, the tiered-layout split point (Base: rows below it
// ship from cold segments and must land in a follower segment, rows at or
// above it are the primary's memtable), the retention floor (so cursor-expiry
// semantics survive failover), and the row frames themselves. A snapshot of
// an untiered primary has Base 0 and degenerates to the flat frame list.
type ReplSnapshot struct {
	Seq    int64       `json:"seq"`
	Base   int64       `json:"base,omitempty"`
	Floor  int64       `json:"floor,omitempty"`
	Frames []ReplFrame `json:"frames"`
}

// ReplCursor remembers where in the primary's live WAL file the previous
// ReplRange stopped, so steady-state tailing is an incremental file read
// instead of a scan from the base. It is only a hint: a cursor invalidated by
// a snapshot (WALSeq moved on) is ignored and the scan restarts from the
// base offset.
type ReplCursor struct {
	WALSeq int   `json:"wal_seq"`
	Off    int64 `json:"off"`
	Seq    int64 `json:"seq"`
	Valid  bool  `json:"valid"`
}

// replTail is the in-memory buffer of recent WAL records the shipper reads
// from in steady state. It survives snapshots — the live WAL file is
// truncated when a segment folds it in, but buffered frames remain — so a
// follower lagging by less than the byte budget never needs a bootstrap.
// Frames are appended under the index's appendMu (so buffer order == WAL
// order) and evicted oldest-first once the budget is exceeded. push takes
// ownership of the payload it is given; journalApply arranges ownership —
// transferring the caller's encode buffer outright when it can, cloning
// only for callers that must keep theirs — so the armed ingest path pays
// one buffer allocation per record, not a copy.
type replTail struct {
	armed *atomic.Bool // store-wide arming flag, shared by pointer
	max   int

	mu     sync.Mutex
	frames []ReplFrame
	bytes  int
	start  int // frames[start:] are live; amortizes front eviction
}

func newReplTail(max int, armed *atomic.Bool) *replTail {
	return &replTail{armed: armed, max: max}
}

// wants reports whether the buffer is armed and budgeted — i.e. whether a
// push would retain the payload. Callers check it to decide between
// transferring their buffer and recycling it.
func (t *replTail) wants() bool {
	return t != nil && t.max > 0 && t.armed.Load()
}

// push buffers one record, taking ownership of payload. Callers must have
// checked wants() and must not reuse the buffer afterward.
func (t *replTail) push(seq int64, rt durable.RecordType, payload []byte) {
	if !t.wants() {
		return
	}
	t.mu.Lock()
	t.frames = append(t.frames, ReplFrame{Seq: seq, Type: rt, Payload: payload})
	t.bytes += len(payload)
	for t.bytes > t.max && t.start < len(t.frames)-1 {
		t.bytes -= len(t.frames[t.start].Payload)
		t.frames[t.start].Payload = nil
		t.start++
	}
	if t.start > 64 && t.start > len(t.frames)/2 {
		t.frames = append(t.frames[:0:0], t.frames[t.start:]...)
		t.start = 0
	}
	t.mu.Unlock()
}

// slice returns buffered frames from sequence from onward, bounded by the
// frame and byte budgets. ok is false when the buffer cannot serve from —
// either it is empty or its oldest retained frame is already past from — in
// which case the caller falls back to the WAL file or a bootstrap.
func (t *replTail) slice(from int64, maxFrames, maxBytes int) ([]ReplFrame, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	live := t.frames[t.start:]
	if len(live) == 0 || live[0].Seq > from || live[len(live)-1].Seq < from {
		return nil, false
	}
	i := int(from - live[0].Seq) // sequences are dense, so this is an index
	out := make([]ReplFrame, 0, min(len(live)-i, maxFrames))
	b := 0
	for ; i < len(live) && len(out) < maxFrames && b <= maxBytes; i++ {
		out = append(out, live[i])
		b += len(live[i].Payload)
	}
	return out, true
}

// Role returns the store's replication role.
func (s *Store) Role() Role { return Role(s.role.Load()) }

// SetFollower puts the store in follower mode: direct writes are rejected
// and ReplApply/ReplBootstrap are accepted.
func (s *Store) SetFollower() { s.role.Store(int32(RoleFollower)) }

// Promote flips a follower to primary: it keeps everything it has applied,
// starts accepting writes, and stops accepting replication pushes. Promoting
// a primary is a no-op. Promotion is local and immediate — fencing the old
// primary (if it is merely partitioned, not dead) is the operator's or the
// failover client's concern.
func (s *Store) Promote() { s.role.Store(int32(RolePrimary)) }

// ArmReplication turns on the per-index replication tail buffers. The
// shipper arms the store it serves; unarmed stores skip the buffer copy on
// the ingest hot path entirely, so replication costs nothing until enabled.
func (s *Store) ArmReplication() { s.replArmed.Store(true) }

// replWantsFrames reports whether the replication tail would retain ingest
// frames. Frame-handling callers (the HTTP bulk path) use it to surrender
// their read buffer to the tail instead of recycling it, turning the armed
// hot path's clone into a buffer handoff.
func (s *Store) replWantsFrames() bool {
	return s.replArmed.Load() && s.opts.replTailBytes > 0
}

// ReplHeadSeq returns the named index's head sequence: the number of records
// ever journaled (and therefore the sequence the next record will get).
func (s *Store) ReplHeadSeq(index string) (int64, bool) {
	ix, ok := s.GetIndex(index)
	if !ok || ix.dur == nil {
		return 0, false
	}
	return ix.dur.recSeq.Load(), true
}

// ReplState is the wire shape of GET /_repl/status: the node's role and its
// per-index sequence positions — head sequences on a primary, applied
// primary sequences on a follower. The shipper resyncs from these after a
// sequence mismatch or reconnect.
type ReplState struct {
	Role    string           `json:"role"`
	Indices map[string]int64 `json:"indices"`
}

// ReplStatus reports the store's replication position.
func (s *Store) ReplStatus() ReplState {
	st := ReplState{Role: s.Role().String(), Indices: map[string]int64{}}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for name, ix := range s.indices {
		if s.Role() == RoleFollower {
			st.Indices[name] = ix.replSeq.Load()
		} else if ix.dur != nil {
			st.Indices[name] = ix.dur.recSeq.Load()
		}
	}
	return st
}

// replRangeBudget are the default ReplRange bounds when the caller passes
// non-positive budgets.
const (
	defaultReplFrames = 256
	defaultReplBytes  = 4 << 20
)

// ReplRange returns WAL frames of the named index starting at sequence from,
// bounded by maxFrames/maxBytes (budgets are soft by up to one read chunk;
// non-positive selects defaults). head is the index's current head sequence.
// bootstrap reports that from is no longer retrievable — older than both the
// tail buffer and the live WAL file — so the follower must take a full
// bootstrap instead. cur, when non-nil, carries the file cursor between
// calls so steady-state tailing reads incrementally.
//
// Only durable indices replicate: the WAL is the replication log, so an
// in-memory primary has nothing to ship.
func (s *Store) ReplRange(index string, from int64, cur *ReplCursor, maxFrames, maxBytes int) (frames []ReplFrame, head int64, bootstrap bool, err error) {
	ix, ok := s.GetIndex(index)
	if !ok {
		return nil, 0, false, fmt.Errorf("store: repl range: index %q not found", index)
	}
	d := ix.dur
	if d == nil {
		return nil, 0, false, fmt.Errorf("store: repl range: index %q is not durable", index)
	}
	if maxFrames <= 0 {
		maxFrames = defaultReplFrames
	}
	if maxBytes <= 0 {
		maxBytes = defaultReplBytes
	}
	// The shared gate (read side) pins baseSeq and the live WAL file against
	// a concurrent snapshot for the duration of the scan; writers are not
	// excluded — the tail reader only consumes complete records.
	d.gate.RLock()
	defer d.gate.RUnlock()
	head = d.recSeq.Load()
	switch {
	case from > head:
		// The follower claims more records than this primary ever journaled:
		// divergent histories (e.g. it followed a different promoted node).
		// Only a bootstrap reconciles that.
		return nil, head, true, nil
	case from == head:
		return nil, head, false, nil
	}
	if fr, ok := d.tail.slice(from, maxFrames, maxBytes); ok {
		if cur != nil {
			cur.Valid = false
		}
		return fr, head, false, nil
	}
	if from < d.baseSeq {
		// Folded into the segment and evicted from the buffer: not
		// reconstructible as WAL records anymore.
		return nil, head, true, nil
	}
	// Live WAL file scan: records [baseSeq, head) live in wal-<walSeq>. The
	// cursor skips the prefix already consumed on earlier calls when it still
	// points into this WAL generation.
	seq, off := d.baseSeq, int64(0)
	if cur != nil && cur.Valid && cur.WALSeq == d.walSeq && cur.Seq >= d.baseSeq && cur.Seq <= from {
		seq, off = cur.Seq, cur.Off
	}
	path := filepath.Join(d.dir, durable.WALName(d.walSeq))
	gotBytes := 0
	for len(frames) < maxFrames && gotBytes <= maxBytes && seq < head {
		recs, next, rerr := durable.ReadWALTail(path, off, maxFrames, maxBytes)
		if rerr != nil {
			return nil, head, false, rerr
		}
		if len(recs) == 0 {
			// The remaining records are a concurrent append still in flight;
			// serve what we have, the follower will ask again.
			break
		}
		for _, r := range recs {
			if seq >= from && seq < head {
				frames = append(frames, ReplFrame{Seq: seq, Type: r.Type, Payload: r.Payload})
				gotBytes += len(r.Payload)
			}
			seq++
		}
		off = next
	}
	if cur != nil {
		*cur = ReplCursor{WALSeq: d.walSeq, Off: off, Seq: seq, Valid: true}
	}
	return frames, head, false, nil
}

// ReplBootstrapFrames packages the named index's entire current state for a
// follower bootstrap: cold segment rows first (streamed from the committed
// files, pending rewrites substituted), then the memtable, all in global-id
// order, batched batchRows at a time — typed runs as RecordEvents and
// generic runs as RecordDocs, the exact representations ReplApply journals.
// Every frame is stamped with its first row's global id and frames are
// gid-contiguous internally (batches cut at retention gaps and at the
// cold/hot boundary), so a tiered follower can place cold rows at their
// original ids. Taken under the exclusive gate, so the state is a consistent
// cut and no concurrent commit can delete a segment file mid-stream.
func (s *Store) ReplBootstrapFrames(index string, batchRows int) (ReplSnapshot, error) {
	ix, ok := s.GetIndex(index)
	if !ok {
		return ReplSnapshot{}, fmt.Errorf("store: repl bootstrap: index %q not found", index)
	}
	d := ix.dur
	if d == nil {
		return ReplSnapshot{}, fmt.Errorf("store: repl bootstrap: index %q is not durable", index)
	}
	if batchRows <= 0 {
		batchRows = 1024
	}
	d.gate.Lock()
	defer d.gate.Unlock()
	snap := ReplSnapshot{
		Seq:   d.recSeq.Load(),
		Base:  ix.base.Load(),
		Floor: ix.retFloor.Load(),
	}
	overlay := d.pendingOverlay()
	var (
		evBatch    []event.Event
		docBatch   []Document
		batchStart int64
		expect     int64 = -1
	)
	flushAll := func() error {
		if len(evBatch) > 0 {
			snap.Frames = append(snap.Frames, ReplFrame{
				Type: durable.RecordEvents, StartRow: batchStart,
				Payload: event.EncodeBatch(nil, evBatch),
			})
			evBatch = evBatch[:0]
		}
		if len(docBatch) > 0 {
			payload, err := encodeGob(docBatch)
			if err != nil {
				return err
			}
			snap.Frames = append(snap.Frames, ReplFrame{
				Type: durable.RecordDocs, StartRow: batchStart,
				Payload: payload,
			})
			docBatch = docBatch[:0]
		}
		return nil
	}
	add := func(gid int64, ev *event.Event, doc Document) error {
		typeSwitch := (doc != nil && len(evBatch) > 0) || (doc == nil && len(docBatch) > 0)
		if typeSwitch || (expect >= 0 && gid != expect) || len(evBatch)+len(docBatch) >= batchRows {
			if err := flushAll(); err != nil {
				return err
			}
		}
		if len(evBatch) == 0 && len(docBatch) == 0 {
			batchStart = gid
		}
		if doc != nil {
			docBatch = append(docBatch, doc)
		} else {
			evBatch = append(evBatch, *ev)
		}
		expect = gid + 1
		return nil
	}
	for _, sm := range *d.segs.Load() {
		if sm.EndRow > snap.Base {
			continue
		}
		err := func() error {
			_, rerr := durable.ReadSegment(filepath.Join(d.dir, durable.SegmentName(sm.Seq)),
				func(lg int, ev *event.Event, docB []byte) error {
					gid := sm.StartRow + int64(lg)
					if d2, ok := overlay[int(gid)]; ok {
						if ev != nil {
							e := DocToEvent(d2)
							return add(gid, &e, nil)
						}
						return add(gid, nil, d2)
					}
					if ev != nil {
						return add(gid, ev, nil)
					}
					var d2 Document
					if derr := decodeGob(docB, &d2); derr != nil {
						return derr
					}
					return add(gid, nil, d2)
				})
			return rerr
		}()
		if err != nil {
			return ReplSnapshot{}, fmt.Errorf("store: repl bootstrap: %w", err)
		}
	}
	// The cold/hot boundary must also be a frame boundary, so the follower
	// can route each frame whole.
	if err := flushAll(); err != nil {
		return ReplSnapshot{}, err
	}
	expect = -1
	S := len(ix.shards)
	head := int64(ix.rr.Load())
	// Memtable reads take no shard locks: the exclusive gate excludes every
	// row mutator, and concurrent searches only read.
	for g := snap.Base; g < head; g++ {
		mg := int(g - snap.Base)
		sh := ix.shards[mg%S]
		local := mg / S
		if doc := sh.docs[local]; doc != nil {
			if err := add(g, nil, doc); err != nil {
				return ReplSnapshot{}, err
			}
		} else if err := add(g, &sh.events[local], nil); err != nil {
			return ReplSnapshot{}, err
		}
	}
	if err := flushAll(); err != nil {
		return ReplSnapshot{}, err
	}
	return snap, nil
}

// ReplApply applies replicated frames to the named index on a follower. from
// must equal the follower's applied sequence (returned on mismatch inside
// *ReplSeqError so the shipper can resync), and frames must be consecutive
// from there. Each frame journals through the same machinery as a live
// write — payload verbatim — so a durable follower's WAL is byte-identical
// to the primary's suffix and recovery/fingerprint guarantees carry over
// unchanged. Returns the new applied sequence.
func (s *Store) ReplApply(ctx context.Context, index string, from int64, frames []ReplFrame) (int64, error) {
	if s.Role() != RoleFollower {
		return 0, ErrNotFollower
	}
	ix, err := s.indexOrCreate(index)
	if err != nil {
		return 0, err
	}
	ix.replMu.Lock()
	defer ix.replMu.Unlock()
	applied := ix.replSeq.Load()
	if from != applied {
		s.tm.replRejects.Inc()
		return applied, &ReplSeqError{Want: applied, Got: from}
	}
	start := time.Now()
	for i := range frames {
		if err := ctx.Err(); err != nil {
			return ix.replSeq.Load(), err
		}
		f := &frames[i]
		if f.Seq != applied+int64(i) {
			s.tm.replRejects.Inc()
			return ix.replSeq.Load(), &ReplSeqError{Want: applied + int64(i), Got: f.Seq}
		}
		if err := ix.applyReplFrame(f); err != nil {
			return ix.replSeq.Load(), err
		}
		ix.replSeq.Add(1)
		s.tm.replApplied.Inc()
	}
	if len(frames) > 0 {
		s.tm.replApplyNS.Observe(float64(time.Since(start).Nanoseconds()) / float64(len(frames)))
	}
	return ix.replSeq.Load(), nil
}

// applyReplFrame applies one replicated record. On a durable follower the
// payload journals verbatim through journalApply (the same appendMu-guarded
// append + placement live writes use); an in-memory follower applies it
// straight to shard storage through the recovery path.
func (ix *Index) applyReplFrame(f *ReplFrame) error {
	if ix.dur == nil {
		_, err := ix.applyWALRecord(f.Type, f.Payload)
		return err
	}
	ix.dur.gate.RLock()
	defer ix.dur.gate.RUnlock()
	switch f.Type {
	case durable.RecordEvents:
		events, err := event.DecodeBatch(f.Payload, nil)
		if err != nil {
			return fmt.Errorf("store: repl apply events: %w", err)
		}
		return ix.journalApply(durable.RecordEvents, f.Payload, true, len(events), func(start int) {
			ix.addEventsAt(start, events)
		})
	case durable.RecordDocs:
		var docs []Document
		if err := decodeGob(f.Payload, &docs); err != nil {
			return err
		}
		return ix.journalApply(durable.RecordDocs, f.Payload, true, len(docs), func(start int) {
			ix.addBulkAt(start, docs)
		})
	case durable.RecordRewrite:
		var rws []walRewrite
		if err := decodeGob(f.Payload, &rws); err != nil {
			return err
		}
		// Mirror the live UpdateByQuery shape: effects apply under shard
		// locks, then the record journals (gate → shard locks → appendMu).
		if err := ix.applyRewrites(rws); err != nil {
			return err
		}
		return ix.journalApply(durable.RecordRewrite, f.Payload, true, 0, nil)
	default:
		return fmt.Errorf("store: repl apply: unknown record type %d", f.Type)
	}
}

// bootSource adapts decoded bootstrap rows to durable.WriteSegment, keeping
// each row's original (absolute) global id so a tiered follower's cold
// segment maps gids identically to the primary's.
type bootSource struct {
	rows []durable.SegmentRow
	gids []int
}

func (b *bootSource) NumRows() int                 { return len(b.rows) }
func (b *bootSource) Row(i int) durable.SegmentRow { return b.rows[i] }
func (b *bootSource) Gid(i int) int                { return b.gids[i] }

// ReplBootstrap replaces the named index's state wholesale with a primary
// state snapshot: the existing index (if any) is dropped, cold frames (rows
// below snap.Base, present when the primary runs tiered retention) rebuild
// as a single level-0 segment committed before any journaling, hot frames
// apply as fresh journal records, and the follower's sequence aligns to
// snap.Seq — the primary head the snapshot corresponds to. On a durable
// follower the alignment offset persists via a forced segment snapshot, so
// a restart resumes from snap.Seq rather than re-bootstrapping.
func (s *Store) ReplBootstrap(ctx context.Context, index string, snap ReplSnapshot) error {
	if s.Role() != RoleFollower {
		return ErrNotFollower
	}
	s.DeleteIndex(index)
	ix, err := s.indexOrCreate(index)
	if err != nil {
		return err
	}
	ix.replMu.Lock()
	defer ix.replMu.Unlock()
	cold := snap.Frames
	var hot []ReplFrame
	if snap.Base > 0 {
		for i := range snap.Frames {
			if snap.Frames[i].StartRow >= snap.Base {
				cold, hot = snap.Frames[:i], snap.Frames[i:]
				break
			}
		}
		if len(cold) == len(snap.Frames) {
			hot = nil
		}
		if err := ix.bootstrapColdSegment(ctx, snap, cold); err != nil {
			return err
		}
	} else {
		hot = snap.Frames
	}
	for i := range hot {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := ix.applyReplFrame(&hot[i]); err != nil {
			return err
		}
	}
	if d := ix.dur; d != nil {
		d.replOff.Store(snap.Seq - d.recSeq.Load())
		if err := d.snapshot(ix, true); err != nil {
			return err
		}
	}
	ix.replSeq.Store(snap.Seq)
	return nil
}

// bootstrapColdSegment materializes a bootstrap's cold frames as one
// committed level-0 segment spanning rows [0, snap.Base) and publishes the
// tiered view (base, retention floor) before hot frames journal. Only a
// durable follower can hold cold rows; an in-memory follower has nowhere to
// put segment files.
func (ix *Index) bootstrapColdSegment(ctx context.Context, snap ReplSnapshot, cold []ReplFrame) error {
	d := ix.dur
	if d == nil {
		return fmt.Errorf("store: repl bootstrap: tiered snapshot (base=%d) requires a durable follower", snap.Base)
	}
	src := &bootSource{}
	for i := range cold {
		if err := ctx.Err(); err != nil {
			return err
		}
		f := &cold[i]
		switch f.Type {
		case durable.RecordEvents:
			events, err := event.DecodeBatch(f.Payload, nil)
			if err != nil {
				return fmt.Errorf("store: repl bootstrap cold events: %w", err)
			}
			for j := range events {
				src.rows = append(src.rows, durable.SegmentRow{Event: &events[j]})
				src.gids = append(src.gids, int(f.StartRow)+j)
			}
		case durable.RecordDocs:
			var docs []Document
			if err := decodeGob(f.Payload, &docs); err != nil {
				return fmt.Errorf("store: repl bootstrap cold docs: %w", err)
			}
			for j, doc := range docs {
				blob, err := encodeGob(doc)
				if err != nil {
					return err
				}
				row := durable.SegmentRow{Doc: blob}
				if t, ok := numeric(doc[FieldTimeEnter]); ok {
					row.DocTime, row.DocTimed = int64(t), true
				}
				src.rows = append(src.rows, row)
				src.gids = append(src.gids, int(f.StartRow)+j)
			}
		default:
			return fmt.Errorf("store: repl bootstrap: cold frame type %d", f.Type)
		}
	}
	if int64(len(src.rows)) != snap.Base {
		return fmt.Errorf("store: repl bootstrap: cold rows %d != base %d", len(src.rows), snap.Base)
	}
	d.gate.Lock()
	defer d.gate.Unlock()
	info, err := durable.WriteSegment(filepath.Join(d.dir, durable.SegmentName(0)), len(ix.shards), src)
	if err != nil {
		return err
	}
	segs := []durable.SegmentMeta{{
		Seq: 0, Level: 0,
		Rows: int64(len(src.rows)), StartRow: 0, EndRow: snap.Base,
		MinTime: info.MinTime, MaxTime: info.MaxTime,
		Bytes: info.Bytes, Generic: int64(info.Generic),
	}}
	d.segSeq = 1
	if err := durable.CommitManifest(d.dir, durable.Manifest{
		Shards: len(ix.shards),
		WALSeq: d.walSeq, SegmentSeq: d.segSeq, Segments: segs,
		BaseSeq: 0, RetentionFloor: snap.Floor,
	}); err != nil {
		return err
	}
	for _, sh := range ix.shards {
		sh.mu.Lock()
	}
	ix.base.Store(snap.Base)
	ix.rr.Store(uint64(snap.Base))
	ix.retFloor.Store(snap.Floor)
	ix.generic.Add(int64(info.Generic))
	d.publishSegsLocked(ix, segs)
	for _, sh := range ix.shards {
		sh.mu.Unlock()
	}
	return nil
}
