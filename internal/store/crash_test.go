package store

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/durable"
	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// The crash matrix: every test in this file simulates one kill point of the
// durability protocol by doing to the data directory exactly what a crash
// would (torn WAL tails, orphan temporaries, superseded files that were
// never deleted), then recovers and requires the reopened store to be
// byte-identical — full typed search, document search, aggregations, and
// counts — to a control store that never crashed.

const crashIndex = "events"

// crashEvents builds one deterministic typed batch. Timestamps exceed 2^53
// so any float64 coercion on the journal path would corrupt them.
func crashEvents(round int) []event.Event {
	base := int64(1<<60) + int64(round)*1_000_000
	evs := make([]event.Event, 0, 8)
	for i := 0; i < 8; i++ {
		evs = append(evs, event.Event{
			Session: "crash", Syscall: []string{"read", "write", "openat", "fsync"}[i%4],
			Class: "file", ProcName: "app", ThreadName: "app-worker",
			PID: 100 + round, TID: 200 + i,
			RetVal: int64(i * 13), FD: 3 + i, Count: 4096,
			TimeEnterNS: base + int64(i)*1000, TimeExitNS: base + int64(i)*1000 + 500,
			FileTag: event.FileTag{Dev: 8, Ino: uint64(40 + i%3), BirthNS: base},
			Offset:  int64(i) * 4096, HasOffset: i%2 == 0,
			ArgPath: "/data/f" + string(rune('a'+i%3)),
		})
	}
	return evs
}

// crashDocs builds one deterministic generic-document batch (the NDJSON
// ingest shape: schema fields plus free-form extras).
func crashDocs(round int) []Document {
	docs := make([]Document, 0, 4)
	for i := 0; i < 4; i++ {
		docs = append(docs, Document{
			FieldSession: "crash", FieldSyscall: "ioctl",
			FieldRetVal: int64(round*10 + i), FieldPID: int64(100 + round),
			FieldTimeEnter: int64(1<<60) + int64(round)*1_000_000 + int64(900+i),
			"custom_note":  "round",
			"custom_seq":   int64(i),
		})
	}
	return docs
}

// ingestRound applies one round of mixed writes: a typed batch, a generic
// batch, and (on odd rounds) an update-by-query rewrite — the three journal
// record types.
func ingestRound(t *testing.T, st *Store, round int) {
	t.Helper()
	ctx := context.Background()
	if err := st.BulkEvents(ctx, crashIndex, crashEvents(round)); err != nil {
		t.Fatalf("round %d: bulk events: %v", round, err)
	}
	if err := st.Bulk(ctx, crashIndex, crashDocs(round)); err != nil {
		t.Fatalf("round %d: bulk docs: %v", round, err)
	}
	if round%2 == 1 {
		_, err := st.UpdateByQuery(ctx, crashIndex, Term(FieldSyscall, "openat"), func(d Document) bool {
			d[FieldFilePath] = "/resolved/by/round"
			return true
		})
		if err != nil {
			t.Fatalf("round %d: update-by-query: %v", round, err)
		}
	}
}

// controlStore replays rounds [0, rounds) into a fresh in-memory store: the
// never-crashed reference state.
func controlStore(t *testing.T, rounds int) *Store {
	t.Helper()
	st := New()
	for r := 0; r < rounds; r++ {
		ingestRound(t, st, r)
	}
	return st
}

// fingerprint serializes everything a reader can observe: the full typed
// result set, the full document result set, a three-way aggregation, and
// the total count. Two stores with equal fingerprints are indistinguishable
// to every consumer in the repository.
func fingerprint(t *testing.T, st *Store) string {
	t.Helper()
	ctx := context.Background()
	req := SearchRequest{Query: MatchAll(), Size: -1, Aggs: map[string]Agg{
		"by_syscall": {Terms: &TermsAgg{Field: FieldSyscall}},
		"ret_stats":  {Stats: &StatsAgg{Field: FieldRetVal}},
		"timeline":   {DateHistogram: &DateHistogramAgg{Field: FieldTimeEnter, IntervalNS: 1_000_000}},
	}}
	evs, err := st.SearchEvents(ctx, crashIndex, req)
	if err != nil {
		t.Fatalf("fingerprint typed search: %v", err)
	}
	docs, err := st.Search(ctx, crashIndex, req)
	if err != nil {
		t.Fatalf("fingerprint doc search: %v", err)
	}
	n, err := st.Count(ctx, crashIndex, MatchAll())
	if err != nil {
		t.Fatalf("fingerprint count: %v", err)
	}
	blob, err := json.Marshal(struct {
		Events EventsResult
		Docs   SearchResponse
		Count  int
	}{evs, docs, n})
	if err != nil {
		t.Fatalf("fingerprint marshal: %v", err)
	}
	return string(blob)
}

func openDurable(t *testing.T, dir string, opts ...Option) *Store {
	t.Helper()
	st, err := Open(append([]Option{
		WithDataDir(dir),
		WithFsyncPolicy(FsyncAlways),
		WithSnapshotInterval(0), // snapshots only when the test asks
	}, opts...)...)
	if err != nil {
		t.Fatalf("open durable store: %v", err)
	}
	return st
}

func indexDir(dir string) string { return filepath.Join(dir, indexDirName(crashIndex)) }
func walFile(dir string, seq int) string {
	return filepath.Join(indexDir(dir), durable.WALName(seq))
}

// TestDurableRoundTripAcrossReopen is the base case: no crash, just close
// and reopen, with a snapshot in the middle so recovery exercises segment
// load + WAL replay together.
func TestDurableRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir, WithShards(4), WithFsyncInterval(time.Millisecond))
	ingestRound(t, st, 0)
	ingestRound(t, st, 1)
	if err := st.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	ingestRound(t, st, 2) // lands in the post-snapshot WAL
	want := fingerprint(t, st)
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen with a different configured shard count: the manifest's shard
	// count must win, or gid arithmetic would scatter recovered rows.
	re := openDurable(t, dir, WithShards(7))
	defer re.Close()
	if got := fingerprint(t, re); got != want {
		t.Fatalf("reopened state diverged from pre-close state\n got: %.200s...\nwant: %.200s...", got, want)
	}
	if got := fingerprint(t, controlStore(t, 3)); got != want {
		t.Fatalf("durable state diverged from in-memory control")
	}
	ix, _ := re.GetIndex(crashIndex)
	if ix.NumShards() != 4 {
		t.Fatalf("recovered shards = %d, want the manifest's 4", ix.NumShards())
	}
}

// TestCrashTornWALTail kills the store mid-append: the WAL ends in a
// partially-written record. Recovery must truncate the torn tail, restore
// exactly the state of every complete record, and leave the log usable for
// new appends.
func TestCrashTornWALTail(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	st := openDurable(t, dir)
	ingestRound(t, st, 0)
	ingestRound(t, st, 1)
	cut, err := os.Stat(walFile(dir, 0))
	if err != nil {
		t.Fatalf("stat wal: %v", err)
	}
	ingestRound(t, st, 2) // this round will be torn away
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The kill point: the first record of round 2 made it only partially to
	// disk. Cutting a few bytes into it leaves a frame whose payload is
	// shorter than its header claims.
	if err := os.Truncate(walFile(dir, 0), cut.Size()+5); err != nil {
		t.Fatalf("truncate wal: %v", err)
	}

	re := openDurable(t, dir, WithTelemetry(reg))
	defer re.Close()
	if got, want := fingerprint(t, re), fingerprint(t, controlStore(t, 2)); got != want {
		t.Fatalf("recovered state != never-crashed control (rounds 0-1)")
	}
	if n := reg.Counter(telemetry.MetricWALTornTails, "").Value(); n != 1 {
		t.Fatalf("torn-tail counter = %d, want 1", n)
	}
	// The repaired log must accept new writes and survive another reopen.
	ingestRound(t, re, 2)
	want := fingerprint(t, re)
	re.Close()
	re2 := openDurable(t, dir)
	defer re2.Close()
	if got := fingerprint(t, re2); got != want {
		t.Fatalf("post-repair writes lost on second recovery")
	}
}

// TestCrashMidSnapshot kills the store between snapshot steps: the next WAL
// file exists, the segment is half-written as a temporary, and the manifest
// was never committed. Recovery must ignore every orphan and rebuild purely
// from the old WAL.
func TestCrashMidSnapshot(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir)
	ingestRound(t, st, 0)
	ingestRound(t, st, 1)
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The kill point: snapshot created wal-000001 (step 1) and was writing
	// the segment temporary (step 2) when the process died — the manifest
	// (step 3, the commit point) never landed.
	if err := os.WriteFile(walFile(dir, 1), nil, 0o644); err != nil {
		t.Fatalf("plant orphan wal: %v", err)
	}
	tmp := filepath.Join(indexDir(dir), durable.SegmentName(1)+".tmp")
	if err := os.WriteFile(tmp, []byte("half-written segment"), 0o644); err != nil {
		t.Fatalf("plant orphan segment tmp: %v", err)
	}

	re := openDurable(t, dir)
	defer re.Close()
	if got, want := fingerprint(t, re), fingerprint(t, controlStore(t, 2)); got != want {
		t.Fatalf("recovered state != never-crashed control")
	}
	for _, orphan := range []string{walFile(dir, 1), tmp} {
		if _, err := os.Stat(orphan); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived recovery", filepath.Base(orphan))
		}
	}
}

// TestCrashAfterSnapshotBeforeTruncate kills the store after the manifest
// committed but before the superseded WAL was deleted: both generations are
// on disk. Recovery must follow the manifest — segment plus new WAL — and
// not double-apply the old log.
func TestCrashAfterSnapshotBeforeTruncate(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir)
	ingestRound(t, st, 0)
	ingestRound(t, st, 1)
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	oldWAL, err := os.ReadFile(walFile(dir, 0))
	if err != nil {
		t.Fatalf("save old wal: %v", err)
	}

	st = openDurable(t, dir)
	if err := st.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	ingestRound(t, st, 2) // journals into wal-000001, after the segment
	if err := st.Close(); err != nil {
		t.Fatalf("close after snapshot: %v", err)
	}
	// The kill point: resurrect the superseded WAL the cleanup step never
	// got to delete.
	if err := os.WriteFile(walFile(dir, 0), oldWAL, 0o644); err != nil {
		t.Fatalf("restore superseded wal: %v", err)
	}

	re := openDurable(t, dir)
	defer re.Close()
	if got, want := fingerprint(t, re), fingerprint(t, controlStore(t, 3)); got != want {
		t.Fatalf("recovered state != never-crashed control (old WAL double-applied or segment ignored)")
	}
	if _, err := os.Stat(walFile(dir, 0)); !os.IsNotExist(err) {
		t.Fatalf("superseded wal-000000 survived recovery")
	}
}

// TestRecoveryConservationLedger checks the recovery conservation
// invariant through the telemetry ledger: recovered rows == segment rows +
// replayed WAL rows, with replayed batches counted.
func TestRecoveryConservationLedger(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir)
	ingestRound(t, st, 0)
	ingestRound(t, st, 1)
	if err := st.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	ingestRound(t, st, 2)
	segRows := 2 * (len(crashEvents(0)) + len(crashDocs(0)))
	walRows := len(crashEvents(2)) + len(crashDocs(2))
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	reg := telemetry.NewRegistry()
	re := openDurable(t, dir, WithTelemetry(reg))
	defer re.Close()
	n, err := re.Count(context.Background(), crashIndex, MatchAll())
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	replayed := int(reg.Counter(telemetry.MetricReplayedEvents, "").Value())
	if replayed != walRows {
		t.Fatalf("replayed rows = %d, want %d", replayed, walRows)
	}
	if n != segRows+replayed {
		t.Fatalf("conservation violated: %d docs != %d segment rows + %d replayed rows", n, segRows, replayed)
	}
	if b := reg.Counter(telemetry.MetricReplayedBatches, "").Value(); b == 0 {
		t.Fatalf("replayed-batch counter did not advance")
	}
}

// TestDeleteIndexRemovesDurableState checks that dropping an index removes
// its directory, so a reopen does not resurrect it.
func TestDeleteIndexRemovesDurableState(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir)
	ingestRound(t, st, 0)
	st.DeleteIndex(crashIndex)
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	re := openDurable(t, dir)
	defer re.Close()
	if _, ok := re.GetIndex(crashIndex); ok {
		t.Fatalf("deleted index resurrected on reopen")
	}
}

// TestFrameJournalRoundTrip covers the verbatim-frame WAL path: typed
// batches shipped as binary frames through the HTTP server journal the
// received bytes directly, and recovery must rebuild the same state as
// direct in-process ingest.
func TestFrameJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir)
	srv := httptest.NewServer(NewServer(st))
	c := NewClient(srv.URL, WithAPIPrefix("/v1"))
	ctx := context.Background()
	for r := 0; r < 2; r++ {
		if err := c.BulkEvents(ctx, crashIndex, crashEvents(r)); err != nil {
			t.Fatalf("round %d: ship frame: %v", r, err)
		}
	}
	if c.BinaryDisabled() {
		t.Fatal("client fell back to NDJSON; frame path not exercised")
	}
	want := fingerprint(t, st)
	srv.Close()
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re := openDurable(t, dir)
	defer re.Close()
	if got := fingerprint(t, re); got != want {
		t.Fatalf("frame-journaled state diverged after recovery")
	}
	control := New()
	for r := 0; r < 2; r++ {
		if err := control.BulkEvents(ctx, crashIndex, crashEvents(r)); err != nil {
			t.Fatalf("control round %d: %v", r, err)
		}
	}
	if got := fingerprint(t, control); got != want {
		t.Fatalf("frame-journaled state != direct-ingest control")
	}
}

// TestContextCancellationStopsOps checks the context-first surface: a
// cancelled context refuses writes and aborts read fan-out with the
// context's error.
func TestContextCancellationStopsOps(t *testing.T) {
	st := New(WithShards(8))
	if err := st.Bulk(context.Background(), crashIndex, crashDocs(0)); err != nil {
		t.Fatalf("seed: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := st.Bulk(ctx, crashIndex, crashDocs(1)); err != context.Canceled {
		t.Fatalf("bulk on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := st.Search(ctx, crashIndex, SearchRequest{Query: MatchAll()}); err != context.Canceled {
		t.Fatalf("search on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := st.Count(ctx, crashIndex, MatchAll()); err != context.Canceled {
		t.Fatalf("count on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := st.UpdateByQuery(ctx, crashIndex, MatchAll(), func(Document) bool { return false }); err != context.Canceled {
		t.Fatalf("update-by-query on cancelled ctx = %v, want context.Canceled", err)
	}
	// The store must still be fully usable with a live context.
	if n, err := st.Count(context.Background(), crashIndex, MatchAll()); err != nil || n != len(crashDocs(0)) {
		t.Fatalf("count after cancelled ops = %d, %v", n, err)
	}
}
