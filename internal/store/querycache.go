package store

import (
	"container/list"
	"context"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// The query cache memoizes search responses per index, keyed by
// (index epoch, canonical request fingerprint). Invalidation is by epoch
// alone: every mutation bumps the index's epoch counter at both its start
// and its end, so stale entries die without anyone scanning the cache — a
// lookup whose entry carries an old epoch misses (and evicts the entry
// lazily), and a response computed while a mutation was in flight is never
// inserted, because the insert re-checks that the epoch did not move since
// it was captured. The double bump means an overlapping mutation always
// moves the epoch at least once inside the search's capture window.
//
// Concurrent-visibility fine print: a mutation that began before the search
// captured its epoch and finishes after the insert can leave a briefly
// servable entry reflecting the store's partially-applied state. That is
// exactly the visibility a concurrent uncached search has (shards lock
// independently), and the mutation's end-of-apply bump retires the entry.
//
// Cached responses are shared between callers and must be treated as
// read-only — the same de-facto rule the store already has, since generic
// Document hits alias shard storage.

// queryCache is one index's bounded LRU of search responses.
type queryCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evicts *telemetry.Counter // nil-safe
}

type cacheEntry struct {
	key   string
	epoch uint64
	val   any // SearchResponse or EventsResult
}

func newQueryCache(capacity int, hits, misses, evicts *telemetry.Counter) *queryCache {
	return &queryCache{
		cap:    capacity,
		ll:     list.New(),
		items:  make(map[string]*list.Element, capacity),
		hits:   hits,
		misses: misses,
		evicts: evicts,
	}
}

// get returns the cached response for key if it was computed at the current
// epoch; an entry from an older epoch is evicted on sight.
func (c *queryCache) get(key string, epoch uint64) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.epoch != epoch {
		c.ll.Remove(el)
		delete(c.items, key)
		c.evicts.Inc()
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return e.val, true
}

// put inserts (or refreshes) a response computed at epoch, evicting the
// least-recently-used entry past capacity.
func (c *queryCache) put(key string, epoch uint64, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		e.epoch, e.val = epoch, val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, epoch: epoch, val: val})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*cacheEntry).key)
		c.evicts.Inc()
	}
}

// size returns the live entry count (the entries gauge).
func (c *queryCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheable limits memoization to bounded pages: Size <= 0 means "return
// every hit", which is a bulk export, not a dashboard query, and one such
// entry could pin an arbitrarily large response.
func cacheable(req SearchRequest) bool { return req.Size > 0 }

// readTelemetry carries the read-path counters wired by the owning Store
// (rollup serves and cold-segment pruning); the zero value (nil counters) is
// a valid no-op for bare indices.
type readTelemetry struct {
	rollupHits, rollupMisses, rollupRebuilds *telemetry.Counter
	segOpened, segPruned                     *telemetry.Counter
}

// cachedSearchCtx is searchCtx behind the query cache. The epoch is captured
// before the search runs and re-checked before insert, so a response computed
// while a mutation was in flight is never cached; a lookup only answers from
// an entry whose epoch is still current. The legacy ablation bypasses the
// cache entirely so its benchmarks measure the scan, not the memo.
func (ix *Index) cachedSearchCtx(ctx context.Context, req SearchRequest) (SearchResponse, error) {
	c := ix.cache
	if c == nil || !cacheable(req) || ix.legacy.Load() {
		return ix.searchCtx(ctx, req)
	}
	key := cacheKey('S', req, ix.generic.Load() == 0)
	e := ix.epoch.Load()
	if v, ok := c.get(key, e); ok {
		return v.(SearchResponse), nil
	}
	resp, err := ix.searchCtx(ctx, req)
	if err != nil {
		return resp, err
	}
	if ix.epoch.Load() == e {
		c.put(key, e, resp)
	}
	return resp, nil
}

// cachedSearchEventsCtx is searchEventsCtx behind the query cache, under a
// distinct key kind — the two response shapes share a fingerprint otherwise.
func (ix *Index) cachedSearchEventsCtx(ctx context.Context, req SearchRequest) (EventsResult, error) {
	c := ix.cache
	if c == nil || !cacheable(req) || ix.legacy.Load() {
		return ix.searchEventsCtx(ctx, req)
	}
	key := cacheKey('E', req, ix.generic.Load() == 0)
	e := ix.epoch.Load()
	if v, ok := c.get(key, e); ok {
		return v.(EventsResult), nil
	}
	res, err := ix.searchEventsCtx(ctx, req)
	if err != nil {
		return res, err
	}
	if ix.epoch.Load() == e {
		c.put(key, e, res)
	}
	return res, nil
}

// --- Canonical fingerprints ---
//
// Semantically identical requests must map to one cache key: JSON
// round-trips randomize agg map order, callers spell the same filter as
// Must(q) or q, terms lists reorder, and integer range bounds can arrive as
// GT n or GTE n+1. The fingerprint is the full canonical string (no
// hashing, so distinct requests can never collide into a stale answer).

// intRangeFields are the schema fields that hold integral values on typed
// rows, where GT b ≡ GTE b+1 (and LT b ≡ LTE b-1) for integral b. The
// folding applies only while the index holds no generic rows — an arbitrary
// JSON document can store 5.5 in ret_val, and GT 5 ≢ GTE 6 there.
var intRangeFields = map[string]bool{
	FieldTimeEnter: true, FieldTimeExit: true, FieldDuration: true,
	FieldRetVal: true, FieldFD: true, FieldCount: true, FieldArgOffset: true,
	FieldWhence: true, FieldFlags: true, FieldMode: true, FieldPID: true,
	FieldTID: true, FieldDevNo: true, FieldInodeNo: true, FieldTagTS: true,
	FieldOffset: true,
}

// maxExactInt is the largest magnitude a float64 represents exactly for
// every integer below it; bound folding past it could change results.
const maxExactInt = float64(1 << 53)

// cacheKey renders a request as its canonical fingerprint. kind separates
// the two response shapes ('S' document search, 'E' typed search) that one
// request can produce. intSafe enables integer range-bound folding.
func cacheKey(kind byte, req SearchRequest, intSafe bool) string {
	var b strings.Builder
	b.Grow(128)
	b.WriteByte(kind)
	b.WriteString("|q:")
	b.WriteString(canonQuery(req.Query, intSafe))
	b.WriteString("|s:")
	for _, s := range req.Sort {
		b.WriteString(s.Field)
		if s.Desc {
			b.WriteString("-,")
		} else {
			b.WriteString("+,")
		}
	}
	b.WriteString("|w:")
	b.WriteString(strconv.Itoa(req.From))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(req.Size))
	if len(req.SearchAfter) > 0 {
		b.WriteString("|c:")
		for _, v := range req.SearchAfter {
			b.WriteString(scalarKey(v))
			b.WriteByte(',')
		}
	}
	if len(req.Aggs) > 0 {
		b.WriteString("|a:")
		b.WriteString(canonAggs(req.Aggs, intSafe))
	}
	return b.String()
}

// canonQuery mirrors Query.matches' evaluation order exactly: the first set
// clause wins, extra clauses are ignored, and an empty bool behaves like
// match-all.
func canonQuery(q Query, intSafe bool) string {
	switch {
	case q.Term != nil:
		return "t(" + q.Term.Field + "=" + scalarKey(q.Term.Value) + ")"
	case q.Terms != nil:
		keys := make([]string, 0, len(q.Terms.Values))
		for _, v := range q.Terms.Values {
			keys = append(keys, scalarKey(v))
		}
		sort.Strings(keys)
		keys = dedupSorted(keys)
		return "ts(" + q.Terms.Field + "=" + strings.Join(keys, ",") + ")"
	case q.Range != nil:
		return canonRange(q.Range, intSafe)
	case q.Prefix != nil:
		return "p(" + q.Prefix.Field + "=" + strconv.Quote(q.Prefix.Value) + ")"
	case q.Exists != nil:
		return "e(" + q.Exists.Field + ")"
	case q.Bool != nil:
		return canonBool(q.Bool, intSafe)
	default:
		return "*"
	}
}

// canonRange folds each strict integral bound on an integer field into its
// inclusive equivalent and collapses redundant bounds (GTE 6 ∧ GT 5 ≡ GTE 6).
func canonRange(r *RangeQuery, intSafe bool) string {
	gte, lte, gt, lt := r.GTE, r.LTE, r.GT, r.LT
	if intSafe && intRangeFields[r.Field] {
		if gt != nil && isExactInt(*gt) {
			v := *gt + 1
			gte, gt = maxBound(gte, &v), nil
		}
		if lt != nil && isExactInt(*lt) {
			v := *lt - 1
			lte, lt = minBound(lte, &v), nil
		}
	}
	var b strings.Builder
	b.WriteString("r(")
	b.WriteString(r.Field)
	writeBound := func(tag string, v *float64) {
		if v == nil {
			return
		}
		b.WriteByte(',')
		b.WriteString(tag)
		b.WriteString(strconv.FormatFloat(*v, 'g', -1, 64))
	}
	writeBound("gte:", gte)
	writeBound("lte:", lte)
	writeBound("gt:", gt)
	writeBound("lt:", lt)
	b.WriteByte(')')
	return b.String()
}

func isExactInt(f float64) bool {
	return f == math.Trunc(f) && math.Abs(f) < maxExactInt
}

func maxBound(a, b *float64) *float64 {
	if a == nil || *b > *a {
		return b
	}
	return a
}

func minBound(a, b *float64) *float64 {
	if a == nil || *b < *a {
		return b
	}
	return a
}

// canonBool sorts each clause list (must/should/must-not are
// order-insensitive), dedupes, and unwraps the degenerate single-clause
// wrappers Must(q) and Should(q), which evaluate identically to q.
func canonBool(q *BoolQuery, intSafe bool) string {
	enc := func(qs []Query) []string {
		out := make([]string, 0, len(qs))
		for _, sub := range qs {
			out = append(out, canonQuery(sub, intSafe))
		}
		sort.Strings(out)
		return dedupSorted(out)
	}
	must, should, not := enc(q.Must), enc(q.Should), enc(q.MustNot)
	if len(should) == 0 && len(not) == 0 {
		switch len(must) {
		case 0:
			return "*"
		case 1:
			return must[0]
		}
	}
	if len(must) == 0 && len(not) == 0 && len(should) == 1 {
		return should[0]
	}
	return "b(m:" + strings.Join(must, ";") +
		"|s:" + strings.Join(should, ";") +
		"|n:" + strings.Join(not, ";") + ")"
}

func dedupSorted(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// canonAggs renders an agg map with names sorted, fixing JSON map-order
// nondeterminism.
func canonAggs(aggs map[string]Agg, intSafe bool) string {
	names := make([]string, 0, len(aggs))
	for n := range aggs {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(strconv.Quote(n))
		b.WriteByte('=')
		b.WriteString(canonAgg(aggs[n], intSafe))
		b.WriteByte(';')
	}
	return b.String()
}

func canonAgg(a Agg, intSafe bool) string {
	var b strings.Builder
	switch {
	case a.Terms != nil:
		b.WriteString("terms(")
		b.WriteString(a.Terms.Field)
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(a.Terms.Size))
		b.WriteByte(')')
	case a.DateHistogram != nil:
		b.WriteString("dh(")
		b.WriteString(a.DateHistogram.Field)
		b.WriteByte(',')
		b.WriteString(strconv.FormatInt(a.DateHistogram.IntervalNS, 10))
		b.WriteByte(')')
	case a.Percentiles != nil:
		// Percent order and duplicates don't affect the result map; the
		// empty list means the documented default set.
		pcts := a.Percentiles.Percents
		if len(pcts) == 0 {
			pcts = []float64{50, 90, 95, 99}
		}
		sorted := append([]float64(nil), pcts...)
		sort.Float64s(sorted)
		b.WriteString("pct(")
		b.WriteString(a.Percentiles.Field)
		prev := math.NaN()
		for _, p := range sorted {
			if p == prev {
				continue
			}
			prev = p
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(p, 'g', -1, 64))
		}
		b.WriteByte(')')
	case a.Stats != nil:
		b.WriteString("stats(")
		b.WriteString(a.Stats.Field)
		b.WriteByte(')')
	default:
		b.WriteString("none")
	}
	if len(a.Aggs) > 0 {
		b.WriteString("{")
		b.WriteString(canonAggs(a.Aggs, intSafe))
		b.WriteString("}")
	}
	return b.String()
}

// scalarKey renders one query scalar canonically: strings quoted, numerics
// (bools included, matching valueEquals' coercion) in shortest-round-trip
// float form, nil and everything else distinct.
func scalarKey(v any) string {
	if s, ok := v.(string); ok {
		return strconv.Quote(s)
	}
	if f, ok := numeric(v); ok {
		return "n" + strconv.FormatFloat(f, 'g', -1, 64)
	}
	if v == nil {
		return "_"
	}
	return "v" + keyString(v)
}
