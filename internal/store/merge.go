package store

import "math"

// The merge layer: node-count-agnostic reductions shared by the two fan-out
// levels. Inside one Index the sharded search produces a shardResult per lock
// stripe and merges them (DESIGN.md §5); in cluster mode a coordinator
// scatters the same request across partition nodes and gathers per-node
// ScatterResponses (DESIGN.md §16). Both levels reduce through the functions
// in this file: a k-way ordered merge for hit candidates, combinable (not yet
// finalized) aggregation partials, and plain integer sums for counts. The
// split between combinePartials and finalizePartial is what makes the
// two-level composition exact — partials combine associatively at each level
// and finalize exactly once, at the top, so bucket ordering, terms-size
// truncation, and percentile ranks are computed over the complete data no
// matter how many times it was partitioned on the way up.

// kwayMerge merges pre-sorted lists into one ascending sequence under less,
// stopping after limit elements (limit <= 0 merges everything). Each input
// list must already be sorted by the same order; ties across lists resolve to
// the lowest list index, which both call sites make deterministic by keying
// less with a total order (the global id tie-break).
func kwayMerge[T any](lists [][]T, less func(a, b T) bool, limit int) []T {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]T, 0, n)
	cursors := make([]int, len(lists))
	for len(out) < n {
		best := -1
		for i := range lists {
			if cursors[i] >= len(lists[i]) {
				continue
			}
			if best == -1 || less(lists[i][cursors[i]], lists[best][cursors[best]]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		out = append(out, lists[best][cursors[best]])
		cursors[best]++
	}
	return out
}

// newStatsAccum returns the identity element of the stats combine: the
// accumulator a fresh per-shard scan starts from.
func newStatsAccum() StatsResult {
	return StatsResult{Min: math.Inf(1), Max: math.Inf(-1)}
}

// combineStats folds one raw stats accumulator into another.
func combineStats(dst *StatsResult, p *StatsResult) {
	if p == nil {
		return
	}
	dst.Count += p.Count
	dst.Sum += p.Sum
	if p.Min < dst.Min {
		dst.Min = p.Min
	}
	if p.Max > dst.Max {
		dst.Max = p.Max
	}
}

// combinePartials folds per-stripe (or per-node) partials of one aggregation
// into a single combined partial without finalizing it. The operation is
// associative and commutative over the count maps, group maps, and stats
// accumulators, and order-preserving over the sorted percentile values, so
// partials can combine level by level — shards into a node partial, node
// partials into a cluster one — and finalize once at the top.
func combinePartials(a Agg, parts []*partialAgg) *partialAgg {
	switch {
	case a.Terms != nil:
		if len(a.Aggs) == 0 {
			counts := make(map[string]int)
			for _, p := range parts {
				for k, n := range p.termCounts {
					counts[k] += n
				}
			}
			return &partialAgg{termCounts: counts}
		}
		groups := make(map[string][]Document)
		for _, p := range parts {
			for k, g := range p.terms {
				groups[k] = append(groups[k], g...)
			}
		}
		return &partialAgg{terms: groups}
	case a.DateHistogram != nil:
		if len(a.Aggs) == 0 {
			counts := make(map[int64]int)
			for _, p := range parts {
				for k, n := range p.histCounts {
					counts[k] += n
				}
			}
			return &partialAgg{histCounts: counts}
		}
		groups := make(map[int64][]Document)
		for _, p := range parts {
			for k, g := range p.hist {
				groups[k] = append(groups[k], g...)
			}
		}
		return &partialAgg{hist: groups}
	case a.Percentiles != nil:
		var merged []float64
		for _, p := range parts {
			merged = mergeSortedFloats(merged, p.vals)
		}
		return &partialAgg{vals: merged}
	case a.Stats != nil:
		res := newStatsAccum()
		for _, p := range parts {
			combineStats(&res, p.stats)
		}
		return &partialAgg{stats: &res}
	default:
		return &partialAgg{}
	}
}

// finalizePartial turns a fully-combined partial into the aggregation's final
// result: bucket ordering and truncation, sub-aggregation application over
// the merged groups, percentile ranks over the complete sorted values, and
// the stats average. nil finalizes as the empty partial (an aggregation no
// stripe contributed to).
func finalizePartial(a Agg, p *partialAgg) AggResult {
	if p == nil {
		p = &partialAgg{}
	}
	switch {
	case a.Terms != nil:
		if len(a.Aggs) == 0 {
			return a.finalizeTermCounts(p.termCounts)
		}
		return a.finalizeTerms(p.terms)
	case a.DateHistogram != nil:
		if len(a.Aggs) == 0 {
			return a.finalizeHistCounts(p.histCounts)
		}
		return a.finalizeHistogram(p.hist)
	case a.Percentiles != nil:
		return percentilesFromSorted(p.vals, a.Percentiles)
	case a.Stats != nil:
		res := newStatsAccum()
		combineStats(&res, p.stats)
		return AggResult{Stats: finalizeStats(res)}
	default:
		return AggResult{}
	}
}

// AggPartial is the wire form of one mergeable aggregation partial: what a
// partition node ships back from a scatter instead of a finalized AggResult,
// so the coordinator can combine partials across nodes and finalize once.
// Integer-keyed histogram maps survive JSON (Go renders int64 map keys as
// decimal strings); an empty stats accumulator ships as a missing Stats field
// because its ±Inf min/max sentinels have no JSON encoding.
type AggPartial struct {
	Terms      map[string][]Document `json:"terms,omitempty"`
	TermCounts map[string]int        `json:"term_counts,omitempty"`
	Hist       map[int64][]Document  `json:"hist,omitempty"`
	HistCounts map[int64]int         `json:"hist_counts,omitempty"`
	Vals       []float64             `json:"vals,omitempty"`
	Stats      *StatsResult          `json:"stats,omitempty"`
}

// wirePartial renders an in-memory partial for the scatter response.
func wirePartial(p *partialAgg) AggPartial {
	w := AggPartial{
		Terms:      p.terms,
		TermCounts: p.termCounts,
		Hist:       p.hist,
		HistCounts: p.histCounts,
		Vals:       p.vals,
	}
	if p.stats != nil && p.stats.Count > 0 {
		w.Stats = p.stats
	}
	return w
}

// partial converts the wire form back for combining.
func (w AggPartial) partial() *partialAgg {
	p := &partialAgg{
		terms:      w.Terms,
		termCounts: w.TermCounts,
		hist:       w.Hist,
		histCounts: w.HistCounts,
		vals:       w.Vals,
	}
	if w.Stats != nil {
		p.stats = w.Stats
	}
	return p
}

// MergeAggPartials combines wire partials from any number of partitions and
// finalizes the result — the cluster coordinator's half of the two-level
// aggregation reduction. It is the same combine+finalize the intra-node shard
// merge uses, so a 1-node and an N-node execution of one request produce
// identical AggResults.
func MergeAggPartials(a Agg, parts []AggPartial) AggResult {
	ps := make([]*partialAgg, len(parts))
	for i := range parts {
		ps[i] = parts[i].partial()
	}
	return finalizePartial(a, combinePartials(a, ps))
}

// floorDiv is integer division rounding toward negative infinity, the gid
// arithmetic for translating a cluster-global cursor position onto one
// partition (the translated bound may be -1 when the position precedes every
// row the partition owns).
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// partitionGidAfter translates a cluster-global resume position onto
// partition p of n: the greatest node-local row id q such that every local
// row l with l > q has cluster-global id l*n+p > gid. Both cursor tie-breaks
// and unsorted resume arithmetic consume it: "strictly after the global
// position" becomes "strictly after local q" on every partition, including
// the ones that do not own the boundary row.
func partitionGidAfter(gid, p, n int) int {
	return floorDiv(gid-p, n)
}
