package store

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServerClient(t *testing.T) (*Store, *Client) {
	t.Helper()
	st := New()
	srv := httptest.NewServer(NewServer(st))
	t.Cleanup(srv.Close)
	return st, NewClient(srv.URL)
}

func TestHTTPBulkSearchCount(t *testing.T) {
	_, c := newTestServerClient(t)

	if err := c.Bulk(context.Background(), "run1", docFixture()); err != nil {
		t.Fatalf("bulk: %v", err)
	}
	n, err := c.Count(context.Background(), "run1", Term("session", "s1"))
	if err != nil || n != 4 {
		t.Fatalf("count = (%d, %v), want 4", n, err)
	}
	resp, err := c.Search(context.Background(), "run1", SearchRequest{
		Query: Term("syscall", "read"),
		Sort:  []SortField{{Field: "time_enter_ns"}},
	})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if resp.Total != 2 || len(resp.Hits) != 2 {
		t.Fatalf("search resp = %+v", resp)
	}
	if resp.Hits[0]["proc_name"] != "fluent-bit" {
		t.Fatalf("hit = %v", resp.Hits[0])
	}
}

func TestHTTPSearchWithAggs(t *testing.T) {
	_, c := newTestServerClient(t)
	if err := c.Bulk(context.Background(), "run1", docFixture()); err != nil {
		t.Fatalf("bulk: %v", err)
	}
	resp, err := c.Search(context.Background(), "run1", SearchRequest{
		Query: MatchAll(),
		Size:  1,
		Aggs: map[string]Agg{
			"by_proc": {Terms: &TermsAgg{Field: "proc_name"}},
			"lat":     {Percentiles: &PercentilesAgg{Field: "duration_ns", Percents: []float64{99}}},
		},
	})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if len(resp.Aggs["by_proc"].Buckets) != 2 {
		t.Fatalf("agg buckets = %+v", resp.Aggs["by_proc"])
	}
	if resp.Aggs["lat"].Percentiles["99"] != 50 {
		t.Fatalf("p99 = %v", resp.Aggs["lat"].Percentiles)
	}
}

func TestHTTPCorrelate(t *testing.T) {
	_, c := newTestServerClient(t)
	if err := c.Bulk(context.Background(), "run1", docFixture()); err != nil {
		t.Fatalf("bulk: %v", err)
	}
	res, err := c.Correlate(context.Background(), "run1", "s1")
	if err != nil {
		t.Fatalf("correlate: %v", err)
	}
	if res.TagsResolved != 1 || res.EventsUpdated != 4 {
		t.Fatalf("res = %+v", res)
	}
}

func TestHTTPIndicesAndErrors(t *testing.T) {
	_, c := newTestServerClient(t)
	if err := c.Bulk(context.Background(), "a", docFixture()); err != nil {
		t.Fatalf("bulk: %v", err)
	}
	if err := c.Bulk(context.Background(), "b", docFixture()[:1]); err != nil {
		t.Fatalf("bulk: %v", err)
	}
	names, err := c.Indices()
	if err != nil || len(names) != 2 {
		t.Fatalf("indices = (%v, %v)", names, err)
	}
	if _, err := c.Search(context.Background(), "missing", SearchRequest{}); err == nil {
		t.Fatal("search on missing index succeeded")
	}
	if _, err := c.Correlate(context.Background(), "missing", ""); err == nil {
		t.Fatal("correlate on missing index succeeded")
	}
}

func TestHTTPStats(t *testing.T) {
	st, c := newTestServerClient(t)
	if err := c.Bulk(context.Background(), "run1", docFixture()); err != nil {
		t.Fatalf("bulk: %v", err)
	}
	ix, _ := st.GetIndex("run1")

	resp, err := http.Get(c.base + "/run1/_stats")
	if err != nil {
		t.Fatalf("get stats: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var stats IndexStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if stats.Index != "run1" || stats.Docs != ix.Len() || stats.Shards != ix.NumShards() {
		t.Fatalf("stats = %+v, want docs=%d shards=%d", stats, ix.Len(), ix.NumShards())
	}

	// POST is rejected; missing index is a 404.
	post, _ := http.Post(c.base+"/run1/_stats", "", nil)
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST stats status = %d", post.StatusCode)
	}
	miss, _ := http.Get(c.base + "/nope/_stats")
	miss.Body.Close()
	if miss.StatusCode != http.StatusNotFound {
		t.Fatalf("missing-index stats status = %d", miss.StatusCode)
	}
}

func TestHTTPBackendInterchangeable(t *testing.T) {
	st, c := newTestServerClient(t)
	for _, b := range []Backend{st, c} {
		if err := b.Bulk(context.Background(), "x", []Document{{"syscall": "read"}}); err != nil {
			t.Fatalf("bulk via %T: %v", b, err)
		}
	}
	n, _ := st.Count(context.Background(), "x", MatchAll())
	if n != 2 {
		t.Fatalf("count = %d, want 2 (one via each backend)", n)
	}
}

func TestHTTPServerErrorPaths(t *testing.T) {
	st := New()
	st.Bulk(context.Background(), "x", docFixture())
	srv := httptest.NewServer(NewServer(st))
	defer srv.Close()

	post := func(path, body string) int {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("post %s: %v", path, err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	if code := post("/x/_bulk", "{\"index\":{}}\nnot-json\n"); code != http.StatusBadRequest {
		t.Fatalf("bad bulk doc status = %d", code)
	}
	if code := post("/x/_search", "{bad"); code != http.StatusBadRequest {
		t.Fatalf("bad search status = %d", code)
	}
	if code := post("/x/_unknownop", ""); code != http.StatusNotFound {
		t.Fatalf("unknown op status = %d", code)
	}
	if code := post("/a/b/c", ""); code != http.StatusNotFound {
		t.Fatalf("deep path status = %d", code)
	}

	// GET where POST is required.
	resp, err := http.Get(srv.URL + "/x/_bulk")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET bulk status = %d", resp.StatusCode)
	}

	// DELETE an index through HTTP.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/x", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	if _, ok := st.GetIndex("x"); ok {
		t.Fatal("index survived HTTP delete")
	}
}
